//! Fleet-level device selection: pilot-based per-device cost prediction.
//!
//! The paper's greenup methodology compares *measured* energy and wall
//! time across configurations of one node. A fleet generalizes the
//! question: given several device generations (see
//! `gpu_sim::DeviceCatalog`), which one should run this job? Analytic
//! per-device step models drift from the billing meters the moment either
//! changes, so this module predicts by **piloting**: it builds a
//! throwaway solver on each candidate device, advances a handful of real
//! steps, and reads the modeled wall clock and joules off the same
//! simulated power meters that bill production runs. The predictor and
//! the biller are one code path — a routing decision that looks cheaper
//! here *is* cheaper on the ledger.
//!
//! Two windows are measured: through the first accepted step (capturing
//! assembly, H2D staging, and first-step warm-up) and across
//! [`PILOT_STEPS`] further steps (the marginal per-step cost). Whole-run
//! predictions extrapolate `base + (steps - 1) x marginal` with the step
//! count estimated from the pilot's adaptive `dt`.
//!
//! Everything here is deterministic across thread counts: modes derive
//! thread counts from the device *spec* (never the ambient pool), and the
//! modeled meters are pure functions of kernel traffic.

use std::sync::Arc;

use gpu_sim::{DeviceCatalog, DeviceSpec, GpuDevice};

use crate::exec::{ExecMode, Executor};
use crate::problems::Problem;
use crate::solver::{Hydro, HydroConfig};
use crate::HydroError;

/// Marginal-window length of one pilot: accepted steps advanced *after*
/// the first-step window to measure the per-step cost.
pub const PILOT_STEPS: usize = 2;

/// Derives the execution mode a device runs standalone jobs under — the
/// mapping documented on [`ExecMode`]: GPU present means the offloaded
/// path with the device-side momentum solve, otherwise the OpenMP analog
/// across every core the spec has (serial when there is only one).
pub fn derive_mode(dev: &DeviceSpec) -> ExecMode {
    if dev.has_gpu() {
        ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 }
    } else if dev.host.cores <= 1 {
        ExecMode::CpuSerial
    } else {
        ExecMode::CpuParallel { threads: dev.host.cores }
    }
}

/// The modes a router should *candidate* on a device: both momentum-solve
/// placements on a GPU (the paper's per-phase CPU/GPU split — whether
/// `dv/dt` or `-F·1` crosses PCIe depends on the problem size), the
/// single derived mode on a CPU-only box.
pub fn candidate_modes(dev: &DeviceSpec) -> Vec<ExecMode> {
    if dev.has_gpu() {
        vec![
            ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
            ExecMode::Gpu { base: false, gpu_pcg: false, mpi_queues: 1 },
        ]
    } else {
        vec![derive_mode(dev)]
    }
}

/// Builds an executor realizing `mode` on `dev`: the spec's host CPU, a
/// fresh simulated GPU when the spec carries one, and the catalog id
/// pinned so autotune caches key per device.
pub fn executor_for(dev: &DeviceSpec, mode: ExecMode) -> Executor {
    let gpu = dev.gpu.as_ref().map(|g| Arc::new(GpuDevice::new(g.clone())));
    let mut exec = Executor::new(mode, dev.host.clone(), gpu);
    exec.set_device_id(dev.id.clone());
    exec
}

/// One pilot measurement: what `(device, mode)` cost to set up and what
/// each further step costs, read off the simulated meters.
#[derive(Clone, Debug)]
pub struct DevicePilot {
    /// Catalog id of the piloted device.
    pub device_id: String,
    /// The mode the pilot ran under.
    pub mode: ExecMode,
    /// Modeled seconds through the first accepted step (assembly + H2D +
    /// warm-up + one step).
    pub base_wall_s: f64,
    /// Modeled joules through the first accepted step (host + device).
    pub base_energy_j: f64,
    /// Marginal modeled seconds per accepted step.
    pub step_wall_s: f64,
    /// Marginal modeled joules per accepted step.
    pub step_energy_j: f64,
    /// Adaptive `dt` in effect after the pilot window — the step-count
    /// estimator for whole-run extrapolation.
    pub dt: f64,
    /// Steps in the marginal window.
    pub pilot_steps: usize,
}

/// A whole-run extrapolation of a [`DevicePilot`].
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Catalog id of the device.
    pub device_id: String,
    /// The mode the prediction assumes.
    pub mode: ExecMode,
    /// Estimated accepted steps to reach `t_final` (capped by the step
    /// budget).
    pub steps: usize,
    /// Predicted modeled wall seconds for the whole run.
    pub wall_s: f64,
    /// Predicted modeled joules for the whole run.
    pub energy_j: f64,
}

impl DevicePilot {
    /// Extrapolates this pilot to a whole run: `base + (steps - 1) x
    /// marginal`, with the step count estimated from the pilot's adaptive
    /// `dt` and capped at `max_steps`.
    pub fn predict(&self, t_final: f64, max_steps: usize) -> Prediction {
        let by_dt = if self.dt > 0.0 { (t_final / self.dt).ceil() as usize } else { usize::MAX };
        let steps = by_dt.max(1).min(max_steps.max(1));
        let extra = (steps - 1) as f64;
        Prediction {
            device_id: self.device_id.clone(),
            mode: self.mode.clone(),
            steps,
            wall_s: self.base_wall_s + extra * self.step_wall_s,
            energy_j: self.base_energy_j + extra * self.step_energy_j,
        }
    }
}

fn meters<const D: usize>(hydro: &Hydro<D>) -> (f64, f64) {
    let exec = hydro.executor();
    let host_now = exec.host.now();
    let (gpu_now, gpu_j) =
        exec.gpu.as_ref().map_or((0.0, 0.0), |g| (g.now(), g.energy_joules()));
    (host_now.max(gpu_now), exec.host.energy_joules() + gpu_j)
}

/// Pilots `(dev, mode)` on the given problem: builds a throwaway solver,
/// advances `1 + pilot_steps` accepted steps, and reports the two
/// measurement windows. Fails when the device cannot run the problem at
/// all (e.g. the stored working set exceeds its DRAM).
pub fn pilot_device<const D: usize>(
    problem: &dyn Problem<D>,
    zones: [usize; D],
    config: &HydroConfig,
    dev: &DeviceSpec,
    mode: ExecMode,
    pilot_steps: usize,
) -> Result<DevicePilot, HydroError> {
    let mut hydro = Hydro::builder(problem, zones)
        .config(*config)
        .executor(executor_for(dev, mode.clone()))
        .build()?;
    let mut state = hydro.initial_state();
    let mut dt = hydro.try_suggest_dt(&state)?;

    let adv = hydro.try_advance(&mut state, dt)?;
    dt = adv.dt_next;
    let (w1, e1) = meters(&hydro);

    let steps = pilot_steps.max(1);
    for _ in 0..steps {
        let adv = hydro.try_advance(&mut state, dt)?;
        dt = adv.dt_next;
    }
    let (w2, e2) = meters(&hydro);

    Ok(DevicePilot {
        device_id: dev.id.clone(),
        mode,
        base_wall_s: w1,
        base_energy_j: e1,
        step_wall_s: (w2 - w1) / steps as f64,
        step_energy_j: (e2 - e1) / steps as f64,
        dt,
        pilot_steps: steps,
    })
}

/// Pilots every candidate mode on `dev` and keeps the one with the
/// cheapest marginal step energy.
pub fn pilot_best_mode<const D: usize>(
    problem: &dyn Problem<D>,
    zones: [usize; D],
    config: &HydroConfig,
    dev: &DeviceSpec,
    pilot_steps: usize,
) -> Result<DevicePilot, HydroError> {
    let mut best: Option<DevicePilot> = None;
    let mut last_err = None;
    for mode in candidate_modes(dev) {
        match pilot_device(problem, zones, config, dev, mode, pilot_steps) {
            Ok(p) => {
                let better =
                    best.as_ref().is_none_or(|b| p.step_energy_j < b.step_energy_j);
                if better {
                    best = Some(p);
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    best.ok_or_else(|| last_err.expect("candidate_modes is never empty"))
}

/// Pilots every device of `catalog` (best candidate mode each) and
/// returns the survivors in catalog order. Devices that cannot run the
/// problem (device-memory ceiling) are skipped; the error surfaces only
/// when *no* device survives.
pub fn survey_fleet<const D: usize>(
    problem: &dyn Problem<D>,
    zones: [usize; D],
    config: &HydroConfig,
    catalog: &DeviceCatalog,
    pilot_steps: usize,
) -> Result<Vec<DevicePilot>, HydroError> {
    let mut pilots = Vec::new();
    let mut last_err = None;
    for dev in catalog.devices() {
        match pilot_best_mode(problem, zones, config, dev, pilot_steps) {
            Ok(p) => pilots.push(p),
            Err(e) => last_err = Some(e),
        }
    }
    if pilots.is_empty() {
        return Err(last_err.unwrap_or(HydroError::OutOfMemory { required: 0, available: 0 }));
    }
    Ok(pilots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::Sedov;
    use gpu_sim::CpuSpec;

    fn catalog3() -> DeviceCatalog {
        DeviceCatalog::standard_subset(&["cpu-e5-2670", "k20", "ampere"])
    }

    #[test]
    fn derived_modes_follow_the_documented_mapping() {
        let cat = DeviceCatalog::standard();
        assert!(matches!(
            derive_mode(&DeviceCatalog::get("k20")),
            ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 }
        ));
        let cpu = cat.lookup("cpu-e5-2670").unwrap();
        assert!(
            matches!(derive_mode(cpu), ExecMode::CpuParallel { threads } if threads == cpu.host.cores)
        );
        let uni = DeviceSpec::builder("uni")
            .host(CpuSpec { cores: 1, ..CpuSpec::e5_2670() })
            .build();
        assert!(matches!(derive_mode(&uni), ExecMode::CpuSerial));
    }

    #[test]
    fn gpu_devices_candidate_both_momentum_placements() {
        let modes = candidate_modes(&DeviceCatalog::get("k20"));
        assert_eq!(modes.len(), 2);
        let pcg: Vec<bool> = modes
            .iter()
            .map(|m| match m {
                ExecMode::Gpu { gpu_pcg, .. } => *gpu_pcg,
                other => panic!("GPU device derived {other:?}"),
            })
            .collect();
        assert!(pcg.contains(&true) && pcg.contains(&false));
        assert_eq!(candidate_modes(&DeviceCatalog::get("cpu-e5-2670")).len(), 1);
    }

    #[test]
    fn executor_pins_the_catalog_id_as_the_autotune_key() {
        let dev = DeviceCatalog::get("k20");
        let exec = executor_for(&dev, derive_mode(&dev));
        assert_eq!(exec.device_id(), Some("k20"));
        assert_eq!(exec.device_key(), "k20");
        assert!(exec.gpu.is_some());
    }

    #[test]
    fn pilot_windows_are_positive_and_extrapolate_monotonically() {
        let dev = DeviceCatalog::get("k20");
        let p = pilot_device(&Sedov::default(), [4, 4], &HydroConfig::default(), &dev, derive_mode(&dev), PILOT_STEPS)
            .expect("k20 fits a 4x4 Sedov");
        assert!(p.base_wall_s > 0.0 && p.base_energy_j > 0.0);
        assert!(p.step_wall_s > 0.0 && p.step_energy_j > 0.0);
        assert!(p.dt > 0.0);
        let short = p.predict(0.01, 400);
        let long = p.predict(0.05, 400);
        assert!(long.steps > short.steps);
        assert!(long.wall_s > short.wall_s && long.energy_j > short.energy_j);
        let capped = p.predict(1e9, 7);
        assert_eq!(capped.steps, 7);
    }

    #[test]
    fn pilots_are_deterministic_across_thread_counts() {
        let dev = DeviceCatalog::get("cpu-e5-2670");
        let run = || {
            pilot_best_mode(&Sedov::default(), [4, 4], &HydroConfig::default(), &dev, PILOT_STEPS)
                .expect("cpu pilot")
        };
        rayon::set_active_threads(1);
        let a = run();
        rayon::set_active_threads(8);
        let b = run();
        rayon::set_active_threads(0);
        assert_eq!(a.base_wall_s.to_bits(), b.base_wall_s.to_bits());
        assert_eq!(a.base_energy_j.to_bits(), b.base_energy_j.to_bits());
        assert_eq!(a.step_energy_j.to_bits(), b.step_energy_j.to_bits());
        assert_eq!(a.dt.to_bits(), b.dt.to_bits());
    }

    #[test]
    fn survey_skips_devices_the_problem_cannot_fit() {
        // A 1-byte-DRAM GPU can never hold the working set; the survey
        // must skip it and still return the devices that fit.
        let tiny = DeviceSpec::builder("tiny-vram")
            .host(CpuSpec::e5_2670())
            .gpu(gpu_sim::GpuSpec { dram_capacity: 1, ..DeviceCatalog::gpu("k20") })
            .build();
        let mut cat = catalog3();
        cat.insert(tiny);
        let pilots =
            survey_fleet(&Sedov::default(), [4, 4], &HydroConfig::default(), &cat, 1)
                .expect("three devices fit");
        let ids: Vec<&str> = pilots.iter().map(|p| p.device_id.as_str()).collect();
        assert_eq!(ids, ["cpu-e5-2670", "k20", "ampere"]);
    }
}
