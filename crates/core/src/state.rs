//! The Lagrangian hydrodynamic state `(v, e, x)` and energy diagnostics.

/// The unknowns of the semi-discrete system.
///
/// `v` and `x` are component-major H1 vector fields (`dim * num_h1_dofs`);
/// `e` is the L2 specific-internal-energy field (`zones * nthermo`).
#[derive(Clone, Debug, PartialEq)]
pub struct HydroState {
    /// Velocity DOFs.
    pub v: Vec<f64>,
    /// Specific internal energy DOFs.
    pub e: Vec<f64>,
    /// Grid position DOFs (the mesh itself, in the Lagrangian frame).
    pub x: Vec<f64>,
    /// Simulation time.
    pub t: f64,
}

impl HydroState {
    /// Zero state with the given sizes.
    pub fn zeros(vdofs: usize, edofs: usize) -> Self {
        Self { v: vec![0.0; vdofs], e: vec![0.0; edofs], x: vec![0.0; vdofs], t: 0.0 }
    }
}

/// Kinetic / internal / total energy at an instant — the quantities Table 6
/// reports ("the total energy includes kinetic energy and internal
/// energy").
#[derive(Clone, Copy, Debug)]
pub struct EnergyBreakdown {
    /// `½ v^T M_V v` (summed over components).
    pub kinetic: f64,
    /// `1^T M_E e`.
    pub internal: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.internal
    }

    /// Relative change against a reference breakdown (Table 6's "Total
    /// Change" column, normalized).
    pub fn relative_change(&self, reference: &EnergyBreakdown) -> f64 {
        (self.total() - reference.total()) / reference.total().abs().max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_are_sized() {
        let s = HydroState::zeros(10, 4);
        assert_eq!(s.v.len(), 10);
        assert_eq!(s.x.len(), 10);
        assert_eq!(s.e.len(), 4);
        assert_eq!(s.t, 0.0);
    }

    #[test]
    fn energy_total_and_change() {
        let a = EnergyBreakdown { kinetic: 0.504, internal: 9.546 };
        let b = EnergyBreakdown { kinetic: 0.504, internal: 9.546 + 1e-12 };
        assert!((a.total() - 10.05).abs() < 1e-12);
        assert!(b.relative_change(&a).abs() < 2e-13);
    }
}
