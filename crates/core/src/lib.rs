//! # blast-core
//!
//! The paper's primary contribution: BLAST — compressible hydrodynamics in
//! a moving Lagrangian frame with high-order finite elements — redesigned
//! for CPU-GPU execution.
//!
//! The semi-discrete system (§2):
//!
//! ```text
//! Momentum:  M_V dv/dt = -F · 1
//! Energy:    dе/dt     =  M_E^{-1} F^T · v
//! Motion:    dx/dt     =  v
//! ```
//!
//! with kinematic space `Q_k` (continuous) and thermodynamic space
//! `Q_{k-1}` (discontinuous). The generalized force matrix `F` is assembled
//! from per-zone corner-force matrices `F_z = A_z B^T` (eqs. 4-6), the
//! FLOP-intensive hot spot that this crate can execute on:
//!
//! - the **CPU** (serial or rayon-parallel — the OpenMP analog),
//! - the **simulated GPU** via the optimized kernel pipeline of
//!   `blast-kernels` (or the base monolithic kernel, for the Fig. 6 and
//!   Fig. 15 base-vs-optimized comparisons),
//! - **hybrid CPU+GPU** with the auto-balance zone split of §3.3.
//!
//! Time integration uses the energy-conserving RK2-average scheme: the
//! energy update applies `F^T` to the *midpoint* velocity, making the total
//! energy `½ v^T M_V v + 1^T M_E e` exact to solver tolerance (Table 6).

pub mod audit;
pub mod checkpoint;
pub mod error;
pub mod exec;
pub mod fleet;
pub mod problems;
pub mod retry;
pub mod solver;
pub mod state;

pub use audit::AuditConfig;
pub use checkpoint::{
    Checkpoint, CheckpointError, CheckpointPolicy, CheckpointStore, LoadedCheckpoint,
};
pub use error::HydroError;
pub use exec::{ExecMode, Executor};
pub use fleet::{DevicePilot, Prediction};
pub use problems::{Problem, Sedov, TaylorGreen, TriplePoint};
pub use retry::RetryPolicy;
pub use blast_kernels::sumfac::AssemblyMode;
pub use solver::{
    AdvanceOutcome, Hydro, HydroBuilder, HydroConfig, RequiredBytes, ResumeInfo, RunConfig,
    RunStats, StepOutcome, ENERGY_RECONCILE_TOL, MAX_STEP_REDOS,
};
pub use state::{EnergyBreakdown, HydroState};
