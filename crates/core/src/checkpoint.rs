//! Coordinated checkpoint/restart: versioned, checksummed binary snapshots
//! of the hydro state plus the solver bookkeeping needed to resume a run
//! bit-identically (the PCG warm-start cache, the adaptive dt, and the
//! step/retry counters).
//!
//! ## Format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"BLASTCKP"
//! 8       4     format version (u32 LE)          = 1
//! 12      4     reserved flags (u32 LE)          = 0
//! 16      8     payload length in bytes (u64 LE)
//! 24      n     payload (see below)
//! 24+n    4     CRC-32 (IEEE) over bytes [0, 24+n) (u32 LE)
//! ```
//!
//! Payload: `t`, `dt` (f64), `steps`, `retries` (u64), then four
//! length-prefixed f64 arrays (`v`, `e`, `x`, `accel_prev`), everything
//! little-endian. The trailing CRC covers header *and* payload, so a
//! truncated file, a flipped byte, or a bad length all surface as a typed
//! [`CheckpointError`] — the restore path then falls back to the previous
//! generation instead of resuming from garbage.

use std::path::PathBuf;

use crate::state::HydroState;

/// Checkpoint format magic bytes.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"BLASTCKP";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

const HEADER_LEN: usize = 24;
const FOOTER_LEN: usize = 4;

/// Why a checkpoint image failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Image shorter than header + CRC.
    TooShort {
        /// Bytes present.
        len: usize,
    },
    /// Magic bytes do not match [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// Format version newer than this reader understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// Header payload length disagrees with the image size.
    Truncated {
        /// Payload bytes the header promised.
        expected: usize,
        /// Payload bytes actually present.
        present: usize,
    },
    /// CRC-32 over header + payload does not match the stored checksum.
    ChecksumMismatch {
        /// Checksum stored in the image.
        stored: u32,
        /// Checksum computed from the bytes.
        computed: u32,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::TooShort { len } => {
                write!(f, "checkpoint image too short: {len} bytes")
            }
            CheckpointError::BadMagic => write!(f, "checkpoint magic mismatch"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint version {found} (reader understands {CHECKPOINT_VERSION})")
            }
            CheckpointError::Truncated { expected, present } => {
                write!(f, "truncated checkpoint: header promises {expected} payload bytes, {present} present")
            }
            CheckpointError::ChecksumMismatch { stored, computed } => {
                write!(f, "checkpoint checksum mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), table built at
// compile time — no external crates.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One coordinated snapshot: the state plus everything `try_run_to` needs
/// to continue exactly where the snapshot was taken.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// The hydro state `(v, e, x, t)`.
    pub state: HydroState,
    /// The momentum PCG warm-start cache at snapshot time. Restoring it
    /// keeps the resumed iteration counts (and therefore the billed energy)
    /// identical to an uninterrupted run.
    pub accel_prev: Vec<f64>,
    /// Adaptive dt in effect for the next step.
    pub dt: f64,
    /// Accepted steps so far.
    pub steps: u64,
    /// Redo count so far (rollbacks + CFL redos).
    pub retries: u64,
}

fn push_f64s(buf: &mut Vec<u8>, values: &[f64]) {
    buf.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.bytes.len() {
            return Err(CheckpointError::Truncated {
                expected: self.pos + n,
                present: self.bytes.len(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64s(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let n = self.u64()? as usize;
        let raw = self.take(n * 8)?;
        Ok(raw.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes"))).collect())
    }
}

impl Checkpoint {
    /// Serializes to the versioned, CRC-protected binary image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(
            32 + 8 * (self.state.v.len() + self.state.e.len() + self.state.x.len() + self.accel_prev.len() + 4),
        );
        payload.extend_from_slice(&self.state.t.to_le_bytes());
        payload.extend_from_slice(&self.dt.to_le_bytes());
        payload.extend_from_slice(&self.steps.to_le_bytes());
        payload.extend_from_slice(&self.retries.to_le_bytes());
        push_f64s(&mut payload, &self.state.v);
        push_f64s(&mut payload, &self.state.e);
        push_f64s(&mut payload, &self.state.x);
        push_f64s(&mut payload, &self.accel_prev);

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + FOOTER_LEN);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // reserved flags
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Validates and decodes an image produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < HEADER_LEN + FOOTER_LEN {
            return Err(CheckpointError::TooShort { len: bytes.len() });
        }
        if bytes[0..8] != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let payload_len =
            u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
        let present = bytes.len() - HEADER_LEN - FOOTER_LEN;
        if payload_len != present {
            return Err(CheckpointError::Truncated { expected: payload_len, present });
        }
        let body_end = HEADER_LEN + payload_len;
        let stored = u32::from_le_bytes(bytes[body_end..].try_into().expect("4 bytes"));
        let computed = crc32(&bytes[..body_end]);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }

        let mut r = Reader { bytes: &bytes[HEADER_LEN..body_end], pos: 0 };
        let t = r.f64()?;
        let dt = r.f64()?;
        let steps = r.u64()?;
        let retries = r.u64()?;
        let v = r.f64s()?;
        let e = r.f64s()?;
        let x = r.f64s()?;
        let accel_prev = r.f64s()?;
        Ok(Self { state: HydroState { v, e, x, t }, accel_prev, dt, steps, retries })
    }
}

/// When `try_run_to_checkpointed` writes a coordinated checkpoint.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CheckpointPolicy {
    /// No checkpointing (the plain `try_run_to` behavior).
    Never,
    /// Write after every `n` accepted steps.
    EverySteps(usize),
    /// Write when at least this much *simulated* wall-clock (host timeline
    /// seconds) has elapsed since the previous checkpoint.
    EveryWallclock(f64),
}

impl CheckpointPolicy {
    /// Whether a checkpoint is due, given accepted steps and simulated
    /// seconds since the last one.
    pub fn due(&self, steps_since: usize, wall_since_s: f64) -> bool {
        match *self {
            CheckpointPolicy::Never => false,
            CheckpointPolicy::EverySteps(n) => n > 0 && steps_since >= n,
            CheckpointPolicy::EveryWallclock(s) => wall_since_s >= s,
        }
    }
}

/// A checkpoint restored by [`CheckpointStore::latest_valid`], with the
/// metadata recovery accounting needs.
#[derive(Clone, Debug)]
pub struct LoadedCheckpoint {
    /// Monotonic generation id of the image that decoded cleanly.
    pub generation: u64,
    /// Image size in bytes (drives the restore's DRAM-traffic billing).
    pub bytes: usize,
    /// Newer generations that were skipped because they failed validation.
    pub skipped: usize,
    /// The decoded checkpoint.
    pub checkpoint: Checkpoint,
}

/// Generation-based checkpoint store: in-memory, optionally mirrored to a
/// directory so a *new process* can resume (`examples/checkpoint_restart`).
///
/// Generations are kept newest-last; [`Self::latest_valid`] walks backwards
/// past corrupt or truncated images, which is how a flipped byte in the
/// newest checkpoint falls back to the previous generation.
#[derive(Debug)]
pub struct CheckpointStore {
    /// `(generation id, image bytes)`, oldest first.
    generations: Vec<(u64, Vec<u8>)>,
    max_generations: usize,
    dir: Option<PathBuf>,
    next_gen: u64,
}

impl CheckpointStore {
    /// A purely in-memory store (checkpoints die with the process).
    pub fn in_memory() -> Self {
        Self { generations: Vec::new(), max_generations: 3, dir: None, next_gen: 0 }
    }

    /// A store mirrored to `dir`: every write lands in
    /// `dir/ckpt_<generation>.blastck`, and construction re-loads whatever
    /// generations a previous process left there (newest
    /// `max_generations`, unreadable files simply skipped).
    pub fn on_disk(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut found: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(gen_str) =
                name.strip_prefix("ckpt_").and_then(|s| s.strip_suffix(".blastck"))
            {
                if let Ok(gen_id) = gen_str.parse::<u64>() {
                    found.push((gen_id, entry.path()));
                }
            }
        }
        found.sort_by_key(|(gen_id, _)| *gen_id);
        let mut store = Self {
            generations: Vec::new(),
            max_generations: 3,
            dir: Some(dir),
            next_gen: found.last().map(|(g, _)| g + 1).unwrap_or(0),
        };
        let keep = found.len().saturating_sub(store.max_generations);
        for (gen_id, path) in found.into_iter().skip(keep) {
            if let Ok(bytes) = std::fs::read(&path) {
                store.generations.push((gen_id, bytes));
            }
        }
        Ok(store)
    }

    /// Sets how many generations to retain (older ones are pruned on
    /// write). At least 2 is needed for corrupt-newest fallback.
    pub fn keep_generations(mut self, n: usize) -> Self {
        assert!(n >= 1, "must keep at least one generation");
        self.max_generations = n;
        self
    }

    /// Serializes and stores `ck` as a new generation, pruning old ones.
    /// Returns the image size in bytes (for energy billing).
    ///
    /// On-disk writes go to a dotfile temp name first and are atomically
    /// renamed into place, so a crash mid-write can never leave a
    /// half-written `ckpt_*.blastck` shadowing an older good generation:
    /// the directory either has the complete new image or none at all
    /// (the temp name doesn't match the loader's `ckpt_` prefix).
    pub fn write(&mut self, ck: &Checkpoint) -> std::io::Result<usize> {
        let bytes = ck.to_bytes();
        let len = bytes.len();
        let gen_id = self.next_gen;
        self.next_gen += 1;
        if let Some(dir) = &self.dir {
            let tmp = dir.join(format!(".ckpt_{gen_id}.blastck.tmp"));
            std::fs::write(&tmp, &bytes)?;
            std::fs::rename(&tmp, dir.join(format!("ckpt_{gen_id}.blastck")))?;
        }
        self.generations.push((gen_id, bytes));
        while self.generations.len() > self.max_generations {
            let (old_gen, _) = self.generations.remove(0);
            if let Some(dir) = &self.dir {
                let _ = std::fs::remove_file(dir.join(format!("ckpt_{old_gen}.blastck")));
            }
        }
        Ok(len)
    }

    /// Number of retained generations.
    pub fn generations(&self) -> usize {
        self.generations.len()
    }

    /// Newest checkpoint that validates (magic, version, length, CRC),
    /// walking backwards past corrupt generations. `None` when nothing
    /// decodes.
    pub fn latest_valid(&self) -> Option<LoadedCheckpoint> {
        for (skipped, (gen_id, bytes)) in self.generations.iter().rev().enumerate() {
            if let Ok(checkpoint) = Checkpoint::from_bytes(bytes) {
                return Some(LoadedCheckpoint {
                    generation: *gen_id,
                    bytes: bytes.len(),
                    skipped,
                    checkpoint,
                });
            }
        }
        None
    }

    /// Mutable access to the image of the `idx_from_newest`-th generation
    /// (0 = newest) — the corruption hook the flipped-byte tests use.
    pub fn image_mut(&mut self, idx_from_newest: usize) -> Option<&mut Vec<u8>> {
        let n = self.generations.len();
        if idx_from_newest >= n {
            return None;
        }
        Some(&mut self.generations[n - 1 - idx_from_newest].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            state: HydroState {
                v: vec![0.5, -1.25, 3.0],
                e: vec![2.0, 4.5],
                x: vec![0.0, 0.25, 0.5],
                t: 0.125,
            },
            accel_prev: vec![1.0, -2.0, 0.125],
            dt: 1e-3,
            steps: 17,
            retries: 3,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_is_exact() {
        let ck = sample_checkpoint();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let ck = sample_checkpoint();
        let bytes = ck.to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                Checkpoint::from_bytes(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_checkpoint().to_bytes();
        for cut in [0, 5, HEADER_LEN, bytes.len() - 1] {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn version_and_magic_are_checked() {
        let mut bytes = sample_checkpoint().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Checkpoint::from_bytes(&bytes), Err(CheckpointError::BadMagic));
        let mut bytes = sample_checkpoint().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Re-CRC so the version check (not the CRC) fires.
        let body_end = bytes.len() - FOOTER_LEN;
        let crc = crc32(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion { found: 99 })
        );
    }

    #[test]
    fn policy_triggers_as_configured() {
        assert!(!CheckpointPolicy::Never.due(1000, 1e9));
        assert!(CheckpointPolicy::EverySteps(5).due(5, 0.0));
        assert!(!CheckpointPolicy::EverySteps(5).due(4, 1e9));
        assert!(CheckpointPolicy::EveryWallclock(1.0).due(0, 1.5));
        assert!(!CheckpointPolicy::EveryWallclock(1.0).due(1000, 0.5));
    }

    #[test]
    fn store_falls_back_past_a_flipped_byte() {
        let mut store = CheckpointStore::in_memory();
        let mut ck = sample_checkpoint();
        store.write(&ck).unwrap();
        ck.steps = 18;
        ck.state.t = 0.5;
        store.write(&ck).unwrap();
        // Corrupt the newest image: one flipped payload byte.
        store.image_mut(0).unwrap()[HEADER_LEN + 3] ^= 0x10;
        let loaded = store.latest_valid().expect("previous generation valid");
        assert_eq!(loaded.skipped, 1, "newest generation must be skipped");
        assert_eq!(loaded.checkpoint.steps, 17, "fell back to generation 0");
    }

    #[test]
    fn store_prunes_old_generations() {
        let mut store = CheckpointStore::in_memory().keep_generations(2);
        let mut ck = sample_checkpoint();
        for s in 0..5 {
            ck.steps = s;
            store.write(&ck).unwrap();
        }
        assert_eq!(store.generations(), 2);
        assert_eq!(store.latest_valid().unwrap().checkpoint.steps, 4);
    }

    #[test]
    fn on_disk_truncated_tail_falls_back_a_generation() {
        let dir = std::env::temp_dir()
            .join(format!("blast_ckpt_trunc_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut store = CheckpointStore::on_disk(&dir).unwrap();
            let mut ck = sample_checkpoint();
            ck.steps = 7;
            store.write(&ck).unwrap();
            ck.steps = 8;
            store.write(&ck).unwrap();
        }
        // The process died mid-flush: the newest on-disk image lost its
        // tail (payload end + CRC gone).
        let newest = dir.join("ckpt_1.blastck");
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() - 12]).unwrap();

        // Restart: restore must fall back, not error out.
        let store = CheckpointStore::on_disk(&dir).unwrap();
        let loaded = store.latest_valid().expect("previous generation must load");
        assert_eq!(loaded.skipped, 1, "truncated newest generation is skipped");
        assert_eq!(loaded.checkpoint.steps, 7, "fell back to the older image");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn on_disk_leftover_temp_file_is_ignored() {
        let dir = std::env::temp_dir()
            .join(format!("blast_ckpt_tmp_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut store = CheckpointStore::on_disk(&dir).unwrap();
            store.write(&sample_checkpoint()).unwrap();
        }
        // A crash between temp write and rename leaves the dotfile behind;
        // it must neither load as a generation nor break construction.
        std::fs::write(dir.join(".ckpt_9.blastck.tmp"), b"partial garbage").unwrap();
        let store = CheckpointStore::on_disk(&dir).unwrap();
        assert_eq!(store.generations(), 1);
        assert_eq!(store.latest_valid().unwrap().checkpoint.steps, 17);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn on_disk_store_survives_a_new_process() {
        let dir = std::env::temp_dir().join(format!("blast_ckpt_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut store = CheckpointStore::on_disk(&dir).unwrap();
            let mut ck = sample_checkpoint();
            ck.steps = 7;
            store.write(&ck).unwrap();
            ck.steps = 8;
            store.write(&ck).unwrap();
        }
        // "New process": a fresh store over the same directory.
        let store = CheckpointStore::on_disk(&dir).unwrap();
        assert_eq!(store.generations(), 2);
        assert_eq!(store.latest_valid().unwrap().checkpoint.steps, 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
