//! Typed solver errors and their recovery classification.
//!
//! The solver distinguishes three failure families:
//!
//! - **Device faults** ([`HydroError::Gpu`]): the simulated GPU exhausted
//!   its retry budget (or is out of memory). At setup these abort; mid-run
//!   the solver degrades to the CPU path and continues (§"Fault model &
//!   recovery semantics" in DESIGN.md).
//! - **Numerical breakdowns** (`NonFinite`, `PcgBreakdown`, `MeshTangled`):
//!   the step produced something unusable. These are *recoverable by
//!   rollback* — `try_run_to` restores the checkpointed state and redoes
//!   the step with a halved dt.
//! - Everything else is a bug and stays a panic (documented invariant
//!   asserts on operand shapes).

use gpu_sim::GpuError;

/// A typed failure from setup, a force evaluation, or a time step.
#[derive(Clone, Debug, PartialEq)]
pub enum HydroError {
    /// The simulated device failed past its retry budget (or OOM'd).
    Gpu(GpuError),
    /// The *modeled* device working set of the requested problem exceeds
    /// the device memory, detected by the builder's footprint pre-check
    /// before any allocation or assembly happens. Carries the numbers the
    /// caller needs to act: shrink the problem, or switch the assembly
    /// mode to matrix-free (`HydroBuilder::assembly`), whose footprint the
    /// same pre-check accepts far past the stored-matrix ceiling.
    OutOfMemory {
        /// Modeled resident bytes of the requested configuration.
        required: usize,
        /// Device memory capacity, bytes.
        available: usize,
    },
    /// A state or derived field picked up a NaN/Inf.
    NonFinite {
        /// Which field went non-finite (e.g. `"accel"`, `"de/dt"`).
        what: &'static str,
        /// First offending index.
        index: usize,
    },
    /// The momentum PCG failed to converge (stall or indefinite operator).
    PcgBreakdown {
        /// Residual at the point of breakdown.
        residual: f64,
        /// Iterations spent.
        iterations: usize,
    },
    /// A zone Jacobian determinant went non-positive (mesh inversion).
    MeshTangled {
        /// Quadrature point index (global).
        point: usize,
        /// Zone owning the point.
        zone: usize,
        /// The offending determinant.
        detj: f64,
    },
    /// Writing or restoring a checkpoint failed (I/O or decode). Not
    /// dt-related, so rollback cannot clear it.
    Checkpoint {
        /// Human-readable cause.
        detail: String,
    },
    /// The step auditor (or an ABFT GEMM checksum) caught silent data
    /// corruption: a physics invariant moved past its tolerance with no
    /// loud fault anywhere. Recoverable by rollback — the redo re-executes
    /// at the *same* dt (corruption is not a CFL problem), and a transient
    /// flip will not re-fire; a stuck bit exhausts [`crate::MAX_STEP_REDOS`]
    /// and surfaces this error to the caller, checkpoint store intact.
    CorruptionDetected {
        /// Step-attempt ordinal at which the audit tripped.
        step: u64,
        /// Which audit fired (`"energy"`, `"symmetry"`, `"geometry"`,
        /// `"finite"`, `"range"`, `"frozen-crc"`, `"abft"`).
        audit: &'static str,
        /// The measured invariant violation magnitude.
        measured: f64,
        /// The tolerance it exceeded.
        tolerance: f64,
    },
}

impl HydroError {
    /// Whether rolling the step back and halving dt can plausibly clear
    /// the failure. Device faults are not dt-related: those are handled by
    /// degrading to the CPU path instead.
    pub fn recoverable_by_rollback(&self) -> bool {
        matches!(
            self,
            HydroError::NonFinite { .. }
                | HydroError::PcgBreakdown { .. }
                | HydroError::MeshTangled { .. }
                | HydroError::CorruptionDetected { .. }
        )
    }
}

impl From<GpuError> for HydroError {
    fn from(e: GpuError) -> Self {
        HydroError::Gpu(e)
    }
}

impl std::fmt::Display for HydroError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HydroError::Gpu(e) => write!(f, "{e}"),
            HydroError::OutOfMemory { required, available } => write!(
                f,
                "out of device memory: modeled footprint needs {required} B of {available} B — \
                 shrink the problem or use AssemblyMode::MatrixFree"
            ),
            HydroError::NonFinite { what, index } => {
                write!(f, "non-finite value in {what} at index {index}")
            }
            HydroError::PcgBreakdown { residual, iterations } => write!(
                f,
                "momentum PCG broke down after {iterations} iterations (residual {residual:.3e})"
            ),
            HydroError::MeshTangled { point, zone, detj } => write!(
                f,
                "mesh tangled: |J| = {detj} at point {point} (zone {zone}) — reduce the CFL"
            ),
            HydroError::Checkpoint { detail } => write!(f, "checkpoint failure: {detail}"),
            HydroError::CorruptionDetected { step, audit, measured, tolerance } => write!(
                f,
                "silent data corruption detected at step {step}: {audit} audit measured \
                 {measured:.6e} against tolerance {tolerance:.6e}"
            ),
        }
    }
}

impl std::error::Error for HydroError {}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::TransferDir;

    #[test]
    fn rollback_classification() {
        assert!(HydroError::NonFinite { what: "accel", index: 3 }.recoverable_by_rollback());
        assert!(HydroError::PcgBreakdown { residual: 1.0, iterations: 9 }
            .recoverable_by_rollback());
        assert!(HydroError::MeshTangled { point: 0, zone: 0, detj: -0.1 }
            .recoverable_by_rollback());
        let sdc = HydroError::CorruptionDetected {
            step: 12,
            audit: "energy",
            measured: 3e-4,
            tolerance: 1e-9,
        };
        assert!(sdc.recoverable_by_rollback(), "audit trips redo in place first");
        let msg = sdc.to_string();
        assert!(msg.contains("step 12") && msg.contains("energy"), "replayable log line: {msg}");
        let gpu = HydroError::Gpu(GpuError::Transfer {
            direction: TransferDir::H2d,
            bytes: 64,
            attempts: 4,
        });
        assert!(!gpu.recoverable_by_rollback());
    }

    #[test]
    fn display_keeps_oom_phrase() {
        // Callers match on the canonical "out of device memory" phrase.
        let e = HydroError::Gpu(GpuError::Oom {
            device: "K20".into(),
            requested: 10,
            in_use: 0,
            capacity: 5,
        });
        assert!(e.to_string().contains("out of device memory"));
    }

    #[test]
    fn typed_oom_is_actionable_and_not_rollbackable() {
        let e = HydroError::OutOfMemory { required: 6_000_000_000, available: 5_368_709_120 };
        assert!(!e.recoverable_by_rollback(), "dt halving cannot shrink a footprint");
        let msg = e.to_string();
        assert!(msg.contains("out of device memory"), "canonical phrase: {msg}");
        assert!(msg.contains("6000000000") && msg.contains("5368709120"), "numbers: {msg}");
        assert!(msg.contains("MatrixFree"), "points at the fix: {msg}");
    }
}
