//! The canonical home of the workspace's retry policy.
//!
//! [`RetryPolicy`] started life inside gpu-sim, governing device-operation
//! retries (a failed kernel launch backs off and relaunches). The job
//! supervisor (`blast-serve`) needs the *same* ladder one level up — a job
//! that dies to an injected fault backs off and is re-attempted from its
//! last checkpoint — so the type was generalized in place (capped, jittered
//! exponential backoff with deterministic seed-driven jitter) and this
//! module re-exports it as the canonical job-facing surface.
//!
//! Why a re-export instead of a literal move: `blast-core` already depends
//! on `gpu-sim` (the solver owns device handles), so hoisting the type
//! *up* into this crate would invert that edge into a cycle. The struct
//! therefore stays defined in the leaf crate and is published from here;
//! both ladders share one definition, which is the point of the
//! extraction. See DESIGN.md §13.
//!
//! Billing contract: a backoff wait is *simulated idle time*. Device-level
//! retries advance the device clock directly (gpu-sim bills the gap at
//! idle watts); job-level retries go through
//! [`Executor::bill_backoff_wait`](crate::exec::Executor::bill_backoff_wait),
//! which idles both devices and returns the joules charged so the
//! supervisor can attribute them to the retrying tenant.

pub use gpu_sim::fault::{fault_draw, RetryPolicy};

/// Total backoff a policy would charge across `retries` consecutive
/// failures (the worst-case wait before the ladder gives up) — used by
/// admission control to bound a job's retry exposure.
pub fn worst_case_backoff_s(policy: &RetryPolicy, retries: u32) -> f64 {
    (0..retries).map(|a| policy.backoff_s(a)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceCatalog;
    use crate::exec::{ExecMode, Executor};
    use gpu_sim::{CpuSpec, FaultKind, FaultPlan, GpuDevice};
    use std::sync::Arc;

    #[test]
    fn cap_bounds_every_wait_and_the_worst_case_sum() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_s: 1e-3,
            multiplier: 2.0,
            ..RetryPolicy::default()
        }
        .with_cap(4e-3);
        for attempt in 0..10 {
            assert!(p.backoff_s(attempt) <= 4e-3 + 1e-18, "attempt {attempt}");
        }
        assert_eq!(p.backoff_s(0), 1e-3, "pre-cap waits are untouched");
        assert_eq!(p.backoff_s(1), 2e-3);
        assert_eq!(p.backoff_s(5), 4e-3, "32e-3 clamps");
        let worst = worst_case_backoff_s(&p, 10);
        assert!(worst <= 10.0 * 4e-3 + 1e-15);
        assert_eq!(worst, (0..10).map(|a| p.backoff_s(a)).sum::<f64>());
    }

    #[test]
    fn give_up_is_exact_at_the_retry_budget() {
        let p = RetryPolicy { max_retries: 3, ..RetryPolicy::default() };
        assert!(!p.gives_up_after(2), "third retry is still allowed");
        assert!(p.gives_up_after(3), "fourth is not");
        assert!(p.gives_up_after(99));
    }

    #[test]
    fn backoff_wait_is_billed_at_idle_power_on_both_devices() {
        let gpu = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
        let ex = Executor::new(
            ExecMode::Gpu { base: false, gpu_pcg: false, mpi_queues: 1 },
            CpuSpec::e5_2670(),
            Some(gpu.clone()),
        );
        let p = RetryPolicy::default().with_jitter(0.25, 42).with_cap(1.0);
        let wait = p.backoff_s(2);
        assert!(wait > 0.0);

        let host0 = ex.host.now();
        let joules = ex.bill_backoff_wait(wait);
        // Both clocks advanced through the gap.
        assert!((ex.host.now() - host0 - wait).abs() < 1e-15);
        assert!((gpu.now() - wait).abs() < 1e-15);
        // And the charge is exactly idle watts x wait on both devices...
        let host_idle_w =
            ex.host.spec().power.idle_pkg_w + ex.host.spec().power.idle_dram_w;
        let idle_w = host_idle_w + gpu.spec().idle_w;
        assert!((joules - wait * idle_w).abs() <= 1e-12 * joules.max(1.0));
        // ...which is what the power traces bill for the gap too (gaps
        // integrate at idle watts), so nothing is lost or double-billed.
        let traced = ex.host.power_trace().energy(0.0, wait)
            + gpu.power_trace().energy(0.0, wait);
        assert!((traced - joules).abs() <= 1e-9 * joules.max(1.0));
    }

    #[test]
    fn device_retry_ladder_bills_the_jittered_backoff_as_idle_time() {
        // A transient launch fault with a jittered policy: the device's
        // retry ladder must charge exactly the policy's (jittered) wait.
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        dev.set_fault_plan(FaultPlan::seeded(3).with_transient(FaultKind::LaunchFail, 0));
        let policy = RetryPolicy::default().with_jitter(0.5, 7).with_cap(1.0);
        dev.set_retry_policy(policy);
        let cfg = gpu_sim::LaunchConfig {
            grid_blocks: 1,
            block_threads: 128,
            shared_bytes: 0,
            regs_per_thread: 32,
        };
        dev.launch("k", &cfg, &gpu_sim::Traffic::default(), || ()).unwrap();
        let stats = dev.fault_stats();
        assert_eq!(stats.retries, 1);
        assert!((stats.backoff_s - policy.backoff_s(0)).abs() < 1e-18);
        assert!(stats.backoff_s != RetryPolicy::default().backoff_s(0), "jitter moved the wait");
    }
}
