//! Execution modes and the executor state (devices, balancer).

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use autotune::AutoBalancer;
use blast_telemetry::{names, Telemetry, TelemetrySink, Track};
use gpu_sim::{CpuDevice, CpuSpec, GpuDevice, Traffic};
use powermon::{CpuPowerState, ResilienceReport};

use blast_kernels::base::MonolithicCornerForce;
use blast_kernels::k7::FzKernel;
use blast_kernels::k8_10::{EnergyRhsKernel, MomentumRhsKernel};
use blast_kernels::sumfac::{
    SumfacEnergyKernel, SumfacFactors, SumfacForceKernel, SumfacMomentumKernel,
};
use blast_kernels::ProblemShape;

/// Fraction of CPU peak the corner-force inner loops sustain at low order
/// (irregular, hard-to-vectorize per-quadrature-point code).
pub const CF_CPU_EFF: f64 = 0.15;

/// Order-dependent CPU corner-force efficiency: the higher-order corner
/// force spends most of its time in larger dense batched products
/// (e.g. 375x512 `A_z` tiles at Q4), which vectorize far better than the
/// scalar-heavy SVD/eigenvalue work that dominates at Q2.
pub fn cf_cpu_eff(order: usize) -> f64 {
    match order {
        0..=2 => CF_CPU_EFF,
        3 => 0.22,
        _ => 0.30,
    }
}

/// Fraction of CPU peak the sparse CG solver sustains when compute-bound
/// (it is memory-bound in practice; the roofline takes the max).
pub const CG_CPU_EFF: f64 = 0.30;

/// How the corner force (and optionally the momentum solve) executes.
///
/// # Derivation from a device inventory
///
/// Fleet-aware entry points ([`HydroBuilder::device`], [`HydroBuilder::fleet`],
/// and the [`crate::fleet`] predictor) do not take a mode — they derive one
/// from the `gpu_sim::DeviceSpec` they are handed:
///
/// | device inventory                | derived mode                                      |
/// |---------------------------------|---------------------------------------------------|
/// | has a GPU                       | `Gpu { base: false, gpu_pcg: true, mpi_queues: 1 }` |
/// | CPU-only, `host.cores == 1`     | `CpuSerial`                                       |
/// | CPU-only, `host.cores > 1`      | `CpuParallel { threads: host.cores }`             |
///
/// The GPU default keeps the momentum solve on the device (`gpu_pcg:
/// true`) because transferring `dv/dt` beats transferring `-F·1` on every
/// catalog GPU; routing additionally *candidates* the `gpu_pcg: false`
/// variant per job (the paper's per-phase CPU/GPU placement, §4.2) and
/// lets the measured pilot decide. [`Hybrid`](ExecMode::Hybrid) is never
/// derived — the §3.3 auto-balanced split stays an explicit opt-in.
/// Thread counts come from the *spec* (`host.cores`), never from the
/// ambient rayon pool, so derived modes are identical across
/// `BLAST_THREADS` settings.
///
/// [`HydroBuilder::device`]: crate::HydroBuilder::device
/// [`HydroBuilder::fleet`]: crate::HydroBuilder::fleet
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Single-threaded CPU reference.
    CpuSerial,
    /// Rayon-parallel CPU (the OpenMP analog).
    CpuParallel {
        /// Worker threads (must not exceed the CPU's core count).
        threads: u32,
    },
    /// Simulated GPU.
    Gpu {
        /// Use the monolithic base kernel instead of the optimized ones.
        base: bool,
        /// Solve the momentum system on the GPU (kernel 9) instead of the
        /// host ("Whether the vector dv/dt after kernel 9 or the vector
        /// -F·1 after kernel 8 is transferred to the host depends on
        /// turning on/off the CUDA-PCG solver").
        gpu_pcg: bool,
        /// MPI ranks sharing the device through Hyper-Q.
        mpi_queues: u32,
    },
    /// CPU + GPU with the §3.3 auto-balanced zone split.
    Hybrid {
        /// CPU worker threads for the OpenMP share.
        threads: u32,
    },
}

impl ExecMode {
    /// The OpenMP-analog mode sized from the host pool's *measured*
    /// thread count (`BLAST_THREADS` / runtime override / detected
    /// parallelism) instead of a hard-coded 8 — so the roofline cost
    /// model and the RAPL utilization interpolation see the thread
    /// count the machine actually runs.
    pub fn cpu_parallel_measured(host: &CpuSpec) -> Self {
        ExecMode::CpuParallel { threads: host.measured_threads() }
    }
}

/// Simulated seconds a recovery barrier quiesces both devices: in-flight
/// work drains and survivors synchronize before restoring (billed at idle
/// watts on host and device).
pub const RECOVERY_QUIESCE_S: f64 = 5e-3;

/// Running totals of what the resilience machinery cost — filled in by the
/// checkpoint/restore/recovery billing calls and merged into the
/// [`ResilienceReport`].
#[derive(Debug, Default)]
struct ResilienceLedger {
    checkpoints_written: Cell<u64>,
    checkpoint_bytes: Cell<u64>,
    restores: Cell<u64>,
    rank_deaths: Cell<u64>,
    redo_faults: Cell<u64>,
    resilience_s: Cell<f64>,
    resilience_energy_j: Cell<f64>,
    audits_run: Cell<u64>,
    corruptions_detected: Cell<u64>,
    sdc_flips_injected: Cell<u64>,
    audit_s: Cell<f64>,
    audit_energy_j: Cell<f64>,
}

/// Executor state: devices and (for hybrid) the balancer.
pub struct Executor {
    /// The execution mode.
    pub mode: ExecMode,
    /// The host CPU (always present: integration and setup run here).
    pub host: CpuDevice,
    /// The GPU, when the mode uses one.
    pub gpu: Option<Arc<GpuDevice>>,
    /// The auto-balancer, for hybrid mode.
    pub balancer: Option<AutoBalancer>,
    /// Whether a persistent device fault forced execution onto the CPU.
    degraded: Cell<bool>,
    /// Human-readable cause of the degradation, when it happened.
    degraded_reason: RefCell<Option<String>>,
    /// Checkpoint/restore/rank-death cost accounting.
    ledger: ResilienceLedger,
    /// The unified telemetry recorder both devices emit into (shared, so
    /// host phases and GPU launches land on one simulated-time axis).
    telemetry: TelemetrySink,
    /// Pool counters at the last [`Executor::record_pool_counters`] sample
    /// (the shim's statistics are process-cumulative; deltas attribute
    /// them to this executor's run).
    pool_baseline: Cell<rayon::PoolStats>,
    /// Catalog id of the device this executor models
    /// (`gpu_sim::DeviceCatalog`), when a fleet-aware caller pinned one.
    /// Keys the per-device autotune caches — see [`Executor::device_key`].
    device_id: Option<String>,
}

impl Executor {
    /// Builds an executor for `mode` with the given host CPU and optional
    /// GPU.
    pub fn new(mode: ExecMode, host_spec: CpuSpec, gpu: Option<Arc<GpuDevice>>) -> Self {
        Self::with_telemetry(mode, host_spec, gpu, Telemetry::sink())
    }

    /// [`Executor::new`] with a caller-supplied telemetry sink — the hook
    /// for sharing one recorder across several executors (e.g. the ranks
    /// of a cluster campaign) or for a prereserved ring capacity.
    pub fn with_telemetry(
        mode: ExecMode,
        host_spec: CpuSpec,
        gpu: Option<Arc<GpuDevice>>,
        telemetry: TelemetrySink,
    ) -> Self {
        match &mode {
            ExecMode::CpuSerial => {}
            ExecMode::CpuParallel { threads } | ExecMode::Hybrid { threads } => {
                assert!(
                    *threads >= 1 && *threads <= host_spec.cores,
                    "thread count {threads} out of range for {}",
                    host_spec.name
                );
            }
            ExecMode::Gpu { .. } => {}
        }
        let needs_gpu = matches!(mode, ExecMode::Gpu { .. } | ExecMode::Hybrid { .. });
        assert!(
            !needs_gpu || gpu.is_some(),
            "mode {mode:?} requires a GPU device"
        );
        if let (ExecMode::Gpu { mpi_queues, .. }, Some(dev)) = (&mode, &gpu) {
            dev.set_active_queues(*mpi_queues);
        }
        let balancer = matches!(mode, ExecMode::Hybrid { .. }).then(|| AutoBalancer::new(0.5));
        let host = CpuDevice::new(host_spec);
        host.attach_telemetry(telemetry.clone());
        if let Some(dev) = &gpu {
            dev.attach_telemetry(telemetry.clone());
        }
        Self {
            mode,
            host,
            gpu,
            balancer,
            degraded: Cell::new(false),
            degraded_reason: RefCell::new(None),
            ledger: ResilienceLedger::default(),
            telemetry,
            pool_baseline: Cell::new(rayon::pool_stats()),
            device_id: None,
        }
    }

    /// Pins the catalog device id this executor models (fleet-aware
    /// builders and routers set it; standalone executors leave it unset).
    pub fn set_device_id(&mut self, id: impl Into<String>) {
        self.device_id = Some(id.into());
    }

    /// The pinned catalog device id, when a fleet-aware caller set one.
    pub fn device_id(&self) -> Option<&str> {
        self.device_id.as_deref()
    }

    /// The key this executor's autotune lookups are cached under: the
    /// pinned catalog id when set, else the GPU model name, else the host
    /// CPU model name — so two different devices never share a validated
    /// tile / stream / assembly choice, while repeated runs on the same
    /// device replay theirs.
    pub fn device_key(&self) -> &str {
        if let Some(id) = self.device_id.as_deref() {
            return id;
        }
        match &self.gpu {
            Some(g) => g.spec().name,
            None => self.host.spec().name,
        }
    }

    /// The unified telemetry recorder this executor's devices emit into.
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Samples the work-stealing pool's process-wide counters and charges
    /// the delta since the previous sample to this executor's telemetry
    /// (steal/block/parallel-call counters plus the active-thread gauge).
    pub fn record_pool_counters(&self) {
        let now = rayon::pool_stats();
        let prev = self.pool_baseline.replace(now);
        let tel = &self.telemetry;
        tel.counter_add(names::counters::POOL_CALLS, now.parallel_calls - prev.parallel_calls);
        tel.counter_add(names::counters::POOL_BLOCKS, now.blocks_executed - prev.blocks_executed);
        tel.counter_add(names::counters::POOL_STEALS, now.steals - prev.steals);
        tel.gauge_set(names::gauges::POOL_THREADS, rayon::current_num_threads() as f64);
    }

    /// Corner-force flop efficiency fed to the roofline: the *measured*
    /// tiled micro-kernel throughput when the host spec was calibrated
    /// (`CpuSpec::calibrate_host_gflops`, fed by `autotune::host_tiles`),
    /// else the modeled order-dependent default [`cf_cpu_eff`].
    pub fn cf_eff(&self, order: usize) -> f64 {
        self.host.spec().host_flop_efficiency().unwrap_or_else(|| cf_cpu_eff(order))
    }

    /// Whether a persistent device fault has forced all execution onto the
    /// CPU path for the rest of the run.
    pub fn is_degraded(&self) -> bool {
        self.degraded.get()
    }

    /// Why the executor degraded, if it did.
    pub fn degraded_reason(&self) -> Option<String> {
        self.degraded_reason.borrow().clone()
    }

    /// Marks the executor as degraded: every subsequent force evaluation
    /// and energy solve runs on the CPU, regardless of `mode`. Idempotent —
    /// only the first call's reason is kept (and logged).
    pub fn degrade_to_cpu(&self, reason: impl Into<String>) {
        if self.degraded.replace(true) {
            return;
        }
        let reason = reason.into();
        eprintln!("blast-core: GPU fault persisted past retries, degrading to CPU: {reason}");
        self.telemetry.instant(Track::Host, names::phases::DEGRADE_TO_CPU, self.host.now());
        *self.degraded_reason.borrow_mut() = Some(reason);
    }

    /// Assembles the resilience report for a finished (or in-flight) run:
    /// the device's fault counters, the retry backoff charged as idle-power
    /// energy, the checkpoint/restore/rank-death ledger, and whether the
    /// run degraded to the CPU path. `steps_redone` is the solver's
    /// rollback counter (`RunStats::retries`).
    pub fn resilience_report(&self, steps_redone: usize) -> ResilienceReport {
        let stats = self.gpu.as_ref().map(|g| g.fault_stats()).unwrap_or_default();
        let idle_w = self.gpu.as_ref().map(|g| g.spec().idle_w).unwrap_or(0.0);
        ResilienceReport {
            faults_injected: stats.injected,
            retries: stats.retries,
            recovered: stats.recovered,
            exhausted: stats.failed,
            steps_redone,
            backoff_s: stats.backoff_s,
            backoff_energy_j: stats.backoff_s * idle_w,
            checkpoints_written: self.ledger.checkpoints_written.get(),
            checkpoint_bytes: self.ledger.checkpoint_bytes.get(),
            restores: self.ledger.restores.get(),
            rank_deaths: self.ledger.rank_deaths.get(),
            redo_faults: self.ledger.redo_faults.get(),
            resilience_s: self.ledger.resilience_s.get(),
            resilience_energy_j: self.ledger.resilience_energy_j.get(),
            audits_run: self.ledger.audits_run.get(),
            corruptions_detected: self.ledger.corruptions_detected.get(),
            sdc_flips_injected: self.ledger.sdc_flips_injected.get(),
            audit_s: self.ledger.audit_s.get(),
            audit_energy_j: self.ledger.audit_energy_j.get(),
            degraded_to_cpu: self.is_degraded(),
            degraded_reason: self.degraded_reason(),
            tenant_energy_j: Vec::new(),
        }
    }

    /// Traffic of serializing/deserializing one checkpoint image on the
    /// host: the state streams out of DRAM and the image streams back in
    /// (or vice versa on restore), plus the cheap CRC pass.
    pub fn checkpoint_traffic(bytes: usize) -> Traffic {
        Traffic {
            flops: bytes as f64, // ~1 table lookup + xor/shift per byte
            dram_bytes: 2.0 * bytes as f64,
            ..Default::default()
        }
    }

    /// Runs a resilience phase on the host timeline (the device quiesces —
    /// idles — for its duration) and charges its energy to the ledger.
    fn bill_phase(&self, name: &'static str, bytes: usize) -> f64 {
        let traffic = Self::checkpoint_traffic(bytes);
        let (_, t) = self.host.run_phase(name, &traffic, 1, CG_CPU_EFF, CpuPowerState::Busy, || ());
        if let Some(g) = &self.gpu {
            g.idle(t);
        }
        let util = 1.0 / self.host.spec().cores as f64;
        let reading = self.host.spec().power.read(CpuPowerState::Busy, util);
        let host_w = reading.pkg_watts + reading.dram_watts;
        let gpu_idle_w = self.gpu.as_ref().map(|g| g.spec().idle_w).unwrap_or(0.0);
        self.ledger.resilience_s.set(self.ledger.resilience_s.get() + t);
        self.ledger
            .resilience_energy_j
            .set(self.ledger.resilience_energy_j.get() + t * (host_w + gpu_idle_w));
        t
    }

    /// Bills one coordinated checkpoint write of `bytes` serialized bytes:
    /// a DRAM-write phase on the host while the device quiesces at idle
    /// watts. Returns the modeled seconds.
    pub fn bill_checkpoint_write(&self, bytes: usize) -> f64 {
        self.ledger.checkpoints_written.set(self.ledger.checkpoints_written.get() + 1);
        self.ledger.checkpoint_bytes.set(self.ledger.checkpoint_bytes.get() + bytes as u64);
        self.telemetry.counter_add(names::counters::CHECKPOINTS_WRITTEN, 1);
        self.bill_phase(names::phases::CHECKPOINT_WRITE, bytes)
    }

    /// Bills one checkpoint restore of `bytes` (validation + decode + state
    /// rewrite). Returns the modeled seconds.
    pub fn bill_checkpoint_restore(&self, bytes: usize) -> f64 {
        self.ledger.restores.set(self.ledger.restores.get() + 1);
        self.telemetry.counter_add(names::counters::CHECKPOINT_RESTORES, 1);
        self.bill_phase(names::phases::CHECKPOINT_RESTORE, bytes)
    }

    /// Bills a recovery quiesce barrier ([`RECOVERY_QUIESCE_S`] by
    /// default): both devices sit idle while survivors drain in-flight work
    /// and agree on the dead set.
    pub fn bill_recovery_quiesce(&self, seconds: f64) {
        assert!(seconds >= 0.0);
        self.telemetry.span(
            Track::Cluster,
            names::phases::RECOVERY_QUIESCE,
            self.host.now(),
            seconds,
        );
        self.host.idle(seconds);
        if let Some(g) = &self.gpu {
            g.idle(seconds);
        }
        let host_idle_w =
            self.host.spec().power.idle_pkg_w + self.host.spec().power.idle_dram_w;
        let gpu_idle_w = self.gpu.as_ref().map(|g| g.spec().idle_w).unwrap_or(0.0);
        self.ledger.resilience_s.set(self.ledger.resilience_s.get() + seconds);
        self.ledger
            .resilience_energy_j
            .set(self.ledger.resilience_energy_j.get() + seconds * (host_idle_w + gpu_idle_w));
    }

    /// Bills one retry-backoff wait: both devices sit through the gap at
    /// idle watts (the power traces bill gaps at idle automatically, so
    /// advancing the clocks is the whole billing). Returns the joules
    /// charged, `seconds x (host idle + device idle watts)` — the number a
    /// job-level retry ladder attributes to the retrying tenant.
    pub fn bill_backoff_wait(&self, seconds: f64) -> f64 {
        assert!(seconds >= 0.0);
        self.telemetry.span(
            Track::Host,
            names::phases::RETRY_BACKOFF,
            self.host.now(),
            seconds,
        );
        self.host.idle(seconds);
        if let Some(g) = &self.gpu {
            g.idle(seconds);
        }
        let host_idle_w =
            self.host.spec().power.idle_pkg_w + self.host.spec().power.idle_dram_w;
        let gpu_idle_w = self.gpu.as_ref().map(|g| g.spec().idle_w).unwrap_or(0.0);
        seconds * (host_idle_w + gpu_idle_w)
    }

    /// Records peer ranks declared permanently dead.
    pub fn note_rank_deaths(&self, n: u64) {
        self.ledger.rank_deaths.set(self.ledger.rank_deaths.get() + n);
        for _ in 0..n {
            self.telemetry.instant(Track::Cluster, names::phases::RANK_DEATH, self.host.now());
        }
    }

    /// Records device faults that fired during a rollback redo attempt
    /// (threaded from the solver's redo path so the report's retry totals
    /// include them).
    pub fn note_redo_faults(&self, n: u64) {
        self.ledger.redo_faults.set(self.ledger.redo_faults.get() + n);
    }

    /// Bills one physics-invariant audit of a completed step: a host phase
    /// sized by the audit's actual arithmetic (`flops` covers the energy
    /// spmv/dots, geometry pass, symmetry probe, and any ABFT checksum
    /// flops drained since the last audit; `dram_bytes` the state and
    /// matrix traffic it streamed). The device idles for the duration —
    /// auditing is host work. Returns the modeled seconds.
    pub fn bill_audit(&self, traffic: &Traffic) -> f64 {
        self.ledger.audits_run.set(self.ledger.audits_run.get() + 1);
        self.telemetry.counter_add(names::counters::SDC_AUDITS, 1);
        let (_, t) = self.host.run_phase(
            names::phases::SDC_AUDIT,
            traffic,
            1,
            CG_CPU_EFF,
            CpuPowerState::Busy,
            || (),
        );
        if let Some(g) = &self.gpu {
            g.idle(t);
        }
        let util = 1.0 / self.host.spec().cores as f64;
        let reading = self.host.spec().power.read(CpuPowerState::Busy, util);
        let host_w = reading.pkg_watts + reading.dram_watts;
        let gpu_idle_w = self.gpu.as_ref().map(|g| g.spec().idle_w).unwrap_or(0.0);
        self.ledger.audit_s.set(self.ledger.audit_s.get() + t);
        self.ledger.audit_energy_j.set(self.ledger.audit_energy_j.get() + t * (host_w + gpu_idle_w));
        t
    }

    /// Records one detected silent-corruption event (audit trip or ABFT
    /// checksum violation) in the ledger, counters, and the trace.
    pub fn note_corruption_detected(&self) {
        self.ledger.corruptions_detected.set(self.ledger.corruptions_detected.get() + 1);
        self.telemetry.counter_add(names::counters::SDC_DETECTED, 1);
        self.telemetry.instant(Track::Host, names::phases::SDC_DETECTED, self.host.now());
    }

    /// Records silent bit flips the active `SdcPlan` actually landed.
    pub fn note_sdc_flips(&self, n: u64) {
        self.ledger.sdc_flips_injected.set(self.ledger.sdc_flips_injected.get() + n);
        self.telemetry.counter_add(names::counters::SDC_FLIPS_INJECTED, n);
    }

    /// Threads used by CPU phases under this mode.
    pub fn cpu_threads(&self) -> u32 {
        match self.mode {
            ExecMode::CpuSerial => 1,
            ExecMode::CpuParallel { threads } | ExecMode::Hybrid { threads } => threads,
            // In GPU mode every MPI rank keeps its own core busy with the
            // non-accelerated phases (CG, integration) — "only corner force
            // is accelerated on the GPU" (§4.2).
            ExecMode::Gpu { mpi_queues, .. } => mpi_queues.max(1).min(self.host.spec().cores),
        }
    }
}

/// Aggregate corner-force traffic of one force evaluation (the A_z pipeline
/// plus kernels 7, 8, 10) — used to cost the CPU path and the hybrid CPU
/// share with the *same* operation counts as the GPU path.
pub fn corner_force_traffic(shape: &ProblemShape) -> Traffic {
    MonolithicCornerForce
        .optimized_equivalent_traffic(shape)
        .add(&FzKernel::tuned().traffic(shape))
        .add(&MomentumRhsKernel.traffic(shape))
        .add(&EnergyRhsKernel.traffic(shape))
}

/// Whole-phase corner-force traffic of the *matrix-free* pipeline: the
/// fused sum-factorized force sweep plus the momentum and energy
/// right-hand-side transforms. Same physics as [`corner_force_traffic`]
/// in roughly an order of magnitude fewer flops *and* DRAM bytes at Q4 —
/// the stored path's dense `nvdof x npts x nthermo` contraction and its
/// `A_z`/`F_z` batch round-trips both disappear.
pub fn corner_force_traffic_matfree(shape: &ProblemShape, factors: &SumfacFactors) -> Traffic {
    SumfacForceKernel { use_viscosity: true }
        .traffic(shape, factors)
        .add(&SumfacMomentumKernel.traffic(shape, factors))
        .add(&SumfacEnergyKernel.traffic(shape, factors))
}

/// Per-iteration CG traffic on the host: one *blocked* SpMV over the
/// kinematic mass matrix (all `D` velocity components advance together, so
/// the matrix streams once per iteration) plus the vector operations.
///
/// When the matrix fits the package's L3 (20 MB on the E5-2670), repeated
/// iterations serve most of the stream from cache — this is why the 2D CG
/// solves are comparatively cheap in Table 1.
pub fn cg_iteration_traffic(nnz: usize, n: usize) -> Traffic {
    let matrix_bytes = nnz as f64 * (8.0 + 4.0);
    let l3_factor = if matrix_bytes < 16e6 { 0.25 } else { 1.0 };
    Traffic {
        flops: 2.0 * nnz as f64 + 10.0 * n as f64,
        dram_bytes: matrix_bytes * l3_factor + 10.0 * n as f64 * 8.0,
        ..Default::default()
    }
}

/// Per-iteration CG traffic with the fused streaming kernels active: the
/// matrix stream is unchanged, but fusing SpMV+dot, the paired axpys+norm,
/// and the precondition+dot+direction update drops the vector transits from
/// ~10n words to ~7n (z is never materialized; p, Ap, x, r each stream once
/// per fused sweep instead of once per BLAS-1 call).
pub fn cg_iteration_traffic_fused(nnz: usize, n: usize) -> Traffic {
    let matrix_bytes = nnz as f64 * (8.0 + 4.0);
    let l3_factor = if matrix_bytes < 16e6 { 0.25 } else { 1.0 };
    Traffic {
        flops: 2.0 * nnz as f64 + 10.0 * n as f64,
        dram_bytes: matrix_bytes * l3_factor + 7.0 * n as f64 * 8.0,
        ..Default::default()
    }
}

/// Per-iteration CG traffic of the SpMV-free momentum solve: one
/// sum-factorized mass apply (per scalar component, like the stored
/// billing — there is no matrix to stream, so no `nnz` term and no L3
/// discount to model) plus the same vector transits as the stored solve
/// (10n words, 7n fused).
pub fn cg_iteration_traffic_matfree(apply: &Traffic, n: usize, fused: bool) -> Traffic {
    let vec_words = if fused { 7.0 } else { 10.0 };
    let mut t = *apply;
    t.flops += 10.0 * n as f64;
    t.dram_bytes += vec_words * n as f64 * 8.0;
    t
}

/// Host-side integration traffic per RK2-average step (vector AXPYs over
/// the full state, twice per step).
pub fn integration_traffic(state_len: usize) -> Traffic {
    Traffic {
        flops: 6.0 * state_len as f64,
        dram_bytes: 18.0 * state_len as f64 * 8.0,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceCatalog;
    use gpu_sim::GpuSpec;

    #[test]
    fn cpu_modes_need_no_gpu() {
        let ex = Executor::new(ExecMode::CpuSerial, CpuSpec::e5_2670(), None);
        assert_eq!(ex.cpu_threads(), 1);
        let ex8 = Executor::new(
            ExecMode::CpuParallel { threads: 8 },
            CpuSpec::e5_2670(),
            None,
        );
        assert_eq!(ex8.cpu_threads(), 8);
    }

    #[test]
    #[should_panic(expected = "requires a GPU device")]
    fn gpu_mode_without_device_panics() {
        Executor::new(
            ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
            CpuSpec::e5_2670(),
            None,
        );
    }

    #[test]
    fn gpu_mode_sets_queues() {
        let dev = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
        let _ex = Executor::new(
            ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 8 },
            CpuSpec::e5_2670(),
            Some(dev.clone()),
        );
        assert_eq!(dev.active_queues(), 8);
    }

    #[test]
    fn hybrid_gets_a_balancer() {
        let dev = Arc::new(GpuDevice::new(GpuSpec::c2050()));
        let ex = Executor::new(
            ExecMode::Hybrid { threads: 6 },
            CpuSpec::x5660(),
            Some(dev),
        );
        assert!(ex.balancer.is_some());
        assert_eq!(ex.cpu_threads(), 6);
    }

    #[test]
    fn traffic_helpers_scale_with_size() {
        let small = corner_force_traffic(&ProblemShape::new(3, 2, 64));
        let big = corner_force_traffic(&ProblemShape::new(3, 2, 128));
        assert!((big.flops / small.flops - 2.0).abs() < 0.01);
        let cg = cg_iteration_traffic(1000, 100);
        assert!(cg.flops > 0.0 && cg.dram_bytes > 0.0);
        let it = integration_traffic(1000);
        assert!(it.dram_bytes > it.flops);
    }

    #[test]
    fn degradation_is_sticky_and_keeps_first_reason() {
        let ex = Executor::new(ExecMode::CpuSerial, CpuSpec::e5_2670(), None);
        assert!(!ex.is_degraded());
        assert_eq!(ex.degraded_reason(), None);
        ex.degrade_to_cpu("kernel launch failed after 4 attempts");
        ex.degrade_to_cpu("second fault");
        assert!(ex.is_degraded());
        assert_eq!(
            ex.degraded_reason().as_deref(),
            Some("kernel launch failed after 4 attempts")
        );
    }

    #[test]
    fn resilience_billing_lands_in_the_report_and_traces() {
        let dev = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
        let ex = Executor::new(
            ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
            CpuSpec::e5_2670(),
            Some(dev.clone()),
        );
        let t_w = ex.bill_checkpoint_write(1 << 20);
        let t_r = ex.bill_checkpoint_restore(1 << 20);
        assert!(t_w > 0.0 && t_r > 0.0);
        ex.bill_recovery_quiesce(RECOVERY_QUIESCE_S);
        ex.note_rank_deaths(2);
        ex.note_redo_faults(3);
        let rep = ex.resilience_report(0);
        assert_eq!(rep.checkpoints_written, 1);
        assert_eq!(rep.checkpoint_bytes, 1 << 20);
        assert_eq!(rep.restores, 1);
        assert_eq!(rep.rank_deaths, 2);
        assert_eq!(rep.redo_faults, 3);
        assert!(rep.resilience_s >= t_w + t_r + RECOVERY_QUIESCE_S - 1e-12);
        assert!(rep.resilience_energy_j > 0.0);
        // Both timelines advanced through the billed phases.
        assert!(ex.host.now() >= t_w + t_r + RECOVERY_QUIESCE_S - 1e-12);
        assert!(dev.now() >= t_w + t_r + RECOVERY_QUIESCE_S - 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_threads_rejected() {
        Executor::new(ExecMode::CpuParallel { threads: 99 }, CpuSpec::x5660(), None);
    }
}
