//! Physics-invariant step auditing — the silent-data-corruption detector.
//!
//! A bit flip that escapes the hardware (no ECC trap, no NaN) produces a
//! state that is *numerically plausible but physically wrong*. The only
//! defense at the application layer is to check invariants the discrete
//! scheme guarantees:
//!
//! - **Energy**: the RK2-average integrator conserves the total energy
//!   `½ vᵀ M_V v + 1ᵀ M_E e` exactly in real arithmetic (Table 6); in
//!   floating point it drifts by solver tolerance per step. A flip in
//!   `v`, `e`, `de/dt`, or the acceleration breaks `M_V a = -F·1` and
//!   shows up as a drift orders of magnitude above the band.
//! - **Mass / geometry**: `ρ|J|` is frozen in the Lagrangian frame, so
//!   density at a quadrature point is `ρ₀|J₀|/|J|`. A corrupted mesh
//!   coordinate moves `|J|`: negative determinants or compression beyond
//!   a slack factor of the ideal-gas strong-shock limit `(γ+1)/(γ-1)`
//!   are impossible in a sane run.
//! - **Symmetry**: a problem whose initial data is symmetric under the
//!   diagonal mirror `x ↔ y` (e.g. the origin-centered Sedov blast on a
//!   square mesh) stays symmetric to roundoff; a single flipped entry is
//!   maximally asymmetric.
//! - **Finite / range**: NaN/Inf scans and mesh coordinates leaving an
//!   expanded bounding box catch exponent-bit flips immediately.
//!
//! The auditor runs on a configurable cadence ([`AuditConfig::every_steps`])
//! after each accepted step candidate. Cadence is the cost/latency dial:
//! cadence 1 catches a flip before it is ever committed (the in-place
//! snapshot redo suffices); cadence `k` amortizes the audit cost over `k`
//! steps but means a corrupted state can be *committed* for up to `k-1`
//! steps — recovery then needs the checkpoint rollback in `Hydro::run`.
//! All audit scratch is owned by the auditor and grows once, preserving
//! the zero-allocation steady-state contract.

use blast_fem::geom::GeomAtPoint;
use gpu_sim::Traffic;

use crate::solver::ENERGY_RECONCILE_TOL;

/// Tuning knobs of the physics-invariant step auditor.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Audit every this-many accepted steps (1 = every step). A failed
    /// audit keeps the cadence armed, so the redo of a corrupted step is
    /// re-audited regardless of cadence.
    pub every_steps: u64,
    /// Per-step relative drift band of the discrete energy identity
    /// (scaled by the number of steps since the last audited reference).
    pub energy_tol: f64,
    /// Relative asymmetry band of the diagonal-mirror probe (vs roundoff
    /// at ~1e-12 and injected flips at >= ~4e-4).
    pub symmetry_tol: f64,
    /// Slack factor on the ideal-gas strong-shock compression limit
    /// `(γ+1)/(γ-1)` before the geometry audit trips.
    pub compression_slack: f64,
    /// Fraction of the initial domain extent the mesh may legitimately
    /// expand beyond before the range audit trips.
    pub range_slack: f64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            every_steps: 1,
            energy_tol: ENERGY_RECONCILE_TOL,
            symmetry_tol: 1e-7,
            compression_slack: 2.0,
            range_slack: 0.5,
        }
    }
}

impl AuditConfig {
    /// Sets the audit cadence (accepted steps between audits).
    #[must_use]
    pub fn every_steps(mut self, n: u64) -> Self {
        assert!(n >= 1, "audit cadence must be at least 1");
        self.every_steps = n;
        self
    }

    /// Sets the per-step energy drift band.
    #[must_use]
    pub fn energy_tol(mut self, tol: f64) -> Self {
        self.energy_tol = tol;
        self
    }

    /// Sets the symmetry-probe band.
    #[must_use]
    pub fn symmetry_tol(mut self, tol: f64) -> Self {
        self.symmetry_tol = tol;
        self
    }
}

/// Auditor state + owned scratch; owned by `Hydro` behind a `RefCell`,
/// installed via `Hydro::set_audit` / `HydroBuilder::audit`.
pub(crate) struct StepAuditor<const D: usize> {
    pub(crate) cfg: AuditConfig,
    /// Accepted step candidates since the last *passing* audit. Reset
    /// only on a pass, so a failed audit's redo is audited again.
    pub(crate) since_pass: u64,
    /// Total energy at the last trusted point (`None` = recompute from
    /// the next pre-step state, which is trusted by construction).
    pub(crate) e_ref: Option<f64>,
    /// Diagonal-mirror DOF pairing (`Some` only when the initial data is
    /// bitwise symmetric under `x ↔ y` — auto-detected at install).
    pub(crate) pairing: Option<Vec<usize>>,
    /// Expanded legal bounding box of mesh coordinates, per axis.
    pub(crate) lo: [f64; D],
    pub(crate) hi: [f64; D],
    /// `|J₀|` per (zone, quadrature point) — the compression reference.
    pub(crate) det0: Vec<f64>,
    /// Estimated cost of one audit pass (billed via `Executor::bill_audit`).
    pub(crate) traffic: Traffic,
    // Scratch (grown once, then reused).
    pub(crate) mv_v: Vec<f64>,
    pub(crate) me_e: Vec<f64>,
    pub(crate) geom: Vec<GeomAtPoint<D>>,
}

impl<const D: usize> StepAuditor<D> {
    pub(crate) fn new(cfg: AuditConfig) -> Self {
        Self {
            cfg,
            since_pass: 0,
            e_ref: None,
            pairing: None,
            lo: [f64::NEG_INFINITY; D],
            hi: [f64::INFINITY; D],
            det0: Vec::new(),
            traffic: Traffic::default(),
            mv_v: Vec::new(),
            me_e: Vec::new(),
            geom: Vec::new(),
        }
    }

    /// Ticks the cadence for one accepted step candidate; `true` when an
    /// audit is due. The counter is only reset by [`Self::note_pass`], so
    /// once due, every redo attempt stays due until one passes.
    pub(crate) fn due(&mut self) -> bool {
        self.since_pass += 1;
        self.since_pass >= self.cfg.every_steps
    }

    /// Records a passing audit: the measured energy becomes the new
    /// reference and the cadence restarts.
    pub(crate) fn note_pass(&mut self, e_total: f64) {
        self.e_ref = Some(e_total);
        self.since_pass = 0;
    }

    /// Whether the energy reference must be (re)established from a
    /// trusted state before the next audit.
    pub(crate) fn needs_reference(&self) -> bool {
        self.e_ref.is_none()
    }

    /// Establishes the energy reference from a trusted state's total.
    pub(crate) fn set_reference(&mut self, e_total: f64) {
        self.e_ref = Some(e_total);
    }

    /// Drops the energy reference — called after any checkpoint restore,
    /// because the restored state's energy differs from the last audited
    /// point's.
    pub(crate) fn reset_reference(&mut self) {
        self.e_ref = None;
    }

    /// The energy drift band for the current audit: per-step tolerance
    /// scaled by the steps accumulated since the last audited reference.
    pub(crate) fn energy_band(&self) -> f64 {
        self.cfg.energy_tol * self.since_pass.max(1) as f64
    }

    /// Whether the current state just passed an audit. Checkpoints are
    /// only written from audited-clean states — otherwise a flip that
    /// commits between an audit and a checkpoint poisons the very
    /// generation rollback would restore.
    pub(crate) fn audited_clean(&self) -> bool {
        self.since_pass == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_stays_due_until_a_pass() {
        let mut a = StepAuditor::<2>::new(AuditConfig::default().every_steps(3));
        assert!(!a.due());
        assert!(!a.due());
        assert!(a.due(), "third candidate is due");
        // A failed audit leaves the cadence armed: the redo is re-audited.
        assert!(a.due());
        a.note_pass(1.0);
        assert!(!a.due(), "cadence restarts after a pass");
        assert_eq!(a.e_ref, Some(1.0));
    }

    #[test]
    fn energy_band_scales_with_steps_since_reference() {
        let mut a = StepAuditor::<2>::new(AuditConfig::default().every_steps(4));
        for _ in 0..4 {
            a.due();
        }
        assert!((a.energy_band() - 4.0 * ENERGY_RECONCILE_TOL).abs() < 1e-24);
        a.note_pass(0.5);
        a.due();
        assert!((a.energy_band() - ENERGY_RECONCILE_TOL).abs() < 1e-24);
    }

    #[test]
    fn reference_lifecycle() {
        let mut a = StepAuditor::<2>::new(AuditConfig::default());
        assert!(a.needs_reference());
        a.set_reference(2.5);
        assert!(!a.needs_reference());
        a.reset_reference();
        assert!(a.needs_reference());
    }
}
