//! Benchmark problem definitions: Sedov blast, triple point, Taylor-Green.
//!
//! Each problem supplies the domain, initial fields, per-material adiabatic
//! index, and the final time the paper (or its reference implementation) runs to. All three
//! use reflecting-wall boundaries (normal velocity constrained to zero on
//! every domain face), which is how the Sedov quarter/octant and the
//! triple-point box are posed.

/// A hydrodynamics benchmark problem in `D` dimensions.
pub trait Problem<const D: usize> {
    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// Domain corners `(min, max)`.
    fn domain(&self) -> ([f64; D], [f64; D]);

    /// Initial mass density at a point.
    fn rho0(&self, x: &[f64; D]) -> f64;

    /// Adiabatic index of the material occupying the zone whose center is
    /// given (materials are zone-aligned in all the paper's benchmarks).
    fn gamma(&self, zone_center: &[f64; D]) -> f64;

    /// Initial specific internal energy at point `x` of the zone with the
    /// given center and size (the zone data lets Sedov deposit its energy
    /// spike into the origin zone).
    fn e0(&self, x: &[f64; D], zone_center: &[f64; D], zone_size: &[f64; D]) -> f64;

    /// Initial velocity at a point.
    fn v0(&self, x: &[f64; D]) -> [f64; D];

    /// Final time of the standard run.
    fn t_final(&self) -> f64;

    /// Whether the artificial viscosity should be enabled (off only for
    /// smooth flows).
    fn use_viscosity(&self) -> bool {
        true
    }
}

/// The Sedov blast wave: a point energy deposition into a cold uniform gas
/// drives a self-similar spherical shock. The paper's single-node and power
/// studies run the 3D version on a `16^3` domain; 2D works too.
#[derive(Clone, Copy, Debug)]
pub struct Sedov {
    /// Total deposited energy (defaults: 0.25 in 2D, 0.25 in 3D with
    /// reflecting symmetry planes at the origin).
    pub energy: f64,
    /// Adiabatic index (1.4, ideal gas).
    pub gamma: f64,
    /// Final time.
    pub t_final: f64,
}

impl Default for Sedov {
    fn default() -> Self {
        Self { energy: 0.25, gamma: 1.4, t_final: 0.6 }
    }
}

impl<const D: usize> Problem<D> for Sedov {
    fn name(&self) -> &'static str {
        "sedov"
    }

    fn domain(&self) -> ([f64; D], [f64; D]) {
        ([0.0; D], [1.2; D])
    }

    fn rho0(&self, _x: &[f64; D]) -> f64 {
        1.0
    }

    fn gamma(&self, _zone_center: &[f64; D]) -> f64 {
        self.gamma
    }

    fn e0(&self, _x: &[f64; D], zone_center: &[f64; D], zone_size: &[f64; D]) -> f64 {
        // Deposit the blast energy uniformly over the origin-corner zone
        // (a mesh-resolved approximation of the delta function; with
        // reflecting walls the domain is the positive quadrant/octant).
        let in_origin_zone = zone_center
            .iter()
            .zip(zone_size)
            .all(|(&c, &h)| c < h * 1.001);
        if in_origin_zone {
            let vol: f64 = zone_size.iter().product();
            self.energy / vol // rho0 = 1
        } else {
            // Tiny background energy keeps the sound speed finite.
            1e-10
        }
    }

    fn v0(&self, _x: &[f64; D]) -> [f64; D] {
        [0.0; D]
    }

    fn t_final(&self) -> f64 {
        self.t_final
    }
}

/// The 2D triple-point problem: three materials meeting at (1, 1.5) shear
/// and roll up into the vortex of Fig. 2. Standard setup (the paper's
/// validation case, Table 6):
///
/// - left slab `x <= 1`:            rho = 1,     p = 1,   gamma = 1.5
/// - bottom right `x > 1, y <= 1.5`: rho = 1,     p = 0.1, gamma = 1.4
/// - top right `x > 1, y > 1.5`:     rho = 0.125, p = 0.1, gamma = 1.5
#[derive(Clone, Copy, Debug)]
pub struct TriplePoint {
    /// Final time (the paper's Table 6 runs to 0.6).
    pub t_final: f64,
}

impl Default for TriplePoint {
    fn default() -> Self {
        Self { t_final: 0.6 }
    }
}

impl TriplePoint {
    fn region(x: &[f64; 2]) -> (f64, f64, f64) {
        // (rho, p, gamma)
        if x[0] <= 1.0 {
            (1.0, 1.0, 1.5)
        } else if x[1] <= 1.5 {
            (1.0, 0.1, 1.4)
        } else {
            (0.125, 0.1, 1.5)
        }
    }
}

impl Problem<2> for TriplePoint {
    fn name(&self) -> &'static str {
        "triple-point"
    }

    fn domain(&self) -> ([f64; 2], [f64; 2]) {
        ([0.0, 0.0], [7.0, 3.0])
    }

    fn rho0(&self, x: &[f64; 2]) -> f64 {
        Self::region(x).0
    }

    fn gamma(&self, zone_center: &[f64; 2]) -> f64 {
        Self::region(zone_center).2
    }

    fn e0(&self, _x: &[f64; 2], zone_center: &[f64; 2], _zone_size: &[f64; 2]) -> f64 {
        // e = p / ((gamma - 1) rho), constant per material region; evaluated
        // from the zone's material so the discontinuity stays zone-aligned.
        let (rho, p, gamma) = Self::region(zone_center);
        p / ((gamma - 1.0) * rho)
    }

    fn v0(&self, _x: &[f64; 2]) -> [f64; 2] {
        [0.0, 0.0]
    }

    fn t_final(&self) -> f64 {
        self.t_final
    }
}

/// Smooth Taylor-Green-like vortex (no shocks): used to validate high-order
/// convergence and to exercise the viscosity-off path.
#[derive(Clone, Copy, Debug)]
pub struct TaylorGreen {
    /// Final time.
    pub t_final: f64,
}

impl Default for TaylorGreen {
    fn default() -> Self {
        Self { t_final: 0.25 }
    }
}

impl Problem<2> for TaylorGreen {
    fn name(&self) -> &'static str {
        "taylor-green"
    }

    fn domain(&self) -> ([f64; 2], [f64; 2]) {
        ([0.0, 0.0], [1.0, 1.0])
    }

    fn rho0(&self, _x: &[f64; 2]) -> f64 {
        1.0
    }

    fn gamma(&self, _zone_center: &[f64; 2]) -> f64 {
        5.0 / 3.0
    }

    fn e0(&self, x: &[f64; 2], _zc: &[f64; 2], _zs: &[f64; 2]) -> f64 {
        use std::f64::consts::PI;
        let p = 0.25 * ((2.0 * PI * x[0]).cos() + (2.0 * PI * x[1]).cos()) + 1.0;
        let gamma = 5.0 / 3.0;
        p / ((gamma - 1.0) * 1.0)
    }

    fn v0(&self, x: &[f64; 2]) -> [f64; 2] {
        use std::f64::consts::PI;
        [(PI * x[0]).sin() * (PI * x[1]).cos(), -(PI * x[0]).cos() * (PI * x[1]).sin()]
    }

    fn t_final(&self) -> f64 {
        self.t_final
    }

    fn use_viscosity(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sedov_deposits_energy_in_origin_zone_only() {
        let s = Sedov::default();
        let h = [0.1, 0.1, 0.1];
        let origin_center = [0.05, 0.05, 0.05];
        let far_center = [0.55, 0.05, 0.05];
        let e_origin = Problem::<3>::e0(&s, &[0.01; 3], &origin_center, &h);
        let e_far = Problem::<3>::e0(&s, &[0.56, 0.01, 0.01], &far_center, &h);
        assert!(e_origin > 1.0);
        assert!(e_far < 1e-9);
        // Deposited energy integrates back to the requested total.
        let vol: f64 = h.iter().product();
        assert!((e_origin * vol - s.energy).abs() < 1e-12);
    }

    #[test]
    fn triple_point_regions() {
        let tp = TriplePoint::default();
        assert_eq!(tp.rho0(&[0.5, 1.0]), 1.0);
        assert_eq!(tp.rho0(&[2.0, 1.0]), 1.0);
        assert_eq!(tp.rho0(&[2.0, 2.0]), 0.125);
        assert_eq!(tp.gamma(&[0.5, 1.0]), 1.5);
        assert_eq!(tp.gamma(&[2.0, 1.0]), 1.4);
        // Pressure equilibrium across the right-side interface: same p,
        // different rho/gamma -> different e.
        let e_bot = tp.e0(&[2.0, 1.0], &[2.0, 1.0], &[0.1, 0.1]);
        let e_top = tp.e0(&[2.0, 2.0], &[2.0, 2.0], &[0.1, 0.1]);
        assert!((0.4 * 1.0 * e_bot - 0.1).abs() < 1e-12); // (gamma-1) rho e = p
        assert!((0.5 * 0.125 * e_top - 0.1).abs() < 1e-12);
    }

    #[test]
    fn taylor_green_velocity_is_divergence_free_at_center() {
        let tg = TaylorGreen::default();
        // div v = pi cos(pi x) cos(pi y) - pi cos(pi x) cos(pi y) = 0.
        let h = 1e-6;
        let x = [0.3, 0.7];
        let dvx = (tg.v0(&[x[0] + h, x[1]])[0] - tg.v0(&[x[0] - h, x[1]])[0]) / (2.0 * h);
        let dvy = (tg.v0(&[x[0], x[1] + h])[1] - tg.v0(&[x[0], x[1] - h])[1]) / (2.0 * h);
        assert!((dvx + dvy).abs() < 1e-6);
        assert!(!tg.use_viscosity());
    }

    #[test]
    fn sedov_background_nearly_cold() {
        let s = Sedov::default();
        let e = Problem::<2>::e0(&s, &[1.0, 1.0], &[1.05, 1.05], &[0.1, 0.1]);
        assert!(e > 0.0 && e < 1e-9);
    }
}
