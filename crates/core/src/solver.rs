//! The Lagrangian hydro operator: setup, force evaluation on CPU / GPU /
//! hybrid, the energy-conserving RK2-average time integrator, and timestep
//! control.

use blast_fem::geom::{eval_h1_vector, zone_jacobians};
use blast_fem::mass::{assemble_kinematic_mass, assemble_thermodynamic_mass};
use blast_fem::{BasisTable, CartMesh, H1Space, L2Space, TensorRule};
use blast_kernels::base::{compute_az_pipeline_into, MonolithicCornerForce, PipelineScratch};
use blast_kernels::k1::AdjugateDetKernel;
use blast_kernels::k11::SpmvKernel;
use blast_kernels::k2::{StressKernel, ZoneConstants};
use blast_kernels::k3::CoefGradKernel;
use blast_kernels::k4::AzKernel;
use blast_kernels::k56::BatchedDimGemm;
use blast_kernels::k7::FzKernel;
use blast_kernels::k8_10::{EnergyRhsKernel, MomentumRhsKernel};
use blast_kernels::k9::GpuPcg;
use blast_kernels::sumfac::{
    matfree_resident_bytes, stored_resident_bytes, AssemblyMode, SumfacEnergyKernel,
    SumfacFactors, SumfacForceKernel, SumfacMassKernel, SumfacMomentumKernel,
};
use blast_kernels::{GemmVariant, ProblemShape, Workspace};
use blast_la::{
    pcg_solve_instrumented, BatchedMats, BlockDiag, CsrMatrix, DiagPrecond, LinearOperator,
    PcgOptions, PcgWorkspace,
};
use blast_telemetry::{names, Track, TelemetrySink};
use gpu_sim::{
    apply_flip, CpuSpec, FaultPlan, GpuDevice, LaunchConfig, SdcFault, SdcPlan, SdcSite, Traffic,
    FAULT_SEED_ENV,
};
use powermon::CpuPowerState;
use std::sync::Arc;

use crate::audit::{AuditConfig, StepAuditor};
use crate::checkpoint::{Checkpoint, CheckpointPolicy, CheckpointStore};
use crate::error::HydroError;
use crate::exec::{
    cg_iteration_traffic, cg_iteration_traffic_fused, cg_iteration_traffic_matfree,
    corner_force_traffic, corner_force_traffic_matfree, integration_traffic, ExecMode, Executor,
    CG_CPU_EFF,
};
use crate::problems::Problem;
use crate::state::{EnergyBreakdown, HydroState};

/// Consecutive rollback-and-halve redo attempts `try_run_to` makes on one
/// step before giving up (each redo halves dt, so 8 tries covers a 256x
/// reduction).
pub const MAX_STEP_REDOS: usize = 8;

/// Relative tolerance for energy-accounting reconciliation across the
/// workspace: the per-step drift band of the discrete energy identity the
/// SDC auditor checks (Table 6 conserves total energy to solver tolerance
/// — PCG runs at `rel_tol = 1e-12` — so 1e-9 per step is three orders of
/// slack), and the band within which `blast-serve` / `bench` reconcile a
/// job ledger's per-tenant energy attribution against the trace totals.
pub const ENERGY_RECONCILE_TOL: f64 = 1e-9;

/// Solver configuration knobs.
#[derive(Clone, Copy, Debug)]
pub struct HydroConfig {
    /// Kinematic order `k` of the `Q_k`-`Q_{k-1}` method.
    pub order: usize,
    /// CFL safety factor applied to the per-point `inv_dt` control.
    pub cfl: f64,
    /// PCG options for the momentum solve.
    pub pcg: PcgOptions,
}

impl Default for HydroConfig {
    fn default() -> Self {
        Self { order: 2, cfl: 0.3, pcg: PcgOptions::default() }
    }
}

/// Outcome of one time step.
#[derive(Clone, Copy, Debug)]
pub struct StepOutcome {
    /// The dt that was applied.
    pub dt_used: f64,
    /// New CFL-limited dt estimate from the step's final force evaluation.
    pub dt_est: f64,
    /// CG iterations spent in the step's momentum solves.
    pub cg_iterations: usize,
}

/// Outcome of one *accepted* step from [`Hydro::try_advance`], after any
/// rollback / CFL redos it absorbed internally.
#[derive(Clone, Copy, Debug)]
pub struct AdvanceOutcome {
    /// The accepted step's outcome.
    pub outcome: StepOutcome,
    /// Redo attempts consumed (rollback halvings + CFL redos).
    pub redos: usize,
    /// Adaptive dt to use for the next step.
    pub dt_next: f64,
}

/// What [`Hydro::try_resume`] restored from a checkpoint store — the
/// counters and adaptive dt a resumed driver loop must continue from to
/// stay bit-identical with the uninterrupted run.
#[derive(Clone, Copy, Debug)]
pub struct ResumeInfo {
    /// Adaptive dt in effect for the next step.
    pub dt: f64,
    /// Accepted steps already taken by the checkpointed run.
    pub steps: u64,
    /// Redo count already accumulated.
    pub retries: u64,
    /// Generation id of the image that decoded cleanly.
    pub generation: u64,
    /// Newer generations skipped because they failed validation.
    pub skipped: usize,
}

/// Summary of a full run.
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// Steps taken.
    pub steps: usize,
    /// Steps that had to be redone with a smaller dt.
    pub retries: usize,
    /// Final simulation time reached.
    pub t: f64,
    /// Simulated wall-clock of the run (host timeline), seconds.
    pub wall_s: f64,
}

/// Modeled device-resident working set of a GPU corner-force evaluation:
/// per-point small matrices, a *chunked* `A_z` buffer (the `F_z` kernel
/// consumes `A_z` zone-block by zone-block, so at most 512 zones of it are
/// resident at once), `F_z`, double-buffered state vectors, and the
/// kinematic mass matrix (estimated FEM sparsity `(2k+1)^D` per row).
pub fn device_footprint<const D: usize>(
    shape: &ProblemShape,
    num_h1_dofs: usize,
    num_l2_dofs: usize,
) -> usize {
    let total = shape.total_points();
    let d2 = D * D;
    let per_point = 6 * d2 * 8 + 4 * 8;
    let az_chunk = shape.zones.min(512) * shape.nvdof() * shape.npts * 8;
    let fz = shape.zones * shape.nvdof() * shape.nthermo * 8;
    let state = (2 * D * num_h1_dofs + num_l2_dofs) * 8 * 2;
    let nnz_est = num_h1_dofs * (2 * shape.order + 1).pow(D as u32);
    let mv_bytes = nnz_est * 12 + (num_h1_dofs + 1) * 8;
    total * per_point + az_chunk + fz + state + mv_bytes
}

struct ForceEval {
    /// Stored mode: the per-zone `F_z` batch (`nvdof x nthermo`).
    /// Matrix-free mode: the per-point `D_z = α_k σ̂ adj(J)^T` batch
    /// (`d x d`) — either way, exactly what the energy rate needs next.
    fz: BatchedMats,
    accel: Vec<f64>,
    max_inv_dt: f64,
    cg_iterations: usize,
}

/// Matrix-free operator data ([`AssemblyMode::MatrixFree`]): the 1D
/// factor tables, the per-point kinematic mass scale factors
/// `svals[p] = α_{p mod npts} ρ0|J0|(p)` (frozen in the Lagrangian
/// frame, like the stored matrix they replace), and a grow-only staging
/// pool for the mass applies that run outside the step scratch (audits
/// and energy reporting stay alloc-free at steady state).
struct MatFreeOps {
    factors: SumfacFactors,
    svals: Vec<f64>,
    mass_local: std::cell::RefCell<Vec<f64>>,
}

/// The SpMV-free constrained operator: masked input, one sum-factorized
/// mass apply, identity on constrained DOFs — the same projection
/// semantics as the stored `ConstrainedOp` with no matrix anywhere. The
/// apply is bitwise-deterministic at every thread count (zone staging +
/// serial scatter), so the whole PCG is — which is why the CPU and GPU
/// momentum solves share this one type.
struct MatFreeConstrainedOp<'a> {
    shape: &'a ProblemShape,
    factors: &'a SumfacFactors,
    svals: &'a [f64],
    zone_dofs: &'a [usize],
    n: usize,
    mask: &'a [bool],
    tmp: &'a mut [f64],
    local: &'a mut Vec<f64>,
}

impl LinearOperator for MatFreeConstrainedOp<'_> {
    fn dim(&self) -> usize {
        self.n
    }
    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        for ((t, &xi), &c) in self.tmp.iter_mut().zip(x).zip(self.mask) {
            *t = if c { 0.0 } else { xi };
        }
        SumfacMassKernel.compute_with(
            self.shape,
            self.factors,
            self.svals,
            self.zone_dofs,
            self.n,
            self.tmp,
            y,
            self.local,
        );
        for (yi, (&c, &xi)) in y.iter_mut().zip(self.mask.iter().zip(x)) {
            if c {
                *yi = xi;
            }
        }
    }
}

/// Reusable buffers for the step hot path. Everything a timestep touches
/// on the heap lives here: the corner-force pipeline intermediates, the
/// `F_z` / acceleration / `de/dt` pools that [`ForceEval`] borrows from
/// (taken at the start of an evaluation, handed back by `try_step` once
/// consumed), the momentum-solve iteration vectors, and the RK2 stage
/// vectors. Buffers grow to the problem's high-water size on the first
/// step and are then reused, so steady-state timesteps perform zero heap
/// allocations (asserted by `tests/zero_alloc_steady_state.rs`). Error
/// paths may drop a taken buffer — the next step simply re-grows it.
#[derive(Debug, Default)]
struct StepScratch {
    /// Corner-force `A_z` pipeline intermediates and outputs.
    pipe: PipelineScratch,
    /// `F_z` pool (per-zone corner-force matrices).
    fz: BatchedMats,
    /// Momentum RHS (`-F·1`, component-major).
    rhs: Vec<f64>,
    /// Per-zone staging rows for the momentum RHS scatter.
    mom_local: Vec<f64>,
    /// Acceleration pool (PCG solution, component-major).
    accel: Vec<f64>,
    /// Constrained-operator masked input.
    mom_tmp: Vec<f64>,
    /// Per-component PCG solution vector.
    mom_xk: Vec<f64>,
    /// PCG iteration vectors.
    pcg: PcgWorkspace,
    /// Energy RHS (`F^T v_avg`).
    rhs_e: Vec<f64>,
    /// `de/dt` pool.
    de: Vec<f64>,
    // RK2 stage vectors (S0 snapshot, midpoint state, averaged velocity).
    s0_v: Vec<f64>,
    s0_e: Vec<f64>,
    s0_x: Vec<f64>,
    v_half: Vec<f64>,
    e_half: Vec<f64>,
    x_half: Vec<f64>,
    v_avg: Vec<f64>,
    // Pre-step snapshot for `try_advance`'s rollback / CFL redo. The PCG
    // warm-start cache is part of it: restoring `accel_prev` with the
    // state makes a redone step bit-identical to a fault-free first try.
    saved_v: Vec<f64>,
    saved_e: Vec<f64>,
    saved_x: Vec<f64>,
    saved_accel: Vec<f64>,
}

/// Zero-fills `v` at length `n`, reusing its heap buffer when possible.
fn ensure_zeroed(v: &mut Vec<f64>, n: usize) {
    v.truncate(n);
    v.iter_mut().for_each(|x| *x = 0.0);
    v.resize(n, 0.0);
}

/// Declarative configuration for one [`Hydro::run`] call: the target
/// time, a step budget, and (optionally) a checkpoint policy + store.
///
/// Built fluently:
///
/// ```ignore
/// hydro.run(&mut state, RunConfig::to(0.1))?;
/// hydro.run(&mut state, RunConfig::to(0.1).max_steps(50))?;
/// hydro.run(&mut state, RunConfig::to(0.1).checkpointed(policy, &mut store))?;
/// ```
pub struct RunConfig<'a> {
    /// Simulation time to run until.
    pub t_final: f64,
    /// Accepted-step budget (defaults to effectively unbounded).
    pub max_steps: usize,
    /// Checkpoint cadence; `None` falls back to the solver's builder-time
    /// default policy ([`CheckpointPolicy::Never`] unless overridden).
    pub policy: Option<CheckpointPolicy>,
    /// Where checkpoint generations go (and where restart looks on entry).
    /// `None` runs with a throwaway in-memory store.
    pub store: Option<&'a mut CheckpointStore>,
}

impl<'a> RunConfig<'a> {
    /// Runs until `t_final` with no step budget and no checkpointing.
    pub fn to(t_final: f64) -> RunConfig<'static> {
        RunConfig { t_final, max_steps: usize::MAX, policy: None, store: None }
    }

    /// Caps the number of accepted steps.
    #[must_use]
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Enables coordinated checkpoint/restart against `store` (restart
    /// resumes from the newest valid generation ahead of the state).
    #[must_use]
    pub fn checkpointed(
        self,
        policy: CheckpointPolicy,
        store: &'a mut CheckpointStore,
    ) -> RunConfig<'a> {
        RunConfig { policy: Some(policy), store: Some(store), ..self }
    }
}

/// Fluent constructor for [`Hydro`] — the required inputs (problem, mesh
/// resolution) are taken by [`Hydro::builder`]; everything else has a
/// default: serial execution on an E5-2670 host, order-2 elements, no
/// faults, a fresh telemetry sink.
///
/// ```ignore
/// let mut hydro = Hydro::<2>::builder(&problem, [32, 32])
///     .order(3)
///     .mode(ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 })
///     .gpu(device)
///     .telemetry(sink)
///     .build()?;
/// ```
pub struct HydroBuilder<'p, const D: usize> {
    problem: &'p dyn Problem<D>,
    zones_per_axis: [usize; D],
    config: HydroConfig,
    mode: ExecMode,
    host_spec: CpuSpec,
    gpu: Option<Arc<GpuDevice>>,
    device_id: Option<String>,
    fleet: Option<gpu_sim::DeviceCatalog>,
    executor: Option<Executor>,
    telemetry: Option<TelemetrySink>,
    gpu_fault_plan: Option<FaultPlan>,
    step_faults: usize,
    checkpoint_policy: CheckpointPolicy,
    sdc_plan: Option<SdcPlan>,
    audit: Option<AuditConfig>,
    assembly: Option<AssemblyMode>,
    assembly_auto: bool,
}

/// Modeled device-resident bytes of a builder configuration, one entry
/// per [`AssemblyMode`] — computable *before* [`HydroBuilder::build`]
/// does any mesh or assembly work, so callers (and the build-time
/// pre-check itself) can see an out-of-memory outcome coming and pick
/// the mode that fits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequiredBytes {
    /// Footprint of [`AssemblyMode::Stored`]: `A_z`/`F_z` batches,
    /// per-point small matrices, state, and the CSR mass matrix.
    pub stored: usize,
    /// Footprint of [`AssemblyMode::MatrixFree`]: `d x d` per-point data,
    /// staging rows, state, and the Jacobi diagonal.
    pub matrix_free: usize,
}

impl<'p, const D: usize> HydroBuilder<'p, D> {
    /// Kinematic order `k` of the `Q_k`-`Q_{k-1}` method (default 2).
    #[must_use]
    pub fn order(mut self, order: usize) -> Self {
        self.config.order = order;
        self
    }

    /// CFL safety factor (default 0.3).
    #[must_use]
    pub fn cfl(mut self, cfl: f64) -> Self {
        self.config.cfl = cfl;
        self
    }

    /// PCG options for the momentum solve.
    #[must_use]
    pub fn pcg(mut self, pcg: PcgOptions) -> Self {
        self.config.pcg = pcg;
        self
    }

    /// Replaces the whole solver config at once.
    #[must_use]
    pub fn config(mut self, config: HydroConfig) -> Self {
        self.config = config;
        self
    }

    /// Execution mode (default [`ExecMode::CpuSerial`]). GPU and hybrid
    /// modes also need [`Self::gpu`].
    #[must_use]
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Host CPU model (default `CpuSpec::e5_2670()`).
    #[must_use]
    pub fn host_spec(mut self, spec: CpuSpec) -> Self {
        self.host_spec = spec;
        self
    }

    /// Simulated GPU for device / hybrid modes.
    #[must_use]
    pub fn gpu(mut self, gpu: Arc<GpuDevice>) -> Self {
        self.gpu = Some(gpu);
        self
    }

    /// Targets one catalog device: sets the host CPU, a fresh simulated
    /// GPU when the spec carries one, the derived execution mode (the
    /// mapping documented on [`ExecMode`]), and the catalog id that keys
    /// the per-device autotune caches. A later [`Self::mode`] call still
    /// overrides the derived mode; [`Self::executor`] overrides all of
    /// it.
    #[must_use]
    pub fn device(mut self, dev: &gpu_sim::DeviceSpec) -> Self {
        self.host_spec = dev.host.clone();
        self.gpu = dev.gpu.as_ref().map(|g| Arc::new(GpuDevice::new(g.clone())));
        self.mode = crate::fleet::derive_mode(dev);
        self.device_id = Some(dev.id.clone());
        self.fleet = None;
        self
    }

    /// Picks the device at build time from a whole catalog: every entry
    /// is *piloted* (a throwaway solver advances a few real steps on it —
    /// see [`crate::fleet`]) and the one with the cheapest marginal
    /// modeled joules per step wins, then configures the build exactly
    /// like [`Self::device`]. Devices that cannot hold the working set
    /// are skipped; the build fails only when no entry fits. A later
    /// [`Self::device`] call (or an explicit [`Self::executor`]) wins
    /// over the survey.
    #[must_use]
    pub fn fleet(mut self, catalog: &gpu_sim::DeviceCatalog) -> Self {
        self.fleet = Some(catalog.clone());
        self
    }

    /// Uses a pre-built executor verbatim, overriding
    /// [`Self::mode`] / [`Self::host_spec`] / [`Self::gpu`] /
    /// [`Self::telemetry`] (the executor already carries all four).
    #[must_use]
    pub fn executor(mut self, exec: Executor) -> Self {
        self.executor = Some(exec);
        self
    }

    /// Telemetry sink every span / counter of this solver lands in
    /// (default: a fresh sink, retrievable via
    /// `hydro.executor().telemetry()`).
    #[must_use]
    pub fn telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Installs a deterministic device fault plan on the GPU at build
    /// time (applies to [`Self::gpu`] or the executor's device).
    #[must_use]
    pub fn gpu_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.gpu_fault_plan = Some(plan);
        self
    }

    /// Schedules `n` injected recoverable step faults (the chaos hook,
    /// same as [`Hydro::inject_step_faults`]).
    #[must_use]
    pub fn step_faults(mut self, n: usize) -> Self {
        self.step_faults = n;
        self
    }

    /// Default checkpoint policy for [`Hydro::run`] calls whose
    /// [`RunConfig`] does not name one (default [`CheckpointPolicy::Never`]).
    #[must_use]
    pub fn checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint_policy = policy;
        self
    }

    /// Installs a seeded silent-data-corruption plan: planned bit flips
    /// against device buffers, transfer payloads, committed host state,
    /// and GEMM panels, keyed to step-attempt ordinals (see
    /// [`gpu_sim::SdcPlan`]).
    #[must_use]
    pub fn sdc_plan(mut self, plan: SdcPlan) -> Self {
        self.sdc_plan = Some(plan);
        self
    }

    /// Enables the physics-invariant step auditor (the SDC detector);
    /// see [`AuditConfig`] for the cadence / tolerance knobs.
    #[must_use]
    pub fn audit(mut self, cfg: AuditConfig) -> Self {
        self.audit = Some(cfg);
        self
    }

    /// Selects how the corner-force and kinematic mass operators are
    /// realized (default [`AssemblyMode::Stored`], the paper's batched
    /// kernels). [`AssemblyMode::MatrixFree`] never materializes `A_z`,
    /// `F_z` or the CSR mass matrix — it is how `Q4` 3D runs past the
    /// stored path's device-memory ceiling.
    #[must_use]
    pub fn assembly(mut self, mode: AssemblyMode) -> Self {
        self.assembly = Some(mode);
        self.assembly_auto = false;
        self
    }

    /// Picks the assembly mode automatically at build time: matrix-free
    /// when the stored footprint cannot fit the device, otherwise
    /// whichever mode the [`autotune::assembly`] proxy search measures
    /// faster for this `(dimension, order)`. An explicit
    /// [`Self::assembly`] call wins over this.
    #[must_use]
    pub fn assembly_auto(mut self) -> Self {
        if self.assembly.is_none() {
            self.assembly_auto = true;
        }
        self
    }

    /// Modeled device-resident bytes of this configuration per assembly
    /// mode, without building anything. A stored footprint above the
    /// device capacity means [`Self::build`] would return
    /// [`HydroError::OutOfMemory`] — switch to
    /// [`AssemblyMode::MatrixFree`] (or let [`Self::assembly_auto`] do
    /// it) when the matrix-free entry fits.
    pub fn required_bytes(&self) -> RequiredBytes {
        let order = self.config.order;
        let nz: usize = self.zones_per_axis.iter().product();
        let n_h1: usize = self.zones_per_axis.iter().map(|&za| order * za + 1).product();
        let shape = ProblemShape::new(D, order, nz);
        let n_l2 = nz * shape.nthermo;
        RequiredBytes {
            stored: stored_resident_bytes(&shape, n_h1, n_l2),
            matrix_free: matfree_resident_bytes(&shape, n_h1, n_l2),
        }
    }

    /// Builds the solver. Fails when the simulated GPU cannot hold the
    /// working set (the paper's Q4-Q3 memory limit at `16^3` on K20).
    pub fn build(mut self) -> Result<Hydro<D>, HydroError> {
        // Fleet selection: pilot every catalog entry and keep the one
        // with the cheapest marginal step energy (an explicit executor
        // or a later `.device()` call disables the survey).
        if self.executor.is_none() {
            if let Some(catalog) = self.fleet.take() {
                let pilots = crate::fleet::survey_fleet(
                    self.problem,
                    self.zones_per_axis,
                    &self.config,
                    &catalog,
                    crate::fleet::PILOT_STEPS,
                )?;
                let best = pilots
                    .iter()
                    .min_by(|a, b| a.step_energy_j.total_cmp(&b.step_energy_j))
                    .expect("survey_fleet never returns an empty Ok");
                let dev =
                    catalog.lookup(&best.device_id).expect("pilot ids come from the catalog");
                self.host_spec = dev.host.clone();
                self.gpu = dev.gpu.as_ref().map(|g| Arc::new(GpuDevice::new(g.clone())));
                self.mode = best.mode.clone();
                self.device_id = Some(dev.id.clone());
            }
        }
        let exec = match self.executor {
            Some(exec) => exec,
            None => {
                let mut exec = match self.telemetry {
                    Some(sink) => {
                        Executor::with_telemetry(self.mode, self.host_spec, self.gpu, sink)
                    }
                    None => Executor::new(self.mode, self.host_spec, self.gpu),
                };
                if let Some(id) = self.device_id {
                    exec.set_device_id(id);
                }
                exec
            }
        };
        if let Some(plan) = self.gpu_fault_plan {
            if let Some(gpu) = &exec.gpu {
                gpu.set_fault_plan(plan);
            }
        }
        let mut hydro = Hydro::build_impl(
            self.problem,
            self.zones_per_axis,
            self.config,
            exec,
            self.assembly,
            self.assembly_auto,
        )?;
        hydro.default_ckpt_policy = self.checkpoint_policy;
        if self.step_faults > 0 {
            hydro.inject_step_faults(self.step_faults);
        }
        if let Some(plan) = self.sdc_plan {
            hydro.sdc_plan = std::cell::RefCell::new(plan);
        }
        if let Some(cfg) = self.audit {
            hydro.set_audit(cfg);
        }
        Ok(hydro)
    }
}

/// The BLAST solver over a structured `D`-dimensional domain.
pub struct Hydro<const D: usize> {
    kin: H1Space<D>,
    thermo: L2Space<D>,
    rule: TensorRule<D>,
    kin_table: BasisTable<D>,
    thermo_table: BasisTable<D>,
    shape: ProblemShape,
    /// Flattened zone -> global kinematic scalar DOF map.
    zone_dofs: Vec<usize>,
    /// How the corner-force and kinematic mass operators are realized.
    assembly: AssemblyMode,
    /// Stored CSR kinematic mass matrix (`None` in matrix-free mode —
    /// that is the whole point).
    mv: Option<CsrMatrix>,
    /// Matrix-free operator data (`None` in stored mode).
    matfree: Option<MatFreeOps>,
    mv_precond: DiagPrecond,
    me: BlockDiag,
    me_inv: BlockDiag,
    me_inv_csr: CsrMatrix,
    rho0detj0: Vec<f64>,
    consts: ZoneConstants,
    /// Constraint masks per velocity component (reflecting walls).
    constrained: Vec<Vec<bool>>,
    /// Previous acceleration, used to warm-start the momentum PCG (the
    /// solution changes slowly between evaluations, cutting iterations).
    accel_prev: std::cell::RefCell<Vec<f64>>,
    use_viscosity: bool,
    cfl: f64,
    pcg_opts: PcgOptions,
    exec: Executor,
    initial: HydroState,
    /// Device bytes charged at setup (0 for CPU-only modes).
    device_bytes: usize,
    /// Pending injected step faults (test/chaos hook): the next this-many
    /// `try_step` calls fail recoverably before touching any device.
    step_fault_budget: std::cell::Cell<usize>,
    /// Reusable hot-path buffers (see [`StepScratch`]). A `RefCell`
    /// because force/energy evaluations borrow it from `&self` helpers.
    scratch: std::cell::RefCell<StepScratch>,
    /// Checkpoint policy [`Self::run`] falls back to when the
    /// [`RunConfig`] names none (builder default: `Never`).
    default_ckpt_policy: CheckpointPolicy,
    /// Planned silent bit flips (inactive by default); flips are keyed to
    /// [`Self::sdc_attempt`] ordinals so a rolled-back redo of the same
    /// step re-executes clean once a transient flip is consumed.
    sdc_plan: std::cell::RefCell<SdcPlan>,
    /// Monotonic step-*attempt* ordinal (redos count), the SDC plan's clock.
    sdc_attempt: std::cell::Cell<u64>,
    /// Whether the current attempt armed a GEMM-panel flip (consumed-flip
    /// accounting happens in `try_step` after the attempt finishes).
    sdc_gemm_armed: std::cell::Cell<bool>,
    /// The physics-invariant SDC auditor, when enabled.
    audit: Option<std::cell::RefCell<StepAuditor<D>>>,
}

impl<const D: usize> Hydro<D> {
    /// Starts a fluent solver construction from the required inputs; see
    /// [`HydroBuilder`] for the optional knobs.
    pub fn builder(
        problem: &dyn Problem<D>,
        zones_per_axis: [usize; D],
    ) -> HydroBuilder<'_, D> {
        HydroBuilder {
            problem,
            zones_per_axis,
            config: HydroConfig::default(),
            mode: ExecMode::CpuSerial,
            host_spec: CpuSpec::e5_2670(),
            gpu: None,
            device_id: None,
            fleet: None,
            executor: None,
            telemetry: None,
            gpu_fault_plan: None,
            step_faults: 0,
            checkpoint_policy: CheckpointPolicy::Never,
            sdc_plan: None,
            audit: None,
            assembly: None,
            assembly_auto: false,
        }
    }

    /// Positional constructor kept for source compatibility.
    #[deprecated(note = "use `Hydro::builder(problem, zones).executor(exec).build()`")]
    pub fn new(
        problem: &dyn Problem<D>,
        zones_per_axis: [usize; D],
        config: HydroConfig,
        exec: Executor,
    ) -> Result<Self, HydroError> {
        Self::build_impl(problem, zones_per_axis, config, exec, None, false)
    }

    /// Sets up the solver: spaces, quadrature, mass matrices (assembled
    /// once — `ρ|J|` is frozen in the Lagrangian frame), initial state, and
    /// device memory accounting.
    ///
    /// Fails when the simulated GPU cannot hold the working set (the
    /// paper's Q4-Q3 memory limit at `16^3` on K20).
    fn build_impl(
        problem: &dyn Problem<D>,
        zones_per_axis: [usize; D],
        config: HydroConfig,
        exec: Executor,
        assembly: Option<AssemblyMode>,
        assembly_auto: bool,
    ) -> Result<Self, HydroError> {
        let order = config.order;
        assert!(order >= 1, "Q_k-Q_{{k-1}} needs k >= 1");
        let (dmin, dmax) = problem.domain();
        let mesh = CartMesh::new(zones_per_axis, dmin, dmax);
        let nz = mesh.num_zones();
        let kin = H1Space::new(mesh.clone(), order);
        let thermo = L2Space::new(mesh.clone(), order - 1);
        let rule = TensorRule::<D>::gauss(blast_fem::quad_points_1d(order));
        let kin_table = kin.basis().tabulate(&rule.points);
        let thermo_table = thermo.basis().tabulate(&rule.points);
        let shape = ProblemShape::new(D, order, nz);
        debug_assert_eq!(shape.npts, rule.len());
        debug_assert_eq!(shape.nkin, kin.ndof_per_zone());
        debug_assert_eq!(shape.nthermo, thermo.ndof_per_zone());

        let n = kin.num_dofs();
        let zone_dofs: Vec<usize> =
            (0..nz).flat_map(|z| kin.zone_dofs(z).iter().copied()).collect();

        // Resolve the assembly mode: explicit choice > autotuner > stored
        // (the default preserves every stored-path trajectory bitwise).
        let assembly = match assembly {
            Some(mode) => mode,
            None if assembly_auto => {
                let budget = exec.gpu.as_ref().map(|g| g.spec().dram_capacity);
                autotune::assembly::choose_assembly_mode_for(
                    exec.device_key(),
                    D,
                    order,
                    nz,
                    n,
                    thermo.num_dofs(),
                    budget,
                )
                .mode
            }
            None => AssemblyMode::Stored,
        };

        // Device footprint check happens *before* any allocation or
        // expensive assembly so an over-sized problem fails fast with the
        // numbers in hand (the paper's Q4-Q3 limit at 16^3 on the 5 GB
        // K20 — which only the stored mode hits).
        let mut device_bytes = 0usize;
        if matches!(exec.mode, ExecMode::Gpu { .. } | ExecMode::Hybrid { .. }) {
            device_bytes = match assembly {
                AssemblyMode::Stored => device_footprint::<D>(&shape, n, thermo.num_dofs()),
                AssemblyMode::MatrixFree => {
                    matfree_resident_bytes(&shape, n, thermo.num_dofs())
                }
            };
            let gpu = exec.gpu.as_ref().expect("GPU mode has a device");
            let capacity = gpu.spec().dram_capacity;
            if device_bytes > capacity {
                return Err(HydroError::OutOfMemory {
                    required: device_bytes,
                    available: capacity,
                });
            }
            gpu.alloc(device_bytes)?;
        }

        // Initial geometry and the frozen rho0 |J0|.
        let x0 = kin.initial_coords();
        let npts = rule.len();
        let mut rho0detj0 = vec![0.0; nz * npts];
        let mut geom = Vec::new();
        let mut pos = Vec::new();
        for z in 0..nz {
            zone_jacobians(&kin, &kin_table, &x0, z, &mut geom);
            eval_h1_vector(&kin, &kin_table, &x0, z, &mut pos);
            for k in 0..npts {
                assert!(geom[k].det > 0.0, "inverted initial zone {z}");
                rho0detj0[z * npts + k] = problem.rho0(&pos[k]) * geom[k].det;
            }
        }

        // Kinematic mass operator (time-independent — `ρ|J|` is frozen).
        // Stored mode assembles the global CSR matrix; matrix-free mode
        // keeps only the per-point scale factors `α_k ρ0|J0|` and the 1D
        // factor tables, with a Jacobi diagonal built in the *same
        // accumulation order* as the CSR assembly (bitwise-equal
        // preconditioner, so the PCG iterates see identical scaling).
        let (mv, matfree, mv_precond) = match assembly {
            AssemblyMode::Stored => {
                let mv = assemble_kinematic_mass(&kin, &rule, &kin_table, &rho0detj0);
                let precond = DiagPrecond::from_diagonal(&mv.diagonal());
                (Some(mv), None, precond)
            }
            AssemblyMode::MatrixFree => {
                let factors = SumfacFactors::for_shape(&shape);
                let mut svals = vec![0.0; nz * npts];
                for z in 0..nz {
                    for k in 0..npts {
                        svals[z * npts + k] = rule.weights[k] * rho0detj0[z * npts + k];
                    }
                }
                let diag =
                    SumfacMassKernel.diagonal(&shape, &factors, &svals, &zone_dofs, n);
                let precond = DiagPrecond::from_diagonal(&diag);
                let ops = MatFreeOps {
                    factors,
                    svals,
                    mass_local: std::cell::RefCell::new(Vec::new()),
                };
                (None, Some(ops), precond)
            }
        };
        let me = assemble_thermodynamic_mass(&thermo, &rule, &thermo_table, &rho0detj0);
        let me_inv = me.inverse();
        let me_inv_csr = me_inv.to_csr();

        // Zone constants.
        let h = mesh.zone_size();
        let h_min_axis = h.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut gamma = Vec::with_capacity(nz);
        let mut j0inv_diag = Vec::with_capacity(nz * D);
        for z in 0..nz {
            let c = mesh.zone_center(z);
            gamma.push(problem.gamma(&c));
            for d in 0..D {
                j0inv_diag.push(1.0 / h[d]);
            }
        }
        let consts = ZoneConstants {
            gamma,
            h0: vec![h_min_axis / order as f64; nz],
            j0inv_diag,
        };

        // Initial fields.
        let mut v0 = vec![0.0; D * n];
        for i in 0..n {
            let mut xi = [0.0; D];
            for d in 0..D {
                xi[d] = x0[d * n + i];
            }
            let vv = problem.v0(&xi);
            for d in 0..D {
                v0[d * n + i] = vv[d];
            }
        }
        let mut e0 = vec![0.0; thermo.num_dofs()];
        let zs = mesh.zone_size();
        for z in 0..nz {
            let zc = mesh.zone_center(z);
            let zo = mesh.zone_origin(mesh.zone_multi_index(z));
            for l in 0..thermo.ndof_per_zone() {
                let rf = thermo.basis().node(l);
                let mut xp = [0.0; D];
                for d in 0..D {
                    xp[d] = zo[d] + zs[d] * rf[d];
                }
                e0[thermo.zone_dof(z, l)] = problem.e0(&xp, &zc, &zs);
            }
        }

        // Reflecting walls: component `axis` constrained on axis faces.
        let mut constrained = Vec::with_capacity(D);
        for axis in 0..D {
            let mut mask = vec![false; n];
            for dof in kin.boundary_dofs(axis) {
                mask[dof] = true;
            }
            constrained.push(mask);
        }

        let initial = HydroState { v: v0, e: e0, x: x0, t: 0.0 };
        let accel_prev = std::cell::RefCell::new(vec![0.0; D * n]);
        Ok(Self {
            kin,
            thermo,
            rule,
            kin_table,
            thermo_table,
            shape,
            zone_dofs,
            assembly,
            mv,
            matfree,
            mv_precond,
            me,
            me_inv,
            me_inv_csr,
            rho0detj0,
            consts,
            constrained,
            accel_prev,
            use_viscosity: problem.use_viscosity(),
            cfl: config.cfl,
            pcg_opts: config.pcg,
            exec,
            initial,
            device_bytes,
            step_fault_budget: std::cell::Cell::new(0),
            scratch: std::cell::RefCell::new(StepScratch::default()),
            default_ckpt_policy: CheckpointPolicy::Never,
            sdc_plan: std::cell::RefCell::new(SdcPlan::none()),
            sdc_attempt: std::cell::Cell::new(0),
            sdc_gemm_armed: std::cell::Cell::new(false),
            audit: None,
        })
    }

    /// The initial `(v, e, x)` state.
    pub fn initial_state(&self) -> HydroState {
        self.initial.clone()
    }

    /// Problem shape (operand dimensions).
    pub fn shape(&self) -> &ProblemShape {
        &self.shape
    }

    /// How the corner-force and mass operators are realized.
    pub fn assembly_mode(&self) -> AssemblyMode {
        self.assembly
    }

    /// `y = M_V x` for one scalar component, through whichever operator
    /// realization is live (`y` is fully overwritten by both).
    fn mass_apply(&self, x: &[f64], y: &mut [f64]) {
        match (&self.mv, &self.matfree) {
            (Some(mv), _) => mv.spmv_into(x, y),
            (None, Some(mf)) => {
                let mut local = mf.mass_local.borrow_mut();
                SumfacMassKernel.compute_with(
                    &self.shape,
                    &mf.factors,
                    &mf.svals,
                    &self.zone_dofs,
                    self.kin.num_dofs(),
                    x,
                    y,
                    &mut local,
                );
            }
            (None, None) => unreachable!("one mass-operator realization always exists"),
        }
    }

    /// Modeled cost of one `D`-component mass apply: `(flops, dram words)`
    /// — the stored CSR stream or the sum-factorized transform chain.
    fn mass_apply_cost(&self) -> (f64, f64) {
        match (&self.mv, &self.matfree) {
            (Some(mv), _) => ((2 * D * mv.nnz()) as f64, mv.nnz() as f64),
            (None, Some(mf)) => {
                let t = SumfacMassKernel
                    .traffic(&self.shape, &mf.factors, self.kin.num_dofs())
                    .scale(D as f64);
                (t.flops, t.dram_bytes / 8.0)
            }
            (None, None) => unreachable!("one mass-operator realization always exists"),
        }
    }

    /// Kinematic space.
    pub fn kin_space(&self) -> &H1Space<D> {
        &self.kin
    }

    /// Thermodynamic space.
    pub fn thermo_space(&self) -> &L2Space<D> {
        &self.thermo
    }

    /// The executor (devices, traces).
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Mutable executor access (the rank-recovery protocol re-seeds the
    /// hybrid balancer here after a re-partition).
    pub fn executor_mut(&mut self) -> &mut Executor {
        &mut self.exec
    }

    /// Schedules `n` injected step faults: each of the next `n`
    /// [`Self::try_step`] calls fails with a *recoverable* typed error
    /// before any physics or device work happens. This drives the
    /// `MAX_STEP_REDOS` boundary tests and chaos campaigns
    /// deterministically.
    pub fn inject_step_faults(&self, n: usize) {
        self.step_fault_budget.set(self.step_fault_budget.get() + n);
    }

    /// Bytes charged on the simulated device at setup.
    pub fn device_bytes(&self) -> usize {
        self.device_bytes
    }

    /// Installs (or replaces) the physics-invariant SDC auditor.
    ///
    /// Detection is wired into recovery: a failing audit rolls the step
    /// back in [`Self::try_advance`] and redoes it at the *same* dt (a
    /// consumed transient flip makes the redo bit-identical to a
    /// fault-free step); when the in-place snapshot itself is corrupted
    /// (audit cadence > 1 let a bad state commit), [`Self::run`] falls
    /// back to the newest checkpoint. Both paths count against
    /// [`MAX_STEP_REDOS`]; exhausted budgets surface
    /// [`HydroError::CorruptionDetected`] with the store intact.
    pub fn set_audit(&mut self, cfg: AuditConfig) {
        let aud = self.build_auditor(cfg);
        self.audit = Some(std::cell::RefCell::new(aud));
    }

    /// Whether the step auditor is installed.
    pub fn audit_enabled(&self) -> bool {
        self.audit.is_some()
    }

    /// Arms one more planned flip against the installed SDC plan (the
    /// serve chaos stream injects mid-run this way).
    pub fn arm_sdc_fault(&self, fault: SdcFault) {
        self.sdc_plan.borrow_mut().arm(fault);
    }

    /// Step-attempt ordinal clock the SDC plan is keyed to (attempts so
    /// far, redos included).
    pub fn sdc_attempts(&self) -> u64 {
        self.sdc_attempt.get()
    }

    /// Seed of the installed SDC plan (printed in corruption log lines).
    pub fn sdc_seed(&self) -> u64 {
        self.sdc_plan.borrow().seed
    }

    fn build_auditor(&self, cfg: AuditConfig) -> StepAuditor<D> {
        let mut aud = StepAuditor::new(cfg);
        let n = self.kin.num_dofs();
        let npts = self.rule.len();
        let x0 = &self.initial.x;
        // Legal coordinate box: the initial bounds, padded by the slack.
        for d in 0..D {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in &x0[d * n..(d + 1) * n] {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let pad = cfg.range_slack * (hi - lo).max(f64::MIN_POSITIVE);
            aud.lo[d] = lo - pad;
            aud.hi[d] = hi + pad;
        }
        // `|J0|` reference for the strong-mass-conservation audit.
        aud.det0.resize(self.shape.zones * npts, 0.0);
        for z in 0..self.shape.zones {
            zone_jacobians(&self.kin, &self.kin_table, x0, z, &mut aud.geom);
            for k in 0..npts {
                aud.det0[z * npts + k] = aud.geom[k].det;
            }
        }
        aud.pairing = self.mirror_pairing();
        // Estimated cost of one audit pass, billed per audit: Jacobians
        // for every zone, one kinetic/internal energy evaluation, and
        // the finite/range/symmetry scans.
        let vlen = (D * n) as f64;
        let elen = self.me.dim() as f64;
        let jac = (self.shape.zones * npts * 2 * D * D * self.shape.nkin) as f64;
        let (mass_flops, mass_words) = self.mass_apply_cost();
        let energy = mass_flops + 2.0 * elen * self.shape.nthermo as f64;
        let scans = 4.0 * (2.0 * vlen + elen);
        aud.traffic = Traffic {
            flops: jac + energy + scans,
            dram_bytes: 8.0
                * (mass_words
                    + 3.0 * vlen
                    + 2.0 * elen
                    + (self.shape.zones * npts) as f64),
            ..Traffic::default()
        };
        aud
    }

    /// Diagonal-mirror (`x ↔ y`) DOF pairing, when the mesh is bitwise
    /// symmetric under the swap and the initial velocity respects it
    /// (origin-anchored square problems like Sedov). `None` disables the
    /// symmetry probe (e.g. the 7x3 triple-point domain, or Taylor-Green
    /// whose velocity field is not mirror-symmetric).
    fn mirror_pairing(&self) -> Option<Vec<usize>> {
        if D != 2 {
            return None;
        }
        let n = self.kin.num_dofs();
        let x0 = &self.initial.x;
        let mut map = std::collections::HashMap::with_capacity(n);
        for i in 0..n {
            map.insert((x0[i].to_bits(), x0[n + i].to_bits()), i);
        }
        let mut pairing = Vec::with_capacity(n);
        for i in 0..n {
            pairing.push(*map.get(&(x0[n + i].to_bits(), x0[i].to_bits()))?);
        }
        let v0 = &self.initial.v;
        for (i, &p) in pairing.iter().enumerate() {
            if v0[i].to_bits() != v0[n + p].to_bits() {
                return None;
            }
        }
        Some(pairing)
    }

    /// Total energy computed through the auditor's scratch (alloc-free
    /// once the buffers reach their high-water size).
    fn audited_energy(&self, state: &HydroState, aud: &mut StepAuditor<D>) -> f64 {
        let n = self.kin.num_dofs();
        ensure_zeroed(&mut aud.mv_v, n);
        let mut kinetic = 0.0;
        for c in 0..D {
            let vc = &state.v[c * n..(c + 1) * n];
            self.mass_apply(vc, &mut aud.mv_v);
            kinetic += 0.5 * blast_la::dense::dot(vc, &aud.mv_v);
        }
        ensure_zeroed(&mut aud.me_e, self.me.dim());
        self.me.apply(&state.e, &mut aud.me_e);
        kinetic + aud.me_e.iter().sum::<f64>()
    }

    /// Runs every invariant check against a candidate state. Returns the
    /// first violated audit as `(name, measured, tolerance)`, or `None`
    /// when the state passes (which also advances the energy reference).
    fn execute_audit(
        &self,
        state: &HydroState,
        aud: &mut StepAuditor<D>,
    ) -> Option<(&'static str, f64, f64)> {
        let n = self.kin.num_dofs();
        // NaN/Inf scans catch exponent flips and their cascades first.
        for field in [&state.v, &state.e, &state.x] {
            if let Some(&bad) = field.iter().find(|v| !v.is_finite()) {
                return Some(("finite", bad, f64::MAX));
            }
        }
        // Mesh coordinates escaping the padded initial box.
        for d in 0..D {
            let (lo, hi) = (aud.lo[d], aud.hi[d]);
            for &xv in &state.x[d * n..(d + 1) * n] {
                if xv < lo || xv > hi {
                    return Some(("range", xv, if xv < lo { lo } else { hi }));
                }
            }
        }
        // Geometry / strong mass conservation: rho/rho0 = |J0|/|J| must
        // stay positive and below the slacked strong-shock limit.
        let npts = self.rule.len();
        for z in 0..self.shape.zones {
            zone_jacobians(&self.kin, &self.kin_table, &state.x, z, &mut aud.geom);
            let g = self.consts.gamma[z];
            let limit = aud.cfg.compression_slack * (g + 1.0) / (g - 1.0);
            for k in 0..npts {
                let det = aud.geom[k].det;
                // NaN dets must trip too, not slip through the comparison.
                if det <= 0.0 || det.is_nan() {
                    return Some(("geometry", det, 0.0));
                }
                let compression = aud.det0[z * npts + k] / det;
                if compression > limit {
                    return Some(("geometry", compression, limit));
                }
            }
        }
        // Discrete energy identity vs the trusted reference.
        let total = self.audited_energy(state, aud);
        if let Some(e_ref) = aud.e_ref {
            let drift = (total - e_ref).abs() / e_ref.abs().max(f64::MIN_POSITIVE);
            let band = aud.energy_band();
            if drift > band {
                return Some(("energy", drift, band));
            }
        }
        // Diagonal-mirror symmetry probe (v and x; flips in e are the
        // energy audit's job). The pairing is an involution, so checking
        // `f_x[i]` against `f_y[p[i]]` for every `i` covers both halves.
        if let Some(p) = &aud.pairing {
            for field in [&state.v, &state.x] {
                let (fx, fy) = field.split_at(n);
                let scale = field
                    .iter()
                    .fold(0.0f64, |m, &v| m.max(v.abs()))
                    .max(f64::MIN_POSITIVE);
                let mut worst = 0.0f64;
                for i in 0..n {
                    worst = worst.max((fx[i] - fy[p[i]]).abs());
                }
                let asym = worst / scale;
                if asym > aud.cfg.symmetry_tol {
                    return Some(("symmetry", asym, aud.cfg.symmetry_tol));
                }
            }
        }
        aud.note_pass(total);
        None
    }

    /// Prints the replayable corruption log line (seed, step, measured vs
    /// tolerance) and records the detection in the ledger + trace.
    fn report_corruption(&self, err: &HydroError) {
        if let HydroError::CorruptionDetected { step, audit, measured, tolerance } = err {
            let seed = self.sdc_plan.borrow().seed;
            eprintln!(
                "[sdc] {FAULT_SEED_ENV}={seed} step-attempt {step}: {audit} audit measured \
                 {measured:.6e} against tolerance {tolerance:.6e} (rerun with \
                 {FAULT_SEED_ENV}={seed} to replay)"
            );
            self.exec.note_corruption_detected();
        }
    }

    /// Density diagnostics at the quadrature points of a state:
    /// `(max compression rho/rho0, min |J|, max |J|)`.
    ///
    /// For an ideal gas, a single strong shock cannot compress beyond
    /// `(γ+1)/(γ-1)` (= 6 at γ = 1.4) — a physics invariant the Sedov
    /// validation checks.
    pub fn density_diagnostics(&self, state: &HydroState) -> (f64, f64, f64) {
        let mut geom = Vec::new();
        let npts = self.rule.len();
        let x0 = self.kin.initial_coords();
        let mut geom0 = Vec::new();
        let mut max_compr: f64 = 0.0;
        let mut min_det = f64::INFINITY;
        let mut max_det: f64 = 0.0;
        for z in 0..self.shape.zones {
            blast_fem::geom::zone_jacobians(&self.kin, &self.kin_table, &state.x, z, &mut geom);
            blast_fem::geom::zone_jacobians(&self.kin, &self.kin_table, &x0, z, &mut geom0);
            for k in 0..npts {
                let det = geom[k].det;
                min_det = min_det.min(det);
                max_det = max_det.max(det);
                // rho/rho0 = |J0| / |J| by strong mass conservation.
                max_compr = max_compr.max(geom0[k].det / det);
            }
        }
        (max_compr, min_det, max_det)
    }

    /// Kinetic + internal energy of a state (Table 6's diagnostics).
    pub fn energies(&self, state: &HydroState) -> EnergyBreakdown {
        let n = self.kin.num_dofs();
        let mut kinetic = 0.0;
        let mut mv_v = vec![0.0; n];
        for c in 0..D {
            let vc = &state.v[c * n..(c + 1) * n];
            self.mass_apply(vc, &mut mv_v);
            kinetic += 0.5 * blast_la::dense::dot(vc, &mv_v);
        }
        let mut me_e = vec![0.0; self.me.dim()];
        self.me.apply(&state.e, &mut me_e);
        let internal: f64 = me_e.iter().sum();
        EnergyBreakdown { kinetic, internal }
    }

    /// Total mass `1^T M_E 1`-style check: the Lagrangian frame conserves
    /// it identically because `ρ|J|` is frozen.
    pub fn total_mass(&self) -> f64 {
        self.rule
            .weights
            .iter()
            .cycle()
            .zip(&self.rho0detj0)
            .map(|(&w, &r)| w * r)
            .sum()
    }

    fn project_constraints(&self, rhs: &mut [f64]) {
        let n = self.kin.num_dofs();
        for c in 0..D {
            for (i, &is_c) in self.constrained[c].iter().enumerate() {
                if is_c {
                    rhs[c * n + i] = 0.0;
                }
            }
        }
    }

    /// Suggested CFL dt for a state (runs one force evaluation; this is
    /// step 3 of the paper's algorithm, "compute initial time step").
    ///
    /// Panics on unrecoverable solver errors; see [`Self::try_suggest_dt`].
    pub fn suggest_dt(&mut self, state: &HydroState) -> f64 {
        self.try_suggest_dt(state).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Self::suggest_dt`].
    pub fn try_suggest_dt(&mut self, state: &HydroState) -> Result<f64, HydroError> {
        let ev = self.eval_force(&state.v, &state.e, &state.x)?;
        Ok(self.cfl / ev.max_inv_dt.max(1e-300))
    }

    // ----------------------------------------------------------------
    // Force evaluation (the corner-force hot spot), per execution mode.
    // ----------------------------------------------------------------

    /// Dispatches the force evaluation. Persistent device faults surfacing
    /// from the GPU or hybrid path degrade the executor to CPU-only and
    /// re-evaluate there: fault injection fires *before* a kernel's
    /// functional body runs, so the failed evaluation never produced
    /// partial physics and the CPU redo is bit-identical to a pure-CPU run.
    fn eval_force(&mut self, v: &[f64], e: &[f64], x: &[f64]) -> Result<ForceEval, HydroError> {
        let mf = self.matfree.is_some();
        if self.exec.is_degraded() {
            return if mf {
                self.eval_force_cpu_matfree(v, e, x)
            } else {
                self.eval_force_cpu(v, e, x)
            };
        }
        let attempt = match self.exec.mode {
            ExecMode::CpuSerial | ExecMode::CpuParallel { .. } => {
                return if mf {
                    self.eval_force_cpu_matfree(v, e, x)
                } else {
                    self.eval_force_cpu(v, e, x)
                }
            }
            // The `base` (monolithic) ablation only exists for the stored
            // pipeline; matrix-free has no monolithic baseline.
            ExecMode::Gpu { base, gpu_pcg, .. } => {
                if mf {
                    self.eval_force_gpu_matfree(v, e, x, gpu_pcg)
                } else {
                    self.eval_force_gpu(v, e, x, base, gpu_pcg)
                }
            }
            ExecMode::Hybrid { .. } => {
                if mf {
                    self.eval_force_hybrid_matfree(v, e, x)
                } else {
                    self.eval_force_hybrid(v, e, x)
                }
            }
        };
        match attempt {
            Err(HydroError::Gpu(g)) => {
                self.exec.degrade_to_cpu(g.to_string());
                if let Some(b) = &mut self.exec.balancer {
                    b.force_ratio(0.0);
                }
                if mf {
                    self.eval_force_cpu_matfree(v, e, x)
                } else {
                    self.eval_force_cpu(v, e, x)
                }
            }
            other => other,
        }
    }

    fn check_mesh(&self, detj: &[f64]) -> Result<(), HydroError> {
        for (p, &d) in detj.iter().enumerate() {
            // `<= 0` or NaN both mean the zone geometry is unusable.
            if d <= 0.0 || d.is_nan() {
                return Err(HydroError::MeshTangled {
                    point: p,
                    zone: p / self.shape.npts,
                    detj: d,
                });
            }
        }
        Ok(())
    }

    /// NaN/Inf guard over a freshly computed field.
    fn check_finite(what: &'static str, field: &[f64]) -> Result<(), HydroError> {
        match field.iter().position(|v| !v.is_finite()) {
            Some(index) => Err(HydroError::NonFinite { what, index }),
            None => Ok(()),
        }
    }

    fn eval_force_cpu(&mut self, v: &[f64], e: &[f64], x: &[f64]) -> Result<ForceEval, HydroError> {
        let n = self.kin.num_dofs();
        let threads = self.exec.cpu_threads();
        let traffic = corner_force_traffic(&self.shape);
        let host = &self.exec.host;
        let shape = &self.shape;
        let (fz, mut rhs, max_inv_dt) = {
            let mut ws = self.scratch.borrow_mut();
            let ws = &mut *ws;
            let ((), t) = host.run_phase(
                names::phases::CORNER_FORCE,
                &traffic,
                threads,
                self.exec.cf_eff(self.shape.order),
                CpuPowerState::Busy,
                || {
                    compute_az_pipeline_into(
                        shape,
                        x,
                        v,
                        e,
                        n,
                        &self.zone_dofs,
                        &self.kin_table.grads,
                        &self.thermo_table.values,
                        &self.rule.weights,
                        &self.rho0detj0,
                        &self.consts,
                        self.use_viscosity,
                        &mut ws.pipe,
                    );
                    ws.fz.ensure(shape.nvdof(), shape.nthermo, shape.zones);
                    FzKernel::compute(shape, &ws.pipe.az, &self.thermo_table.values, &mut ws.fz);
                    ensure_zeroed(&mut ws.rhs, D * n);
                    MomentumRhsKernel::compute_with(
                        shape,
                        &ws.fz,
                        &self.zone_dofs,
                        n,
                        &mut ws.rhs,
                        &mut ws.mom_local,
                    );
                },
            );
            if let Some(g) = &self.exec.gpu {
                g.idle(t);
            }
            self.check_mesh(&ws.pipe.detj)?;
            let max_inv_dt = ws.pipe.inv_dt.iter().cloned().fold(0.0, f64::max);
            // The F_z batch and RHS leave the scratch for the caller
            // (`try_step` hands the F_z pool buffer back once consumed).
            (std::mem::take(&mut ws.fz), std::mem::take(&mut ws.rhs), max_inv_dt)
        };
        self.project_constraints(&mut rhs);
        let (accel, iters) = self.solve_momentum_cpu(&rhs)?;
        self.scratch.borrow_mut().rhs = rhs;
        Self::check_finite("accel", &accel)?;
        Ok(ForceEval { fz, accel, max_inv_dt, cg_iterations: iters })
    }

    /// CPU force evaluation, matrix-free: one fused sum-factorized sweep
    /// replaces the whole `A_z` pipeline + kernel 7, persisting only the
    /// `d x d` per-point `D_z` batch; the momentum RHS is `d²` backward
    /// transforms of it. Phase structure, scratch reuse, determinism and
    /// error contracts mirror [`Self::eval_force_cpu`] exactly.
    fn eval_force_cpu_matfree(
        &mut self,
        v: &[f64],
        e: &[f64],
        x: &[f64],
    ) -> Result<ForceEval, HydroError> {
        let mf = self.matfree.as_ref().expect("matrix-free mode has factor tables");
        let n = self.kin.num_dofs();
        let threads = self.exec.cpu_threads();
        let traffic = corner_force_traffic_matfree(&self.shape, &mf.factors);
        let host = &self.exec.host;
        let shape = &self.shape;
        let total = shape.total_points();
        let force = SumfacForceKernel { use_viscosity: self.use_viscosity };
        let (fz, mut rhs, max_inv_dt) = {
            let mut ws = self.scratch.borrow_mut();
            let ws = &mut *ws;
            let ((), t) = host.run_phase(
                names::phases::CORNER_FORCE,
                &traffic,
                threads,
                self.exec.cf_eff(self.shape.order),
                CpuPowerState::Busy,
                || {
                    // The F_z pool carries the d x d `D_z` batch here; the
                    // pipeline's detj / inv_dt buffers are reused as-is.
                    ws.fz.ensure(D, D, total);
                    if ws.pipe.detj.len() != total {
                        ws.pipe.detj.resize(total, 0.0);
                    }
                    if ws.pipe.inv_dt.len() != total {
                        ws.pipe.inv_dt.resize(total, 0.0);
                    }
                    force.compute(
                        shape,
                        &mf.factors,
                        x,
                        v,
                        e,
                        n,
                        &self.zone_dofs,
                        &self.rule.weights,
                        &self.rho0detj0,
                        &self.consts,
                        &mut ws.fz,
                        &mut ws.pipe.detj,
                        &mut ws.pipe.inv_dt,
                    );
                    ensure_zeroed(&mut ws.rhs, D * n);
                    SumfacMomentumKernel.compute_with(
                        shape,
                        &mf.factors,
                        &ws.fz,
                        &self.zone_dofs,
                        n,
                        &mut ws.rhs,
                        &mut ws.mom_local,
                    );
                },
            );
            if let Some(g) = &self.exec.gpu {
                g.idle(t);
            }
            self.check_mesh(&ws.pipe.detj)?;
            let max_inv_dt = ws.pipe.inv_dt.iter().cloned().fold(0.0, f64::max);
            (std::mem::take(&mut ws.fz), std::mem::take(&mut ws.rhs), max_inv_dt)
        };
        self.project_constraints(&mut rhs);
        let (accel, iters) = self.solve_momentum_cpu(&rhs)?;
        self.scratch.borrow_mut().rhs = rhs;
        Self::check_finite("accel", &accel)?;
        Ok(ForceEval { fz, accel, max_inv_dt, cg_iterations: iters })
    }

    /// CPU momentum solve: one constrained PCG per velocity component,
    /// charged to the host timeline with per-iteration SpMV traffic.
    ///
    /// A stalled PCG is reported as [`HydroError::PcgBreakdown`] (the
    /// warm-start cache is only updated on full success, so a failed solve
    /// leaves no partial state behind for the rollback path).
    fn solve_momentum_cpu(&self, rhs: &[f64]) -> Result<(Vec<f64>, usize), HydroError> {
        struct ConstrainedOp<'a> {
            a: &'a CsrMatrix,
            mask: &'a [bool],
            tmp: &'a mut [f64],
        }
        impl LinearOperator for ConstrainedOp<'_> {
            fn dim(&self) -> usize {
                self.a.rows()
            }
            // Identity on constrained DOFs keeps the projected operator SPD.
            fn apply(&mut self, x: &[f64], y: &mut [f64]) {
                blast_la::stream::spmv_constrained(self.a, x, self.mask, self.tmp, y);
            }
            // Fused SpMV + `x . A x` sweep (one pass over the matrix).
            fn apply_dot(&mut self, x: &[f64], y: &mut [f64]) -> f64 {
                blast_la::stream::spmv_constrained_dot(self.a, x, self.mask, self.tmp, y)
            }
            fn apply_reference(&mut self, x: &[f64], y: &mut [f64]) {
                for ((t, &xi), &c) in self.tmp.iter_mut().zip(x).zip(self.mask) {
                    *t = if c { 0.0 } else { xi };
                }
                self.a.spmv_into(self.tmp, y);
                for (yi, (&c, &xi)) in y.iter_mut().zip(self.mask.iter().zip(x)) {
                    if c {
                        *yi = xi;
                    }
                }
            }
        }

        let n = self.kin.num_dofs();
        let (accel, total_iters) = {
            let mut ws = self.scratch.borrow_mut();
            let ws = &mut *ws;
            // The acceleration leaves the scratch pool for the returned
            // ForceEval (handed back by `try_step` once consumed).
            let mut accel = std::mem::take(&mut ws.accel);
            accel.clone_from(&self.accel_prev.borrow());
            ensure_zeroed(&mut ws.mom_tmp, n);
            ensure_zeroed(&mut ws.mom_xk, n);
            let mut total_iters = 0;
            for c in 0..D {
                ws.mom_xk.copy_from_slice(&accel[c * n..(c + 1) * n]);
                // The instrumented wrapper is bit-identical to
                // `pcg_solve_ws`; it only adds solve/iteration counters.
                let res = match (&self.mv, &self.matfree) {
                    (Some(mv), _) => {
                        let mut op = ConstrainedOp {
                            a: mv,
                            mask: &self.constrained[c],
                            tmp: &mut ws.mom_tmp,
                        };
                        pcg_solve_instrumented(
                            &mut op,
                            &self.mv_precond,
                            &rhs[c * n..(c + 1) * n],
                            &mut ws.mom_xk,
                            &self.pcg_opts,
                            &mut ws.pcg,
                            self.exec.telemetry(),
                        )
                    }
                    (None, Some(mf)) => {
                        let mut op = MatFreeConstrainedOp {
                            shape: &self.shape,
                            factors: &mf.factors,
                            svals: &mf.svals,
                            zone_dofs: &self.zone_dofs,
                            n,
                            mask: &self.constrained[c],
                            tmp: &mut ws.mom_tmp,
                            local: &mut ws.mom_local,
                        };
                        pcg_solve_instrumented(
                            &mut op,
                            &self.mv_precond,
                            &rhs[c * n..(c + 1) * n],
                            &mut ws.mom_xk,
                            &self.pcg_opts,
                            &mut ws.pcg,
                            self.exec.telemetry(),
                        )
                    }
                    (None, None) => {
                        unreachable!("one mass-operator realization always exists")
                    }
                };
                if !res.converged {
                    ws.accel = accel; // hand the pool buffer back
                    return Err(HydroError::PcgBreakdown {
                        residual: res.residual,
                        iterations: res.iterations,
                    });
                }
                total_iters += res.iterations;
                accel[c * n..(c + 1) * n].copy_from_slice(&ws.mom_xk);
            }
            (accel, total_iters)
        };
        self.accel_prev.borrow_mut().copy_from_slice(&accel);
        // Charge the CG phase on the host timeline: the scalar component
        // solves each stream the matrix (warm-starting keeps the iteration
        // counts low).
        let fused = blast_la::stream::active_stream().fused;
        let traffic = match (&self.mv, &self.matfree) {
            (Some(mv), _) => {
                if fused {
                    cg_iteration_traffic_fused(mv.nnz(), n)
                } else {
                    cg_iteration_traffic(mv.nnz(), n)
                }
            }
            (None, Some(mf)) => cg_iteration_traffic_matfree(
                &SumfacMassKernel.traffic(&self.shape, &mf.factors, n),
                n,
                fused,
            ),
            (None, None) => unreachable!("one mass-operator realization always exists"),
        }
        .scale(total_iters as f64);
        let threads = self.exec.cpu_threads();
        let state = if matches!(self.exec.mode, ExecMode::Gpu { .. }) {
            CpuPowerState::GpuOffload
        } else {
            CpuPowerState::Busy
        };
        let (_, t) = self.exec.host.run_phase(names::phases::CG_SOLVER, &traffic, threads, CG_CPU_EFF, state, || ());
        if let Some(g) = &self.exec.gpu {
            g.idle(t);
        }
        Ok((accel, total_iters))
    }

    fn eval_force_gpu(
        &mut self,
        v: &[f64],
        e: &[f64],
        x: &[f64],
        base: bool,
        gpu_pcg: bool,
    ) -> Result<ForceEval, HydroError> {
        // Invariant: Executor::new rejects GPU/Hybrid modes without a device.
        let gpu = self.exec.gpu.as_ref().expect("GPU mode has a device").clone();
        let n = self.kin.num_dofs();
        let shape = self.shape;
        let d = D;
        let total = shape.total_points();
        let t0 = gpu.now();

        // Ship (v, e, x) to the device (§3.1.2).
        gpu.h2d((2 * D * n + self.thermo.num_dofs()) * 8)?;

        let (az, inv_dt, detj);
        if base {
            let (pipe, _stats) = MonolithicCornerForce.run(
                &gpu,
                &shape,
                x,
                v,
                e,
                n,
                &self.zone_dofs,
                &self.kin_table.grads,
                &self.thermo_table.values,
                &self.rule.weights,
                &self.rho0detj0,
                &self.consts,
                self.use_viscosity,
            )?;
            az = pipe.az;
            inv_dt = pipe.inv_dt;
            detj = pipe.detj;
        } else {
            // The optimized kernel pipeline (Table 2 / Fig. 6 right).
            let k3 = CoefGradKernel::tuned();
            let mut jac = BatchedMats::zeros(d, d, total);
            k3.run(&gpu, &shape, x, n, &self.zone_dofs, &self.kin_table.grads, &mut jac)?;
            let mut gvref = BatchedMats::zeros(d, d, total);
            k3.run(&gpu, &shape, v, n, &self.zone_dofs, &self.kin_table.grads, &mut gvref)?;

            let k1 = AdjugateDetKernel { workspace: Workspace::Registers };
            let mut adj = BatchedMats::zeros(d, d, total);
            let mut det = vec![0.0; total];
            let mut hmin = vec![0.0; total];
            k1.run(&gpu, &shape, &jac, &mut adj, &mut det, &mut hmin)?;

            let inv_det: Vec<f64> = det.iter().map(|&x| 1.0 / x).collect();
            let mut gradv = BatchedMats::zeros(d, d, total);
            BatchedDimGemm::nn_tuned().run(&gpu, &gvref, &adj, Some(&inv_det), &mut gradv)?;

            let k2 = StressKernel {
                workspace: Workspace::Registers,
                use_viscosity: self.use_viscosity,
            };
            let mut sigma = BatchedMats::zeros(d, d, total);
            let mut idt = vec![0.0; total];
            k2.run(
                &gpu,
                &shape,
                e,
                &self.thermo_table.values,
                &gradv,
                &jac,
                &det,
                &hmin,
                &self.rho0detj0,
                &self.consts,
                &mut sigma,
                &mut idt,
            )?;

            let mut s = BatchedMats::zeros(d, d, total);
            BatchedDimGemm::nt_tuned().run(&gpu, &sigma, &adj, None, &mut s)?;

            let k4 = AzKernel::tuned();
            let mut az_b = BatchedMats::zeros(shape.nvdof(), shape.npts, shape.zones);
            k4.run(&gpu, &shape, &s, &self.kin_table.grads, &self.rule.weights, &mut az_b)?;

            az = az_b;
            inv_dt = idt;
            detj = det;
        }
        self.check_mesh(&detj)?;

        // Kernel 7: F_z, and kernel 8: the momentum RHS.
        let k7 = if base {
            FzKernel { variant: GemmVariant::V1, col_block: 0 }
        } else {
            FzKernel::tuned()
        };
        let mut fz = BatchedMats::zeros(shape.nvdof(), shape.nthermo, shape.zones);
        k7.run(&gpu, &shape, &az, &self.thermo_table.values, &mut fz)?;

        let mut rhs = vec![0.0; D * n];
        MomentumRhsKernel.run(&gpu, &shape, &fz, &self.zone_dofs, n, &mut rhs)?;
        self.project_constraints(&mut rhs);

        let (accel, iters) = if gpu_pcg {
            // Kernel 9: solve on the device, ship dv/dt back (warm-started
            // from the previous acceleration).
            let solver = GpuPcg {
                opts: self.pcg_opts,
                fused: blast_la::stream::active_stream().fused,
            };
            let mut accel = self.accel_prev.borrow().clone();
            let mut iters = 0;
            for c in 0..D {
                let mut xk = accel[c * n..(c + 1) * n].to_vec();
                let res = solver.solve(
                    &gpu,
                    self.mv.as_ref().expect("stored mode has a CSR mass matrix"),
                    &self.mv_precond,
                    &rhs[c * n..(c + 1) * n],
                    &self.constrained[c],
                    &mut xk,
                )?;
                if !res.converged {
                    return Err(HydroError::PcgBreakdown {
                        residual: res.residual,
                        iterations: res.iterations,
                    });
                }
                iters += res.iterations;
                accel[c * n..(c + 1) * n].copy_from_slice(&xk);
            }
            // Ship dv/dt back *before* committing the warm-start cache: if
            // the transfer fails, the host never saw the solution and the
            // CPU redo must start from the previous step's cache.
            gpu.d2h(D * n * 8)?;
            self.accel_prev.borrow_mut().copy_from_slice(&accel);
            (accel, iters)
        } else {
            // Ship -F·1 back and solve on the host.
            gpu.d2h(D * n * 8)?;
            let host_wait = gpu.now() - t0;
            self.exec.host.idle(host_wait);
            let out = self.solve_momentum_cpu(&rhs)?;
            Self::check_finite("accel", &out.0)?;
            let max_inv_dt = inv_dt.iter().cloned().fold(0.0, f64::max);
            return Ok(ForceEval { fz, accel: out.0, max_inv_dt, cg_iterations: out.1 });
        };

        // Host waited on the device for the whole evaluation.
        let host_wait = gpu.now() - t0;
        self.exec.host.idle(host_wait);

        Self::check_finite("accel", &accel)?;
        let max_inv_dt = inv_dt.iter().cloned().fold(0.0, f64::max);
        Ok(ForceEval { fz, accel, max_inv_dt, cg_iterations: iters })
    }

    /// GPU force evaluation, matrix-free: one fused force launch + one
    /// momentum launch + the SpMV-free PCG. The PCG arithmetic runs
    /// host-side through the same `MatFreeConstrainedOp` as the CPU solve
    /// (bit-identical accelerations across legs — the degraded-redo
    /// contract for free); the device timeline is billed per-iteration
    /// mass-apply launches, which is what a fused device solver would
    /// execute.
    fn eval_force_gpu_matfree(
        &mut self,
        v: &[f64],
        e: &[f64],
        x: &[f64],
        gpu_pcg: bool,
    ) -> Result<ForceEval, HydroError> {
        let gpu = self.exec.gpu.as_ref().expect("GPU mode has a device").clone();
        let mf = self.matfree.as_ref().expect("matrix-free mode has factor tables");
        let n = self.kin.num_dofs();
        let shape = self.shape;
        let total = shape.total_points();
        let t0 = gpu.now();

        // Ship (v, e, x) to the device (§3.1.2).
        gpu.h2d((2 * D * n + self.thermo.num_dofs()) * 8)?;

        let force = SumfacForceKernel { use_viscosity: self.use_viscosity };
        let mut dsf = BatchedMats::zeros(D, D, total);
        let mut detj = vec![0.0; total];
        let mut inv_dt = vec![0.0; total];
        force.run(
            &gpu,
            &shape,
            &mf.factors,
            x,
            v,
            e,
            n,
            &self.zone_dofs,
            &self.rule.weights,
            &self.rho0detj0,
            &self.consts,
            &mut dsf,
            &mut detj,
            &mut inv_dt,
        )?;
        self.check_mesh(&detj)?;

        let mom = SumfacMomentumKernel;
        let mut rhs = vec![0.0; D * n];
        let mut mom_local = Vec::new();
        gpu.launch(
            SumfacMomentumKernel::NAME,
            &mom.config(&shape),
            &mom.traffic(&shape, &mf.factors),
            || {
                mom.compute_with(&shape, &mf.factors, &dsf, &self.zone_dofs, n, &mut rhs, &mut mom_local);
            },
        )?;
        self.project_constraints(&mut rhs);

        let (accel, iters) = if gpu_pcg {
            let fused = blast_la::stream::active_stream().fused;
            let mass = SumfacMassKernel;
            let iter_traffic =
                cg_iteration_traffic_matfree(&mass.traffic(&shape, &mf.factors, n), n, fused);
            let mut accel = self.accel_prev.borrow().clone();
            let mut iters = 0;
            let mut ws = self.scratch.borrow_mut();
            let ws = &mut *ws;
            ensure_zeroed(&mut ws.mom_tmp, n);
            ensure_zeroed(&mut ws.mom_xk, n);
            for c in 0..D {
                ws.mom_xk.copy_from_slice(&accel[c * n..(c + 1) * n]);
                let res = {
                    let mut op = MatFreeConstrainedOp {
                        shape: &shape,
                        factors: &mf.factors,
                        svals: &mf.svals,
                        zone_dofs: &self.zone_dofs,
                        n,
                        mask: &self.constrained[c],
                        tmp: &mut ws.mom_tmp,
                        local: &mut ws.mom_local,
                    };
                    pcg_solve_instrumented(
                        &mut op,
                        &self.mv_precond,
                        &rhs[c * n..(c + 1) * n],
                        &mut ws.mom_xk,
                        &self.pcg_opts,
                        &mut ws.pcg,
                        self.exec.telemetry(),
                    )
                };
                if !res.converged {
                    return Err(HydroError::PcgBreakdown {
                        residual: res.residual,
                        iterations: res.iterations,
                    });
                }
                // Bill the device for the solve it (functionally) ran:
                // the per-iteration fused mass-apply sweeps.
                gpu.launch(
                    SumfacMassKernel::NAME,
                    &mass.config(&shape),
                    &iter_traffic.scale(res.iterations as f64),
                    || (),
                )?;
                iters += res.iterations;
                accel[c * n..(c + 1) * n].copy_from_slice(&ws.mom_xk);
            }
            // Ship dv/dt back *before* committing the warm-start cache.
            gpu.d2h(D * n * 8)?;
            self.accel_prev.borrow_mut().copy_from_slice(&accel);
            (accel, iters)
        } else {
            // Ship -F·1 back and solve on the host.
            gpu.d2h(D * n * 8)?;
            let host_wait = gpu.now() - t0;
            self.exec.host.idle(host_wait);
            let out = self.solve_momentum_cpu(&rhs)?;
            Self::check_finite("accel", &out.0)?;
            let max_inv_dt = inv_dt.iter().cloned().fold(0.0, f64::max);
            return Ok(ForceEval { fz: dsf, accel: out.0, max_inv_dt, cg_iterations: out.1 });
        };

        // Host waited on the device for the whole evaluation.
        let host_wait = gpu.now() - t0;
        self.exec.host.idle(host_wait);

        Self::check_finite("accel", &accel)?;
        let max_inv_dt = inv_dt.iter().cloned().fold(0.0, f64::max);
        Ok(ForceEval { fz: dsf, accel, max_inv_dt, cg_iterations: iters })
    }

    fn eval_force_hybrid(
        &mut self,
        v: &[f64],
        e: &[f64],
        x: &[f64],
    ) -> Result<ForceEval, HydroError> {
        // Invariant: Executor::new rejects GPU/Hybrid modes without a device,
        // and always pairs Hybrid with a balancer.
        let gpu = self.exec.gpu.as_ref().expect("hybrid mode has a device").clone();
        let n = self.kin.num_dofs();
        let shape = self.shape;
        let ratio = self.exec.balancer.as_ref().expect("hybrid has balancer").ratio();

        // Functional execution happens once, inside the GPU-share launch;
        // the two shares are *costed* separately at the current zone split
        // and overlap in wall-clock (§3.3: "after the launch of CUDA
        // kernels, control can return to a host thread ... each [OpenMP]
        // thread allocates private working space and executes").
        let total_traffic = corner_force_traffic(&shape);
        let gpu_traffic = total_traffic.scale(ratio);
        let cpu_traffic = total_traffic.scale(1.0 - ratio);
        let gpu_zones = ((shape.zones as f64) * ratio).round().max(1.0) as u32;
        let cfg = LaunchConfig::new(gpu_zones, 256, 8 * 1024, 48);

        gpu.h2d(((2 * D * n + self.thermo.num_dofs()) as f64 * 8.0 * ratio) as usize)?;
        let t0g = gpu.now();
        let (fz, mut rhs, max_inv_dt) = {
            let mut ws = self.scratch.borrow_mut();
            let ws = &mut *ws;
            let (_, _stats) = gpu.launch(names::phases::CORNER_FORCE_HYBRID, &cfg, &gpu_traffic, || {
                compute_az_pipeline_into(
                    &shape,
                    x,
                    v,
                    e,
                    n,
                    &self.zone_dofs,
                    &self.kin_table.grads,
                    &self.thermo_table.values,
                    &self.rule.weights,
                    &self.rho0detj0,
                    &self.consts,
                    self.use_viscosity,
                    &mut ws.pipe,
                );
                ws.fz.ensure(shape.nvdof(), shape.nthermo, shape.zones);
                FzKernel::compute(&shape, &ws.pipe.az, &self.thermo_table.values, &mut ws.fz);
                ensure_zeroed(&mut ws.rhs, D * n);
                MomentumRhsKernel::compute_with(
                    &shape,
                    &ws.fz,
                    &self.zone_dofs,
                    n,
                    &mut ws.rhs,
                    &mut ws.mom_local,
                );
            })?;
            let max_inv_dt = ws.pipe.inv_dt.iter().cloned().fold(0.0, f64::max);
            (std::mem::take(&mut ws.fz), std::mem::take(&mut ws.rhs), max_inv_dt)
        };
        let t_gpu = gpu.now() - t0g;

        let threads = self.exec.cpu_threads();
        let (_, t_cpu) = self.exec.host.run_phase(
            names::phases::CORNER_FORCE_HYBRID_CPU,
            &cpu_traffic,
            threads,
            self.exec.cf_eff(self.shape.order),
            CpuPowerState::Busy,
            || (),
        );

        // Synchronize: "a synchronization between the CPU and the GPU is
        // required to complete the corner force calculation".
        if t_gpu > t_cpu {
            self.exec.host.idle(t_gpu - t_cpu);
        } else {
            gpu.idle(t_cpu - t_gpu);
        }
        if let Some(b) = &mut self.exec.balancer {
            b.record_period(t_gpu, t_cpu);
        }

        self.check_mesh(&self.scratch.borrow().pipe.detj)?;
        self.project_constraints(&mut rhs);
        let (accel, iters) = self.solve_momentum_cpu(&rhs)?;
        self.scratch.borrow_mut().rhs = rhs;
        Self::check_finite("accel", &accel)?;
        Ok(ForceEval { fz, accel, max_inv_dt, cg_iterations: iters })
    }

    /// Hybrid force evaluation, matrix-free: same zone-split costing as
    /// [`Self::eval_force_hybrid`], with the sum-factorized pipeline as the
    /// functional body — the flop/byte shift the balancer sees is the
    /// matrix-free one, so its converged ratio differs from stored mode.
    fn eval_force_hybrid_matfree(
        &mut self,
        v: &[f64],
        e: &[f64],
        x: &[f64],
    ) -> Result<ForceEval, HydroError> {
        let gpu = self.exec.gpu.as_ref().expect("hybrid mode has a device").clone();
        let mf = self.matfree.as_ref().expect("matrix-free mode has factor tables");
        let n = self.kin.num_dofs();
        let shape = self.shape;
        let total = shape.total_points();
        let ratio = self.exec.balancer.as_ref().expect("hybrid has balancer").ratio();

        let total_traffic = corner_force_traffic_matfree(&shape, &mf.factors);
        let gpu_traffic = total_traffic.scale(ratio);
        let cpu_traffic = total_traffic.scale(1.0 - ratio);
        let gpu_zones = ((shape.zones as f64) * ratio).round().max(1.0) as u32;
        let cfg = LaunchConfig::new(gpu_zones, 256, 8 * 1024, 48);
        let force = SumfacForceKernel { use_viscosity: self.use_viscosity };

        gpu.h2d(((2 * D * n + self.thermo.num_dofs()) as f64 * 8.0 * ratio) as usize)?;
        let t0g = gpu.now();
        let (fz, mut rhs, max_inv_dt) = {
            let mut ws = self.scratch.borrow_mut();
            let ws = &mut *ws;
            let (_, _stats) = gpu.launch(names::phases::CORNER_FORCE_HYBRID, &cfg, &gpu_traffic, || {
                ws.fz.ensure(D, D, total);
                if ws.pipe.detj.len() != total {
                    ws.pipe.detj.resize(total, 0.0);
                }
                if ws.pipe.inv_dt.len() != total {
                    ws.pipe.inv_dt.resize(total, 0.0);
                }
                force.compute(
                    &shape,
                    &mf.factors,
                    x,
                    v,
                    e,
                    n,
                    &self.zone_dofs,
                    &self.rule.weights,
                    &self.rho0detj0,
                    &self.consts,
                    &mut ws.fz,
                    &mut ws.pipe.detj,
                    &mut ws.pipe.inv_dt,
                );
                ensure_zeroed(&mut ws.rhs, D * n);
                SumfacMomentumKernel.compute_with(
                    &shape,
                    &mf.factors,
                    &ws.fz,
                    &self.zone_dofs,
                    n,
                    &mut ws.rhs,
                    &mut ws.mom_local,
                );
            })?;
            let max_inv_dt = ws.pipe.inv_dt.iter().cloned().fold(0.0, f64::max);
            (std::mem::take(&mut ws.fz), std::mem::take(&mut ws.rhs), max_inv_dt)
        };
        let t_gpu = gpu.now() - t0g;

        let threads = self.exec.cpu_threads();
        let (_, t_cpu) = self.exec.host.run_phase(
            names::phases::CORNER_FORCE_HYBRID_CPU,
            &cpu_traffic,
            threads,
            self.exec.cf_eff(self.shape.order),
            CpuPowerState::Busy,
            || (),
        );

        if t_gpu > t_cpu {
            self.exec.host.idle(t_gpu - t_cpu);
        } else {
            gpu.idle(t_cpu - t_gpu);
        }
        if let Some(b) = &mut self.exec.balancer {
            b.record_period(t_gpu, t_cpu);
        }

        self.check_mesh(&self.scratch.borrow().pipe.detj)?;
        self.project_constraints(&mut rhs);
        let (accel, iters) = self.solve_momentum_cpu(&rhs)?;
        self.scratch.borrow_mut().rhs = rhs;
        Self::check_finite("accel", &accel)?;
        Ok(ForceEval { fz, accel, max_inv_dt, cg_iterations: iters })
    }

    /// Energy rate `de/dt = M_E^{-1} F^T v_avg` (kernels 10 + 11). A
    /// persistent device fault here degrades the executor and recomputes on
    /// the CPU into fresh buffers (the faulted attempt's partial output is
    /// discarded), so the result is bit-identical to a pure-CPU evaluation.
    fn energy_rate(&self, fz: &BatchedMats, v_avg: &[f64]) -> Result<Vec<f64>, HydroError> {
        if !self.exec.is_degraded() {
            if let (ExecMode::Gpu { .. }, Some(gpu)) = (&self.exec.mode, &self.exec.gpu) {
                match self.energy_rate_gpu(gpu, fz, v_avg) {
                    Err(HydroError::Gpu(g)) => self.exec.degrade_to_cpu(g.to_string()),
                    other => return other,
                }
            }
        }
        self.energy_rate_cpu(fz, v_avg)
    }

    fn energy_rate_gpu(
        &self,
        gpu: &std::sync::Arc<gpu_sim::GpuDevice>,
        fz: &BatchedMats,
        v_avg: &[f64],
    ) -> Result<Vec<f64>, HydroError> {
        let n = self.kin.num_dofs();
        let shape = &self.shape;
        let mut rhs_e = vec![0.0; self.thermo.num_dofs()];
        let mut de = vec![0.0; self.thermo.num_dofs()];
        let t0 = gpu.now();
        match &self.matfree {
            Some(mf) => {
                let k = SumfacEnergyKernel;
                gpu.launch(SumfacEnergyKernel::NAME, &k.config(shape), &k.traffic(shape, &mf.factors), || {
                    k.compute(shape, &mf.factors, fz, v_avg, &self.zone_dofs, n, &mut rhs_e);
                })?;
            }
            None => {
                EnergyRhsKernel.run(gpu, shape, fz, v_avg, &self.zone_dofs, n, &mut rhs_e)?;
            }
        }
        SpmvKernel.run(gpu, &self.me_inv_csr, &rhs_e, &mut de)?;
        gpu.d2h(de.len() * 8)?;
        self.exec.host.idle(gpu.now() - t0);
        Self::check_finite("de/dt", &de)?;
        Ok(de)
    }

    fn energy_rate_cpu(&self, fz: &BatchedMats, v_avg: &[f64]) -> Result<Vec<f64>, HydroError> {
        let n = self.kin.num_dofs();
        let shape = &self.shape;
        let nth = self.thermo.num_dofs();
        let traffic = match &self.matfree {
            Some(mf) => SumfacEnergyKernel.traffic(shape, &mf.factors),
            None => EnergyRhsKernel.traffic(shape),
        }
        .add(&SpmvKernel.traffic(&self.me_inv_csr));
        let threads = self.exec.cpu_threads();
        let de = {
            let mut ws = self.scratch.borrow_mut();
            let ws = &mut *ws;
            ensure_zeroed(&mut ws.rhs_e, nth);
            // The de/dt vector leaves the scratch pool for the caller
            // (`try_step` hands it back once consumed).
            let mut de = std::mem::take(&mut ws.de);
            ensure_zeroed(&mut de, nth);
            let ((), t) = self.exec.host.run_phase(
                names::phases::ENERGY_SOLVE,
                &traffic,
                threads,
                CG_CPU_EFF,
                CpuPowerState::Busy,
                || {
                    match &self.matfree {
                        Some(mf) => SumfacEnergyKernel.compute(
                            shape,
                            &mf.factors,
                            fz,
                            v_avg,
                            &self.zone_dofs,
                            n,
                            &mut ws.rhs_e,
                        ),
                        None => EnergyRhsKernel::compute(shape, fz, v_avg, &self.zone_dofs, n, &mut ws.rhs_e),
                    }
                    self.me_inv.apply(&ws.rhs_e, &mut de);
                },
            );
            if let Some(g) = &self.exec.gpu {
                g.idle(t);
            }
            de
        };
        Self::check_finite("de/dt", &de)?;
        Ok(de)
    }

    /// One RK2-average step (the energy-conserving scheme of the BLAST
    /// reference implementation): each sub-step evaluates the force, then
    /// updates the energy with the *midpoint* velocity and moves the mesh
    /// with the same velocity.
    ///
    /// Panics on unrecoverable solver errors; see [`Self::try_step`].
    pub fn step(&mut self, state: &mut HydroState, dt: f64) -> StepOutcome {
        self.try_step(state, dt).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Self::step`]. On error, `state` is left
    /// exactly as it was — all failures surface before the state vectors
    /// are written — so the caller can roll back by simply retrying with a
    /// smaller dt (which is what [`Self::run`] does).
    ///
    /// Every attempt is wrapped in a `step` telemetry span on the host
    /// track, so the four phase spans it bills nest underneath it in the
    /// exported trace. The span closes on both success and error paths.
    pub fn try_step(&mut self, state: &mut HydroState, dt: f64) -> Result<StepOutcome, HydroError> {
        let tel = self.exec.telemetry().clone();
        tel.begin(Track::Host, names::phases::STEP, self.exec.host.now());
        let res = self.try_step_inner(state, dt);
        tel.end(Track::Host, self.exec.host.now());
        // A GEMM-panel flip armed for this attempt either landed inside a
        // verified GEMM (then `disarm` finds nothing) or never got the
        // chance (ABFT off / attempt aborted first).
        if self.sdc_gemm_armed.replace(false) && !blast_la::abft::disarm() {
            self.exec.note_sdc_flips(1);
        }
        match res {
            Err(e) => {
                // A corrupted GEMM can cascade into NaN/Inf or a tangled
                // mesh before the step's own checksum poll runs; the
                // violation is the root cause, so surface it as detected
                // corruption (the consumed flip makes the redo clean).
                match blast_la::abft::take_violation() {
                    Some(v) => Err(HydroError::CorruptionDetected {
                        step: self.sdc_attempt.get(),
                        audit: "abft",
                        measured: v.measured,
                        tolerance: v.tolerance,
                    }),
                    None => Err(e),
                }
            }
            ok => ok,
        }
    }

    fn try_step_inner(
        &mut self,
        state: &mut HydroState,
        dt: f64,
    ) -> Result<StepOutcome, HydroError> {
        assert!(dt > 0.0, "dt must be positive");
        if self.step_fault_budget.get() > 0 {
            // Injected step fault: fires before any work, so the state is
            // trivially untouched and the failure rolls back cleanly.
            self.step_fault_budget.set(self.step_fault_budget.get() - 1);
            return Err(HydroError::NonFinite { what: "injected step fault", index: 0 });
        }
        // This attempt's ordinal on the SDC plan's clock (redos included,
        // so a consumed transient flip cannot re-fire on the redo).
        let attempt = self.sdc_attempt.get() + 1;
        self.sdc_attempt.set(attempt);
        if let Some(f) = self.sdc_plan.borrow().take(SdcSite::GemmPanel, attempt) {
            // Exponent-MSB flips in a GEMM panel overflow into Inf more
            // often than they corrupt silently; cap the armed bit so the
            // flip stays in the band the checksums must catch.
            blast_la::abft::arm_flip(f.lane, f.bit.min(55));
            self.sdc_gemm_armed.set(true);
        }
        let n = self.kin.num_dofs();
        let vlen = D * n;
        // Stage vectors come from the step scratch (handed back at the
        // end, so steady-state steps allocate nothing; an error path drops
        // them and the next step re-grows).
        let (mut s0_v, mut s0_e, mut s0_x, mut v_half, mut e_half, mut x_half, mut v_avg) = {
            let mut ws = self.scratch.borrow_mut();
            (
                std::mem::take(&mut ws.s0_v),
                std::mem::take(&mut ws.s0_e),
                std::mem::take(&mut ws.s0_x),
                std::mem::take(&mut ws.v_half),
                std::mem::take(&mut ws.e_half),
                std::mem::take(&mut ws.x_half),
                std::mem::take(&mut ws.v_avg),
            )
        };
        s0_v.clone_from(&state.v);
        s0_e.clone_from(&state.e);
        s0_x.clone_from(&state.x);
        let t0 = state.t;
        let mut cg_total = 0;

        // -- Stage 1: evaluate at S0, advance to the midpoint.
        let ev1 = self.eval_force(&s0_v, &s0_e, &s0_x)?;
        cg_total += ev1.cg_iterations;
        v_half.clone_from(&s0_v);
        blast_la::dense::axpy(0.5 * dt, &ev1.accel, &mut v_half);
        let de1 = self.energy_rate(&ev1.fz, &v_half)?;
        e_half.clone_from(&s0_e);
        blast_la::dense::axpy(0.5 * dt, &de1, &mut e_half);
        x_half.clone_from(&s0_x);
        blast_la::dense::axpy(0.5 * dt, &v_half, &mut x_half);
        {
            // Stage 1's outputs are fully consumed: hand the buffers back
            // to the pools so stage 2 reuses them.
            let mut ws = self.scratch.borrow_mut();
            ws.fz = ev1.fz;
            ws.accel = ev1.accel;
            ws.de = de1;
        }

        // -- Stage 2: evaluate at the midpoint, take the full step with the
        // averaged velocity (v0 + v_new)/2 = v0 + dt/2 * accel2.
        let mut ev2 = self.eval_force(&v_half, &e_half, &x_half)?;
        cg_total += ev2.cg_iterations;
        // SdcSite::DeviceBuffer: a strike on the device-resident
        // acceleration buffer, before it propagates into v, e, and x.
        if let Some(f) = self.sdc_plan.borrow().take(SdcSite::DeviceBuffer, attempt) {
            if apply_flip(&mut ev2.accel, &f).is_some() {
                self.exec.note_sdc_flips(1);
            }
        }
        v_avg.clone_from(&s0_v);
        blast_la::dense::axpy(0.5 * dt, &ev2.accel, &mut v_avg);
        let mut de2 = self.energy_rate(&ev2.fz, &v_avg)?;
        // SdcSite::TransferPayload: a strike on the energy-rate vector in
        // flight back to the host.
        if let Some(f) = self.sdc_plan.borrow().take(SdcSite::TransferPayload, attempt) {
            if apply_flip(&mut de2, &f).is_some() {
                self.exec.note_sdc_flips(1);
            }
        }

        // ABFT checkpoint: all of the attempt's GEMMs have run, and the
        // state vectors are still untouched — a checksum violation here
        // means "roll back by simply retrying", exactly like the other
        // pre-commit failures.
        if let Some(v) = blast_la::abft::take_violation() {
            return Err(HydroError::CorruptionDetected {
                step: attempt,
                audit: "abft",
                measured: v.measured,
                tolerance: v.tolerance,
            });
        }

        state.v.copy_from_slice(&s0_v);
        blast_la::dense::axpy(dt, &ev2.accel, &mut state.v);
        state.e.copy_from_slice(&s0_e);
        blast_la::dense::axpy(dt, &de2, &mut state.e);
        state.x.copy_from_slice(&s0_x);
        blast_la::dense::axpy(dt, &v_avg, &mut state.x);
        state.t = t0 + dt;
        // SdcSite::HostState: a strike on a committed state array after
        // the step lands — the lane picks v, e, or x. Past every in-step
        // guard by construction; only the auditor can catch it.
        if let Some(f) = self.sdc_plan.borrow().take(SdcSite::HostState, attempt) {
            let target: &mut [f64] = match f.lane % 3 {
                0 => &mut state.v,
                1 => &mut state.e,
                _ => &mut state.x,
            };
            if apply_flip(target, &f).is_some() {
                self.exec.note_sdc_flips(1);
            }
        }

        // Host-side time integration cost ("the time integration ... is
        // still done on CPU").
        let threads = self.exec.cpu_threads();
        let pstate = if matches!(self.exec.mode, ExecMode::Gpu { .. }) {
            CpuPowerState::GpuOffload
        } else {
            CpuPowerState::Busy
        };
        let (_, t) = self.exec.host.run_phase(
            names::phases::INTEGRATION,
            &integration_traffic(2 * vlen + state.e.len()),
            threads,
            CG_CPU_EFF,
            pstate,
            || (),
        );
        if let Some(g) = &self.exec.gpu {
            g.idle(t);
        }

        let dt_est = self.cfl / ev2.max_inv_dt.max(1e-300);
        {
            // Hand every stage buffer back to the scratch for the next step.
            let mut ws = self.scratch.borrow_mut();
            ws.fz = ev2.fz;
            ws.accel = ev2.accel;
            ws.de = de2;
            ws.s0_v = s0_v;
            ws.s0_e = s0_e;
            ws.s0_x = s0_x;
            ws.v_half = v_half;
            ws.e_half = e_half;
            ws.x_half = x_half;
            ws.v_avg = v_avg;
        }

        Ok(StepOutcome { dt_used: dt, dt_est, cg_iterations: cg_total })
    }

    /// Runs until `t_final` (or `max_steps`), with adaptive dt: grow by 2%
    /// per accepted step, redo a step at 85% of the estimate if it
    /// overshoots the CFL bound discovered mid-step.
    ///
    /// Panics on unrecoverable solver errors; see [`Self::run`].
    #[deprecated(note = "use `run(state, RunConfig::to(t_final).max_steps(n))`")]
    pub fn run_to(&mut self, state: &mut HydroState, t_final: f64, max_steps: usize) -> RunStats {
        self.run(state, RunConfig::to(t_final).max_steps(max_steps))
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible run without checkpointing; see [`Self::run`].
    #[deprecated(note = "use `run(state, RunConfig::to(t_final).max_steps(n))`")]
    pub fn try_run_to(
        &mut self,
        state: &mut HydroState,
        t_final: f64,
        max_steps: usize,
    ) -> Result<RunStats, HydroError> {
        self.run(state, RunConfig::to(t_final).max_steps(max_steps))
    }

    /// Checkpointed run; see [`Self::run`].
    #[deprecated(note = "use `run(state, RunConfig::to(t_final).checkpointed(policy, store))`")]
    pub fn try_run_to_checkpointed(
        &mut self,
        state: &mut HydroState,
        t_final: f64,
        max_steps: usize,
        policy: &CheckpointPolicy,
        store: &mut CheckpointStore,
    ) -> Result<RunStats, HydroError> {
        self.run(
            state,
            RunConfig {
                t_final,
                max_steps,
                policy: Some(*policy),
                store: Some(store),
            },
        )
    }

    /// Runs the solver under a declarative [`RunConfig`] — the single
    /// entry point the former `run_to` / `try_run_to` /
    /// `try_run_to_checkpointed` trio collapsed into.
    ///
    /// Stepping: adaptive dt (grow by 2% per accepted step, redo at 85%
    /// of the estimate on a CFL overshoot discovered mid-step). A step
    /// that fails recoverably (mesh inversion, PCG breakdown, NaN/Inf) is
    /// rolled back and redone with dt halved, up to [`MAX_STEP_REDOS`]
    /// consecutive times. Redone steps count into [`RunStats::retries`].
    /// Persistent GPU faults never surface here — `eval_force` degrades
    /// to the CPU path internally and continues.
    ///
    /// Checkpointing (when the config or the builder default enables it):
    /// on entry, if the store holds a valid checkpoint *ahead* of
    /// `state`, the run resumes from it (state, warm-start cache, dt, and
    /// counters restored; the restore is billed to the power trace).
    /// Corrupt or truncated generations are skipped via their CRC.
    /// During the run the policy decides when to write a new generation;
    /// each write is billed as a host DRAM phase with the device
    /// quiescing at idle watts. The returned [`RunStats`] counts from the
    /// beginning of the logical run, including steps replayed from the
    /// checkpoint's counters.
    ///
    /// On return the executor's pool counters (`pool_calls`,
    /// `pool_blocks`, `pool_steals`, `pool_threads`) are refreshed in the
    /// telemetry sink.
    pub fn run(
        &mut self,
        state: &mut HydroState,
        cfg: RunConfig<'_>,
    ) -> Result<RunStats, HydroError> {
        let RunConfig { t_final, max_steps, policy, store } = cfg;
        let policy = policy.unwrap_or(self.default_ckpt_policy);
        let mut scratch_store;
        let store = match store {
            Some(s) => s,
            None => {
                scratch_store = CheckpointStore::in_memory();
                &mut scratch_store
            }
        };
        let mut steps = 0usize;
        let mut retries = 0usize;
        let mut dt = None;
        if let Some(info) = self.try_resume(state, store) {
            steps = info.steps as usize;
            retries = info.retries as usize;
            dt = Some(info.dt);
        }
        let mut dt = match dt {
            Some(d) => d,
            None => self.try_suggest_dt(state)?,
        };
        let mut steps_since_ckpt = 0usize;
        let mut wall_at_ckpt = self.exec.host.now();
        let mut corruption_restores = 0usize;
        let res = loop {
            if state.t >= t_final - 1e-14 || steps >= max_steps {
                break Ok(RunStats { steps, retries, t: state.t, wall_s: self.exec.host.now() });
            }
            let adv = match self.try_advance(state, dt.min(t_final - state.t)) {
                Ok(adv) => adv,
                Err(e) => {
                    if matches!(e, HydroError::CorruptionDetected { .. })
                        && corruption_restores < MAX_STEP_REDOS
                    {
                        // Every in-place redo kept failing the audit: a
                        // corrupted state was committed before the audit
                        // cadence caught it, so the pre-step snapshot
                        // replays the damage. Fall back to the newest
                        // checkpoint (behind us, by construction) and
                        // replay forward — consumed transient flips stay
                        // consumed, so the replay is clean.
                        if let Some(info) = self.rollback_to_latest(state, store) {
                            corruption_restores += 1;
                            steps = info.steps as usize;
                            retries = info.retries as usize;
                            dt = info.dt;
                            steps_since_ckpt = 0;
                            wall_at_ckpt = self.exec.host.now();
                            continue;
                        }
                    }
                    break Err(e);
                }
            };
            retries += adv.redos;
            steps += 1;
            steps_since_ckpt += 1;
            dt = adv.dt_next;
            // With auditing on a cadence > 1, only audited-clean states
            // are checkpoint-worthy: a corrupted state committed between
            // audits must never become the generation rollback restores.
            let trusted = self.audit.as_ref().is_none_or(|a| a.borrow().audited_clean());
            if trusted && policy.due(steps_since_ckpt, self.exec.host.now() - wall_at_ckpt) {
                if let Err(e) = self.write_checkpoint(state, dt, steps, retries, store) {
                    break Err(e);
                }
                steps_since_ckpt = 0;
                wall_at_ckpt = self.exec.host.now();
            }
        };
        self.exec.record_pool_counters();
        res
    }

    /// Takes exactly one *accepted* step at (at most) `dt`, absorbing
    /// rollback and CFL redos internally — the building block shared by
    /// [`Self::try_run_to_checkpointed`] and the distributed driver in
    /// `cluster-sim` (which needs a dt-consensus round between accepted
    /// steps).
    ///
    /// Device faults that fire during a redo attempt are threaded into the
    /// executor's resilience ledger (`redo_faults`) — the recovery-ladder
    /// accounting gap this PR closes. On error the state is the last good
    /// (pre-step) state, never a mid-rollback intermediate.
    pub fn try_advance(
        &mut self,
        state: &mut HydroState,
        dt: f64,
    ) -> Result<AdvanceOutcome, HydroError> {
        // CFL redos shrink dt by >= 15% each time, so this bound exists
        // only to guarantee termination (the legacy loop bounded them by
        // the global retry budget).
        const MAX_CFL_REDOS: usize = 64;
        let mut dt = dt;
        let mut redos = 0usize;
        let mut rollback_redos = 0usize;
        let mut cfl_redos = 0usize;
        // The auditor's energy reference comes from a *trusted* state:
        // initial conditions or a CRC-validated checkpoint restore — both
        // of which land here as the pre-step state with no reference set.
        if let Some(aud) = &self.audit {
            if aud.borrow().needs_reference() {
                let mut a = aud.borrow_mut();
                let e_total = self.audited_energy(state, &mut a);
                a.set_reference(e_total);
                self.exec.bill_audit(&a.traffic);
            }
        }
        loop {
            // Snapshot the pre-step state into the scratch (reused every
            // iteration, so accepted steps snapshot without allocating).
            {
                let mut ws = self.scratch.borrow_mut();
                ws.saved_v.clone_from(&state.v);
                ws.saved_e.clone_from(&state.e);
                ws.saved_x.clone_from(&state.x);
                ws.saved_accel.clone_from(&self.accel_prev.borrow());
            }
            let saved_t = state.t;
            // On a redo attempt, watch the device fault counter across the
            // step so faults injected *during the redo* are accounted.
            let pre_injected = (redos > 0)
                .then(|| self.exec.gpu.as_ref().map(|g| g.fault_stats().injected).unwrap_or(0));
            let res = self.try_step(state, dt);
            if let Some(before) = pre_injected {
                let after =
                    self.exec.gpu.as_ref().map(|g| g.fault_stats().injected).unwrap_or(0);
                if after > before {
                    self.exec.note_redo_faults(after - before);
                }
            }
            let out = match res {
                Ok(out) => out,
                Err(err @ HydroError::CorruptionDetected { .. })
                    if rollback_redos < MAX_STEP_REDOS =>
                {
                    // Corruption caught *before* the state commit (an ABFT
                    // checksum): redo at the SAME dt — the transient flip
                    // was consumed, so the redo is bit-identical to a
                    // fault-free step. Halving dt would needlessly fork
                    // the trajectory from the clean run.
                    self.report_corruption(&err);
                    self.restore_saved(state, saved_t);
                    redos += 1;
                    rollback_redos += 1;
                    continue;
                }
                Err(e) if e.recoverable_by_rollback() && rollback_redos < MAX_STEP_REDOS => {
                    // Roll back to the pre-step state, redo with half dt.
                    self.restore_saved(state, saved_t);
                    // With an audit pending (cadence > 1), a recoverable
                    // blow-up may be committed corruption crashing the
                    // *next* step rather than a numeric hiccup. Audit the
                    // restored pre-step state before burning redos on a
                    // poisoned snapshot: a failed audit converts to
                    // `CorruptionDetected` so `run` can fall back to the
                    // newest trusted checkpoint.
                    if let Some(aud) = &self.audit {
                        if !aud.borrow().audited_clean() {
                            let verdict = {
                                let mut a = aud.borrow_mut();
                                let verdict = self.execute_audit(state, &mut a);
                                let mut traffic = a.traffic;
                                traffic.flops += blast_la::abft::take_verify_flops() as f64;
                                self.exec.bill_audit(&traffic);
                                verdict
                            };
                            if let Some((audit, measured, tolerance)) = verdict {
                                let err = HydroError::CorruptionDetected {
                                    step: self.sdc_attempt.get(),
                                    audit,
                                    measured,
                                    tolerance,
                                };
                                self.report_corruption(&err);
                                return Err(err);
                            }
                        }
                    }
                    dt *= 0.5;
                    redos += 1;
                    rollback_redos += 1;
                    continue;
                }
                Err(e) => {
                    if matches!(e, HydroError::CorruptionDetected { .. }) {
                        self.report_corruption(&e);
                    }
                    return Err(e);
                }
            };
            if out.dt_est < dt * 0.999 && cfl_redos < MAX_CFL_REDOS {
                // Overshot the CFL bound: redo with a safer dt.
                self.restore_saved(state, saved_t);
                dt = 0.85 * out.dt_est;
                redos += 1;
                cfl_redos += 1;
                continue;
            }
            // Audit the accepted candidate before committing to it (the
            // SDC detector's cadence; a failed audit keeps the cadence
            // armed so the redo is re-audited).
            if let Some(aud) = &self.audit {
                if aud.borrow_mut().due() {
                    let verdict = {
                        let mut a = aud.borrow_mut();
                        let verdict = self.execute_audit(state, &mut a);
                        let mut traffic = a.traffic;
                        traffic.flops += blast_la::abft::take_verify_flops() as f64;
                        self.exec.bill_audit(&traffic);
                        verdict
                    };
                    if let Some((audit, measured, tolerance)) = verdict {
                        let err = HydroError::CorruptionDetected {
                            step: self.sdc_attempt.get(),
                            audit,
                            measured,
                            tolerance,
                        };
                        self.report_corruption(&err);
                        if rollback_redos < MAX_STEP_REDOS {
                            // Same-dt redo from the pre-step snapshot. If
                            // the snapshot itself is corrupted (cadence >
                            // 1), the redo fails the audit again and the
                            // budget drains — `run` then falls back to
                            // the newest checkpoint.
                            self.restore_saved(state, saved_t);
                            redos += 1;
                            rollback_redos += 1;
                            continue;
                        }
                        return Err(err);
                    }
                }
            }
            let dt_next = out.dt_est.min(1.02 * dt);
            let tel = self.exec.telemetry();
            tel.counter_add(names::counters::STEPS, 1);
            if redos > 0 {
                tel.counter_add(names::counters::STEP_REDOS, redos as u64);
            }
            return Ok(AdvanceOutcome { outcome: out, redos, dt_next });
        }
    }

    /// Copies the scratch's pre-step snapshot back into `state` (the
    /// rollback half of [`Self::try_advance`]'s redo loop).
    fn restore_saved(&self, state: &mut HydroState, saved_t: f64) {
        let ws = self.scratch.borrow();
        state.v.copy_from_slice(&ws.saved_v);
        state.e.copy_from_slice(&ws.saved_e);
        state.x.copy_from_slice(&ws.saved_x);
        // The PCG warm start is part of the numerical trajectory:
        // restoring it makes the redone step bit-identical to a
        // fault-free first try (the SDC campaign's recovery criterion).
        self.accel_prev.borrow_mut().copy_from_slice(&ws.saved_accel);
        state.t = saved_t;
    }

    /// The resumption hook shared by [`Self::run`] and job-level drivers
    /// (`blast-serve`): if `store` holds a valid checkpoint *ahead* of
    /// `state`, restores it (state + PCG warm-start cache), bills the
    /// restore to the power trace, and returns the counters/dt the caller
    /// must continue from. Returns `None` when nothing in the store is
    /// ahead of `state` — the caller then starts (or continues) from
    /// `state` as-is with a freshly suggested dt.
    ///
    /// Corrupt or truncated generations are skipped via their CRC
    /// ([`CheckpointStore::latest_valid`]); `skipped` reports how many.
    pub fn try_resume(
        &mut self,
        state: &mut HydroState,
        store: &CheckpointStore,
    ) -> Option<ResumeInfo> {
        let loaded = store.latest_valid()?;
        if loaded.checkpoint.state.t <= state.t {
            return None;
        }
        self.restore_checkpoint(&loaded.checkpoint, state);
        self.exec.bill_checkpoint_restore(loaded.bytes);
        Some(ResumeInfo {
            dt: loaded.checkpoint.dt,
            steps: loaded.checkpoint.steps,
            retries: loaded.checkpoint.retries,
            generation: loaded.generation,
            skipped: loaded.skipped,
        })
    }

    /// Unconditionally restores the newest valid checkpoint — unlike
    /// [`Self::try_resume`] it restores even when the checkpoint is
    /// *behind* `state`, which is exactly what audit-triggered rollback
    /// needs when a corrupted state was committed (audit cadence > 1).
    /// Returns `None` (state untouched, store intact) when the store
    /// holds no valid generation.
    pub fn rollback_to_latest(
        &mut self,
        state: &mut HydroState,
        store: &CheckpointStore,
    ) -> Option<ResumeInfo> {
        let loaded = store.latest_valid()?;
        self.restore_checkpoint(&loaded.checkpoint, state);
        self.exec.bill_checkpoint_restore(loaded.bytes);
        Some(ResumeInfo {
            dt: loaded.checkpoint.dt,
            steps: loaded.checkpoint.steps,
            retries: loaded.checkpoint.retries,
            generation: loaded.generation,
            skipped: loaded.skipped,
        })
    }

    /// Snapshots the run into a [`Checkpoint`] (state + PCG warm-start
    /// cache + adaptive dt + counters).
    pub fn make_checkpoint(
        &self,
        state: &HydroState,
        dt: f64,
        steps: u64,
        retries: u64,
    ) -> Checkpoint {
        Checkpoint {
            state: state.clone(),
            accel_prev: self.accel_prev.borrow().clone(),
            dt,
            steps,
            retries,
        }
    }

    /// Restores a checkpoint made by a solver of the same problem/shape:
    /// rewrites `state` and the PCG warm-start cache. (Energy billing is
    /// the caller's job via `Executor::bill_checkpoint_restore`.)
    pub fn restore_checkpoint(&self, ck: &Checkpoint, state: &mut HydroState) {
        assert_eq!(
            ck.accel_prev.len(),
            self.accel_prev.borrow().len(),
            "checkpoint is from a different problem shape"
        );
        *state = ck.state.clone();
        self.accel_prev.borrow_mut().copy_from_slice(&ck.accel_prev);
        // The restored state's energy differs from the last audited
        // point's; re-baseline from the (trusted) restored state.
        if let Some(aud) = &self.audit {
            aud.borrow_mut().reset_reference();
        }
    }

    /// Serializes, stores, and bills one coordinated checkpoint.
    pub fn write_checkpoint(
        &self,
        state: &HydroState,
        dt: f64,
        steps: usize,
        retries: usize,
        store: &mut CheckpointStore,
    ) -> Result<usize, HydroError> {
        let ck = self.make_checkpoint(state, dt, steps as u64, retries as u64);
        let bytes = store
            .write(&ck)
            .map_err(|e| HydroError::Checkpoint { detail: e.to_string() })?;
        self.exec.bill_checkpoint_write(bytes);
        Ok(bytes)
    }

    /// Host-phase profile: `(name, total_seconds, calls)` aggregated over
    /// the run — Table 1's corner-force / CG breakdown. Names are the
    /// interned [`blast_telemetry::names::phases`] constants, so they can
    /// be compared by value against telemetry span names without
    /// allocating (the old `String`-keyed `profile()` is a thin wrapper).
    pub fn phase_profile(&self) -> Vec<(&'static str, f64, usize)> {
        let mut agg: Vec<(&'static str, f64, usize)> = Vec::new();
        for ev in self.exec.host.events() {
            if let Some(slot) = agg.iter_mut().find(|(n, _, _)| *n == ev.name) {
                slot.1 += ev.time_s;
                slot.2 += 1;
            } else {
                agg.push((ev.name, ev.time_s, 1));
            }
        }
        agg.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        agg
    }

    /// String-keyed variant of [`Self::phase_profile`].
    #[deprecated(note = "use `phase_profile()` (interned `&'static str` names)")]
    pub fn profile(&self) -> Vec<(String, f64, usize)> {
        self.phase_profile().into_iter().map(|(n, t, c)| (n.to_string(), t, c)).collect()
    }

    /// Simulated wall-clock so far (host timeline, includes GPU waits).
    pub fn wall_time(&self) -> f64 {
        self.exec.host.now()
    }

    /// Pre-grows the host telemetry buffers for `steps` upcoming
    /// timesteps so recording them does not reallocate. A CPU step logs
    /// seven phases (2x corner_force, 2x cg_solver, 2x energy_solve, one
    /// integration) plus an `sdc_audit` phase when the auditor is on, and
    /// one enclosing `step` span; the zero-allocation harness calls this
    /// before its measurement window.
    pub fn reserve_host_telemetry(&self, steps: usize) {
        self.exec.host.reserve_telemetry(steps * 8);
        // One STEP span plus up to eight phase/solver child spans per step.
        self.exec.telemetry().reserve_spans(steps * 9);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceCatalog;
    use crate::problems::{Sedov, TaylorGreen, TriplePoint};
    use gpu_sim::{CpuSpec, GpuDevice, GpuSpec};
    use std::sync::Arc;

    fn cpu_exec() -> Executor {
        Executor::new(ExecMode::CpuSerial, CpuSpec::e5_2670(), None)
    }

    fn gpu_exec(base: bool, gpu_pcg: bool) -> Executor {
        let dev = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
        Executor::new(
            ExecMode::Gpu { base, gpu_pcg, mpi_queues: 1 },
            CpuSpec::e5_2670(),
            Some(dev),
        )
    }

    fn small_sedov_2d(exec: Executor) -> (Hydro<2>, HydroState) {
        let problem = Sedov::default();
        let hydro = Hydro::<2>::builder(&problem, [4, 4]).executor(exec).build().unwrap();
        let state = hydro.initial_state();
        (hydro, state)
    }

    #[test]
    fn setup_shapes_are_consistent() {
        let (hydro, state) = small_sedov_2d(cpu_exec());
        assert_eq!(hydro.shape().zones, 16);
        assert_eq!(state.v.len(), 2 * hydro.kin_space().num_dofs());
        assert_eq!(state.e.len(), hydro.thermo_space().num_dofs());
        assert_eq!(state.x, hydro.kin_space().initial_coords());
    }

    #[test]
    fn initial_energy_is_positive_and_mass_correct() {
        let (hydro, state) = small_sedov_2d(cpu_exec());
        let en = hydro.energies(&state);
        assert_eq!(en.kinetic, 0.0);
        assert!(en.internal > 0.0);
        // rho = 1 on [0, 1.2]^2: mass = 1.44.
        assert!((hydro.total_mass() - 1.44).abs() < 1e-12);
    }

    #[test]
    fn single_step_conserves_total_energy() {
        let (mut hydro, mut state) = small_sedov_2d(cpu_exec());
        let e0 = hydro.energies(&state);
        let dt = hydro.suggest_dt(&state);
        assert!(dt > 0.0 && dt.is_finite());
        hydro.step(&mut state, dt);
        let e1 = hydro.energies(&state);
        let rel = e1.relative_change(&e0).abs();
        assert!(rel < 1e-11, "energy drift {rel}");
        // The blast accelerates material: kinetic energy appears.
        assert!(e1.kinetic > 0.0);
    }

    #[test]
    fn multi_step_run_conserves_energy_cpu() {
        let (mut hydro, mut state) = small_sedov_2d(cpu_exec());
        let e0 = hydro.energies(&state);
        let stats = hydro.run(&mut state, RunConfig::to(0.1).max_steps(50)).unwrap();
        assert!(stats.steps >= 3, "took {} steps", stats.steps);
        let e1 = hydro.energies(&state);
        assert!(e1.relative_change(&e0).abs() < 1e-10, "drift {}", e1.relative_change(&e0));
        assert!(state.t >= 0.1 - 1e-12);
    }

    #[test]
    fn gpu_path_matches_cpu_path_bitwise_class() {
        // Table 6: CPU and GPU runs agree (to solver tolerance).
        let (mut h_cpu, mut s_cpu) = small_sedov_2d(cpu_exec());
        let (mut h_gpu, mut s_gpu) = small_sedov_2d(gpu_exec(false, true));
        let dt = h_cpu.suggest_dt(&s_cpu).min(h_gpu.suggest_dt(&s_gpu));
        for _ in 0..3 {
            h_cpu.step(&mut s_cpu, dt);
            h_gpu.step(&mut s_gpu, dt);
        }
        let dv = blast_la::max_rel_diff(&s_cpu.v, &s_gpu.v);
        let de = blast_la::max_rel_diff(&s_cpu.e, &s_gpu.e);
        let dx = blast_la::max_rel_diff(&s_cpu.x, &s_gpu.x);
        assert!(dv < 1e-9, "v diff {dv}");
        assert!(de < 1e-9, "e diff {de}");
        assert!(dx < 1e-11, "x diff {dx}");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
    fn base_gpu_matches_optimized_gpu_exactly() {
        // Large enough that kernel traffic (not launch overhead) dominates.
        let problem = Sedov::default();
        let mut h_opt =
            Hydro::<2>::builder(&problem, [32, 32]).executor(gpu_exec(false, false)).build()
                .unwrap();
        let mut h_base =
            Hydro::<2>::builder(&problem, [32, 32]).executor(gpu_exec(true, false)).build()
                .unwrap();
        let mut s_opt = h_opt.initial_state();
        let mut s_base = h_base.initial_state();
        let dt = 1e-4;
        {
            h_opt.step(&mut s_opt, dt);
            h_base.step(&mut s_base, dt);
        }
        assert_eq!(s_opt.v, s_base.v);
        assert_eq!(s_opt.e, s_base.e);
        assert_eq!(s_opt.x, s_base.x);
        // ...but the base implementation is slower on the device.
        assert!(h_base.executor().gpu.as_ref().unwrap().now()
            > h_opt.executor().gpu.as_ref().unwrap().now());
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
    fn hybrid_matches_cpu_and_balances() {
        let dev = Arc::new(GpuDevice::new(GpuSpec::c2050()));
        let exec = Executor::new(ExecMode::Hybrid { threads: 6 }, CpuSpec::x5660(), Some(dev));
        let problem = Sedov::default();
        let mut h_hyb =
            Hydro::<2>::builder(&problem, [16, 16]).executor(exec).build().unwrap();
        let mut s_hyb = h_hyb.initial_state();
        let cpu = Executor::new(ExecMode::CpuSerial, CpuSpec::x5660(), None);
        let mut h_cpu =
            Hydro::<2>::builder(&problem, [16, 16]).executor(cpu).build().unwrap();
        let mut s_cpu = h_cpu.initial_state();
        let dt = 1e-4;
        for _ in 0..10 {
            h_hyb.step(&mut s_hyb, dt);
            h_cpu.step(&mut s_cpu, dt);
        }
        assert!(blast_la::max_rel_diff(&s_hyb.e, &s_cpu.e) < 1e-10);
        // The balancer moved most of the work to the (faster) GPU —
        // Table 5's regime is ~75% on this CPU/GPU pairing.
        let ratio = h_hyb.executor().balancer.as_ref().unwrap().ratio();
        assert!(ratio > 0.6, "ratio {ratio}");
    }

    #[test]
    fn triple_point_runs_and_conserves() {
        let problem = TriplePoint::default();
        let mut hydro =
            Hydro::<2>::builder(&problem, [14, 6]).order(2).executor(cpu_exec()).build()
                .unwrap();
        let mut state = hydro.initial_state();
        let e0 = hydro.energies(&state);
        // Total energy of the standard triple point on [0,7]x[0,3]:
        // IE = sum over regions of rho*e*area = 2*3 + (0.25/0.4)*... check >0
        assert!(e0.internal > 0.0);
        hydro.run(&mut state, RunConfig::to(0.01).max_steps(30)).unwrap();
        let e1 = hydro.energies(&state);
        assert!(e1.relative_change(&e0).abs() < 1e-10);
    }

    #[test]
    fn taylor_green_smooth_flow_no_viscosity() {
        let problem = TaylorGreen::default();
        let mut hydro = Hydro::<2>::builder(&problem, [4, 4])
            .order(3)
            .executor(cpu_exec())
            .build()
            .unwrap();
        let mut state = hydro.initial_state();
        let e0 = hydro.energies(&state);
        assert!(e0.kinetic > 0.0, "TG starts with motion");
        hydro.run(&mut state, RunConfig::to(0.01).max_steps(20)).unwrap();
        let e1 = hydro.energies(&state);
        assert!(e1.relative_change(&e0).abs() < 1e-10);
    }

    #[test]
    fn sedov_3d_steps_stably() {
        let problem = Sedov::default();
        let mut hydro = Hydro::<3>::builder(&problem, [3, 3, 3])
            .order(1)
            .executor(cpu_exec())
            .build()
            .unwrap();
        let mut state = hydro.initial_state();
        let e0 = hydro.energies(&state);
        let stats = hydro.run(&mut state, RunConfig::to(0.005).max_steps(20)).unwrap();
        assert!(stats.steps >= 1);
        let e1 = hydro.energies(&state);
        assert!(e1.relative_change(&e0).abs() < 1e-10);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
    fn shock_moves_outward() {
        // After some Sedov evolution, material near the origin moves out:
        // radial velocity positive, mesh nodes displaced outward.
        let (mut hydro, mut state) = small_sedov_2d(cpu_exec());
        hydro.run(&mut state, RunConfig::to(0.2).max_steps(300)).unwrap();
        let n = hydro.kin_space().num_dofs();
        let x0 = hydro.kin_space().initial_coords();
        // Nodes inside the blast radius must have been pushed outward.
        let mut moved_out = 0;
        let mut total = 0;
        for i in 0..n {
            let r0 = (x0[i].powi(2) + x0[n + i].powi(2)).sqrt();
            if r0 > 1e-12 && r0 < 0.45 {
                let r1 = (state.x[i].powi(2) + state.x[n + i].powi(2)).sqrt();
                total += 1;
                if r1 > r0 + 1e-9 {
                    moved_out += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            moved_out as f64 > 0.6 * total as f64,
            "{moved_out}/{total} nodes moved outward"
        );
    }

    #[test]
    fn checkpointed_resume_is_bit_identical_to_uninterrupted() {
        let policy = CheckpointPolicy::EverySteps(2);
        // Reference: one uninterrupted checkpointed run.
        let (mut h_ref, mut s_ref) = small_sedov_2d(cpu_exec());
        let mut store_ref = CheckpointStore::in_memory();
        let stats_ref =
            h_ref.run(&mut s_ref, RunConfig::to(0.06).max_steps(60).checkpointed(policy, &mut store_ref)).unwrap();
        assert!(stats_ref.steps >= 4, "need several steps: {}", stats_ref.steps);

        // Interrupted: stop midway by step budget, drop the solver and
        // state ("process death"), resume in a fresh solver from the store.
        let (mut h1, mut s1) = small_sedov_2d(cpu_exec());
        let mut store = CheckpointStore::in_memory();
        h1.run(&mut s1, RunConfig::to(0.06).max_steps(stats_ref.steps / 2).checkpointed(policy, &mut store))
            .unwrap();
        assert!(store.latest_valid().is_some(), "first half must have checkpointed");
        drop((h1, s1));

        let (mut h2, mut s2) = small_sedov_2d(cpu_exec());
        let stats2 = h2.run(&mut s2, RunConfig::to(0.06).max_steps(60).checkpointed(policy, &mut store)).unwrap();
        assert_eq!(s2.v, s_ref.v, "resumed velocity differs");
        assert_eq!(s2.e, s_ref.e, "resumed energy differs");
        assert_eq!(s2.x, s_ref.x, "resumed mesh differs");
        assert_eq!(s2.t, s_ref.t);
        assert_eq!(stats2.steps, stats_ref.steps, "logical step count must match");
        let rep = h2.executor().resilience_report(stats2.retries);
        assert_eq!(rep.restores, 1, "exactly one restore billed");
        assert!(rep.checkpoints_written > 0);
        assert!(rep.resilience_energy_j > 0.0, "resilience work must cost energy");
    }

    #[test]
    fn injected_step_faults_roll_back_and_clear() {
        let (mut hydro, mut state) = small_sedov_2d(cpu_exec());
        hydro.inject_step_faults(2);
        let dt = hydro.suggest_dt(&state);
        let adv = hydro.try_advance(&mut state, dt).unwrap();
        assert!(adv.redos >= 2, "both injected faults consumed: {}", adv.redos);
        assert!(state.t > 0.0, "step accepted after redos");
    }

    #[test]
    fn profile_reports_corner_force_and_cg() {
        let (mut hydro, mut state) = small_sedov_2d(cpu_exec());
        let dt = hydro.suggest_dt(&state);
        for _ in 0..3 {
            hydro.step(&mut state, dt);
        }
        let prof = hydro.phase_profile();
        let phase_names: Vec<&'static str> = prof.iter().map(|(n, _, _)| *n).collect();
        assert!(phase_names.contains(&names::phases::CORNER_FORCE));
        assert!(phase_names.contains(&names::phases::CG_SOLVER));
        assert!(phase_names.contains(&names::phases::ENERGY_SOLVE));
        // Corner force dominates on the CPU (Table 1: 55-75%).
        let total: f64 = prof.iter().map(|(_, t, _)| t).sum();
        let cf =
            prof.iter().find(|(n, _, _)| *n == names::phases::CORNER_FORCE).unwrap().1;
        assert!(cf / total > 0.4, "corner force share {}", cf / total);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_the_new_api() {
        // The positional constructor and the run_to family stay
        // source-compatible: same results as builder + RunConfig.
        let problem = Sedov::default();
        let mut h_old =
            Hydro::<2>::new(&problem, [4, 4], HydroConfig::default(), cpu_exec()).unwrap();
        let (mut h_new, mut s_new) = small_sedov_2d(cpu_exec());
        let mut s_old = h_old.initial_state();
        let stats_old = h_old.try_run_to(&mut s_old, 0.05, 40).unwrap();
        let stats_new = h_new.run(&mut s_new, RunConfig::to(0.05).max_steps(40)).unwrap();
        assert_eq!(s_old.v, s_new.v);
        assert_eq!(s_old.e, s_new.e);
        assert_eq!(stats_old.steps, stats_new.steps);
        // String-keyed profile mirrors the interned phase profile.
        let prof: Vec<(String, f64, usize)> = h_old.profile();
        let interned = h_old.phase_profile();
        assert_eq!(prof.len(), interned.len());
        for ((sn, st, sc), (in_, it, ic)) in prof.iter().zip(&interned) {
            assert_eq!(sn, in_);
            assert_eq!(st, it);
            assert_eq!(sc, ic);
        }
    }

    #[test]
    fn builder_wires_telemetry_and_counts_steps() {
        let problem = Sedov::default();
        let sink = blast_telemetry::Telemetry::sink();
        let mut hydro = Hydro::<2>::builder(&problem, [4, 4])
            .telemetry(sink.clone())
            .build()
            .unwrap();
        let mut state = hydro.initial_state();
        let stats = hydro.run(&mut state, RunConfig::to(0.05).max_steps(10)).unwrap();
        assert!(stats.steps > 0);
        assert_eq!(sink.counter(names::counters::STEPS), stats.steps as u64);
        assert!(sink.counter(names::counters::PCG_ITERATIONS) > 0);
        assert!(sink.counter(names::counters::PCG_SOLVES) > 0);
        // Step spans enclose the phase spans they bill: every host-track
        // phase span has the surrounding `step` span as its parent.
        let spans = sink.spans();
        let steps: Vec<_> =
            spans.iter().filter(|s| s.name == names::phases::STEP).collect();
        // One `step` span per try_step attempt: accepted steps + redos.
        assert_eq!(steps.len(), stats.steps + stats.retries);
        let phase_spans = spans
            .iter()
            .filter(|s| s.track == Track::Host && s.name != names::phases::STEP)
            .filter(|s| s.parent.is_some());
        let mut nested = 0usize;
        for ps in phase_spans {
            let pid = ps.parent.unwrap();
            let parent = spans.iter().find(|s| s.id == pid).expect("parent recorded");
            assert_eq!(parent.name, names::phases::STEP);
            assert!(ps.start_s >= parent.start_s - 1e-12);
            assert!(ps.end_s() <= parent.end_s() + 1e-12);
            nested += 1;
        }
        assert!(nested > 0, "phase spans must nest under step spans");
        // Per-phase span totals reconcile exactly with the profile.
        for (name, secs, calls) in hydro.phase_profile() {
            let tot = sink
                .phase_totals(Some(Track::Host))
                .into_iter()
                .find(|p| p.name == name)
                .expect("phase present in telemetry");
            assert!((tot.seconds - secs).abs() < 1e-9, "{name}: {} vs {secs}", tot.seconds);
            assert_eq!(tot.calls, calls as u64);
        }
    }

    #[test]
    fn builder_step_faults_and_default_checkpoint_policy_apply() {
        let problem = Sedov::default();
        let mut hydro = Hydro::<2>::builder(&problem, [4, 4])
            .step_faults(1)
            .checkpoint_policy(CheckpointPolicy::EverySteps(2))
            .build()
            .unwrap();
        let mut state = hydro.initial_state();
        let mut store = CheckpointStore::in_memory();
        let stats = hydro
            .run(
                &mut state,
                RunConfig { t_final: 0.05, max_steps: 8, policy: None, store: Some(&mut store) },
            )
            .unwrap();
        assert!(stats.retries >= 1, "the injected step fault forces a redo");
        assert!(store.latest_valid().is_some(), "builder default policy checkpointed");
        let tel = hydro.executor().telemetry();
        assert!(tel.counter(names::counters::CHECKPOINTS_WRITTEN) > 0);
        assert!(tel.counter(names::counters::STEP_REDOS) >= 1);
    }

    #[test]
    fn constrained_boundary_velocities_stay_zero() {
        let (mut hydro, mut state) = small_sedov_2d(cpu_exec());
        hydro.run(&mut state, RunConfig::to(0.02).max_steps(50)).unwrap();
        let n = hydro.kin_space().num_dofs();
        for axis in 0..2 {
            for dof in hydro.kin_space().boundary_dofs(axis) {
                assert_eq!(
                    state.v[axis * n + dof],
                    0.0,
                    "normal velocity leaked at dof {dof} axis {axis}"
                );
            }
        }
    }

    #[test]
    fn gpu_memory_limit_matches_paper_q4_16cubed() {
        // "the domain size 16^3 ... is the maximum size we were able to
        // allocate with Q4-Q3 elements because of memory limitation for
        // K20": the modeled footprint of 16^3 fits in 5 GB, one refinement
        // (32^3, i.e. 8x the zones in 3D) does not.
        let cap = DeviceCatalog::gpu("k20").dram_capacity;
        let fit = |zones_axis: usize| {
            let shape = ProblemShape::new(3, 4, zones_axis.pow(3));
            let n_h1 = (4 * zones_axis + 1).pow(3);
            let n_l2 = shape.zones * shape.nthermo;
            device_footprint::<3>(&shape, n_h1, n_l2)
        };
        assert!(fit(16) <= cap, "16^3 Q4-Q3 needs {} B of {} B", fit(16), cap);
        assert!(fit(32) > cap, "32^3 Q4-Q3 should exceed K20 memory");
    }

    #[test]
    fn gpu_oom_propagates_from_setup() {
        // A device with tiny memory rejects even a small problem, through
        // Hydro::new's Result (checked before any assembly work).
        let mut spec = DeviceCatalog::gpu("k20");
        spec.dram_capacity = 1024; // 1 KB "GPU"
        let dev = Arc::new(GpuDevice::new(spec));
        let exec = Executor::new(
            ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
            CpuSpec::e5_2670(),
            Some(dev),
        );
        let problem = Sedov::default();
        let res = Hydro::<2>::builder(&problem, [4, 4]).executor(exec).build();
        assert!(res.is_err());
        let err = res.err().unwrap();
        // The footprint pre-check fires before the device allocation, so
        // the typed variant (with both byte counts) surfaces.
        assert!(
            matches!(err, crate::error::HydroError::OutOfMemory { .. }),
            "unexpected error: {err:?}"
        );
        assert!(err.to_string().contains("out of device memory"));
    }

    #[test]
    fn builder_device_configures_host_gpu_mode_and_key() {
        let problem = Sedov::default();
        let dev = DeviceCatalog::get("k20");
        let hydro = Hydro::<2>::builder(&problem, [4, 4]).device(&dev).build().expect("setup");
        let exec = hydro.executor();
        assert_eq!(exec.device_id(), Some("k20"));
        assert_eq!(exec.device_key(), "k20");
        assert_eq!(exec.host.spec().name, dev.host.name);
        assert!(matches!(
            exec.mode,
            ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 }
        ));
        assert_eq!(exec.gpu.as_ref().map(|g| g.spec().name), Some("Tesla K20"));

        let cpu = DeviceCatalog::get("cpu-e5-2670");
        let hydro = Hydro::<2>::builder(&problem, [4, 4]).device(&cpu).build().expect("setup");
        let exec = hydro.executor();
        assert!(exec.gpu.is_none());
        assert!(
            matches!(exec.mode, ExecMode::CpuParallel { threads } if threads == cpu.host.cores)
        );
    }

    #[test]
    fn builder_fleet_picks_a_catalog_device_and_runs() {
        let problem = Sedov::default();
        let cat = DeviceCatalog::standard_subset(&["cpu-e5-2670", "k20"]);
        let mut hydro =
            Hydro::<2>::builder(&problem, [4, 4]).fleet(&cat).build().expect("some entry fits");
        let picked = hydro.executor().device_id().expect("fleet pins an id").to_string();
        assert!(cat.lookup(&picked).is_some(), "picked {picked:?} is not in the fleet");
        // The selected configuration actually steps.
        let mut state = hydro.initial_state();
        let stats = hydro.run(&mut state, RunConfig::to(1e-3).max_steps(3)).expect("run");
        assert!(stats.steps >= 1);
    }
}
