//! Property-based tests for the finite element machinery.

use blast_fem::geom::{eval_h1_vector, zone_jacobians};
use blast_fem::mass::assemble_kinematic_mass;
use blast_fem::{gauss_legendre, Basis1d, CartMesh, H1Space, TensorBasis, TensorRule};
use proptest::prelude::*;

proptest! {
    #[test]
    fn quadrature_integrates_random_polynomials_exactly(
        n in 1usize..9,
        coeffs in proptest::collection::vec(-3.0..3.0f64, 1..8),
    ) {
        // Truncate the polynomial to the exactness degree 2n-1.
        let deg = (2 * n - 1).min(coeffs.len() - 1);
        let (x, w) = gauss_legendre(n);
        let poly = |t: f64| -> f64 {
            coeffs[..=deg].iter().enumerate().map(|(p, c)| c * t.powi(p as i32)).sum()
        };
        let quad: f64 = x.iter().zip(&w).map(|(&xi, &wi)| wi * poly(xi)).sum();
        let exact: f64 = coeffs[..=deg]
            .iter()
            .enumerate()
            .map(|(p, c)| c / (p as f64 + 1.0))
            .sum();
        prop_assert!((quad - exact).abs() < 1e-11 * exact.abs().max(1.0));
    }

    #[test]
    fn basis_partition_of_unity_at_random_points(
        order in 1usize..7,
        x in 0.0..1.0f64,
        y in 0.0..1.0f64,
    ) {
        let basis = TensorBasis::<2>::h1(order);
        let mut vals = vec![0.0; basis.ndof()];
        basis.eval_all(&[x, y], &mut vals);
        let s: f64 = vals.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-11);
        // Gradient of the constant interpolant is zero.
        let mut g: [Vec<f64>; 2] = [vec![0.0; basis.ndof()], vec![0.0; basis.ndof()]];
        basis.eval_grad_all(&[x, y], &mut g);
        for d in 0..2 {
            let gs: f64 = g[d].iter().sum();
            prop_assert!(gs.abs() < 1e-9);
        }
    }

    #[test]
    fn lagrange_interpolation_reproduces_its_nodes(
        order in 1usize..8,
        target in 0usize..8,
        x in 0.0..1.0f64,
    ) {
        let basis = Basis1d::h1(order);
        let j = target % basis.len();
        // Interpolating the j-th nodal indicator returns the j-th basis fn.
        let vals: Vec<f64> = (0..basis.len())
            .map(|i| if i == j { 1.0 } else { 0.0 })
            .collect();
        let interp: f64 = (0..basis.len()).map(|i| vals[i] * basis.eval(i, x)).sum();
        prop_assert!((interp - basis.eval(j, x)).abs() < 1e-12);
    }

    #[test]
    fn distorted_mesh_volume_matches_jacobian_integral(
        amp in 0.0..0.15f64,
        freq in 1.0..3.0f64,
    ) {
        // Smooth area-preserving-ish distortion x -> x + amp sin(f y):
        // shear preserves |J| = 1 exactly, so total volume is invariant.
        let mesh = CartMesh::<2>::unit(3);
        let space = H1Space::new(mesh, 2);
        let n = space.num_dofs();
        let mut x = space.initial_coords();
        for i in 0..n {
            let yi = x[n + i];
            x[i] += amp * (freq * yi).sin();
        }
        let rule = TensorRule::<2>::gauss(6);
        let table = space.basis().tabulate(&rule.points);
        let mut geom = Vec::new();
        let mut vol = 0.0;
        for z in 0..space.mesh().num_zones() {
            zone_jacobians(&space, &table, &x, z, &mut geom);
            for (g, &w) in geom.iter().zip(&rule.weights) {
                vol += w * g.det;
            }
        }
        prop_assert!((vol - 1.0).abs() < 1e-9, "volume {vol}");
    }

    #[test]
    fn mass_matrix_spd_under_random_density(
        rho in proptest::collection::vec(0.1..5.0f64, 4),
        probe in proptest::collection::vec(-1.0..1.0f64, 25),
    ) {
        // 2x2 zones at Q2: per-zone constant densities.
        let mesh = CartMesh::<2>::unit(2);
        let space = H1Space::new(mesh.clone(), 2);
        let rule = TensorRule::<2>::gauss(4);
        let table = space.basis().tabulate(&rule.points);
        let detj = 0.25;
        let w: Vec<f64> = (0..4)
            .flat_map(|z| std::iter::repeat_n(rho[z] * detj, rule.len()))
            .collect();
        let m = assemble_kinematic_mass(&space, &rule, &table, &w);
        prop_assert!(m.asymmetry() < 1e-13);
        let mx = m.spmv(&probe);
        let quad: f64 = probe.iter().zip(&mx).map(|(a, b)| a * b).sum();
        let pn: f64 = probe.iter().map(|v| v * v).sum();
        if pn > 1e-6 {
            prop_assert!(quad > 0.0, "x^T M x = {quad}");
        }
        // Total mass = sum of entries = sum rho_z * zone area.
        let total: f64 = m.values().iter().sum();
        let expect: f64 = rho.iter().map(|r| r * 0.25).sum();
        prop_assert!((total - expect).abs() < 1e-10);
    }

    #[test]
    fn field_evaluation_is_linear(
        a in -2.0..2.0f64,
        b in -2.0..2.0f64,
    ) {
        // eval(a u + b w) == a eval(u) + b eval(w).
        let mesh = CartMesh::<2>::unit(2);
        let space = H1Space::new(mesh, 2);
        let rule = TensorRule::<2>::gauss(3);
        let table = space.basis().tabulate(&rule.points);
        let n = space.num_dofs();
        let u: Vec<f64> = (0..2 * n).map(|i| ((i * 7) as f64 * 0.13).sin()).collect();
        let w: Vec<f64> = (0..2 * n).map(|i| ((i * 3) as f64 * 0.29).cos()).collect();
        let combo: Vec<f64> = u.iter().zip(&w).map(|(x, y)| a * x + b * y).collect();
        let mut vu = Vec::new();
        let mut vw = Vec::new();
        let mut vc = Vec::new();
        for z in 0..space.mesh().num_zones() {
            eval_h1_vector(&space, &table, &u, z, &mut vu);
            eval_h1_vector(&space, &table, &w, z, &mut vw);
            eval_h1_vector(&space, &table, &combo, z, &mut vc);
            for k in 0..rule.len() {
                for d in 0..2 {
                    let expect = a * vu[k][d] + b * vw[k][d];
                    prop_assert!((vc[k][d] - expect).abs() < 1e-11);
                }
            }
        }
    }
}
