//! # blast-fem
//!
//! High-order finite elements for the BLAST reproduction.
//!
//! BLAST discretizes Lagrangian hydrodynamics with a *kinematic* space of
//! continuous `Q_k` elements (velocity and positions) and a *thermodynamic*
//! space of discontinuous `Q_{k-1}` elements (specific internal energy) on
//! quadrilateral (2D) or hexahedral (3D) meshes — the `Q_k`-`Q_{k-1}` method
//! of the paper's §2. This crate provides:
//!
//! - Gauss-Legendre quadrature (any order) and tensor-product rules,
//! - 1D Lagrange bases on Gauss-Lobatto (H1) and Gauss-Legendre (L2) nodes,
//! - tensor-product `Q_k` bases with tabulated values/gradients,
//! - structured curvilinear meshes whose geometry is carried by the H1
//!   kinematic space itself (the Lagrangian frame: mesh nodes move with the
//!   fluid),
//! - H1 (continuous, globally numbered) and L2 (discontinuous, zone-local)
//!   scalar spaces,
//! - density-weighted mass matrices: the global sparse kinematic `M_V` and
//!   the block-diagonal thermodynamic `M_E`.
//!
//! The reference element is `[0,1]^D`; quadrature uses `2k` points per axis
//! which matches the paper's reported operand shapes (e.g. `Q2`-`Q1` in 3D:
//! 81 kinematic vector DOFs x 64 quadrature points).

pub mod basis1d;
pub mod geom;
pub mod mass;
pub mod mesh;
pub mod quadrature;
pub mod space;
pub mod sumfac;
pub mod tensor_basis;

pub use basis1d::Basis1d;
pub use geom::GeomAtPoint;
pub use mesh::CartMesh;
pub use quadrature::{gauss_legendre, TensorRule};
pub use space::{H1Space, L2Space};
pub use sumfac::{Factors1d, SumfacScratch};
pub use tensor_basis::{BasisTable, TensorBasis};

/// Number of quadrature points per axis used for a `Q_k`-`Q_{k-1}` method.
///
/// The paper's operand shapes imply `2k` 1D points (64 = 4^3 points for
/// `Q2`-`Q1` in 3D, 512 = 8^3 for `Q4`-`Q3`).
#[inline]
pub fn quad_points_1d(order: usize) -> usize {
    2 * order
}

#[cfg(test)]
mod tests {
    #[test]
    fn quad_points_match_paper_shapes() {
        // Q2-Q1 3D: 4^3 = 64 points; Q4-Q3 3D: 8^3 = 512 points.
        assert_eq!(super::quad_points_1d(2_usize).pow(3), 64);
        assert_eq!(super::quad_points_1d(4_usize).pow(3), 512);
    }
}
