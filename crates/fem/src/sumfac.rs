//! Sum-factorized tensor contractions — the matrix-free operator core.
//!
//! The stored-matrix pipeline materializes, per zone, the corner-force
//! matrix `A_z` (`nvdof x npts`) and `F_z = A_z B^T` (`nvdof x nthermo`),
//! plus a global CSR kinematic mass matrix. At Q4-Q3 in 3D that is
//! `375 x 512` doubles per zone — the §4.1 memory ceiling. The
//! partial-assembly treatment (Vargas et al., arXiv:2112.07075; Chalmers &
//! Warburton, arXiv:2009.10917) never forms those matrices: every operator
//! application is a chain of small dense contractions against the **1D**
//! basis/derivative factor matrices, exploiting the tensor-product
//! structure `ŵ_j(x̂) = φ_{j0}(x̂_0) φ_{j1}(x̂_1) φ_{j2}(x̂_2)` shared by the
//! `Q_k` bases and the Gauss quadrature rule.
//!
//! This module provides the factor tabulation ([`Factors1d`]) and the two
//! primitive contractions:
//!
//! - [`forward`]: DOF coefficients (`n1^dim`) → point values (`m1^dim`),
//!   i.e. `u(q̂) = Σ_j ŵ_j(q̂) u_j` (optionally one axis differentiated —
//!   the reference-gradient component `∂u/∂x̂_a`);
//! - [`backward`]: point data (`m1^dim`) → DOF accumulation (`n1^dim`),
//!   the exact transpose of [`forward`] (same optional derivative axis),
//!   with `beta` accumulation for summing gradient components.
//!
//! Each `dim`-dimensional transform is staged as `dim` small column-major
//! GEMMs through the tiled core ([`blast_la::tile::gemm`]), so the inner
//! loops inherit the runtime scalar/AVX2/AVX-512 dispatch and the bitwise
//! determinism guarantees of PR 4 (the contraction dimensions here are far
//! below one cache block, so every tile candidate reduces in the same
//! order).

use blast_la::tile::{self, Op};

use crate::basis1d::Basis1d;

/// 1D basis factor tables at a fixed 1D point set (the per-axis Gauss
/// nodes): values and derivatives of every 1D basis function at every
/// point, column-major `m1 x n1` (point index fastest — the same layout
/// `tile::gemm` consumes directly).
#[derive(Clone, Debug)]
pub struct Factors1d {
    /// Basis functions per axis.
    pub n1: usize,
    /// Points per axis.
    pub m1: usize,
    /// Values `b[q + j*m1] = φ_j(x_q)`.
    pub b: Vec<f64>,
    /// Derivatives `g[q + j*m1] = φ_j'(x_q)`.
    pub g: Vec<f64>,
    /// Per-point value row sums `Σ_j φ_j(x_q)` (≡ 1 up to roundoff for the
    /// interpolatory bases — the 1D factor of the "`B^T · 1`" contraction).
    pub bsum: Vec<f64>,
}

impl Factors1d {
    /// Tabulates `basis` at the 1D points `pts` (typically
    /// `gauss_legendre(2k).0` — the per-axis factor of the tensor
    /// quadrature rule).
    pub fn tabulate(basis: &Basis1d, pts: &[f64]) -> Self {
        let n1 = basis.len();
        let m1 = pts.len();
        let mut b = vec![0.0; m1 * n1];
        let mut g = vec![0.0; m1 * n1];
        let mut vbuf = vec![0.0; n1];
        for (q, &x) in pts.iter().enumerate() {
            basis.eval_all(x, &mut vbuf);
            for j in 0..n1 {
                b[q + j * m1] = vbuf[j];
            }
            basis.eval_deriv_all(x, &mut vbuf);
            for j in 0..n1 {
                g[q + j * m1] = vbuf[j];
            }
        }
        let bsum = (0..m1)
            .map(|q| (0..n1).map(|j| b[q + j * m1]).sum())
            .collect();
        Self { n1, m1, b, g, bsum }
    }

    /// Coefficients of a `dim`-dimensional transform (`n1^dim`).
    pub fn ndof(&self, dim: usize) -> usize {
        self.n1.pow(dim as u32)
    }

    /// Points of a `dim`-dimensional transform (`m1^dim`).
    pub fn npts(&self, dim: usize) -> usize {
        self.m1.pow(dim as u32)
    }

    /// Tensor-product row sums `t(q̂_k) = Σ_j ŵ_j(q̂_k)` over all `m1^dim`
    /// points (lexicographic, axis 0 fastest) — the constant vector the
    /// momentum contraction applies in place of the stored `F_z · 1`.
    pub fn value_row_sum_products(&self, dim: usize, out: &mut Vec<f64>) {
        let npts = self.npts(dim);
        out.clear();
        out.resize(npts, 0.0);
        for (k, o) in out.iter_mut().enumerate() {
            let mut rem = k;
            let mut v = 1.0;
            for _ in 0..dim {
                v *= self.bsum[rem % self.m1];
                rem /= self.m1;
            }
            *o = v;
        }
    }

    #[inline]
    fn factor(&self, axis: usize, deriv_axis: Option<usize>) -> &[f64] {
        if deriv_axis == Some(axis) {
            &self.g
        } else {
            &self.b
        }
    }

    /// Flops of one forward (or backward — same count) `dim`-dimensional
    /// transform, for the roofline traffic models.
    pub fn transform_flops(&self, dim: usize) -> f64 {
        let (n1, m1) = (self.n1 as f64, self.m1 as f64);
        match dim {
            2 => 2.0 * m1 * n1 * (n1 + m1),
            3 => 2.0 * m1 * n1 * (n1 * n1 + m1 * n1 + m1 * m1),
            _ => panic!("sumfac transforms support dim 2 and 3 only"),
        }
    }
}

/// Grow-only staging buffers for the intermediate contraction stages. One
/// per worker thread (or per zone-scratch) — the buffers track the
/// high-water transform size, so steady-state transforms allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct SumfacScratch {
    t1: Vec<f64>,
    t2: Vec<f64>,
}

impl SumfacScratch {
    /// Empty scratch; grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn stage(buf: &mut Vec<f64>, len: usize) -> &mut [f64] {
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        &mut buf[..len]
    }
}

/// Forward transform: DOF coefficients `u` (`n1^dim`, lexicographic with
/// axis 0 fastest) → values at the tensor points (`m1^dim`, same ordering)
/// into `out`. With `deriv_axis = Some(a)` the axis-`a` factor uses the
/// derivative table, producing the reference-gradient component
/// `∂u/∂x̂_a(q̂_k)`.
pub fn forward(
    f: &Factors1d,
    dim: usize,
    u: &[f64],
    deriv_axis: Option<usize>,
    out: &mut [f64],
    ws: &mut SumfacScratch,
) {
    let (n1, m1) = (f.n1, f.m1);
    assert_eq!(u.len(), f.ndof(dim), "sumfac forward: coefficient length");
    assert_eq!(out.len(), f.npts(dim), "sumfac forward: output length");
    match dim {
        2 => {
            // (q0, j1) = F0 · U, with U viewed as n1 x n1.
            let t1 = SumfacScratch::stage(&mut ws.t1, m1 * n1);
            tile::gemm(m1, n1, n1, 1.0, f.factor(0, deriv_axis), Op::N, u, Op::N, 0.0, t1);
            // (q0, q1) = T1 · F1^T.
            tile::gemm(m1, m1, n1, 1.0, t1, Op::N, f.factor(1, deriv_axis), Op::T, 0.0, out);
        }
        3 => {
            // (q0, j1, j2) = F0 · U, with U viewed as n1 x n1^2.
            let t1 = SumfacScratch::stage(&mut ws.t1, m1 * n1 * n1);
            tile::gemm(m1, n1 * n1, n1, 1.0, f.factor(0, deriv_axis), Op::N, u, Op::N, 0.0, t1);
            // (q0, q1, j2): one m1 x n1 slab per j2, times F1^T.
            let t2 = SumfacScratch::stage(&mut ws.t2, m1 * m1 * n1);
            let f1 = f.factor(1, deriv_axis);
            for j2 in 0..n1 {
                tile::gemm(
                    m1,
                    m1,
                    n1,
                    1.0,
                    &t1[j2 * m1 * n1..(j2 + 1) * m1 * n1],
                    Op::N,
                    f1,
                    Op::T,
                    0.0,
                    &mut t2[j2 * m1 * m1..(j2 + 1) * m1 * m1],
                );
            }
            // (q0 q1, q2) = T2 · F2^T, with T2 viewed as m1^2 x n1.
            tile::gemm(m1 * m1, m1, n1, 1.0, t2, Op::N, f.factor(2, deriv_axis), Op::T, 0.0, out);
        }
        _ => panic!("sumfac transforms support dim 2 and 3 only"),
    }
}

/// Backward (transpose) transform: point data `q` (`m1^dim`) → DOF-space
/// accumulation `out = beta*out + Σ_k ŵ_j(q̂_k) q_k` (`n1^dim`). This is
/// exactly the transpose of [`forward`] with the same `deriv_axis`, so
/// `⟨forward(u), q⟩ = ⟨u, backward(q)⟩`. Pass `beta = 1.0` to sum gradient
/// components across repeated calls (the `Σ_g` of the corner-force
/// contraction).
pub fn backward(
    f: &Factors1d,
    dim: usize,
    q: &[f64],
    deriv_axis: Option<usize>,
    beta: f64,
    out: &mut [f64],
    ws: &mut SumfacScratch,
) {
    let (n1, m1) = (f.n1, f.m1);
    assert_eq!(q.len(), f.npts(dim), "sumfac backward: point-data length");
    assert_eq!(out.len(), f.ndof(dim), "sumfac backward: output length");
    match dim {
        2 => {
            // (j0, q1) = F0^T · Q, with Q viewed as m1 x m1.
            let t1 = SumfacScratch::stage(&mut ws.t1, n1 * m1);
            tile::gemm(n1, m1, m1, 1.0, f.factor(0, deriv_axis), Op::T, q, Op::N, 0.0, t1);
            // (j0, j1) = T1 · F1 (+ beta * out).
            tile::gemm(n1, n1, m1, 1.0, t1, Op::N, f.factor(1, deriv_axis), Op::N, beta, out);
        }
        3 => {
            // (j0, q1, q2) = F0^T · Q, with Q viewed as m1 x m1^2.
            let t1 = SumfacScratch::stage(&mut ws.t1, n1 * m1 * m1);
            tile::gemm(n1, m1 * m1, m1, 1.0, f.factor(0, deriv_axis), Op::T, q, Op::N, 0.0, t1);
            // (j0, j1, q2): one n1 x m1 slab per q2, times F1.
            let t2 = SumfacScratch::stage(&mut ws.t2, n1 * n1 * m1);
            let f1 = f.factor(1, deriv_axis);
            for q2 in 0..m1 {
                tile::gemm(
                    n1,
                    n1,
                    m1,
                    1.0,
                    &t1[q2 * n1 * m1..(q2 + 1) * n1 * m1],
                    Op::N,
                    f1,
                    Op::N,
                    0.0,
                    &mut t2[q2 * n1 * n1..(q2 + 1) * n1 * n1],
                );
            }
            // (j0 j1, j2) = T2 · F2 (+ beta * out), T2 viewed as n1^2 x m1.
            tile::gemm(n1 * n1, n1, m1, 1.0, t2, Op::N, f.factor(2, deriv_axis), Op::N, beta, out);
        }
        _ => panic!("sumfac transforms support dim 2 and 3 only"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::{gauss_legendre, TensorRule};
    use crate::tensor_basis::TensorBasis;
    use crate::quad_points_1d;

    fn dense_forward<const D: usize>(
        basis: &TensorBasis<D>,
        pts: &[[f64; D]],
        u: &[f64],
        deriv_axis: Option<usize>,
    ) -> Vec<f64> {
        let table = basis.tabulate(pts);
        let mat = match deriv_axis {
            None => &table.values,
            Some(a) => &table.grads[a],
        };
        (0..pts.len())
            .map(|k| (0..basis.ndof()).map(|j| mat[(j, k)] * u[j]).sum())
            .collect()
    }

    fn coeffs(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|j| (j as f64 * 0.713 + seed).sin()).collect()
    }

    #[test]
    fn forward_matches_dense_tabulation_3d() {
        for order in 2..=4 {
            let b1 = Basis1d::h1(order);
            let pts1 = gauss_legendre(quad_points_1d(order)).0;
            let f = Factors1d::tabulate(&b1, &pts1);
            let basis = TensorBasis::<3>::h1(order);
            let rule = TensorRule::<3>::gauss(quad_points_1d(order));
            let u = coeffs(basis.ndof(), 0.3);
            let mut out = vec![0.0; rule.len()];
            let mut ws = SumfacScratch::new();
            for axis in [None, Some(0), Some(1), Some(2)] {
                forward(&f, 3, &u, axis, &mut out, &mut ws);
                let expect = dense_forward(&basis, &rule.points, &u, axis);
                for (k, (got, want)) in out.iter().zip(&expect).enumerate() {
                    assert!(
                        (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                        "order {order} axis {axis:?} point {k}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn forward_matches_dense_tabulation_2d_thermo() {
        for order in 2..=4 {
            // Thermodynamic factors: L2 basis of order k-1 at the same rule.
            let b1 = Basis1d::l2(order - 1);
            let pts1 = gauss_legendre(quad_points_1d(order)).0;
            let f = Factors1d::tabulate(&b1, &pts1);
            let basis = TensorBasis::<2>::l2(order - 1);
            let rule = TensorRule::<2>::gauss(quad_points_1d(order));
            let u = coeffs(basis.ndof(), 1.1);
            let mut out = vec![0.0; rule.len()];
            let mut ws = SumfacScratch::new();
            for axis in [None, Some(0), Some(1)] {
                forward(&f, 2, &u, axis, &mut out, &mut ws);
                let expect = dense_forward(&basis, &rule.points, &u, axis);
                for (got, want) in out.iter().zip(&expect) {
                    assert!((got - want).abs() <= 1e-12 * want.abs().max(1.0));
                }
            }
        }
    }

    #[test]
    fn backward_is_transpose_of_forward() {
        for (dim, order) in [(2usize, 3usize), (3, 2), (3, 4)] {
            let b1 = Basis1d::h1(order);
            let pts1 = gauss_legendre(quad_points_1d(order)).0;
            let f = Factors1d::tabulate(&b1, &pts1);
            let ndof = f.ndof(dim);
            let npts = f.npts(dim);
            let u = coeffs(ndof, 0.2);
            let q = coeffs(npts, 2.7);
            let mut ws = SumfacScratch::new();
            for axis_opt in [None, Some(0), Some(dim - 1)] {
                let mut fu = vec![0.0; npts];
                forward(&f, dim, &u, axis_opt, &mut fu, &mut ws);
                let mut btq = vec![0.0; ndof];
                backward(&f, dim, &q, axis_opt, 0.0, &mut btq, &mut ws);
                let lhs: f64 = fu.iter().zip(&q).map(|(a, b)| a * b).sum();
                let rhs: f64 = u.iter().zip(&btq).map(|(a, b)| a * b).sum();
                assert!(
                    (lhs - rhs).abs() <= 1e-12 * lhs.abs().max(1.0),
                    "dim {dim} order {order} axis {axis_opt:?}: {lhs} vs {rhs}"
                );
            }
        }
    }

    #[test]
    fn backward_beta_accumulates() {
        let b1 = Basis1d::h1(2);
        let pts1 = gauss_legendre(4).0;
        let f = Factors1d::tabulate(&b1, &pts1);
        let q = coeffs(f.npts(3), 0.9);
        let mut ws = SumfacScratch::new();
        let mut once = vec![0.0; f.ndof(3)];
        backward(&f, 3, &q, None, 0.0, &mut once, &mut ws);
        let mut acc = vec![0.0; f.ndof(3)];
        backward(&f, 3, &q, None, 1.0, &mut acc, &mut ws);
        backward(&f, 3, &q, None, 1.0, &mut acc, &mut ws);
        for (a, o) in acc.iter().zip(&once) {
            assert!((a - 2.0 * o).abs() <= 1e-13 * o.abs().max(1.0));
        }
    }

    #[test]
    fn row_sum_products_are_partition_of_unity() {
        let b1 = Basis1d::h1(3);
        let pts1 = gauss_legendre(6).0;
        let f = Factors1d::tabulate(&b1, &pts1);
        let mut t = Vec::new();
        f.value_row_sum_products(3, &mut t);
        assert_eq!(t.len(), f.npts(3));
        for &v in &t {
            assert!((v - 1.0).abs() < 1e-12, "{v}");
        }
    }

    #[test]
    fn transforms_are_deterministic_and_allocation_stable() {
        // Two identical runs through warmed scratch give bitwise-equal
        // output (the bitwise-determinism contract the solver leans on).
        let b1 = Basis1d::h1(4);
        let pts1 = gauss_legendre(8).0;
        let f = Factors1d::tabulate(&b1, &pts1);
        let u = coeffs(f.ndof(3), 0.5);
        let mut ws = SumfacScratch::new();
        let mut a = vec![0.0; f.npts(3)];
        forward(&f, 3, &u, Some(1), &mut a, &mut ws);
        let mut b = vec![0.0; f.npts(3)];
        forward(&f, 3, &u, Some(1), &mut b, &mut ws);
        assert_eq!(a, b);
    }

    #[test]
    fn transform_flops_positive_and_ordered() {
        let b1 = Basis1d::h1(4);
        let pts1 = gauss_legendre(8).0;
        let f = Factors1d::tabulate(&b1, &pts1);
        assert!(f.transform_flops(3) > f.transform_flops(2));
        // Far below the dense nkin x npts contraction (2 * 125 * 512 per
        // scalar component at Q4): that is the whole point.
        assert!(f.transform_flops(3) < 2.0 * 125.0 * 512.0);
    }
}
