//! 1D Lagrange interpolation bases.
//!
//! A `Basis1d` is the set of Lagrange cardinal polynomials on a given node
//! set: `ℓ_j(x_i) = δ_ij`. Tensor products of these give the `Q_k` bases.
//! Evaluation uses the barycentric formulation, which is numerically stable
//! for the high orders (`Q8`) the paper runs.

use crate::quadrature::{gauss_legendre, gauss_lobatto_nodes};

/// Lagrange basis on a fixed set of distinct nodes in `[0, 1]`.
#[derive(Clone, Debug)]
pub struct Basis1d {
    nodes: Vec<f64>,
    /// Barycentric weights `w_j = 1 / prod_{m != j} (x_j - x_m)`.
    bary: Vec<f64>,
}

impl Basis1d {
    /// Builds the basis on arbitrary distinct nodes.
    pub fn new(nodes: Vec<f64>) -> Self {
        let n = nodes.len();
        assert!(n >= 1, "basis needs at least one node");
        let mut bary = vec![1.0; n];
        for j in 0..n {
            for m in 0..n {
                if m != j {
                    let d = nodes[j] - nodes[m];
                    assert!(d != 0.0, "repeated node in Lagrange basis");
                    bary[j] /= d;
                }
            }
        }
        Self { nodes, bary }
    }

    /// Continuous (H1) basis of order `k`: `k+1` Gauss-Lobatto nodes,
    /// endpoints included so neighbouring zones share face nodes.
    pub fn h1(order: usize) -> Self {
        assert!(order >= 1, "H1 basis needs order >= 1");
        Self::new(gauss_lobatto_nodes(order + 1))
    }

    /// Discontinuous (L2) basis of order `k`: `k+1` Gauss-Legendre nodes,
    /// strictly interior (no continuity constraint).
    pub fn l2(order: usize) -> Self {
        let (nodes, _) = gauss_legendre(order + 1);
        Self::new(nodes)
    }

    /// Number of basis functions.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Polynomial order (`len - 1`).
    pub fn order(&self) -> usize {
        self.nodes.len() - 1
    }

    /// True for the trivial empty basis (never constructed via `new`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Interpolation nodes.
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Evaluates all basis functions at `x` into `out` (length `len()`).
    pub fn eval_all(&self, x: f64, out: &mut [f64]) {
        let n = self.len();
        debug_assert_eq!(out.len(), n);
        // Exact node hit: Kronecker delta (avoids 0/0 in barycentric form).
        for j in 0..n {
            if x == self.nodes[j] {
                out.iter_mut().for_each(|v| *v = 0.0);
                out[j] = 1.0;
                return;
            }
        }
        // ℓ_j(x) = [w_j / (x - x_j)] / sum_m [w_m / (x - x_m)].
        let mut denom = 0.0;
        for j in 0..n {
            let t = self.bary[j] / (x - self.nodes[j]);
            out[j] = t;
            denom += t;
        }
        out.iter_mut().for_each(|v| *v /= denom);
    }

    /// Evaluates all first derivatives at `x` into `out`.
    ///
    /// Uses the differentiation matrix identity at nodes and the analytic
    /// derivative of the barycentric form off nodes.
    pub fn eval_deriv_all(&self, x: f64, out: &mut [f64]) {
        let n = self.len();
        debug_assert_eq!(out.len(), n);
        // At a node x_i: ℓ'_j(x_i) = (w_j/w_i)/(x_i - x_j) for j != i,
        // and ℓ'_i(x_i) = -sum_{j != i} ℓ'_j(x_i).
        for i in 0..n {
            if x == self.nodes[i] {
                let mut sum = 0.0;
                for j in 0..n {
                    if j != i {
                        let v = (self.bary[j] / self.bary[i]) / (self.nodes[i] - self.nodes[j]);
                        out[j] = v;
                        sum += v;
                    }
                }
                out[i] = -sum;
                return;
            }
        }
        // Off nodes: ℓ_j = t_j / s with t_j = w_j/(x-x_j), s = sum t_m.
        // t'_j = -w_j/(x-x_j)^2, s' = sum t'_m,
        // ℓ'_j = (t'_j s - t_j s') / s^2.
        let mut t = vec![0.0; n];
        let mut tp = vec![0.0; n];
        let mut s = 0.0;
        let mut sp = 0.0;
        for j in 0..n {
            let dx = x - self.nodes[j];
            t[j] = self.bary[j] / dx;
            tp[j] = -self.bary[j] / (dx * dx);
            s += t[j];
            sp += tp[j];
        }
        for j in 0..n {
            out[j] = (tp[j] * s - t[j] * sp) / (s * s);
        }
    }

    /// Single basis function value (convenience for tests).
    pub fn eval(&self, j: usize, x: f64) -> f64 {
        let mut buf = vec![0.0; self.len()];
        self.eval_all(x, &mut buf);
        buf[j]
    }

    /// Single basis function derivative (convenience for tests).
    pub fn eval_deriv(&self, j: usize, x: f64) -> f64 {
        let mut buf = vec![0.0; self.len()];
        self.eval_deriv_all(x, &mut buf);
        buf[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kronecker_delta_at_nodes() {
        for basis in [Basis1d::h1(3), Basis1d::l2(3)] {
            let nodes = basis.nodes().to_vec();
            for (i, &xi) in nodes.iter().enumerate() {
                for j in 0..basis.len() {
                    let v = basis.eval(j, xi);
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!((v - expect).abs() < 1e-13, "l_{j}({xi}) = {v}");
                }
            }
        }
    }

    #[test]
    fn partition_of_unity() {
        for order in 1..=8 {
            let basis = Basis1d::h1(order);
            for &x in &[0.0, 0.123, 0.5, 0.77, 1.0] {
                let mut buf = vec![0.0; basis.len()];
                basis.eval_all(x, &mut buf);
                let s: f64 = buf.iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "order {order} x {x}: {s}");
            }
        }
    }

    #[test]
    fn derivative_sums_to_zero() {
        // d/dx of the constant-1 interpolant is 0.
        for order in 1..=8 {
            let basis = Basis1d::h1(order);
            for &x in &[0.0, 0.3, 0.5, 0.9, 1.0] {
                let mut buf = vec![0.0; basis.len()];
                basis.eval_deriv_all(x, &mut buf);
                let s: f64 = buf.iter().sum();
                assert!(s.abs() < 1e-10, "order {order} x {x}: {s}");
            }
        }
    }

    #[test]
    fn reproduces_polynomials_exactly() {
        // Order-k basis interpolates x^p exactly for p <= k.
        let order = 4;
        let basis = Basis1d::h1(order);
        for p in 0..=order {
            for &x in &[0.21, 0.5, 0.83] {
                let interp: f64 = (0..basis.len())
                    .map(|j| basis.nodes()[j].powi(p as i32) * basis.eval(j, x))
                    .sum();
                assert!((interp - x.powi(p as i32)).abs() < 1e-12, "p={p} x={x}");
            }
        }
    }

    #[test]
    fn derivative_of_linear_is_constant() {
        let basis = Basis1d::h1(1); // nodes {0, 1}
        for &x in &[0.0, 0.4, 1.0] {
            assert!((basis.eval_deriv(0, x) + 1.0).abs() < 1e-14);
            assert!((basis.eval_deriv(1, x) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let basis = Basis1d::h1(5);
        let h = 1e-6;
        for j in 0..basis.len() {
            for &x in &[0.17, 0.44, 0.91] {
                let fd = (basis.eval(j, x + h) - basis.eval(j, x - h)) / (2.0 * h);
                let an = basis.eval_deriv(j, x);
                assert!((fd - an).abs() < 1e-6 * an.abs().max(1.0), "j={j} x={x}");
            }
        }
    }

    #[test]
    fn derivative_at_node_matches_finite_difference() {
        let basis = Basis1d::h1(4);
        let h = 1e-6;
        let x = basis.nodes()[2];
        for j in 0..basis.len() {
            let fd = (basis.eval(j, x + h) - basis.eval(j, x - h)) / (2.0 * h);
            let an = basis.eval_deriv(j, x);
            assert!((fd - an).abs() < 1e-5 * an.abs().max(1.0), "j={j}");
        }
    }

    #[test]
    fn l2_nodes_are_interior() {
        for order in 0..=5 {
            let basis = Basis1d::l2(order);
            assert_eq!(basis.len(), order + 1);
            for &x in basis.nodes() {
                assert!(x > 0.0 && x < 1.0);
            }
        }
    }

    #[test]
    fn l2_order_zero_is_constant_one() {
        let basis = Basis1d::l2(0);
        for &x in &[0.0, 0.5, 1.0] {
            assert!((basis.eval(0, x) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "repeated node")]
    fn repeated_nodes_rejected() {
        Basis1d::new(vec![0.0, 0.5, 0.5, 1.0]);
    }
}
