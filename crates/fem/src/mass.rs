//! Density-weighted mass matrices.
//!
//! - Kinematic `M_V`: Gram matrix of the continuous basis, global, symmetric
//!   and sparse — solved with PCG every step (the paper's kernel 9).
//! - Thermodynamic `M_E`: Gram matrix of the discontinuous basis, block
//!   diagonal — inverted once at startup and applied by SpMV (kernel 11).
//!
//! Both are weighted by `ρ |J|`. Strong mass conservation in the Lagrangian
//! frame freezes `ρ(x(t)) |J(t)| = ρ₀ |J₀|` at each quadrature point, so
//! **both matrices are constant in time** and are assembled exactly once.

use blast_la::{BlockDiag, CsrBuilder, CsrMatrix, DMatrix};
use rayon::prelude::*;

use crate::quadrature::TensorRule;
use crate::space::{H1Space, L2Space};
use crate::tensor_basis::BasisTable;

/// Grow-only workspace for the batched (stored-path) mass assembly: the
/// zone-major buffer of local `ldof x ldof` blocks. Reused across calls the
/// same way the solver's step pools are — sized on first use, never shrunk
/// — so repeated assemblies (rebuilds, benches, property sweeps) stay off
/// the allocator after the first.
#[derive(Debug, Default)]
pub struct MassScratch {
    locals: Vec<f64>,
}

/// Assembles the global sparse kinematic mass matrix
/// `(M_V)_ij = Σ_z Σ_k α_k (ρ|J|)_{z,k} ŵ_i(q̂_k) ŵ_j(q̂_k)`.
///
/// `rho_detj` holds `ρ₀|J₀|` per `(zone, point)`, zone-major with stride
/// `rule.len()`. The result acts on one velocity component; the full vector
/// mass matrix is block diagonal over components with this block repeated.
///
/// One-shot convenience over [`assemble_kinematic_mass_with`] (a fresh
/// scratch per call).
pub fn assemble_kinematic_mass<const D: usize>(
    space: &H1Space<D>,
    rule: &TensorRule<D>,
    table: &BasisTable<D>,
    rho_detj: &[f64],
) -> CsrMatrix {
    assemble_kinematic_mass_with(space, rule, table, rho_detj, &mut MassScratch::default())
}

/// [`assemble_kinematic_mass`] with caller-owned scratch: the per-zone
/// local-block buffer comes from `ws` (grown once, zeroed in place), so
/// repeated assemblies perform no heap allocation beyond the returned CSR
/// itself. The result is bitwise identical to the one-shot form at any
/// thread count.
pub fn assemble_kinematic_mass_with<const D: usize>(
    space: &H1Space<D>,
    rule: &TensorRule<D>,
    table: &BasisTable<D>,
    rho_detj: &[f64],
    ws: &mut MassScratch,
) -> CsrMatrix {
    let nz = space.mesh().num_zones();
    let npts = rule.len();
    assert_eq!(rho_detj.len(), nz * npts, "rho_detj shape mismatch");
    assert_eq!(table.npts(), npts, "basis table/rule mismatch");
    let ldof = space.ndof_per_zone();
    let n = space.num_dofs();

    // Per-zone local blocks are independent — compute them in parallel
    // into a flat zone-major buffer, then scatter serially in zone order
    // so the CSR accumulation order (and thus every bit of the result)
    // is identical at any thread count.
    let want = nz * ldof * ldof;
    if ws.locals.len() < want {
        ws.locals.resize(want, 0.0);
    }
    let locals = &mut ws.locals[..want];
    locals.fill(0.0);
    locals.par_chunks_exact_mut(ldof * ldof).enumerate().for_each(|(z, local)| {
        let w = &rho_detj[z * npts..(z + 1) * npts];
        for k in 0..npts {
            let s = rule.weights[k] * w[k];
            if s == 0.0 {
                continue;
            }
            for j in 0..ldof {
                let bj = table.values[(j, k)];
                if bj == 0.0 {
                    continue;
                }
                let sj = s * bj;
                for i in 0..ldof {
                    local[j * ldof + i] += sj * table.values[(i, k)];
                }
            }
        }
    });
    let mut builder = CsrBuilder::new(n, n);
    for z in 0..nz {
        let local = &locals[z * ldof * ldof..(z + 1) * ldof * ldof];
        let dofs = space.zone_dofs(z);
        for j in 0..ldof {
            for i in 0..ldof {
                builder.add(dofs[i], dofs[j], local[j * ldof + i]);
            }
        }
    }
    builder.build()
}

/// Assembles the block-diagonal thermodynamic mass matrix
/// `(M_E)_z = Σ_k α_k (ρ|J|)_{z,k} φ̂(q̂_k) φ̂(q̂_k)^T` (one block per zone).
pub fn assemble_thermodynamic_mass<const D: usize>(
    space: &L2Space<D>,
    rule: &TensorRule<D>,
    table: &BasisTable<D>,
    rho_detj: &[f64],
) -> BlockDiag {
    let nz = space.mesh().num_zones();
    let npts = rule.len();
    assert_eq!(rho_detj.len(), nz * npts, "rho_detj shape mismatch");
    let ldof = space.ndof_per_zone();

    // One independent block per zone: the textbook parallel assembly.
    let mut blocks: Vec<DMatrix> = (0..nz).map(|_| DMatrix::zeros(ldof, ldof)).collect();
    blocks.par_iter_mut().enumerate().for_each(|(z, block)| {
        let w = &rho_detj[z * npts..(z + 1) * npts];
        for k in 0..npts {
            let s = rule.weights[k] * w[k];
            for j in 0..ldof {
                let sj = s * table.values[(j, k)];
                if sj == 0.0 {
                    continue;
                }
                for i in 0..ldof {
                    block[(i, j)] += sj * table.values[(i, k)];
                }
            }
        }
    });
    BlockDiag::from_blocks(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::CartMesh;

    /// Unit density on the initial mesh: rho_detj = |J0| = prod(h).
    fn unit_rho_detj<const D: usize>(mesh: &CartMesh<D>, npts: usize) -> Vec<f64> {
        let detj: f64 = mesh.zone_size().iter().product();
        vec![detj; mesh.num_zones() * npts]
    }

    #[test]
    fn kinematic_mass_row_sums_give_total_mass() {
        // sum_ij M_ij = integral of rho = total mass = density * volume.
        let mesh = CartMesh::<2>::new([3, 2], [0.0, 0.0], [3.0, 1.0]);
        let space = H1Space::new(mesh.clone(), 2);
        let rule = TensorRule::<2>::gauss(4);
        let table = space.basis().tabulate(&rule.points);
        let w = unit_rho_detj(&mesh, rule.len());
        let m = assemble_kinematic_mass(&space, &rule, &table, &w);
        let total: f64 = m.values().iter().sum();
        assert!((total - 3.0).abs() < 1e-12, "total mass {total}");
    }

    #[test]
    fn scratch_reuse_is_bitwise_and_allocation_free_after_first_use() {
        let mesh = CartMesh::<2>::unit(3);
        let space = H1Space::new(mesh.clone(), 3);
        let rule = TensorRule::<2>::gauss(6);
        let table = space.basis().tabulate(&rule.points);
        let w = unit_rho_detj(&mesh, rule.len());
        let reference = assemble_kinematic_mass(&space, &rule, &table, &w);
        let mut ws = MassScratch::default();
        let first = assemble_kinematic_mass_with(&space, &rule, &table, &w, &mut ws);
        let cap = ws.locals.capacity();
        let ptr = ws.locals.as_ptr();
        let second = assemble_kinematic_mass_with(&space, &rule, &table, &w, &mut ws);
        assert_eq!(ws.locals.capacity(), cap, "scratch must not regrow");
        assert_eq!(ws.locals.as_ptr(), ptr, "scratch must not reallocate");
        for (m, name) in [(&first, "first"), (&second, "second")] {
            assert_eq!(m.values(), reference.values(), "{name} assembly differs");
        }
    }

    #[test]
    fn kinematic_mass_is_symmetric() {
        let mesh = CartMesh::<2>::unit(2);
        let space = H1Space::new(mesh.clone(), 3);
        let rule = TensorRule::<2>::gauss(6);
        let table = space.basis().tabulate(&rule.points);
        let w = unit_rho_detj(&mesh, rule.len());
        let m = assemble_kinematic_mass(&space, &rule, &table, &w);
        assert!(m.asymmetry() < 1e-14);
    }

    #[test]
    fn kinematic_mass_is_spd() {
        // x^T M x = integral of the interpolant squared > 0 for x != 0.
        let mesh = CartMesh::<2>::unit(2);
        let space = H1Space::new(mesh.clone(), 2);
        let rule = TensorRule::<2>::gauss(4);
        let table = space.basis().tabulate(&rule.points);
        let w = unit_rho_detj(&mesh, rule.len());
        let m = assemble_kinematic_mass(&space, &rule, &table, &w);
        let n = space.num_dofs();
        for trial in 0..5 {
            let x: Vec<f64> = (0..n).map(|i| ((i * 7 + trial * 13) as f64).sin()).collect();
            let mx = m.spmv(&x);
            let q: f64 = x.iter().zip(&mx).map(|(a, b)| a * b).sum();
            assert!(q > 0.0, "trial {trial}: x^T M x = {q}");
        }
    }

    #[test]
    fn thermodynamic_mass_blocks_spd_and_count() {
        let mesh = CartMesh::<3>::unit(2);
        let space = L2Space::new(mesh.clone(), 1);
        let rule = TensorRule::<3>::gauss(4);
        let table = space.basis().tabulate(&rule.points);
        let w = unit_rho_detj(&mesh, rule.len());
        let me = assemble_thermodynamic_mass(&space, &rule, &table, &w);
        assert_eq!(me.num_blocks(), 8);
        assert_eq!(me.block_size(), 8);
        assert!(me.asymmetry() < 1e-15);
        // Diagonal of each block positive.
        for z in 0..me.num_blocks() {
            for i in 0..me.block_size() {
                assert!(me.block(z)[(i, i)] > 0.0);
            }
        }
    }

    #[test]
    fn thermodynamic_mass_total() {
        // 1^T M_E 1 = total mass (partition of unity of the L2 basis).
        let mesh = CartMesh::<2>::new([2, 2], [0.0, 0.0], [2.0, 2.0]);
        let space = L2Space::new(mesh.clone(), 2);
        let rule = TensorRule::<2>::gauss(4);
        let table = space.basis().tabulate(&rule.points);
        let w = unit_rho_detj(&mesh, rule.len());
        let me = assemble_thermodynamic_mass(&space, &rule, &table, &w);
        let ones = vec![1.0; me.dim()];
        let mut m1 = vec![0.0; me.dim()];
        me.apply(&ones, &mut m1);
        let total: f64 = m1.iter().sum();
        assert!((total - 4.0).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn nonuniform_density_scales_mass() {
        // Double the density on half the zones: total mass = 1.5 * volume.
        let mesh = CartMesh::<2>::unit(2);
        let space = H1Space::new(mesh.clone(), 1);
        let rule = TensorRule::<2>::gauss(2);
        let table = space.basis().tabulate(&rule.points);
        let npts = rule.len();
        let detj = 0.5 * 0.5; // zone size of the 2x2 unit mesh
        let mut w = vec![detj; 4 * npts];
        for k in 0..2 * npts {
            w[k] *= 2.0; // zones 0 and 1 at double density
        }
        let m = assemble_kinematic_mass(&space, &rule, &table, &w);
        let total: f64 = m.values().iter().sum();
        assert!((total - 1.5).abs() < 1e-13, "total {total}");
    }

    #[test]
    fn me_inverse_applies_cleanly() {
        let mesh = CartMesh::<2>::unit(2);
        let space = L2Space::new(mesh.clone(), 1);
        let rule = TensorRule::<2>::gauss(3);
        let table = space.basis().tabulate(&rule.points);
        let w = unit_rho_detj(&mesh, rule.len());
        let me = assemble_thermodynamic_mass(&space, &rule, &table, &w);
        let inv = me.inverse();
        let x: Vec<f64> = (0..me.dim()).map(|i| (i as f64 * 0.37).cos()).collect();
        let mut mx = vec![0.0; me.dim()];
        me.apply(&x, &mut mx);
        let mut back = vec![0.0; me.dim()];
        inv.apply(&mx, &mut back);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-11);
        }
    }
}
