//! Gauss-Legendre quadrature on `[0,1]` and tensor-product rules.
//!
//! The corner-force integral (eq. 4) is evaluated with a tensor-product
//! Gauss rule; every quadrature point carries an independent piece of the
//! computation, which is exactly the parallelism the paper's kernels 1-4
//! exploit ("independent operations are performed on each quadrature point
//! (thread)").

/// Evaluates the Legendre polynomial `P_n` and its derivative at `x` on
/// `[-1, 1]` via the three-term recurrence.
fn legendre(n: usize, x: f64) -> (f64, f64) {
    if n == 0 {
        return (1.0, 0.0);
    }
    let (mut p_prev, mut p) = (1.0, x);
    for k in 1..n {
        let kf = k as f64;
        let p_next = ((2.0 * kf + 1.0) * x * p - kf * p_prev) / (kf + 1.0);
        p_prev = p;
        p = p_next;
    }
    // P'_n(x) = n (x P_n - P_{n-1}) / (x^2 - 1)
    let dp = n as f64 * (x * p - p_prev) / (x * x - 1.0);
    (p, dp)
}

/// Returns the `n`-point Gauss-Legendre nodes and weights on `[0, 1]`.
///
/// Exact for polynomials of degree `2n - 1`. Panics for `n == 0`.
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1, "quadrature rule needs at least one point");
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    for i in 0..n.div_ceil(2) {
        // Chebyshev-based initial guess for the i-th root of P_n.
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        // Newton iteration.
        for _ in 0..100 {
            let (p, dp) = legendre(n, x);
            let dx = p / dp;
            x -= dx;
            if dx.abs() < 1e-16 {
                break;
            }
        }
        let (_, dp) = legendre(n, x);
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        // Map from [-1,1] to [0,1]: node (x+1)/2, weight w/2. Roots from the
        // cosine guess come out descending in x, so mirror for ascending
        // order on [0,1].
        nodes[i] = (1.0 - x) / 2.0;
        nodes[n - 1 - i] = (1.0 + x) / 2.0;
        weights[i] = w / 2.0;
        weights[n - 1 - i] = w / 2.0;
    }
    (nodes, weights)
}

/// Returns the `n`-point Gauss-Lobatto nodes on `[0, 1]` (endpoints
/// included). Requires `n >= 2`.
///
/// These are the interpolation nodes of the continuous kinematic basis: the
/// endpoint nodes make the basis continuous across zone faces.
pub fn gauss_lobatto_nodes(n: usize) -> Vec<f64> {
    assert!(n >= 2, "Gauss-Lobatto needs at least the two endpoints");
    let mut nodes = vec![0.0; n];
    nodes[0] = 0.0;
    nodes[n - 1] = 1.0;
    // Interior nodes are roots of P'_{n-1} on (-1, 1).
    let m = n - 1; // degree of the Legendre polynomial whose derivative we root
    for i in 1..n - 1 {
        // Initial guess: Chebyshev-Lobatto points (exact for n<=3, close else).
        let mut x = (std::f64::consts::PI * (m - i) as f64 / m as f64).cos();
        for _ in 0..100 {
            // Newton on f = P'_m. f' = P''_m from the Legendre ODE:
            // (1-x^2) P''_m = 2x P'_m - m(m+1) P_m.
            let (p, dp) = legendre(m, x);
            let ddp = (2.0 * x * dp - (m * (m + 1)) as f64 * p) / (1.0 - x * x);
            let dx = dp / ddp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        nodes[i] = (1.0 + x) / 2.0;
    }
    nodes
}

/// A tensor-product quadrature rule on `[0,1]^D`.
#[derive(Clone, Debug)]
pub struct TensorRule<const D: usize> {
    /// Quadrature points in reference coordinates.
    pub points: Vec<[f64; D]>,
    /// Quadrature weights (the `α_k` of eq. 4).
    pub weights: Vec<f64>,
}

impl<const D: usize> TensorRule<D> {
    /// Builds the tensor product of the `n`-point 1D Gauss-Legendre rule.
    ///
    /// Point ordering is lexicographic with axis 0 fastest, matching the
    /// basis tabulation in [`crate::tensor_basis`].
    pub fn gauss(n: usize) -> Self {
        let (nodes, w1) = gauss_legendre(n);
        let total = n.pow(D as u32);
        let mut points = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        for flat in 0..total {
            let mut p = [0.0; D];
            let mut w = 1.0;
            let mut rem = flat;
            for d in 0..D {
                let idx = rem % n;
                rem /= n;
                p[d] = nodes[idx];
                w *= w1[idx];
            }
            points.push(p);
            weights.push(w);
        }
        Self { points, weights }
    }

    /// Number of quadrature points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the rule is empty (never for `gauss(n>=1)`).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn integrate_1d(n: usize, f: impl Fn(f64) -> f64) -> f64 {
        let (x, w) = gauss_legendre(n);
        x.iter().zip(&w).map(|(&xi, &wi)| wi * f(xi)).sum()
    }

    #[test]
    fn weights_sum_to_one() {
        for n in 1..=16 {
            let (_, w) = gauss_legendre(n);
            let s: f64 = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-14, "n={n}: {s}");
        }
    }

    #[test]
    fn nodes_inside_unit_interval_and_sorted() {
        for n in 1..=16 {
            let (x, _) = gauss_legendre(n);
            for i in 0..n {
                assert!(x[i] > 0.0 && x[i] < 1.0);
                if i > 0 {
                    assert!(x[i] > x[i - 1], "n={n} not sorted");
                }
            }
        }
    }

    #[test]
    fn exactness_degree_2n_minus_1() {
        // Integral of x^p on [0,1] is 1/(p+1).
        for n in 1..=10 {
            for p in 0..=(2 * n - 1) {
                let val = integrate_1d(n, |x| x.powi(p as i32));
                let exact = 1.0 / (p as f64 + 1.0);
                assert!(
                    (val - exact).abs() < 1e-13,
                    "n={n} p={p}: {val} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn degree_2n_not_exact() {
        // x^{2n} should NOT be integrated exactly (sanity on the exactness
        // boundary).
        let n = 3;
        let val = integrate_1d(n, |x| x.powi(2 * n as i32));
        let exact = 1.0 / (2.0 * n as f64 + 1.0);
        assert!((val - exact).abs() > 1e-8);
    }

    #[test]
    fn transcendental_convergence() {
        // High-order rule nails smooth integrands: ∫₀¹ e^x = e - 1.
        let val = integrate_1d(12, f64::exp);
        assert!((val - (std::f64::consts::E - 1.0)).abs() < 1e-14);
    }

    #[test]
    fn lobatto_nodes_include_endpoints() {
        for n in 2..=10 {
            let x = gauss_lobatto_nodes(n);
            assert_eq!(x[0], 0.0);
            assert_eq!(x[n - 1], 1.0);
            for i in 1..n {
                assert!(x[i] > x[i - 1], "n={n} not sorted: {x:?}");
            }
        }
    }

    #[test]
    fn lobatto_3_point_is_midpoint() {
        let x = gauss_lobatto_nodes(3);
        assert!((x[1] - 0.5).abs() < 1e-14);
    }

    #[test]
    fn lobatto_4_point_known_values() {
        // Interior nodes at (1 ± 1/√5)/2 on [0,1].
        let x = gauss_lobatto_nodes(4);
        let a = (1.0 - 1.0 / 5.0f64.sqrt()) / 2.0;
        assert!((x[1] - a).abs() < 1e-12, "{:?}", x);
        assert!((x[2] - (1.0 - a)).abs() < 1e-12);
    }

    #[test]
    fn lobatto_symmetric() {
        for n in 2..=9 {
            let x = gauss_lobatto_nodes(n);
            for i in 0..n {
                assert!((x[i] + x[n - 1 - i] - 1.0).abs() < 1e-12, "n={n}");
            }
        }
    }

    #[test]
    fn tensor_rule_2d_volume_and_moments() {
        let rule = TensorRule::<2>::gauss(3);
        assert_eq!(rule.len(), 9);
        let vol: f64 = rule.weights.iter().sum();
        assert!((vol - 1.0).abs() < 1e-14);
        // ∫ x y^2 over unit square = 1/2 * 1/3.
        let m: f64 = rule
            .points
            .iter()
            .zip(&rule.weights)
            .map(|(p, &w)| w * p[0] * p[1] * p[1])
            .sum();
        assert!((m - 1.0 / 6.0).abs() < 1e-14);
    }

    #[test]
    fn tensor_rule_3d_axis0_fastest() {
        let rule = TensorRule::<3>::gauss(2);
        assert_eq!(rule.len(), 8);
        // Point 1 differs from point 0 only along axis 0.
        assert!(rule.points[1][0] > rule.points[0][0]);
        assert_eq!(rule.points[1][1], rule.points[0][1]);
        assert_eq!(rule.points[1][2], rule.points[0][2]);
        // ∫ xyz over unit cube = 1/8.
        let m: f64 = rule
            .points
            .iter()
            .zip(&rule.weights)
            .map(|(p, &w)| w * p[0] * p[1] * p[2])
            .sum();
        assert!((m - 0.125).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn zero_point_rule_panics() {
        gauss_legendre(0);
    }
}
