//! Tensor-product `Q_k` bases on `[0,1]^D` and their tabulations.
//!
//! The matrices the paper's kernels consume are tabulations of these bases:
//! `B_jk = φ̂_j(q̂_k)` (thermodynamic values at quadrature points, eq. 6) and
//! the gradient tables `∇̂ŵ_i(q̂_k)` entering `A_z` (eq. 5). Both are
//! *constant in time* — computed once here and reused every timestep, on
//! both the CPU and the simulated GPU (where they live in constant/texture
//! memory).

use blast_la::DMatrix;

use crate::basis1d::Basis1d;

/// Tensor-product basis: `Q_k` in `D` dimensions with `(k+1)^D` functions.
///
/// DOF ordering is lexicographic with axis 0 fastest, matching
/// [`crate::quadrature::TensorRule`].
#[derive(Clone, Debug)]
pub struct TensorBasis<const D: usize> {
    b1: Basis1d,
}

impl<const D: usize> TensorBasis<D> {
    /// Builds from a 1D basis used along every axis.
    pub fn new(b1: Basis1d) -> Self {
        Self { b1 }
    }

    /// Continuous kinematic basis of order `k`.
    pub fn h1(order: usize) -> Self {
        Self::new(Basis1d::h1(order))
    }

    /// Discontinuous thermodynamic basis of order `k`.
    pub fn l2(order: usize) -> Self {
        Self::new(Basis1d::l2(order))
    }

    /// 1D factor basis.
    pub fn basis_1d(&self) -> &Basis1d {
        &self.b1
    }

    /// Nodes per axis.
    pub fn nodes_per_axis(&self) -> usize {
        self.b1.len()
    }

    /// Total number of scalar basis functions `(k+1)^D`.
    pub fn ndof(&self) -> usize {
        self.b1.len().pow(D as u32)
    }

    /// Decomposes a flat DOF index into per-axis indices (axis 0 fastest).
    #[inline]
    pub fn dof_multi_index(&self, mut flat: usize) -> [usize; D] {
        let n = self.b1.len();
        let mut idx = [0usize; D];
        for d in 0..D {
            idx[d] = flat % n;
            flat /= n;
        }
        idx
    }

    /// Reference coordinates of the interpolation node of DOF `j`.
    pub fn node(&self, j: usize) -> [f64; D] {
        let mi = self.dof_multi_index(j);
        let mut p = [0.0; D];
        for d in 0..D {
            p[d] = self.b1.nodes()[mi[d]];
        }
        p
    }

    /// Evaluates all basis values at reference point `x` into `out`
    /// (length `ndof`).
    pub fn eval_all(&self, x: &[f64; D], out: &mut [f64]) {
        let n = self.b1.len();
        debug_assert_eq!(out.len(), self.ndof());
        // Per-axis 1D values.
        let mut vals = [[0.0f64; 16]; D]; // supports order <= 15
        assert!(n <= 16, "basis order too high for the stack buffer");
        for d in 0..D {
            self.b1.eval_all(x[d], &mut vals[d][..n]);
        }
        for (flat, o) in out.iter_mut().enumerate() {
            let mut rem = flat;
            let mut v = 1.0;
            for d in 0..D {
                v *= vals[d][rem % n];
                rem /= n;
            }
            *o = v;
        }
    }

    /// Evaluates all reference-space gradients at `x`.
    ///
    /// `out[d]` receives the `d`-component of each basis gradient; every
    /// slice has length `ndof`.
    pub fn eval_grad_all(&self, x: &[f64; D], out: &mut [Vec<f64>; D]) {
        let n = self.b1.len();
        let mut vals = [[0.0f64; 16]; D];
        let mut ders = [[0.0f64; 16]; D];
        assert!(n <= 16, "basis order too high for the stack buffer");
        for d in 0..D {
            self.b1.eval_all(x[d], &mut vals[d][..n]);
            self.b1.eval_deriv_all(x[d], &mut ders[d][..n]);
        }
        for g in 0..D {
            let slot = &mut out[g];
            debug_assert_eq!(slot.len(), self.ndof());
            for (flat, o) in slot.iter_mut().enumerate() {
                let mut rem = flat;
                let mut v = 1.0;
                for d in 0..D {
                    let i = rem % n;
                    rem /= n;
                    v *= if d == g { ders[d][i] } else { vals[d][i] };
                }
                *o = v;
            }
        }
    }

    /// Tabulates values and gradients at a list of points.
    pub fn tabulate(&self, points: &[[f64; D]]) -> BasisTable<D> {
        let ndof = self.ndof();
        let npts = points.len();
        let mut values = DMatrix::zeros(ndof, npts);
        let mut grads = std::array::from_fn(|_| DMatrix::zeros(ndof, npts));
        let mut vbuf = vec![0.0; ndof];
        let mut gbuf: [Vec<f64>; D] = std::array::from_fn(|_| vec![0.0; ndof]);
        for (k, p) in points.iter().enumerate() {
            self.eval_all(p, &mut vbuf);
            values.col_mut(k).copy_from_slice(&vbuf);
            self.eval_grad_all(p, &mut gbuf);
            for d in 0..D {
                let g: &mut DMatrix = &mut grads[d];
                g.col_mut(k).copy_from_slice(&gbuf[d]);
            }
        }
        BasisTable { values, grads }
    }
}

/// Tabulated basis values and gradients at a fixed point set.
///
/// `values` is exactly the paper's matrix `B` (eq. 6) when the basis is the
/// thermodynamic one and the points are the quadrature rule: dimension
/// "number of basis functions by number of quadrature points".
#[derive(Clone, Debug)]
pub struct BasisTable<const D: usize> {
    /// `values[(j, k)] = φ̂_j(q̂_k)`, shape `ndof x npts`.
    pub values: DMatrix,
    /// `grads[d][(j, k)] = ∂_d ŵ_j(q̂_k)`, each `ndof x npts`.
    pub grads: [DMatrix; D],
}

impl<const D: usize> BasisTable<D> {
    /// Number of basis functions.
    pub fn ndof(&self) -> usize {
        self.values.rows()
    }

    /// Number of tabulation points.
    pub fn npts(&self) -> usize {
        self.values.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::TensorRule;

    #[test]
    fn ndof_counts() {
        assert_eq!(TensorBasis::<2>::h1(2).ndof(), 9);
        assert_eq!(TensorBasis::<3>::h1(2).ndof(), 27);
        assert_eq!(TensorBasis::<3>::h1(4).ndof(), 125);
        assert_eq!(TensorBasis::<3>::l2(1).ndof(), 8);
        assert_eq!(TensorBasis::<3>::l2(3).ndof(), 64);
    }

    #[test]
    fn paper_operand_shapes_q2q1_3d() {
        // Q2 kinematic in 3D: 27 scalar => 81 vector DOFs; thermodynamic Q1:
        // 8 DOFs; rule 4^3 = 64 points. "ŵ_i(q̂_k) is 81 x 64 for Q2-Q1".
        let kin = TensorBasis::<3>::h1(2);
        let thermo = TensorBasis::<3>::l2(1);
        let rule = TensorRule::<3>::gauss(crate::quad_points_1d(2));
        assert_eq!(3 * kin.ndof(), 81);
        assert_eq!(thermo.ndof(), 8);
        assert_eq!(rule.len(), 64);
        let b = thermo.tabulate(&rule.points);
        assert_eq!((b.ndof(), b.npts()), (8, 64));
    }

    #[test]
    fn partition_of_unity_2d() {
        let basis = TensorBasis::<2>::h1(3);
        let mut buf = vec![0.0; basis.ndof()];
        for &p in &[[0.1, 0.9], [0.5, 0.5], [0.0, 1.0]] {
            basis.eval_all(&p, &mut buf);
            let s: f64 = buf.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kronecker_property_at_nodes_3d() {
        let basis = TensorBasis::<3>::h1(2);
        let mut buf = vec![0.0; basis.ndof()];
        for j in 0..basis.ndof() {
            basis.eval_all(&basis.node(j), &mut buf);
            for (i, &v) in buf.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-12, "node {j} fn {i}: {v}");
            }
        }
    }

    #[test]
    fn gradient_matches_finite_difference_2d() {
        let basis = TensorBasis::<2>::h1(3);
        let ndof = basis.ndof();
        let p = [0.37, 0.68];
        let h = 1e-6;
        let mut g: [Vec<f64>; 2] = [vec![0.0; ndof], vec![0.0; ndof]];
        basis.eval_grad_all(&p, &mut g);
        let mut vp = vec![0.0; ndof];
        let mut vm = vec![0.0; ndof];
        for d in 0..2 {
            let mut pp = p;
            let mut pm = p;
            pp[d] += h;
            pm[d] -= h;
            basis.eval_all(&pp, &mut vp);
            basis.eval_all(&pm, &mut vm);
            for j in 0..ndof {
                let fd = (vp[j] - vm[j]) / (2.0 * h);
                assert!(
                    (fd - g[d][j]).abs() < 1e-5 * g[d][j].abs().max(1.0),
                    "d={d} j={j}: fd {fd} vs {}",
                    g[d][j]
                );
            }
        }
    }

    #[test]
    fn gradient_sums_to_zero() {
        // Gradient of the constant interpolant vanishes.
        let basis = TensorBasis::<3>::h1(2);
        let ndof = basis.ndof();
        let mut g: [Vec<f64>; 3] = std::array::from_fn(|_| vec![0.0; ndof]);
        basis.eval_grad_all(&[0.3, 0.7, 0.2], &mut g);
        for d in 0..3 {
            let s: f64 = g[d].iter().sum();
            assert!(s.abs() < 1e-10, "axis {d}: {s}");
        }
    }

    #[test]
    fn linear_reproduction_2d() {
        // Q1 basis reproduces x and y exactly.
        let basis = TensorBasis::<2>::h1(1);
        let p = [0.3, 0.8];
        let mut vals = vec![0.0; basis.ndof()];
        basis.eval_all(&p, &mut vals);
        for axis in 0..2 {
            let interp: f64 = (0..basis.ndof())
                .map(|j| basis.node(j)[axis] * vals[j])
                .sum();
            assert!((interp - p[axis]).abs() < 1e-14);
        }
    }

    #[test]
    fn tabulation_matches_pointwise_eval() {
        let basis = TensorBasis::<2>::l2(2);
        let rule = TensorRule::<2>::gauss(4);
        let table = basis.tabulate(&rule.points);
        assert_eq!(table.ndof(), 9);
        assert_eq!(table.npts(), 16);
        let mut buf = vec![0.0; 9];
        for (k, p) in rule.points.iter().enumerate() {
            basis.eval_all(p, &mut buf);
            for j in 0..9 {
                assert_eq!(table.values[(j, k)], buf[j]);
            }
        }
    }

    #[test]
    fn dof_multi_index_roundtrip() {
        let basis = TensorBasis::<3>::h1(2); // 3 nodes/axis
        let mi = basis.dof_multi_index(26);
        assert_eq!(mi, [2, 2, 2]);
        let mi0 = basis.dof_multi_index(5); // 5 = 2 + 1*3
        assert_eq!(mi0, [2, 1, 0]);
    }
}
