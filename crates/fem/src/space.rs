//! Finite element spaces: continuous H1 (kinematic) and discontinuous L2
//! (thermodynamic) scalar spaces on a Cartesian mesh.
//!
//! The kinematic space carries velocity and positions (vector fields, one H1
//! scalar space per component); the thermodynamic space carries the specific
//! internal energy. The H1 space has *shared* DOFs across zone faces — the
//! reason `M_V` is global/sparse and needs communication in the MPI version
//! (Fig. 10) — while L2 DOFs are zone-local, making `M_E` block diagonal.

use crate::mesh::CartMesh;
use crate::tensor_basis::TensorBasis;

/// Continuous `Q_k` scalar space on a structured mesh.
///
/// Global DOFs form a Gauss-Lobatto lattice: along each axis there are
/// `k * zones + 1` nodes (zone-interface nodes are shared). DOF coordinates
/// are non-uniform inside each zone (Lobatto spacing).
#[derive(Clone, Debug)]
pub struct H1Space<const D: usize> {
    mesh: CartMesh<D>,
    order: usize,
    basis: TensorBasis<D>,
    nodes_per_axis: [usize; D],
    /// Flattened zone -> global DOF map, `ndof_per_zone` entries per zone.
    zone_dofs: Vec<usize>,
}

impl<const D: usize> H1Space<D> {
    /// Builds the order-`k` continuous space on `mesh`.
    pub fn new(mesh: CartMesh<D>, order: usize) -> Self {
        assert!(order >= 1, "H1 space needs order >= 1");
        let basis = TensorBasis::<D>::h1(order);
        let zpa = mesh.zones_per_axis();
        let mut nodes_per_axis = [0usize; D];
        for d in 0..D {
            nodes_per_axis[d] = order * zpa[d] + 1;
        }
        let ndof_zone = basis.ndof();
        let nz = mesh.num_zones();
        let mut zone_dofs = Vec::with_capacity(nz * ndof_zone);
        for z in 0..nz {
            let mi = mesh.zone_multi_index(z);
            for l in 0..ndof_zone {
                let li = basis.dof_multi_index(l);
                // Global lattice coordinates of this local node.
                let mut flat = 0usize;
                for d in (0..D).rev() {
                    let g = mi[d] * order + li[d];
                    flat = flat * nodes_per_axis[d] + g;
                }
                zone_dofs.push(flat);
            }
        }
        Self { mesh, order, basis, nodes_per_axis, zone_dofs }
    }

    /// The mesh.
    pub fn mesh(&self) -> &CartMesh<D> {
        &self.mesh
    }

    /// Polynomial order `k`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The tensor-product basis.
    pub fn basis(&self) -> &TensorBasis<D> {
        &self.basis
    }

    /// Scalar DOFs per zone, `(k+1)^D`.
    pub fn ndof_per_zone(&self) -> usize {
        self.basis.ndof()
    }

    /// Total scalar DOFs.
    pub fn num_dofs(&self) -> usize {
        self.nodes_per_axis.iter().product()
    }

    /// Global lattice extents.
    pub fn nodes_per_axis(&self) -> [usize; D] {
        self.nodes_per_axis
    }

    /// Global DOF indices of zone `z` (local ordering = basis ordering).
    pub fn zone_dofs(&self, z: usize) -> &[usize] {
        let n = self.ndof_per_zone();
        &self.zone_dofs[z * n..(z + 1) * n]
    }

    /// Multi-index of a global DOF on the lattice.
    pub fn dof_multi_index(&self, mut flat: usize) -> [usize; D] {
        let mut mi = [0usize; D];
        for d in 0..D {
            mi[d] = flat % self.nodes_per_axis[d];
            flat /= self.nodes_per_axis[d];
        }
        mi
    }

    /// Initial (t = 0) coordinates of every global DOF, component-major:
    /// `out[c * num_dofs + i]` is component `c` of node `i`.
    ///
    /// This vector *is* the initial `x` unknown of the motion equation
    /// `dx/dt = v`.
    pub fn initial_coords(&self) -> Vec<f64> {
        let n = self.num_dofs();
        let h = self.mesh.zone_size();
        let dmin = self.mesh.domain_min();
        let lob = self.basis.basis_1d().nodes();
        let k = self.order;
        let mut out = vec![0.0; D * n];
        for i in 0..n {
            let mi = self.dof_multi_index(i);
            for d in 0..D {
                let zone = (mi[d] / k).min(self.mesh.zones_per_axis()[d] - 1);
                let local = mi[d] - zone * k;
                out[d * n + i] = dmin[d] + h[d] * (zone as f64 + lob[local]);
            }
        }
        out
    }

    /// Global DOFs lying on the `axis`-min or `axis`-max boundary face.
    ///
    /// These are the DOFs whose `axis` velocity component is constrained to
    /// zero by the reflecting-wall boundary conditions of the Sedov and
    /// triple-point problems.
    pub fn boundary_dofs(&self, axis: usize) -> Vec<usize> {
        assert!(axis < D);
        let last = self.nodes_per_axis[axis] - 1;
        (0..self.num_dofs())
            .filter(|&i| {
                let mi = self.dof_multi_index(i);
                mi[axis] == 0 || mi[axis] == last
            })
            .collect()
    }
}

/// Discontinuous `Q_k` scalar space: DOFs are zone-local.
#[derive(Clone, Debug)]
pub struct L2Space<const D: usize> {
    mesh: CartMesh<D>,
    order: usize,
    basis: TensorBasis<D>,
}

impl<const D: usize> L2Space<D> {
    /// Builds the order-`k` discontinuous space on `mesh` (`k >= 0`).
    pub fn new(mesh: CartMesh<D>, order: usize) -> Self {
        let basis = TensorBasis::<D>::l2(order);
        Self { mesh, order, basis }
    }

    /// The mesh.
    pub fn mesh(&self) -> &CartMesh<D> {
        &self.mesh
    }

    /// Polynomial order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The tensor-product basis.
    pub fn basis(&self) -> &TensorBasis<D> {
        &self.basis
    }

    /// DOFs per zone, `(k+1)^D`.
    pub fn ndof_per_zone(&self) -> usize {
        self.basis.ndof()
    }

    /// Total DOFs (`zones * ndof_per_zone`).
    pub fn num_dofs(&self) -> usize {
        self.mesh.num_zones() * self.ndof_per_zone()
    }

    /// Global index of local DOF `l` in zone `z`.
    #[inline]
    pub fn zone_dof(&self, z: usize, l: usize) -> usize {
        z * self.ndof_per_zone() + l
    }

    /// Global DOF range of zone `z`.
    pub fn zone_range(&self, z: usize) -> std::ops::Range<usize> {
        let n = self.ndof_per_zone();
        z * n..(z + 1) * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h1_dof_counts_2d() {
        // 2 x 2 zones at Q2: lattice (2*2+1)^2 = 25 shared DOFs.
        let s = H1Space::<2>::new(CartMesh::unit(2), 2);
        assert_eq!(s.num_dofs(), 25);
        assert_eq!(s.ndof_per_zone(), 9);
    }

    #[test]
    fn h1_shared_face_dofs() {
        let s = H1Space::<2>::new(CartMesh::unit(2), 1);
        // Zones 0 (at [0,0]) and 1 (at [1,0]) share the x = 0.5 edge: the
        // right edge of zone 0 equals the left edge of zone 1.
        let d0 = s.zone_dofs(0);
        let d1 = s.zone_dofs(1);
        // Q1 local ordering: axis0 fastest -> local 1 and 3 are the right
        // edge of zone 0; local 0 and 2 the left edge of zone 1.
        assert_eq!(d0[1], d1[0]);
        assert_eq!(d0[3], d1[2]);
    }

    #[test]
    fn h1_all_zone_dofs_in_range() {
        let s = H1Space::<3>::new(CartMesh::unit(3), 2);
        for z in 0..s.mesh().num_zones() {
            for &d in s.zone_dofs(z) {
                assert!(d < s.num_dofs());
            }
        }
    }

    #[test]
    fn h1_every_dof_touched() {
        let s = H1Space::<2>::new(CartMesh::unit(3), 3);
        let mut seen = vec![false; s.num_dofs()];
        for z in 0..s.mesh().num_zones() {
            for &d in s.zone_dofs(z) {
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn initial_coords_corners() {
        let s = H1Space::<2>::new(CartMesh::new([2, 2], [0.0, 0.0], [2.0, 4.0]), 2);
        let n = s.num_dofs();
        let x = s.initial_coords();
        // DOF 0 is the domain lower corner; last DOF the upper corner.
        assert_eq!((x[0], x[n]), (0.0, 0.0));
        assert_eq!((x[n - 1], x[2 * n - 1]), (2.0, 4.0));
    }

    #[test]
    fn initial_coords_interior_nodes_are_lobatto() {
        // One zone, Q2 in 1D-like check along axis 0: midpoint node at 0.5
        // (3-point Lobatto has midpoint).
        let s = H1Space::<2>::new(CartMesh::unit(1), 2);
        let x = s.initial_coords();
        let n = s.num_dofs();
        // Lattice is 3x3, node (1, 0) has x-coordinate 0.5.
        assert!((x[1] - 0.5).abs() < 1e-14);
        let _ = n;
    }

    #[test]
    fn initial_coords_match_zone_node_positions() {
        // The coordinates of a zone's DOFs must equal the reference-node
        // positions mapped by the affine initial zone mapping.
        let s = H1Space::<3>::new(CartMesh::new([2, 1, 1], [0.0; 3], [2.0, 1.0, 1.0]), 3);
        let coords = s.initial_coords();
        let n = s.num_dofs();
        for z in 0..2 {
            let mi = s.mesh().zone_multi_index(z);
            let origin = s.mesh().zone_origin(mi);
            let h = s.mesh().zone_size();
            for (l, &g) in s.zone_dofs(z).iter().enumerate() {
                let rf = s.basis().node(l);
                for d in 0..3 {
                    let expect = origin[d] + h[d] * rf[d];
                    let got = coords[d * n + g];
                    assert!((got - expect).abs() < 1e-13, "z={z} l={l} d={d}");
                }
            }
        }
    }

    #[test]
    fn boundary_dofs_axis_faces() {
        let s = H1Space::<2>::new(CartMesh::unit(2), 1);
        // 3x3 lattice: axis-0 boundary = left+right columns = 6 DOFs.
        let b0 = s.boundary_dofs(0);
        assert_eq!(b0.len(), 6);
        let b1 = s.boundary_dofs(1);
        assert_eq!(b1.len(), 6);
        // Corners belong to both.
        assert!(b0.contains(&0) && b1.contains(&0));
    }

    #[test]
    fn l2_zone_local_numbering() {
        let s = L2Space::<3>::new(CartMesh::unit(2), 1);
        assert_eq!(s.ndof_per_zone(), 8);
        assert_eq!(s.num_dofs(), 64);
        assert_eq!(s.zone_dof(3, 5), 29);
        assert_eq!(s.zone_range(2), 16..24);
    }

    #[test]
    fn l2_order_zero() {
        let s = L2Space::<2>::new(CartMesh::unit(4), 0);
        assert_eq!(s.ndof_per_zone(), 1);
        assert_eq!(s.num_dofs(), 16);
    }

    #[test]
    fn paper_dof_counts_q4q3_3d() {
        // "375 x 512 for Q4-Q3 finite elements in 3D": 5^3 * 3 = 375 vector
        // kinematic DOFs per zone; thermodynamic 4^3 = 64 per zone.
        let mesh = CartMesh::<3>::unit(2);
        let kin = H1Space::new(mesh.clone(), 4);
        let thermo = L2Space::new(mesh, 3);
        assert_eq!(3 * kin.ndof_per_zone(), 375);
        assert_eq!(thermo.ndof_per_zone(), 64);
    }
}
