//! Geometric factors: zone Jacobians and field evaluation at quadrature
//! points.
//!
//! Finite element zones are images of the reference zone under the
//! parametric mapping `Φ_z` whose coefficients are the H1 position DOFs.
//! The Jacobian `J_z = ∇̂Φ_z` varies inside each zone and must be
//! re-evaluated at every quadrature point every time step — this is what the
//! paper's kernel 3 computes (`J_z(q̂_k)` as a batched DGEMM of position
//! coefficients against the gradient table).

use blast_la::SmallMat;

use crate::space::{H1Space, L2Space};
use crate::tensor_basis::BasisTable;

/// Jacobian data of one zone at one quadrature point.
#[derive(Clone, Copy, Debug)]
pub struct GeomAtPoint<const D: usize> {
    /// Jacobian `J_z(q̂)` (columns: derivatives w.r.t. reference axes).
    pub jac: SmallMat<D>,
    /// `det J_z(q̂)` — the local volume element `|J_z|`.
    pub det: f64,
}

/// Evaluates the Jacobian of zone `z` at every tabulated point.
///
/// `x` is the component-major global position vector (`D * num_dofs`);
/// `table` must be the kinematic basis tabulated at the desired points.
/// Results are appended to `out` (cleared first).
pub fn zone_jacobians<const D: usize>(
    space: &H1Space<D>,
    table: &BasisTable<D>,
    x: &[f64],
    z: usize,
    out: &mut Vec<GeomAtPoint<D>>,
) {
    let n = space.num_dofs();
    debug_assert_eq!(x.len(), D * n);
    let dofs = space.zone_dofs(z);
    let npts = table.npts();
    out.clear();
    out.reserve(npts);
    for k in 0..npts {
        let mut jac = SmallMat::<D>::zeros();
        for (i, &dof) in dofs.iter().enumerate() {
            for g in 0..D {
                let dw = table.grads[g][(i, k)];
                if dw != 0.0 {
                    for d in 0..D {
                        jac[(d, g)] += x[d * n + dof] * dw;
                    }
                }
            }
        }
        out.push(GeomAtPoint { jac, det: jac_det(&jac) });
    }
}

/// Determinant of a `D x D` matrix for `D` in {2, 3} (generic dispatch so
/// callers stay generic over the spatial dimension).
#[inline]
pub fn jac_det<const D: usize>(j: &SmallMat<D>) -> f64 {
    match D {
        2 => j[(0, 0)] * j[(1, 1)] - j[(0, 1)] * j[(1, 0)],
        3 => {
            j[(0, 0)] * (j[(1, 1)] * j[(2, 2)] - j[(1, 2)] * j[(2, 1)])
                - j[(0, 1)] * (j[(1, 0)] * j[(2, 2)] - j[(1, 2)] * j[(2, 0)])
                + j[(0, 2)] * (j[(1, 0)] * j[(2, 1)] - j[(1, 1)] * j[(2, 0)])
        }
        _ => unreachable!("only 2D and 3D are supported"),
    }
}

/// Adjugate of a `D x D` matrix for `D` in {2, 3}: `J adj(J) = det(J) I`.
#[inline]
pub fn jac_adjugate<const D: usize>(j: &SmallMat<D>) -> SmallMat<D> {
    match D {
        2 => SmallMat::from_fn(|i, k| match (i, k) {
            (0, 0) => j[(1, 1)],
            (0, 1) => -j[(0, 1)],
            (1, 0) => -j[(1, 0)],
            _ => j[(0, 0)],
        }),
        3 => SmallMat::from_fn(|i, k| {
            // adj(J)_ik = cofactor C_ki with cyclic-index minors (the cyclic
            // ordering absorbs the checkerboard sign).
            let r = [(k + 1) % 3, (k + 2) % 3];
            let c = [(i + 1) % 3, (i + 2) % 3];
            j[(r[0], c[0])] * j[(r[1], c[1])] - j[(r[0], c[1])] * j[(r[1], c[0])]
        }),
        _ => unreachable!("only 2D and 3D are supported"),
    }
}

/// Evaluates an H1 *vector* field (component-major coefficients `u`) at the
/// tabulated points of zone `z`: `out[k]` receives the field value.
pub fn eval_h1_vector<const D: usize>(
    space: &H1Space<D>,
    table: &BasisTable<D>,
    u: &[f64],
    z: usize,
    out: &mut Vec<[f64; D]>,
) {
    let n = space.num_dofs();
    let dofs = space.zone_dofs(z);
    let npts = table.npts();
    out.clear();
    out.resize(npts, [0.0; D]);
    for k in 0..npts {
        let o = &mut out[k];
        for (i, &dof) in dofs.iter().enumerate() {
            let w = table.values[(i, k)];
            if w != 0.0 {
                for d in 0..D {
                    o[d] += u[d * n + dof] * w;
                }
            }
        }
    }
}

/// Evaluates the *reference-space* gradient of an H1 vector field at the
/// tabulated points of zone `z`: `out[k][(d, g)] = ∂ u_d / ∂ x̂_g`.
///
/// The spatial gradient is `∇u = (∇̂u) J^{-1}`, assembled by the caller with
/// the adjugate/determinant from [`zone_jacobians`] — this split mirrors the
/// paper's kernel 3 (`∇̂v̂(q̂_k)`, batched) followed by the small-matrix
/// multiplies of kernels 5/6.
pub fn eval_h1_vector_ref_grad<const D: usize>(
    space: &H1Space<D>,
    table: &BasisTable<D>,
    u: &[f64],
    z: usize,
    out: &mut Vec<SmallMat<D>>,
) {
    let n = space.num_dofs();
    let dofs = space.zone_dofs(z);
    let npts = table.npts();
    out.clear();
    out.resize(npts, SmallMat::zeros());
    for k in 0..npts {
        let o = &mut out[k];
        for (i, &dof) in dofs.iter().enumerate() {
            for g in 0..D {
                let dw = table.grads[g][(i, k)];
                if dw != 0.0 {
                    for d in 0..D {
                        o[(d, g)] += u[d * n + dof] * dw;
                    }
                }
            }
        }
    }
}

/// Evaluates an L2 scalar field at the tabulated points of zone `z`.
pub fn eval_l2_scalar<const D: usize>(
    space: &L2Space<D>,
    table: &BasisTable<D>,
    e: &[f64],
    z: usize,
    out: &mut Vec<f64>,
) {
    let range = space.zone_range(z);
    let coeffs = &e[range];
    let npts = table.npts();
    out.clear();
    out.resize(npts, 0.0);
    for k in 0..npts {
        let mut acc = 0.0;
        for (l, &c) in coeffs.iter().enumerate() {
            acc += c * table.values[(l, k)];
        }
        out[k] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::CartMesh;
    use crate::quadrature::TensorRule;

    #[test]
    fn affine_mesh_jacobian_is_diagonal_zone_size() {
        // Initial Cartesian mesh: J = diag(h) everywhere, det = prod(h).
        let mesh = CartMesh::<2>::new([2, 3], [0.0, 0.0], [2.0, 3.0]);
        let space = H1Space::new(mesh, 2);
        let rule = TensorRule::<2>::gauss(4);
        let table = space.basis().tabulate(&rule.points);
        let x = space.initial_coords();
        let mut geom = Vec::new();
        for z in 0..space.mesh().num_zones() {
            zone_jacobians(&space, &table, &x, z, &mut geom);
            for g in &geom {
                assert!((g.jac[(0, 0)] - 1.0).abs() < 1e-12);
                assert!((g.jac[(1, 1)] - 1.0).abs() < 1e-12);
                assert!(g.jac[(0, 1)].abs() < 1e-12);
                assert!(g.jac[(1, 0)].abs() < 1e-12);
                assert!((g.det - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn jacobian_det_sums_to_volume() {
        // sum_k alpha_k |J(q_k)| = zone volume, summed over zones = domain.
        let mesh = CartMesh::<3>::new([2, 2, 2], [0.0; 3], [1.0, 2.0, 0.5]);
        let space = H1Space::new(mesh, 2);
        let rule = TensorRule::<3>::gauss(3);
        let table = space.basis().tabulate(&rule.points);
        let x = space.initial_coords();
        let mut geom = Vec::new();
        let mut vol = 0.0;
        for z in 0..space.mesh().num_zones() {
            zone_jacobians(&space, &table, &x, z, &mut geom);
            for (g, &w) in geom.iter().zip(&rule.weights) {
                vol += w * g.det;
            }
        }
        assert!((vol - 1.0).abs() < 1e-12, "volume {vol}");
    }

    #[test]
    fn distorted_mesh_jacobian_matches_analytic() {
        // Map x -> (x, y + 0.1 x): J = [[1, 0], [0.1, 1]] after scaling.
        let mesh = CartMesh::<2>::unit(1);
        let space = H1Space::new(mesh, 1);
        let n = space.num_dofs();
        let mut x = space.initial_coords();
        for i in 0..n {
            let xi = x[i];
            x[n + i] += 0.1 * xi;
        }
        let rule = TensorRule::<2>::gauss(2);
        let table = space.basis().tabulate(&rule.points);
        let mut geom = Vec::new();
        zone_jacobians(&space, &table, &x, 0, &mut geom);
        for g in &geom {
            assert!((g.jac[(0, 0)] - 1.0).abs() < 1e-13);
            assert!((g.jac[(1, 0)] - 0.1).abs() < 1e-13);
            assert!(g.jac[(0, 1)].abs() < 1e-13);
            assert!((g.jac[(1, 1)] - 1.0).abs() < 1e-13);
            assert!((g.det - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn h1_vector_eval_reproduces_linear_field() {
        let mesh = CartMesh::<2>::unit(2);
        let space = H1Space::new(mesh, 3);
        let n = space.num_dofs();
        let coords = space.initial_coords();
        // u = (2x + y, -x): linear, exactly representable.
        let mut u = vec![0.0; 2 * n];
        for i in 0..n {
            let (xi, yi) = (coords[i], coords[n + i]);
            u[i] = 2.0 * xi + yi;
            u[n + i] = -xi;
        }
        let rule = TensorRule::<2>::gauss(3);
        let table = space.basis().tabulate(&rule.points);
        let mut vals = Vec::new();
        let mut pos = Vec::new();
        for z in 0..space.mesh().num_zones() {
            eval_h1_vector(&space, &table, &u, z, &mut vals);
            eval_h1_vector(&space, &table, &coords, z, &mut pos);
            for (v, p) in vals.iter().zip(&pos) {
                assert!((v[0] - (2.0 * p[0] + p[1])).abs() < 1e-12);
                assert!((v[1] + p[0]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ref_grad_of_position_equals_jacobian() {
        let mesh = CartMesh::<3>::unit(2);
        let space = H1Space::new(mesh, 2);
        let x = space.initial_coords();
        let rule = TensorRule::<3>::gauss(2);
        let table = space.basis().tabulate(&rule.points);
        let mut grads = Vec::new();
        let mut geom = Vec::new();
        for z in 0..space.mesh().num_zones() {
            eval_h1_vector_ref_grad(&space, &table, &x, z, &mut grads);
            zone_jacobians(&space, &table, &x, z, &mut geom);
            for (g, j) in grads.iter().zip(&geom) {
                for a in 0..3 {
                    for b in 0..3 {
                        assert!((g[(a, b)] - j.jac[(a, b)]).abs() < 1e-13);
                    }
                }
            }
        }
    }

    #[test]
    fn l2_eval_reproduces_polynomial() {
        let mesh = CartMesh::<2>::unit(1);
        let space = L2Space::new(mesh, 2);
        let basis = space.basis().clone();
        // Coefficients interpolating f(x, y) = x^2 y at the L2 nodes.
        let mut e = vec![0.0; space.num_dofs()];
        for l in 0..space.ndof_per_zone() {
            let p = basis.node(l);
            e[l] = p[0] * p[0] * p[1];
        }
        let rule = TensorRule::<2>::gauss(4);
        let table = basis.tabulate(&rule.points);
        let mut vals = Vec::new();
        eval_l2_scalar(&space, &table, &e, 0, &mut vals);
        for (k, p) in rule.points.iter().enumerate() {
            assert!((vals[k] - p[0] * p[0] * p[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn adjugate_dispatch_2d_3d() {
        let j2 = SmallMat::<2>::from_fn(|i, j| [[2.0, 1.0], [0.5, 3.0]][i][j]);
        let a2 = jac_adjugate(&j2);
        let p = j2 * a2;
        assert!((p[(0, 0)] - jac_det(&j2)).abs() < 1e-13);
        assert!(p[(0, 1)].abs() < 1e-13);

        let j3 = SmallMat::<3>::from_fn(|i, j| {
            [[1.0, 0.2, 0.0], [0.0, 2.0, 0.1], [0.3, 0.0, 1.5]][i][j]
        });
        let a3 = jac_adjugate(&j3);
        let p3 = j3 * a3;
        for i in 0..3 {
            assert!((p3[(i, i)] - jac_det(&j3)).abs() < 1e-12);
        }
    }
}
