//! Structured Cartesian meshes of quadrilaterals (2D) / hexahedra (3D).
//!
//! BLAST supports unstructured curvilinear meshes; the paper's benchmarks
//! (Sedov, triple-point) all run on box domains meshed with structured
//! quads/hexes, which is what we implement. *Curvilinearity is still fully
//! present*: the zone geometry is carried by the high-order H1 kinematic
//! space (positions are FE functions), so zones deform into curved shapes as
//! the Lagrangian mesh moves — only the initial mesh and its connectivity
//! are Cartesian.

/// A structured `D`-dimensional Cartesian mesh of a box domain.
#[derive(Clone, Debug)]
pub struct CartMesh<const D: usize> {
    zones_per_axis: [usize; D],
    domain_min: [f64; D],
    domain_max: [f64; D],
}

impl<const D: usize> CartMesh<D> {
    /// Meshes `[min, max]` with `zones_per_axis[d]` zones along axis `d`.
    pub fn new(zones_per_axis: [usize; D], domain_min: [f64; D], domain_max: [f64; D]) -> Self {
        for d in 0..D {
            assert!(zones_per_axis[d] >= 1, "axis {d} needs >= 1 zone");
            assert!(domain_max[d] > domain_min[d], "axis {d} has empty extent");
        }
        Self { zones_per_axis, domain_min, domain_max }
    }

    /// Meshes the unit box `[0,1]^D` with `n` zones per axis.
    pub fn unit(n: usize) -> Self {
        Self::new([n; D], [0.0; D], [1.0; D])
    }

    /// Zones along each axis.
    pub fn zones_per_axis(&self) -> [usize; D] {
        self.zones_per_axis
    }

    /// Lower domain corner.
    pub fn domain_min(&self) -> [f64; D] {
        self.domain_min
    }

    /// Upper domain corner.
    pub fn domain_max(&self) -> [f64; D] {
        self.domain_max
    }

    /// Total zone count.
    pub fn num_zones(&self) -> usize {
        self.zones_per_axis.iter().product()
    }

    /// Zone size along each axis (uniform initial spacing).
    pub fn zone_size(&self) -> [f64; D] {
        let mut h = [0.0; D];
        for d in 0..D {
            h[d] = (self.domain_max[d] - self.domain_min[d]) / self.zones_per_axis[d] as f64;
        }
        h
    }

    /// Converts a zone multi-index to its linear index (axis 0 fastest).
    pub fn zone_index(&self, mi: [usize; D]) -> usize {
        let mut flat = 0;
        for d in (0..D).rev() {
            debug_assert!(mi[d] < self.zones_per_axis[d]);
            flat = flat * self.zones_per_axis[d] + mi[d];
        }
        flat
    }

    /// Converts a linear zone index to its multi-index.
    pub fn zone_multi_index(&self, mut flat: usize) -> [usize; D] {
        let mut mi = [0usize; D];
        for d in 0..D {
            mi[d] = flat % self.zones_per_axis[d];
            flat /= self.zones_per_axis[d];
        }
        mi
    }

    /// Lower corner coordinates of zone `mi` in the *initial* configuration.
    pub fn zone_origin(&self, mi: [usize; D]) -> [f64; D] {
        let h = self.zone_size();
        let mut o = [0.0; D];
        for d in 0..D {
            o[d] = self.domain_min[d] + mi[d] as f64 * h[d];
        }
        o
    }

    /// Uniformly refines: doubles the zone count along every axis (the
    /// h-refinement used by the weak-scaling study, where "one refinement
    /// level will make the domain size 8x bigger" in 3D).
    pub fn refine(&self) -> Self {
        let mut z = self.zones_per_axis;
        z.iter_mut().for_each(|n| *n *= 2);
        Self { zones_per_axis: z, domain_min: self.domain_min, domain_max: self.domain_max }
    }

    /// Centroid of zone `mi` in the initial configuration.
    pub fn zone_center(&self, flat: usize) -> [f64; D] {
        let mi = self.zone_multi_index(flat);
        let h = self.zone_size();
        let o = self.zone_origin(mi);
        let mut c = [0.0; D];
        for d in 0..D {
            c[d] = o[d] + 0.5 * h[d];
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_counts() {
        let m = CartMesh::<3>::new([4, 5, 6], [0.0; 3], [1.0, 2.0, 3.0]);
        assert_eq!(m.num_zones(), 120);
        assert_eq!(m.zone_size(), [0.25, 0.4, 0.5]);
    }

    #[test]
    fn index_roundtrip() {
        let m = CartMesh::<3>::new([3, 4, 5], [0.0; 3], [1.0; 3]);
        for z in 0..m.num_zones() {
            assert_eq!(m.zone_index(m.zone_multi_index(z)), z);
        }
        // Axis 0 fastest.
        assert_eq!(m.zone_multi_index(1), [1, 0, 0]);
        assert_eq!(m.zone_multi_index(3), [0, 1, 0]);
        assert_eq!(m.zone_multi_index(12), [0, 0, 1]);
    }

    #[test]
    fn refine_doubles_each_axis() {
        let m = CartMesh::<3>::unit(16);
        let r = m.refine();
        assert_eq!(r.num_zones(), 8 * m.num_zones());
        // Weak scaling: one refinement = 8x the 3D domain.
    }

    #[test]
    fn zone_origin_and_center() {
        let m = CartMesh::<2>::new([2, 2], [0.0, 0.0], [2.0, 2.0]);
        assert_eq!(m.zone_origin([1, 0]), [1.0, 0.0]);
        assert_eq!(m.zone_center(m.zone_index([1, 1])), [1.5, 1.5]);
    }

    #[test]
    fn unit_mesh_2d() {
        let m = CartMesh::<2>::unit(8);
        assert_eq!(m.num_zones(), 64);
        assert_eq!(m.zone_size(), [0.125, 0.125]);
    }

    #[test]
    #[should_panic(expected = "empty extent")]
    fn inverted_domain_rejected() {
        CartMesh::<2>::new([2, 2], [0.0, 1.0], [1.0, 0.5]);
    }
}
