//! Property-based tests for the tuner and balancer.

use autotune::{AutoBalancer, Autotuner};
use proptest::prelude::*;

proptest! {
    #[test]
    fn tuner_always_picks_the_true_argmin(
        costs in proptest::collection::vec(1e-4..1e-1f64, 2..12),
        period in 1usize..10,
    ) {
        let ids: Vec<usize> = (0..costs.len()).collect();
        let mut tuner = Autotuner::new(ids, period);
        while !tuner.is_done() {
            let c = *tuner.current();
            tuner.record(costs[c]);
        }
        let best = *tuner.best().unwrap();
        let true_best = costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        prop_assert_eq!(best, true_best);
    }

    #[test]
    fn tuner_consumes_exactly_candidates_times_period(
        ncands in 2usize..8,
        period in 1usize..20,
    ) {
        let mut tuner = Autotuner::new((0..ncands).collect::<Vec<_>>(), period);
        let mut steps = 0;
        while !tuner.is_done() {
            let c = *tuner.current();
            tuner.record(1e-3 + c as f64 * 1e-4);
            steps += 1;
        }
        prop_assert_eq!(steps, ncands * period);
    }

    #[test]
    fn balancer_converges_to_the_equalizing_ratio(
        speed_ratio in 0.2..20.0f64,
        initial in 0.05..0.95f64,
    ) {
        let mut bal = AutoBalancer::new(initial);
        for _ in 0..200 {
            let r = bal.ratio();
            let gpu_t = (r / speed_ratio).max(1e-9);
            let cpu_t = (1.0 - r).max(1e-9);
            bal.record_period(gpu_t, cpu_t);
            if bal.is_converged() {
                break;
            }
        }
        prop_assert!(bal.is_converged(), "no convergence from {initial} at ratio {speed_ratio}");
        let expect = speed_ratio / (speed_ratio + 1.0);
        prop_assert!(
            (bal.ratio() - expect).abs() < 0.03,
            "ratio {} vs optimal {expect}",
            bal.ratio()
        );
    }

    #[test]
    fn balancer_split_is_total_and_proportional(
        ratio in 0.0..1.0f64,
        zones in 1usize..100_000,
    ) {
        let bal = AutoBalancer::new(ratio);
        let (g, c) = bal.split(zones);
        prop_assert_eq!(g + c, zones);
        let got = g as f64 / zones as f64;
        prop_assert!((got - ratio).abs() <= 0.5 / zones as f64 + 1e-12);
    }
}
