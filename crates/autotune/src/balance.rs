//! CPU/GPU auto-balance (§3.3, Table 5).
//!
//! "We use auto-balance to find the ratio between CPU and GPU to ensure
//! load balance. The idea ... is the same with autotuning. The scheduler
//! will compare their time to decide to move more or less work to each
//! processor. After a few sampling periods, the scheduler will converge to
//! an optimal ratio."
//!
//! The update rule estimates per-unit throughput of each side from the
//! measured period times and damps toward the equalizing ratio; damping
//! makes convergence robust to noise at the cost of a few extra periods —
//! Table 5 reports 12-14 periods on a Sedov / triple-point run.

/// The load-balancing scheduler for splitting zones between CPU and GPU.
#[derive(Clone, Debug)]
pub struct AutoBalancer {
    ratio: f64,
    damping: f64,
    tol: f64,
    stable_needed: usize,
    stable_count: usize,
    periods: usize,
    converged_at: Option<usize>,
}

impl AutoBalancer {
    /// Creates a balancer starting at `initial_ratio` (fraction of zones on
    /// the GPU).
    pub fn new(initial_ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&initial_ratio), "ratio out of [0,1]");
        Self {
            ratio: initial_ratio,
            damping: 0.5,
            tol: 5e-3,
            stable_needed: 3,
            stable_count: 0,
            periods: 0,
            converged_at: None,
        }
    }

    /// Current fraction of zones assigned to the GPU.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Whether the ratio has stabilized.
    pub fn is_converged(&self) -> bool {
        self.converged_at.is_some()
    }

    /// Period at which convergence was declared (Table 5's "convergence
    /// periods").
    pub fn convergence_periods(&self) -> Option<usize> {
        self.converged_at
    }

    /// Periods observed so far.
    pub fn periods(&self) -> usize {
        self.periods
    }

    /// Records one sampling period: the measured corner-force times of the
    /// GPU part (at the current ratio) and the CPU part (at `1 - ratio`).
    /// Returns the ratio to use next period.
    pub fn record_period(&mut self, gpu_time_s: f64, cpu_time_s: f64) -> f64 {
        assert!(gpu_time_s >= 0.0 && cpu_time_s >= 0.0, "negative period time");
        self.periods += 1;
        if self.converged_at.is_some() {
            return self.ratio;
        }

        let r = self.ratio.clamp(1e-6, 1.0 - 1e-6);
        // Per-zone-fraction throughputs; the equalizing ratio satisfies
        // r*/sg = (1 - r*)/sc.
        let sg = r / gpu_time_s.max(1e-12);
        let sc = (1.0 - r) / cpu_time_s.max(1e-12);
        let target = sg / (sg + sc);
        let new_ratio = (self.ratio + self.damping * (target - self.ratio)).clamp(0.0, 1.0);

        if (new_ratio - self.ratio).abs() < self.tol {
            self.stable_count += 1;
            if self.stable_count >= self.stable_needed {
                self.converged_at = Some(self.periods);
            }
        } else {
            self.stable_count = 0;
        }
        self.ratio = new_ratio;
        self.ratio
    }

    /// Pins the ratio to `ratio` and freezes the balancer (subsequent
    /// `record_period` calls are no-ops). Used by the fault-recovery path
    /// to force the whole workload onto one side — `force_ratio(0.0)`
    /// moves every zone to the CPU after a persistent GPU fault.
    pub fn force_ratio(&mut self, ratio: f64) {
        assert!((0.0..=1.0).contains(&ratio), "ratio out of [0,1]");
        self.ratio = ratio;
        self.converged_at = Some(self.periods);
    }

    /// Splits `zones` into a `(gpu, cpu)` zone-count pair at the current
    /// ratio.
    pub fn split(&self, zones: usize) -> (usize, usize) {
        let gpu = ((zones as f64) * self.ratio).round() as usize;
        (gpu.min(zones), zones - gpu.min(zones))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates a machine where the GPU processes zones `speed_ratio`x
    /// faster than the CPU; returns (final ratio, convergence periods).
    fn run_to_convergence(speed_ratio: f64, initial: f64) -> (f64, usize) {
        let mut bal = AutoBalancer::new(initial);
        for _ in 0..100 {
            let r = bal.ratio();
            // Time proportional to work / speed.
            let gpu_t = r / speed_ratio;
            let cpu_t = 1.0 - r;
            bal.record_period(gpu_t.max(1e-9), cpu_t.max(1e-9));
            if bal.is_converged() {
                break;
            }
        }
        (bal.ratio(), bal.convergence_periods().expect("must converge"))
    }

    #[test]
    fn force_ratio_pins_and_freezes() {
        let mut bal = AutoBalancer::new(0.5);
        bal.force_ratio(0.0);
        assert_eq!(bal.ratio(), 0.0);
        assert!(bal.is_converged());
        // Subsequent periods no longer move the ratio.
        bal.record_period(1e-3, 1e-3);
        assert_eq!(bal.ratio(), 0.0);
    }

    #[test]
    fn converges_to_speed_proportional_ratio() {
        // GPU 3x faster than the whole CPU: optimal ratio = 3/4 = 75%
        // (Table 5's Sedov row: 75% on C2050 vs six-core Westmere).
        let (ratio, periods) = run_to_convergence(3.0, 0.5);
        assert!((ratio - 0.75).abs() < 0.01, "ratio {ratio}");
        assert!(
            (8..=20).contains(&periods),
            "convergence periods {periods} outside Table 5's regime"
        );
    }

    #[test]
    fn triple_point_like_ratio() {
        // Slightly faster GPU workload mix: ~77% (Table 5's triple-pt row).
        let (ratio, _) = run_to_convergence(77.0 / 23.0, 0.5);
        assert!((ratio - 0.77).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn converges_from_any_start() {
        for initial in [0.1, 0.5, 0.9] {
            let (ratio, _) = run_to_convergence(3.0, initial);
            assert!((ratio - 0.75).abs() < 0.02, "from {initial}: {ratio}");
        }
    }

    #[test]
    fn port_to_other_architecture_rebalances() {
        // §3.3: "When the code is ported on another architecture, the
        // changes will be detected and the load will be rebalanced." Start
        // from the old optimum (75%) on a machine where the GPU is only as
        // fast as the CPU: the balancer must move to 50%.
        let (ratio, _) = run_to_convergence(1.0, 0.75);
        assert!((ratio - 0.5).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn stays_converged_and_stable() {
        let mut bal = AutoBalancer::new(0.5);
        for _ in 0..50 {
            let r = bal.ratio();
            bal.record_period(r / 3.0, 1.0 - r);
        }
        assert!(bal.is_converged());
        let locked = bal.ratio();
        // Further (noisy) periods do not move the converged ratio.
        bal.record_period(10.0, 0.1);
        assert_eq!(bal.ratio(), locked);
    }

    #[test]
    fn split_counts_add_up() {
        let mut bal = AutoBalancer::new(0.75);
        let (g, c) = bal.split(1000);
        assert_eq!(g + c, 1000);
        assert_eq!(g, 750);
        bal.record_period(1.0, 1.0);
        let (g2, c2) = bal.split(7);
        assert_eq!(g2 + c2, 7);
    }

    #[test]
    fn gpu_only_and_cpu_only_edges() {
        // Extremely fast GPU: ratio saturates near 1.
        let (ratio, _) = run_to_convergence(1000.0, 0.5);
        assert!(ratio > 0.98, "{ratio}");
        // Extremely slow GPU: ratio collapses near 0.
        let (ratio0, _) = run_to_convergence(0.001, 0.5);
        assert!(ratio0 < 0.02, "{ratio0}");
    }

    #[test]
    #[should_panic(expected = "ratio out of")]
    fn invalid_initial_ratio_rejected() {
        AutoBalancer::new(1.5);
    }
}
