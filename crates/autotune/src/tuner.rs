//! The sampling-period autotuner.
//!
//! §3.2.1: "First, we parametrize every kernel as far as possible. ...
//! Second, we set up a range of values for the parameters we want to tune.
//! Artificial values, like those exceeding the shared memory, will be
//! eliminated. ... In each sampling period, the scheduler picks up a
//! candidate value and times it. After comparing all the candidates, the
//! scheduler will give an optimal one. In our test, one sampling period
//! consists of forty time steps which will be averaged to eliminate the
//! noise."

/// The paper's sampling-period length (time steps averaged per candidate).
pub const DEFAULT_SAMPLES_PER_PERIOD: usize = 40;

/// Tuner progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TunerPhase {
    /// Still timing candidate `index`.
    Sampling {
        /// Candidate currently being timed.
        index: usize,
    },
    /// All candidates timed; `best` is the winner.
    Done {
        /// Index of the fastest candidate.
        best: usize,
    },
}

/// A sampling-period autotuner over an arbitrary candidate type.
///
/// Candidates must already be *pruned* to feasible configurations (the
/// caller eliminates "artificial values, like those exceeding the shared
/// memory" — in this reproduction, configs the occupancy calculator
/// rejects).
#[derive(Clone, Debug)]
pub struct Autotuner<C> {
    candidates: Vec<C>,
    samples_per_period: usize,
    /// Accumulated time and sample count per candidate.
    totals: Vec<(f64, usize)>,
    phase: TunerPhase,
}

impl<C> Autotuner<C> {
    /// Creates a tuner over a non-empty pruned candidate list.
    pub fn new(candidates: Vec<C>, samples_per_period: usize) -> Self {
        assert!(!candidates.is_empty(), "autotuner needs at least one candidate");
        assert!(samples_per_period >= 1, "sampling period must be positive");
        let n = candidates.len();
        let phase = if n == 1 {
            TunerPhase::Done { best: 0 }
        } else {
            TunerPhase::Sampling { index: 0 }
        };
        Self { candidates, samples_per_period, totals: vec![(0.0, 0); n], phase }
    }

    /// Creates a tuner with the paper's forty-step sampling period.
    pub fn with_default_period(candidates: Vec<C>) -> Self {
        Self::new(candidates, DEFAULT_SAMPLES_PER_PERIOD)
    }

    /// The candidate the caller should use for the *next* time step.
    pub fn current(&self) -> &C {
        &self.candidates[self.current_index()]
    }

    /// Index of the candidate in use.
    pub fn current_index(&self) -> usize {
        match self.phase {
            TunerPhase::Sampling { index } => index,
            TunerPhase::Done { best } => best,
        }
    }

    /// Records the measured time of one step run with [`current`].
    ///
    /// [`current`]: Autotuner::current
    pub fn record(&mut self, time_s: f64) {
        assert!(time_s.is_finite() && time_s >= 0.0, "invalid sample");
        if let TunerPhase::Sampling { index } = self.phase {
            let slot = &mut self.totals[index];
            slot.0 += time_s;
            slot.1 += 1;
            if slot.1 >= self.samples_per_period {
                if index + 1 < self.candidates.len() {
                    self.phase = TunerPhase::Sampling { index: index + 1 };
                } else {
                    self.phase = TunerPhase::Done { best: self.argmin() };
                }
            }
        }
        // Samples arriving after Done are steady-state steps: ignored.
    }

    fn argmin(&self) -> usize {
        let mut best = 0;
        let mut best_mean = f64::INFINITY;
        for (i, &(total, n)) in self.totals.iter().enumerate() {
            if n > 0 {
                let mean = total / n as f64;
                if mean < best_mean {
                    best_mean = mean;
                    best = i;
                }
            }
        }
        best
    }

    /// Current phase.
    pub fn phase(&self) -> TunerPhase {
        self.phase
    }

    /// Whether tuning has finished.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, TunerPhase::Done { .. })
    }

    /// The winning candidate, once tuning is done.
    pub fn best(&self) -> Option<&C> {
        match self.phase {
            TunerPhase::Done { best } => Some(&self.candidates[best]),
            TunerPhase::Sampling { .. } => None,
        }
    }

    /// Mean measured time per candidate (`None` where unsampled) — the
    /// tuning curves of Figs. 5 and 7.
    pub fn mean_times(&self) -> Vec<Option<f64>> {
        self.totals
            .iter()
            .map(|&(t, n)| if n > 0 { Some(t / n as f64) } else { None })
            .collect()
    }

    /// All candidates.
    pub fn candidates(&self) -> &[C] {
        &self.candidates
    }

    /// Total steps consumed by tuning so far.
    pub fn steps_sampled(&self) -> usize {
        self.totals.iter().map(|&(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic cost: candidate c takes (c - 7)^2 + 1 ms.
    fn cost(c: u32) -> f64 {
        ((c as f64 - 7.0).powi(2) + 1.0) * 1e-3
    }

    #[test]
    fn finds_the_fastest_candidate() {
        let cands = vec![1u32, 3, 5, 7, 9, 11];
        let mut tuner = Autotuner::new(cands, 5);
        while !tuner.is_done() {
            let c = *tuner.current();
            tuner.record(cost(c));
        }
        assert_eq!(*tuner.best().unwrap(), 7);
    }

    #[test]
    fn consumes_one_period_per_candidate() {
        let mut tuner = Autotuner::new(vec![1u32, 2, 3], 4);
        let mut steps = 0;
        while !tuner.is_done() {
            let c = *tuner.current();
            tuner.record(cost(c));
            steps += 1;
        }
        assert_eq!(steps, 3 * 4);
        assert_eq!(tuner.steps_sampled(), 12);
    }

    #[test]
    fn averaging_rejects_noise() {
        // Candidate 7 is truly faster than 9, but with noise a single
        // sample could mislead; forty averaged samples must not.
        let mut tuner = Autotuner::new(vec![9u32, 7], DEFAULT_SAMPLES_PER_PERIOD);
        let mut rng_state = 12345u64;
        let mut noise = || {
            // xorshift
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state % 1000) as f64 / 1000.0 * 2e-3 // up to 2 ms of noise
        };
        while !tuner.is_done() {
            let c = *tuner.current();
            tuner.record(cost(c) + noise());
        }
        assert_eq!(*tuner.best().unwrap(), 7);
    }

    #[test]
    fn single_candidate_is_immediately_done() {
        let tuner = Autotuner::new(vec![42u32], 40);
        assert!(tuner.is_done());
        assert_eq!(*tuner.best().unwrap(), 42);
    }

    #[test]
    fn steady_state_samples_ignored() {
        let mut tuner = Autotuner::new(vec![1u32, 2], 2);
        for _ in 0..4 {
            let c = *tuner.current();
            tuner.record(cost(c));
        }
        assert!(tuner.is_done());
        let best = tuner.current_index();
        tuner.record(99.0); // post-convergence step; must not change choice
        assert_eq!(tuner.current_index(), best);
    }

    #[test]
    fn mean_times_expose_tuning_curve() {
        let cands = vec![2u32, 7, 12];
        let mut tuner = Autotuner::new(cands, 3);
        while !tuner.is_done() {
            let c = *tuner.current();
            tuner.record(cost(c));
        }
        let curve = tuner.mean_times();
        assert_eq!(curve.len(), 3);
        assert!((curve[0].unwrap() - cost(2)).abs() < 1e-12);
        assert!((curve[1].unwrap() - cost(7)).abs() < 1e-12);
        assert!(curve[1].unwrap() < curve[0].unwrap());
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_rejected() {
        Autotuner::<u32>::new(vec![], 1);
    }

    #[test]
    #[should_panic(expected = "invalid sample")]
    fn nan_sample_rejected() {
        let mut tuner = Autotuner::new(vec![1u32, 2], 1);
        tuner.record(f64::NAN);
    }
}
