//! # autotune
//!
//! The paper's autotuning machinery (§3.2.1) and the CUDA/OpenMP
//! auto-balance scheduler (§3.3).
//!
//! Both exploit "the iterative time stepping nature of CFD applications":
//! every time step repeats the same kernels on slowly-evolving data, so the
//! scheduler can spend early steps *measuring* candidate configurations and
//! then lock in the best one.
//!
//! - [`Autotuner`]: enumerates a pruned candidate list (one per kernel
//!   parameter combination), times each for one *sampling period* (the
//!   paper averages forty time steps to eliminate noise), and converges to
//!   the optimum.
//! - [`AutoBalancer`]: splits corner-force zones between the CPU (OpenMP
//!   analog) and the GPU, adjusting the ratio from measured per-period
//!   times until they equalize (Table 5: ~75% of zones on a C2050 against
//!   a six-core Westmere, converged in 12-14 periods).

pub mod balance;
pub mod tuner;

pub use balance::AutoBalancer;
pub use tuner::{Autotuner, TunerPhase};
