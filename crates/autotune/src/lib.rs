//! # autotune
//!
//! The paper's autotuning machinery (§3.2.1) and the CUDA/OpenMP
//! auto-balance scheduler (§3.3).
//!
//! Both exploit "the iterative time stepping nature of CFD applications":
//! every time step repeats the same kernels on slowly-evolving data, so the
//! scheduler can spend early steps *measuring* candidate configurations and
//! then lock in the best one.
//!
//! - [`Autotuner`]: enumerates a pruned candidate list (one per kernel
//!   parameter combination), times each for one *sampling period* (the
//!   paper averages forty time steps to eliminate noise), and converges to
//!   the optimum.
//! - [`AutoBalancer`]: splits corner-force zones between the CPU (OpenMP
//!   analog) and the GPU, adjusting the ratio from measured per-period
//!   times until they equalize (Table 5: ~75% of zones on a C2050 against
//!   a six-core Westmere, converged in 12-14 periods).

//! - [`host_tiles`]: the same search methodology pointed at the *CPU*
//!   micro-kernels — picks the register-tile / cache-block configuration
//!   (`blast_la::tile::CANDIDATES`) per FE order and reports the measured
//!   GFLOP/s so the cost model can be calibrated against the real host.

//! - [`pcg_stream`]: the search pointed at the fused streaming PCG
//!   kernels — picks the fusion x parallel-drive combination
//!   (`blast_la::stream::CANDIDATES`) per (dimension, thread count).

//! - [`assembly`]: the memory-or-time decision between the stored batched
//!   operators and the matrix-free sum-factorized path, per
//!   `(dimension, order)` with a hard device-footprint override.

pub mod assembly;
pub mod balance;
pub mod host_tiles;
pub mod pcg_stream;
pub mod tuner;

/// Device key used by the legacy un-keyed entry points
/// ([`tune_host_tiles`], [`tune_pcg_stream`], [`choose_assembly_mode`]):
/// "whatever box this process runs on". Fleet-aware callers pass a
/// `DeviceCatalog` id to the `*_for` variants instead, so each device in
/// a mixed fleet gets its own validated cache row.
pub const DEFAULT_DEVICE: &str = "local-host";

pub use assembly::{choose_assembly_mode, choose_assembly_mode_for, AssemblyChoice};
pub use balance::AutoBalancer;
pub use host_tiles::{tune_host_tiles, tune_host_tiles_for, HostTileChoice};
pub use pcg_stream::{tune_pcg_stream, tune_pcg_stream_for, StreamChoice};
pub use tuner::{Autotuner, TunerPhase};
