//! Streaming-PCG variant autotuning — the §3.2.1 search pointed at the
//! fused solver kernels.
//!
//! [`blast_la::stream::CANDIDATES`] crosses kernel fusion (fused vs
//! launch-per-op) with the parallel reduction drive (pool vs serial).
//! Which combination wins depends on the problem size and the thread
//! count: at Table-3 sizes with a wide band the SpMV dominates and fusion
//! mostly saves vector transits, while on small systems the pool drive's
//! fork overhead can lose to the serial sweep. Every candidate is
//! bitwise-identical (the stream module's determinism contract), so — as
//! with the host tile search — this is purely a performance knob, safe to
//! run once per `(dim, threads)` pair and cache for the process lifetime.
//!
//! Timing uses interleaved min-of-rounds over a fixed iteration count
//! (tolerances are pinned so every candidate performs exactly the same
//! sweeps), and the winner is installed process-wide via
//! [`blast_la::stream::set_active_stream_index`].

use std::sync::Mutex;
use std::time::Instant;

use blast_la::stream::{self, StreamVariant, CANDIDATES};
use blast_la::{CsrBuilder, CsrMatrix, DiagPrecond, PcgOptions, PcgWorkspace};

/// The momentum-system proxy shape for one spatial dimension: DOF count
/// and semi-bandwidth of the banded SPD stand-in for the kinematic mass
/// matrix (higher dimension couples more neighbours per row).
pub fn momentum_proxy_shape(dim: usize) -> (usize, usize) {
    assert!((1..=3).contains(&dim), "dim must be 1..=3");
    match dim {
        1 => (6_000, 2),
        2 => (12_000, 9),
        _ => (20_000, 27),
    }
}

/// Outcome of one streaming-variant search.
#[derive(Clone, Debug)]
pub struct StreamChoice {
    /// Catalog device id the search was validated for (see
    /// [`crate::DEFAULT_DEVICE`]) — part of the cache key.
    pub device: String,
    /// Spatial dimension the proxy system was derived from.
    pub dim: usize,
    /// Pool thread count the search was run under.
    pub threads: usize,
    /// Proxy system size (DOFs).
    pub n: usize,
    /// Proxy system semi-bandwidth.
    pub half_band: usize,
    /// Winning index into [`CANDIDATES`].
    pub index: usize,
    /// The winning variant, `CANDIDATES[index]`.
    pub variant: StreamVariant,
    /// Best fused time over best unfused time (same parallel setting as
    /// the winner where possible); > 1 means fusion pays off here.
    pub fused_speedup: f64,
    /// Best time per candidate, seconds (one entry per [`CANDIDATES`]).
    pub candidate_times_s: Vec<f64>,
}

/// Iterations each timed solve is pinned to (every candidate performs
/// exactly this many fused/unfused sweeps — no convergence-path noise).
const PINNED_ITERS: usize = 12;

/// Interleaved rounds per search; each candidate keeps its minimum.
const ROUNDS: usize = 5;

fn banded_spd(n: usize, half_band: usize) -> CsrMatrix {
    let mut b = CsrBuilder::new(n, n);
    for i in 0..n {
        b.add(i, i, 2.0 * half_band as f64);
        for o in 1..=half_band {
            if i >= o {
                b.add(i, i - o, -0.5);
            }
            if i + o < n {
                b.add(i, i + o, -0.5);
            }
        }
    }
    b.build()
}

/// Times every streaming candidate on the `dim`-dimensional proxy system
/// with an explicit measurement budget. Restores whichever variant was
/// active on entry — pure measurement; use [`tune_pcg_stream`] for the
/// cached + installing form.
pub fn tune_pcg_stream_uncached(dim: usize, rounds: usize, iters: usize) -> StreamChoice {
    let (n, half_band) = momentum_proxy_shape(dim);
    let a = banded_spd(n, half_band);
    let pre = DiagPrecond::from_diagonal(&a.diagonal());
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.013).sin()).collect();
    // Tolerances pinned unreachably tight: every solve runs exactly
    // `iters` iterations regardless of variant.
    let opts = PcgOptions { rel_tol: 0.0, abs_tol: 1e-300, max_iter: iters.max(1) };
    let mut ws = PcgWorkspace::new();
    let mut x = vec![0.0; n];

    let before = stream::active_stream_index();
    let mut best = vec![f64::INFINITY; CANDIDATES.len()];
    // Warm-up: grow the workspace and fault in the pages outside the
    // timed region.
    blast_la::pcg_solve_ws(&mut (&a), &pre, &b, &mut x, &opts, &mut ws);
    for _ in 0..rounds.max(1) {
        for (ci, _) in CANDIDATES.iter().enumerate() {
            stream::set_active_stream_index(ci);
            x.iter_mut().for_each(|v| *v = 0.0);
            let start = Instant::now();
            blast_la::pcg_solve_ws(&mut (&a), &pre, &b, &mut x, &opts, &mut ws);
            best[ci] = best[ci].min(start.elapsed().as_secs_f64());
        }
    }
    stream::set_active_stream_index(before);

    let index = best
        .iter()
        .enumerate()
        .min_by(|x, y| x.1.total_cmp(y.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    // Compare fusion against its unfused twin at the winner's parallel
    // setting so the ratio isolates fusion, not the pool drive.
    let winner = CANDIDATES[index];
    let twin = |fused: bool| {
        CANDIDATES
            .iter()
            .position(|c| c.fused == fused && c.parallel == winner.parallel)
            .expect("CANDIDATES covers the full fused x parallel grid")
    };
    let fused_speedup = best[twin(false)] / best[twin(true)];
    StreamChoice {
        device: crate::DEFAULT_DEVICE.to_string(),
        dim,
        threads: rayon::current_num_threads(),
        n,
        half_band,
        index,
        variant: winner,
        fused_speedup,
        candidate_times_s: best,
    }
}

static CACHE: Mutex<Vec<StreamChoice>> = Mutex::new(Vec::new());

/// Searches the streaming variants for `(dim, current thread count)` on
/// the default local-host device key. See [`tune_pcg_stream_for`].
pub fn tune_pcg_stream(dim: usize) -> StreamChoice {
    tune_pcg_stream_for(crate::DEFAULT_DEVICE, dim)
}

/// Searches the streaming variants for `(device, dim, current thread
/// count)`, installs the winner process-wide, and caches the result —
/// repeat calls for the same triple replay the cached choice
/// (re-installing the winner, so the latest-tuned configuration wins when
/// several are in play). `device` is a catalog id (`DeviceCatalog` in
/// `gpu-sim`), so a mixed fleet re-validates the fusion choice per device.
pub fn tune_pcg_stream_for(device: &str, dim: usize) -> StreamChoice {
    let threads = rayon::current_num_threads();
    let mut cache = CACHE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(hit) =
        cache.iter().find(|c| c.device == device && c.dim == dim && c.threads == threads)
    {
        let hit = hit.clone();
        stream::set_active_stream_index(hit.index);
        return hit;
    }
    let choice = StreamChoice {
        device: device.to_string(),
        ..tune_pcg_stream_uncached(dim, ROUNDS, PINNED_ITERS)
    };
    stream::set_active_stream_index(choice.index);
    cache.push(choice.clone());
    choice
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_shapes_scale_with_dimension() {
        let (n1, b1) = momentum_proxy_shape(1);
        let (n3, b3) = momentum_proxy_shape(3);
        assert!(n3 > n1 && b3 > b1);
    }

    #[test]
    #[should_panic(expected = "dim")]
    fn proxy_shape_rejects_bad_dim() {
        momentum_proxy_shape(4);
    }

    #[test]
    fn uncached_search_returns_a_valid_choice_and_restores_state() {
        let before = stream::active_stream_index();
        // Tiny budget: correctness of the bookkeeping, not the timing.
        let c = tune_pcg_stream_uncached(1, 1, 2);
        assert_eq!(stream::active_stream_index(), before);
        assert!(c.index < CANDIDATES.len());
        assert_eq!(c.variant.fused, CANDIDATES[c.index].fused);
        assert_eq!(c.candidate_times_s.len(), CANDIDATES.len());
        assert!(c.candidate_times_s.iter().all(|&t| t.is_finite() && t > 0.0));
        let min = c.candidate_times_s.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(c.candidate_times_s[c.index], min);
        assert!(c.fused_speedup.is_finite() && c.fused_speedup > 0.0);
    }

    #[test]
    fn cached_search_installs_and_replays() {
        let before = stream::active_stream_index();
        let first = tune_pcg_stream(1);
        assert_eq!(stream::active_stream_index(), first.index);
        let again = tune_pcg_stream(1);
        assert_eq!(again.index, first.index);
        assert_eq!(again.candidate_times_s, first.candidate_times_s);
        assert_eq!(again.device, crate::DEFAULT_DEVICE);
        stream::set_active_stream_index(before);
    }

    #[test]
    fn cache_is_keyed_by_device_id() {
        let before = stream::active_stream_index();
        let a = tune_pcg_stream_for("k20", 1);
        let b = tune_pcg_stream_for("fermi", 1);
        assert_eq!(a.device, "k20");
        assert_eq!(b.device, "fermi");
        // Independent measurements and independent replay slots.
        assert_ne!(a.candidate_times_s, b.candidate_times_s);
        assert_eq!(tune_pcg_stream_for("k20", 1).candidate_times_s, a.candidate_times_s);
        stream::set_active_stream_index(before);
    }
}
