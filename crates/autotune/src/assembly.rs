//! Assembly-mode autotuning: stored batched matrices vs matrix-free
//! sum factorization, per `(dimension, order)`.
//!
//! The two modes do the same physics; they differ in what they persist
//! and recompute. The choice has a hard component and a soft one:
//!
//! - **Hard (memory)**: when the stored working set — per-zone `A_z`/`F_z`
//!   batches plus the CSR kinematic mass matrix — does not fit the device
//!   budget, matrix-free is *forced* regardless of speed (the paper's
//!   Q4-Q3 ceiling at `16^3` zones on a 5 GB K20; matrix-free keeps only
//!   `d x d` per-point data and sails past it).
//! - **Soft (time)**: below the ceiling, the faster mode wins, measured
//!   the way the other tuners here measure ([`crate::host_tiles`],
//!   [`crate::pcg_stream`]): interleaved min-of-rounds over the
//!   *differential* per-zone work. The per-point physics (EOS, geometry,
//!   viscosity) is identical in both modes and is excluded; what's timed
//!   is the stored path's dense `nvdof x npts x nthermo` contraction and
//!   `A_z` batch fill against the matrix-free path's `~3d²` thin 1D
//!   transform chains.
//!
//! Both modes are bitwise-deterministic internally, so — like the other
//! searches — this is a performance/fit knob, safe to cache per
//! `(dim, order)` for the process lifetime. Low orders tend to keep the
//! stored path (small batches, L3-resident matrix streams); the measured
//! crossover moves to matrix-free as `order` grows and the stored
//! contraction outgrows every cache level.

use std::sync::Mutex;
use std::time::Instant;

use blast_fem::sumfac::{backward, forward, SumfacScratch};
use blast_la::tile::{self, Op};
use blast_kernels::sumfac::{
    matfree_resident_bytes, stored_resident_bytes, AssemblyMode, SumfacFactors,
};
use blast_kernels::ProblemShape;

/// Outcome of one assembly-mode decision.
#[derive(Clone, Debug)]
pub struct AssemblyChoice {
    /// Catalog device id the decision was validated for (see
    /// [`crate::DEFAULT_DEVICE`]) — part of the soft-choice cache key.
    pub device: String,
    /// Spatial dimension.
    pub dim: usize,
    /// Kinematic order `k`.
    pub order: usize,
    /// Zone count the footprints were evaluated at.
    pub zones: usize,
    /// The selected mode.
    pub mode: AssemblyMode,
    /// Modeled stored-path resident bytes at `zones`.
    pub stored_bytes: usize,
    /// Modeled matrix-free resident bytes at `zones`.
    pub matfree_bytes: usize,
    /// True when the device budget forced matrix-free (no timing ran).
    pub forced_by_memory: bool,
    /// Measured per-zone stored proxy time, seconds (0 when forced).
    pub stored_time_s: f64,
    /// Measured per-zone matrix-free proxy time, seconds (0 when forced).
    pub matfree_time_s: f64,
}

/// Timed repetitions per round (per candidate).
const REPS: usize = 8;
/// Interleaved rounds; the per-candidate minimum is kept.
const ROUNDS: usize = 5;

/// Times the *stored-mode differential* work for one zone: the `F_z`
/// contraction (`nvdof x nthermo` from `nvdof x npts`, kernel 7) plus the
/// `A_z` batch fill the matrix-free path never performs (kernel 4's
/// `nvdof x npts` write).
fn stored_proxy(shape: &ProblemShape, bt: &[f64], az: &mut [f64], fz: &mut [f64]) {
    let nvdof = shape.nvdof();
    // Kernel-4 stand-in: the A_z batch materialization.
    for (i, a) in az.iter_mut().enumerate() {
        *a = (i % 97) as f64 * 1.0e-2;
    }
    // Kernel-7 stand-in: F_z = A_z B^T (shapes after transposition).
    tile::gemm(nvdof, shape.nthermo, shape.npts, 1.0, az, Op::N, bt, Op::T, 0.0, fz);
}

/// Times the *matrix-free differential* work for one zone: `2d²` forward
/// gradient transforms (geometry + velocity), `d²` backward transforms
/// (momentum), one thermo forward and one thermo backward (energy
/// interpolation + projection) — the real [`blast_fem::sumfac`] chains.
#[allow(clippy::too_many_arguments)]
fn matfree_proxy(
    shape: &ProblemShape,
    f: &SumfacFactors,
    u: &[f64],
    et: &[f64],
    q: &mut [f64],
    out_kin: &mut [f64],
    out_thermo: &mut [f64],
    ws: &mut SumfacScratch,
) {
    let d = shape.dim;
    for g in 0..d {
        for c in 0..d {
            let comp = &u[c * shape.nkin..(c + 1) * shape.nkin];
            forward(&f.kin, d, comp, Some(g), q, ws);
            forward(&f.kin, d, comp, Some(g), q, ws);
        }
        backward(&f.kin, d, q, Some(g), if g == 0 { 0.0 } else { 1.0 }, out_kin, ws);
    }
    forward(&f.thermo, d, et, None, q, ws);
    backward(&f.thermo, d, q, None, 0.0, out_thermo, ws);
}

/// Runs the timed search for `(dim, order)`, ignoring any memory budget.
/// Returns `(stored_s, matfree_s)` per-zone proxy times.
pub fn measure_assembly_proxies(dim: usize, order: usize) -> (f64, f64) {
    let shape = ProblemShape::new(dim, order, 1);
    let f = SumfacFactors::new(dim, order);
    let nvdof = shape.nvdof();
    // B^T operand of kernel 7 (npts x nthermo column-major values).
    let bt: Vec<f64> = (0..shape.npts * shape.nthermo)
        .map(|i| ((i % 13) as f64 - 6.0) * 1.0e-2)
        .collect();
    let mut az = vec![0.0; nvdof * shape.npts];
    let mut fz = vec![0.0; nvdof * shape.nthermo];
    let u: Vec<f64> = (0..dim * shape.nkin).map(|i| ((i % 11) as f64 - 5.0) * 0.1).collect();
    let et: Vec<f64> = (0..shape.nthermo).map(|i| (i % 7) as f64 * 0.1).collect();
    let mut q = vec![0.0; shape.npts];
    let mut out_kin = vec![0.0; shape.nkin];
    let mut out_thermo = vec![0.0; shape.nthermo];
    let mut ws = SumfacScratch::default();

    // Warm-up (buffers, TLS tile workspaces, instruction caches).
    stored_proxy(&shape, &bt, &mut az, &mut fz);
    matfree_proxy(&shape, &f, &u, &et, &mut q, &mut out_kin, &mut out_thermo, &mut ws);

    let mut best_stored = f64::INFINITY;
    let mut best_matfree = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        for _ in 0..REPS {
            stored_proxy(&shape, &bt, &mut az, &mut fz);
        }
        best_stored = best_stored.min(t0.elapsed().as_secs_f64() / REPS as f64);
        let t0 = Instant::now();
        for _ in 0..REPS {
            matfree_proxy(&shape, &f, &u, &et, &mut q, &mut out_kin, &mut out_thermo, &mut ws);
        }
        best_matfree = best_matfree.min(t0.elapsed().as_secs_f64() / REPS as f64);
    }
    (best_stored, best_matfree)
}

/// Decides the assembly mode for a problem, uncached.
///
/// `device_budget` is the device memory capacity for GPU/hybrid runs
/// (`None` on CPU-only hosts, where only the timed search applies —
/// host RAM is not modeled as a ceiling).
pub fn choose_assembly_mode_uncached(
    dim: usize,
    order: usize,
    zones: usize,
    num_h1_dofs: usize,
    num_l2_dofs: usize,
    device_budget: Option<usize>,
) -> AssemblyChoice {
    let shape = ProblemShape::new(dim, order, zones);
    let stored_bytes = stored_resident_bytes(&shape, num_h1_dofs, num_l2_dofs);
    let matfree_bytes = matfree_resident_bytes(&shape, num_h1_dofs, num_l2_dofs);
    if let Some(budget) = device_budget {
        if stored_bytes > budget && matfree_bytes <= budget {
            return AssemblyChoice {
                device: crate::DEFAULT_DEVICE.to_string(),
                dim,
                order,
                zones,
                mode: AssemblyMode::MatrixFree,
                stored_bytes,
                matfree_bytes,
                forced_by_memory: true,
                stored_time_s: 0.0,
                matfree_time_s: 0.0,
            };
        }
    }
    let (stored_time_s, matfree_time_s) = measure_assembly_proxies(dim, order);
    let mode = if matfree_time_s < stored_time_s {
        AssemblyMode::MatrixFree
    } else {
        AssemblyMode::Stored
    };
    AssemblyChoice {
        device: crate::DEFAULT_DEVICE.to_string(),
        dim,
        order,
        zones,
        mode,
        stored_bytes,
        matfree_bytes,
        forced_by_memory: false,
        stored_time_s,
        matfree_time_s,
    }
}

static CACHE: Mutex<Vec<AssemblyChoice>> = Mutex::new(Vec::new());

/// Decides the assembly mode for a problem on the default local-host
/// device key. See [`choose_assembly_mode_for`].
pub fn choose_assembly_mode(
    dim: usize,
    order: usize,
    zones: usize,
    num_h1_dofs: usize,
    num_l2_dofs: usize,
    device_budget: Option<usize>,
) -> AssemblyChoice {
    choose_assembly_mode_for(
        crate::DEFAULT_DEVICE,
        dim,
        order,
        zones,
        num_h1_dofs,
        num_l2_dofs,
        device_budget,
    )
}

/// Decides the assembly mode for a problem on a named catalog device.
/// The footprint check always runs fresh (it depends on `zones` and the
/// budget, which differ per device); the timed proxy search is cached per
/// `(device, dim, order)` for the process lifetime.
pub fn choose_assembly_mode_for(
    device: &str,
    dim: usize,
    order: usize,
    zones: usize,
    num_h1_dofs: usize,
    num_l2_dofs: usize,
    device_budget: Option<usize>,
) -> AssemblyChoice {
    let shape = ProblemShape::new(dim, order, zones);
    let stored_bytes = stored_resident_bytes(&shape, num_h1_dofs, num_l2_dofs);
    let matfree_bytes = matfree_resident_bytes(&shape, num_h1_dofs, num_l2_dofs);
    if let Some(budget) = device_budget {
        if stored_bytes > budget && matfree_bytes <= budget {
            return AssemblyChoice {
                device: device.to_string(),
                dim,
                order,
                zones,
                mode: AssemblyMode::MatrixFree,
                stored_bytes,
                matfree_bytes,
                forced_by_memory: true,
                stored_time_s: 0.0,
                matfree_time_s: 0.0,
            };
        }
    }
    let mut cache = CACHE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(hit) =
        cache.iter().find(|c| c.device == device && c.dim == dim && c.order == order)
    {
        return AssemblyChoice {
            device: device.to_string(),
            dim,
            order,
            zones,
            mode: hit.mode,
            stored_bytes,
            matfree_bytes,
            forced_by_memory: false,
            stored_time_s: hit.stored_time_s,
            matfree_time_s: hit.matfree_time_s,
        };
    }
    let choice = AssemblyChoice {
        device: device.to_string(),
        ..choose_assembly_mode_uncached(dim, order, zones, num_h1_dofs, num_l2_dofs, None)
    };
    cache.push(choice.clone());
    AssemblyChoice { stored_bytes, matfree_bytes, ..choice }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_pressure_forces_matrix_free() {
        // Q4-Q3 3D at 32^3 zones against the 5 GB K20 budget: stored
        // cannot fit, matrix-free must be forced without any timing.
        let za = 32usize;
        let n_h1 = (4 * za + 1).pow(3);
        let zones = za.pow(3);
        let n_l2 = zones * 64;
        let c = choose_assembly_mode(3, 4, zones, n_h1, n_l2, Some(5 << 30));
        assert_eq!(c.mode, AssemblyMode::MatrixFree);
        assert!(c.forced_by_memory);
        assert!(c.stored_bytes > 5 << 30);
        assert!(c.matfree_bytes <= 5 << 30);
    }

    #[test]
    fn unforced_choice_is_measured_and_cached() {
        let c1 = choose_assembly_mode(2, 2, 16, 1089, 64, None);
        assert!(!c1.forced_by_memory);
        assert!(c1.stored_time_s > 0.0 && c1.matfree_time_s > 0.0);
        // Second call replays the cached measurement.
        let c2 = choose_assembly_mode(2, 2, 64, 4225, 256, None);
        assert_eq!(c1.mode, c2.mode);
        assert_eq!(c1.stored_time_s.to_bits(), c2.stored_time_s.to_bits());
        // Footprints still reflect the *new* zones.
        assert!(c2.stored_bytes > c1.stored_bytes);
    }

    #[test]
    fn soft_choice_cache_is_keyed_by_device_id() {
        let a = choose_assembly_mode_for("k20", 2, 1, 16, 289, 16, None);
        let b = choose_assembly_mode_for("fermi", 2, 1, 16, 289, 16, None);
        assert_eq!(a.device, "k20");
        assert_eq!(b.device, "fermi");
        // Each device ran (and replays) its own measured proxy search.
        assert!(a.stored_time_s > 0.0 && b.stored_time_s > 0.0);
        let replay = choose_assembly_mode_for("k20", 2, 1, 64, 1089, 64, None);
        assert_eq!(replay.stored_time_s.to_bits(), a.stored_time_s.to_bits());
    }

    #[test]
    fn high_order_proxy_prefers_matrix_free() {
        // At Q4 in 3D the stored contraction is 375 x 512 x 64 per zone
        // (~24.6 MFLOP) vs ~0.4 MFLOP of thin transforms; the measured
        // proxy should agree with the asymptotics by a wide margin.
        let (stored, matfree) = measure_assembly_proxies(3, 4);
        assert!(
            matfree < stored,
            "matfree proxy {matfree:.2e}s should beat stored {stored:.2e}s at Q4-3D"
        );
    }
}
