//! Host tile-parameter autotuning — the paper's §3.2.1 search applied to
//! the *CPU* micro-kernels.
//!
//! The GPU autotuner enumerates kernel launch configurations; its host
//! counterpart here searches [`blast_la::tile::CANDIDATES`] — the register
//! micro-tile (MR x NR) crossed with the `KC` cache block — on the
//! corner-force `F_z` GEMM shape of a given `(dim, order)` pair. Every
//! candidate produces bitwise-identical results (the tile module's
//! determinism contract), so the search is purely a performance knob and
//! can be run once per FE order and cached for the rest of the process.
//!
//! Timing uses interleaved min-of-samples: each round times every
//! candidate (and the pre-tiling naive kernel) once, and each candidate
//! keeps its best round. On a noisy shared box the minimum is the robust
//! estimator — external steal time only ever *adds* to a sample.
//!
//! The winner is installed process-wide via
//! [`blast_la::tile::set_active_tile_index`], and its measured GFLOP/s is
//! reported so the cost model's `CpuSpec` can be calibrated against the
//! throughput the tiled hot path actually sustains (see
//! `CpuSpec::calibrate_host_gflops` in `gpu-sim`).

use std::sync::Mutex;
use std::time::Instant;

use blast_la::dense::naive;
use blast_la::tile::{self, GemmWorkspace, Op, TileConfig, CANDIDATES};

use crate::tuner::Autotuner;

/// The corner-force `F_z` GEMM shape `(m, n, k)` for one `(dim, order)`
/// pair: `m` velocity dofs per zone, `n` thermodynamic basis functions,
/// `k` quadrature points (kernel 7 computes `F_z = A_z * B^T` per zone,
/// an NT product on exactly this shape).
pub fn corner_force_shape(dim: usize, order: usize) -> (usize, usize, usize) {
    assert!((1..=3).contains(&dim), "dim must be 1..=3");
    assert!(order >= 1, "order must be >= 1");
    let p = |base: usize| base.pow(dim as u32);
    (dim * p(order + 1), p(order), p(2 * order))
}

/// Outcome of one host-tile search.
#[derive(Clone, Debug)]
pub struct HostTileChoice {
    /// Catalog device id the search was validated for (see
    /// [`crate::DEFAULT_DEVICE`]) — part of the cache key, so a fleet
    /// re-tunes per device instead of reusing one node's winner.
    pub device: String,
    /// Spatial dimension the shape was derived from.
    pub dim: usize,
    /// FE order the shape was derived from.
    pub order: usize,
    /// GEMM shape that was tuned, `(m, n, k)`.
    pub shape: (usize, usize, usize),
    /// Winning index into [`CANDIDATES`].
    pub index: usize,
    /// The winning configuration, `CANDIDATES[index]`.
    pub config: TileConfig,
    /// Best measured throughput of the winner, GFLOP/s (single thread).
    pub tiled_gflops: f64,
    /// Best measured throughput of the pre-tiling naive kernel, GFLOP/s.
    pub naive_gflops: f64,
    /// `tiled_gflops / naive_gflops`.
    pub speedup: f64,
    /// Best time per candidate, seconds (one entry per [`CANDIDATES`]).
    pub candidate_times_s: Vec<f64>,
}

/// Per-sample work target, in multiply-adds. Large enough that one sample
/// is ~1 ms in release on the Table-3 shapes (dispatch and timer overhead
/// vanish), small enough that a full 12-candidate search stays well under
/// a second.
const TARGET_MULS: usize = 1 << 21;

/// Interleaved rounds per search; each candidate keeps its minimum.
const ROUNDS: usize = 7;

/// Searches [`CANDIDATES`] on the corner-force shape of `(dim, order)`
/// with an explicit measurement budget. `rounds` is the number of
/// interleaved timing rounds; `target_muls` sizes one sample (repetitions
/// are chosen so every sample performs at least this many multiply-adds).
///
/// Does **not** touch the process-wide active tile or the cache — pure
/// measurement. Use [`tune_host_tiles`] for the cached + installing form.
pub fn tune_host_tiles_uncached(
    dim: usize,
    order: usize,
    rounds: usize,
    target_muls: usize,
) -> HostTileChoice {
    let (m, n, k) = corner_force_shape(dim, order);
    let reps = (target_muls / (m * n * k).max(1)).max(1);
    let flops_per_sample = (2 * m * n * k * reps) as f64;

    // Deterministic operand fill; values are irrelevant to timing but a
    // non-trivial pattern keeps any data-dependent path honest.
    let a: Vec<f64> = (0..m * k).map(|i| ((i * 37 + 11) % 101) as f64 * 1e-2 - 0.5).collect();
    // B is the n x k thermodynamic basis table (kernel 7 consumes it
    // transposed), shared by the naive and tiled runs.
    let b: Vec<f64> = (0..n * k).map(|i| ((i * 53 + 7) % 97) as f64 * 1e-2 - 0.4).collect();
    let mut c = vec![0.0f64; m * n];
    let mut ws = GemmWorkspace::new();

    let mut best = vec![f64::INFINITY; CANDIDATES.len()];
    let mut naive_best = f64::INFINITY;
    for _ in 0..rounds.max(1) {
        for (ci, cfg) in CANDIDATES.iter().enumerate() {
            let start = Instant::now();
            for _ in 0..reps {
                run_candidate(*cfg, m, n, k, &a, &b, &mut c, &mut ws);
            }
            best[ci] = best[ci].min(start.elapsed().as_secs_f64());
        }
        let start = Instant::now();
        for _ in 0..reps {
            naive::gemm_nt_raw(m, n, k, 1.0, &a, &b, 0.0, &mut c);
        }
        naive_best = naive_best.min(start.elapsed().as_secs_f64());
    }

    let index = best
        .iter()
        .enumerate()
        .min_by(|x, y| x.1.total_cmp(y.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let tiled_gflops = flops_per_sample / best[index] / 1e9;
    let naive_gflops = flops_per_sample / naive_best / 1e9;
    HostTileChoice {
        device: crate::DEFAULT_DEVICE.to_string(),
        dim,
        order,
        shape: (m, n, k),
        index,
        config: CANDIDATES[index],
        tiled_gflops,
        naive_gflops,
        speedup: tiled_gflops / naive_gflops,
        candidate_times_s: best,
    }
}

/// One timed candidate run, mirroring `tile::gemm`'s direct-vs-packed
/// dispatch so the search measures the path production calls will take at
/// this shape.
fn run_candidate(
    cfg: TileConfig,
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    ws: &mut GemmWorkspace,
) {
    if tile::prefers_direct(m, n, k) {
        tile::gemm_tiled_direct(cfg, m, n, k, 1.0, a, Op::N, b, Op::T, 0.0, c);
    } else {
        tile::gemm_tiled_packed(cfg, m, n, k, 1.0, a, Op::N, b, Op::T, 0.0, c, ws);
    }
}

static CACHE: Mutex<Vec<HostTileChoice>> = Mutex::new(Vec::new());

/// Searches the host tile parameters for `(dim, order)` on the default
/// local-host device key. See [`tune_host_tiles_for`].
pub fn tune_host_tiles(dim: usize, order: usize) -> HostTileChoice {
    tune_host_tiles_for(crate::DEFAULT_DEVICE, dim, order)
}

/// Searches the host tile parameters for `(device, dim, order)`, installs
/// the winner as the process-wide active tile configuration, and caches
/// the result — repeat calls for the same triple return the cached choice
/// without re-measuring (re-installing the winner each time, so the
/// latest-tuned order wins when several are in play).
///
/// `device` is a catalog id (`DeviceCatalog` in `gpu-sim`): a fleet
/// re-validates the search per device rather than assuming one node's
/// winner transfers across generations.
pub fn tune_host_tiles_for(device: &str, dim: usize, order: usize) -> HostTileChoice {
    let mut cache = CACHE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(hit) =
        cache.iter().find(|c| c.device == device && c.dim == dim && c.order == order)
    {
        let hit = hit.clone();
        tile::set_active_tile_index(hit.index);
        return hit;
    }
    let choice = HostTileChoice {
        device: device.to_string(),
        ..tune_host_tiles_uncached(dim, order, ROUNDS, TARGET_MULS)
    };
    tile::set_active_tile_index(choice.index);
    cache.push(choice.clone());
    choice
}

/// Bridges the host-tile search into the in-loop sampling-period
/// [`Autotuner`]: candidates are the same grid, timed by real solver
/// steps instead of the offline micro-benchmark (`record` the step time
/// each step, then `set_active_tile_index(best)` once `is_done`).
pub fn host_tile_tuner(samples_per_period: usize) -> Autotuner<TileConfig> {
    Autotuner::new(CANDIDATES.to_vec(), samples_per_period)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_force_shape_matches_table3() {
        // Paper Table 3, 3D: Q2 zones have 81 velocity dofs, 8
        // thermodynamic basis functions, 64 quadrature points.
        assert_eq!(corner_force_shape(3, 2), (81, 8, 64));
        assert_eq!(corner_force_shape(2, 1), (8, 1, 4));
        assert_eq!(corner_force_shape(3, 4), (375, 64, 512));
    }

    #[test]
    #[should_panic(expected = "dim")]
    fn shape_rejects_bad_dim() {
        corner_force_shape(4, 2);
    }

    #[test]
    fn uncached_search_returns_a_valid_choice() {
        // Tiny budget: correctness of the bookkeeping, not the timing.
        let c = tune_host_tiles_uncached(2, 1, 2, 1 << 12);
        assert!(c.index < CANDIDATES.len());
        assert_eq!(c.config, CANDIDATES[c.index]);
        assert_eq!(c.shape, (8, 1, 4));
        assert!(c.tiled_gflops > 0.0 && c.naive_gflops > 0.0);
        assert!(c.speedup > 0.0);
        assert_eq!(c.candidate_times_s.len(), CANDIDATES.len());
        assert!(c.candidate_times_s.iter().all(|&t| t.is_finite() && t > 0.0));
        let min = c.candidate_times_s.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(c.candidate_times_s[c.index], min);
    }

    #[test]
    fn cached_search_installs_and_replays() {
        let first = tune_host_tiles(2, 2);
        assert_eq!(tile::active_tile(), CANDIDATES[first.index]);
        let again = tune_host_tiles(2, 2);
        assert_eq!(again.index, first.index);
        assert_eq!(again.candidate_times_s, first.candidate_times_s);
        assert_eq!(again.device, crate::DEFAULT_DEVICE);
    }

    #[test]
    fn cache_is_keyed_by_device_id() {
        let a = tune_host_tiles_for("k20", 2, 1);
        // Same (dim, order), different device: a fresh search ran (the
        // timings are measured independently, so bitwise-equal candidate
        // vectors would be a one-in-never coincidence), and both entries
        // replay from their own cache slot afterwards.
        let b = tune_host_tiles_for("ampere", 2, 1);
        assert_eq!(a.device, "k20");
        assert_eq!(b.device, "ampere");
        assert_ne!(a.candidate_times_s, b.candidate_times_s);
        assert_eq!(tune_host_tiles_for("k20", 2, 1).candidate_times_s, a.candidate_times_s);
        assert_eq!(
            tune_host_tiles_for("ampere", 2, 1).candidate_times_s,
            b.candidate_times_s
        );
    }

    #[test]
    fn tuner_bridge_walks_the_candidate_grid() {
        let mut t = host_tile_tuner(1);
        let mut seen = 0;
        while !t.is_done() {
            assert_eq!(*t.current(), CANDIDATES[t.current_index()]);
            t.record(1.0 + seen as f64);
            seen += 1;
        }
        assert_eq!(seen, CANDIDATES.len());
        // First candidate got the fastest fake time.
        assert_eq!(t.best(), Some(&CANDIDATES[0]));
    }
}
