//! Property-based tests for the linear-algebra kernels.

use blast_la::dense::{gemm_nn, gemm_nt, gemv_n, gemv_t, naive, DMatrix};
use blast_la::tile::{self, Op};
use blast_la::{
    approx_eq, batched_gemm_nn, pcg_solve, sym_eig2, sym_eig3, svd2, svd3, BatchedMats,
    CsrBuilder, DiagPrecond, LuFactors, PcgOptions, SmallMat,
};
use proptest::prelude::*;

fn finite_small() -> impl Strategy<Value = f64> {
    // Keep magnitudes moderate so condition numbers stay testable.
    -50.0..50.0f64
}

fn mat2() -> impl Strategy<Value = SmallMat<2>> {
    proptest::array::uniform4(finite_small())
        .prop_map(|v| SmallMat::from_fn(|i, j| v[i * 2 + j]))
}

fn mat3() -> impl Strategy<Value = SmallMat<3>> {
    proptest::array::uniform9(finite_small())
        .prop_map(|v| SmallMat::from_fn(|i, j| v[i * 3 + j]))
}

proptest! {
    #[test]
    fn svd2_reconstructs(a in mat2()) {
        let s = svd2(&a);
        let r = s.reconstruct();
        let scale = a.norm().max(1.0);
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!((r[(i,j)] - a[(i,j)]).abs() <= 1e-9 * scale);
            }
        }
        prop_assert!(s.values[0] >= s.values[1]);
        prop_assert!(s.values[1] >= 0.0);
    }

    #[test]
    fn svd3_reconstructs(a in mat3()) {
        let s = svd3(&a);
        let r = s.reconstruct();
        let scale = a.norm().max(1.0);
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((r[(i,j)] - a[(i,j)]).abs() <= 1e-8 * scale);
            }
        }
        prop_assert!(s.values[0] >= s.values[1] && s.values[1] >= s.values[2]);
        prop_assert!(s.values[2] >= 0.0);
    }

    #[test]
    fn svd3_frobenius_invariant(a in mat3()) {
        // ||A||_F^2 = sum of squared singular values.
        let s = svd3(&a);
        let f2: f64 = s.values.iter().map(|x| x * x).sum();
        let n2 = a.ddot(&a);
        prop_assert!((f2 - n2).abs() <= 1e-8 * n2.max(1.0));
    }

    #[test]
    fn sym_eig2_reconstructs(v in proptest::array::uniform3(finite_small())) {
        let a = SmallMat::<2>::from_fn(|i, j| {
            let m = [[v[0], v[1]], [v[1], v[2]]];
            m[i][j]
        });
        let e = sym_eig2(&a);
        let r = e.reconstruct();
        let scale = a.norm().max(1.0);
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!((r[(i,j)] - a[(i,j)]).abs() <= 1e-10 * scale);
            }
        }
    }

    #[test]
    fn sym_eig3_reconstructs_and_orders(v in proptest::array::uniform6(finite_small())) {
        let rows = [[v[0], v[1], v[2]], [v[1], v[3], v[4]], [v[2], v[4], v[5]]];
        let a = SmallMat::<3>::from_fn(|i, j| rows[i][j]);
        let e = sym_eig3(&a);
        prop_assert!(e.values[0] >= e.values[1] && e.values[1] >= e.values[2]);
        let r = e.reconstruct();
        let scale = a.norm().max(1.0);
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((r[(i,j)] - a[(i,j)]).abs() <= 1e-9 * scale);
            }
        }
        // Trace invariant.
        let sum: f64 = e.values.iter().sum();
        prop_assert!((sum - a.trace()).abs() <= 1e-10 * scale);
    }

    #[test]
    fn adjugate3_identity(a in mat3()) {
        let p = a * a.adjugate();
        let d = a.det();
        let scale = a.norm().powi(3).max(1.0);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { d } else { 0.0 };
                prop_assert!((p[(i,j)] - expect).abs() <= 1e-9 * scale);
            }
        }
    }

    #[test]
    fn gemm_associativity_with_vector(
        a in proptest::collection::vec(finite_small(), 6),
        b in proptest::collection::vec(finite_small(), 6),
        x in proptest::array::uniform2(finite_small()),
    ) {
        // (A B) x == A (B x) for A (3x2), B (2x... ) wait shapes: A 3x2, B 2x2? keep simple:
        let am = DMatrix::from_col_major(3, 2, a);
        let bm = DMatrix::from_col_major(2, 3, b);
        // C = A*B (3x3), y1 = C * [x0,x1,x2]? dims mismatch; use x in R^3:
        let xv = [x[0], x[1], x[0] - x[1]];
        let mut c = DMatrix::zeros(3, 3);
        gemm_nn(1.0, &am, &bm, 0.0, &mut c);
        let mut y1 = [0.0; 3];
        gemv_n(1.0, &c, &xv, 0.0, &mut y1);
        let mut bx = [0.0; 2];
        gemv_n(1.0, &bm, &xv, 0.0, &mut bx);
        let mut y2 = [0.0; 3];
        gemv_n(1.0, &am, &bx, 0.0, &mut y2);
        for k in 0..3 {
            prop_assert!((y1[k] - y2[k]).abs() <= 1e-9 * y1[k].abs().max(1.0));
        }
    }

    #[test]
    fn gemm_nt_equals_nn_with_transpose(
        a in proptest::collection::vec(finite_small(), 8),
        b in proptest::collection::vec(finite_small(), 12),
    ) {
        let am = DMatrix::from_col_major(2, 4, a);
        let bm = DMatrix::from_col_major(3, 4, b);
        let mut c1 = DMatrix::zeros(2, 3);
        gemm_nt(1.0, &am, &bm, 0.0, &mut c1);
        let mut c2 = DMatrix::zeros(2, 3);
        gemm_nn(1.0, &am, &bm.transpose(), 0.0, &mut c2);
        for i in 0..2 {
            for j in 0..3 {
                prop_assert!(approx_eq(c1[(i,j)], c2[(i,j)], 1e-12));
            }
        }
    }

    #[test]
    fn gemv_t_is_adjoint_of_gemv_n(
        a in proptest::collection::vec(finite_small(), 12),
        x in proptest::array::uniform4(finite_small()),
        y in proptest::array::uniform3(finite_small()),
    ) {
        // <A x, y> == <x, A^T y>
        let am = DMatrix::from_col_major(3, 4, a);
        let mut ax = [0.0; 3];
        gemv_n(1.0, &am, &x, 0.0, &mut ax);
        let mut aty = [0.0; 4];
        gemv_t(1.0, &am, &y, 0.0, &mut aty);
        let lhs: f64 = ax.iter().zip(&y).map(|(u, v)| u * v).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(u, v)| u * v).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * lhs.abs().max(1.0));
    }

    #[test]
    fn lu_solve_residual_small(
        vals in proptest::collection::vec(finite_small(), 16),
        rhs in proptest::array::uniform4(finite_small()),
    ) {
        let mut a = DMatrix::from_col_major(4, 4, vals);
        // Diagonal boost guarantees nonsingularity.
        for i in 0..4 {
            let v = a[(i, i)];
            a[(i, i)] = v + 200.0;
        }
        let lu = LuFactors::factor(&a);
        prop_assert!(!lu.is_singular());
        let x = lu.solve(&rhs);
        let mut r = rhs;
        gemv_n(-1.0, &a, &x, 1.0, &mut r);
        let rn: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(rn <= 1e-9);
    }

    #[test]
    fn csr_spmv_matches_dense(
        entries in proptest::collection::vec((0usize..6, 0usize..6, finite_small()), 0..30),
        x in proptest::collection::vec(finite_small(), 6),
    ) {
        let mut b = CsrBuilder::new(6, 6);
        for &(i, j, v) in &entries {
            b.add(i, j, v);
        }
        let a = b.build();
        let y = a.spmv(&x);
        let dense = a.to_dense();
        let mut expect = vec![0.0; 6];
        gemv_n(1.0, &dense, &x, 0.0, &mut expect);
        for (u, v) in y.iter().zip(&expect) {
            prop_assert!((u - v).abs() <= 1e-10 * u.abs().max(1.0));
        }
    }

    #[test]
    fn pcg_solves_random_spd(
        vals in proptest::collection::vec(finite_small(), 25),
        rhs in proptest::collection::vec(finite_small(), 5),
    ) {
        // SPD via B^T B + 60 I, assembled into CSR.
        let b = DMatrix::from_col_major(5, 5, vals);
        let mut spd = DMatrix::zeros(5, 5);
        blast_la::dense::gemm_tn(1.0, &b, &b, 0.0, &mut spd);
        let mut builder = CsrBuilder::new(5, 5);
        for i in 0..5 {
            for j in 0..5 {
                let v = spd[(i, j)] + if i == j { 60.0 } else { 0.0 };
                builder.add(i, j, v);
            }
        }
        let a = builder.build();
        let mut x = vec![0.0; 5];
        let pre = DiagPrecond::from_diagonal(&a.diagonal());
        let res = pcg_solve(&mut (&a), &pre, &rhs, &mut x, &PcgOptions::default());
        prop_assert!(res.converged);
        let mut r = a.spmv(&x);
        for (ri, bi) in r.iter_mut().zip(&rhs) {
            *ri = bi - *ri;
        }
        let rn: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(rn <= 1e-7);
    }

    #[test]
    fn batched_gemm_matches_singleton_loop(
        data_a in proptest::collection::vec(finite_small(), 4 * 6),
        data_b in proptest::collection::vec(finite_small(), 4 * 6),
    ) {
        // 6 batches of 2x2 times 2x2.
        let a = BatchedMats::from_data(2, 2, 6, data_a);
        let b = BatchedMats::from_data(2, 2, 6, data_b);
        let mut c = BatchedMats::zeros(2, 2, 6);
        batched_gemm_nn(1.0, &a, &b, 0.0, &mut c);
        for z in 0..6 {
            let am = DMatrix::from_col_major(2, 2, a.mat(z).to_vec());
            let bm = DMatrix::from_col_major(2, 2, b.mat(z).to_vec());
            let mut cm = DMatrix::zeros(2, 2);
            gemm_nn(1.0, &am, &bm, 0.0, &mut cm);
            for i in 0..2 {
                for j in 0..2 {
                    prop_assert!(approx_eq(c.get(z, i, j), cm[(i, j)], 1e-12));
                }
            }
        }
    }

    #[test]
    fn tiled_gemm_matches_naive_and_is_config_invariant(
        dims in (1usize..26, 1usize..26, 1usize..26),
        coeff in (0usize..3, 0usize..3, 0usize..2),
        data_a in proptest::collection::vec(finite_small(), 26 * 26),
        data_b in proptest::collection::vec(finite_small(), 26 * 26),
        data_c in proptest::collection::vec(finite_small(), 26 * 26),
    ) {
        let (m, n, k) = dims;
        let alpha = [1.0, 0.0, 0.37][coeff.0];
        let beta = [0.0, 1.0, -0.625][coeff.1];
        let op_b = [Op::N, Op::T][coeff.2];
        // The N and T layouts of B hold the same k*n element count, so one
        // random buffer serves both operand shapes.
        let a = &data_a[..m * k];
        let b = &data_b[..n * k];

        let mut c_naive = data_c[..m * n].to_vec();
        match op_b {
            Op::N => naive::gemm_nn_raw(m, n, k, alpha, a, b, beta, &mut c_naive),
            Op::T => naive::gemm_nt_raw(m, n, k, alpha, a, b, beta, &mut c_naive),
        }

        // One candidate per micro-tile family: the tiled result must be
        // bitwise invariant across every blocking configuration, packed or
        // direct (each element's accumulation chain is identical).
        let mut ws = tile::GemmWorkspace::new();
        let mut c_ref: Option<Vec<f64>> = None;
        for &ci in &[0usize, 5, 8, 11] {
            let cfg = tile::CANDIDATES[ci];
            let mut c_direct = data_c[..m * n].to_vec();
            tile::gemm_tiled_direct(cfg, m, n, k, alpha, a, Op::N, b, op_b, beta, &mut c_direct);
            let mut c_packed = data_c[..m * n].to_vec();
            tile::gemm_tiled_packed(
                cfg, m, n, k, alpha, a, Op::N, b, op_b, beta, &mut c_packed, &mut ws,
            );
            for (d, p) in c_direct.iter().zip(&c_packed) {
                prop_assert!(d.to_bits() == p.to_bits(), "packed diverged from direct");
            }
            match &c_ref {
                None => c_ref = Some(c_direct),
                Some(r) => {
                    for (d, r) in c_direct.iter().zip(r) {
                        prop_assert!(
                            d.to_bits() == r.to_bits(),
                            "tile config {ci} changed the result"
                        );
                    }
                }
            }
        }

        // vs naive: bitwise on non-FMA hosts; ULP-bounded where the wide
        // clones contract multiply-add (see tile.rs determinism contract).
        let c_ref = c_ref.expect("at least one config ran");
        if tile::fma_active() {
            let tol = 1e-11 * (k as f64 + 1.0) * 2500.0;
            for (t, nv) in c_ref.iter().zip(&c_naive) {
                prop_assert!((t - nv).abs() <= tol, "tiled {t} vs naive {nv}");
            }
        } else {
            for (t, nv) in c_ref.iter().zip(&c_naive) {
                prop_assert!(t.to_bits() == nv.to_bits(), "tiled {t} vs naive {nv}");
            }
        }
    }

    #[test]
    fn blocked_gemv_bitwise_matches_naive(
        dims in (1usize..41, 1usize..41),
        coeff in (0usize..3, 0usize..3),
        data_a in proptest::collection::vec(finite_small(), 41 * 41),
        data_x in proptest::collection::vec(finite_small(), 41),
        data_y in proptest::collection::vec(finite_small(), 41),
    ) {
        let (m, n) = dims;
        let alpha = [1.0, 0.0, 0.37][coeff.0];
        let beta = [0.0, 1.0, -0.625][coeff.1];
        let a = &data_a[..m * n];
        let x = &data_x[..n];
        let mut y_naive = data_y[..m].to_vec();
        naive::gemv_n_raw(m, n, alpha, a, x, beta, &mut y_naive);
        let mut y_blocked = data_y[..m].to_vec();
        blast_la::dense::gemv_n_raw(m, n, alpha, a, x, beta, &mut y_blocked);
        // The blocked GEMV preserves the naive accumulation order exactly,
        // so equality is bitwise on every host.
        for (u, v) in y_blocked.iter().zip(&y_naive) {
            prop_assert!(u.to_bits() == v.to_bits(), "gemv {u} vs {v}");
        }
    }

    #[test]
    fn small_inverse_roundtrip_2(a in mat2()) {
        prop_assume!(a.det().abs() > 1e-3);
        let p = a * a.inverse();
        for i in 0..2 {
            for j in 0..2 {
                let id = if i == j { 1.0 } else { 0.0 };
                prop_assert!((p[(i,j)] - id).abs() <= 1e-6);
            }
        }
    }

    #[test]
    fn small_inverse_roundtrip_3(a in mat3()) {
        prop_assume!(a.det().abs() > 1e-2);
        let p = a * a.inverse();
        let cond_guard = a.norm().powi(2) / a.det().abs();
        prop_assume!(cond_guard < 1e6);
        for i in 0..3 {
            for j in 0..3 {
                let id = if i == j { 1.0 } else { 0.0 };
                prop_assert!((p[(i,j)] - id).abs() <= 1e-6);
            }
        }
    }
}

/// Table-3 operand shapes (the `F_z`-style NT products, Q1-Q4): the tiled
/// path must agree with naive on exactly the shapes the solver runs,
/// including the ragged register-tile edges they produce.
#[test]
fn tiled_gemm_matches_naive_on_table3_shapes() {
    let shapes =
        [(24usize, 1usize, 8usize), (50, 16, 36), (81, 8, 64), (192, 27, 125), (375, 64, 216)];
    let mut ws = tile::GemmWorkspace::new();
    for &(m, n, k) in &shapes {
        let a: Vec<f64> =
            (0..m * k).map(|i| ((i * 2654435761 % 1000) as f64 - 500.0) * 1e-3).collect();
        let b: Vec<f64> =
            (0..n * k).map(|i| ((i * 40503 % 1000) as f64 - 500.0) * 1e-3).collect();
        let mut c_naive = vec![0.0; m * n];
        naive::gemm_nt_raw(m, n, k, 1.0, &a, &b, 0.0, &mut c_naive);
        let tol = 1e-12 * (k as f64 + 1.0);
        for &cfg in &tile::CANDIDATES {
            let mut c_direct = vec![0.0; m * n];
            tile::gemm_tiled_direct(cfg, m, n, k, 1.0, &a, Op::N, &b, Op::T, 0.0, &mut c_direct);
            let mut c_packed = vec![0.0; m * n];
            tile::gemm_tiled_packed(
                cfg, m, n, k, 1.0, &a, Op::N, &b, Op::T, 0.0, &mut c_packed, &mut ws,
            );
            for ((d, p), nv) in c_direct.iter().zip(&c_packed).zip(&c_naive) {
                assert_eq!(d.to_bits(), p.to_bits(), "packed vs direct at {m}x{n}x{k}");
                if tile::fma_active() {
                    assert!((d - nv).abs() <= tol, "{d} vs naive {nv} at {m}x{n}x{k}");
                } else {
                    assert_eq!(d.to_bits(), nv.to_bits(), "{d} vs naive {nv} at {m}x{n}x{k}");
                }
            }
        }
    }
}
