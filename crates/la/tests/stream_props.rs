//! Property tests pinning the fused streaming kernels to the unfused
//! oracle.
//!
//! The contract (see `stream`'s module docs): every fused kernel computes
//! the *same defined reduction* — fixed 64-block grid, fixed 8-lane
//! accumulator structure — as its unfused counterpart, so
//!
//! - fused vs unfused-dispatched results are **bitwise identical** in all
//!   regimes (both sides take the same SIMD path);
//! - fused vs the serial scalar `stream::reference` oracle is bitwise
//!   identical on hosts without FMA dispatch, and ULP-bounded when the
//!   dispatched path contracts multiply-adds;
//! - results are invariant under the pool thread count and under all four
//!   `StreamVariant` candidates.
//!
//! Exercised across proptest-random sizes, Table-3-like solver sizes, and
//! ragged sizes straddling the lane width and the block grid.

use blast_la::stream::{self, CANDIDATES};
use blast_la::{
    pcg_solve_ws, pcg_solve_ws_reference, CsrBuilder, CsrMatrix, DiagPrecond, PcgOptions,
    PcgWorkspace,
};
use proptest::prelude::*;

/// Deterministic pseudo-random fill (golden-ratio hashing).
fn vecs(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_add(seed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn banded(n: usize, half_band: usize) -> CsrMatrix {
    let mut b = CsrBuilder::new(n, n);
    for i in 0..n {
        b.add(i, i, 2.0 * half_band as f64 + 1.0);
        for o in 1..=half_band {
            if i >= o {
                b.add(i, i - o, -0.5);
            }
            if i + o < n {
                b.add(i, i + o, -0.5);
            }
        }
    }
    b.build()
}

/// Relative tolerance for the FMA-contracted dispatch vs the scalar
/// oracle: a handful of ULPs per reduction term.
const FMA_TOL: f64 = 1e-13;

fn close(a: f64, b: f64) -> bool {
    if stream::fma_active() {
        (a - b).abs() <= FMA_TOL * a.abs().max(b.abs()).max(1.0)
    } else {
        a.to_bits() == b.to_bits()
    }
}

fn close_slice(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| close(x, y))
}

/// Ragged sizes straddling the 8-lane width, the 64-block grid, and the
/// parallel threshold — plus Table-3-like momentum-system sizes.
const SIZES: &[usize] = &[0, 1, 7, 8, 9, 63, 64, 65, 511, 513, 4095, 4097, 6000];

#[test]
fn fused_kernels_match_reference_across_fixed_sizes() {
    for &n in SIZES {
        let p = vecs(n, 1);
        let ap = vecs(n, 2);
        let minv: Vec<f64> = vecs(n, 3).iter().map(|v| v.abs() + 0.5).collect();

        assert!(close(stream::dot(&p, &ap), stream::reference::dot(&p, &ap)), "dot n={n}");
        assert!(close(stream::nrm2(&p), stream::reference::nrm2(&p)), "nrm2 n={n}");

        let mut x_f = vecs(n, 4);
        let mut r_f = vecs(n, 5);
        let mut x_o = x_f.clone();
        let mut r_o = r_f.clone();
        let s_f = stream::axpy2_nrm2(0.37, &p, &ap, &mut x_f, &mut r_f);
        let s_o = stream::reference::axpy2_nrm2(0.37, &p, &ap, &mut x_o, &mut r_o);
        assert!(close(s_f, s_o), "axpy2_nrm2 sum n={n}");
        assert!(close_slice(&x_f, &x_o) && close_slice(&r_f, &r_o), "axpy2_nrm2 vecs n={n}");

        let mut p_f = vecs(n, 6);
        let mut p_o = p_f.clone();
        let rz_f = stream::precond_dot_update(&minv, &r_f, Some(1.25), &mut p_f);
        let rz_o = stream::reference::precond_dot_update(&minv, &r_o, Some(1.25), &mut p_o);
        assert!(close(rz_f, rz_o), "precond rz n={n}");
        assert!(close_slice(&p_f, &p_o), "precond p n={n}");

        if n > 0 {
            let a = banded(n, 3.min(n - 1));
            let mut y_f = vec![0.0; n];
            let mut y_o = vec![0.0; n];
            let d_f = stream::spmv_dot(&a, &p, &mut y_f);
            let d_o = stream::reference::spmv_dot(&a, &p, &mut y_o);
            assert!(close(d_f, d_o), "spmv_dot n={n}");
            assert!(close_slice(&y_f, &y_o), "spmv n={n}");
        }
    }
}

#[test]
fn fused_results_are_variant_and_thread_invariant() {
    let n = 6000;
    let p = vecs(n, 10);
    let ap = vecs(n, 11);
    let before = stream::active_stream_index();
    let run = || {
        let mut x = vecs(n, 12);
        let mut r = vecs(n, 13);
        let s = stream::axpy2_nrm2(0.61, &p, &ap, &mut x, &mut r);
        let d = stream::dot(&x, &r);
        (s.to_bits(), d.to_bits(), x, r)
    };
    let baseline = run();
    for idx in 0..CANDIDATES.len() {
        stream::set_active_stream_index(idx);
        for threads in [1usize, 2, 4, 8] {
            rayon::set_active_threads(threads);
            let got = run();
            assert_eq!(got.0, baseline.0, "sum variant {idx} threads {threads}");
            assert_eq!(got.1, baseline.1, "dot variant {idx} threads {threads}");
            assert_eq!(got.2, baseline.2, "x variant {idx} threads {threads}");
            assert_eq!(got.3, baseline.3, "r variant {idx} threads {threads}");
        }
    }
    rayon::set_active_threads(0);
    stream::set_active_stream_index(before);
}

#[test]
fn fused_solver_matches_reference_solver_on_table3_like_systems() {
    // Whole-solver pin: `pcg_solve_ws` (fused streaming path) against
    // `pcg_solve_ws_reference` (serial scalar oracle) on systems shaped
    // like the momentum solves (banded SPD, FEM-like density).
    for &(n, half_band) in &[(500usize, 2usize), (1200, 9), (4097, 27)] {
        let a = banded(n, half_band);
        let pre = DiagPrecond::from_diagonal(&a.diagonal());
        let b = vecs(n, 21);
        let opts = PcgOptions { rel_tol: 1e-10, ..Default::default() };
        let mut ws = PcgWorkspace::new();

        let mut x_f = vec![0.0; n];
        let res_f = pcg_solve_ws(&mut (&a), &pre, &b, &mut x_f, &opts, &mut ws);
        let mut x_o = vec![0.0; n];
        let res_o = pcg_solve_ws_reference(&mut (&a), &pre, &b, &mut x_o, &opts, &mut ws);

        assert!(res_f.converged && res_o.converged, "n={n}");
        if stream::fma_active() {
            // Contracted rounding can shift the convergence trajectory by
            // an iteration; the answers still agree to solver tolerance.
            assert!(
                (res_f.iterations as i64 - res_o.iterations as i64).abs() <= 2,
                "n={n}: {} vs {} iterations",
                res_f.iterations,
                res_o.iterations
            );
            for (f, o) in x_f.iter().zip(&x_o) {
                assert!((f - o).abs() <= 1e-8 * f.abs().max(o.abs()).max(1.0), "n={n}");
            }
        } else {
            assert_eq!(res_f.iterations, res_o.iterations, "n={n}");
            assert_eq!(x_f, x_o, "n={n}");
        }
    }
}

proptest! {
    #[test]
    fn prop_fused_dot_matches_reference(n in 0usize..3000, seed in 0u64..1000) {
        let x = vecs(n, seed);
        let y = vecs(n, seed.wrapping_add(1));
        prop_assert!(close(stream::dot(&x, &y), stream::reference::dot(&x, &y)));
    }

    #[test]
    fn prop_fused_axpy2_matches_two_axpys_and_dot(
        n in 1usize..2000,
        seed in 0u64..500,
        alpha in -2.0f64..2.0,
    ) {
        let p = vecs(n, seed);
        let ap = vecs(n, seed.wrapping_add(7));
        let mut x_f = vecs(n, seed.wrapping_add(14));
        let mut r_f = vecs(n, seed.wrapping_add(21));
        let mut x_u = x_f.clone();
        let mut r_u = r_f.clone();

        let sumsq = stream::axpy2_nrm2(alpha, &p, &ap, &mut x_f, &mut r_f);
        // Unfused equivalent through the *dispatched* kernels: always
        // bitwise, FMA or not — fusion must not change the arithmetic.
        stream::axpy(alpha, &p, &mut x_u);
        stream::axpy(-alpha, &ap, &mut r_u);
        let rr = stream::dot(&r_u, &r_u);

        prop_assert_eq!(x_f, x_u);
        prop_assert_eq!(r_f, r_u);
        prop_assert_eq!(sumsq.to_bits(), rr.to_bits());
    }

    #[test]
    fn prop_fused_spmv_dot_matches_spmv_then_dot(
        n in 1usize..800,
        half_band in 0usize..6,
        seed in 0u64..500,
    ) {
        let hb = half_band.min(n - 1);
        let a = banded(n, hb);
        let x = vecs(n, seed);
        let mut y_f = vec![0.0; n];
        let mut y_u = vec![0.0; n];

        let d_f = stream::spmv_dot(&a, &x, &mut y_f);
        stream::spmv(&a, &x, &mut y_u);
        let d_u = stream::dot(&x, &y_u);

        prop_assert_eq!(y_f, y_u);
        prop_assert_eq!(d_f.to_bits(), d_u.to_bits());
    }
}
