//! Property tests for the ABFT-checksummed GEMM path (satellite of the
//! SDC-defense PR): random single-bit flips in the A/B/C panels are
//! detected by the Huang–Abraham column identity, and the checksummed
//! path is bitwise-identical to the plain tiled path when no fault lands.

use std::sync::Mutex;

use blast_la::abft::{self, check_columns, column_sums};
use blast_la::tile::{self, Op};
use blast_la::AbftMode;
use proptest::prelude::*;

/// Serializes the tests that touch the process-global ABFT mode / armed
/// flip so parallel test threads cannot interleave them.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Column-major reference multiply `C = A (m x k) * B (k x n)`.
fn naive_gemm(m: usize, n: usize, k: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut c = vec![0.0; m * n];
    for j in 0..n {
        for p in 0..k {
            let bv = b[p + j * k];
            for i in 0..m {
                c[i + j * m] += a[i + p * m] * bv;
            }
        }
    }
    c
}

/// Flips `bit` of the largest-magnitude entry (the flip model's
/// "significant victim" — a flip on a denormal nobody reads is outside
/// the threat model).
fn flip_largest(buf: &mut [f64], bit: u32) {
    let (i, _) = buf
        .iter()
        .enumerate()
        .max_by(|(_, x), (_, y)| x.abs().total_cmp(&y.abs()))
        .expect("non-empty panel");
    buf[i] = f64::from_bits(buf[i].to_bits() ^ (1u64 << bit));
}

/// Entries bounded away from zero so every panel has a significant
/// victim and products cannot vanish below the rounding band.
fn entry() -> impl Strategy<Value = f64> {
    (-4.0..4.0f64).prop_map(|x| if x < 0.0 { x - 0.25 } else { x + 0.25 })
}

type Panel = ((usize, usize, usize), Vec<f64>, Vec<f64>);

/// Dims up to 6x6x6 plus max-size operand pools (sliced to `m*k` / `k*n`
/// per case — the shim has no dependent generation).
fn panels() -> impl Strategy<Value = Panel> {
    (
        (1usize..=6, 1usize..=6, 1usize..=6),
        proptest::collection::vec(entry(), 36),
        proptest::collection::vec(entry(), 36),
    )
}

fn run_check(
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    b: &[f64],
    c_post: &[f64],
) -> Option<abft::AbftViolation> {
    let pre = vec![0.0; n];
    let pre_abs = vec![0.0; n];
    let mut w = vec![0.0; k];
    let mut w_abs = vec![0.0; k];
    check_columns(
        m, n, k, 1.0, a, Op::N, b, Op::N, 0.0, &pre, &pre_abs, c_post, &mut w, &mut w_abs,
    )
}

proptest! {
    /// No fault: the column identity holds to rounding for every shape.
    #[test]
    fn clean_multiply_passes(panel in panels()) {
        let ((m, n, k), a_full, b_full) = panel;
        let (a, b) = (a_full[..m * k].to_vec(), b_full[..k * n].to_vec());
        let c = naive_gemm(m, n, k, &a, &b);
        prop_assert!(run_check(m, n, k, &a, &b, &c).is_none());
    }

    /// A single bit flip in the *result* panel (post-multiply) is caught.
    #[test]
    fn flip_in_c_detected(panel in panels(), bit in 44u32..=55) {
        let ((m, n, k), a_full, b_full) = panel;
        let (a, b) = (a_full[..m * k].to_vec(), b_full[..k * n].to_vec());
        let mut c = naive_gemm(m, n, k, &a, &b);
        flip_largest(&mut c, bit);
        let v = run_check(m, n, k, &a, &b, &c);
        prop_assert!(v.is_some(), "C flip at bit {bit} escaped");
        let v = v.unwrap();
        prop_assert!(v.measured > v.tolerance);
    }

    /// A flip in the A operand *after* checksum capture (the multiply
    /// consumes the corrupt panel, the verifier holds the clean one).
    #[test]
    fn flip_in_a_detected(panel in panels(), bit in 44u32..=55) {
        let ((m, n, k), a_full, b_full) = panel;
        let (a, b) = (a_full[..m * k].to_vec(), b_full[..k * n].to_vec());
        let mut a_corrupt = a.clone();
        flip_largest(&mut a_corrupt, bit);
        let c = naive_gemm(m, n, k, &a_corrupt, &b);
        prop_assert!(run_check(m, n, k, &a, &b, &c).is_some(), "A flip at bit {bit} escaped");
    }

    /// Same for the B operand.
    #[test]
    fn flip_in_b_detected(panel in panels(), bit in 44u32..=55) {
        let ((m, n, k), a_full, b_full) = panel;
        let (a, b) = (a_full[..m * k].to_vec(), b_full[..k * n].to_vec());
        let mut b_corrupt = b.clone();
        flip_largest(&mut b_corrupt, bit);
        let c = naive_gemm(m, n, k, &a, &b_corrupt);
        prop_assert!(run_check(m, n, k, &a, &b, &c).is_some(), "B flip at bit {bit} escaped");
    }

    /// The checksummed path returns bitwise-identical results to the
    /// plain tiled path when no fault is armed — verification reads, it
    /// never rewrites.
    #[test]
    fn verify_mode_is_bitwise_identical(panel in panels()) {
        let ((m, n, k), a_full, b_full) = panel;
        let (a, b) = (a_full[..m * k].to_vec(), b_full[..k * n].to_vec());
        let mut c_plain = vec![0.5; m * n];
        tile::gemm(m, n, k, 1.0, &a, Op::N, &b, Op::N, 0.5, &mut c_plain);

        let _guard = MODE_LOCK.lock().unwrap();
        abft::set_mode(AbftMode::Verify);
        let mut c_checked = vec![0.5; m * n];
        abft::gemm_checked(m, n, k, 1.0, &a, Op::N, &b, Op::N, 0.5, &mut c_checked);
        abft::set_mode(AbftMode::Off);
        prop_assert!(abft::take_violation().is_none(), "clean multiply flagged");

        for (p, q) in c_plain.iter().zip(&c_checked) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    /// End-to-end through `gemm_checked`: an armed single-bit flip lands
    /// in the output panel and the post-multiply verification records the
    /// violation for the solver to poll.
    #[test]
    fn armed_flip_through_gemm_checked(panel in panels(), bit in 44u32..=55, lane in 0u64..1_000_000) {
        let ((m, n, k), a_full, b_full) = panel;
        let (a, b) = (a_full[..m * k].to_vec(), b_full[..k * n].to_vec());
        let _guard = MODE_LOCK.lock().unwrap();
        abft::set_mode(AbftMode::Verify);
        abft::take_violation();
        abft::arm_flip(lane, bit);
        let mut c = vec![0.0; m * n];
        abft::gemm_checked(m, n, k, 1.0, &a, Op::N, &b, Op::N, 0.0, &mut c);
        let violation = abft::take_violation();
        abft::disarm();
        abft::set_mode(AbftMode::Off);
        prop_assert!(violation.is_some(), "armed flip (bit {bit}) escaped the checksums");
    }
}

#[test]
fn column_sums_helper_matches_naive() {
    let c = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3 x 2 column-major
    assert_eq!(column_sums(3, 2, &c), vec![6.0, 15.0]);
}
