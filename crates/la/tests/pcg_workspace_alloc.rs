//! Regression for the workspace-thrash bug: `PcgWorkspace` used to resize
//! its four iteration vectors whenever `len != n`, so a caller alternating
//! between two problem sizes (e.g. a multi-tenant worker interleaving a 2D
//! and a 3D job) reallocated every vector on **every** solve. The
//! workspace is now grow-only — after one warm-up at each size, alternating
//! solves perform zero heap allocations. Asserted with a counting global
//! allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use blast_la::{pcg_solve_ws, CsrBuilder, CsrMatrix, DiagPrecond, PcgOptions, PcgWorkspace};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn heap_ops() -> u64 {
    ALLOCS.load(Ordering::Relaxed) + REALLOCS.load(Ordering::Relaxed)
}

fn laplacian(n: usize) -> CsrMatrix {
    let mut b = CsrBuilder::new(n, n);
    for i in 0..n {
        b.add(i, i, 2.0);
        if i > 0 {
            b.add(i, i - 1, -1.0);
        }
        if i + 1 < n {
            b.add(i, i + 1, -1.0);
        }
    }
    b.build()
}

#[test]
fn alternating_problem_sizes_do_not_thrash_the_workspace() {
    // Serial drive: the pool's scoped-thread spawns have their own
    // allocation cost model; the contract under test is the workspace's.
    rayon::set_active_threads(1);

    let sizes = [120usize, 64];
    let systems: Vec<(CsrMatrix, DiagPrecond, Vec<f64>)> = sizes
        .iter()
        .map(|&n| {
            let a = laplacian(n);
            let pre = DiagPrecond::from_diagonal(&a.diagonal());
            let b: Vec<f64> = (0..n).map(|i| ((i + 1) as f64 * 0.11).sin()).collect();
            (a, pre, b)
        })
        .collect();
    let opts = PcgOptions::default();
    let mut ws = PcgWorkspace::new();
    let mut x = vec![0.0; 120];

    // Warm-up: one solve at each size grows the workspace to the
    // high-water mark (120) and exercises both slice lengths once.
    for (a, pre, b) in &systems {
        let n = b.len();
        x[..n].fill(0.0);
        let res = pcg_solve_ws(&mut (&*a), pre, b, &mut x[..n], &opts, &mut ws);
        assert!(res.converged);
    }
    assert_eq!(ws.capacity(), 120);

    // Measured window: ten alternations between the two sizes must not
    // touch the heap (the old `len != n` resize reallocated all four
    // vectors on every single one of these solves).
    let before = heap_ops();
    for round in 0..10 {
        let (a, pre, b) = &systems[round % systems.len()];
        let n = b.len();
        x[..n].fill(0.0);
        let res = pcg_solve_ws(&mut (&*a), pre, b, &mut x[..n], &opts, &mut ws);
        assert!(res.converged);
    }
    let delta = heap_ops() - before;
    assert_eq!(delta, 0, "alternating solves performed {delta} heap ops");
    assert_eq!(ws.capacity(), 120, "workspace must stay at the high-water mark");

    rayon::set_active_threads(0);
}
