//! Quick single-thread GEMM throughput probe on the paper's Table-3 shapes.
//!
//! Run with `cargo run -p blast-la --release --example tile_probe`.

use blast_la::dense::naive;
use blast_la::tile::{self, Op};
use std::time::Instant;

fn fill(buf: &mut [f64], seed: usize) {
    for (i, v) in buf.iter_mut().enumerate() {
        let s = i.wrapping_mul(2654435761).wrapping_add(seed) % 1000;
        *v = (s as f64 - 500.0) * 1e-3;
    }
}

/// Min-of-samples timing: robust against steal-time noise on shared cores.
fn time(mut f: impl FnMut()) -> f64 {
    // Calibrate the inner repeat count to ~1 ms per sample.
    f();
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let inner = (1e-3 / once).ceil().max(1.0) as u32;
    let mut best = f64::INFINITY;
    for _ in 0..25 {
        let t0 = Instant::now();
        for _ in 0..inner {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / inner as f64);
    }
    best
}

fn main() {
    // (m, n, k) for the F_z = B_kin^T * sigma-like NT products, Q1..Q4 3D
    // plus the 2D Q4 shape.
    let shapes = [
        (24usize, 1usize, 8usize, "Q1 3D"),
        (50, 16, 36, "Q4 2D"),
        (81, 8, 64, "Q2 3D"),
        (192, 27, 125, "Q3 3D"),
        (375, 64, 216, "Q4 3D"),
    ];
    for &(m, n, k, label) in &shapes {
        let mut a = vec![0.0; m * k];
        let mut b = vec![0.0; n * k]; // B^T operand: n x k stored k-major per row
        let mut c = vec![0.0; m * n];
        fill(&mut a, 1);
        fill(&mut b, 2);
        let flops = (2 * m * n * k) as f64;

        let tn = time(|| naive::gemm_nt_raw(m, n, k, 1.0, &a, &b, 0.0, &mut c));
        println!("{label:6} {m}x{n}x{k}: naive {:.2} GF", flops / tn / 1e9);
        let mut ws = tile::GemmWorkspace::default();
        for (ci, cfg) in tile::CANDIDATES.iter().enumerate() {
            let td = time(|| {
                tile::gemm_tiled_direct(*cfg, m, n, k, 1.0, &a, Op::N, &b, Op::T, 0.0, &mut c)
            });
            let tp = time(|| {
                tile::gemm_tiled_packed(
                    *cfg,
                    m,
                    n,
                    k,
                    1.0,
                    &a,
                    Op::N,
                    &b,
                    Op::T,
                    0.0,
                    &mut c,
                    &mut ws,
                )
            });
            println!(
                "  cfg{ci} {:?}/kc{}: direct {:.2} GF ({:.2}x) | packed {:.2} GF ({:.2}x)",
                cfg.micro,
                cfg.kc,
                flops / td / 1e9,
                tn / td,
                flops / tp / 1e9,
                tn / tp,
            );
        }
    }
}
