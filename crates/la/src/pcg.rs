//! Preconditioned conjugate gradient with a diagonal (Jacobi) preconditioner.
//!
//! The paper solves the momentum equation `M_V dv/dt = -F·1` with "a simple
//! PCG solver" (step 6 of the algorithm) — diagonal preconditioner, one SpMV
//! and two dot products per iteration. Kernel 9 is this same loop built from
//! CUSPARSE SpMV + `cublasDdot`; our GPU path reuses this module with the
//! operator supplied by the simulated-GPU SpMV so the iteration structure
//! (and therefore the SpMV call count that dominates Fig. 6) is identical.

use crate::csr::CsrMatrix;
use crate::stream;

/// Abstract SPD operator `y = A x` for the CG loop.
///
/// Implemented by [`CsrMatrix`] directly and by the simulated-GPU SpMV
/// kernel, so one PCG drives both the CPU and GPU paths.
pub trait LinearOperator {
    /// Problem dimension.
    fn dim(&self) -> usize;
    /// `y = A x`; `y` is pre-sized to `dim()`.
    fn apply(&mut self, x: &[f64], y: &mut [f64]);
    /// Fused `y = A x` returning `x·y` from the same sweep. The default
    /// runs [`apply`](Self::apply) followed by a streaming dot — exactly
    /// the unfused sequence, so overriding with a genuinely fused kernel
    /// (as [`CsrMatrix`] does) must not change the bits.
    fn apply_dot(&mut self, x: &[f64], y: &mut [f64]) -> f64 {
        self.apply(x, y);
        stream::dot(x, y)
    }
    /// Scalar-reference apply for the [`pcg_solve_ws_reference`] oracle.
    /// Defaults to [`apply`](Self::apply); [`CsrMatrix`] pins it to the
    /// serial `spmv_into`.
    fn apply_reference(&mut self, x: &[f64], y: &mut [f64]) {
        self.apply(x, y);
    }
}

impl LinearOperator for &CsrMatrix {
    fn dim(&self) -> usize {
        self.rows()
    }
    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        stream::spmv(self, x, y);
    }
    fn apply_dot(&mut self, x: &[f64], y: &mut [f64]) -> f64 {
        stream::spmv_dot(self, x, y)
    }
    fn apply_reference(&mut self, x: &[f64], y: &mut [f64]) {
        self.spmv_into(x, y);
    }
}

/// Diagonal (Jacobi) preconditioner `M^{-1} = diag(a_ii)^{-1}`.
#[derive(Clone, Debug)]
pub struct DiagPrecond {
    inv_diag: Vec<f64>,
}

impl DiagPrecond {
    /// Builds from the matrix diagonal. Zero diagonal entries (possible for
    /// constrained DOFs) fall back to 1.0 so they act as identity.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let inv_diag = diag
            .iter()
            .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
            .collect();
        Self { inv_diag }
    }

    /// Identity preconditioner (plain CG).
    pub fn identity(n: usize) -> Self {
        Self { inv_diag: vec![1.0; n] }
    }

    /// `z = M^{-1} r`.
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.inv_diag.len());
        for ((zi, &ri), &mi) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = mi * ri;
        }
    }

    /// The stored inverse diagonal (the fused `precond_dot_update` kernel
    /// recomputes `z = M^{-1} r` from it on the fly instead of storing `z`).
    pub fn inv_diag(&self) -> &[f64] {
        &self.inv_diag
    }
}

/// PCG stopping options.
#[derive(Clone, Copy, Debug)]
pub struct PcgOptions {
    /// Relative residual tolerance `|r| <= rel_tol * |b|`.
    pub rel_tol: f64,
    /// Absolute residual floor (stops early for `b ~ 0`).
    pub abs_tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for PcgOptions {
    fn default() -> Self {
        // BLAST's defaults: tight tolerance so that timestep-to-timestep
        // energy bookkeeping is not polluted by solver error.
        Self { rel_tol: 1e-12, abs_tol: 1e-300, max_iter: 2000 }
    }
}

/// PCG outcome.
#[derive(Clone, Debug)]
pub struct PcgResult {
    /// Whether the tolerance was met within `max_iter`.
    pub converged: bool,
    /// Iterations performed (equals SpMV count).
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
}

/// Reusable iteration vectors for [`pcg_solve_ws`]. **Grow-only**: the
/// backing vectors track the high-water problem size and each solve takes
/// `[..n]` slices, so a worker alternating between two mesh sizes performs
/// no heap allocation after warm-up (the steady-state zero-alloc contract;
/// the old `len != n` resize reallocated all four vectors on every
/// alternation).
#[derive(Clone, Debug, Default)]
pub struct PcgWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl PcgWorkspace {
    /// Empty workspace (vectors grow on first solve).
    pub fn new() -> Self {
        Self::default()
    }

    /// High-water capacity in elements (tests assert the grow-only
    /// behavior through this).
    pub fn capacity(&self) -> usize {
        self.r.len()
    }

    /// Grow-only slices for an `n`-dimensional solve.
    fn vectors(&mut self, n: usize) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
        if self.r.len() < n {
            self.r.resize(n, 0.0);
            self.z.resize(n, 0.0);
            self.p.resize(n, 0.0);
            self.ap.resize(n, 0.0);
        }
        (&mut self.r[..n], &mut self.z[..n], &mut self.p[..n], &mut self.ap[..n])
    }
}

/// Solves `A x = b` by preconditioned CG. `x` holds the initial guess on
/// entry and the solution on exit.
///
/// The operator must be symmetric positive definite; with an indefinite
/// operator the iteration may stagnate, which is reported via
/// `converged = false` rather than a panic.
pub fn pcg_solve<Op: LinearOperator>(
    op: &mut Op,
    precond: &DiagPrecond,
    b: &[f64],
    x: &mut [f64],
    opts: &PcgOptions,
) -> PcgResult {
    pcg_solve_ws(op, precond, b, x, opts, &mut PcgWorkspace::new())
}

/// [`pcg_solve`] with caller-provided iteration vectors (allocation-free
/// once the workspace has warmed up).
///
/// Dispatches on the active [`stream::StreamVariant`]: the fused path runs
/// three single-pass kernels per iteration (`spmv_dot`, `axpy2_nrm2`,
/// `precond_dot_update`); the unfused path runs one streaming sweep per
/// BLAS-1 op. Both produce **bitwise-identical** trajectories (see the
/// `stream` module docs), so the autotuner's choice is purely about memory
/// transits.
pub fn pcg_solve_ws<Op: LinearOperator>(
    op: &mut Op,
    precond: &DiagPrecond,
    b: &[f64],
    x: &mut [f64],
    opts: &PcgOptions,
    ws: &mut PcgWorkspace,
) -> PcgResult {
    if stream::active_stream().fused {
        pcg_solve_fused(op, precond, b, x, opts, ws)
    } else {
        pcg_solve_unfused(op, precond, b, x, opts, ws)
    }
}

/// The fused loop: 3 kernel sweeps per iteration instead of ~8.
fn pcg_solve_fused<Op: LinearOperator>(
    op: &mut Op,
    precond: &DiagPrecond,
    b: &[f64],
    x: &mut [f64],
    opts: &PcgOptions,
    ws: &mut PcgWorkspace,
) -> PcgResult {
    let n = op.dim();
    assert_eq!(b.len(), n, "pcg rhs length mismatch");
    assert_eq!(x.len(), n, "pcg solution length mismatch");
    let minv = precond.inv_diag();
    assert_eq!(minv.len(), n, "pcg preconditioner dimension mismatch");

    let (r, _z, p, ap) = ws.vectors(n);

    // r = b - A x
    op.apply(x, r);
    for (ri, &bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }

    let bnorm = stream::nrm2(b).max(opts.abs_tol);
    let target = (opts.rel_tol * bnorm).max(opts.abs_tol);

    let mut rnorm = stream::nrm2(r);
    if rnorm <= target {
        return PcgResult { converged: true, iterations: 0, residual: rnorm };
    }

    // Jacobi apply + r·z + p = z, one sweep, z never materialized.
    let mut rz = stream::precond_dot_update(minv, r, None, p);

    for iter in 1..=opts.max_iter {
        // SpMV producing p·Ap in the same sweep.
        let pap = op.apply_dot(p, ap);
        if pap <= 0.0 || !pap.is_finite() {
            // Operator not SPD (or breakdown): report non-convergence.
            return PcgResult { converged: false, iterations: iter, residual: rnorm };
        }
        let alpha = rz / pap;
        // x += alpha p; r -= alpha Ap; |r|^2 — one sweep.
        let sumsq = stream::axpy2_nrm2(alpha, p, ap, x, r);
        rnorm = stream::nrm2_from_sumsq(sumsq, r);
        if rnorm <= target {
            return PcgResult { converged: true, iterations: iter, residual: rnorm };
        }
        // Jacobi apply + r·z + direction update — one sweep.
        rz = stream::precond_dot_update(minv, r, Some(rz), p);
    }
    PcgResult { converged: false, iterations: opts.max_iter, residual: rnorm }
}

/// The unfused loop: one streaming sweep per op (the launch-per-op
/// baseline the bench gate compares against).
fn pcg_solve_unfused<Op: LinearOperator>(
    op: &mut Op,
    precond: &DiagPrecond,
    b: &[f64],
    x: &mut [f64],
    opts: &PcgOptions,
    ws: &mut PcgWorkspace,
) -> PcgResult {
    let n = op.dim();
    assert_eq!(b.len(), n, "pcg rhs length mismatch");
    assert_eq!(x.len(), n, "pcg solution length mismatch");

    let (r, z, p, ap) = ws.vectors(n);

    // r = b - A x
    op.apply(x, r);
    for (ri, &bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }

    let bnorm = stream::nrm2(b).max(opts.abs_tol);
    let target = (opts.rel_tol * bnorm).max(opts.abs_tol);

    let mut rnorm = stream::nrm2(r);
    if rnorm <= target {
        return PcgResult { converged: true, iterations: 0, residual: rnorm };
    }

    precond.apply(r, z);
    p.copy_from_slice(z);
    let mut rz = stream::dot(r, z);

    for iter in 1..=opts.max_iter {
        op.apply(p, ap);
        let pap = stream::dot(p, ap);
        if pap <= 0.0 || !pap.is_finite() {
            return PcgResult { converged: false, iterations: iter, residual: rnorm };
        }
        let alpha = rz / pap;
        stream::axpy(alpha, p, x);
        stream::axpy(-alpha, ap, r);
        rnorm = stream::nrm2(r);
        if rnorm <= target {
            return PcgResult { converged: true, iterations: iter, residual: rnorm };
        }
        precond.apply(r, z);
        let rz_new = stream::dot(r, z);
        let beta = rz_new / rz;
        rz = rz_new;
        stream::update_direction(beta, z, p);
    }
    PcgResult { converged: false, iterations: opts.max_iter, residual: rnorm }
}

/// Scalar serial oracle solver: the original pre-fusion loop built from
/// `stream::reference` ops (two-rounding, serial, same fixed block grid).
/// The property tests pin [`pcg_solve_ws`] against this — bitwise on hosts
/// without FMA clones, ULP-bounded with them.
pub fn pcg_solve_ws_reference<Op: LinearOperator>(
    op: &mut Op,
    precond: &DiagPrecond,
    b: &[f64],
    x: &mut [f64],
    opts: &PcgOptions,
    ws: &mut PcgWorkspace,
) -> PcgResult {
    use stream::reference as sref;

    let n = op.dim();
    assert_eq!(b.len(), n, "pcg rhs length mismatch");
    assert_eq!(x.len(), n, "pcg solution length mismatch");

    let (r, z, p, ap) = ws.vectors(n);

    op.apply_reference(x, r);
    for (ri, &bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }

    let bnorm = sref::nrm2(b).max(opts.abs_tol);
    let target = (opts.rel_tol * bnorm).max(opts.abs_tol);

    let mut rnorm = sref::nrm2(r);
    if rnorm <= target {
        return PcgResult { converged: true, iterations: 0, residual: rnorm };
    }

    precond.apply(r, z);
    p.copy_from_slice(z);
    let mut rz = sref::dot(r, z);

    for iter in 1..=opts.max_iter {
        op.apply_reference(p, ap);
        let pap = sref::dot(p, ap);
        if pap <= 0.0 || !pap.is_finite() {
            return PcgResult { converged: false, iterations: iter, residual: rnorm };
        }
        let alpha = rz / pap;
        sref::axpy(alpha, p, x);
        sref::axpy(-alpha, ap, r);
        rnorm = sref::nrm2(r);
        if rnorm <= target {
            return PcgResult { converged: true, iterations: iter, residual: rnorm };
        }
        precond.apply(r, z);
        let rz_new = sref::dot(r, z);
        let beta = rz_new / rz;
        rz = rz_new;
        sref::update_direction(beta, z, p);
    }
    PcgResult { converged: false, iterations: opts.max_iter, residual: rnorm }
}

/// [`pcg_solve_ws`] with iteration telemetry: the solve's iteration count
/// (= SpMV count, the Fig. 6 `csrMv_ci_kernel` driver), solve count, and
/// any SPD breakdown are accumulated into `tel`'s monotonic counters (see
/// `blast_telemetry::names::counters::PCG_*`). Recording is allocation-free
/// so the solver's steady-state contract is preserved.
pub fn pcg_solve_instrumented<Op: LinearOperator>(
    op: &mut Op,
    precond: &DiagPrecond,
    b: &[f64],
    x: &mut [f64],
    opts: &PcgOptions,
    ws: &mut PcgWorkspace,
    tel: &blast_telemetry::Telemetry,
) -> PcgResult {
    use blast_telemetry::names::counters;
    let res = pcg_solve_ws(op, precond, b, x, opts, ws);
    tel.counter_add(counters::PCG_SOLVES, 1);
    tel.counter_add(counters::PCG_ITERATIONS, res.iterations as u64);
    if stream::active_stream().fused {
        // 3 fused sweeps per iteration + the setup precond_dot_update.
        tel.counter_add(counters::PCG_FUSED_SWEEPS, 3 * res.iterations as u64 + 1);
    }
    if !res.converged {
        tel.counter_add(counters::PCG_BREAKDOWNS, 1);
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;
    use crate::dense::{nrm2, DMatrix};
    use crate::lu::LuFactors;

    /// 1D Laplacian (tridiagonal SPD) of size n.
    fn laplacian(n: usize) -> CsrMatrix {
        let mut b = CsrBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn solves_laplacian_to_tolerance() {
        let a = laplacian(50);
        let b: Vec<f64> = (0..50).map(|i| ((i + 1) as f64).sin()).collect();
        let mut x = vec![0.0; 50];
        let pre = DiagPrecond::from_diagonal(&a.diagonal());
        let res = pcg_solve(&mut (&a), &pre, &b, &mut x, &PcgOptions::default());
        assert!(res.converged, "residual {}", res.residual);
        let mut r = a.spmv(&x);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri = bi - *ri;
        }
        assert!(nrm2(&r) <= 1e-10);
    }

    #[test]
    fn matches_direct_solve() {
        let a = laplacian(20);
        let b: Vec<f64> = (0..20).map(|i| (i as f64) * 0.1 - 1.0).collect();
        let mut x = vec![0.0; 20];
        let pre = DiagPrecond::from_diagonal(&a.diagonal());
        pcg_solve(&mut (&a), &pre, &b, &mut x, &PcgOptions::default());
        let direct = LuFactors::factor(&a.to_dense()).solve(&b);
        for (u, v) in x.iter().zip(&direct) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn cg_exact_in_n_iterations() {
        // Unpreconditioned CG converges in at most n steps in exact
        // arithmetic; with n = 8 we should be at machine precision by 8.
        let a = laplacian(8);
        let b = vec![1.0; 8];
        let mut x = vec![0.0; 8];
        let pre = DiagPrecond::identity(8);
        let res = pcg_solve(&mut (&a), &pre, &b, &mut x, &PcgOptions::default());
        assert!(res.converged);
        assert!(res.iterations <= 8, "took {}", res.iterations);
    }

    #[test]
    fn zero_rhs_returns_immediately() {
        let a = laplacian(10);
        let b = vec![0.0; 10];
        let mut x = vec![0.0; 10];
        let pre = DiagPrecond::identity(10);
        let res = pcg_solve(&mut (&a), &pre, &b, &mut x, &PcgOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn warm_start_costs_fewer_iterations() {
        let a = laplacian(40);
        let b: Vec<f64> = (0..40).map(|i| (i as f64).cos()).collect();
        let pre = DiagPrecond::from_diagonal(&a.diagonal());

        let mut cold = vec![0.0; 40];
        let res_cold = pcg_solve(&mut (&a), &pre, &b, &mut cold, &PcgOptions::default());

        // Warm start from the converged answer: 0 or 1 iterations.
        let mut warm = cold.clone();
        let res_warm = pcg_solve(&mut (&a), &pre, &b, &mut warm, &PcgOptions::default());
        assert!(res_warm.iterations <= 1);
        assert!(res_cold.iterations > res_warm.iterations);
    }

    #[test]
    fn indefinite_operator_reports_failure() {
        let mut b = CsrBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(1, 1, -1.0); // indefinite
        let a = b.build();
        let rhs = [1.0, 1.0];
        let mut x = [0.0, 0.0];
        let pre = DiagPrecond::identity(2);
        let res = pcg_solve(&mut (&a), &pre, &rhs, &mut x, &PcgOptions::default());
        // Either it detects non-SPD via p^T A p <= 0 or fails to converge;
        // it must not panic and must not claim convergence with a bad answer.
        if res.converged {
            let mut r = a.spmv(&x);
            for (ri, bi) in r.iter_mut().zip(&rhs) {
                *ri = bi - *ri;
            }
            assert!(nrm2(&r) < 1e-8);
        }
    }

    #[test]
    fn jacobi_preconditioner_helps_on_scaled_system() {
        // Smoothly graded diagonal over three decades with weak coupling:
        // plain CG sees condition number ~1e3, Jacobi sees ~1.
        let n = 100;
        let scale = |i: usize| 10f64.powf(3.0 * i as f64 / (n - 1) as f64);
        let mut bl = CsrBuilder::new(n, n);
        for i in 0..n {
            bl.add(i, i, scale(i));
            if i > 0 {
                bl.add(i, i - 1, -0.05 * scale(i - 1).min(scale(i)));
            }
            if i + 1 < n {
                bl.add(i, i + 1, -0.05 * scale(i).min(scale(i + 1)));
            }
        }
        let a = bl.build();
        let b = vec![1.0; n];
        let opts = PcgOptions { rel_tol: 1e-10, ..Default::default() };

        let mut x1 = vec![0.0; n];
        let plain = pcg_solve(&mut (&a), &DiagPrecond::identity(n), &b, &mut x1, &opts);
        let mut x2 = vec![0.0; n];
        let jacobi = pcg_solve(
            &mut (&a),
            &DiagPrecond::from_diagonal(&a.diagonal()),
            &b,
            &mut x2,
            &opts,
        );
        assert!(jacobi.converged);
        assert!(
            jacobi.iterations < plain.iterations,
            "jacobi {} vs plain {}",
            jacobi.iterations,
            plain.iterations
        );
    }

    #[test]
    fn instrumented_solve_counts_iterations() {
        use blast_telemetry::names::counters;
        let a = laplacian(30);
        let b: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let pre = DiagPrecond::from_diagonal(&a.diagonal());
        let tel = blast_telemetry::Telemetry::new();
        let mut ws = PcgWorkspace::new();
        let mut x = vec![0.0; 30];
        let r1 = pcg_solve_instrumented(
            &mut (&a), &pre, &b, &mut x, &PcgOptions::default(), &mut ws, &tel,
        );
        let mut x2 = vec![0.0; 30];
        let r2 = pcg_solve_instrumented(
            &mut (&a), &pre, &b, &mut x2, &PcgOptions::default(), &mut ws, &tel,
        );
        assert_eq!(tel.counter(counters::PCG_SOLVES), 2);
        assert_eq!(
            tel.counter(counters::PCG_ITERATIONS),
            (r1.iterations + r2.iterations) as u64
        );
        assert_eq!(tel.counter(counters::PCG_BREAKDOWNS), 0);
        // And the instrumented path returns bit-identical results.
        assert_eq!(x, x2);
    }

    #[test]
    fn dense_spd_via_operator_trait() {
        struct DenseOp(DMatrix);
        impl LinearOperator for DenseOp {
            fn dim(&self) -> usize {
                self.0.rows()
            }
            fn apply(&mut self, x: &[f64], y: &mut [f64]) {
                crate::dense::gemv_n(1.0, &self.0, x, 0.0, y);
            }
        }
        let n = 10;
        let base = DMatrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 5) as f64 / 5.0);
        let mut spd = DMatrix::zeros(n, n);
        crate::dense::gemm_tn(1.0, &base, &base, 0.0, &mut spd);
        for i in 0..n {
            spd[(i, i)] += n as f64;
        }
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let diag: Vec<f64> = (0..n).map(|i| spd[(i, i)]).collect();
        let mut op = DenseOp(spd);
        let res = pcg_solve(&mut op, &DiagPrecond::from_diagonal(&diag), &b, &mut x, &PcgOptions::default());
        assert!(res.converged);
    }
}
