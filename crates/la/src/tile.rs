//! Cache-blocked, register-tiled GEMM micro-kernels (the host-side analog
//! of the paper's batched CUDA kernels).
//!
//! One generic core serves all three public transpose variants
//! (`gemm_nn/nt/tn`): the operand layout is absorbed either by the strided
//! loads of the *direct* path or by the packing step of the *packed* path,
//! and the micro-kernel itself only ever sees an `MR x NR` register tile
//! fed from contiguous panels.
//!
//! Blocking scheme (BLIS-style):
//!
//! * `MR x NR` register tile: a fixed-size `[[f64; MR]; NR]` accumulator
//!   that LLVM keeps entirely in vector registers; `chunks_exact` iterators
//!   over the panels eliminate bounds checks so the inner loop
//!   autovectorizes.
//! * `KC`: the k-dimension cache block. C is read into registers once per
//!   KC block and written back once, instead of once per rank-1 update as
//!   the naive axpy loop does — that store-traffic reduction is where the
//!   speedup comes from at the paper's Table-3 shapes.
//! * `MC`/`NC`: L2-size blocks of packed A panels (`KC x MR` slivers) and
//!   packed B panels (`KC x NR` slivers, with `alpha` folded in at pack
//!   time), used by the packed path for operands too large to stream.
//!
//! # Determinism contract
//!
//! Every element of C is produced by the same accumulation chain
//! regardless of the tile configuration: `c = beta*c` first, then one
//! update per `p` in ascending order, with C round-tripping through
//! memory exactly (f64 store/load is lossless) between KC blocks. The
//! results are therefore **bitwise independent of the tile
//! configuration** (any `MR`, `NR`, `KC`, packed or direct), which lets
//! the autotuner switch tiles freely without breaking the PR-3
//! thread-count determinism guarantee (`tests/host_determinism.rs`).
//!
//! Relative to the naive reference ([`crate::dense::naive`]) there are
//! two regimes, selected once per process by runtime CPU detection:
//!
//! * **Scalar baseline** (no AVX2+FMA): the update is the reference's
//!   exact two-rounding `c += (alpha*b[p,j]) * a[i,p]`, including its
//!   skip of terms whose folded B entry is exactly `0.0` — NN/NT results
//!   are *bitwise identical* to the reference.
//! * **Wide clones** (AVX2+FMA or AVX-512+FMA): the update is a single
//!   fused multiply-add (one rounding) and the zero-skip is dropped, so
//!   results are ULP-bounded-close to the reference rather than equal.
//!   Still fully deterministic: the same host always produces the same
//!   bits at any thread count and any tile configuration.
//!
//! The TN variant additionally trades the reference's dot-product
//! accumulation for the same axpy order as NN/NT, so it is ULP-close to
//! its naive counterpart in both regimes.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Operand orientation for [`gemm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored (column-major).
    N,
    /// Use the transpose of the stored operand.
    T,
}

/// Register micro-tile shapes the core is monomorphized over.
///
/// `Mr8Nr4` is the default: 8 accumulator lanes per column x 4 columns
/// fills about 11 of the 16 AVX2 vector registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MicroTile {
    /// 4 x 4 register tile.
    Mr4Nr4,
    /// 8 x 4 register tile.
    Mr8Nr4,
    /// 12 x 4 register tile (fills the AVX2 register file).
    Mr12Nr4,
    /// 4 x 8 register tile.
    Mr4Nr8,
}

impl MicroTile {
    /// Rows of the register tile.
    pub fn mr(&self) -> usize {
        match self {
            MicroTile::Mr4Nr4 | MicroTile::Mr4Nr8 => 4,
            MicroTile::Mr8Nr4 => 8,
            MicroTile::Mr12Nr4 => 12,
        }
    }

    /// Columns of the register tile.
    pub fn nr(&self) -> usize {
        match self {
            MicroTile::Mr4Nr4 | MicroTile::Mr8Nr4 | MicroTile::Mr12Nr4 => 4,
            MicroTile::Mr4Nr8 => 8,
        }
    }
}

/// L2-size block of packed A rows (rounded up to a multiple of `MR`).
pub const MC: usize = 256;
/// Block of C columns sharing one packed B panel.
pub const NC: usize = 4096;

/// Host tile parameters: the register tile plus the `KC` cache block.
/// These are the knobs `autotune::host_tiles` searches per FE order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileConfig {
    /// Register micro-tile shape.
    pub micro: MicroTile,
    /// k-dimension cache block.
    pub kc: usize,
}

impl TileConfig {
    /// Default configuration (used until the autotuner has run).
    pub const DEFAULT: TileConfig = TileConfig { micro: MicroTile::Mr8Nr4, kc: 256 };
}

/// The candidate grid the host-tile autotuner searches. Every candidate
/// produces bitwise-identical NN/NT results (see the module docs), so the
/// choice is purely a performance knob.
pub const CANDIDATES: [TileConfig; 12] = [
    TileConfig { micro: MicroTile::Mr4Nr4, kc: 64 },
    TileConfig { micro: MicroTile::Mr4Nr4, kc: 128 },
    TileConfig { micro: MicroTile::Mr4Nr4, kc: 256 },
    TileConfig { micro: MicroTile::Mr8Nr4, kc: 64 },
    TileConfig { micro: MicroTile::Mr8Nr4, kc: 128 },
    TileConfig { micro: MicroTile::Mr8Nr4, kc: 256 },
    TileConfig { micro: MicroTile::Mr12Nr4, kc: 64 },
    TileConfig { micro: MicroTile::Mr12Nr4, kc: 128 },
    TileConfig { micro: MicroTile::Mr12Nr4, kc: 256 },
    TileConfig { micro: MicroTile::Mr4Nr8, kc: 64 },
    TileConfig { micro: MicroTile::Mr4Nr8, kc: 128 },
    TileConfig { micro: MicroTile::Mr4Nr8, kc: 256 },
];

/// Index of [`TileConfig::DEFAULT`] in [`CANDIDATES`].
const DEFAULT_INDEX: usize = 5;

static ACTIVE: AtomicUsize = AtomicUsize::new(DEFAULT_INDEX);

/// Installs `CANDIDATES[index]` as the process-wide active tile
/// configuration. Panics if the index is out of range.
pub fn set_active_tile_index(index: usize) {
    assert!(index < CANDIDATES.len(), "tile candidate index out of range");
    ACTIVE.store(index, Ordering::Relaxed);
}

/// The currently active tile configuration.
pub fn active_tile() -> TileConfig {
    CANDIDATES[ACTIVE.load(Ordering::Relaxed)]
}

/// Reusable packing buffers for the packed path. One per thread is enough;
/// the buffers grow to the high-water panel size and are then reused, so
/// steady-state GEMM calls perform no heap allocation.
#[derive(Debug, Default)]
pub struct GemmWorkspace {
    apanel: Vec<f64>,
    bpanel: Vec<f64>,
}

impl GemmWorkspace {
    /// Empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, a_len: usize, b_len: usize) {
        if self.apanel.len() < a_len {
            self.apanel.resize(a_len, 0.0);
        }
        if self.bpanel.len() < b_len {
            self.bpanel.resize(b_len, 0.0);
        }
    }
}

thread_local! {
    static TLS_WS: RefCell<GemmWorkspace> = RefCell::new(GemmWorkspace::new());
}

/// Operand sizes (in elements) up to which the direct path is used; larger
/// operands go through the packed path so the micro-kernel reads
/// contiguous, L2-resident panels. 2 MiB per operand: the `host_kernels`
/// measurements show the direct path still well ahead of packed at the
/// largest Table-3 shape (Q4 3D, 375x64x216 ~ 0.65 MiB), so packing only
/// pays once operands genuinely exceed L2.
const DIRECT_MAX_ELEMS: usize = 1 << 18;

/// Whether [`gemm`] would take the direct (non-packing) path for this
/// shape. Exposed so the host-tile autotuner can time exactly the path
/// production calls will use.
pub fn prefers_direct(m: usize, n: usize, k: usize) -> bool {
    m * k <= DIRECT_MAX_ELEMS && k * n <= DIRECT_MAX_ELEMS
}

/// `C = alpha * op_a(A) * op_b(B) + beta * C` on column-major slices, via
/// the active tile configuration. `(m, n, k)` are the shapes *after*
/// applying the transpositions; `A^T B^T` is not supported (no caller
/// needs it).
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    op_a: Op,
    b: &[f64],
    op_b: Op,
    beta: f64,
    c: &mut [f64],
) {
    assert!(!(op_a == Op::T && op_b == Op::T), "gemm: A^T * B^T is not supported");
    debug_assert!(a.len() >= m * k);
    debug_assert!(b.len() >= k * n);
    debug_assert!(c.len() >= m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == 0.0 {
        scale_like_naive(beta, &mut c[..m * n]);
        return;
    }
    let cfg = active_tile();
    if prefers_direct(m, n, k) {
        gemm_tiled_direct(cfg, m, n, k, alpha, a, op_a, b, op_b, beta, c);
    } else {
        TLS_WS.with(|w| {
            gemm_tiled_packed(cfg, m, n, k, alpha, a, op_a, b, op_b, beta, c, &mut w.borrow_mut());
        });
    }
}

/// The direct (non-packing) tiled path: register tiling + KC blocking,
/// operands read in place. Needs no workspace, which keeps the batched
/// per-zone calls allocation-free on every thread.
pub fn gemm_tiled_direct(
    cfg: TileConfig,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    op_a: Op,
    b: &[f64],
    op_b: Op,
    beta: f64,
    c: &mut [f64],
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == 0.0 {
        scale_like_naive(beta, &mut c[..m * n]);
        return;
    }
    match (cfg.micro, op_a, op_b) {
        (MicroTile::Mr4Nr4, Op::N, Op::N) => {
            direct::<4, 4, false, false>(m, n, k, alpha, a, b, beta, c, cfg.kc)
        }
        (MicroTile::Mr4Nr4, Op::N, Op::T) => {
            direct::<4, 4, false, true>(m, n, k, alpha, a, b, beta, c, cfg.kc)
        }
        (MicroTile::Mr4Nr4, Op::T, _) => {
            direct::<4, 4, true, false>(m, n, k, alpha, a, b, beta, c, cfg.kc)
        }
        (MicroTile::Mr8Nr4, Op::N, Op::N) => {
            direct::<8, 4, false, false>(m, n, k, alpha, a, b, beta, c, cfg.kc)
        }
        (MicroTile::Mr8Nr4, Op::N, Op::T) => {
            direct::<8, 4, false, true>(m, n, k, alpha, a, b, beta, c, cfg.kc)
        }
        (MicroTile::Mr8Nr4, Op::T, _) => {
            direct::<8, 4, true, false>(m, n, k, alpha, a, b, beta, c, cfg.kc)
        }
        (MicroTile::Mr12Nr4, Op::N, Op::N) => {
            direct::<12, 4, false, false>(m, n, k, alpha, a, b, beta, c, cfg.kc)
        }
        (MicroTile::Mr12Nr4, Op::N, Op::T) => {
            direct::<12, 4, false, true>(m, n, k, alpha, a, b, beta, c, cfg.kc)
        }
        (MicroTile::Mr12Nr4, Op::T, _) => {
            direct::<12, 4, true, false>(m, n, k, alpha, a, b, beta, c, cfg.kc)
        }
        (MicroTile::Mr4Nr8, Op::N, Op::N) => {
            direct::<4, 8, false, false>(m, n, k, alpha, a, b, beta, c, cfg.kc)
        }
        (MicroTile::Mr4Nr8, Op::N, Op::T) => {
            direct::<4, 8, false, true>(m, n, k, alpha, a, b, beta, c, cfg.kc)
        }
        (MicroTile::Mr4Nr8, Op::T, _) => {
            direct::<4, 8, true, false>(m, n, k, alpha, a, b, beta, c, cfg.kc)
        }
    }
}

/// The packed tiled path: A is repacked into `KC x MR` slivers and B into
/// `KC x NR` slivers (with `alpha` folded in), so the micro-kernel streams
/// contiguous panels regardless of the transpose flags.
pub fn gemm_tiled_packed(
    cfg: TileConfig,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    op_a: Op,
    b: &[f64],
    op_b: Op,
    beta: f64,
    c: &mut [f64],
    ws: &mut GemmWorkspace,
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == 0.0 {
        scale_like_naive(beta, &mut c[..m * n]);
        return;
    }
    match (cfg.micro, op_a, op_b) {
        (MicroTile::Mr4Nr4, Op::N, Op::N) => {
            packed::<4, 4, false, false>(m, n, k, alpha, a, b, beta, c, cfg.kc, ws)
        }
        (MicroTile::Mr4Nr4, Op::N, Op::T) => {
            packed::<4, 4, false, true>(m, n, k, alpha, a, b, beta, c, cfg.kc, ws)
        }
        (MicroTile::Mr4Nr4, Op::T, _) => {
            packed::<4, 4, true, false>(m, n, k, alpha, a, b, beta, c, cfg.kc, ws)
        }
        (MicroTile::Mr8Nr4, Op::N, Op::N) => {
            packed::<8, 4, false, false>(m, n, k, alpha, a, b, beta, c, cfg.kc, ws)
        }
        (MicroTile::Mr8Nr4, Op::N, Op::T) => {
            packed::<8, 4, false, true>(m, n, k, alpha, a, b, beta, c, cfg.kc, ws)
        }
        (MicroTile::Mr8Nr4, Op::T, _) => {
            packed::<8, 4, true, false>(m, n, k, alpha, a, b, beta, c, cfg.kc, ws)
        }
        (MicroTile::Mr12Nr4, Op::N, Op::N) => {
            packed::<12, 4, false, false>(m, n, k, alpha, a, b, beta, c, cfg.kc, ws)
        }
        (MicroTile::Mr12Nr4, Op::N, Op::T) => {
            packed::<12, 4, false, true>(m, n, k, alpha, a, b, beta, c, cfg.kc, ws)
        }
        (MicroTile::Mr12Nr4, Op::T, _) => {
            packed::<12, 4, true, false>(m, n, k, alpha, a, b, beta, c, cfg.kc, ws)
        }
        (MicroTile::Mr4Nr8, Op::N, Op::N) => {
            packed::<4, 8, false, false>(m, n, k, alpha, a, b, beta, c, cfg.kc, ws)
        }
        (MicroTile::Mr4Nr8, Op::N, Op::T) => {
            packed::<4, 8, false, true>(m, n, k, alpha, a, b, beta, c, cfg.kc, ws)
        }
        (MicroTile::Mr4Nr8, Op::T, _) => {
            packed::<4, 8, true, false>(m, n, k, alpha, a, b, beta, c, cfg.kc, ws)
        }
    }
}

/// The `beta`-only degenerate case, matching the naive reference's exact
/// branch structure (`beta == 1` leaves C untouched bitwise).
fn scale_like_naive(beta: f64, c: &mut [f64]) {
    if beta == 0.0 {
        c.iter_mut().for_each(|x| *x = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|x| *x *= beta);
    }
}

/// Loads the C tile into the accumulator. On the first KC block `beta` is
/// applied exactly as the naive reference does; later blocks resume from
/// the stored partial sums.
#[inline(always)]
fn load_acc<const MR: usize, const NR: usize>(
    m: usize,
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
    beta: f64,
    first: bool,
    c: &[f64],
    acc: &mut [[f64; MR]; NR],
) {
    for (jr, accj) in acc.iter_mut().enumerate().take(nr_eff) {
        let cj = &c[(j0 + jr) * m + i0..(j0 + jr) * m + i0 + mr_eff];
        for (av, &cv) in accj.iter_mut().zip(cj) {
            *av = if !first {
                cv
            } else if beta == 0.0 {
                0.0
            } else if beta == 1.0 {
                cv
            } else {
                cv * beta
            };
        }
    }
}

/// Writes the valid lanes of the accumulator back to C.
#[inline(always)]
fn store_acc<const MR: usize, const NR: usize>(
    m: usize,
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
    c: &mut [f64],
    acc: &[[f64; MR]; NR],
) {
    for (jr, accj) in acc.iter().enumerate().take(nr_eff) {
        let cj = &mut c[(j0 + jr) * m + i0..(j0 + jr) * m + i0 + mr_eff];
        cj.copy_from_slice(&accj[..mr_eff]);
    }
}

/// One accumulator update. With `FMA` the multiply-add fuses into a single
/// hardware instruction (single rounding) — used only inside the ISA clones
/// whose `target_feature` includes `fma`, so it never lowers to a libm
/// call. The non-`FMA` form is the naive reference's exact two-rounding
/// sequence.
#[inline(always)]
fn fmadd<const FMA: bool>(cv: &mut f64, a: f64, b: f64) {
    *cv = if FMA { a.mul_add(b, *cv) } else { *cv + a * b };
}

/// Rank-`kc` update of one register tile from contiguous packed panels.
/// `ap` holds `kc` rows of `MR` A lanes, `bp` holds `kc` rows of `NR`
/// alpha-folded B entries; the `chunks_exact` pairing removes all bounds
/// checks from the loop body.
#[inline(always)]
fn micro_update_packed<const MR: usize, const NR: usize, const FMA: bool>(
    kc: usize,
    ap: &[f64],
    bp: &[f64],
    acc: &mut [[f64; MR]; NR],
) {
    for (arow, brow) in ap[..kc * MR].chunks_exact(MR).zip(bp[..kc * NR].chunks_exact(NR)) {
        // Fixed-size views so the lane loops have compile-time bounds and
        // the accumulator stays in registers.
        let arow: &[f64; MR] = arow.try_into().expect("packed sliver");
        let brow: &[f64; NR] = brow.try_into().expect("packed sliver");
        // Hoisted zero short-circuit, same as the direct path: one branch
        // per row with a branchless all-nonzero body; the per-column skip
        // (which also skips the padded edge columns) only runs when some
        // folded entry is exactly 0.0, matching the naive reference.
        if FMA || brow.iter().all(|&x| x != 0.0) {
            for (accj, &bpj) in acc.iter_mut().zip(brow) {
                for (cv, &av) in accj.iter_mut().zip(arow) {
                    fmadd::<FMA>(cv, av, bpj);
                }
            }
        } else {
            for (accj, &bpj) in acc.iter_mut().zip(brow) {
                if bpj != 0.0 {
                    for (cv, &av) in accj.iter_mut().zip(arow) {
                        fmadd::<FMA>(cv, av, bpj);
                    }
                }
            }
        }
    }
}

/// Full `MR x NR` register tile, compile-time loop bounds throughout: the
/// accumulator stays in vector registers for the whole KC block, so C is
/// loaded and stored once per block instead of once per rank-1 update.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn tile_full<const MR: usize, const NR: usize, const AT: bool, const BT: bool, const FMA: bool>(
    m: usize,
    n: usize,
    k: usize,
    i0: usize,
    j0: usize,
    p0: usize,
    kc: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    first: bool,
    c: &mut [f64],
) {
    let mut acc = [[0.0f64; MR]; NR];
    for (jr, accj) in acc.iter_mut().enumerate() {
        let cj: &[f64; MR] = c[(j0 + jr) * m + i0..][..MR].try_into().expect("full tile");
        for (av, &cv) in accj.iter_mut().zip(cj) {
            *av = if !first {
                cv
            } else if beta == 0.0 {
                0.0
            } else if beta == 1.0 {
                cv
            } else {
                cv * beta
            };
        }
    }
    for p in p0..p0 + kc {
        let av: [f64; MR] = if AT {
            core::array::from_fn(|ir| a[p + (i0 + ir) * k])
        } else {
            *<&[f64; MR]>::try_from(&a[p * m + i0..][..MR]).expect("full tile")
        };
        // Fold alpha into the B row up front (`1.0 * x == x` bitwise, so
        // the alpha == 1 fast path changes nothing), then hoist the naive
        // reference's zero short-circuit: one predictable branch per row
        // instead of one per column keeps the common all-nonzero body
        // branchless. Skipping only fires on folded entries that are
        // exactly 0.0, exactly as the reference skips them.
        let bv: [f64; NR] = core::array::from_fn(|jr| {
            let bpj = if BT { b[(j0 + jr) + p * n] } else { b[p + (j0 + jr) * k] };
            if alpha == 1.0 {
                bpj
            } else {
                alpha * bpj
            }
        });
        if FMA || bv.iter().all(|&x| x != 0.0) {
            for (accj, &bpj) in acc.iter_mut().zip(&bv) {
                for (cv, &avv) in accj.iter_mut().zip(&av) {
                    fmadd::<FMA>(cv, avv, bpj);
                }
            }
        } else {
            for (accj, &bpj) in acc.iter_mut().zip(&bv) {
                if bpj != 0.0 {
                    for (cv, &avv) in accj.iter_mut().zip(&av) {
                        fmadd::<FMA>(cv, avv, bpj);
                    }
                }
            }
        }
    }
    for (jr, accj) in acc.iter().enumerate() {
        c[(j0 + jr) * m + i0..][..MR].copy_from_slice(accj);
    }
}

/// Ragged-edge tile: runtime `mr_eff x nr_eff` bounds, same accumulation
/// order as the full tile (padded A lanes are zero and padded B columns
/// are skipped, so only the valid lanes are ever written back).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn tile_edge<const MR: usize, const NR: usize, const AT: bool, const BT: bool, const FMA: bool>(
    m: usize,
    n: usize,
    k: usize,
    i0: usize,
    j0: usize,
    p0: usize,
    kc: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    first: bool,
    c: &mut [f64],
) {
    let mr_eff = MR.min(m - i0);
    let nr_eff = NR.min(n - j0);
    let mut acc = [[0.0f64; MR]; NR];
    load_acc(m, i0, j0, mr_eff, nr_eff, beta, first, c, &mut acc);
    for p in p0..p0 + kc {
        let mut av = [0.0f64; MR];
        if AT {
            for (ir, lane) in av.iter_mut().enumerate().take(mr_eff) {
                *lane = a[p + (i0 + ir) * k];
            }
        } else {
            for (lane, &ai) in av.iter_mut().zip(&a[p * m + i0..p * m + i0 + mr_eff]) {
                *lane = ai;
            }
        }
        for (jr, accj) in acc.iter_mut().enumerate().take(nr_eff) {
            let bpj = alpha * if BT { b[(j0 + jr) + p * n] } else { b[p + (j0 + jr) * k] };
            if FMA || bpj != 0.0 {
                for (cv, &avv) in accj.iter_mut().zip(&av) {
                    fmadd::<FMA>(cv, avv, bpj);
                }
            }
        }
    }
    store_acc(m, i0, j0, mr_eff, nr_eff, c, &acc);
}

/// Widest SIMD level the host supports, detected once. The kernels are
/// plain safe Rust either way — the level only changes which autovectorized
/// clone of the (bitwise-identical) loop nest runs.
#[cfg(target_arch = "x86_64")]
fn simd_level() -> u8 {
    use std::sync::OnceLock;
    static LEVEL: OnceLock<u8> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let fma = std::arch::is_x86_feature_detected!("fma");
        let detected = if fma
            && std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            2
        } else if fma && std::arch::is_x86_feature_detected!("avx2") {
            1
        } else {
            0
        };
        // `BLAST_TILE_SIMD=0|1|2` caps the level (diagnostics / perf
        // comparisons); the hardware-detected level is always the ceiling.
        match std::env::var("BLAST_TILE_SIMD") {
            Ok(v) => v.trim().parse::<u8>().map_or(detected, |cap| cap.min(detected)),
            Err(_) => detected,
        }
    })
}

/// Whether the wide (fused multiply-add) clones are in use on this host —
/// i.e. whether tiled NN/NT results are ULP-close to the naive reference
/// instead of bitwise identical (see the module docs).
pub fn fma_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        simd_level() >= 1
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Dispatches `direct_body` to the widest ISA clone the host supports.
///
/// Rust never contracts `a * b + c` into a fused multiply-add, and
/// vectorization is element-wise, so every clone performs the identical
/// IEEE operation sequence — the bitwise determinism contract holds on
/// every machine; only throughput differs.
#[allow(clippy::too_many_arguments)]
fn direct<const MR: usize, const NR: usize, const AT: bool, const BT: bool>(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    kc_blk: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        let level = simd_level();
        if level >= 2 {
            // SAFETY: avx512f+avx512vl presence checked at runtime above.
            return unsafe { direct_avx512::<MR, NR, AT, BT>(m, n, k, alpha, a, b, beta, c, kc_blk) };
        }
        if level >= 1 {
            // SAFETY: avx2 presence checked at runtime above.
            return unsafe { direct_avx2::<MR, NR, AT, BT>(m, n, k, alpha, a, b, beta, c, kc_blk) };
        }
    }
    direct_body::<MR, NR, AT, BT, false>(m, n, k, alpha, a, b, beta, c, kc_blk);
}

/// `direct_body` recompiled with 256-bit vectors and fused multiply-adds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn direct_avx2<const MR: usize, const NR: usize, const AT: bool, const BT: bool>(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    kc_blk: usize,
) {
    direct_body::<MR, NR, AT, BT, true>(m, n, k, alpha, a, b, beta, c, kc_blk);
}

/// `direct_body` recompiled with 512-bit vectors and fused multiply-adds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn direct_avx512<const MR: usize, const NR: usize, const AT: bool, const BT: bool>(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    kc_blk: usize,
) {
    direct_body::<MR, NR, AT, BT, true>(m, n, k, alpha, a, b, beta, c, kc_blk);
}

/// Direct-path driver: `KC` blocking over `k` (ascending, so the
/// per-element accumulation order matches the reference), register tiles
/// over `(m, n)`, operands read in place through the transpose flags.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn direct_body<const MR: usize, const NR: usize, const AT: bool, const BT: bool, const FMA: bool>(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    kc_blk: usize,
) {
    let m_full = m - m % MR;
    let n_full = n - n % NR;
    let mut p0 = 0;
    let mut first = true;
    while p0 < k {
        let kc = kc_blk.min(k - p0);
        let mut j0 = 0;
        while j0 < n_full {
            let mut i0 = 0;
            while i0 < m_full {
                tile_full::<MR, NR, AT, BT, FMA>(m, n, k, i0, j0, p0, kc, alpha, a, b, beta, first, c);
                i0 += MR;
            }
            if i0 < m {
                tile_edge::<MR, NR, AT, BT, FMA>(m, n, k, i0, j0, p0, kc, alpha, a, b, beta, first, c);
            }
            j0 += NR;
        }
        if j0 < n {
            // Ragged column strip: re-dispatch the full i-tiles to a
            // narrower const-NR register tile so only the bottom-right
            // corner pays the runtime-bounded edge cost.
            let nr_eff = n - j0;
            let mut i0 = 0;
            while i0 < m_full {
                jedge_full::<MR, AT, BT, FMA>(
                    m, n, k, i0, j0, p0, kc, nr_eff, alpha, a, b, beta, first, c,
                );
                i0 += MR;
            }
            if i0 < m {
                tile_edge::<MR, NR, AT, BT, FMA>(m, n, k, i0, j0, p0, kc, alpha, a, b, beta, first, c);
            }
        }
        p0 += kc;
        first = false;
    }
}

/// Dispatches a full-height, ragged-width tile (`MR x nr_eff`) to the
/// matching const-NR instantiation of [`tile_full`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn jedge_full<const MR: usize, const AT: bool, const BT: bool, const FMA: bool>(
    m: usize,
    n: usize,
    k: usize,
    i0: usize,
    j0: usize,
    p0: usize,
    kc: usize,
    nr_eff: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    first: bool,
    c: &mut [f64],
) {
    match nr_eff {
        1 => tile_full::<MR, 1, AT, BT, FMA>(m, n, k, i0, j0, p0, kc, alpha, a, b, beta, first, c),
        2 => tile_full::<MR, 2, AT, BT, FMA>(m, n, k, i0, j0, p0, kc, alpha, a, b, beta, first, c),
        3 => tile_full::<MR, 3, AT, BT, FMA>(m, n, k, i0, j0, p0, kc, alpha, a, b, beta, first, c),
        4 => tile_full::<MR, 4, AT, BT, FMA>(m, n, k, i0, j0, p0, kc, alpha, a, b, beta, first, c),
        5 => tile_full::<MR, 5, AT, BT, FMA>(m, n, k, i0, j0, p0, kc, alpha, a, b, beta, first, c),
        6 => tile_full::<MR, 6, AT, BT, FMA>(m, n, k, i0, j0, p0, kc, alpha, a, b, beta, first, c),
        7 => tile_full::<MR, 7, AT, BT, FMA>(m, n, k, i0, j0, p0, kc, alpha, a, b, beta, first, c),
        _ => unreachable!("nr_eff < NR <= 8"),
    }
}

/// Dispatches `packed_body` to the widest ISA clone the host supports
/// (same bitwise-identity argument as [`direct`]).
#[allow(clippy::too_many_arguments)]
fn packed<const MR: usize, const NR: usize, const AT: bool, const BT: bool>(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    kc_blk: usize,
    ws: &mut GemmWorkspace,
) {
    #[cfg(target_arch = "x86_64")]
    {
        let level = simd_level();
        if level >= 2 {
            // SAFETY: avx512f+avx512vl presence checked at runtime above.
            return unsafe {
                packed_avx512::<MR, NR, AT, BT>(m, n, k, alpha, a, b, beta, c, kc_blk, ws)
            };
        }
        if level >= 1 {
            // SAFETY: avx2 presence checked at runtime above.
            return unsafe {
                packed_avx2::<MR, NR, AT, BT>(m, n, k, alpha, a, b, beta, c, kc_blk, ws)
            };
        }
    }
    packed_body::<MR, NR, AT, BT, false>(m, n, k, alpha, a, b, beta, c, kc_blk, ws);
}

/// `packed_body` recompiled with 256-bit vectors and fused multiply-adds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn packed_avx2<const MR: usize, const NR: usize, const AT: bool, const BT: bool>(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    kc_blk: usize,
    ws: &mut GemmWorkspace,
) {
    packed_body::<MR, NR, AT, BT, true>(m, n, k, alpha, a, b, beta, c, kc_blk, ws);
}

/// `packed_body` recompiled with 512-bit vectors and fused multiply-adds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn packed_avx512<const MR: usize, const NR: usize, const AT: bool, const BT: bool>(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    kc_blk: usize,
    ws: &mut GemmWorkspace,
) {
    packed_body::<MR, NR, AT, BT, true>(m, n, k, alpha, a, b, beta, c, kc_blk, ws);
}

/// Packed-path driver (BLIS loop nest `NC -> KC -> MC -> NR -> MR`).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn packed_body<const MR: usize, const NR: usize, const AT: bool, const BT: bool, const FMA: bool>(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    kc_blk: usize,
    ws: &mut GemmWorkspace,
) {
    let kc_max = kc_blk.min(k);
    // MC rounded down to a whole number of MR slivers (MC itself need not
    // divide evenly, e.g. MR = 12).
    let mc_blk = (MC / MR) * MR;
    let a_len = mc_blk.min(m.div_ceil(MR) * MR).max(MR) * kc_max;
    let b_len = NC.min(n.div_ceil(NR) * NR).max(NR) * kc_max;
    ws.ensure(a_len, b_len);

    let mut jc = 0;
    while jc < n {
        let nc_eff = NC.min(n - jc);
        let n_jtiles = nc_eff.div_ceil(NR);
        let mut p0 = 0;
        let mut first = true;
        while p0 < k {
            let kc = kc_blk.min(k - p0);
            // Pack B: `KC x NR` slivers, alpha folded, edges zero-padded
            // (the zero short-circuit in the micro-kernel skips the pads).
            for jt in 0..n_jtiles {
                let j0 = jc + jt * NR;
                let nr_eff = NR.min(jc + nc_eff - j0);
                let dst = &mut ws.bpanel[jt * kc * NR..(jt + 1) * kc * NR];
                for (pp, row) in dst.chunks_exact_mut(NR).enumerate() {
                    let p = p0 + pp;
                    for (jr, slot) in row.iter_mut().enumerate() {
                        *slot = if jr < nr_eff {
                            alpha * if BT { b[(j0 + jr) + p * n] } else { b[p + (j0 + jr) * k] }
                        } else {
                            0.0
                        };
                    }
                }
            }
            let mut ic = 0;
            while ic < m {
                let mc_eff = mc_blk.min(m - ic);
                let n_itiles = mc_eff.div_ceil(MR);
                // Pack A: `KC x MR` slivers, edges zero-padded.
                for it in 0..n_itiles {
                    let i0 = ic + it * MR;
                    let mr_eff = MR.min(ic + mc_eff - i0);
                    let dst = &mut ws.apanel[it * kc * MR..(it + 1) * kc * MR];
                    for (pp, row) in dst.chunks_exact_mut(MR).enumerate() {
                        let p = p0 + pp;
                        for (ir, slot) in row.iter_mut().enumerate() {
                            *slot = if ir < mr_eff {
                                if AT {
                                    a[p + (i0 + ir) * k]
                                } else {
                                    a[(i0 + ir) + p * m]
                                }
                            } else {
                                0.0
                            };
                        }
                    }
                }
                for jt in 0..n_jtiles {
                    let j0 = jc + jt * NR;
                    let nr_eff = NR.min(jc + nc_eff - j0);
                    let bp = &ws.bpanel[jt * kc * NR..(jt + 1) * kc * NR];
                    for it in 0..n_itiles {
                        let i0 = ic + it * MR;
                        let mr_eff = MR.min(ic + mc_eff - i0);
                        let ap = &ws.apanel[it * kc * MR..(it + 1) * kc * MR];
                        let mut acc = [[0.0f64; MR]; NR];
                        if mr_eff == MR && nr_eff == NR {
                            // Full tile: compile-time bounds keep the
                            // accumulator in registers across the panel.
                            for (jr, accj) in acc.iter_mut().enumerate() {
                                let cj: &[f64; MR] = c[(j0 + jr) * m + i0..][..MR]
                                    .try_into()
                                    .expect("full tile");
                                for (av, &cv) in accj.iter_mut().zip(cj) {
                                    *av = if !first {
                                        cv
                                    } else if beta == 0.0 {
                                        0.0
                                    } else if beta == 1.0 {
                                        cv
                                    } else {
                                        cv * beta
                                    };
                                }
                            }
                            micro_update_packed::<MR, NR, FMA>(kc, ap, bp, &mut acc);
                            for (jr, accj) in acc.iter().enumerate() {
                                c[(j0 + jr) * m + i0..][..MR].copy_from_slice(accj);
                            }
                        } else {
                            load_acc(m, i0, j0, mr_eff, nr_eff, beta, first, c, &mut acc);
                            micro_update_packed::<MR, NR, FMA>(kc, ap, bp, &mut acc);
                            store_acc(m, i0, j0, mr_eff, nr_eff, c, &acc);
                        }
                    }
                }
                ic += mc_blk;
            }
            p0 += kc;
            first = false;
        }
        jc += NC;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::naive;

    fn fill(len: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).max(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                // Mix in exact zeros so the zero-skip path is exercised.
                if s.is_multiple_of(11) {
                    0.0
                } else {
                    (s % 1000) as f64 / 500.0 - 1.0
                }
            })
            .collect()
    }

    /// The contract from the module docs: every config and both paths are
    /// bitwise identical to each other; vs the naive reference the results
    /// are bitwise equal on non-FMA hosts and ULP-bounded otherwise.
    fn check_bitwise_nn_nt(m: usize, n: usize, k: usize, alpha: f64, beta: f64) {
        let a = fill(m * k, (m * 31 + k) as u64);
        let c0 = fill(m * n, (n * 7 + m) as u64);
        for (op_b, blen) in [(Op::N, k * n), (Op::T, n * k)] {
            let b = fill(blen, (k * 13 + n) as u64);
            let mut c_ref = c0.clone();
            match op_b {
                Op::N => naive::gemm_nn_raw(m, n, k, alpha, &a, &b, beta, &mut c_ref),
                Op::T => naive::gemm_nt_raw(m, n, k, alpha, &a, &b, beta, &mut c_ref),
            }
            let mut first: Option<Vec<f64>> = None;
            for cfg in CANDIDATES {
                let mut c = c0.clone();
                gemm_tiled_direct(cfg, m, n, k, alpha, &a, Op::N, &b, op_b, beta, &mut c);
                match &first {
                    None => {
                        if fma_active() {
                            for (x, y) in c.iter().zip(&c_ref) {
                                let scale = x.abs().max(y.abs()).max(1.0);
                                assert!(
                                    (x - y).abs() <= 1e-12 * scale,
                                    "{x} vs naive {y} at {m}x{n}x{k} {op_b:?}"
                                );
                            }
                        } else {
                            assert!(
                                c.iter().zip(&c_ref).all(|(x, y)| x.to_bits() == y.to_bits()),
                                "non-FMA host must match naive bitwise at {m}x{n}x{k} {op_b:?}"
                            );
                        }
                        first = Some(c);
                    }
                    Some(c1) => assert!(
                        c.iter().zip(c1).all(|(x, y)| x.to_bits() == y.to_bits()),
                        "direct {cfg:?} {op_b:?} config-dependent at {m}x{n}x{k} a={alpha} b={beta}"
                    ),
                }
                let mut c = c0.clone();
                let mut ws = GemmWorkspace::new();
                gemm_tiled_packed(cfg, m, n, k, alpha, &a, Op::N, &b, op_b, beta, &mut c, &mut ws);
                let c1 = first.as_ref().unwrap();
                assert!(
                    c.iter().zip(c1).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "packed {cfg:?} {op_b:?} config-dependent at {m}x{n}x{k} a={alpha} b={beta}"
                );
            }
        }
    }

    #[test]
    fn bitwise_equal_to_naive_on_table3_shapes() {
        // Per-zone F_z = A_z B^T shapes for Q1..Q4 (3D), plus ragged edges.
        for (m, n, k) in [(24, 1, 8), (81, 8, 64), (192, 27, 125), (375, 64, 216)] {
            check_bitwise_nn_nt(m, n, k, 1.0, 0.0);
        }
        for (m, n, k) in [(1, 1, 1), (5, 3, 7), (17, 9, 33), (13, 1, 2)] {
            for (alpha, beta) in [(1.0, 0.0), (2.5, 1.0), (-0.5, 3.0), (0.0, 2.0), (1.0, 1.0)] {
                check_bitwise_nn_nt(m, n, k, alpha, beta);
            }
        }
    }

    #[test]
    fn tn_matches_naive_within_ulps() {
        for (m, n, k) in [(5, 3, 7), (27, 81, 64), (33, 9, 17)] {
            let a = fill(k * m, 3);
            let b = fill(k * n, 4);
            let c0 = fill(m * n, 5);
            let mut c_ref = c0.clone();
            naive::gemm_tn_raw(m, n, k, 1.5, &a, &b, 0.5, &mut c_ref);
            for cfg in CANDIDATES {
                let mut c = c0.clone();
                gemm_tiled_direct(cfg, m, n, k, 1.5, &a, Op::T, &b, Op::N, 0.5, &mut c);
                for (x, y) in c.iter().zip(&c_ref) {
                    let scale = y.abs().max(1.0);
                    assert!((x - y).abs() <= 1e-12 * scale, "{x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn k_zero_and_alpha_zero_match_naive_beta_semantics() {
        let c0 = fill(12, 9);
        for beta in [0.0, 1.0, 2.0] {
            let mut c_ref = c0.clone();
            naive::gemm_nn_raw(3, 4, 0, 1.0, &[], &[], beta, &mut c_ref);
            let mut c = c0.clone();
            gemm(3, 4, 0, 1.0, &[], Op::N, &[], Op::N, beta, &mut c);
            assert_eq!(c, c_ref);
            let a = fill(6, 1);
            let b = fill(8, 2);
            let mut c_ref = c0.clone();
            naive::gemm_nn_raw(3, 4, 2, 0.0, &a, &b, beta, &mut c_ref);
            let mut c = c0.clone();
            gemm(3, 4, 2, 0.0, &a, Op::N, &b, Op::N, beta, &mut c);
            assert_eq!(c, c_ref);
        }
    }

    #[test]
    fn active_tile_roundtrip() {
        assert_eq!(active_tile(), TileConfig::DEFAULT);
        set_active_tile_index(0);
        assert_eq!(active_tile(), CANDIDATES[0]);
        set_active_tile_index(DEFAULT_INDEX);
        assert_eq!(active_tile(), TileConfig::DEFAULT);
    }
}
