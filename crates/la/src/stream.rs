//! Streaming fused PCG kernels (the solver-phase analog of the `tile.rs`
//! GEMM treatment, after Chalmers & Warburton, arXiv:2009.10917).
//!
//! The unfused PCG iteration makes one full memory sweep per BLAS-1 call:
//! SpMV, `dot(p, Ap)`, two `axpy`s, `nrm2(r)`, the Jacobi apply, `dot(r, z)`
//! and the direction update each stream the iteration vectors through DRAM
//! again. On a memory-bound host that is ~14 vector transits per iteration
//! for ~10 flops per entry. This module fuses the chains into three
//! single-pass kernels:
//!
//! * [`spmv_dot`] — SpMV that produces `p·Ap` in the same sweep (the freshly
//!   written `y` rows are still cache-hot when the block-local dot reads
//!   them back);
//! * [`axpy2_nrm2`] — the paired `x += αp; r -= αAp` updates with the new
//!   `‖r‖²` reduction fused in (4 reads + 2 writes instead of 7 transits);
//! * [`precond_dot_update`] — Jacobi apply + `r·z` + direction update in one
//!   call, never materializing `z` (`z_i = m_i r_i` costs one multiply to
//!   recompute, cheaper than a round-trip through DRAM).
//!
//! # Determinism contract
//!
//! Every reduction runs over a **fixed block grid** that depends only on the
//! element count: `ceil(n / 64)`-sized chunks, one per pool block (the pool's
//! `MAX_BLOCKS` grid, PR 3), with per-block partials combined in block-index
//! order. Within a block, sums use a fixed 8-lane accumulator structure
//! (element `j` goes to lane `j mod 8`; the tail is accumulated separately
//! and folded first) — this grouping is *defined semantics*, not an
//! optimization detail, which is what makes the fused kernels bitwise-equal
//! to their unfused counterparts. Consequences:
//!
//! * results are **bitwise identical at every `BLAST_THREADS`** (serial and
//!   pool paths walk the same grid in the same order);
//! * all four [`CANDIDATES`] variants (fused/unfused × serial/parallel)
//!   produce **bitwise-identical** solver trajectories, so the autotuner
//!   switches freely without breaking the determinism digests;
//! * against the scalar [`reference`] oracle there are two regimes, exactly
//!   as in `tile.rs`: without FMA the dispatched kernels perform the
//!   reference's two-rounding updates and match **bitwise**; with AVX2/
//!   AVX-512 FMA clones active ([`fma_active`]) each update is one fused
//!   rounding and results are ULP-bounded-close instead.
//!
//! Steady state performs **zero heap allocations**: per-block partials live
//! in a stack `[AtomicU64; 64]` (f64 bits through relaxed stores, so the
//! serial and pool paths share one code path without locks), and the pool's
//! serial `for_each` drive is allocation-free for unit results.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use rayon::prelude::*;

use crate::csr::CsrMatrix;
use crate::dense::nrm2_scaled;

/// Reduction block grid: same cap as the pool's `MAX_BLOCKS`, so each chunk
/// maps to exactly one pool block and the grid depends only on `n`.
pub const STREAM_BLOCKS: usize = 64;

/// Fixed accumulator lanes per block (element `j` → lane `j mod LANES`).
const LANES: usize = 8;

/// Below this length the pool's scoped-thread spawn costs more than the
/// sweep; parallel variants fall back to the (bitwise-identical) serial
/// walk. A fixed constant, never thread-count-derived, so the block
/// schedule stays deterministic.
const PAR_MIN_N: usize = 4096;

/// One streaming-kernel configuration the autotuner can install.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamVariant {
    /// `true`: `pcg_solve_ws` runs the three fused kernels per iteration.
    /// `false`: one streaming sweep per BLAS-1 op (the launch-per-op
    /// baseline; bitwise-identical results, more memory transits).
    pub fused: bool,
    /// Whether sweeps over `n >= PAR_MIN_N` elements use the worker pool.
    pub parallel: bool,
}

/// The candidate grid `autotune::pcg_stream` searches. Every candidate
/// produces bitwise-identical solver trajectories (see the module docs), so
/// the choice is purely a performance knob.
pub const CANDIDATES: [StreamVariant; 4] = [
    StreamVariant { fused: true, parallel: true },
    StreamVariant { fused: true, parallel: false },
    StreamVariant { fused: false, parallel: true },
    StreamVariant { fused: false, parallel: false },
];

/// Index of the default variant (fused, pool-parallel) in [`CANDIDATES`].
const DEFAULT_INDEX: usize = 0;

static ACTIVE: AtomicUsize = AtomicUsize::new(DEFAULT_INDEX);

/// Installs `CANDIDATES[index]` as the process-wide active streaming
/// variant. Panics if the index is out of range.
pub fn set_active_stream_index(index: usize) {
    assert!(index < CANDIDATES.len(), "stream candidate index out of range");
    ACTIVE.store(index, Ordering::Relaxed);
}

/// The currently active streaming variant.
pub fn active_stream() -> StreamVariant {
    CANDIDATES[ACTIVE.load(Ordering::Relaxed)]
}

/// Index of the currently active variant in [`CANDIDATES`].
pub fn active_stream_index() -> usize {
    ACTIVE.load(Ordering::Relaxed)
}

/// Widest SIMD level the host supports, detected once (mirrors
/// `tile::simd_level`; `BLAST_STREAM_SIMD=0|1|2` caps it for diagnostics).
#[cfg(target_arch = "x86_64")]
fn simd_level() -> u8 {
    use std::sync::OnceLock;
    static LEVEL: OnceLock<u8> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let fma = std::arch::is_x86_feature_detected!("fma");
        let detected = if fma
            && std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            2
        } else if fma && std::arch::is_x86_feature_detected!("avx2") {
            1
        } else {
            0
        };
        match std::env::var("BLAST_STREAM_SIMD") {
            Ok(v) => v.trim().parse::<u8>().map_or(detected, |cap| cap.min(detected)),
            Err(_) => detected,
        }
    })
}

/// Whether the fused-multiply-add clones are in use on this host — i.e.
/// whether dispatched results are ULP-close to the scalar [`reference`]
/// instead of bitwise identical (the `tile::fma_active` regime split).
pub fn fma_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        simd_level() >= 1
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The one scalar update both regimes are built from: `acc + a*b` with two
/// roundings (the reference semantics), or a single fused rounding in the
/// `FMA = true` clones.
#[inline(always)]
fn fmadd<const FMA: bool>(acc: f64, a: f64, b: f64) -> f64 {
    if FMA {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// Folds the fixed lane accumulators in lane order, tail first. Part of the
/// defined reduction semantics — every reduction in this module (fused or
/// not) finishes a block through this exact chain.
#[inline(always)]
fn fold_lanes(lanes: [f64; LANES], tail: f64) -> f64 {
    lanes.iter().fold(tail, |acc, &l| acc + l)
}

/// Chunk length of the fixed block grid for an `n`-element sweep.
#[inline]
fn block_len(n: usize) -> usize {
    n.div_ceil(STREAM_BLOCKS).max(1)
}

/// Whether a sweep of `n` elements should use the worker pool under the
/// active variant.
#[inline]
fn use_parallel(n: usize) -> bool {
    active_stream().parallel && n >= PAR_MIN_N
}

/// Per-block partial store: one slot per grid block, written exactly once,
/// folded in block-index order. Lives on the caller's stack — f64 bits
/// through relaxed atomic stores let the pool workers and the serial path
/// share it without locks or heap allocation.
struct Partials([AtomicU64; STREAM_BLOCKS]);

impl Partials {
    fn new() -> Self {
        // 0u64 is the bit pattern of +0.0.
        Self([const { AtomicU64::new(0) }; STREAM_BLOCKS])
    }

    #[inline]
    fn set(&self, block: usize, v: f64) {
        self.0[block].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Combines the first `nblocks` partials in index order.
    fn fold(&self, nblocks: usize) -> f64 {
        self.0[..nblocks]
            .iter()
            .fold(0.0, |acc, s| acc + f64::from_bits(s.load(Ordering::Relaxed)))
    }
}

// ---------------------------------------------------------------------------
// Block bodies: one const-generic scalar body per kernel, recompiled as
// AVX2+FMA / AVX-512+FMA clones below (the `tile.rs` idiom). The `FMA`
// parameter is the only semantic difference between clones; vector width is
// just throughput.
// ---------------------------------------------------------------------------

/// Block dot product with the fixed lane structure.
#[inline(always)]
fn dot_block_body<const FMA: bool>(x: &[f64], y: &[f64]) -> f64 {
    let mut lanes = [0.0f64; LANES];
    let mut xs = x.chunks_exact(LANES);
    let mut ys = y.chunks_exact(LANES);
    for (xv, yv) in (&mut xs).zip(&mut ys) {
        for ((l, &a), &b) in lanes.iter_mut().zip(xv).zip(yv) {
            *l = fmadd::<FMA>(*l, a, b);
        }
    }
    let mut tail = 0.0;
    for (&a, &b) in xs.remainder().iter().zip(ys.remainder()) {
        tail = fmadd::<FMA>(tail, a, b);
    }
    fold_lanes(lanes, tail)
}

/// Block `y += alpha * x`.
#[inline(always)]
fn axpy_block_body<const FMA: bool>(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = fmadd::<FMA>(*yi, alpha, xi);
    }
}

/// Fused block `x += alpha*p; r += malpha*ap; return sum(r_new^2)` — the
/// squared-norm lanes see exactly the values and grouping `dot(r, r)` would.
#[inline(always)]
fn axpy2_nrm2_block_body<const FMA: bool>(
    alpha: f64,
    malpha: f64,
    p: &[f64],
    ap: &[f64],
    x: &mut [f64],
    r: &mut [f64],
) -> f64 {
    let mut lanes = [0.0f64; LANES];
    let mut ps = p.chunks_exact(LANES);
    let mut aps = ap.chunks_exact(LANES);
    let mut xs = x.chunks_exact_mut(LANES);
    let mut rs = r.chunks_exact_mut(LANES);
    for (((pv, apv), xv), rv) in (&mut ps).zip(&mut aps).zip(&mut xs).zip(&mut rs) {
        for (xi, &pi) in xv.iter_mut().zip(pv) {
            *xi = fmadd::<FMA>(*xi, alpha, pi);
        }
        for (ri, &api) in rv.iter_mut().zip(apv) {
            *ri = fmadd::<FMA>(*ri, malpha, api);
        }
        for (l, &ri) in lanes.iter_mut().zip(rv.iter()) {
            *l = fmadd::<FMA>(*l, ri, ri);
        }
    }
    let mut tail = 0.0;
    let (pr, apr) = (ps.remainder(), aps.remainder());
    let it = xs.into_remainder().iter_mut().zip(rs.into_remainder()).zip(pr).zip(apr);
    for (((xi, ri), &pi), &api) in it {
        *xi = fmadd::<FMA>(*xi, alpha, pi);
        *ri = fmadd::<FMA>(*ri, malpha, api);
        tail = fmadd::<FMA>(tail, *ri, *ri);
    }
    fold_lanes(lanes, tail)
}

/// Block `r·z` with `z_i = minv_i * r_i` recomputed on the fly: the same
/// single-rounding multiply the Jacobi apply stores, fed to the same dot
/// lanes — bitwise-equal to apply-then-dot.
#[inline(always)]
fn rz_block_body<const FMA: bool>(minv: &[f64], r: &[f64]) -> f64 {
    let mut lanes = [0.0f64; LANES];
    let mut ms = minv.chunks_exact(LANES);
    let mut rs = r.chunks_exact(LANES);
    for (mv, rv) in (&mut ms).zip(&mut rs) {
        for ((l, &mi), &ri) in lanes.iter_mut().zip(mv).zip(rv) {
            *l = fmadd::<FMA>(*l, ri, mi * ri);
        }
    }
    let mut tail = 0.0;
    for (&mi, &ri) in ms.remainder().iter().zip(rs.remainder()) {
        tail = fmadd::<FMA>(tail, ri, mi * ri);
    }
    fold_lanes(lanes, tail)
}

/// Block direction update `p = z + beta*p` with `z` recomputed from `minv`
/// and `r`.
#[inline(always)]
fn dir_update_block_body<const FMA: bool>(minv: &[f64], r: &[f64], beta: f64, p: &mut [f64]) {
    for ((pi, &mi), &ri) in p.iter_mut().zip(minv).zip(r) {
        *pi = fmadd::<FMA>(mi * ri, beta, *pi);
    }
}

/// Block direction update `p = z + beta*p` from a stored `z` (unfused leg).
#[inline(always)]
fn dir_update_z_block_body<const FMA: bool>(z: &[f64], beta: f64, p: &mut [f64]) {
    for (pi, &zi) in p.iter_mut().zip(z) {
        *pi = fmadd::<FMA>(zi, beta, *pi);
    }
}

/// Block CSR row sweep: `y[lo..] = A[lo.., :] x`. Non-FMA matches
/// `CsrMatrix::spmv_into` bitwise (same ascending-k accumulation).
#[inline(always)]
fn spmv_rows_body<const FMA: bool>(
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[f64],
    lo: usize,
    x: &[f64],
    y: &mut [f64],
) {
    for (i, yi) in y.iter_mut().enumerate() {
        let (start, end) = (row_ptr[lo + i], row_ptr[lo + i + 1]);
        let mut acc = 0.0;
        for (&v, &c) in values[start..end].iter().zip(&col_idx[start..end]) {
            acc = fmadd::<FMA>(acc, v, x[c]);
        }
        *yi = acc;
    }
}

/// Block CSR row sweep with the dot fused into row production: `y[lo..] =
/// A[lo.., :] x` and `x[lo..]·y[lo..]` in one pass, accumulating each
/// row's contribution while it is still in a register — `y` is written
/// once and never re-read. Row `i` of the block lands in lane `i % 8`
/// (the last `len % 8` rows in the scalar tail), exactly the grouping
/// [`dot_block_body`] applies to the finished block, so the fusion is
/// bitwise-invisible.
#[inline(always)]
fn spmv_rows_dot_body<const FMA: bool>(
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[f64],
    lo: usize,
    x: &[f64],
    y: &mut [f64],
) -> f64 {
    // Row-group staging: produce a 64-row subblock with the plain SpMV
    // loop (vectorizes exactly like `spmv_rows_body`), then fold it into
    // the dot lanes while it still sits in L1 — a second tight SIMD loop
    // instead of per-row lane bookkeeping that would wreck the row loop's
    // codegen. 64 is a multiple of the lane width, so carrying the lanes
    // across subblocks assigns element `j` of the block to lane `j % 8` —
    // exactly [`dot_block_body`]'s grouping, making the staging invisible.
    const SUB: usize = 64;
    let mut lanes = [0.0f64; LANES];
    let mut tail = 0.0;
    let len = y.len();
    let mut s = 0;
    while s < len {
        let e = (s + SUB).min(len);
        spmv_rows_body::<FMA>(row_ptr, col_idx, values, lo + s, x, &mut y[s..e]);
        let mut xc = x[lo + s..lo + e].chunks_exact(LANES);
        let mut yc = y[s..e].chunks_exact(LANES);
        for (xg, yg) in (&mut xc).zip(&mut yc) {
            for ((l, &a), &b) in lanes.iter_mut().zip(xg).zip(yg) {
                *l = fmadd::<FMA>(*l, a, b);
            }
        }
        // Non-empty only in the final subblock: the block-level dot tail.
        for (&a, &b) in xc.remainder().iter().zip(yc.remainder()) {
            tail = fmadd::<FMA>(tail, a, b);
        }
        s = e;
    }
    fold_lanes(lanes, tail)
}

// ---------------------------------------------------------------------------
// #[target_feature] clones. SAFETY for all: callers check `simd_level()`
// before dispatching, which verified the feature bits at runtime.
// ---------------------------------------------------------------------------

macro_rules! clones {
    ($body:ident => $avx2:ident, $avx512:ident;
     fn($($arg:ident : $ty:ty),*) $(-> $ret:ty)?) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2,fma")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $avx2($($arg: $ty),*) $(-> $ret)? {
            $body::<true>($($arg),*)
        }
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f,avx512vl,fma")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $avx512($($arg: $ty),*) $(-> $ret)? {
            $body::<true>($($arg),*)
        }
    };
}

clones!(dot_block_body => dot_block_avx2, dot_block_avx512;
    fn(x: &[f64], y: &[f64]) -> f64);
clones!(axpy_block_body => axpy_block_avx2, axpy_block_avx512;
    fn(alpha: f64, x: &[f64], y: &mut [f64]));
clones!(axpy2_nrm2_block_body => axpy2_nrm2_block_avx2, axpy2_nrm2_block_avx512;
    fn(alpha: f64, malpha: f64, p: &[f64], ap: &[f64], x: &mut [f64], r: &mut [f64]) -> f64);
clones!(rz_block_body => rz_block_avx2, rz_block_avx512;
    fn(minv: &[f64], r: &[f64]) -> f64);
clones!(dir_update_block_body => dir_update_block_avx2, dir_update_block_avx512;
    fn(minv: &[f64], r: &[f64], beta: f64, p: &mut [f64]));
clones!(dir_update_z_block_body => dir_update_z_block_avx2, dir_update_z_block_avx512;
    fn(z: &[f64], beta: f64, p: &mut [f64]));
clones!(spmv_rows_body => spmv_rows_avx2, spmv_rows_avx512;
    fn(row_ptr: &[usize], col_idx: &[usize], values: &[f64], lo: usize, x: &[f64], y: &mut [f64]));
clones!(spmv_rows_dot_body => spmv_rows_dot_avx2, spmv_rows_dot_avx512;
    fn(row_ptr: &[usize], col_idx: &[usize], values: &[f64], lo: usize, x: &[f64], y: &mut [f64]) -> f64);

macro_rules! dispatch {
    ($body:ident / $avx2:ident / $avx512:ident ($($arg:expr),*)) => {{
        #[cfg(target_arch = "x86_64")]
        {
            let level = simd_level();
            if level >= 2 {
                // SAFETY: avx512f+avx512vl+fma verified by simd_level().
                return unsafe { $avx512($($arg),*) };
            }
            if level >= 1 {
                // SAFETY: avx2+fma verified by simd_level().
                return unsafe { $avx2($($arg),*) };
            }
        }
        $body::<false>($($arg),*)
    }};
}

#[inline]
fn dot_block(x: &[f64], y: &[f64]) -> f64 {
    dispatch!(dot_block_body / dot_block_avx2 / dot_block_avx512(x, y))
}

#[inline]
fn axpy_block(alpha: f64, x: &[f64], y: &mut [f64]) {
    dispatch!(axpy_block_body / axpy_block_avx2 / axpy_block_avx512(alpha, x, y))
}

#[inline]
fn axpy2_nrm2_block(alpha: f64, malpha: f64, p: &[f64], ap: &[f64], x: &mut [f64], r: &mut [f64]) -> f64 {
    dispatch!(axpy2_nrm2_block_body / axpy2_nrm2_block_avx2 / axpy2_nrm2_block_avx512(
        alpha, malpha, p, ap, x, r
    ))
}

#[inline]
fn rz_block(minv: &[f64], r: &[f64]) -> f64 {
    dispatch!(rz_block_body / rz_block_avx2 / rz_block_avx512(minv, r))
}

#[inline]
fn dir_update_block(minv: &[f64], r: &[f64], beta: f64, p: &mut [f64]) {
    dispatch!(dir_update_block_body / dir_update_block_avx2 / dir_update_block_avx512(
        minv, r, beta, p
    ))
}

#[inline]
fn dir_update_z_block(z: &[f64], beta: f64, p: &mut [f64]) {
    dispatch!(dir_update_z_block_body / dir_update_z_block_avx2 / dir_update_z_block_avx512(
        z, beta, p
    ))
}

#[inline]
fn spmv_rows(row_ptr: &[usize], col_idx: &[usize], values: &[f64], lo: usize, x: &[f64], y: &mut [f64]) {
    dispatch!(spmv_rows_body / spmv_rows_avx2 / spmv_rows_avx512(
        row_ptr, col_idx, values, lo, x, y
    ))
}

#[inline]
fn spmv_rows_dot(
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[f64],
    lo: usize,
    x: &[f64],
    y: &mut [f64],
) -> f64 {
    dispatch!(spmv_rows_dot_body / spmv_rows_dot_avx2 / spmv_rows_dot_avx512(
        row_ptr, col_idx, values, lo, x, y
    ))
}

// ---------------------------------------------------------------------------
// Public streaming ops. Each walks the fixed block grid, serially or on the
// pool per the active variant — identical bits either way.
// ---------------------------------------------------------------------------

/// Streaming dot product. Panics on length mismatch.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "stream::dot length mismatch");
    let n = x.len();
    if n == 0 {
        return 0.0;
    }
    let bl = block_len(n);
    let partials = Partials::new();
    if use_parallel(n) {
        x.par_chunks(bl).zip(y.par_chunks(bl)).enumerate().for_each(|(c, (xv, yv))| {
            partials.set(c, dot_block(xv, yv));
        });
    } else {
        for (c, (xv, yv)) in x.chunks(bl).zip(y.chunks(bl)).enumerate() {
            partials.set(c, dot_block(xv, yv));
        }
    }
    partials.fold(n.div_ceil(bl))
}

/// Streaming squared Euclidean norm (`dot(x, x)` with the same grid).
pub fn nrm2_sq(x: &[f64]) -> f64 {
    let n = x.len();
    if n == 0 {
        return 0.0;
    }
    let bl = block_len(n);
    let partials = Partials::new();
    if use_parallel(n) {
        x.par_chunks(bl).enumerate().for_each(|(c, xv)| {
            partials.set(c, dot_block(xv, xv));
        });
    } else {
        for (c, xv) in x.chunks(bl).enumerate() {
            partials.set(c, dot_block(xv, xv));
        }
    }
    partials.fold(n.div_ceil(bl))
}

/// Finalizes a Euclidean norm from a precomputed squared sum: `sqrt` on the
/// fast path, falling back to the scaled two-pass accumulation when the
/// squared sum over- or underflowed (see `dense::nrm2_from_sumsq`).
pub fn nrm2_from_sumsq(sumsq: f64, x: &[f64]) -> f64 {
    if sumsq.is_finite() && sumsq >= f64::MIN_POSITIVE {
        sumsq.sqrt()
    } else {
        nrm2_scaled(x)
    }
}

/// Streaming overflow-safe Euclidean norm.
pub fn nrm2(x: &[f64]) -> f64 {
    nrm2_from_sumsq(nrm2_sq(x), x)
}

/// Streaming `y += alpha * x`. Panics on length mismatch.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "stream::axpy length mismatch");
    let n = x.len();
    if n == 0 {
        return;
    }
    let bl = block_len(n);
    if use_parallel(n) {
        y.par_chunks_mut(bl).zip(x.par_chunks(bl)).for_each(|(yv, xv)| {
            axpy_block(alpha, xv, yv);
        });
    } else {
        for (yv, xv) in y.chunks_mut(bl).zip(x.chunks(bl)) {
            axpy_block(alpha, xv, yv);
        }
    }
}

/// Streaming CSR SpMV `y = A x` over the row block grid.
pub fn spmv(a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.cols(), "stream::spmv x length mismatch");
    assert_eq!(y.len(), a.rows(), "stream::spmv y length mismatch");
    let n = a.rows();
    if n == 0 {
        return;
    }
    let bl = block_len(n);
    let (rp, ci, vals) = (a.row_ptr(), a.col_idx(), a.values());
    if use_parallel(n) {
        y.par_chunks_mut(bl).enumerate().for_each(|(c, yv)| {
            spmv_rows(rp, ci, vals, c * bl, x, yv);
        });
    } else {
        for (c, yv) in y.chunks_mut(bl).enumerate() {
            spmv_rows(rp, ci, vals, c * bl, x, yv);
        }
    }
}

/// Fused SpMV + dot: `y = A x` and `x·y` in one sweep. Requires a square
/// operator. The per-block dot reads the freshly written `y` rows while
/// they are cache-hot — bitwise-equal to `spmv` followed by [`dot`].
pub fn spmv_dot(a: &CsrMatrix, x: &[f64], y: &mut [f64]) -> f64 {
    assert_eq!(a.rows(), a.cols(), "stream::spmv_dot needs a square operator");
    assert_eq!(x.len(), a.cols(), "stream::spmv_dot x length mismatch");
    assert_eq!(y.len(), a.rows(), "stream::spmv_dot y length mismatch");
    let n = a.rows();
    if n == 0 {
        return 0.0;
    }
    let bl = block_len(n);
    let (rp, ci, vals) = (a.row_ptr(), a.col_idx(), a.values());
    let partials = Partials::new();
    if use_parallel(n) {
        y.par_chunks_mut(bl).enumerate().for_each(|(c, yv)| {
            partials.set(c, spmv_rows_dot(rp, ci, vals, c * bl, x, yv));
        });
    } else {
        for (c, yv) in y.chunks_mut(bl).enumerate() {
            partials.set(c, spmv_rows_dot(rp, ci, vals, c * bl, x, yv));
        }
    }
    partials.fold(n.div_ceil(bl))
}

/// Masks `x` into `tmp` (constrained entries zeroed) — phase 1 of the
/// projected operator `P A P + (I - P)`.
fn mask_into(x: &[f64], mask: &[bool], tmp: &mut [f64]) {
    let n = x.len();
    let bl = block_len(n);
    if use_parallel(n) {
        tmp.par_chunks_mut(bl).zip(x.par_chunks(bl)).zip(mask.par_chunks(bl)).for_each(
            |((tv, xv), mv)| {
                for ((t, &xi), &c) in tv.iter_mut().zip(xv).zip(mv) {
                    *t = if c { 0.0 } else { xi };
                }
            },
        );
    } else {
        for ((t, &xi), &c) in tmp.iter_mut().zip(x).zip(mask) {
            *t = if c { 0.0 } else { xi };
        }
    }
}

/// One row-block of the constrained operator: `y = A tmp`, then constrained
/// rows overwritten with `x` (identity block keeps the system SPD).
#[inline]
fn constrained_rows(
    a: &CsrMatrix,
    lo: usize,
    x: &[f64],
    mask: &[bool],
    tmp: &[f64],
    yv: &mut [f64],
) {
    spmv_rows(a.row_ptr(), a.col_idx(), a.values(), lo, tmp, yv);
    let hi = lo + yv.len();
    for ((yi, &xi), &c) in yv.iter_mut().zip(&x[lo..hi]).zip(&mask[lo..hi]) {
        if c {
            *yi = xi;
        }
    }
}

/// Constrained operator apply `y = (P A P + (I - P)) x` using `tmp` as the
/// masked-input scratch (the unfused leg of [`spmv_constrained_dot`]).
pub fn spmv_constrained(a: &CsrMatrix, x: &[f64], mask: &[bool], tmp: &mut [f64], y: &mut [f64]) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "stream::spmv_constrained needs a square operator");
    assert_eq!(x.len(), n, "stream::spmv_constrained x length mismatch");
    assert_eq!(mask.len(), n, "stream::spmv_constrained mask length mismatch");
    assert_eq!(tmp.len(), n, "stream::spmv_constrained tmp length mismatch");
    assert_eq!(y.len(), n, "stream::spmv_constrained y length mismatch");
    if n == 0 {
        return;
    }
    mask_into(x, mask, tmp);
    let bl = block_len(n);
    if use_parallel(n) {
        y.par_chunks_mut(bl)
            .enumerate()
            .for_each(|(c, yv)| constrained_rows(a, c * bl, x, mask, tmp, yv));
    } else {
        for (c, yv) in y.chunks_mut(bl).enumerate() {
            constrained_rows(a, c * bl, x, mask, tmp, yv);
        }
    }
}

/// Fused constrained apply + dot: [`spmv_constrained`] producing `x·y` in
/// the same row sweep (the fixup runs before the block dot, exactly as the
/// unfused apply-then-dot sequence sees it).
pub fn spmv_constrained_dot(
    a: &CsrMatrix,
    x: &[f64],
    mask: &[bool],
    tmp: &mut [f64],
    y: &mut [f64],
) -> f64 {
    let n = a.rows();
    assert_eq!(a.cols(), n, "stream::spmv_constrained_dot needs a square operator");
    assert_eq!(x.len(), n, "stream::spmv_constrained_dot x length mismatch");
    assert_eq!(mask.len(), n, "stream::spmv_constrained_dot mask length mismatch");
    assert_eq!(tmp.len(), n, "stream::spmv_constrained_dot tmp length mismatch");
    assert_eq!(y.len(), n, "stream::spmv_constrained_dot y length mismatch");
    if n == 0 {
        return 0.0;
    }
    mask_into(x, mask, tmp);
    let bl = block_len(n);
    let partials = Partials::new();
    if use_parallel(n) {
        y.par_chunks_mut(bl).enumerate().for_each(|(c, yv)| {
            let lo = c * bl;
            constrained_rows(a, lo, x, mask, tmp, yv);
            partials.set(c, dot_block(&x[lo..lo + yv.len()], yv));
        });
    } else {
        for (c, yv) in y.chunks_mut(bl).enumerate() {
            let lo = c * bl;
            constrained_rows(a, lo, x, mask, tmp, yv);
            partials.set(c, dot_block(&x[lo..lo + yv.len()], yv));
        }
    }
    partials.fold(n.div_ceil(bl))
}

/// Fused pair update: `x += alpha*p; r -= alpha*ap`, returning the new
/// `sum(r_i^2)` from the same sweep (finalize with [`nrm2_from_sumsq`]).
pub fn axpy2_nrm2(alpha: f64, p: &[f64], ap: &[f64], x: &mut [f64], r: &mut [f64]) -> f64 {
    let n = p.len();
    assert_eq!(ap.len(), n, "stream::axpy2_nrm2 ap length mismatch");
    assert_eq!(x.len(), n, "stream::axpy2_nrm2 x length mismatch");
    assert_eq!(r.len(), n, "stream::axpy2_nrm2 r length mismatch");
    if n == 0 {
        return 0.0;
    }
    let malpha = -alpha;
    let bl = block_len(n);
    let partials = Partials::new();
    if use_parallel(n) {
        x.par_chunks_mut(bl)
            .zip(r.par_chunks_mut(bl))
            .zip(p.par_chunks(bl))
            .zip(ap.par_chunks(bl))
            .enumerate()
            .for_each(|(c, (((xv, rv), pv), apv))| {
                partials.set(c, axpy2_nrm2_block(alpha, malpha, pv, apv, xv, rv));
            });
    } else {
        let it = x.chunks_mut(bl).zip(r.chunks_mut(bl)).zip(p.chunks(bl)).zip(ap.chunks(bl));
        for (c, (((xv, rv), pv), apv)) in it.enumerate() {
            partials.set(c, axpy2_nrm2_block(alpha, malpha, pv, apv, xv, rv));
        }
    }
    partials.fold(n.div_ceil(bl))
}

/// Fused Jacobi apply + `r·z` + direction update, never materializing `z`:
///
/// * `rz_prev = None` (setup): `p = z` and `r·z` is returned;
/// * `rz_prev = Some(rz)`: `beta = r·z_new / rz`, then `p = z + beta*p`.
///
/// Returns `r·z_new`. Bitwise-equal to apply / dot / update as three sweeps.
pub fn precond_dot_update(minv: &[f64], r: &[f64], rz_prev: Option<f64>, p: &mut [f64]) -> f64 {
    let n = r.len();
    assert_eq!(minv.len(), n, "stream::precond_dot_update minv length mismatch");
    assert_eq!(p.len(), n, "stream::precond_dot_update p length mismatch");
    if n == 0 {
        return 0.0;
    }
    let bl = block_len(n);
    // Phase A: the r·z reduction (needs every block before beta exists).
    let partials = Partials::new();
    if use_parallel(n) {
        minv.par_chunks(bl).zip(r.par_chunks(bl)).enumerate().for_each(|(c, (mv, rv))| {
            partials.set(c, rz_block(mv, rv));
        });
    } else {
        for (c, (mv, rv)) in minv.chunks(bl).zip(r.chunks(bl)).enumerate() {
            partials.set(c, rz_block(mv, rv));
        }
    }
    let rz = partials.fold(n.div_ceil(bl));

    // Phase B: direction update with z recomputed (one multiply per entry,
    // cheaper than a DRAM round-trip for a stored z).
    match rz_prev {
        None => {
            // Setup: p = z exactly (same bits as a Jacobi apply + copy).
            if use_parallel(n) {
                p.par_chunks_mut(bl).zip(minv.par_chunks(bl)).zip(r.par_chunks(bl)).for_each(
                    |((pv, mv), rv)| {
                        for ((pi, &mi), &ri) in pv.iter_mut().zip(mv).zip(rv) {
                            *pi = mi * ri;
                        }
                    },
                );
            } else {
                for ((pi, &mi), &ri) in p.iter_mut().zip(minv).zip(r) {
                    *pi = mi * ri;
                }
            }
        }
        Some(prev) => {
            let beta = rz / prev;
            if use_parallel(n) {
                p.par_chunks_mut(bl).zip(minv.par_chunks(bl)).zip(r.par_chunks(bl)).for_each(
                    |((pv, mv), rv)| dir_update_block(mv, rv, beta, pv),
                );
            } else {
                for ((pv, mv), rv) in p.chunks_mut(bl).zip(minv.chunks(bl)).zip(r.chunks(bl)) {
                    dir_update_block(mv, rv, beta, pv);
                }
            }
        }
    }
    rz
}

/// Direction update `p = z + beta*p` from a stored `z` (the unfused leg;
/// same FMA regime as the fused [`precond_dot_update`] phase B).
pub fn update_direction(beta: f64, z: &[f64], p: &mut [f64]) {
    assert_eq!(z.len(), p.len(), "stream::update_direction length mismatch");
    let n = z.len();
    if n == 0 {
        return;
    }
    let bl = block_len(n);
    if use_parallel(n) {
        p.par_chunks_mut(bl)
            .zip(z.par_chunks(bl))
            .for_each(|(pv, zv)| dir_update_z_block(zv, beta, pv));
    } else {
        for (pv, zv) in p.chunks_mut(bl).zip(z.chunks(bl)) {
            dir_update_z_block(zv, beta, pv);
        }
    }
}

/// Scalar serial oracle: the same block grid and lane structure as the
/// dispatched kernels, instantiated with `FMA = false` and driven serially —
/// the `dense::naive`-style reference the property tests pin against.
/// Bitwise-equal to the dispatched ops on hosts without FMA clones
/// ([`fma_active`]` == false`), ULP-bounded-close otherwise.
pub mod reference {
    use super::*;

    /// Reference dot product.
    pub fn dot(x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "reference dot length mismatch");
        let n = x.len();
        if n == 0 {
            return 0.0;
        }
        let bl = block_len(n);
        x.chunks(bl)
            .zip(y.chunks(bl))
            .fold(0.0, |acc, (xv, yv)| acc + dot_block_body::<false>(xv, yv))
    }

    /// Reference squared norm.
    pub fn nrm2_sq(x: &[f64]) -> f64 {
        let n = x.len();
        if n == 0 {
            return 0.0;
        }
        let bl = block_len(n);
        x.chunks(bl).fold(0.0, |acc, xv| acc + dot_block_body::<false>(xv, xv))
    }

    /// Reference overflow-safe norm.
    pub fn nrm2(x: &[f64]) -> f64 {
        nrm2_from_sumsq(nrm2_sq(x), x)
    }

    /// Reference `y += alpha * x` (identical to `dense::axpy`).
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), y.len(), "reference axpy length mismatch");
        axpy_block_body::<false>(alpha, x, y);
    }

    /// Reference fused pair update (serial, two-rounding).
    pub fn axpy2_nrm2(alpha: f64, p: &[f64], ap: &[f64], x: &mut [f64], r: &mut [f64]) -> f64 {
        let n = p.len();
        if n == 0 {
            return 0.0;
        }
        let bl = block_len(n);
        let malpha = -alpha;
        let it = x.chunks_mut(bl).zip(r.chunks_mut(bl)).zip(p.chunks(bl)).zip(ap.chunks(bl));
        it.fold(0.0, |acc, (((xv, rv), pv), apv)| {
            acc + axpy2_nrm2_block_body::<false>(alpha, malpha, pv, apv, xv, rv)
        })
    }

    /// Reference fused precondition + dot + update (serial, two-rounding).
    pub fn precond_dot_update(minv: &[f64], r: &[f64], rz_prev: Option<f64>, p: &mut [f64]) -> f64 {
        let n = r.len();
        if n == 0 {
            return 0.0;
        }
        let bl = block_len(n);
        let rz = minv
            .chunks(bl)
            .zip(r.chunks(bl))
            .fold(0.0, |acc, (mv, rv)| acc + rz_block_body::<false>(mv, rv));
        match rz_prev {
            None => {
                for ((pi, &mi), &ri) in p.iter_mut().zip(minv).zip(r) {
                    *pi = mi * ri;
                }
            }
            Some(prev) => {
                let beta = rz / prev;
                dir_update_block_body::<false>(minv, r, beta, p);
            }
        }
        rz
    }

    /// Reference direction update from a stored `z`.
    pub fn update_direction(beta: f64, z: &[f64], p: &mut [f64]) {
        assert_eq!(z.len(), p.len(), "reference update_direction length mismatch");
        dir_update_z_block_body::<false>(z, beta, p);
    }

    /// Reference SpMV (identical to `CsrMatrix::spmv_into`).
    pub fn spmv(a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
        a.spmv_into(x, y);
    }

    /// Reference SpMV + dot as two serial sweeps.
    pub fn spmv_dot(a: &CsrMatrix, x: &[f64], y: &mut [f64]) -> f64 {
        a.spmv_into(x, y);
        dot(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;

    fn vecs(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 101) as f64 * 0.013 - 0.5).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 53 + 7) % 89) as f64 * 0.017 - 0.7).collect();
        (x, y)
    }

    fn banded(n: usize, half_band: usize) -> CsrMatrix {
        let mut b = CsrBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0 * half_band as f64 + 1.0);
            for o in 1..=half_band {
                if i >= o {
                    b.add(i, i - o, -0.4);
                }
                if i + o < n {
                    b.add(i, i + o, -0.4);
                }
            }
        }
        b.build()
    }

    const SIZES: [usize; 10] = [0, 1, 2, 7, 8, 63, 64, 65, 500, 4097];

    #[test]
    fn dot_matches_reference_regimes() {
        for &n in &SIZES {
            let (x, y) = vecs(n);
            let fused = dot(&x, &y);
            let oracle = reference::dot(&x, &y);
            if fma_active() {
                let tol = 1e-13 * oracle.abs().max(1.0);
                assert!((fused - oracle).abs() <= tol, "n={n}: {fused} vs {oracle}");
            } else {
                assert_eq!(fused.to_bits(), oracle.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn spmv_dot_equals_spmv_then_dot_bitwise() {
        // Fused vs unfused *dispatched* paths share every rounding: equal
        // bits in both regimes.
        for &n in &[1usize, 7, 64, 65, 500] {
            let a = banded(n, 3.min(n.saturating_sub(1)).max(1));
            let (x, _) = vecs(n);
            let mut y1 = vec![0.0; n];
            let fused = spmv_dot(&a, &x, &mut y1);
            let mut y2 = vec![0.0; n];
            spmv(&a, &x, &mut y2);
            let unfused = dot(&x, &y2);
            assert_eq!(y1, y2, "n={n}");
            assert_eq!(fused.to_bits(), unfused.to_bits(), "n={n}");
        }
    }

    #[test]
    fn axpy2_nrm2_equals_two_axpys_and_dot_bitwise() {
        for &n in &[1usize, 9, 64, 129, 1000] {
            let (p, ap) = vecs(n);
            let (x0, r0) = vecs(n);
            let alpha = 0.37;

            let (mut x1, mut r1) = (x0.clone(), r0.clone());
            let sumsq = axpy2_nrm2(alpha, &p, &ap, &mut x1, &mut r1);

            let (mut x2, mut r2) = (x0.clone(), r0.clone());
            axpy(alpha, &p, &mut x2);
            axpy(-alpha, &ap, &mut r2);
            assert_eq!(x1, x2, "n={n}");
            assert_eq!(r1, r2, "n={n}");
            assert_eq!(sumsq.to_bits(), nrm2_sq(&r2).to_bits(), "n={n}");
        }
    }

    #[test]
    fn precond_dot_update_equals_unfused_bitwise() {
        for &n in &[1usize, 9, 64, 129, 1000] {
            let (r, minv_raw) = vecs(n);
            let minv: Vec<f64> = minv_raw.iter().map(|&m| m.abs() + 0.1).collect();
            let (p0, _) = vecs(n);

            // Setup (rz_prev = None) == apply + copy.
            let mut p1 = p0.clone();
            let rz1 = precond_dot_update(&minv, &r, None, &mut p1);
            let z: Vec<f64> = minv.iter().zip(&r).map(|(&m, &ri)| m * ri).collect();
            assert_eq!(p1, z, "n={n}");
            assert_eq!(rz1.to_bits(), dot(&r, &z).to_bits(), "n={n}");

            // Update (rz_prev = Some) == apply + dot + update_direction.
            let mut p2 = p0.clone();
            let rz2 = precond_dot_update(&minv, &r, Some(rz1), &mut p2);
            let mut p3 = p0.clone();
            update_direction(rz2 / rz1, &z, &mut p3);
            assert_eq!(p2, p3, "n={n}");
        }
    }

    #[test]
    fn all_variants_bitwise_identical() {
        let n = 5000; // above PAR_MIN_N so parallel variants engage the pool
        let (x, y) = vecs(n);
        let before = active_stream_index();
        let baseline = {
            set_active_stream_index(0);
            dot(&x, &y)
        };
        for idx in 1..CANDIDATES.len() {
            set_active_stream_index(idx);
            assert_eq!(dot(&x, &y).to_bits(), baseline.to_bits(), "variant {idx}");
        }
        set_active_stream_index(before);
    }

    #[test]
    fn thread_count_invariance() {
        let n = 6000;
        let (x, y) = vecs(n);
        let base = dot(&x, &y);
        for threads in [1usize, 2, 4, 8] {
            rayon::set_active_threads(threads);
            assert_eq!(dot(&x, &y).to_bits(), base.to_bits(), "threads={threads}");
        }
        rayon::set_active_threads(0);
    }

    #[test]
    fn constrained_dot_matches_manual_projection() {
        let n = 200;
        let a = banded(n, 4);
        let (x, _) = vecs(n);
        let mask: Vec<bool> = (0..n).map(|i| i % 17 == 0).collect();
        let mut tmp = vec![0.0; n];
        let mut y1 = vec![0.0; n];
        let pap = spmv_constrained_dot(&a, &x, &mask, &mut tmp, &mut y1);

        let mut tmp2 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        spmv_constrained(&a, &x, &mask, &mut tmp2, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(pap.to_bits(), dot(&x, &y2).to_bits());
        for i in (0..n).filter(|i| mask[*i]) {
            assert_eq!(y1[i], x[i], "constrained row {i} must be identity");
        }
    }
}
