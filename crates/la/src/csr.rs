//! Compressed sparse row (CSR) matrices and SpMV.
//!
//! The global kinematic mass matrix `M_V` is sparse (continuous basis
//! functions couple only neighbouring zones), and the paper's kernels 9 and
//! 11 are CSR SpMV calls (via CUSPARSE in the original). This module is the
//! reference CSR implementation; the simulated-GPU SpMV in `blast-kernels`
//! matches it exactly.

use crate::dense::DMatrix;

/// Immutable CSR sparse matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointers, length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, sorted within each row.
    col_idx: Vec<usize>,
    /// Nonzero values, parallel to `col_idx`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (length `rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable value array (structure is fixed; values may be updated, e.g.
    /// when the mass matrix is re-assembled with the same sparsity).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// `y = A x` (allocating).
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.spmv_into(x, &mut y);
        y
    }

    /// `y = A x` into a caller-provided buffer (the hot path: PCG calls this
    /// every iteration, so no allocation here).
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "spmv x length mismatch");
        assert_eq!(y.len(), self.rows, "spmv y length mismatch");
        for i in 0..self.rows {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[i] = acc;
        }
    }

    /// `y = A^T x` (needed by symmetric checks; `M_V` itself is symmetric).
    pub fn spmv_transpose_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "spmv_t x length mismatch");
        assert_eq!(y.len(), self.cols, "spmv_t y length mismatch");
        y.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..self.rows {
            let xi = x[i];
            if xi != 0.0 {
                for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                    y[self.col_idx[k]] += self.values[k] * xi;
                }
            }
        }
    }

    /// Extracts the diagonal (the Jacobi / diagonal preconditioner of the
    /// paper's PCG). Missing diagonal entries read as 0.
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.rows.min(self.cols)];
        for i in 0..d.len() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[k] == i {
                    d[i] = self.values[k];
                    break;
                }
            }
        }
        d
    }

    /// Densifies (tests only — O(rows*cols) memory).
    pub fn to_dense(&self) -> DMatrix {
        let mut m = DMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                m[(i, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }

    /// Returns `max |A - A^T|` over all entries (symmetry check for `M_V`).
    pub fn asymmetry(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                let aij = self.values[k];
                let aji = self.get(j, i);
                worst = worst.max((aij - aji).abs());
            }
        }
        worst
    }

    /// Entry lookup by binary search within the row (0 if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let row = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
        match row.binary_search(&j) {
            Ok(pos) => self.values[self.row_ptr[i] + pos],
            Err(_) => 0.0,
        }
    }
}

/// Accumulating COO-style builder that assembles into CSR.
///
/// Duplicate `(i, j)` insertions are **summed**, matching finite-element
/// assembly semantics where multiple zones contribute to a shared DOF pair.
#[derive(Clone, Debug, Default)]
pub struct CsrBuilder {
    rows: usize,
    cols: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl CsrBuilder {
    /// New builder for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, triplets: Vec::new() }
    }

    /// Adds `value` at `(i, j)` (summed with earlier additions there).
    pub fn add(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.rows && j < self.cols, "triplet out of bounds");
        if value != 0.0 {
            self.triplets.push((i, j, value));
        }
    }

    /// Number of raw (pre-merge) triplets.
    pub fn triplet_count(&self) -> usize {
        self.triplets.len()
    }

    /// Assembles into CSR, merging duplicates and sorting columns per row.
    pub fn build(mut self) -> CsrMatrix {
        self.triplets.sort_unstable_by_key(|t| (t.0, t.1));
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.triplets.len());
        let mut values = Vec::with_capacity(self.triplets.len());

        let mut it = self.triplets.into_iter().peekable();
        while let Some((i, j, mut v)) = it.next() {
            while let Some(&(ni, nj, nv)) = it.peek() {
                if ni == i && nj == j {
                    v += nv;
                    it.next();
                } else {
                    break;
                }
            }
            col_idx.push(j);
            values.push(v);
            row_ptr[i + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix { rows: self.rows, cols: self.cols, row_ptr, col_idx, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut b = CsrBuilder::new(3, 3);
        b.add(0, 0, 1.0);
        b.add(0, 2, 2.0);
        b.add(1, 1, 3.0);
        b.add(2, 0, 4.0);
        b.add(2, 2, 5.0);
        b.build()
    }

    #[test]
    fn spmv_known() {
        let a = sample();
        let y = a.spmv(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = CsrBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 0, 2.5);
        b.add(1, 1, 1.0);
        let a = b.build();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 0), 3.5);
    }

    #[test]
    fn zeros_are_skipped() {
        let mut b = CsrBuilder::new(2, 2);
        b.add(0, 0, 0.0);
        b.add(1, 0, 1.0);
        assert_eq!(b.triplet_count(), 1);
        let a = b.build();
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn diagonal_extraction() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn transpose_spmv_matches_dense() {
        let a = sample();
        let x = [1.0, -1.0, 0.5];
        let mut y = vec![0.0; 3];
        a.spmv_transpose_into(&x, &mut y);
        let dense_t = a.to_dense().transpose();
        let mut expect = vec![0.0; 3];
        crate::dense::gemv_n(1.0, &dense_t, &x, 0.0, &mut expect);
        for (a, b) in y.iter().zip(&expect) {
            assert!(approx_eq(*a, *b, 1e-14));
        }
    }

    #[test]
    fn get_missing_entry_is_zero() {
        let a = sample();
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 1), 0.0);
    }

    #[test]
    fn asymmetry_detects_nonsymmetric() {
        let a = sample();
        // a(0,2)=2 but a(2,0)=4 -> asymmetry 2.
        assert_eq!(a.asymmetry(), 2.0);

        let mut b = CsrBuilder::new(2, 2);
        b.add(0, 1, 1.5);
        b.add(1, 0, 1.5);
        b.add(0, 0, 2.0);
        assert_eq!(b.build().asymmetry(), 0.0);
    }

    #[test]
    fn empty_rows_are_fine() {
        let mut b = CsrBuilder::new(4, 4);
        b.add(0, 0, 1.0);
        b.add(3, 3, 1.0);
        let a = b.build();
        assert_eq!(a.spmv(&[1.0; 4]), vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn row_columns_sorted() {
        let mut b = CsrBuilder::new(1, 5);
        b.add(0, 4, 1.0);
        b.add(0, 0, 2.0);
        b.add(0, 2, 3.0);
        let a = b.build();
        assert_eq!(a.col_idx(), &[0, 2, 4]);
        assert_eq!(a.values(), &[2.0, 3.0, 1.0]);
    }
}
