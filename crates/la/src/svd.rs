//! Singular value decompositions of 2x2 and 3x3 matrices.
//!
//! BLAST's artificial viscosity needs a *directional length scale* per
//! quadrature point: the singular values of the zone Jacobian measure how the
//! reference cell is stretched along each principal direction, and the
//! smallest singular value in the compression direction sets the viscosity
//! length. This is the "SVD" work inside the paper's kernel 1
//! (`kernel_CalcAjugate_det`).
//!
//! We compute the SVD from the symmetric eigendecomposition of `A^T A`
//! (singular values are the square roots of its eigenvalues), then recover
//! the left vectors by applying `A`. This is exactly the thread-local scalar
//! recipe a GPU thread runs, and is robust for the well-conditioned Jacobians
//! that appear in valid (non-inverted) meshes.

use crate::eig::{sym_eig2, sym_eig3};
use crate::small::SmallMat;

/// Singular value decomposition `A = U diag(s) V^T`.
///
/// Singular values are non-negative and sorted descending. `u` and `v` hold
/// the left/right singular vectors as columns.
#[derive(Clone, Copy, Debug)]
pub struct Svd<const D: usize> {
    /// Singular values, descending, non-negative.
    pub values: [f64; D],
    /// Left singular vectors (columns).
    pub u: SmallMat<D>,
    /// Right singular vectors (columns).
    pub v: SmallMat<D>,
}

impl<const D: usize> Svd<D> {
    /// Reconstructs `U diag(s) V^T` (for validation).
    pub fn reconstruct(&self) -> SmallMat<D> {
        let mut a = SmallMat::zeros();
        for k in 0..D {
            let mut uk = [0.0; D];
            let mut vk = [0.0; D];
            for i in 0..D {
                uk[i] = self.u[(i, k)];
                vk[i] = self.v[(i, k)];
            }
            a.add_outer(self.values[k], &uk, &vk);
        }
        a
    }

    /// Largest singular value (spectral norm).
    #[inline]
    pub fn norm2(&self) -> f64 {
        self.values[0]
    }

    /// Smallest singular value — BLAST's minimum directional length scale.
    #[inline]
    pub fn min_singular(&self) -> f64 {
        self.values[D - 1]
    }
}

/// Completes a left singular vector for a (near-)zero column of `A V`:
/// picks a unit vector orthogonal to the already-filled columns `0..k`.
fn orthogonal_complement<const D: usize>(u: &SmallMat<D>, k: usize) -> [f64; D] {
    // Try coordinate axes and Gram-Schmidt against earlier columns.
    let mut best = [0.0; D];
    let mut best_norm = -1.0;
    for axis in 0..D {
        let mut cand = [0.0; D];
        cand[axis] = 1.0;
        for c in 0..k {
            let mut proj = 0.0;
            for i in 0..D {
                proj += cand[i] * u[(i, c)];
            }
            for i in 0..D {
                cand[i] -= proj * u[(i, c)];
            }
        }
        let n: f64 = cand.iter().map(|x| x * x).sum::<f64>().sqrt();
        if n > best_norm {
            best_norm = n;
            best = cand;
        }
    }
    debug_assert!(best_norm > 0.0, "no orthogonal complement found");
    for x in &mut best {
        *x /= best_norm;
    }
    best
}

fn svd_from_eig<const D: usize>(
    a: &SmallMat<D>,
    values: [f64; D],
    v: SmallMat<D>,
) -> Svd<D> {
    let mut s = [0.0; D];
    for k in 0..D {
        s[k] = values[k].max(0.0).sqrt();
    }
    let scale = s[0].max(1.0);
    let mut u = SmallMat::<D>::zeros();
    for k in 0..D {
        let mut vk = [0.0; D];
        for i in 0..D {
            vk[i] = v[(i, k)];
        }
        let av = a.mul_vec(&vk);
        let n: f64 = av.iter().map(|x| x * x).sum::<f64>().sqrt();
        if n > 1e-14 * scale {
            for i in 0..D {
                u[(i, k)] = av[i] / n;
            }
        } else {
            let c = orthogonal_complement(&u, k);
            for i in 0..D {
                u[(i, k)] = c[i];
            }
        }
    }
    Svd { values: s, u, v }
}

/// SVD of a general 2x2 matrix.
pub fn svd2(a: &SmallMat<2>) -> Svd<2> {
    let ata = a.transpose() * *a;
    let e = sym_eig2(&ata.sym()); // sym() guards round-off asymmetry
    svd_from_eig(a, e.values, e.vectors)
}

/// SVD of a general 3x3 matrix.
pub fn svd3(a: &SmallMat<3>) -> Svd<3> {
    let ata = a.transpose() * *a;
    let e = sym_eig3(&ata.sym());
    svd_from_eig(a, e.values, e.vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn m2(rows: [[f64; 2]; 2]) -> SmallMat<2> {
        SmallMat::from_fn(|i, j| rows[i][j])
    }

    fn m3(rows: [[f64; 3]; 3]) -> SmallMat<3> {
        SmallMat::from_fn(|i, j| rows[i][j])
    }

    fn check_svd2(a: &SmallMat<2>, tol: f64) {
        let s = svd2(a);
        assert!(s.values[0] >= s.values[1] && s.values[1] >= 0.0);
        let r = s.reconstruct();
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx_eq(r[(i, j)], a[(i, j)], tol), "({i},{j})");
            }
        }
    }

    fn check_svd3(a: &SmallMat<3>, tol: f64) {
        let s = svd3(a);
        assert!(s.values[0] >= s.values[1] && s.values[1] >= s.values[2]);
        assert!(s.values[2] >= 0.0);
        let r = s.reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    approx_eq(r[(i, j)], a[(i, j)], tol),
                    "({i},{j}): {} vs {}",
                    r[(i, j)],
                    a[(i, j)]
                );
            }
        }
    }

    #[test]
    fn svd2_diagonal() {
        let s = svd2(&m2([[3.0, 0.0], [0.0, 2.0]]));
        assert!(approx_eq(s.values[0], 3.0, 1e-14));
        assert!(approx_eq(s.values[1], 2.0, 1e-14));
    }

    #[test]
    fn svd2_negative_determinant() {
        // Reflection: singular values stay positive.
        let a = m2([[0.0, 2.0], [1.0, 0.0]]);
        let s = svd2(&a);
        assert!(approx_eq(s.values[0], 2.0, 1e-14));
        assert!(approx_eq(s.values[1], 1.0, 1e-14));
        check_svd2(&a, 1e-13);
    }

    #[test]
    fn svd2_general_reconstruction() {
        check_svd2(&m2([[1.0, 2.0], [3.0, 4.0]]), 1e-12);
        check_svd2(&m2([[-1.5, 0.3], [2.2, -7.0]]), 1e-12);
    }

    #[test]
    fn svd2_rank_deficient() {
        let a = m2([[1.0, 2.0], [2.0, 4.0]]); // rank 1
        let s = svd2(&a);
        assert!(s.values[1].abs() < 1e-12 * s.values[0]);
        check_svd2(&a, 1e-12);
    }

    #[test]
    fn svd3_diagonal_with_sign() {
        let a = m3([[4.0, 0.0, 0.0], [0.0, -9.0, 0.0], [0.0, 0.0, 1.0]]);
        let s = svd3(&a);
        assert!(approx_eq(s.values[0], 9.0, 1e-13));
        assert!(approx_eq(s.values[1], 4.0, 1e-13));
        assert!(approx_eq(s.values[2], 1.0, 1e-13));
        check_svd3(&a, 1e-12);
    }

    #[test]
    fn svd3_general_reconstruction() {
        check_svd3(&m3([[1.0, 2.0, 0.5], [-0.3, 4.0, 1.1], [2.0, 0.0, 3.0]]), 1e-11);
    }

    #[test]
    fn svd3_rank_one() {
        // Outer product => rank one.
        let mut a = SmallMat::<3>::zeros();
        a.add_outer(5.0, &[1.0, 2.0, 2.0], &[2.0, 1.0, 2.0]);
        let s = svd3(&a);
        assert!(approx_eq(s.values[0], 45.0, 1e-10)); // 5 * |x| * |y| = 5*3*3
        // Small singular values from eig(A^T A) carry ~sqrt(eps) relative
        // error — acceptable: BLAST only uses SVDs of well-conditioned
        // (non-degenerate) mesh Jacobians.
        assert!(s.values[1].abs() < 1e-5 * s.values[0]);
        check_svd3(&a, 1e-6);
    }

    #[test]
    fn svd3_zero_matrix() {
        let s = svd3(&SmallMat::zeros());
        assert_eq!(s.values, [0.0, 0.0, 0.0]);
        // U and V must still be orthonormal for downstream use.
        let g = s.u.transpose() * s.u;
        for i in 0..3 {
            assert!(approx_eq(g[(i, i)], 1.0, 1e-13));
        }
    }

    #[test]
    fn svd_vectors_orthonormal() {
        let a = m3([[2.0, -1.0, 0.0], [0.5, 3.0, 1.0], [0.0, 1.0, -2.0]]);
        let s = svd3(&a);
        let gu = s.u.transpose() * s.u;
        let gv = s.v.transpose() * s.v;
        for i in 0..3 {
            for j in 0..3 {
                let id = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(gu[(i, j)], id, 1e-11), "U ({i},{j})");
                assert!(approx_eq(gv[(i, j)], id, 1e-11), "V ({i},{j})");
            }
        }
    }

    #[test]
    fn min_singular_is_length_scale() {
        // A mesh Jacobian compressed in y: h_min tracks the compression.
        let a = m2([[1.0, 0.0], [0.0, 0.01]]);
        let s = svd2(&a);
        assert!(approx_eq(s.min_singular(), 0.01, 1e-12));
        assert!(approx_eq(s.norm2(), 1.0, 1e-12));
    }
}
