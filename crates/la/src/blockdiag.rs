//! Block-diagonal matrices (the thermodynamic mass matrix `M_E`).
//!
//! `M_E` is the density-weighted Gram matrix of the *discontinuous*
//! thermodynamic basis, so it decouples zone by zone into dense blocks. BLAST
//! inverts every block once at initialization (`precompute_inverse`) and then
//! applies `M_E^{-1}` each timestep as a sparse operation — the paper's
//! kernel 11 (a CUSPARSE SpMV on the block-diagonal inverse).

use crate::csr::{CsrBuilder, CsrMatrix};
use crate::dense::DMatrix;
use crate::lu::LuFactors;

/// A square block-diagonal matrix with uniform block size.
#[derive(Clone, Debug)]
pub struct BlockDiag {
    block_size: usize,
    /// Dense blocks, one per zone, each `block_size x block_size`.
    blocks: Vec<DMatrix>,
}

impl BlockDiag {
    /// Creates from explicit blocks. All blocks must be square with the same
    /// size; panics otherwise.
    pub fn from_blocks(blocks: Vec<DMatrix>) -> Self {
        assert!(!blocks.is_empty(), "block-diagonal matrix needs >= 1 block");
        let block_size = blocks[0].rows();
        for b in &blocks {
            assert_eq!(b.shape(), (block_size, block_size), "inconsistent block shape");
        }
        Self { block_size, blocks }
    }

    /// Block dimension.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total matrix dimension.
    pub fn dim(&self) -> usize {
        self.block_size * self.blocks.len()
    }

    /// Access block `z`.
    pub fn block(&self, z: usize) -> &DMatrix {
        &self.blocks[z]
    }

    /// `y = A x`.
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "apply x length mismatch");
        assert_eq!(y.len(), self.dim(), "apply y length mismatch");
        let bs = self.block_size;
        for (z, block) in self.blocks.iter().enumerate() {
            let xs = &x[z * bs..(z + 1) * bs];
            let ys = &mut y[z * bs..(z + 1) * bs];
            crate::dense::gemv_n_raw(bs, bs, 1.0, block.as_slice(), xs, 0.0, ys);
        }
    }

    /// Inverts every block (LU per block). Panics if any block is singular —
    /// a singular `M_E` block means a degenerate zone, which is fatal for the
    /// simulation anyway.
    pub fn inverse(&self) -> BlockDiag {
        let blocks = self
            .blocks
            .iter()
            .map(|b| {
                let lu = LuFactors::factor(b);
                assert!(!lu.is_singular(), "singular thermodynamic mass block");
                lu.inverse()
            })
            .collect();
        BlockDiag { block_size: self.block_size, blocks }
    }

    /// Exports as CSR (this is what the paper feeds to the CUSPARSE SpMV of
    /// kernel 11: the block-diagonal inverse stored as a general sparse
    /// matrix).
    pub fn to_csr(&self) -> CsrMatrix {
        let n = self.dim();
        let bs = self.block_size;
        let mut builder = CsrBuilder::new(n, n);
        for (z, block) in self.blocks.iter().enumerate() {
            let base = z * bs;
            for i in 0..bs {
                for j in 0..bs {
                    builder.add(base + i, base + j, block[(i, j)]);
                }
            }
        }
        builder.build()
    }

    /// Maximum symmetry defect across blocks.
    pub fn asymmetry(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for b in &self.blocks {
            for i in 0..self.block_size {
                for j in (i + 1)..self.block_size {
                    worst = worst.max((b[(i, j)] - b[(j, i)]).abs());
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn two_blocks() -> BlockDiag {
        let b0 = DMatrix::from_row_major(2, 2, &[2.0, 1.0, 1.0, 2.0]);
        let b1 = DMatrix::from_row_major(2, 2, &[4.0, 0.0, 0.0, 0.5]);
        BlockDiag::from_blocks(vec![b0, b1])
    }

    #[test]
    fn apply_acts_blockwise() {
        let a = two_blocks();
        let mut y = vec![0.0; 4];
        a.apply(&[1.0, 1.0, 1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 3.0, 4.0, 1.0]);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = two_blocks();
        let inv = a.inverse();
        let x = [0.3, -1.2, 5.0, 0.25];
        let mut ax = vec![0.0; 4];
        a.apply(&x, &mut ax);
        let mut back = vec![0.0; 4];
        inv.apply(&ax, &mut back);
        for (u, v) in back.iter().zip(&x) {
            assert!(approx_eq(*u, *v, 1e-13));
        }
    }

    #[test]
    fn csr_export_matches_apply() {
        let a = two_blocks();
        let csr = a.to_csr();
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y1 = vec![0.0; 4];
        a.apply(&x, &mut y1);
        let y2 = csr.spmv(&x);
        assert_eq!(y1, y2);
        // Structural zeros inside block 1 are dropped by the CSR builder.
        assert_eq!(csr.nnz(), 6);
    }

    #[test]
    fn dims_and_access() {
        let a = two_blocks();
        assert_eq!(a.dim(), 4);
        assert_eq!(a.num_blocks(), 2);
        assert_eq!(a.block_size(), 2);
        assert_eq!(a.block(1)[(0, 0)], 4.0);
    }

    #[test]
    fn symmetric_blocks_have_zero_asymmetry() {
        assert_eq!(two_blocks().asymmetry(), 0.0);
        let b = DMatrix::from_row_major(2, 2, &[1.0, 2.0, 0.0, 1.0]);
        let bd = BlockDiag::from_blocks(vec![b]);
        assert_eq!(bd.asymmetry(), 2.0);
    }

    #[test]
    #[should_panic(expected = "singular thermodynamic mass block")]
    fn singular_block_panics_on_inverse() {
        let b = DMatrix::from_row_major(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        BlockDiag::from_blocks(vec![b]).inverse();
    }

    #[test]
    #[should_panic(expected = "inconsistent block shape")]
    fn mixed_block_sizes_rejected() {
        BlockDiag::from_blocks(vec![DMatrix::zeros(2, 2), DMatrix::zeros(3, 3)]);
    }
}
