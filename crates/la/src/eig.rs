//! Symmetric eigendecomposition of 2x2 and 3x3 matrices.
//!
//! The tensor artificial viscosity in BLAST needs, at *every quadrature
//! point*, the eigenvalues and eigenvectors of the symmetrized velocity
//! gradient — this is the "Eigval" work inside the paper's kernel 1/2. The
//! 2x2 case is closed-form; the 3x3 case uses cyclic Jacobi rotations, which
//! are unconditionally stable and branch-light (important for the GPU port,
//! where each thread runs one decomposition).

use crate::small::SmallMat;

/// Eigendecomposition `A = V diag(λ) V^T` of a symmetric matrix.
///
/// Eigenvalues are sorted in **descending** order; `vectors` holds the
/// corresponding unit eigenvectors as columns.
#[derive(Clone, Copy, Debug)]
pub struct SymEig<const D: usize> {
    /// Eigenvalues, descending.
    pub values: [f64; D],
    /// Unit eigenvectors, column `k` pairs with `values[k]`.
    pub vectors: SmallMat<D>,
}

impl<const D: usize> SymEig<D> {
    /// Reconstructs `V diag(λ) V^T` (for validation).
    pub fn reconstruct(&self) -> SmallMat<D> {
        let mut a = SmallMat::zeros();
        for k in 0..D {
            let mut col = [0.0; D];
            for i in 0..D {
                col[i] = self.vectors[(i, k)];
            }
            a.add_outer(self.values[k], &col, &col);
        }
        a
    }
}

/// Eigendecomposition of a symmetric 2x2 matrix (closed form).
///
/// Only the lower triangle of `a` is read; the matrix is assumed symmetric.
pub fn sym_eig2(a: &SmallMat<2>) -> SymEig<2> {
    let (p, q, r) = (a[(0, 0)], a[(1, 0)], a[(1, 1)]);
    let tr = p + r;
    let diff = p - r;
    let disc = (diff * diff * 0.25 + q * q).sqrt();
    let l0 = 0.5 * tr + disc;
    let l1 = 0.5 * tr - disc;

    let mut v = SmallMat::<2>::zeros();
    if q.abs() > f64::EPSILON * tr.abs().max(1.0) {
        // Eigenvector for l0: (l0 - r, q) normalized.
        let (x0, y0) = (l0 - r, q);
        let n0 = (x0 * x0 + y0 * y0).sqrt();
        v[(0, 0)] = x0 / n0;
        v[(1, 0)] = y0 / n0;
        // Orthogonal complement.
        v[(0, 1)] = -v[(1, 0)];
        v[(1, 1)] = v[(0, 0)];
    } else {
        // Already diagonal; order columns to match the sorted eigenvalues.
        if p >= r {
            v = SmallMat::identity();
        } else {
            v[(0, 1)] = 1.0;
            v[(1, 0)] = 1.0;
        }
    }
    SymEig { values: [l0, l1], vectors: v }
}

/// Eigendecomposition of a symmetric 3x3 matrix by cyclic Jacobi sweeps.
///
/// Converges quadratically; 8 sweeps reach machine precision for any input.
/// Only the lower triangle of `a` is read.
pub fn sym_eig3(a: &SmallMat<3>) -> SymEig<3> {
    // Work on a full symmetric copy.
    let mut m = SmallMat::<3>::from_fn(|i, j| if i >= j { a[(i, j)] } else { a[(j, i)] });
    let mut v = SmallMat::<3>::identity();

    for _sweep in 0..12 {
        let off = m[(1, 0)].abs() + m[(2, 0)].abs() + m[(2, 1)].abs();
        if off < 1e-300 || off < 1e-15 * m.norm().max(1.0) {
            break;
        }
        for &(p, q) in &[(0usize, 1usize), (0, 2), (1, 2)] {
            let apq = m[(p, q)];
            if apq == 0.0 {
                continue;
            }
            let app = m[(p, p)];
            let aqq = m[(q, q)];
            let theta = 0.5 * (aqq - app) / apq;
            // tan of the rotation angle, the numerically stable formula.
            let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
            let c = 1.0 / (1.0 + t * t).sqrt();
            let s = t * c;
            // Apply the Givens rotation G(p,q,θ) on both sides of m.
            for k in 0..3 {
                let mkp = m[(k, p)];
                let mkq = m[(k, q)];
                m[(k, p)] = c * mkp - s * mkq;
                m[(k, q)] = s * mkp + c * mkq;
            }
            for k in 0..3 {
                let mpk = m[(p, k)];
                let mqk = m[(q, k)];
                m[(p, k)] = c * mpk - s * mqk;
                m[(q, k)] = s * mpk + c * mqk;
            }
            // Accumulate eigenvectors.
            for k in 0..3 {
                let vkp = v[(k, p)];
                let vkq = v[(k, q)];
                v[(k, p)] = c * vkp - s * vkq;
                v[(k, q)] = s * vkp + c * vkq;
            }
        }
    }

    // Sort eigenpairs descending.
    let mut order = [0usize, 1, 2];
    let vals = [m[(0, 0)], m[(1, 1)], m[(2, 2)]];
    order.sort_by(|&i, &j| vals[j].partial_cmp(&vals[i]).expect("NaN eigenvalue"));
    let values = [vals[order[0]], vals[order[1]], vals[order[2]]];
    let vectors = SmallMat::<3>::from_fn(|i, k| v[(i, order[k])]);
    SymEig { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn sym2(p: f64, q: f64, r: f64) -> SmallMat<2> {
        SmallMat::from_fn(|i, j| [[p, q], [q, r]][i][j])
    }

    fn sym3(rows: [[f64; 3]; 3]) -> SmallMat<3> {
        SmallMat::from_fn(|i, j| rows[i][j])
    }

    fn check_reconstruct<const D: usize>(a: &SmallMat<D>, e: &SymEig<D>, tol: f64) {
        let r = e.reconstruct();
        for i in 0..D {
            for j in 0..D {
                assert!(
                    approx_eq(r[(i, j)], a[(i, j)], tol),
                    "({i},{j}): {} vs {}",
                    r[(i, j)],
                    a[(i, j)]
                );
            }
        }
    }

    #[test]
    fn eig2_diagonal() {
        let a = sym2(3.0, 0.0, -1.0);
        let e = sym_eig2(&a);
        assert_eq!(e.values, [3.0, -1.0]);
        check_reconstruct(&a, &e, 1e-14);
    }

    #[test]
    fn eig2_diagonal_swapped_order() {
        let a = sym2(-1.0, 0.0, 3.0);
        let e = sym_eig2(&a);
        assert_eq!(e.values, [3.0, -1.0]);
        check_reconstruct(&a, &e, 1e-14);
    }

    #[test]
    fn eig2_known_offdiagonal() {
        // [[2,1],[1,2]] has eigenvalues 3, 1 with vectors (1,1)/√2, (-1,1)/√2.
        let a = sym2(2.0, 1.0, 2.0);
        let e = sym_eig2(&a);
        assert!(approx_eq(e.values[0], 3.0, 1e-14));
        assert!(approx_eq(e.values[1], 1.0, 1e-14));
        check_reconstruct(&a, &e, 1e-14);
        let v0 = [e.vectors[(0, 0)], e.vectors[(1, 0)]];
        assert!(approx_eq(v0[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-14));
    }

    #[test]
    fn eig2_vectors_orthonormal() {
        let a = sym2(4.0, -2.5, 1.0);
        let e = sym_eig2(&a);
        let v = e.vectors;
        let g = v.transpose() * v;
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx_eq(g[(i, j)], if i == j { 1.0 } else { 0.0 }, 1e-13));
            }
        }
    }

    #[test]
    fn eig3_diagonal() {
        let a = sym3([[5.0, 0.0, 0.0], [0.0, -2.0, 0.0], [0.0, 0.0, 1.0]]);
        let e = sym_eig3(&a);
        assert!(approx_eq(e.values[0], 5.0, 1e-14));
        assert!(approx_eq(e.values[1], 1.0, 1e-14));
        assert!(approx_eq(e.values[2], -2.0, 1e-14));
        check_reconstruct(&a, &e, 1e-13);
    }

    #[test]
    fn eig3_known_matrix() {
        // Classic: [[2,1,0],[1,2,1],[0,1,2]] has eigenvalues 2±√2, 2.
        let a = sym3([[2.0, 1.0, 0.0], [1.0, 2.0, 1.0], [0.0, 1.0, 2.0]]);
        let e = sym_eig3(&a);
        let s2 = std::f64::consts::SQRT_2;
        assert!(approx_eq(e.values[0], 2.0 + s2, 1e-12));
        assert!(approx_eq(e.values[1], 2.0, 1e-12));
        assert!(approx_eq(e.values[2], 2.0 - s2, 1e-12));
        check_reconstruct(&a, &e, 1e-12);
    }

    #[test]
    fn eig3_vectors_orthonormal() {
        let a = sym3([[1.0, 2.0, 3.0], [2.0, -4.0, 0.5], [3.0, 0.5, 7.0]]);
        let e = sym_eig3(&a);
        let g = e.vectors.transpose() * e.vectors;
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    approx_eq(g[(i, j)], if i == j { 1.0 } else { 0.0 }, 1e-12),
                    "({i},{j}) = {}",
                    g[(i, j)]
                );
            }
        }
    }

    #[test]
    fn eig3_trace_and_det_invariants() {
        let a = sym3([[3.0, 1.0, 0.2], [1.0, 2.0, -0.7], [0.2, -0.7, 5.0]]);
        let e = sym_eig3(&a);
        let sum: f64 = e.values.iter().sum();
        let prod: f64 = e.values.iter().product();
        assert!(approx_eq(sum, a.trace(), 1e-12));
        assert!(approx_eq(prod, a.det(), 1e-11));
    }

    #[test]
    fn eig3_repeated_eigenvalues() {
        // 2 I with a rank-one bump: eigenvalues 3, 2, 2.
        let mut a = SmallMat::<3>::identity();
        a.scale(2.0);
        a.add_outer(1.0, &[1.0, 0.0, 0.0], &[1.0, 0.0, 0.0]);
        let e = sym_eig3(&a);
        assert!(approx_eq(e.values[0], 3.0, 1e-13));
        assert!(approx_eq(e.values[1], 2.0, 1e-13));
        assert!(approx_eq(e.values[2], 2.0, 1e-13));
        check_reconstruct(&a, &e, 1e-12);
    }

    #[test]
    fn eig2_zero_matrix() {
        let e = sym_eig2(&SmallMat::zeros());
        assert_eq!(e.values, [0.0, 0.0]);
    }

    #[test]
    fn eig3_zero_matrix() {
        let e = sym_eig3(&SmallMat::zeros());
        assert_eq!(e.values, [0.0, 0.0, 0.0]);
    }
}
