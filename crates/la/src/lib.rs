//! # blast-la
//!
//! Linear algebra for the BLAST CPU-GPU reproduction.
//!
//! The paper expresses the hot parts of the hydrodynamics code as LAPACK-like
//! linear-algebra routines: dense matrix-matrix products (`DGEMM`),
//! matrix-vector products (`DGEMV`), *batched* variants over many small
//! matrices, singular value decompositions and symmetric eigendecompositions
//! of `DIM x DIM` matrices (used in the stress-tensor evaluation), sparse
//! matrix-vector products (CSR `SpMV`), block-diagonal inverses (for the
//! thermodynamic mass matrix), and a preconditioned conjugate gradient solver
//! (for the kinematic mass matrix).
//!
//! This crate provides all of those as the *reference semantics*: the CPU
//! implementation of BLAST uses them directly, and the simulated GPU kernels
//! in `blast-kernels` are validated against them element-by-element.
//!
//! Layout convention: matrices are **column-major** (LAPACK/Fortran order),
//! matching the paper's observation that column blocking works best because
//! "the data layout is in column major".

pub mod abft;
pub mod batch;
pub mod blockdiag;
pub mod csr;
pub mod dense;
pub mod eig;
pub mod lu;
pub mod pcg;
pub mod small;
pub mod stream;
pub mod svd;
pub mod tile;

pub use abft::{AbftMode, AbftViolation};
pub use batch::{batched_gemm_nn, batched_gemm_nt, batched_gemv_n, batched_gemv_t, BatchedMats};
pub use blockdiag::BlockDiag;
pub use csr::{CsrBuilder, CsrMatrix};
pub use dense::DMatrix;
pub use eig::{sym_eig2, sym_eig3, SymEig};
pub use lu::LuFactors;
pub use pcg::{pcg_solve, pcg_solve_instrumented, pcg_solve_ws, pcg_solve_ws_reference,
    DiagPrecond, LinearOperator, PcgOptions, PcgResult, PcgWorkspace};
pub use small::SmallMat;
pub use stream::StreamVariant;
pub use svd::{svd2, svd3, Svd};
pub use tile::{GemmWorkspace, MicroTile, TileConfig};

/// Relative tolerance used by validation helpers throughout the workspace.
pub const VALIDATE_TOL: f64 = 1e-12;

/// Returns `true` when `a` and `b` agree to relative tolerance `tol`
/// (absolute near zero).
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

/// Maximum relative discrepancy between two equal-length slices.
///
/// Panics if the lengths differ; returns 0.0 for empty slices.
pub fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_near_zero_uses_absolute_scale() {
        assert!(approx_eq(1e-15, 0.0, 1e-12));
        assert!(!approx_eq(1e-3, 0.0, 1e-12));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(1e12, 1e12 + 0.5, 1e-12));
        assert!(!approx_eq(1e12, 1.001e12, 1e-12));
    }

    #[test]
    fn max_rel_diff_reports_worst_entry() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.3];
        let d = max_rel_diff(&a, &b);
        assert!((d - 0.3 / 3.3).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn max_rel_diff_empty_is_zero() {
        assert_eq!(max_rel_diff(&[], &[]), 0.0);
    }
}
