//! Algorithm-based fault tolerance (ABFT) for the tiled GEMM hot path.
//!
//! Huang–Abraham checksums: for `C = alpha * op(A) * op(B) + beta * C_pre`,
//! the column-sum vector of the result must satisfy
//!
//! ```text
//! e^T C  =  alpha * (e^T op(A)) * op(B)  +  beta * (e^T C_pre)
//! ```
//!
//! where `e` is the all-ones vector. The right-hand side costs
//! `O(mk + kn + mn)` — one rank-1 shadow of the `O(mnk)` multiply — and is
//! computed *before* the product from the untouched operands, so a bit flip
//! in an `A`/`B` panel during the multiply, or in the `C` panel after it,
//! shifts at least one column sum and is caught at the kernel boundary.
//! Column sums alone suffice for *detection* (any single corrupted entry of
//! `C` perturbs exactly its column's sum; a corrupted `A` row or `B` column
//! perturbs a whole row/column of `C`); the classical row+column pair is
//! only needed to *localize and correct*, which this layer does not do —
//! the solver rolls the step back instead.
//!
//! The verified path calls the identical [`crate::tile::gemm`], so when no
//! fault fires it is bitwise-identical to the plain tiled path; checksum
//! scratch lives in a thread-local high-water pool, preserving the
//! zero-alloc steady-state contract. The mode switch is a single relaxed
//! atomic load when [`AbftMode::Off`] (the default), so un-opted-in callers
//! pay one branch.
//!
//! Verification tolerance: the checksum identity holds exactly in real
//! arithmetic; in floating point both sides accumulate `O((m + k) * eps)`
//! relative rounding against the magnitude of the *absolute-value* checksum
//! (the same sums over `|A|`, `|B|`, `|C_pre|`), so the acceptance band is
//! `ABFT_GUARD * (m + k) * eps * scale_j` per column. Injected flips live
//! in the high-mantissa/exponent range (relative perturbation >= 2^-9 of a
//! significant entry), orders of magnitude above the band.

use crate::tile::{self, Op};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// ABFT operating mode of the process-global GEMM wrappers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbftMode {
    /// No checksums: the wrappers forward straight to the tiled core.
    Off,
    /// Column checksums computed and verified around every wrapped GEMM.
    Verify,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-global ABFT mode.
pub fn set_mode(mode: AbftMode) {
    MODE.store(matches!(mode, AbftMode::Verify) as u8, Ordering::Relaxed);
}

/// The current process-global ABFT mode.
pub fn mode() -> AbftMode {
    if MODE.load(Ordering::Relaxed) == 0 {
        AbftMode::Off
    } else {
        AbftMode::Verify
    }
}

/// Safety factor on the `(m + k) * eps` rounding band of the checksum
/// identity. Generous against false positives; still ~7 orders of
/// magnitude below the smallest injected flip on Table-3 shapes.
pub const ABFT_GUARD: f64 = 8.0;

/// A detected checksum violation — everything needed for a replayable
/// "measured vs tolerance" log line.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AbftViolation {
    /// GEMM shape (after transpositions).
    pub m: usize,
    /// Result columns.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// First column whose checksum failed.
    pub column: usize,
    /// Absolute checksum discrepancy measured.
    pub measured: f64,
    /// The tolerance it exceeded.
    pub tolerance: f64,
}

// First violation since the last poll. A Mutex (not an atomic) because the
// payload is a struct; contention is nil — violations are one-per-injected
// -flip events.
static VIOLATION: Mutex<Option<AbftViolation>> = Mutex::new(None);

// One-shot armed flip (SdcSite::GemmPanel): bit+1 in ARMED_BIT (0 = none),
// victim lane in ARMED_LANE. The first verified GEMM to swap the bit out
// consumes the flip; under a parallel batch the victim panel is whichever
// thread wins the swap, but detection -> rollback -> clean redo makes the
// final state independent of the winner.
static ARMED_BIT: AtomicU32 = AtomicU32::new(0);
static ARMED_LANE: AtomicU64 = AtomicU64::new(0);

static VERIFIES: AtomicU64 = AtomicU64::new(0);
static VIOLATIONS: AtomicU64 = AtomicU64::new(0);
static VERIFY_FLOPS: AtomicU64 = AtomicU64::new(0);

/// Arms a one-shot bit flip against the next verified GEMM's result panel
/// (the `SdcSite::GemmPanel` injection point). `bit` is the IEEE-754 bit
/// to XOR; `lane` selects the victim among significant entries.
pub fn arm_flip(lane: u64, bit: u32) {
    ARMED_LANE.store(lane, Ordering::Relaxed);
    ARMED_BIT.store(bit + 1, Ordering::Release);
}

/// Clears any still-armed flip, returning whether one was pending (i.e.
/// [`arm_flip`] fired but no verified GEMM ran to consume it). The solver
/// polls this after a step to learn whether an armed flip actually landed.
pub fn disarm() -> bool {
    ARMED_BIT.swap(0, Ordering::AcqRel) != 0
}

fn take_armed() -> Option<(u64, u32)> {
    // Fast path: no flip armed (the common case on every GEMM).
    if ARMED_BIT.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let bit = ARMED_BIT.swap(0, Ordering::Acquire);
    if bit == 0 {
        return None;
    }
    Some((ARMED_LANE.load(Ordering::Relaxed), bit - 1))
}

/// Takes the first checksum violation recorded since the last poll.
pub fn take_violation() -> Option<AbftViolation> {
    VIOLATION.lock().unwrap().take()
}

/// Verifications performed since process start.
pub fn verifies() -> u64 {
    VERIFIES.load(Ordering::Relaxed)
}

/// Checksum violations recorded since process start.
pub fn violations() -> u64 {
    VIOLATIONS.load(Ordering::Relaxed)
}

/// Drains the accumulated checksum-arithmetic flop count (for energy
/// billing of the audit overhead).
pub fn take_verify_flops() -> u64 {
    VERIFY_FLOPS.swap(0, Ordering::Relaxed)
}

fn record_violation(v: AbftViolation) {
    VIOLATIONS.fetch_add(1, Ordering::Relaxed);
    let mut slot = VIOLATION.lock().unwrap();
    if slot.is_none() {
        *slot = Some(v);
    }
}

// Column-sum scratch, one high-water pool per thread: [pre | pre_abs]
// (n each) then [w | w_abs] (k each).
thread_local! {
    static SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

// op(A)[i, p]: A is stored column-major m x k for `N`, k x m for `T`.
#[inline]
fn op_a_elem(a: &[f64], op: Op, m: usize, k: usize, i: usize, p: usize) -> f64 {
    match op {
        Op::N => a[i + p * m],
        Op::T => a[p + i * k],
    }
}

/// Column sums of a column-major `m x n` panel (test/diagnostic helper;
/// the hot path uses the in-place scratch variant).
pub fn column_sums(m: usize, n: usize, c: &[f64]) -> Vec<f64> {
    (0..n).map(|j| c[j * m..j * m + m].iter().sum()).collect()
}

/// Checks the Huang–Abraham column identity for a completed
/// `C = alpha * op_a(A) * op_b(B) + beta * C_pre`, given the column sums
/// of `C_pre` (signed and absolute) captured before the multiply.
/// Returns the first violated column, or `None` when every column is
/// within the rounding band. Pure — the property tests drive it directly.
pub fn check_columns(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    op_a: Op,
    b: &[f64],
    op_b: Op,
    beta: f64,
    pre: &[f64],
    pre_abs: &[f64],
    c_post: &[f64],
    w: &mut [f64],
    w_abs: &mut [f64],
) -> Option<AbftViolation> {
    debug_assert!(w.len() >= k && w_abs.len() >= k);
    // w = e^T op(A): column sums of the (transposed-as-needed) operand.
    for p in 0..k {
        let (mut s, mut sa) = (0.0, 0.0);
        for i in 0..m {
            let v = op_a_elem(a, op_a, m, k, i, p);
            s += v;
            sa += v.abs();
        }
        w[p] = s;
        w_abs[p] = sa;
    }
    let eps_band = ABFT_GUARD * (m + k) as f64 * f64::EPSILON;
    for j in 0..n {
        let (mut wb, mut wb_abs) = (0.0, 0.0);
        for p in 0..k {
            let bv = match op_b {
                Op::N => b[p + j * k],
                Op::T => b[j + p * n],
            };
            wb += w[p] * bv;
            wb_abs += w_abs[p] * bv.abs();
        }
        let post: f64 = c_post[j * m..j * m + m].iter().sum();
        let predicted = alpha * wb + beta * pre[j];
        let scale = alpha.abs() * wb_abs + beta.abs() * pre_abs[j];
        let measured = (post - predicted).abs();
        let tolerance = eps_band * scale + f64::MIN_POSITIVE;
        // `partial_cmp` so a NaN on either side (a corrupted panel can
        // poison the sums) trips the violation instead of passing.
        use std::cmp::Ordering::{Equal, Less};
        if !matches!(measured.partial_cmp(&tolerance), Some(Less | Equal)) {
            return Some(AbftViolation { m, n, k, column: j, measured, tolerance });
        }
    }
    None
}

/// Flips `bit` of the `lane`-th significant entry of `c` (entries at or
/// above 10% of the panel max). Mirrors `gpu_sim::apply_flip` without the
/// dependency (la sits below gpu-sim in the crate graph). Returns whether
/// a flip landed (an all-zero panel has nothing significant to corrupt).
fn flip_panel(c: &mut [f64], lane: u64, bit: u32) -> bool {
    let max_abs = c.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
    if max_abs <= 0.0 || !max_abs.is_finite() {
        return false;
    }
    let threshold = 0.1 * max_abs;
    let eligible = c.iter().filter(|x| x.abs() >= threshold).count();
    let pick = (lane % eligible as u64) as usize;
    if let Some((i, _)) = c.iter().enumerate().filter(|(_, x)| x.abs() >= threshold).nth(pick) {
        c[i] = f64::from_bits(c[i].to_bits() ^ (1u64 << bit));
        true
    } else {
        false
    }
}

/// `C = alpha * op_a(A) * op_b(B) + beta * C` through the tiled core, with
/// Huang–Abraham column checksums verified when [`AbftMode::Verify`] is
/// active. The multiply itself is the identical [`tile::gemm`] call, so
/// the no-fault result is bitwise-identical to the unchecked path.
pub fn gemm_checked(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    op_a: Op,
    b: &[f64],
    op_b: Op,
    beta: f64,
    c: &mut [f64],
) {
    if mode() == AbftMode::Off || m == 0 || n == 0 {
        tile::gemm(m, n, k, alpha, a, op_a, b, op_b, beta, c);
        return;
    }
    SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        let need = 2 * n + 2 * k;
        if s.len() < need {
            s.resize(need, 0.0);
        }
        let (pre_all, w_all) = s.split_at_mut(2 * n);
        let (pre, pre_abs) = pre_all.split_at_mut(n);
        let (w, w_abs) = w_all.split_at_mut(k);
        if beta != 0.0 {
            for j in 0..n {
                let col = &c[j * m..j * m + m];
                pre[j] = col.iter().sum();
                pre_abs[j] = col.iter().map(|x| x.abs()).sum();
            }
        } else {
            pre[..n].fill(0.0);
            pre_abs[..n].fill(0.0);
        }

        tile::gemm(m, n, k, alpha, a, op_a, b, op_b, beta, c);

        // SdcSite::GemmPanel injection point: corrupt the freshly written
        // result panel before verification, exactly where a device-memory
        // strike during the epilogue would land.
        if let Some((lane, bit)) = take_armed() {
            flip_panel(&mut c[..m * n], lane, bit);
        }

        VERIFIES.fetch_add(1, Ordering::Relaxed);
        VERIFY_FLOPS.fetch_add((4 * (m * n + m * k + k * n)) as u64, Ordering::Relaxed);
        if let Some(v) =
            check_columns(m, n, k, alpha, a, op_a, b, op_b, beta, pre, pre_abs, c, w, w_abs)
        {
            record_violation(v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(len: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..len).map(f).collect()
    }

    #[test]
    fn clean_gemm_passes_checksums() {
        let (m, n, k) = (7, 5, 6);
        let a = filled(m * k, |i| (i as f64 * 0.37).sin());
        let b = filled(k * n, |i| (i as f64 * 0.11).cos());
        let mut c = filled(m * n, |i| 0.01 * i as f64);
        let pre = column_sums(m, n, &c);
        let pre_abs: Vec<f64> =
            (0..n).map(|j| c[j * m..j * m + m].iter().map(|x| x.abs()).sum()).collect();
        tile::gemm(m, n, k, 1.3, &a, Op::N, &b, Op::N, 0.7, &mut c);
        let mut w = vec![0.0; k];
        let mut w_abs = vec![0.0; k];
        let v = check_columns(
            m, n, k, 1.3, &a, Op::N, &b, Op::N, 0.7, &pre, &pre_abs, &c, &mut w, &mut w_abs,
        );
        assert!(v.is_none(), "clean multiply must verify: {v:?}");
    }

    #[test]
    fn flipped_result_entry_is_detected() {
        let (m, n, k) = (8, 4, 5);
        let a = filled(m * k, |i| 1.0 + (i % 7) as f64);
        let b = filled(k * n, |i| 0.5 - (i % 3) as f64);
        let mut c = vec![0.0; m * n];
        tile::gemm(m, n, k, 1.0, &a, Op::N, &b, Op::N, 0.0, &mut c);
        assert!(flip_panel(&mut c, 3, 48), "a significant entry exists");
        let pre = vec![0.0; n];
        let mut w = vec![0.0; k];
        let mut w_abs = vec![0.0; k];
        let v = check_columns(
            m, n, k, 1.0, &a, Op::N, &b, Op::N, 0.0, &pre, &pre, &c, &mut w, &mut w_abs,
        );
        let v = v.expect("bit 48 flip must violate the column identity");
        assert!(v.measured > v.tolerance);
    }

    #[test]
    fn checked_wrapper_is_bitwise_identical_when_clean() {
        let (m, n, k) = (9, 6, 4);
        let a = filled(m * k, |i| (i as f64).sqrt() - 2.0);
        let b = filled(n * k, |i| 1.0 / (1.0 + i as f64));
        let mut plain = filled(m * n, |i| i as f64 * 1e-3);
        let mut checked = plain.clone();
        tile::gemm(m, n, k, 2.0, &a, Op::N, &b, Op::T, 0.5, &mut plain);
        set_mode(AbftMode::Verify);
        gemm_checked(m, n, k, 2.0, &a, Op::N, &b, Op::T, 0.5, &mut checked);
        set_mode(AbftMode::Off);
        assert_eq!(plain, checked, "verification must not touch the result");
    }
}
