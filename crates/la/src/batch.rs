//! Batched small-matrix operations.
//!
//! "A major change from the CPU code to our newly designed CUDA code is that
//! loops become batch-processed" (§3.1.1). This module defines the packed
//! batched storage format shared by the CPU reference and the simulated-GPU
//! kernels, plus reference batched DGEMM/DGEMV implementations. Each batch
//! member is stored contiguously in column-major order, members back to back
//! — exactly how `cublasDgemmBatched` expects its device arrays, minus the
//! pointer indirection.

use rayon::prelude::*;

use crate::dense::{gemm_nn_raw, gemm_nt_raw, gemv_n_raw, gemv_t_raw};

/// A packed batch of equally-shaped column-major matrices.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchedMats {
    rows: usize,
    cols: usize,
    count: usize,
    data: Vec<f64>,
}

impl BatchedMats {
    /// Zero-initialized batch of `count` matrices of shape `rows x cols`.
    pub fn zeros(rows: usize, cols: usize, count: usize) -> Self {
        Self { rows, cols, count, data: vec![0.0; rows * cols * count] }
    }

    /// Empty batch (`0 x 0 x 0`); a placeholder for scratch slots that are
    /// shaped later via [`BatchedMats::ensure`].
    pub fn empty() -> Self {
        Self { rows: 0, cols: 0, count: 0, data: Vec::new() }
    }

    /// Reshapes `self` to `rows x cols x count` and fills it with zeros,
    /// reusing the existing heap buffer whenever it is large enough. The
    /// result is indistinguishable from [`BatchedMats::zeros`], but
    /// steady-state callers that hold the batch in a workspace perform no
    /// heap allocation.
    pub fn ensure(&mut self, rows: usize, cols: usize, count: usize) {
        let len = rows * cols * count;
        self.rows = rows;
        self.cols = cols;
        self.count = count;
        self.data.truncate(len);
        self.data.iter_mut().for_each(|x| *x = 0.0);
        self.data.resize(len, 0.0);
    }

    /// Builds from packed data (`count * rows * cols` column-major values).
    pub fn from_data(rows: usize, cols: usize, count: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols * count, "batched data length mismatch");
        Self { rows, cols, count, data }
    }

    /// Builds by evaluating `f(batch, row, col)`.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        count: usize,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Self {
        let mut b = Self::zeros(rows, cols, count);
        for z in 0..count {
            for j in 0..cols {
                for i in 0..rows {
                    let idx = b.index_of(z, i, j);
                    b.data[idx] = f(z, i, j);
                }
            }
        }
        b
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of matrices in the batch.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Stride between consecutive matrices.
    pub fn stride(&self) -> usize {
        self.rows * self.cols
    }

    /// Flat index of entry `(i, j)` of batch member `z`.
    #[inline]
    pub fn index_of(&self, z: usize, i: usize, j: usize) -> usize {
        z * self.stride() + i + j * self.rows
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, z: usize, i: usize, j: usize) -> f64 {
        self.data[self.index_of(z, i, j)]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, z: usize, i: usize, j: usize, v: f64) {
        let idx = self.index_of(z, i, j);
        self.data[idx] = v;
    }

    /// Column-major slice of batch member `z`.
    #[inline]
    pub fn mat(&self, z: usize) -> &[f64] {
        let s = self.stride();
        &self.data[z * s..(z + 1) * s]
    }

    /// Mutable column-major slice of batch member `z`.
    #[inline]
    pub fn mat_mut(&mut self, z: usize) -> &mut [f64] {
        let s = self.stride();
        &mut self.data[z * s..(z + 1) * s]
    }

    /// Full packed storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Full packed mutable storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Parallel iterator over `(index, matrix-slice)` pairs.
    pub fn par_mats_mut(&mut self) -> impl IndexedParallelIterator<Item = (usize, &mut [f64])> {
        let s = self.stride();
        self.data.par_chunks_exact_mut(s).enumerate()
    }
}

/// Batched `C_z = alpha A_z B_z + beta C_z` (all batches share shapes).
///
/// This is the semantics of `cublasDgemmBatched` with NN transposes — the
/// paper's kernels 5/6 implement the `DIM x DIM` case of exactly this.
pub fn batched_gemm_nn(
    alpha: f64,
    a: &BatchedMats,
    b: &BatchedMats,
    beta: f64,
    c: &mut BatchedMats,
) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "batched gemm_nn inner dim mismatch");
    assert_eq!(c.shape(), (m, n), "batched gemm_nn output shape mismatch");
    assert!(
        a.count() == b.count() && b.count() == c.count(),
        "batched gemm_nn batch count mismatch"
    );
    let sa = a.stride();
    let sb = b.stride();
    c.par_mats_mut().for_each(|(z, cz)| {
        gemm_nn_raw(
            m,
            n,
            k,
            alpha,
            &a.as_slice()[z * sa..(z + 1) * sa],
            &b.as_slice()[z * sb..(z + 1) * sb],
            beta,
            cz,
        );
    });
}

/// Batched `C_z = alpha A_z B_z^T + beta C_z` (`B_z` is `n x k`).
pub fn batched_gemm_nt(
    alpha: f64,
    a: &BatchedMats,
    b: &BatchedMats,
    beta: f64,
    c: &mut BatchedMats,
) {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(k, kb, "batched gemm_nt inner dim mismatch");
    assert_eq!(c.shape(), (m, n), "batched gemm_nt output shape mismatch");
    assert!(
        a.count() == b.count() && b.count() == c.count(),
        "batched gemm_nt batch count mismatch"
    );
    let sa = a.stride();
    let sb = b.stride();
    c.par_mats_mut().for_each(|(z, cz)| {
        gemm_nt_raw(
            m,
            n,
            k,
            alpha,
            &a.as_slice()[z * sa..(z + 1) * sa],
            &b.as_slice()[z * sb..(z + 1) * sb],
            beta,
            cz,
        );
    });
}

/// Batched DGEMV `y_z = alpha A_z x_z + beta y_z`. Vectors are packed
/// back-to-back (`x`: count * n, `y`: count * m).
///
/// This is the operation CUBLAS *lacks* a batched routine for — the paper's
/// kernel 8 ("one thread block does a DGEMV") beats streamed `cublasDgemv`
/// by 90x (Table 4).
pub fn batched_gemv_n(alpha: f64, a: &BatchedMats, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n) = a.shape();
    assert_eq!(x.len(), n * a.count(), "batched gemv_n x length mismatch");
    assert_eq!(y.len(), m * a.count(), "batched gemv_n y length mismatch");
    let sa = a.stride();
    y.par_chunks_exact_mut(m).enumerate().for_each(|(z, yz)| {
        gemv_n_raw(
            m,
            n,
            alpha,
            &a.as_slice()[z * sa..(z + 1) * sa],
            &x[z * n..(z + 1) * n],
            beta,
            yz,
        );
    });
}

/// Batched transposed DGEMV `y_z = alpha A_z^T x_z + beta y_z`
/// (`x`: count * m, `y`: count * n) — the paper's kernel 10 (`F^T v`).
pub fn batched_gemv_t(alpha: f64, a: &BatchedMats, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n) = a.shape();
    assert_eq!(x.len(), m * a.count(), "batched gemv_t x length mismatch");
    assert_eq!(y.len(), n * a.count(), "batched gemv_t y length mismatch");
    let sa = a.stride();
    y.par_chunks_exact_mut(n).enumerate().for_each(|(z, yz)| {
        gemv_t_raw(
            m,
            n,
            alpha,
            &a.as_slice()[z * sa..(z + 1) * sa],
            &x[z * m..(z + 1) * m],
            beta,
            yz,
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{gemm_nn, gemm_nt, gemv_n, gemv_t, DMatrix};

    fn batch_to_dmat(b: &BatchedMats, z: usize) -> DMatrix {
        DMatrix::from_col_major(b.shape().0, b.shape().1, b.mat(z).to_vec())
    }

    fn sample_batch(rows: usize, cols: usize, count: usize, seed: f64) -> BatchedMats {
        BatchedMats::from_fn(rows, cols, count, |z, i, j| {
            (seed + z as f64 * 1.7 + i as f64 * 0.3 - j as f64 * 0.9).sin()
        })
    }

    #[test]
    fn packed_layout_indexing() {
        let b = BatchedMats::from_fn(2, 3, 4, |z, i, j| (z * 100 + i * 10 + j) as f64);
        assert_eq!(b.get(3, 1, 2), 312.0);
        assert_eq!(b.stride(), 6);
        // Batch 1 starts at flat offset 6; (0,0) of batch 1 is data[6].
        assert_eq!(b.as_slice()[6], 100.0);
    }

    #[test]
    fn batched_gemm_nn_matches_per_matrix_gemm() {
        let a = sample_batch(3, 4, 5, 0.1);
        let b = sample_batch(4, 2, 5, 0.7);
        let mut c = BatchedMats::zeros(3, 2, 5);
        batched_gemm_nn(1.0, &a, &b, 0.0, &mut c);
        for z in 0..5 {
            let mut expect = DMatrix::zeros(3, 2);
            gemm_nn(1.0, &batch_to_dmat(&a, z), &batch_to_dmat(&b, z), 0.0, &mut expect);
            assert_eq!(batch_to_dmat(&c, z), expect, "batch {z}");
        }
    }

    #[test]
    fn batched_gemm_nt_matches_per_matrix_gemm() {
        let a = sample_batch(3, 4, 6, 0.2);
        let b = sample_batch(2, 4, 6, 0.9); // will be transposed
        let mut c = BatchedMats::zeros(3, 2, 6);
        batched_gemm_nt(2.0, &a, &b, 0.0, &mut c);
        for z in 0..6 {
            let mut expect = DMatrix::zeros(3, 2);
            gemm_nt(2.0, &batch_to_dmat(&a, z), &batch_to_dmat(&b, z), 0.0, &mut expect);
            assert_eq!(batch_to_dmat(&c, z), expect, "batch {z}");
        }
    }

    #[test]
    fn batched_gemv_n_matches_per_matrix_gemv() {
        let a = sample_batch(4, 3, 7, 0.4);
        let x: Vec<f64> = (0..3 * 7).map(|i| (i as f64).cos()).collect();
        let mut y = vec![0.0; 4 * 7];
        batched_gemv_n(1.0, &a, &x, 0.0, &mut y);
        for z in 0..7 {
            let mut expect = vec![0.0; 4];
            gemv_n(1.0, &batch_to_dmat(&a, z), &x[z * 3..(z + 1) * 3], 0.0, &mut expect);
            assert_eq!(&y[z * 4..(z + 1) * 4], expect.as_slice(), "batch {z}");
        }
    }

    #[test]
    fn batched_gemv_t_matches_per_matrix_gemv() {
        let a = sample_batch(4, 3, 7, 0.5);
        let x: Vec<f64> = (0..4 * 7).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut y = vec![0.0; 3 * 7];
        batched_gemv_t(1.0, &a, &x, 0.0, &mut y);
        for z in 0..7 {
            let mut expect = vec![0.0; 3];
            gemv_t(1.0, &batch_to_dmat(&a, z), &x[z * 4..(z + 1) * 4], 0.0, &mut expect);
            for (u, v) in y[z * 3..(z + 1) * 3].iter().zip(&expect) {
                assert!((u - v).abs() < 1e-14, "batch {z}");
            }
        }
    }

    #[test]
    fn beta_accumulation_in_batched_gemm() {
        let a = sample_batch(2, 2, 3, 0.3);
        let b = sample_batch(2, 2, 3, 0.6);
        let mut c = BatchedMats::from_fn(2, 2, 3, |_, _, _| 1.0);
        let keep = c.clone();
        batched_gemm_nn(0.0, &a, &b, 2.0, &mut c);
        for (u, v) in c.as_slice().iter().zip(keep.as_slice()) {
            assert_eq!(*u, 2.0 * v);
        }
    }

    #[test]
    #[should_panic(expected = "batch count mismatch")]
    fn count_mismatch_panics() {
        let a = BatchedMats::zeros(2, 2, 3);
        let b = BatchedMats::zeros(2, 2, 4);
        let mut c = BatchedMats::zeros(2, 2, 3);
        batched_gemm_nn(1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn dim2_and_dim3_jacobian_batches() {
        // The paper's kernels 5/6 work on DIM x DIM batches; sanity-check the
        // identity batch acts as neutral element in both dims.
        for d in [2usize, 3] {
            let id = BatchedMats::from_fn(d, d, 10, |_, i, j| if i == j { 1.0 } else { 0.0 });
            let a = sample_batch(d, d, 10, 0.8);
            let mut c = BatchedMats::zeros(d, d, 10);
            batched_gemm_nn(1.0, &a, &id, 0.0, &mut c);
            assert_eq!(c, a);
        }
    }
}
