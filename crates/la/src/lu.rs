//! Dense LU factorization with partial pivoting.
//!
//! The thermodynamic mass matrix `M_E` is block diagonal with one dense block
//! per zone; BLAST inverts each block *once* at initialization and applies
//! the inverse every timestep (§2 of the paper). The inversion is done with
//! a plain LAPACK-style `dgetrf`/`dgetri` pair implemented here.

use crate::dense::DMatrix;

/// LU factors of a square matrix: `P A = L U` with unit-diagonal `L`.
#[derive(Clone, Debug)]
pub struct LuFactors {
    /// Packed LU: `U` on and above the diagonal, `L` strictly below.
    lu: DMatrix,
    /// Row permutation: step `k` swapped rows `k` and `piv[k]`.
    piv: Vec<usize>,
    /// Whether the matrix is (numerically) singular.
    singular: bool,
}

impl LuFactors {
    /// Factors `a` in LAPACK `dgetrf` style (partial pivoting).
    pub fn factor(a: &DMatrix) -> Self {
        let n = a.rows();
        assert_eq!(a.rows(), a.cols(), "LU requires a square matrix");
        let mut lu = a.clone();
        let mut piv = vec![0usize; n];
        let mut singular = false;

        for k in 0..n {
            // Pivot: largest |entry| in column k at/below the diagonal.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            piv[k] = p;
            if pmax == 0.0 {
                singular = true;
                continue;
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let l = lu[(i, k)] / pivot;
                lu[(i, k)] = l;
                if l != 0.0 {
                    for j in (k + 1)..n {
                        let ukj = lu[(k, j)];
                        lu[(i, j)] -= l * ukj;
                    }
                }
            }
        }
        Self { lu, piv, singular }
    }

    /// `true` if a zero pivot was hit during factorization.
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` in place (`b` becomes `x`).
    ///
    /// Panics if the factorization was singular.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        assert!(!self.singular, "solve with singular LU factors");
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Apply permutation.
        for k in 0..n {
            let p = self.piv[k];
            if p != k {
                b.swap(k, p);
            }
        }
        // Forward substitution with unit-lower L.
        for i in 1..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * b[j];
            }
            b[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = b[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * b[j];
            }
            b[i] = acc / self.lu[(i, i)];
        }
    }

    /// Solves `A x = b`, returning `x`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Explicit inverse (column-by-column solve), the `dgetri` analog.
    pub fn inverse(&self) -> DMatrix {
        let n = self.dim();
        let mut inv = DMatrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e.iter_mut().for_each(|x| *x = 0.0);
            e[j] = 1.0;
            self.solve_in_place(&mut e);
            inv.col_mut(j).copy_from_slice(&e);
        }
        inv
    }

    /// Determinant from the LU factors.
    pub fn det(&self) -> f64 {
        if self.singular {
            return 0.0;
        }
        let n = self.dim();
        let mut d = 1.0;
        for k in 0..n {
            d *= self.lu[(k, k)];
            if self.piv[k] != k {
                d = -d;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::dense::gemm_nn;

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let a = DMatrix::from_row_major(2, 2, &[2.0, 1.0, 1.0, 3.0]);
        let lu = LuFactors::factor(&a);
        let x = lu.solve(&[3.0, 5.0]);
        assert!(approx_eq(x[0], 0.8, 1e-14));
        assert!(approx_eq(x[1], 1.4, 1e-14));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = DMatrix::from_row_major(
            3,
            3,
            &[4.0, -2.0, 1.0, -2.0, 4.0, -2.0, 1.0, -2.0, 4.0],
        );
        let inv = LuFactors::factor(&a).inverse();
        let mut prod = DMatrix::zeros(3, 3);
        gemm_nn(1.0, &a, &inv, 0.0, &mut prod);
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx_eq(prod[(i, j)], if i == j { 1.0 } else { 0.0 }, 1e-12));
            }
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DMatrix::from_row_major(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let lu = LuFactors::factor(&a);
        assert!(!lu.is_singular());
        let x = lu.solve(&[2.0, 3.0]);
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = DMatrix::from_row_major(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        let lu = LuFactors::factor(&a);
        assert!(lu.is_singular());
        assert_eq!(lu.det(), 0.0);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn solve_singular_panics() {
        let a = DMatrix::from_row_major(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        LuFactors::factor(&a).solve(&[1.0, 1.0]);
    }

    #[test]
    fn determinant_with_pivot_sign() {
        let a = DMatrix::from_row_major(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let lu = LuFactors::factor(&a);
        assert!(approx_eq(lu.det(), -1.0, 1e-14));
        let b = DMatrix::from_row_major(3, 3, &[1.0, 2.0, 3.0, 0.0, 1.0, 4.0, 5.0, 6.0, 0.0]);
        assert!(approx_eq(LuFactors::factor(&b).det(), 1.0, 1e-12));
    }

    #[test]
    fn random_spd_solve_residual_small() {
        // Deterministic "random" SPD matrix: B^T B + n I.
        let n = 12;
        let b = DMatrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 / 13.0);
        let mut a = DMatrix::zeros(n, n);
        crate::dense::gemm_tn(1.0, &b, &b, 0.0, &mut a);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = LuFactors::factor(&a).solve(&rhs);
        let mut r = rhs.clone();
        crate::dense::gemv_n(-1.0, &a, &x, 1.0, &mut r);
        assert!(crate::dense::nrm2(&r) < 1e-10);
    }
}
