//! Fixed-size `DIM x DIM` matrices (`DIM` = 2 or 3).
//!
//! The corner-force evaluation works almost entirely on tiny matrices: the
//! zone Jacobian `J_z(q̂_k)`, its inverse/adjugate, the velocity gradient,
//! and the total stress tensor `σ̂(q̂_k)` are all `DIM x DIM`. The paper's
//! kernels 1, 2, 5 and 6 batch-process millions of these. On the GPU each
//! thread keeps one such matrix in a *register array* (the optimization of
//! Fig. 4), which is exactly what a `[[f64; D]; D]` by-value struct models in
//! Rust: the compiler keeps it in registers when it fits.

use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// Stack-allocated column-major `D x D` matrix.
///
/// `m[(i, j)]` is row `i`, column `j`. Stored as `cols[j][i]` so that
/// flattening matches the column-major convention of [`crate::DMatrix`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SmallMat<const D: usize> {
    cols: [[f64; D]; D],
}

impl<const D: usize> Default for SmallMat<D> {
    fn default() -> Self {
        Self::zeros()
    }
}

impl<const D: usize> SmallMat<D> {
    /// The zero matrix.
    #[inline]
    pub fn zeros() -> Self {
        Self { cols: [[0.0; D]; D] }
    }

    /// The identity matrix.
    #[inline]
    pub fn identity() -> Self {
        let mut m = Self::zeros();
        for i in 0..D {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a closure over `(row, col)`.
    #[inline]
    pub fn from_fn(mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros();
        for j in 0..D {
            for i in 0..D {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Reads a matrix from a column-major slice of length `D*D`.
    #[inline]
    pub fn from_col_slice(s: &[f64]) -> Self {
        debug_assert_eq!(s.len(), D * D);
        Self::from_fn(|i, j| s[i + j * D])
    }

    /// Writes the matrix into a column-major slice of length `D*D`.
    #[inline]
    pub fn write_col_slice(&self, s: &mut [f64]) {
        debug_assert_eq!(s.len(), D * D);
        for j in 0..D {
            for i in 0..D {
                s[i + j * D] = self[(i, j)];
            }
        }
    }

    /// Transpose.
    #[inline]
    pub fn transpose(&self) -> Self {
        Self::from_fn(|i, j| self[(j, i)])
    }

    /// Matrix-vector product.
    #[inline]
    pub fn mul_vec(&self, x: &[f64; D]) -> [f64; D] {
        let mut y = [0.0; D];
        for j in 0..D {
            for i in 0..D {
                y[i] += self[(i, j)] * x[j];
            }
        }
        y
    }

    /// Double contraction `A : B = sum_ij A_ij B_ij` (used in eq. (5): the
    /// stress tensor is contracted with the transformed basis gradient).
    #[inline]
    pub fn ddot(&self, other: &Self) -> f64 {
        let mut s = 0.0;
        for j in 0..D {
            for i in 0..D {
                s += self[(i, j)] * other[(i, j)];
            }
        }
        s
    }

    /// Symmetric part `(A + A^T) / 2` (the rate-of-deformation tensor used by
    /// the artificial viscosity).
    #[inline]
    pub fn sym(&self) -> Self {
        Self::from_fn(|i, j| 0.5 * (self[(i, j)] + self[(j, i)]))
    }

    /// Trace.
    #[inline]
    pub fn trace(&self) -> f64 {
        (0..D).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.ddot(self).sqrt()
    }

    /// Scales in place.
    #[inline]
    pub fn scale(&mut self, alpha: f64) {
        for j in 0..D {
            for i in 0..D {
                self[(i, j)] *= alpha;
            }
        }
    }

    /// Rank-one update `self += alpha * x y^T` (builds e.g. viscosity tensors
    /// from eigenvectors).
    #[inline]
    pub fn add_outer(&mut self, alpha: f64, x: &[f64; D], y: &[f64; D]) {
        for j in 0..D {
            for i in 0..D {
                self[(i, j)] += alpha * x[i] * y[j];
            }
        }
    }
}

impl SmallMat<2> {
    /// Determinant (2x2).
    #[inline]
    pub fn det(&self) -> f64 {
        self[(0, 0)] * self[(1, 1)] - self[(0, 1)] * self[(1, 0)]
    }

    /// Adjugate (transpose of the cofactor matrix): `A * adj(A) = det(A) I`.
    ///
    /// Kernel 1 of the paper computes this for every quadrature point because
    /// `J^{-1} = adj(J) / det(J)` avoids dividing until the determinant is
    /// also needed for `|J|`.
    #[inline]
    pub fn adjugate(&self) -> Self {
        let mut m = Self::zeros();
        m[(0, 0)] = self[(1, 1)];
        m[(0, 1)] = -self[(0, 1)];
        m[(1, 0)] = -self[(1, 0)];
        m[(1, 1)] = self[(0, 0)];
        m
    }

    /// Inverse. Panics (debug) on exactly singular input.
    #[inline]
    pub fn inverse(&self) -> Self {
        let d = self.det();
        debug_assert!(d != 0.0, "singular 2x2 matrix");
        let mut m = self.adjugate();
        m.scale(1.0 / d);
        m
    }
}

impl SmallMat<3> {
    /// Determinant (3x3) by cofactor expansion.
    #[inline]
    pub fn det(&self) -> f64 {
        let m = self;
        m[(0, 0)] * (m[(1, 1)] * m[(2, 2)] - m[(1, 2)] * m[(2, 1)])
            - m[(0, 1)] * (m[(1, 0)] * m[(2, 2)] - m[(1, 2)] * m[(2, 0)])
            + m[(0, 2)] * (m[(1, 0)] * m[(2, 1)] - m[(1, 1)] * m[(2, 0)])
    }

    /// Adjugate (3x3): `A * adj(A) = det(A) I`.
    #[inline]
    pub fn adjugate(&self) -> Self {
        let m = self;
        let cof = |i: usize, j: usize| -> f64 {
            // 2x2 minor with row i, column j removed, with sign.
            let r = [(i + 1) % 3, (i + 2) % 3];
            let c = [(j + 1) % 3, (j + 2) % 3];
            // Using cyclic indices keeps the sign pattern implicit.
            m[(r[0], c[0])] * m[(r[1], c[1])] - m[(r[0], c[1])] * m[(r[1], c[0])]
        };
        // adj(A)_ij = cofactor_ji; with cyclic minors cof(j, i) already
        // carries the checkerboard sign.
        Self::from_fn(|i, j| cof(j, i))
    }

    /// Inverse. Panics (debug) on exactly singular input.
    #[inline]
    pub fn inverse(&self) -> Self {
        let d = self.det();
        debug_assert!(d != 0.0, "singular 3x3 matrix");
        let mut m = self.adjugate();
        m.scale(1.0 / d);
        m
    }
}

impl<const D: usize> Index<(usize, usize)> for SmallMat<D> {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.cols[j][i]
    }
}

impl<const D: usize> IndexMut<(usize, usize)> for SmallMat<D> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.cols[j][i]
    }
}

impl<const D: usize> Mul for SmallMat<D> {
    type Output = SmallMat<D>;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        let mut c = Self::zeros();
        for j in 0..D {
            for p in 0..D {
                let b = rhs[(p, j)];
                for i in 0..D {
                    c[(i, j)] += self[(i, p)] * b;
                }
            }
        }
        c
    }
}

impl<const D: usize> Add for SmallMat<D> {
    type Output = SmallMat<D>;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::from_fn(|i, j| self[(i, j)] + rhs[(i, j)])
    }
}

impl<const D: usize> Sub for SmallMat<D> {
    type Output = SmallMat<D>;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::from_fn(|i, j| self[(i, j)] - rhs[(i, j)])
    }
}

impl<const D: usize> AddAssign for SmallMat<D> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        for j in 0..D {
            for i in 0..D {
                self[(i, j)] += rhs[(i, j)];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn m2(a: f64, b: f64, c: f64, d: f64) -> SmallMat<2> {
        // Row-major convenience: [a b; c d].
        SmallMat::from_fn(|i, j| [[a, b], [c, d]][i][j])
    }

    fn m3(rows: [[f64; 3]; 3]) -> SmallMat<3> {
        SmallMat::from_fn(|i, j| rows[i][j])
    }

    #[test]
    fn det2_known() {
        assert_eq!(m2(1.0, 2.0, 3.0, 4.0).det(), -2.0);
    }

    #[test]
    fn adjugate2_identity_relation() {
        let a = m2(3.0, 1.0, -2.0, 5.0);
        let prod = a * a.adjugate();
        let d = a.det();
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { d } else { 0.0 };
                assert!(approx_eq(prod[(i, j)], expect, 1e-14));
            }
        }
    }

    #[test]
    fn inverse2_roundtrip() {
        let a = m2(3.0, 1.0, -2.0, 5.0);
        let p = a * a.inverse();
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx_eq(p[(i, j)], if i == j { 1.0 } else { 0.0 }, 1e-14));
            }
        }
    }

    #[test]
    fn det3_known() {
        let a = m3([[2.0, 0.0, 1.0], [1.0, 3.0, 2.0], [1.0, 1.0, 1.0]]);
        // det = 2*(3-2) - 0 + 1*(1-3) = 0
        assert_eq!(a.det(), 0.0);
        let b = m3([[1.0, 2.0, 3.0], [0.0, 1.0, 4.0], [5.0, 6.0, 0.0]]);
        assert_eq!(b.det(), 1.0);
    }

    #[test]
    fn adjugate3_identity_relation() {
        let a = m3([[1.0, 2.0, 3.0], [0.0, 1.0, 4.0], [5.0, 6.0, 0.0]]);
        let prod = a * a.adjugate();
        let d = a.det();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { d } else { 0.0 };
                assert!(approx_eq(prod[(i, j)], expect, 1e-12), "({i},{j})");
            }
        }
    }

    #[test]
    fn inverse3_known() {
        // This matrix has det 1 and an integer inverse.
        let a = m3([[1.0, 2.0, 3.0], [0.0, 1.0, 4.0], [5.0, 6.0, 0.0]]);
        let inv = a.inverse();
        let expect = m3([[-24.0, 18.0, 5.0], [20.0, -15.0, -4.0], [-5.0, 4.0, 1.0]]);
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx_eq(inv[(i, j)], expect[(i, j)], 1e-12));
            }
        }
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), [3.0, 7.0]);
    }

    #[test]
    fn ddot_is_frobenius_inner_product() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let b = m2(5.0, 6.0, 7.0, 8.0);
        assert_eq!(a.ddot(&b), 5.0 + 12.0 + 21.0 + 32.0);
    }

    #[test]
    fn sym_is_symmetric_and_preserves_trace() {
        let a = m3([[1.0, 5.0, 0.0], [2.0, 2.0, 7.0], [4.0, 1.0, 3.0]]);
        let s = a.sym();
        assert_eq!(s, s.transpose());
        assert_eq!(s.trace(), a.trace());
    }

    #[test]
    fn outer_product_accumulates() {
        let mut a = SmallMat::<2>::zeros();
        a.add_outer(2.0, &[1.0, 0.0], &[0.0, 1.0]);
        assert_eq!(a[(0, 1)], 2.0);
        assert_eq!(a[(1, 0)], 0.0);
    }

    #[test]
    fn col_slice_roundtrip() {
        let a = m3([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]);
        let mut buf = [0.0; 9];
        a.write_col_slice(&mut buf);
        assert_eq!(SmallMat::<3>::from_col_slice(&buf), a);
        // Column-major flattening: first 3 entries are column 0.
        assert_eq!(&buf[..3], &[1.0, 4.0, 7.0]);
    }

    #[test]
    fn add_sub_addassign() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let b = m2(4.0, 3.0, 2.0, 1.0);
        assert_eq!((a + b).trace(), 10.0);
        assert_eq!((a - a).norm(), 0.0);
        let mut c = a;
        c += b;
        assert_eq!(c[(0, 0)], 5.0);
    }
}
