//! Dense column-major matrices and BLAS-3/BLAS-2 style operations.
//!
//! `DMatrix` is the workhorse dense type of the reproduction. It deliberately
//! mirrors the LAPACK storage convention (column-major, leading dimension =
//! number of rows) because the paper's custom CUDA kernels are written against
//! LAPACK-like interfaces and exploit column-major layout in their blocking
//! strategy.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense column-major `rows x cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    /// Column-major storage: element `(i, j)` lives at `data[i + j * rows]`.
    data: Vec<f64>,
}

impl DMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from column-major data.
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "column-major data length mismatch");
        Self { rows, cols, data }
    }

    /// Builds a matrix from a row-major slice (convenient in tests).
    pub fn from_row_major(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = data[i * cols + j];
            }
        }
        m
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Column-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable column-major backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of column `j` as a contiguous slice (column-major privilege).
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable borrow of column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> DMatrix {
        let mut t = DMatrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for i in 0..self.rows {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Fills the matrix with a constant.
    pub fn fill(&mut self, value: f64) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// `self += alpha * other` (AXPY on the whole matrix).
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &DMatrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (x, &y) in self.data.iter_mut().zip(&other.data) {
            *x += alpha * y;
        }
    }

    /// Scales every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Maximum absolute entry (infinity norm of the vectorization).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }
}

impl Index<(usize, usize)> for DMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i + j * self.rows]
    }
}

impl IndexMut<(usize, usize)> for DMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }
}

impl fmt::Debug for DMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// `C = alpha * A * B + beta * C` (DGEMM, no transposes).
///
/// Shapes: `A (m x k)`, `B (k x n)`, `C (m x n)`. Panics on mismatch.
pub fn gemm_nn(alpha: f64, a: &DMatrix, b: &DMatrix, beta: f64, c: &mut DMatrix) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "gemm_nn inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm_nn output shape mismatch");
    gemm_nn_raw(m, n, k, alpha, a.as_slice(), b.as_slice(), beta, c.as_mut_slice());
}

/// `C = alpha * A * B^T + beta * C` (DGEMM, B transposed).
///
/// Shapes: `A (m x k)`, `B (n x k)`, `C (m x n)`.
pub fn gemm_nt(alpha: f64, a: &DMatrix, b: &DMatrix, beta: f64, c: &mut DMatrix) {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(k, kb, "gemm_nt inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm_nt output shape mismatch");
    gemm_nt_raw(m, n, k, alpha, a.as_slice(), b.as_slice(), beta, c.as_mut_slice());
}

/// `C = alpha * A^T * B + beta * C` (DGEMM, A transposed).
///
/// Shapes: `A (k x m)`, `B (k x n)`, `C (m x n)`.
pub fn gemm_tn(alpha: f64, a: &DMatrix, b: &DMatrix, beta: f64, c: &mut DMatrix) {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "gemm_tn inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm_tn output shape mismatch");
    gemm_tn_raw(m, n, k, alpha, a.as_slice(), b.as_slice(), beta, c.as_mut_slice());
}

/// Reference triple-loop implementations of the GEMM/GEMV variants.
///
/// These are the pre-tiling kernels, kept verbatim: the property tests
/// assert the tiled core is bitwise identical to them (NN/NT) or
/// ULP-bounded (TN), and the `host_kernels` bench experiment uses them as
/// the wall-clock baseline. Production callers go through the tiled
/// [`crate::tile`] core instead.
pub mod naive {
    /// Raw-slice DGEMM NN on column-major data.
    #[inline]
    pub fn gemm_nn_raw(
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: &[f64],
        b: &[f64],
        beta: f64,
        c: &mut [f64],
    ) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        // j-p-i loop order: streams through columns of C and A contiguously.
        for j in 0..n {
            let cj = &mut c[j * m..(j + 1) * m];
            if beta == 0.0 {
                cj.iter_mut().for_each(|x| *x = 0.0);
            } else if beta != 1.0 {
                cj.iter_mut().for_each(|x| *x *= beta);
            }
            for p in 0..k {
                let bpj = alpha * b[p + j * k];
                if bpj != 0.0 {
                    let ap = &a[p * m..(p + 1) * m];
                    for (ci, &ai) in cj.iter_mut().zip(ap) {
                        *ci += bpj * ai;
                    }
                }
            }
        }
    }

    /// Raw-slice DGEMM NT on column-major data: `C = alpha A B^T + beta C`,
    /// `A (m x k)`, `B (n x k)`.
    #[inline]
    pub fn gemm_nt_raw(
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: &[f64],
        b: &[f64],
        beta: f64,
        c: &mut [f64],
    ) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), n * k);
        debug_assert_eq!(c.len(), m * n);
        for j in 0..n {
            let cj = &mut c[j * m..(j + 1) * m];
            if beta == 0.0 {
                cj.iter_mut().for_each(|x| *x = 0.0);
            } else if beta != 1.0 {
                cj.iter_mut().for_each(|x| *x *= beta);
            }
            for p in 0..k {
                // B^T(p, j) = B(j, p), column-major B: b[j + p*n].
                let bjp = alpha * b[j + p * n];
                if bjp != 0.0 {
                    let ap = &a[p * m..(p + 1) * m];
                    for (ci, &ai) in cj.iter_mut().zip(ap) {
                        *ci += bjp * ai;
                    }
                }
            }
        }
    }

    /// Raw-slice DGEMM TN on column-major data: `C = alpha A^T B + beta C`,
    /// `A (k x m)`, `B (k x n)`, dot-product accumulation order.
    #[inline]
    pub fn gemm_tn_raw(
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: &[f64],
        b: &[f64],
        beta: f64,
        c: &mut [f64],
    ) {
        debug_assert_eq!(a.len(), k * m);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        for j in 0..n {
            for i in 0..m {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[p + i * k] * b[p + j * k];
                }
                let cij = &mut c[i + j * m];
                *cij = alpha * acc + beta * *cij;
            }
        }
    }

    /// Raw-slice DGEMV N on column-major `A (m x n)` (per-column axpy).
    #[inline]
    pub fn gemv_n_raw(
        m: usize,
        n: usize,
        alpha: f64,
        a: &[f64],
        x: &[f64],
        beta: f64,
        y: &mut [f64],
    ) {
        debug_assert_eq!(a.len(), m * n);
        if beta == 0.0 {
            y.iter_mut().for_each(|v| *v = 0.0);
        } else if beta != 1.0 {
            y.iter_mut().for_each(|v| *v *= beta);
        }
        for j in 0..n {
            let axj = alpha * x[j];
            if axj != 0.0 {
                let col = &a[j * m..(j + 1) * m];
                for (yi, &aij) in y.iter_mut().zip(col) {
                    *yi += axj * aij;
                }
            }
        }
    }
}

/// Raw-slice DGEMM NN on column-major data (used by the batched routines so
/// the GPU kernels and CPU reference share one inner loop). Routed through
/// the register-tiled core; bitwise identical to [`naive::gemm_nn_raw`].
#[inline]
pub fn gemm_nn_raw(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    crate::abft::gemm_checked(m, n, k, alpha, a, crate::tile::Op::N, b, crate::tile::Op::N, beta, c);
}

/// Raw-slice DGEMM NT on column-major data: `C = alpha A B^T + beta C`,
/// `A (m x k)`, `B (n x k)`. Routed through the register-tiled core;
/// bitwise identical to [`naive::gemm_nt_raw`].
#[inline]
pub fn gemm_nt_raw(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    crate::abft::gemm_checked(m, n, k, alpha, a, crate::tile::Op::N, b, crate::tile::Op::T, beta, c);
}

/// Raw-slice DGEMM TN on column-major data: `C = alpha A^T B + beta C`,
/// `A (k x m)`, `B (k x n)`. Routed through the register-tiled core (axpy
/// accumulation order, so ULP-close — not bitwise — to
/// [`naive::gemm_tn_raw`]).
#[inline]
pub fn gemm_tn_raw(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    crate::abft::gemm_checked(m, n, k, alpha, a, crate::tile::Op::T, b, crate::tile::Op::N, beta, c);
}

/// `y = alpha * A * x + beta * y` (DGEMV, no transpose). `A (m x n)`.
pub fn gemv_n(alpha: f64, a: &DMatrix, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n) = a.shape();
    assert_eq!(x.len(), n, "gemv_n x length mismatch");
    assert_eq!(y.len(), m, "gemv_n y length mismatch");
    gemv_n_raw(m, n, alpha, a.as_slice(), x, beta, y);
}

/// `y = alpha * A^T * x + beta * y` (DGEMV, transposed). `A (m x n)`.
pub fn gemv_t(alpha: f64, a: &DMatrix, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n) = a.shape();
    assert_eq!(x.len(), m, "gemv_t x length mismatch");
    assert_eq!(y.len(), n, "gemv_t y length mismatch");
    gemv_t_raw(m, n, alpha, a.as_slice(), x, beta, y);
}

/// Raw-slice DGEMV N on column-major `A (m x n)`.
///
/// Column-blocked by 4: each block makes one pass over `y` fusing four
/// axpys, quartering the `y` store traffic of [`naive::gemv_n_raw`] while
/// keeping the identical per-element accumulation order (ascending `j`
/// with the same zero short-circuit), so results stay bitwise equal.
#[inline]
pub fn gemv_n_raw(m: usize, n: usize, alpha: f64, a: &[f64], x: &[f64], beta: f64, y: &mut [f64]) {
    debug_assert_eq!(a.len(), m * n);
    if beta == 0.0 {
        y.iter_mut().for_each(|v| *v = 0.0);
    } else if beta != 1.0 {
        y.iter_mut().for_each(|v| *v *= beta);
    }
    let mut j = 0;
    while j + 4 <= n {
        let ax = [alpha * x[j], alpha * x[j + 1], alpha * x[j + 2], alpha * x[j + 3]];
        if ax.iter().all(|&v| v != 0.0) {
            let (c0, rest) = a[j * m..(j + 4) * m].split_at(m);
            let (c1, rest) = rest.split_at(m);
            let (c2, c3) = rest.split_at(m);
            for (i, yi) in y.iter_mut().enumerate() {
                let mut acc = *yi;
                acc += ax[0] * c0[i];
                acc += ax[1] * c1[i];
                acc += ax[2] * c2[i];
                acc += ax[3] * c3[i];
                *yi = acc;
            }
        } else {
            // A zero coefficient in the block: fall back to the reference's
            // per-column skip so the op sequence stays identical.
            for (jj, &axj) in ax.iter().enumerate() {
                if axj != 0.0 {
                    let col = &a[(j + jj) * m..(j + jj + 1) * m];
                    for (yi, &aij) in y.iter_mut().zip(col) {
                        *yi += axj * aij;
                    }
                }
            }
        }
        j += 4;
    }
    while j < n {
        let axj = alpha * x[j];
        if axj != 0.0 {
            let col = &a[j * m..(j + 1) * m];
            for (yi, &aij) in y.iter_mut().zip(col) {
                *yi += axj * aij;
            }
        }
        j += 1;
    }
}

/// Raw-slice DGEMV T on column-major `A (m x n)`: `y = alpha A^T x + beta y`.
#[inline]
pub fn gemv_t_raw(m: usize, n: usize, alpha: f64, a: &[f64], x: &[f64], beta: f64, y: &mut [f64]) {
    debug_assert_eq!(a.len(), m * n);
    for j in 0..n {
        let col = &a[j * m..(j + 1) * m];
        let mut acc = 0.0;
        for (&aij, &xi) in col.iter().zip(x) {
            acc += aij * xi;
        }
        y[j] = alpha * acc + if beta == 0.0 { 0.0 } else { beta * y[j] };
    }
}

/// Dot product of two equal-length slices.
///
/// Panics on length mismatch in every build profile: with only a debug
/// assertion, release builds silently truncate through `zip` and return a
/// plausible-but-wrong reduction. The check is one compare per call,
/// negligible next to the loads.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// `y += alpha * x` on slices. Panics on length mismatch in every build
/// profile (see [`dot`]).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm of a slice, safe against over- and underflow of the
/// squared sum.
///
/// Fast path: `sqrt(dot(x, x))` — one pass, used whenever the squared sum
/// is a finite normal number. When it overflows to `inf` (components near
/// `1e160`), collapses below `f64::MIN_POSITIVE` (denormal residuals — a
/// spurious "converged" in PCG), or goes non-finite, the scaled two-pass
/// accumulation of [`nrm2_scaled`] recovers the true norm.
#[inline]
pub fn nrm2(x: &[f64]) -> f64 {
    nrm2_from_sumsq(dot(x, x), x)
}

/// Finalizes a Euclidean norm from a precomputed `sum(x_i^2)`, falling back
/// to [`nrm2_scaled`] when the squared sum over- or underflowed. Shared by
/// [`nrm2`] and the streaming fused kernels (`stream::nrm2_from_sumsq`) so
/// every norm in the solver takes the same branch on the same bits.
#[inline]
pub fn nrm2_from_sumsq(sumsq: f64, x: &[f64]) -> f64 {
    if sumsq.is_finite() && sumsq >= f64::MIN_POSITIVE {
        sumsq.sqrt()
    } else {
        nrm2_scaled(x)
    }
}

/// Scaled (LAPACK `dnrm2`-style) Euclidean norm: two passes, dividing by
/// the largest magnitude so squares stay near 1. Handles components up to
/// `f64::MAX` and down to the smallest denormal without over/underflow.
pub fn nrm2_scaled(x: &[f64]) -> f64 {
    let mut amax = 0.0f64;
    for &v in x {
        if v.is_nan() {
            // f64::max ignores NaN, which would silently launder a NaN
            // component into a finite norm.
            return f64::NAN;
        }
        amax = amax.max(v.abs());
    }
    if amax == 0.0 {
        return 0.0;
    }
    if amax.is_infinite() {
        return f64::INFINITY;
    }
    // Division (not multiplication by 1/amax): the reciprocal of a
    // denormal amax overflows to inf.
    let mut sum = 0.0;
    for &v in x {
        let t = v / amax;
        sum += t * t;
    }
    amax * sum.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nrm2_survives_overflow_of_the_squared_sum() {
        // (1e160)^2 = 1e320 overflows f64; the unscaled norm reported inf.
        let x = [1e160, -2e160, 2e160];
        assert_eq!(nrm2(&x), 3e160);
        assert!(nrm2(&[f64::MAX, 0.0]).is_finite());
    }

    #[test]
    fn nrm2_survives_underflow_to_denormals() {
        // (1e-200)^2 = 1e-400 underflows to zero; the unscaled norm
        // reported 0 — a spurious "converged" for a nonzero residual.
        let x = [1e-200, -1e-200];
        let expect = 1e-200 * 2f64.sqrt();
        assert!((nrm2(&x) - expect).abs() <= 1e-15 * expect, "{}", nrm2(&x));
        // Smallest positive denormal: still a nonzero norm.
        let tiny = f64::from_bits(1);
        assert_eq!(nrm2(&[tiny]), tiny);
        assert!(nrm2(&[tiny, tiny]) > 0.0);
    }

    #[test]
    fn nrm2_edge_inputs() {
        assert_eq!(nrm2(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, -0.0, 0.0]), 0.0);
        assert_eq!(nrm2(&[3.0, 4.0]), 5.0);
        assert!(nrm2(&[1.0, f64::NAN]).is_nan());
        assert_eq!(nrm2(&[f64::INFINITY, 1.0]), f64::INFINITY);
    }

    // The two length-mismatch guards must hold in *release* builds too
    // (they were `debug_assert_eq!`, silently truncating via `zip` with
    // debug assertions off); the CI release test lane runs these.
    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_panics_on_length_mismatch_in_all_profiles() {
        dot(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "axpy length mismatch")]
    fn axpy_panics_on_length_mismatch_in_all_profiles() {
        axpy(1.0, &[1.0], &mut [1.0, 2.0]);
    }

    fn mat_abc() -> (DMatrix, DMatrix) {
        let a = DMatrix::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DMatrix::from_row_major(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        (a, b)
    }

    #[test]
    fn col_major_indexing() {
        let m = DMatrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn row_major_constructor_matches_indexing() {
        let m = DMatrix::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
    }

    #[test]
    fn gemm_nn_known_product() {
        let (a, b) = mat_abc();
        let mut c = DMatrix::zeros(2, 2);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
        // [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154]
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let (a, b) = mat_abc();
        let bt = b.transpose(); // 2x3
        let mut c1 = DMatrix::zeros(2, 2);
        let mut c2 = DMatrix::zeros(2, 2);
        gemm_nn(1.0, &a, &b, 0.0, &mut c1);
        gemm_nt(1.0, &a, &bt, 0.0, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let (a, b) = mat_abc();
        let at = a.transpose(); // 3x2
        let mut c1 = DMatrix::zeros(2, 2);
        let mut c2 = DMatrix::zeros(2, 2);
        gemm_nn(1.0, &a, &b, 0.0, &mut c1);
        gemm_tn(1.0, &at, &b, 0.0, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn gemm_alpha_beta_accumulate() {
        let (a, b) = mat_abc();
        let mut c = DMatrix::from_row_major(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        gemm_nn(2.0, &a, &b, 3.0, &mut c);
        assert_eq!(c[(0, 0)], 2.0 * 58.0 + 3.0);
        assert_eq!(c[(1, 1)], 2.0 * 154.0 + 3.0);
    }

    #[test]
    fn gemv_n_and_t_roundtrip() {
        let (a, _) = mat_abc();
        let x = [1.0, -1.0, 2.0];
        let mut y = [0.0; 2];
        gemv_n(1.0, &a, &x, 0.0, &mut y);
        assert_eq!(y, [5.0, 11.0]);

        let z = [1.0, 2.0];
        let mut w = [0.0; 3];
        gemv_t(1.0, &a, &z, 0.0, &mut w);
        assert_eq!(w, [9.0, 12.0, 15.0]);
    }

    #[test]
    fn transpose_involution() {
        let (a, _) = mat_abc();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn identity_is_gemm_neutral() {
        let (a, _) = mat_abc();
        let id = DMatrix::identity(3);
        let mut c = DMatrix::zeros(2, 3);
        gemm_nn(1.0, &a, &id, 0.0, &mut c);
        assert_eq!(c, a);
    }

    #[test]
    fn axpy_and_norms() {
        let mut y = [1.0, 2.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, [7.0, 10.0]);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn matrix_axpy_scale_norm() {
        let mut a = DMatrix::identity(2);
        let b = DMatrix::identity(2);
        a.axpy(3.0, &b);
        assert_eq!(a[(0, 0)], 4.0);
        a.scale(0.5);
        assert_eq!(a[(1, 1)], 2.0);
        assert!((DMatrix::identity(2).norm() - 2.0_f64.sqrt()).abs() < 1e-15);
        assert_eq!(a.max_abs(), 2.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_shape_mismatch_panics() {
        let a = DMatrix::zeros(2, 3);
        let b = DMatrix::zeros(2, 2);
        let mut c = DMatrix::zeros(2, 2);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let m = DMatrix::from_fn(3, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(2, 1)], 21.0);
    }

    #[test]
    fn col_slices_are_contiguous() {
        let m = DMatrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.col(0), &[1.0, 3.0]);
        assert_eq!(m.col(1), &[2.0, 4.0]);
    }
}
