//! Offline mini re-implementation of the `proptest` surface this workspace
//! uses: the `proptest!` macro, `Strategy` with `prop_map`, range / tuple /
//! `collection::vec` / `array::uniformN` strategies, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//! - **Deterministic**: each test's RNG is seeded from the test name, so a
//!   failure reproduces on every run (there is no `PROPTEST_CASES`
//!   persistence file; there is also no need for one).
//! - **No shrinking**: a failing case reports its seed and case index
//!   instead of a minimized input.


/// Cases each `proptest!` test runs (matches proptest's default of 256).
pub const NUM_CASES: u32 = 256;

/// Maximum rejected cases (`prop_assume!`) before a test gives up.
pub const MAX_REJECTS: u32 = NUM_CASES * 40;

// ----------------------------------------------------------------------
// RNG: splitmix64 — tiny, high-quality enough for test-case generation.
// ----------------------------------------------------------------------

/// Deterministic test-case RNG.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Seeds from a u64.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in `[0, bound)` (bound > 0).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

// ----------------------------------------------------------------------
// Strategies
// ----------------------------------------------------------------------

pub mod strategy {
    use super::TestRng;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The value type generated.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (proptest's `prop_map`).
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of one value (proptest's `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + (self.end() - self.start()) * rng.next_f64()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.next_below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer strategy range");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.next_below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            let lo = self.start as u32;
            let hi = self.end as u32;
            loop {
                if let Some(c) = char::from_u32(lo + rng.next_below((hi - lo) as u64) as u32) {
                    return c;
                }
            }
        }
    }

    impl Strategy for bool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            // proptest's `any::<bool>()` analog is not used in-tree; a bare
            // `bool` as a strategy generates either value.
            let _ = self;
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (S0 0)
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
    }
}

pub mod collection {
    //! `proptest::collection` — sized `Vec` strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Anything usable as the length argument of [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start + rng.next_below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.next_below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// The result of [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! `proptest::array` — fixed-size array strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy producing `[S::Value; N]`.
    #[derive(Clone, Debug)]
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// Generic constructor behind the `uniformN` helpers.
    pub fn uniform<S: Strategy, const N: usize>(s: S) -> UniformArray<S, N> {
        UniformArray(s)
    }

    macro_rules! uniform_n {
        ($($name:ident $n:literal),*) => {$(
            /// Array strategy of the arity in the function name.
            pub fn $name<S: Strategy>(s: S) -> UniformArray<S, $n> {
                UniformArray(s)
            }
        )*};
    }
    uniform_n!(
        uniform1 1, uniform2 2, uniform3 3, uniform4 4, uniform5 5, uniform6 6,
        uniform7 7, uniform8 8, uniform9 9, uniform10 10, uniform12 12, uniform16 16
    );
}

// ----------------------------------------------------------------------
// Test-case driver
// ----------------------------------------------------------------------

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: draw another case.
    Reject,
    /// `prop_assert*!` failed: the property is false.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Runs `NUM_CASES` generated cases of `body`, panicking on the first
/// failure with the case index (deterministic per test name).
pub fn run_cases(name: &str, mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u32;
    while accepted < NUM_CASES {
        case += 1;
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < MAX_REJECTS,
                    "proptest '{name}': too many prop_assume! rejections \
                     ({rejected} rejects for {accepted} accepted cases)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case #{case}: {msg}");
            }
        }
    }
}

pub mod prelude {
    //! Everything the `proptest::prelude::*` import is expected to bring in.
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running [`NUM_CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)*
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })
            }
        )*
    };
}

/// Asserts inside a property body; failure reports the case, not a panic
/// mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("prop_assert!({}) failed", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("prop_assert!({}) failed: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("prop_assert_eq! failed: {:?} != {:?}", lhs, rhs),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("prop_assert_eq! failed: {:?} != {:?}: {}", lhs, rhs, format!($($fmt)+)),
            ));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("prop_assert_ne! failed: both sides are {:?}", lhs),
            ));
        }
    }};
}

/// Discards the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..1000 {
            let f = (-2.0..3.0f64).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = (5u32..9).generate(&mut rng);
            assert!((5..9).contains(&u));
            let n = (1usize..4).generate(&mut rng);
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn vec_and_array_and_tuple_strategies() {
        let mut rng = crate::TestRng::from_seed(3);
        let v = collection::vec(0.0..1.0f64, 2..5).generate(&mut rng);
        assert!((2..5).contains(&v.len()));
        let a = crate::array::uniform4(0.0..1.0f64).generate(&mut rng);
        assert_eq!(a.len(), 4);
        let (x, y, z) = (0usize..6, 0usize..6, -1.0..1.0f64).generate(&mut rng);
        assert!(x < 6 && y < 6 && (-1.0..1.0).contains(&z));
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::from_seed(11);
        let s = (0.0..1.0f64).prop_map(|x| x + 10.0);
        let v = s.generate(&mut rng);
        assert!((10.0..11.0).contains(&v));
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 0.0..1.0f64, n in 1usize..5) {
            prop_assume!(n != 3);
            prop_assert!(x >= 0.0 && x < 1.0, "x = {x}");
            prop_assert_eq!(n.min(4), n);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        crate::run_cases("always_fails", |_rng| {
            prop_assert!(false);
            #[allow(unreachable_code)]
            Ok(())
        });
    }
}
