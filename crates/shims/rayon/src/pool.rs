//! The execution engine behind the parallel iterators: a fixed-grid,
//! work-stealing pool built on scoped `std::thread` workers.
//!
//! # Determinism contract
//!
//! Work is split into a *fixed block grid* whose shape depends only on
//! the number of items — never on the number of threads — and per-block
//! results are combined in block-index order. Disjoint-write `for_each`
//! bodies are deterministic by construction; reductions (`sum`,
//! `reduce`) are bitwise identical for every thread count because the
//! float groupings never change: a `BLAST_THREADS=1` run equals an
//! 8-thread run bit for bit.
//!
//! # Stealing protocol
//!
//! Each participant owns one contiguous range of block indices packed
//! into a single `AtomicU64` (`start` in the high half, `end` in the
//! low). The owner CAS-pops from the front; idle participants CAS-pop
//! from the back of a victim's range. Ranges only ever shrink, so the
//! CAS is ABA-free, and since no work is ever re-enqueued, one clean
//! sweep over all deques finding nothing is proof of termination.
//!
//! Workers are scoped threads spawned per parallel call (the calling
//! thread participates as worker 0), so borrowed data flows in without
//! lifetime erasure and panics resume on the caller after the scope
//! joins. A thread-local flag makes nested parallel calls run serially
//! instead of recursively spawning.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::iter::Producer;

/// Block-grid upper bound. 64 blocks gives an 8-thread run eight blocks
/// of stealing slack per thread while keeping dispatch overhead
/// negligible; the grid is `min(len, MAX_BLOCKS)` and thus independent
/// of the thread count (the determinism invariant).
const MAX_BLOCKS: usize = 64;

/// Sanity cap on configured threads (oversubscription beyond this only
/// adds scheduler churn).
const MAX_THREADS: usize = 256;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

// Pool observability counters. The shim stays dependency-free (it stands in
// for crates.io rayon), so instead of emitting into blast-telemetry directly
// it exposes process-wide atomics that the executor samples into telemetry
// gauges/counters at report time. Relaxed ordering: these are statistics,
// not synchronization.
static STEALS: AtomicU64 = AtomicU64::new(0);
static BLOCKS: AtomicU64 = AtomicU64::new(0);
static PARALLEL_CALLS: AtomicU64 = AtomicU64::new(0);

/// Cumulative work-stealing statistics since process start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallel drives that actually spawned workers (serial and nested
    /// calls are not counted).
    pub parallel_calls: u64,
    /// Blocks executed by parallel drives (owner-run + stolen).
    pub blocks_executed: u64,
    /// Blocks claimed from another participant's deque.
    pub steals: u64,
}

/// Snapshot of the pool's cumulative counters. Monotonic; diff two
/// snapshots to attribute work to a region.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        parallel_calls: PARALLEL_CALLS.load(Ordering::Relaxed),
        blocks_executed: BLOCKS.load(Ordering::Relaxed),
        steals: STEALS.load(Ordering::Relaxed),
    }
}

/// `BLAST_THREADS` parsed once; `None` when unset or unparsable.
fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("BLAST_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// Number of threads parallel calls will use: a
/// [`set_active_threads`] override if one is live, else the
/// `BLAST_THREADS` environment variable, else
/// `std::thread::available_parallelism()`.
pub fn current_num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o.min(MAX_THREADS);
    }
    if let Some(n) = env_threads() {
        return n.min(MAX_THREADS);
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(MAX_THREADS)
}

/// Process-wide runtime override of the thread count (e.g. for speedup
/// sweeps). Pass `0` to clear the override and fall back to
/// `BLAST_THREADS` / detected parallelism. Takes effect at the next
/// parallel call; results are bitwise identical at every setting.
pub fn set_active_threads(n: usize) {
    THREAD_OVERRIDE.store(n.min(MAX_THREADS), Ordering::Relaxed);
}

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// True while the current thread is executing inside a parallel call —
/// nested parallelism then degrades to serial instead of spawning.
pub(crate) fn in_pool() -> bool {
    IN_POOL.with(|c| c.get())
}

struct PoolGuard {
    prev: bool,
}

impl PoolGuard {
    fn enter() -> Self {
        let prev = IN_POOL.with(|c| c.replace(true));
        PoolGuard { prev }
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_POOL.with(|c| c.set(prev));
    }
}

/// How a terminal operation consumes one block's serial iterator. The
/// indirection (rather than a plain closure) lets adapters like `map`
/// wrap the consumer without naming the composed iterator type.
pub trait BlockConsumer<T, R>: Sync {
    /// Folds one block of items into a partial result.
    fn consume<I: Iterator<Item = T>>(&self, block: I) -> R;
}

/// Splits `producer` over the fixed block grid, runs `consumer` on
/// every block (in parallel when more than one thread is configured),
/// and returns the per-block partials **in block-index order**.
pub fn drive<P, R, C>(producer: P, consumer: C) -> Vec<R>
where
    P: Producer,
    R: Send,
    C: BlockConsumer<P::Item, R>,
{
    let len = producer.len();
    if len == 0 {
        return Vec::new();
    }
    let nblocks = len.min(MAX_BLOCKS);
    let threads = if in_pool() { 1 } else { current_num_threads().min(nblocks) };
    if threads <= 1 {
        // Same grid, same in-block order, same combination order as the
        // parallel path — the serial run is the determinism reference.
        // Blocks are consumed as they are split off rather than collected
        // first, so a unit-result `for_each` performs zero heap
        // allocations (`Vec<()>` never allocates either).
        let mut out = Vec::with_capacity(if std::mem::size_of::<R>() == 0 { 0 } else { nblocks });
        let mut rest = producer;
        let mut taken = 0;
        for b in 1..nblocks {
            let end = b * len / nblocks;
            let (left, right) = rest.split_at(end - taken);
            taken = end;
            rest = right;
            out.push(consumer.consume(left.into_iter()));
        }
        out.push(consumer.consume(rest.into_iter()));
        return out;
    }
    parallel_drive(split_grid(producer, len, nblocks), &consumer, threads)
}

/// Cuts the producer into `nblocks` contiguous blocks of near-equal
/// item count (block `b` covers `[b*len/n, (b+1)*len/n)`).
fn split_grid<P: Producer>(producer: P, len: usize, nblocks: usize) -> Vec<P> {
    let mut blocks = Vec::with_capacity(nblocks);
    let mut rest = producer;
    let mut taken = 0;
    for b in 1..nblocks {
        let end = b * len / nblocks;
        let (left, right) = rest.split_at(end - taken);
        taken = end;
        blocks.push(left);
        rest = right;
    }
    blocks.push(rest);
    blocks
}

/// A slot written by exactly one pool participant (uniqueness is
/// guaranteed by the deque claim protocol), then read only after the
/// thread scope joins.
struct SyncSlot<T>(UnsafeCell<Option<T>>);

// SAFETY: the deque protocol hands each slot index to exactly one
// thread, and the scope join orders all writes before the final reads.
unsafe impl<T: Send> Sync for SyncSlot<T> {}

fn pack(start: u32, end: u32) -> u64 {
    ((start as u64) << 32) | end as u64
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Owner end of the range deque: claim the front block.
fn pop_front(deque: &AtomicU64) -> Option<usize> {
    let mut cur = deque.load(Ordering::Acquire);
    loop {
        let (s, e) = unpack(cur);
        if s >= e {
            return None;
        }
        match deque.compare_exchange_weak(cur, pack(s + 1, e), Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => return Some(s as usize),
            Err(now) => cur = now,
        }
    }
}

/// Thief end: claim the back block of a victim's range.
fn steal_back(deque: &AtomicU64) -> Option<usize> {
    let mut cur = deque.load(Ordering::Acquire);
    loop {
        let (s, e) = unpack(cur);
        if s >= e {
            return None;
        }
        match deque.compare_exchange_weak(cur, pack(s, e - 1), Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => return Some((e - 1) as usize),
            Err(now) => cur = now,
        }
    }
}

/// One sweep over the other participants' deques. Blocks are never
/// re-enqueued, so an empty sweep means every block is claimed and the
/// worker can retire.
fn steal(deques: &[AtomicU64], me: usize) -> Option<usize> {
    for off in 1..deques.len() {
        let victim = (me + off) % deques.len();
        if let Some(b) = steal_back(&deques[victim]) {
            return Some(b);
        }
    }
    None
}

fn parallel_drive<P, R, C>(blocks: Vec<P>, consumer: &C, threads: usize) -> Vec<R>
where
    P: Producer,
    R: Send,
    C: BlockConsumer<P::Item, R>,
{
    let nblocks = blocks.len();
    let slots: Vec<SyncSlot<P>> =
        blocks.into_iter().map(|p| SyncSlot(UnsafeCell::new(Some(p)))).collect();
    let results: Vec<SyncSlot<R>> = (0..nblocks).map(|_| SyncSlot(UnsafeCell::new(None))).collect();
    let deques: Vec<AtomicU64> = (0..threads)
        .map(|t| pack((t * nblocks / threads) as u32, ((t + 1) * nblocks / threads) as u32))
        .map(AtomicU64::new)
        .collect();
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    PARALLEL_CALLS.fetch_add(1, Ordering::Relaxed);
    BLOCKS.fetch_add(nblocks as u64, Ordering::Relaxed);

    let worker = |me: usize| {
        let _guard = PoolGuard::enter();
        while let Some(b) = pop_front(&deques[me]).or_else(|| {
            let stolen = steal(&deques, me);
            if stolen.is_some() {
                STEALS.fetch_add(1, Ordering::Relaxed);
            }
            stolen
        }) {
            // SAFETY: index `b` was claimed exactly once (CAS protocol),
            // so this thread has exclusive access to slots[b]/results[b].
            let p = unsafe { (*slots[b].0.get()).take().expect("block claimed once") };
            match catch_unwind(AssertUnwindSafe(|| consumer.consume(p.into_iter()))) {
                Ok(r) => unsafe { *results[b].0.get() = Some(r) },
                Err(payload) => {
                    let mut slot = first_panic.lock().unwrap_or_else(|p| p.into_inner());
                    slot.get_or_insert(payload);
                }
            }
        }
    };

    std::thread::scope(|s| {
        let worker = &worker;
        for t in 1..threads {
            s.spawn(move || worker(t));
        }
        worker(0);
    });

    if let Some(payload) = first_panic.into_inner().unwrap_or_else(|p| p.into_inner()) {
        resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|slot| slot.0.into_inner().expect("every block was processed"))
        .collect()
}
