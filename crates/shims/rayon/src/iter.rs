//! Parallel iterator types: splittable producers plus the adapter and
//! reduction surface the workspace uses (`zip`, `enumerate`, `map`,
//! `for_each`, `count`, `sum`, `reduce`).
//!
//! A [`Producer`] describes `len` items that can be cut at any index
//! into two independent producers; the pool cuts along its fixed block
//! grid and turns each block into a serial iterator. Items are visited
//! in index order within a block and blocks combine in index order, so
//! every terminal operation is bitwise deterministic regardless of the
//! thread count (see `crate::pool`).

use std::marker::PhantomData;

use crate::pool::{self, BlockConsumer};

/// A splittable, sendable description of an indexed sequence of items.
pub trait Producer: Send + Sized {
    /// Item handed to the consumer closure.
    type Item: Send;
    /// Serial iterator over one block of items.
    type IntoIter: Iterator<Item = Self::Item>;

    /// Remaining number of items.
    fn len(&self) -> usize;
    /// `true` when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Cuts into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Degrades into a serial iterator (used per block).
    fn into_iter(self) -> Self::IntoIter;
}

/// rayon-compatible terminal-operation surface; implemented for every
/// producer through a blanket impl.
pub trait ParallelIterator: Sized {
    /// Item handed to consumer closures.
    type Item: Send;

    /// Runs `consumer` over each fixed-grid block and returns the
    /// per-block partials in block-index order (the primitive every
    /// other method is built on).
    fn drive_blocks<R, C>(self, consumer: C) -> Vec<R>
    where
        R: Send,
        C: BlockConsumer<Self::Item, R>;

    /// Calls `f` on every item, in parallel across blocks.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        struct ForEach<F>(F);
        impl<T, F: Fn(T) + Sync> BlockConsumer<T, ()> for ForEach<F> {
            fn consume<I: Iterator<Item = T>>(&self, block: I) {
                block.for_each(|x| (self.0)(x));
            }
        }
        self.drive_blocks(ForEach(f));
    }

    /// Number of items (consumes the iterator, like rayon).
    fn count(self) -> usize {
        struct Count;
        impl<T> BlockConsumer<T, usize> for Count {
            fn consume<I: Iterator<Item = T>>(&self, block: I) -> usize {
                block.count()
            }
        }
        self.drive_blocks(Count).into_iter().sum()
    }

    /// Maps every item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { inner: self, f }
    }

    /// Sums items block by block, then the per-block partials in block
    /// order — bitwise deterministic for every thread count.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        struct SumBlocks<S>(PhantomData<fn() -> S>);
        impl<T, S: Send + std::iter::Sum<T>> BlockConsumer<T, S> for SumBlocks<S> {
            fn consume<I: Iterator<Item = T>>(&self, block: I) -> S {
                block.sum()
            }
        }
        self.drive_blocks(SumBlocks::<S>(PhantomData)).into_iter().sum()
    }

    /// Folds each block from `identity()` in index order, then folds
    /// the partials in block order — deterministic like [`Self::sum`].
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        struct Reduce<ID, OP>(ID, OP);
        impl<T: Send, ID, OP> BlockConsumer<T, T> for Reduce<ID, OP>
        where
            ID: Fn() -> T + Sync,
            OP: Fn(T, T) -> T + Sync,
        {
            fn consume<I: Iterator<Item = T>>(&self, block: I) -> T {
                block.fold((self.0)(), |acc, x| (self.1)(acc, x))
            }
        }
        let partials = self.drive_blocks(Reduce(&identity, &op));
        partials.into_iter().reduce(|a, b| op(a, b)).unwrap_or_else(identity)
    }
}

impl<P: Producer> ParallelIterator for P {
    type Item = P::Item;

    fn drive_blocks<R, C>(self, consumer: C) -> Vec<R>
    where
        R: Send,
        C: BlockConsumer<P::Item, R>,
    {
        pool::drive(self, consumer)
    }
}

/// Length-preserving parallel iterators (every producer qualifies);
/// hosts the shape-aware adapters `zip` and `enumerate`.
pub trait IndexedParallelIterator: ParallelIterator {
    /// Pairs items positionally; the result is truncated to the
    /// shorter side, like rayon/std `zip`.
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        Self: Producer,
        B: Producer,
    {
        Zip::new(self, other)
    }

    /// Pairs every item with its global index.
    fn enumerate(self) -> Enumerate<Self>
    where
        Self: Producer,
    {
        Enumerate { base: 0, inner: self }
    }
}

impl<P: Producer> IndexedParallelIterator for P {}

/// `par_iter` / shared-slice entry points.
pub trait ParallelSlice<T: Sync> {
    /// Parallel version of `slice::chunks`.
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
    /// Parallel version of `slice::chunks_exact` (remainder dropped).
    fn par_chunks_exact(&self, size: usize) -> ParChunksExact<'_, T>;
    /// Parallel version of `slice::iter`.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunks { slice: self, size }
    }
    fn par_chunks_exact(&self, size: usize) -> ParChunksExact<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        let n = self.len() / size * size;
        ParChunksExact { slice: &self[..n], size }
    }
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter(self)
    }
}

/// `par_iter_mut` / mutable-slice entry points.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel version of `slice::chunks_mut`.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
    /// Parallel version of `slice::chunks_exact_mut` (remainder dropped).
    fn par_chunks_exact_mut(&mut self, size: usize) -> ParChunksExactMut<'_, T>;
    /// Parallel version of `slice::iter_mut`.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunksMut { slice: self, size }
    }
    fn par_chunks_exact_mut(&mut self, size: usize) -> ParChunksExactMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        let n = self.len() / size * size;
        ParChunksExactMut { slice: &mut self[..n], size }
    }
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut(self)
    }
}

/// Conversion into a parallel iterator (ranges and slice references).
pub trait IntoParallelIterator {
    /// The producer this converts into.
    type Iter: ParallelIterator;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { start: self.start, end: self.end.max(self.start) }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = ParIter<'a, T>;
    fn into_par_iter(self) -> ParIter<'a, T> {
        ParIter(self)
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Iter = ParIterMut<'a, T>;
    fn into_par_iter(self) -> ParIterMut<'a, T> {
        ParIterMut(self)
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = ParIter<'a, T>;
    fn into_par_iter(self) -> ParIter<'a, T> {
        ParIter(self)
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Iter = ParIterMut<'a, T>;
    fn into_par_iter(self) -> ParIterMut<'a, T> {
        ParIterMut(self)
    }
}

/// Shared-reference items over a slice.
pub struct ParIter<'a, T>(&'a [T]);

impl<'a, T: Sync> Producer for ParIter<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(index);
        (ParIter(l), ParIter(r))
    }
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Mutable-reference items over a slice.
pub struct ParIterMut<'a, T>(&'a mut [T]);

impl<'a, T: Send> Producer for ParIterMut<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at_mut(index);
        (ParIterMut(l), ParIterMut(r))
    }
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter_mut()
    }
}

/// Shared chunks (last one may be ragged).
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ParChunks<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(at);
        (ParChunks { slice: l, size: self.size }, ParChunks { slice: r, size: self.size })
    }
    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks(self.size)
    }
}

/// Shared exact-size chunks (remainder pre-dropped at construction).
pub struct ParChunksExact<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ParChunksExact<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::ChunksExact<'a, T>;
    fn len(&self) -> usize {
        self.slice.len() / self.size
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index * self.size);
        (
            ParChunksExact { slice: l, size: self.size },
            ParChunksExact { slice: r, size: self.size },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks_exact(self.size)
    }
}

/// Mutable chunks (last one may be ragged).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (ParChunksMut { slice: l, size: self.size }, ParChunksMut { slice: r, size: self.size })
    }
    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.size)
    }
}

/// Mutable exact-size chunks (remainder pre-dropped at construction) —
/// the workhorse behind every kernel's per-particle/per-zone loop.
pub struct ParChunksExactMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ParChunksExactMut<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksExactMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len() / self.size
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index * self.size);
        (
            ParChunksExactMut { slice: l, size: self.size },
            ParChunksExactMut { slice: r, size: self.size },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks_exact_mut(self.size)
    }
}

/// Parallel counterpart of `Range<usize>`.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl Producer for ParRange {
    type Item = usize;
    type IntoIter = std::ops::Range<usize>;
    fn len(&self) -> usize {
        self.end - self.start
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.start + index;
        (ParRange { start: self.start, end: mid }, ParRange { start: mid, end: self.end })
    }
    fn into_iter(self) -> Self::IntoIter {
        self.start..self.end
    }
}

/// Positionally paired producers (truncated to the shorter side).
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Zip<A, B> {
    fn new(a: A, b: B) -> Self {
        let n = a.len().min(b.len());
        let a = if a.len() > n { a.split_at(n).0 } else { a };
        let b = if b.len() > n { b.split_at(n).0 } else { b };
        Zip { a, b }
    }
}

impl<A: Producer, B: Producer> Producer for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;
    fn len(&self) -> usize {
        self.a.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }
    fn into_iter(self) -> Self::IntoIter {
        self.a.into_iter().zip(self.b.into_iter())
    }
}

/// Items paired with their global index (split-aware offset).
pub struct Enumerate<P> {
    pub(crate) base: usize,
    pub(crate) inner: P,
}

impl<P: Producer> Producer for Enumerate<P> {
    type Item = (usize, P::Item);
    type IntoIter = std::iter::Zip<std::ops::Range<usize>, P::IntoIter>;
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(index);
        (
            Enumerate { base: self.base, inner: l },
            Enumerate { base: self.base + index, inner: r },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        let n = self.inner.len();
        (self.base..self.base + n).zip(self.inner.into_iter())
    }
}

/// Lazily mapped parallel iterator (wraps the block consumer, so it
/// needs no producer of its own).
pub struct Map<P, F> {
    inner: P,
    f: F,
}

impl<P, R0, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R0: Send,
    F: Fn(P::Item) -> R0 + Sync,
{
    type Item = R0;

    fn drive_blocks<R, C>(self, consumer: C) -> Vec<R>
    where
        R: Send,
        C: BlockConsumer<R0, R>,
    {
        struct MapConsumer<C, F> {
            base: C,
            f: F,
        }
        impl<T, R0, R, C, F> BlockConsumer<T, R> for MapConsumer<C, F>
        where
            C: BlockConsumer<R0, R>,
            F: Fn(T) -> R0 + Sync,
        {
            fn consume<I: Iterator<Item = T>>(&self, block: I) -> R {
                self.base.consume(block.map(&self.f))
            }
        }
        self.inner.drive_blocks(MapConsumer { base: consumer, f: self.f })
    }
}
