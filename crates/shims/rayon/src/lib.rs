//! Sequential stand-in for `rayon`, used when the real crate cannot be
//! fetched (offline build environments).
//!
//! The workspace only relies on a small slice of rayon's API:
//! `par_iter`/`par_iter_mut`, `par_chunks[_exact]_mut`, and the
//! `ParallelIterator`/`IndexedParallelIterator` marker bounds. This shim
//! maps every `par_*` entry point onto the corresponding serial `std`
//! iterator, so all downstream `.zip()/.enumerate()/.map()/.for_each()`
//! chains compile and run unchanged — serially, which also makes kernel
//! "thread block" execution deterministic.

pub mod prelude {
    pub use super::{IndexedParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Marker with rayon's name; every `std` iterator qualifies.
pub trait ParallelIterator: Iterator {}
impl<I: Iterator> ParallelIterator for I {}

/// Marker with rayon's name; every `std` iterator qualifies.
pub trait IndexedParallelIterator: Iterator {}
impl<I: Iterator> IndexedParallelIterator for I {}

/// `par_iter` / shared-slice entry points.
pub trait ParallelSlice<T> {
    /// Serial stand-in for `rayon::slice::ParallelSlice::par_chunks`.
    fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
    /// Serial stand-in for `par_chunks_exact`.
    fn par_chunks_exact(&self, size: usize) -> std::slice::ChunksExact<'_, T>;
    /// Serial stand-in for `par_iter`.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(size)
    }
    fn par_chunks_exact(&self, size: usize) -> std::slice::ChunksExact<'_, T> {
        self.chunks_exact(size)
    }
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// `par_iter_mut` / mutable-slice entry points.
pub trait ParallelSliceMut<T> {
    /// Serial stand-in for `par_chunks_mut`.
    fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    /// Serial stand-in for `par_chunks_exact_mut`.
    fn par_chunks_exact_mut(&mut self, size: usize) -> std::slice::ChunksExactMut<'_, T>;
    /// Serial stand-in for `par_iter_mut`.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(size)
    }
    fn par_chunks_exact_mut(&mut self, size: usize) -> std::slice::ChunksExactMut<'_, T> {
        self.chunks_exact_mut(size)
    }
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

/// Serial stand-in for `IntoParallelIterator` (`into_par_iter`).
pub trait IntoParallelIterator {
    /// The underlying serial iterator type.
    type Iter: Iterator;
    /// Converts into a (serial) "parallel" iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Serial stand-in for `rayon::join`: runs both closures sequentially.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_exact_mut_matches_serial() {
        let mut v = vec![0.0f64; 8];
        v.par_chunks_exact_mut(2).enumerate().for_each(|(i, c)| {
            c[0] = i as f64;
            c[1] = -(i as f64);
        });
        assert_eq!(v, vec![0.0, 0.0, 1.0, -1.0, 2.0, -2.0, 3.0, -3.0]);
    }

    #[test]
    fn zip_and_marker_traits_compose() {
        fn takes_indexed<I: super::IndexedParallelIterator>(it: I) -> usize {
            it.count()
        }
        let mut a = vec![1, 2, 3, 4];
        let mut b = vec![10, 20];
        let n = takes_indexed(a.par_chunks_exact_mut(2).zip(b.par_iter_mut()));
        assert_eq!(n, 2);
    }

    #[test]
    fn join_runs_both() {
        let (x, y) = super::join(|| 2 + 2, || "ok");
        assert_eq!((x, y), (4, "ok"));
    }
}
