//! In-tree multithreaded stand-in for `rayon`, used because the real
//! crate cannot be fetched (offline build environments).
//!
//! Unlike the original serial shim, this crate executes `par_*` calls
//! on a real work-stealing pool of scoped `std::thread` workers — the
//! paper's 8-core OpenMP host leg, measured instead of simulated. The
//! workspace relies on a small slice of rayon's API
//! (`par_iter[_mut]`, `par_chunks[_exact][_mut]`, `zip`, `enumerate`,
//! `map`, `for_each`, `count`, `sum`, `reduce`, `join`), and every
//! entry point here is bitwise deterministic across thread counts:
//!
//! * work is split over a fixed block grid that depends only on the
//!   item count, never on the thread count;
//! * reductions combine per-block partials in block-index order;
//! * so `BLAST_THREADS=1` output equals an 8-thread run bit for bit.
//!
//! Thread count: [`set_active_threads`] override → `BLAST_THREADS`
//! env var → `std::thread::available_parallelism()`. Nested parallel
//! calls degrade to serial execution instead of spawning recursively.

mod iter;
mod pool;

pub use iter::{
    Enumerate, IndexedParallelIterator, IntoParallelIterator, Map, ParChunks, ParChunksExact,
    ParChunksExactMut, ParChunksMut, ParIter, ParIterMut, ParRange, ParallelIterator,
    ParallelSlice, ParallelSliceMut, Producer, Zip,
};
pub use pool::{current_num_threads, pool_stats, set_active_threads, BlockConsumer, PoolStats};

pub mod prelude {
    pub use super::{
        IndexedParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// Runs both closures, potentially in parallel (`b` on a scoped helper
/// thread), and returns both results. Falls back to sequential
/// execution inside an already-parallel region or when one thread is
/// configured; panics from either side resume on the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if pool::in_pool() || current_num_threads() < 2 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Runs `f` at an explicit thread count, restoring the default
    /// after. Determinism makes the global override benign: results
    /// are identical at every setting, so concurrent tests can only
    /// perturb each other's timing, never their values.
    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        super::set_active_threads(n);
        let r = f();
        super::set_active_threads(0);
        r
    }

    #[test]
    fn par_chunks_exact_mut_matches_serial() {
        let mut v = vec![0.0f64; 8];
        v.par_chunks_exact_mut(2).enumerate().for_each(|(i, c)| {
            c[0] = i as f64;
            c[1] = -(i as f64);
        });
        assert_eq!(v, vec![0.0, 0.0, 1.0, -1.0, 2.0, -2.0, 3.0, -3.0]);
    }

    #[test]
    fn zip_and_marker_traits_compose() {
        fn takes_indexed<I: super::IndexedParallelIterator>(it: I) -> usize {
            it.count()
        }
        let mut a = vec![1, 2, 3, 4];
        let mut b = vec![10, 20];
        let n = takes_indexed(a.par_chunks_exact_mut(2).zip(b.par_iter_mut()));
        assert_eq!(n, 2);
    }

    #[test]
    fn join_runs_both() {
        let (x, y) = super::join(|| 2 + 2, || "ok");
        assert_eq!((x, y), (4, "ok"));
    }

    #[test]
    fn for_each_covers_every_item_at_8_threads() {
        let mut v = vec![0usize; 10_000];
        with_threads(8, || {
            v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * i);
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * i);
        }
    }

    #[test]
    fn kernel_shaped_chain_matches_serial_reference() {
        // Same chain shape as kernels::k1 — two zips plus enumerate.
        let stride = 3;
        let n = 1000;
        let run = |threads: usize| {
            let mut adj = vec![0.0f64; n * stride];
            let mut det = vec![0.0f64; n];
            let mut hmin = vec![0.0f64; n];
            with_threads(threads, || {
                adj.par_chunks_exact_mut(stride)
                    .zip(det.par_iter_mut())
                    .zip(hmin.par_iter_mut())
                    .enumerate()
                    .for_each(|(p, ((adj_p, det_p), hmin_p))| {
                        for (k, a) in adj_p.iter_mut().enumerate() {
                            *a = (p * stride + k) as f64 * 0.5;
                        }
                        *det_p = 1.0 / (p + 1) as f64;
                        *hmin_p = (p as f64).sqrt();
                    });
            });
            (adj, det, hmin)
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sum_is_bitwise_identical_across_thread_counts() {
        // Magnitudes spread over ~12 decades so any regrouping of the
        // additions changes the rounding — the equality below holds
        // only if the block grid is thread-count independent.
        let v: Vec<f64> =
            (0..4096).map(|i| (1.0 + i as f64).powi(3) * if i % 2 == 0 { 1e-6 } else { 1e6 }).collect();
        let sums: Vec<u64> = [1usize, 2, 3, 8]
            .iter()
            .map(|&t| with_threads(t, || v.par_iter().map(|x| x * 1.000000119).sum::<f64>()))
            .map(f64::to_bits)
            .collect();
        assert!(sums.windows(2).all(|w| w[0] == w[1]), "sums differ across thread counts: {sums:?}");
    }

    #[test]
    fn reduce_is_bitwise_identical_across_thread_counts() {
        let v: Vec<f64> = (0..999).map(|i| (i as f64).sin() * 10f64.powi((i % 9) as i32)).collect();
        let r1 = with_threads(1, || v.par_iter().map(|x| *x).reduce(|| 0.0, |a, b| a + b));
        let r8 = with_threads(8, || v.par_iter().map(|x| *x).reduce(|| 0.0, |a, b| a + b));
        assert_eq!(r1.to_bits(), r8.to_bits());
    }

    #[test]
    fn zip_truncates_to_shorter_side() {
        let a = vec![1.0f64; 7];
        let mut b = vec![0.0f64; 5];
        b.par_iter_mut().zip(a.par_iter()).for_each(|(y, x)| *y = *x);
        assert_eq!(b, vec![1.0; 5]);
    }

    #[test]
    fn nested_parallelism_runs_serially_without_deadlock() {
        let mut outer = vec![0usize; 64];
        with_threads(4, || {
            outer.par_iter_mut().enumerate().for_each(|(i, x)| {
                let inner: usize = (0..100usize).into_par_iter().map(|j| i + j).sum();
                *x = inner;
            });
        });
        for (i, &x) in outer.iter().enumerate() {
            assert_eq!(x, 100 * i + 4950);
        }
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let got = std::panic::catch_unwind(|| {
            let mut v = vec![0u8; 256];
            with_threads(4, || {
                v.par_iter_mut().enumerate().for_each(|(i, _)| {
                    if i == 137 {
                        panic!("boom at {i}");
                    }
                });
            });
        });
        super::set_active_threads(0);
        assert!(got.is_err(), "worker panic must resume on the caller");
    }

    #[test]
    fn thread_count_reporting_honours_override() {
        with_threads(5, || assert_eq!(super::current_num_threads(), 5));
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn ragged_and_empty_inputs() {
        // chunks (non-exact) keeps the ragged tail; exact drops it.
        let v = vec![1.0f64; 10];
        assert_eq!(v.par_chunks(4).count(), 3);
        assert_eq!(v.par_chunks_exact(4).count(), 2);
        let empty: Vec<f64> = Vec::new();
        assert_eq!(empty.par_iter().count(), 0);
        assert_eq!(empty.par_iter().map(|x| *x).sum::<f64>(), 0.0);
    }
}
