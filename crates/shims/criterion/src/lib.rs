//! Offline minimal stand-in for `criterion`.
//!
//! Provides just enough of the API (`Criterion::bench_function`,
//! `Bencher::iter`/`iter_batched`, `BatchSize`, `criterion_group!`,
//! `criterion_main!`) for the workspace's benches to build and run without
//! the real crate. Measurement is a simple calibrated wall-clock loop: good
//! for relative comparisons, not for criterion's statistical rigor.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(300);

/// How a batched benchmark sizes its batches (accepted, not interpreted).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// New driver with defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        f(&mut b);
        if b.iters == 0 {
            // The closure never called iter/iter_batched (or the routine
            // was gated off): a "0.000 ns/iter" line would read as an
            // infinitely fast benchmark instead of a missing one.
            println!("bench: {name:<40} {:>12} skipped (0 iters)", "");
            return self;
        }
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        println!("bench: {name:<40} {:>12.3} ns/iter ({} iters)", per_iter * 1e9, b.iters);
        self
    }
}

/// Timing context passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Calibrate: grow the iteration count until the loop fills TARGET.
        let mut n: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= TARGET || n >= 1 << 24 {
                self.iters = n;
                self.elapsed = dt;
                return;
            }
            let scale = (TARGET.as_secs_f64() / dt.as_secs_f64().max(1e-9)).min(100.0);
            let next = (n as f64 * scale) as u64;
            if next <= n {
                // The loop already nearly fills TARGET (scale rounds back
                // to n). For a slow routine that took, say, 280 ms of a
                // 300 ms target, re-running the whole loop at n + 1 would
                // double the wall cost for no measurement benefit — accept
                // the current sample instead.
                self.iters = n;
                self.elapsed = dt;
                return;
            }
            n = next;
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < TARGET && iters < 1 << 20 {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            total += t0.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = total;
    }
}

/// Re-export so `use criterion::black_box` also works.
pub use std::hint::black_box;

/// Groups benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::new();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn empty_bench_is_reported_as_skipped_not_infinitely_fast() {
        // A closure that never calls iter() leaves iters == 0; the report
        // path must not divide by it or print "0.000 ns/iter".
        let mut c = Criterion::new();
        c.bench_function("empty", |_b| {});
    }

    #[test]
    fn slow_routine_is_not_rerun_for_one_extra_iteration() {
        // A routine costing a large fraction of TARGET must be accepted
        // after its calibration pass instead of re-running at n + 1: the
        // whole bench should finish in a small multiple of TARGET.
        let t0 = std::time::Instant::now();
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        b.iter(|| std::thread::sleep(Duration::from_millis(220)));
        assert_eq!(b.iters, 1, "near-target routine should be accepted at n = 1");
        // Old behaviour re-ran the loop at n + 1: ~220 + 440 ms. Fixed
        // behaviour is a single ~220 ms pass.
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "calibration re-ran a near-target routine: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::new();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
