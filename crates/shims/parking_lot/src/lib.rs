//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface the workspace uses is provided: `Mutex` and `RwLock`
//! with parking_lot's non-poisoning `lock()`/`read()`/`write()` signatures
//! (a poisoned std lock is recovered transparently — the simulator's locked
//! state stays usable even if a panicking test thread held it).

/// Mutex with parking_lot's panic-free `lock` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with parking_lot's panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
