//! Plain-text per-phase table exporter — the fixed-width breakdown the
//! `paper_report` / `fig06_kernel_breakdown` binaries print instead of
//! their previous hand-rolled formatting.

use crate::recorder::{PhaseTotal, Telemetry, Track};
use std::fmt::Write as _;

/// Renders `totals` as a fixed-width table with a share column (percent
/// of the summed time) and a footer row.
pub fn render_totals(title: &str, totals: &[PhaseTotal]) -> String {
    let sum: f64 = totals.iter().map(|p| p.seconds).sum();
    let name_w = totals
        .iter()
        .map(|p| p.name.len())
        .chain(["phase".len(), "total".len()])
        .max()
        .unwrap_or(5)
        .max(5);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "  {:<name_w$}  {:>12}  {:>8}  {:>7}",
        "phase", "time (s)", "calls", "share"
    );
    let _ = writeln!(out, "  {:-<name_w$}  {:->12}  {:->8}  {:->7}", "", "", "", "");
    for p in totals {
        let share = if sum > 0.0 { 100.0 * p.seconds / sum } else { 0.0 };
        let _ = writeln!(
            out,
            "  {:<name_w$}  {:>12.6}  {:>8}  {:>6.1}%",
            p.name, p.seconds, p.calls, share
        );
    }
    let calls: u64 = totals.iter().map(|p| p.calls).sum();
    let _ = writeln!(out, "  {:-<name_w$}  {:->12}  {:->8}  {:->7}", "", "", "", "");
    let _ = writeln!(out, "  {:<name_w$}  {:>12.6}  {:>8}  {:>6.1}%", "total", sum, calls, 100.0);
    out
}

/// Renders the per-phase table for one track of `tel` (or all tracks when
/// `track` is `None`), sorted by descending total time.
pub fn phase_table(tel: &Telemetry, track: Option<Track>) -> String {
    let totals = tel.phase_totals(track);
    let title = match track {
        Some(t) => format!("phase breakdown [{}]", t.name()),
        None => "phase breakdown [all tracks]".to_string(),
    };
    render_totals(&title, &totals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_phases_by_descending_time_with_shares() {
        let t = Telemetry::new();
        t.span(Track::Host, "corner_force", 0.0, 3.0);
        t.span(Track::Host, "cg_solver", 3.0, 1.0);
        let out = phase_table(&t, Some(Track::Host));
        let cf = out.find("corner_force").unwrap();
        let cg = out.find("cg_solver").unwrap();
        assert!(cf < cg, "sorted by time desc:\n{out}");
        assert!(out.contains("75.0%"), "{out}");
        assert!(out.contains("25.0%"), "{out}");
        assert!(out.contains("total"), "{out}");
    }

    #[test]
    fn empty_table_renders_zero_total() {
        let t = Telemetry::new();
        let out = phase_table(&t, None);
        assert!(out.contains("total"));
    }
}
