//! # blast-telemetry
//!
//! The unified observability layer of the BLAST reproduction: one
//! span/counter API that every simulated surface — the hydro solver's CPU
//! phases, gpu-sim kernel launches and PCIe transfers, the PCG solver, the
//! work-stealing host pool, and cluster-sim recovery — emits into, on the
//! **same simulated-time axis** that [`powermon::PowerTrace`] bills energy
//! on. Compute spans, transfers, checkpoint writes, and power segments
//! therefore line up on one timeline, which is what makes performance /
//! energy attribution credible (the paper correlates its Table 1 / Fig. 6
//! time breakdowns with the Figs. 14-16 power traces by hand; here the
//! correlation is structural).
//!
//! ## Model
//!
//! - A [`Telemetry`] recorder holds a **preallocated ring buffer** of
//!   [`SpanRecord`]s: recording a span performs no heap allocation, so the
//!   solver's zero-allocation steady-state contract
//!   (`tests/zero_alloc_steady_state.rs`) holds with tracing enabled. When
//!   the ring wraps, the oldest raw spans are overwritten but the
//!   **per-phase aggregates** (total seconds, call counts) stay exact.
//! - Spans are **hierarchical**: [`Telemetry::begin`]/[`Telemetry::end`]
//!   nest on a per-track stack, and leaf spans recorded with
//!   [`Telemetry::span`] adopt the innermost open span as parent. Phase
//!   names are interned `&'static str`s (see [`names::phases`]) — no
//!   per-record `String`.
//! - [`Track`]s are the model's devices/subsystems: host CPU, GPU,
//!   cluster, pool. Each maps to one Chrome-trace thread lane.
//! - **Counters** are monotonic (`u64`), **gauges** are last-write-wins
//!   (`f64`).
//!
//! ## Exporters
//!
//! - [`chrome::chrome_trace`] / [`chrome::chrome_trace_with_power`]: Chrome
//!   trace-event JSON, loadable in `about://tracing` or Perfetto, with
//!   power traces rendered as counter lanes next to the spans.
//!   [`chrome::validate_chrome_trace`] re-parses an export and checks
//!   structure, monotonic timestamps, and parent/child containment — the
//!   round-trip contract the CI `trace-smoke` lane enforces.
//! - [`table::phase_table`]: the plain-text per-phase table that
//!   `paper_report` / `fig06_kernel_breakdown` report through.

pub mod chrome;
pub mod names;
pub mod recorder;
pub mod table;

pub use recorder::{
    EventKind, PhaseTotal, SpanRecord, Telemetry, TelemetrySink, Track, NUM_TRACKS,
};
