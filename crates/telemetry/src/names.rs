//! Interned phase / counter / gauge names shared across the workspace.
//!
//! Every instrumented surface refers to these constants instead of
//! spelling string literals, so the solver's `CpuEvent` names, the
//! telemetry spans, and the report tables can never drift apart.

/// Span / phase names (one per timeline lane entry).
pub mod phases {
    /// Corner-force (Kernels 1-6) host phase.
    pub const CORNER_FORCE: &str = "corner_force";
    /// Hybrid split: GPU side of the corner-force launch.
    pub const CORNER_FORCE_HYBRID: &str = "corner_force(hybrid)";
    /// Hybrid split: CPU side of the corner-force phase.
    pub const CORNER_FORCE_HYBRID_CPU: &str = "corner_force(hybrid cpu)";
    /// Momentum CG solve (PCG on the mass matrix).
    pub const CG_SOLVER: &str = "cg_solver";
    /// Energy RHS solve (local L2 mass inversions).
    pub const ENERGY_SOLVE: &str = "energy_solve";
    /// RK2 state integration / axpy updates.
    pub const INTEGRATION: &str = "integration";
    /// One full RK2 timestep (parent span of the four phases above).
    pub const STEP: &str = "step";
    /// Checkpoint image serialization + write.
    pub const CHECKPOINT_WRITE: &str = "checkpoint_write";
    /// Checkpoint image read + restore.
    pub const CHECKPOINT_RESTORE: &str = "checkpoint_restore";
    /// Cluster quiesce while recovering from a rank death.
    pub const RECOVERY_QUIESCE: &str = "recovery_quiesce";
    /// Instant: executor permanently degraded to CPU-only execution.
    pub const DEGRADE_TO_CPU: &str = "degrade_to_cpu";
    /// Instant: a rank was declared dead by the failure detector.
    pub const RANK_DEATH: &str = "rank_death";
    /// Instant: cluster recovery completed (membership shrunk, state restored).
    pub const RECOVERY_COMPLETE: &str = "recovery_complete";
    /// Host→device PCIe transfer.
    pub const MEMCPY_H2D: &str = "memcpy_h2d";
    /// Device→host PCIe transfer.
    pub const MEMCPY_D2H: &str = "memcpy_d2h";
    /// Retry-backoff wait: both devices idle through the gap.
    pub const RETRY_BACKOFF: &str = "retry_backoff";
    /// Instant: a job was admitted into the supervisor's queue.
    pub const JOB_ADMITTED: &str = "job_admitted";
    /// Instant: a job attempt started executing on a worker.
    pub const JOB_STARTED: &str = "job_started";
    /// Instant: a running job was checkpointed and evicted for a
    /// higher-priority one.
    pub const JOB_PREEMPTED: &str = "job_preempted";
    /// Instant: a preempted/faulted job resumed from its checkpoint.
    pub const JOB_RESUMED: &str = "job_resumed";
    /// Instant: a job reached `t_final` (terminal, success).
    pub const JOB_COMPLETED: &str = "job_completed";
    /// Instant: a job was cancelled (deadline miss or worker loss).
    pub const JOB_CANCELLED: &str = "job_cancelled";
    /// Instant: a job exhausted its retry budget (terminal, failure).
    pub const JOB_FAILED: &str = "job_failed";
    /// Instant: the failure detector declared a worker dead.
    pub const WORKER_DEAD: &str = "worker_dead";
    /// Instant: the energy-aware router placed a job on a fleet device.
    pub const JOB_ROUTED: &str = "job_routed";
    /// Physics-invariant audit of a completed step (SDC detection).
    pub const SDC_AUDIT: &str = "sdc_audit";
    /// Instant: an audit tripped — silent corruption detected.
    pub const SDC_DETECTED: &str = "sdc_detected";
}

/// Monotonic counter names.
pub mod counters {
    /// Completed RK2 steps.
    pub const STEPS: &str = "steps";
    /// Steps redone after rollback (fault or CFL violation).
    pub const STEP_REDOS: &str = "step_redos";
    /// Total PCG iterations across all momentum solves.
    pub const PCG_ITERATIONS: &str = "pcg_iterations";
    /// PCG solves started.
    pub const PCG_SOLVES: &str = "pcg_solves";
    /// PCG preconditioner breakdowns (restarts with identity).
    pub const PCG_BREAKDOWNS: &str = "pcg_breakdowns";
    /// Fused streaming-kernel sweeps executed by PCG (3 per iteration + 1
    /// setup when the fused variant is active; 0 on the unfused path).
    pub const PCG_FUSED_SWEEPS: &str = "pcg_fused_sweeps";
    /// Kernel launches on the simulated GPU.
    pub const GPU_LAUNCHES: &str = "gpu_launches";
    /// Modeled DRAM traffic moved by GPU kernels, bytes.
    pub const GPU_DRAM_BYTES: &str = "gpu_dram_bytes";
    /// Host→device bytes over PCIe.
    pub const H2D_BYTES: &str = "h2d_bytes";
    /// Device→host bytes over PCIe.
    pub const D2H_BYTES: &str = "d2h_bytes";
    /// Successful steals in the work-stealing host pool.
    pub const POOL_STEALS: &str = "pool_steals";
    /// Blocks executed by the host pool (owner-run + stolen).
    pub const POOL_BLOCKS: &str = "pool_blocks";
    /// Parallel drives issued to the host pool.
    pub const POOL_CALLS: &str = "pool_calls";
    /// Point-to-point messages sent through the cluster communicator.
    pub const MSGS_SENT: &str = "msgs_sent";
    /// Payload bytes sent through the cluster communicator.
    pub const MSG_BYTES: &str = "msg_bytes";
    /// Messages dropped by injected faults.
    pub const MSGS_DROPPED: &str = "msgs_dropped";
    /// Ranks declared dead by the failure detector.
    pub const RANK_DEATHS: &str = "rank_deaths";
    /// Checkpoint images written.
    pub const CHECKPOINTS_WRITTEN: &str = "checkpoints_written";
    /// Checkpoint restores performed.
    pub const CHECKPOINT_RESTORES: &str = "checkpoint_restores";
    /// Jobs admitted by the supervisor.
    pub const JOBS_SUBMITTED: &str = "jobs_submitted";
    /// Submissions rejected by admission control (queue full / over budget).
    pub const JOBS_REJECTED: &str = "jobs_rejected";
    /// Jobs that reached `t_final`.
    pub const JOBS_COMPLETED: &str = "jobs_completed";
    /// Jobs cancelled (deadline miss or worker loss).
    pub const JOBS_CANCELLED: &str = "jobs_cancelled";
    /// Jobs that exhausted their retry budget.
    pub const JOBS_FAILED: &str = "jobs_failed";
    /// Checkpoint-backed evictions performed by the scheduler.
    pub const JOB_PREEMPTIONS: &str = "job_preemptions";
    /// Whole-job retry attempts after a fault death.
    pub const JOB_RETRIES: &str = "job_retries";
    /// Jobs placed by the energy-aware router.
    pub const JOBS_ROUTED: &str = "jobs_routed";
    /// Routed jobs where the latency SLO forced a pick that was not the
    /// cheapest-energy candidate.
    pub const ROUTE_SLO_FORCED: &str = "route_slo_forced";
    /// Host-calibration searches that found no usable multi-core sample
    /// and silently kept the preset efficiency (see `host_speedup`).
    pub const HOST_CALIBRATION_KEPT: &str = "host_calibration_kept";
    /// Deadline misses (a subset of `jobs_cancelled`).
    pub const DEADLINE_MISSES: &str = "deadline_misses";
    /// Workers declared dead by the supervisor's failure detector.
    pub const WORKER_DEATHS: &str = "worker_deaths";
    /// Physics-invariant audits executed after accepted steps.
    pub const SDC_AUDITS: &str = "sdc_audits";
    /// Audit/ABFT detections of silent data corruption.
    pub const SDC_DETECTED: &str = "sdc_detected";
    /// Silent bit flips injected by the active `SdcPlan`.
    pub const SDC_FLIPS_INJECTED: &str = "sdc_flips_injected";
}

/// Gauge names (last-write-wins samples).
pub mod gauges {
    /// Occupancy of the most recent GPU kernel launch (0..1).
    pub const GPU_OCCUPANCY: &str = "gpu_occupancy";
    /// DRAM bandwidth utilization of the most recent launch (0..1).
    pub const GPU_DRAM_UTIL: &str = "gpu_dram_util";
    /// Active host pool threads at last sample.
    pub const POOL_THREADS: &str = "pool_threads";
    /// Jobs waiting in the supervisor's admission queue at last sample.
    pub const SERVE_QUEUE_DEPTH: &str = "serve_queue_depth";
}
