//! The span/counter recorder: a preallocated ring of raw spans plus exact
//! per-phase aggregates, behind one shared, thread-safe handle.

use std::sync::{Arc, Mutex};

/// Number of timeline tracks (Chrome-trace lanes).
pub const NUM_TRACKS: usize = 5;

/// Which simulated timeline a span belongs to. Every track shares the one
/// simulated-time axis (seconds since run start) that the power traces
/// also use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Track {
    /// The host CPU package (solver phases, checkpoint writes).
    Host,
    /// The simulated GPU (kernel launches, PCIe transfers).
    Gpu,
    /// The MPI-like cluster runtime (messages, recovery events).
    Cluster,
    /// The work-stealing host pool (parallel-call markers).
    Pool,
    /// The job supervisor (`blast-serve`): admissions, job lifecycle
    /// markers, preemptions, worker deaths — on the service-global
    /// simulated clock.
    Serve,
}

impl Track {
    /// Dense index (Chrome-trace `tid`).
    pub fn index(self) -> usize {
        match self {
            Track::Host => 0,
            Track::Gpu => 1,
            Track::Cluster => 2,
            Track::Pool => 3,
            Track::Serve => 4,
        }
    }

    /// Human-readable lane name.
    pub fn name(self) -> &'static str {
        match self {
            Track::Host => "host",
            Track::Gpu => "gpu",
            Track::Cluster => "cluster",
            Track::Pool => "pool",
            Track::Serve => "serve",
        }
    }

    /// All tracks, in `tid` order.
    pub fn all() -> [Track; NUM_TRACKS] {
        [Track::Host, Track::Gpu, Track::Cluster, Track::Pool, Track::Serve]
    }
}

/// Span vs point-in-time marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An interval `[start, start + dur]`.
    Span,
    /// A zero-duration event (degrade-to-CPU, rank death, ...).
    Instant,
}

/// One recorded span. Copy, fixed-size, name interned — the ring holds
/// these inline so recording is allocation-free.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// Unique id (monotonic across the recorder).
    pub id: u64,
    /// Id of the enclosing open span on the same track, if any.
    pub parent: Option<u64>,
    /// Interned phase name.
    pub name: &'static str,
    /// Timeline lane.
    pub track: Track,
    /// Start, simulated seconds.
    pub start_s: f64,
    /// Duration, simulated seconds (0 for instants).
    pub dur_s: f64,
    /// Nesting depth at record time (0 = top level).
    pub depth: u16,
    /// Span or instant.
    pub kind: EventKind,
}

impl SpanRecord {
    /// End time, simulated seconds.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.dur_s
    }
}

/// Exact per-phase aggregate — survives ring wrap-around.
#[derive(Clone, Copy, Debug)]
pub struct PhaseTotal {
    /// Timeline lane.
    pub track: Track,
    /// Interned phase name.
    pub name: &'static str,
    /// Total seconds across all calls.
    pub seconds: f64,
    /// Number of recorded spans.
    pub calls: u64,
}

#[derive(Clone, Copy, Debug)]
struct OpenSpan {
    id: u64,
    name: &'static str,
    start_s: f64,
}

#[derive(Debug)]
struct Inner {
    ring: Vec<SpanRecord>,
    /// Ring capacity: fixed unless grown by [`Telemetry::reserve_spans`]
    /// before the ring wraps.
    cap: usize,
    /// Next overwrite position once `ring.len() == cap`.
    head: usize,
    /// Oldest spans overwritten by wrap-around.
    dropped: u64,
    next_id: u64,
    open: [Vec<OpenSpan>; NUM_TRACKS],
    phases: Vec<PhaseTotal>,
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
}

/// Shared handle to a [`Telemetry`] recorder — every instrumented surface
/// (devices, solver, cluster) holds one of these.
pub type TelemetrySink = Arc<Telemetry>;

/// The recorder. Interior-mutable and `Sync`: devices append from behind
/// `&self` exactly like they append to their power traces.
#[derive(Debug)]
pub struct Telemetry {
    inner: Mutex<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

/// Default ring capacity: enough for the raw spans of a mid-size
/// instrumented run (~16k spans × 72 B ≈ 1.2 MB); aggregates are exact
/// regardless.
pub const DEFAULT_SPAN_CAPACITY: usize = 16 * 1024;

/// Reserved slots for distinct phase names / counters / gauges. The
/// workspace uses ~30 distinct names; recording an already-seen name never
/// allocates, and the first sight of a name only allocates past this many
/// distinct names.
const NAME_TABLE_CAPACITY: usize = 128;

impl Telemetry {
    /// Recorder with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// Recorder whose ring holds `spans` raw spans. All storage is
    /// preallocated here: recording is allocation-free until more than
    /// [`NAME_TABLE_CAPACITY`] distinct names appear.
    pub fn with_capacity(spans: usize) -> Self {
        let cap = spans.max(1);
        Self {
            inner: Mutex::new(Inner {
                ring: Vec::with_capacity(cap),
                cap,
                head: 0,
                dropped: 0,
                next_id: 0,
                open: std::array::from_fn(|_| Vec::with_capacity(32)),
                phases: Vec::with_capacity(NAME_TABLE_CAPACITY),
                counters: Vec::with_capacity(NAME_TABLE_CAPACITY),
                gauges: Vec::with_capacity(NAME_TABLE_CAPACITY),
            }),
        }
    }

    /// Convenience: a fresh recorder behind a shared sink handle.
    pub fn sink() -> TelemetrySink {
        Arc::new(Self::new())
    }

    /// Grows the ring so at least `additional` more spans fit before any
    /// wrap-around overwrite. Only effective before the ring has wrapped
    /// (afterwards the ring is already recycling its fixed storage).
    pub fn reserve_spans(&self, additional: usize) {
        let mut st = self.lock();
        if st.dropped == 0 {
            let want = st.ring.len() + additional;
            if want > st.cap {
                st.cap = want;
                let len = st.ring.len();
                st.ring.reserve_exact(want - len);
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    // ----------------------------------------------------------------
    // Recording
    // ----------------------------------------------------------------

    /// Opens a hierarchical span on `track` at simulated time `start_s`.
    /// Returns the span id; close with [`Telemetry::end`].
    pub fn begin(&self, track: Track, name: &'static str, start_s: f64) -> u64 {
        let mut st = self.lock();
        let id = st.next_id;
        st.next_id += 1;
        st.open[track.index()].push(OpenSpan { id, name, start_s });
        id
    }

    /// Closes the innermost open span on `track` at simulated time
    /// `end_s`, recording it. Unbalanced `end` calls are ignored.
    pub fn end(&self, track: Track, end_s: f64) {
        let mut st = self.lock();
        if let Some(open) = st.open[track.index()].pop() {
            let depth = st.open[track.index()].len() as u16;
            let parent = st.open[track.index()].last().map(|o| o.id);
            let rec = SpanRecord {
                id: open.id,
                parent,
                name: open.name,
                track,
                start_s: open.start_s,
                dur_s: (end_s - open.start_s).max(0.0),
                depth,
                kind: EventKind::Span,
            };
            st.record(rec);
        }
    }

    /// Records a complete leaf span `[start_s, start_s + dur_s]` on
    /// `track`. The innermost open span on the track becomes its parent.
    pub fn span(&self, track: Track, name: &'static str, start_s: f64, dur_s: f64) {
        let mut st = self.lock();
        let id = st.next_id;
        st.next_id += 1;
        let depth = st.open[track.index()].len() as u16;
        let parent = st.open[track.index()].last().map(|o| o.id);
        let rec = SpanRecord {
            id,
            parent,
            name,
            track,
            start_s,
            dur_s: dur_s.max(0.0),
            depth,
            kind: EventKind::Span,
        };
        st.record(rec);
    }

    /// Records a zero-duration marker (degrade event, rank death, ...).
    pub fn instant(&self, track: Track, name: &'static str, t_s: f64) {
        let mut st = self.lock();
        let id = st.next_id;
        st.next_id += 1;
        let depth = st.open[track.index()].len() as u16;
        let parent = st.open[track.index()].last().map(|o| o.id);
        let rec = SpanRecord {
            id,
            parent,
            name,
            track,
            start_s: t_s,
            dur_s: 0.0,
            depth,
            kind: EventKind::Instant,
        };
        st.record(rec);
    }

    /// Adds `delta` to the monotonic counter `name`.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let mut st = self.lock();
        if let Some(slot) = st.counters.iter_mut().find(|(n, _)| *n == name) {
            slot.1 += delta;
        } else {
            st.counters.push((name, delta));
        }
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        let mut st = self.lock();
        if let Some(slot) = st.gauges.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            st.gauges.push((name, value));
        }
    }

    // ----------------------------------------------------------------
    // Reading
    // ----------------------------------------------------------------

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// All counters, in first-touch order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.lock().counters.clone()
    }

    /// All gauges, in first-touch order.
    pub fn gauges(&self) -> Vec<(&'static str, f64)> {
        self.lock().gauges.clone()
    }

    /// The raw spans still in the ring, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let st = self.lock();
        if st.dropped == 0 {
            st.ring.clone()
        } else {
            let mut out = Vec::with_capacity(st.ring.len());
            out.extend_from_slice(&st.ring[st.head..]);
            out.extend_from_slice(&st.ring[..st.head]);
            out
        }
    }

    /// Spans overwritten by ring wrap-around (aggregates still count them).
    pub fn dropped_spans(&self) -> u64 {
        self.lock().dropped
    }

    /// Exact per-phase totals, optionally filtered to one track, sorted by
    /// descending total time.
    pub fn phase_totals(&self, track: Option<Track>) -> Vec<PhaseTotal> {
        let st = self.lock();
        let mut out: Vec<PhaseTotal> = st
            .phases
            .iter()
            .filter(|p| track.is_none_or(|t| p.track == t))
            .copied()
            .collect();
        out.sort_by(|a, b| b.seconds.partial_cmp(&a.seconds).expect("finite phase totals"));
        out
    }

    /// Latest span end time on `track` (0 when the track is empty). Uses
    /// the ring, so it reflects the retained window.
    pub fn last_end_s(&self, track: Track) -> f64 {
        let st = self.lock();
        st.ring
            .iter()
            .filter(|s| s.track == track)
            .map(|s| s.end_s())
            .fold(0.0, f64::max)
    }
}

impl Inner {
    fn record(&mut self, rec: SpanRecord) {
        // Aggregate (exact, survives wrap-around). Instants count calls
        // but no time.
        if rec.kind == EventKind::Span {
            if let Some(slot) = self
                .phases
                .iter_mut()
                .find(|p| p.track == rec.track && p.name == rec.name)
            {
                slot.seconds += rec.dur_s;
                slot.calls += 1;
            } else {
                self.phases.push(PhaseTotal {
                    track: rec.track,
                    name: rec.name,
                    seconds: rec.dur_s,
                    calls: 1,
                });
            }
        }
        // Ring write.
        if self.ring.len() < self.cap {
            self.ring.push(rec);
        } else {
            let head = self.head;
            self.ring[head] = rec;
            self.head = (head + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_spans_aggregate_exactly() {
        let t = Telemetry::new();
        t.span(Track::Host, "corner_force", 0.0, 1.0);
        t.span(Track::Host, "corner_force", 1.0, 0.5);
        t.span(Track::Host, "cg_solver", 1.5, 0.25);
        let totals = t.phase_totals(Some(Track::Host));
        assert_eq!(totals[0].name, "corner_force");
        assert!((totals[0].seconds - 1.5).abs() < 1e-15);
        assert_eq!(totals[0].calls, 2);
        assert_eq!(totals[1].name, "cg_solver");
    }

    #[test]
    fn begin_end_nesting_assigns_parents_and_depth() {
        let t = Telemetry::new();
        let step = t.begin(Track::Host, "step", 0.0);
        t.span(Track::Host, "corner_force", 0.0, 0.4);
        let inner = t.begin(Track::Host, "cg_solver", 0.4);
        t.span(Track::Host, "spmv", 0.4, 0.1);
        t.end(Track::Host, 0.6); // cg_solver
        t.end(Track::Host, 1.0); // step
        let spans = t.spans();
        assert_eq!(spans.len(), 4);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("corner_force").parent, Some(step));
        assert_eq!(by_name("corner_force").depth, 1);
        assert_eq!(by_name("spmv").parent, Some(inner));
        assert_eq!(by_name("spmv").depth, 2);
        assert_eq!(by_name("cg_solver").parent, Some(step));
        assert_eq!(by_name("step").parent, None);
        assert_eq!(by_name("step").depth, 0);
        // Children are contained in their parents on the time axis.
        for s in &spans {
            if let Some(pid) = s.parent {
                let p = spans.iter().find(|q| q.id == pid).unwrap();
                assert!(p.start_s <= s.start_s && s.end_s() <= p.end_s() + 1e-15);
            }
        }
    }

    #[test]
    fn ring_wraps_but_aggregates_stay_exact() {
        let t = Telemetry::with_capacity(4);
        for i in 0..10 {
            t.span(Track::Gpu, "k", i as f64, 0.5);
        }
        assert_eq!(t.dropped_spans(), 6);
        let spans = t.spans();
        assert_eq!(spans.len(), 4);
        // Oldest-first after wrap.
        assert!(spans.windows(2).all(|w| w[0].start_s < w[1].start_s));
        assert!((spans[0].start_s - 6.0).abs() < 1e-15);
        let totals = t.phase_totals(None);
        assert_eq!(totals[0].calls, 10);
        assert!((totals[0].seconds - 5.0).abs() < 1e-15);
    }

    #[test]
    fn reserve_spans_prevents_wrap() {
        let t = Telemetry::with_capacity(2);
        t.reserve_spans(10);
        for i in 0..10 {
            t.span(Track::Host, "p", i as f64, 0.1);
        }
        assert_eq!(t.dropped_spans(), 0);
        assert_eq!(t.spans().len(), 10);
    }

    #[test]
    fn counters_and_gauges() {
        let t = Telemetry::new();
        t.counter_add("pcg_iterations", 7);
        t.counter_add("pcg_iterations", 3);
        t.gauge_set("occupancy", 0.5);
        t.gauge_set("occupancy", 0.75);
        assert_eq!(t.counter("pcg_iterations"), 10);
        assert_eq!(t.counter("untouched"), 0);
        assert_eq!(t.gauge("occupancy"), Some(0.75));
    }

    #[test]
    fn instants_count_calls_but_no_time() {
        let t = Telemetry::new();
        t.instant(Track::Host, "degrade_to_cpu", 1.0);
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.spans()[0].kind, EventKind::Instant);
        assert!(t.phase_totals(None).is_empty());
    }

    #[test]
    fn unbalanced_end_is_ignored() {
        let t = Telemetry::new();
        t.end(Track::Host, 1.0);
        assert!(t.spans().is_empty());
    }
}
