//! Chrome trace-event JSON exporter and structural validator.
//!
//! The export is the "JSON Object Format" understood by `about://tracing`
//! and Perfetto: `{"traceEvents": [...]}` where each element is a complete
//! span (`"ph": "X"`, microsecond `ts`/`dur`), an instant (`"ph": "i"`), a
//! counter sample (`"ph": "C"`, used for power traces), or thread metadata
//! (`"ph": "M"`). All events live in one process (`pid` 0) with one thread
//! per [`Track`].
//!
//! [`validate_chrome_trace`] re-parses an export with a small in-crate JSON
//! parser (no external dependencies are available offline) and checks the
//! structural contract the CI `trace-smoke` lane relies on: valid JSON,
//! non-negative finite timestamps, and parent/child span containment.

use crate::recorder::{EventKind, SpanRecord, Telemetry, Track};
use powermon::PowerTrace;
use std::collections::HashMap;
use std::fmt::Write as _;

const US_PER_S: f64 = 1e6;

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_span_event(out: &mut String, s: &SpanRecord) {
    let ph = match s.kind {
        EventKind::Span => "X",
        EventKind::Instant => "i",
    };
    out.push_str("{\"name\":\"");
    escape_into(out, s.name);
    let _ = write!(
        out,
        "\",\"ph\":\"{}\",\"pid\":0,\"tid\":{},\"ts\":{:.3}",
        ph,
        s.track.index(),
        s.start_s * US_PER_S
    );
    if s.kind == EventKind::Span {
        let _ = write!(out, ",\"dur\":{:.3}", s.dur_s * US_PER_S);
    } else {
        out.push_str(",\"s\":\"t\"");
    }
    let parent = s.parent.map(|p| p as i64).unwrap_or(-1);
    let _ = write!(
        out,
        ",\"args\":{{\"id\":{},\"parent\":{},\"depth\":{}}}}}",
        s.id, parent, s.depth
    );
}

fn push_meta_event(out: &mut String, tid: usize, label: &str) {
    out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,");
    let _ = write!(out, "\"tid\":{tid},\"args\":{{\"name\":\"");
    escape_into(out, label);
    out.push_str("\"}}");
}

fn push_counter_event(out: &mut String, tid: usize, name: &str, ts_us: f64, watts: f64) {
    out.push_str("{\"name\":\"");
    escape_into(out, name);
    let _ = write!(
        out,
        "\",\"ph\":\"C\",\"pid\":0,\"tid\":{tid},\"ts\":{ts_us:.3},\"args\":{{\"watts\":{watts:.3}}}}}"
    );
}

/// Exports `tel` as Chrome trace-event JSON (spans + instants + thread
/// metadata, no power lanes).
pub fn chrome_trace(tel: &Telemetry) -> String {
    chrome_trace_with_power(tel, &[])
}

/// Exports `tel` as Chrome trace-event JSON with the given power traces
/// rendered as counter lanes (one `"C"` sample per segment edge, so the
/// stepwise power model renders exactly).
pub fn chrome_trace_with_power(tel: &Telemetry, power: &[(Track, &PowerTrace)]) -> String {
    let spans = tel.spans();
    let mut out = String::with_capacity(160 * spans.len() + 4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    for t in Track::all() {
        sep(&mut out);
        push_meta_event(&mut out, t.index(), t.name());
    }
    for s in &spans {
        sep(&mut out);
        push_span_event(&mut out, s);
    }
    for (track, trace) in power {
        let lane = format!("power:{} (W)", track.name());
        let idle = trace.idle_watts();
        let mut cursor = 0.0_f64;
        for seg in trace.segments() {
            if seg.start > cursor {
                // Idle gap before this segment.
                sep(&mut out);
                push_counter_event(&mut out, track.index(), &lane, cursor * US_PER_S, idle);
            }
            sep(&mut out);
            push_counter_event(&mut out, track.index(), &lane, seg.start * US_PER_S, seg.watts);
            cursor = seg.start + seg.duration;
            sep(&mut out);
            push_counter_event(&mut out, track.index(), &lane, cursor * US_PER_S, idle);
        }
    }
    out.push_str("],\"otherData\":{\"dropped_spans\":");
    let _ = write!(out, "{}", tel.dropped_spans());
    out.push_str(",\"counters\":{");
    for (i, (name, v)) in tel.counters().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, name);
        let _ = write!(out, "\":{v}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in tel.gauges().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, name);
        let _ = write!(out, "\":{v}");
    }
    out.push_str("}}}");
    out
}

// --------------------------------------------------------------------
// Minimal JSON parser (offline container: no serde). Only what the
// validator needs: null/bool/number/string/array/object.
// --------------------------------------------------------------------

/// A parsed JSON value (in-crate mini parser; see module docs).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as f64.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order not preserved).
    Obj(HashMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unterminated"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = HashMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a JSON document with the in-crate mini parser.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

/// What [`validate_chrome_trace`] found in a structurally valid export.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceSummary {
    /// `"X"` complete-span events.
    pub spans: usize,
    /// `"i"` instant events.
    pub instants: usize,
    /// `"C"` counter samples.
    pub counter_samples: usize,
    /// Latest `ts + dur` across span events, in seconds.
    pub max_end_s: f64,
}

/// Re-parses a Chrome trace export and checks the structural contract:
/// top-level `traceEvents` array, every event carries `name`/`ph` and a
/// finite non-negative `ts` (metadata excepted), span durations are
/// non-negative, and every span whose `args.parent` is present is
/// contained in its parent's interval on the same thread lane.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut summary = TraceSummary::default();
    // id -> (tid, ts, ts+dur) for parent containment checks.
    let mut by_id: HashMap<i64, (i64, f64, f64)> = HashMap::new();
    let mut child_links: Vec<(i64, i64, f64, f64, String)> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing ph"))?;
        if ph == "M" {
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i} ({name}): missing ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i} ({name}): bad ts {ts}"));
        }
        let tid = ev.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as i64;
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("span {i} ({name}): missing dur"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("span {i} ({name}): bad dur {dur}"));
                }
                summary.spans += 1;
                summary.max_end_s = summary.max_end_s.max((ts + dur) / US_PER_S);
                if let Some(args) = ev.get("args") {
                    let id = args.get("id").and_then(Json::as_f64).map(|v| v as i64);
                    let parent = args.get("parent").and_then(Json::as_f64).map(|v| v as i64);
                    if let Some(id) = id {
                        by_id.insert(id, (tid, ts, ts + dur));
                        if let Some(p) = parent {
                            if p >= 0 {
                                child_links.push((id, p, ts, ts + dur, name.to_string()));
                            }
                        }
                    }
                }
            }
            "i" => summary.instants += 1,
            "C" => summary.counter_samples += 1,
            other => return Err(format!("event {i} ({name}): unknown ph '{other}'")),
        }
    }

    // Containment: a child span lies within its parent's interval, on the
    // same lane. Tolerance covers the 3-decimal µs rounding in the export.
    const TOL_US: f64 = 2e-3;
    for (id, parent, ts, end, name) in &child_links {
        let &(ptid, pts, pend) = by_id
            .get(parent)
            .ok_or_else(|| format!("span {name} (id {id}): parent {parent} not in trace"))?;
        let &(tid, _, _) = by_id.get(id).expect("child was inserted");
        if tid != ptid {
            return Err(format!("span {name} (id {id}): parent on different lane"));
        }
        if *ts + TOL_US < pts || *end > pend + TOL_US {
            return Err(format!(
                "span {name} (id {id}): [{ts}, {end}] escapes parent [{pts}, {pend}]"
            ));
        }
    }

    if summary.spans + summary.instants == 0 {
        return Err("trace contains no span or instant events".into());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Track;

    #[test]
    fn export_round_trips_and_validates() {
        let t = Telemetry::new();
        t.begin(Track::Host, "step", 0.0);
        t.span(Track::Host, "corner_force", 0.0, 0.4);
        t.span(Track::Host, "cg_solver", 0.4, 0.3);
        t.end(Track::Host, 1.0);
        t.instant(Track::Host, "degrade_to_cpu", 0.9);
        t.counter_add("steps", 1);
        t.gauge_set("gpu_occupancy", 0.5);
        let json = chrome_trace(&t);
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.instants, 1);
        assert!((summary.max_end_s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn power_counters_cover_trace_extent() {
        let t = Telemetry::new();
        t.span(Track::Host, "p", 0.0, 1.0);
        let mut pt = PowerTrace::new(40.0);
        pt.push(0.0, 0.6, 90.0);
        pt.push(0.8, 0.2, 110.0);
        let json = chrome_trace_with_power(&t, &[(Track::Host, &pt)]);
        let summary = validate_chrome_trace(&json).expect("valid trace");
        // 2 samples per segment + 1 idle-gap sample before the second.
        assert_eq!(summary.counter_samples, 5);
        assert_eq!(summary.spans, 1);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{\"a\":").is_err());
        assert!(parse_json("[1,2,]").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": []}").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a": [1, -2.5e3, "x\nyA", true, null, {"b": false}]}"#)
            .expect("parses");
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x\nyA"));
        assert_eq!(arr[5].get("b"), Some(&Json::Bool(false)));
    }

    #[test]
    fn child_escaping_parent_is_rejected() {
        // Hand-built trace where the child ends after its parent.
        let bad = r#"{"traceEvents":[
            {"name":"p","ph":"X","pid":0,"tid":0,"ts":0,"dur":10,"args":{"id":0,"parent":-1,"depth":0}},
            {"name":"c","ph":"X","pid":0,"tid":0,"ts":5,"dur":10,"args":{"id":1,"parent":0,"depth":1}}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("escapes parent"), "{err}");
    }
}
