//! The serve ledger: one [`ServeReport`] per supervisor run, with the
//! per-job rows, per-tenant energy attribution, the independently
//! integrated worker power traces, and the digest/summary hooks the
//! serve-chaos CI lane and failure printers consume.

use crate::job::{JobOutcome, JobRecord};
use powermon::ResilienceReport;

/// Everything a supervisor run produced. Two energy views are kept on
/// purpose: the *billed* view (per-job tenant charges plus the unowned
/// idle bucket, accumulated from each attempt's own device meters) and
/// the *trace* view (the per-worker power traces integrated end to end,
/// with scheduling gaps billed at idle watts). The reconciliation gate
/// demands they agree — energy can neither vanish nor be billed twice.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Per-job ledger rows, in admission order.
    pub jobs: Vec<JobRecord>,
    /// Per-tenant billed joules, sorted by tenant name.
    pub tenant_energy_j: Vec<(String, f64)>,
    /// Joules no tenant owns: workers idling between arrivals.
    pub idle_energy_j: f64,
    /// The per-worker power traces integrated over each worker's
    /// lifetime — the independent ground truth the billing must match.
    pub trace_energy_j: f64,
    /// Trace joules grouped by catalog device id (summed over every
    /// worker advertising that id, sorted by id). Sums to
    /// `trace_energy_j`; the fleet-routing gate reads placement quality
    /// off this breakdown. Deliberately excluded from `ledger_digest` so
    /// legacy digests are unchanged.
    pub device_energy_j: Vec<(String, f64)>,
    /// End of the serve timeline (max worker clock), simulated seconds.
    pub wall_s: f64,
    /// Workers declared dead by the failure detector.
    pub workers_lost: u64,
    /// Submissions bounced by admission control.
    pub rejected: u64,
    /// Aggregated resilience accounting across every attempt, with
    /// per-tenant energy attribution filled in.
    pub resilience: ResilienceReport,
}

impl ServeReport {
    /// Total joules billed to tenants plus the unowned idle bucket.
    pub fn billed_energy_j(&self) -> f64 {
        self.jobs.iter().map(|j| j.energy_j).sum::<f64>() + self.idle_energy_j
    }

    /// Relative disagreement between the billed view and the trace view.
    /// The supervision gate requires this below `1e-9`.
    pub fn reconciliation_error(&self) -> f64 {
        let billed = self.billed_energy_j();
        let denom = self.trace_energy_j.abs().max(1.0);
        (billed - self.trace_energy_j).abs() / denom
    }

    /// Whether every admitted job reached a terminal state — the
    /// no-limbo half of the storm gate.
    pub fn all_terminal(&self) -> bool {
        self.jobs.iter().all(|j| j.outcome.is_some())
    }

    /// Jobs whose outcome matches `pred`.
    pub fn count(&self, pred: impl Fn(&JobOutcome) -> bool) -> usize {
        self.jobs.iter().filter(|j| j.outcome.as_ref().is_some_and(&pred)).count()
    }

    /// FNV-1a digest over every job row (outcome, counters, energy bits,
    /// final states) plus the tenant totals — the line the serve-chaos CI
    /// lane diffs across `BLAST_THREADS` values and reruns.
    pub fn ledger_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat_u64 = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for job in &self.jobs {
            eat_u64(job.digest());
        }
        for (tenant, j) in &self.tenant_energy_j {
            eat_u64(tenant.len() as u64);
            eat_u64(j.to_bits());
        }
        eat_u64(self.idle_energy_j.to_bits());
        h
    }

    /// Human-readable ledger, printed by the serve tests on any gate
    /// failure (alongside the active fault seed) so a failing seed can be
    /// replayed and read without re-instrumenting.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "serve ledger: {} jobs, {} rejected, {} workers lost, wall {:.6} s",
            self.jobs.len(),
            self.rejected,
            self.workers_lost,
            self.wall_s
        );
        for job in &self.jobs {
            let outcome = match &job.outcome {
                None => "LIMBO".to_string(),
                Some(JobOutcome::Completed { steps, t }) => {
                    format!("completed steps={steps} t={t:.6}")
                }
                Some(JobOutcome::Cancelled { reason }) => format!("cancelled ({reason:?})"),
                Some(JobOutcome::Failed { attempts, error }) => {
                    format!("failed after {attempts} attempts: {error}")
                }
            };
            let _ = writeln!(
                s,
                "  {} tenant={} scenario={} {} | {:.6e} J, wall {:.6} s, steps {}, \
                 redos {}, attempts {}, preempt {}, restores {}, backoff {:.3e} s{}",
                job.id,
                job.tenant,
                job.scenario,
                outcome,
                job.energy_j,
                job.wall_s,
                job.steps,
                job.redos,
                job.attempts,
                job.preemptions,
                job.restores,
                job.backoff_s,
                if job.degraded { " [degraded]" } else { "" }
            );
        }
        for (tenant, j) in &self.tenant_energy_j {
            let _ = writeln!(s, "  tenant {tenant}: {j:.6e} J");
        }
        for (dev, j) in &self.device_energy_j {
            let _ = writeln!(s, "  device {dev}: {j:.6e} J");
        }
        let _ = writeln!(
            s,
            "  idle {:.6e} J | billed {:.6e} J vs trace {:.6e} J (rel err {:.3e})",
            self.idle_energy_j,
            self.billed_energy_j(),
            self.trace_energy_j,
            self.reconciliation_error()
        );
        let _ = writeln!(s, "  job ledger digest: {:016x}", self.ledger_digest());
        s
    }
}
