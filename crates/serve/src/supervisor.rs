//! The job supervisor: admission, scheduling, deadlines, retry/backoff,
//! checkpoint-backed preemption, worker-death recovery, and per-tenant
//! energy billing — all on the simulated-time axis.
//!
//! # Time and energy model
//!
//! Each worker owns a continuous simulated clock and a pair of power
//! traces (host + optional GPU) covering its whole lifetime. A job
//! attempt runs on a *fresh* solver whose devices start at `t = 0`; when
//! the attempt ends (completion, fault, preemption, worker death,
//! cancellation) its device traces are re-emitted into the worker traces
//! shifted by the attempt's start offset, and the attempt's metered
//! joules are billed to the owning tenant. Retry backoffs and
//! arrival-wait gaps advance the worker clock without segments, so the
//! worker trace bills them at idle watts — exactly what the supervisor
//! charges (backoffs to the tenant, arrival waits to the idle bucket).
//! The ledger gate checks the two accountings agree to 1e-9.
//!
//! # Determinism
//!
//! Scheduling is a single-threaded discrete-event loop with total tie
//! ordering (worker id, job id); chaos is drawn from the counter-based
//! [`fault_draw`] stream keyed by the config seed. Physics is
//! bit-deterministic regardless of `BLAST_THREADS`, so the whole job
//! ledger digest is reproducible from the seed alone.

use std::collections::BTreeMap;
use std::sync::Arc;

use blast_core::checkpoint::CheckpointStore;
use blast_core::solver::MAX_STEP_REDOS;
use blast_core::state::HydroState;
use blast_core::{AuditConfig, ExecMode, Executor, Hydro, HydroError, RetryPolicy};
use blast_telemetry::names::{counters, gauges, phases};
use blast_telemetry::{Telemetry, TelemetrySink, Track};
use cluster_sim::FailureDetector;
use gpu_sim::fault::fault_draw;
use gpu_sim::{derive_fault, CpuSpec, FaultPlan, GpuDevice, GpuSpec, SdcSite};
use powermon::{PowerTrace, ResilienceReport};

use crate::admission::AdmissionError;
use crate::job::{CancelReason, JobId, JobOutcome, JobRecord, JobSpec};
use crate::ledger::ServeReport;
use gpu_sim::DeviceCatalog;

/// Chaos stream id for the supervisor's per-quantum fault draws (disjoint
/// from the device fault streams and the retry jitter stream).
pub const SERVE_CHAOS_STREAM: u64 = 0x05E2_FE57;

/// Supervisor configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Admission queue bound: at most this many admitted-but-unfinished
    /// jobs; further submissions bounce with `QueueFull`.
    pub queue_capacity: usize,
    /// Accepted steps per scheduling quantum (preemption and worker
    /// death are observed at quantum boundaries).
    pub quantum_steps: usize,
    /// Whole-job retry policy template. Each job gets its own jitter
    /// seed derived from `seed` and the job id.
    pub retry: RetryPolicy,
    /// Consecutive missed heartbeats before a worker is declared dead.
    pub worker_death_threshold: u32,
    /// Seed for the supervisor's chaos and jitter streams.
    pub seed: u64,
    /// Per-quantum probability a job draws a lethal fault burst (more
    /// consecutive recoverable faults than the solver's redo budget).
    pub kill_rate: f64,
    /// Per-quantum probability of a survivable redo burst (absorbed by
    /// rollback with dt halving).
    pub redo_rate: f64,
    /// Per-quantum probability of a silent-data-corruption burst: a
    /// replayable bit flip armed in the attempt's next step. When this is
    /// nonzero every attempt runs with the physics-invariant auditor
    /// installed, so a corrupted job is either healed in place (audit +
    /// same-dt redo), retried after a typed `CorruptionDetected`, or
    /// failed typed — never completed silently wrong.
    pub sdc_rate: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            quantum_steps: 8,
            retry: RetryPolicy::default().with_cap(1.0),
            worker_death_threshold: 3,
            seed: 42,
            kill_rate: 0.0,
            redo_rate: 0.0,
            sdc_rate: 0.0,
        }
    }
}

/// A worker blueprint: the host CPU, optionally a GPU (with a standing
/// fault plan installed on every attempt), and an optional scripted
/// death time on the worker's clock.
#[derive(Clone, Debug)]
pub struct WorkerSpec {
    /// Catalog device id this worker advertises (`gpu_sim::DeviceCatalog`)
    /// — the key routed jobs are matched against, and the bucket its
    /// energy lands under in `ServeReport::device_energy_j`.
    pub device_id: String,
    /// Host CPU model.
    pub host: CpuSpec,
    /// GPU model, when the worker runs the offloaded path.
    pub gpu: Option<GpuSpec>,
    /// Fault plan installed on the (fresh) device of every attempt —
    /// the hook for persistent-fault storms that force CPU degradation.
    pub gpu_fault_plan: Option<FaultPlan>,
    /// Clock time at which this worker silently dies (missed heartbeats
    /// then escalate through the failure detector).
    pub die_at_s: Option<f64>,
}

impl WorkerSpec {
    /// A worker realizing one catalog device: its host CPU, its GPU when
    /// the spec carries one, and the catalog id routed jobs match on.
    pub fn from_device(dev: &gpu_sim::DeviceSpec) -> Self {
        Self {
            device_id: dev.id.clone(),
            host: dev.host.clone(),
            gpu: dev.gpu.clone(),
            gpu_fault_plan: None,
            die_at_s: None,
        }
    }

    /// A CPU-only worker (serial E5-2670 host) — the catalog's
    /// `"cpu-e5-2670"` entry.
    pub fn cpu() -> Self {
        Self::from_device(&DeviceCatalog::get("cpu-e5-2670"))
    }

    /// A GPU worker (E5-2670 host + K20, the paper's node).
    #[deprecated(
        since = "0.1.0",
        note = "use WorkerSpec::from_device(&DeviceCatalog::get(\"k20\"))"
    )]
    pub fn k20_node() -> Self {
        Self::from_device(&DeviceCatalog::get("k20"))
    }

    /// Scripts this worker to die once its clock reaches `t`.
    #[must_use]
    pub fn dying_at(mut self, t: f64) -> Self {
        self.die_at_s = Some(t);
        self
    }

    /// Installs a standing device fault plan on every attempt.
    #[must_use]
    pub fn with_gpu_faults(mut self, plan: FaultPlan) -> Self {
        self.gpu_fault_plan = Some(plan);
        self
    }

    fn idle_watts(&self) -> f64 {
        let host = self.host.power.idle_pkg_w + self.host.power.idle_dram_w;
        host + self.gpu.as_ref().map_or(0.0, |g| g.idle_w)
    }
}

/// One in-flight attempt: a fresh solver whose device clocks started at
/// zero when the worker clock was `offset`.
struct Attempt {
    hydro: Hydro<2>,
    state: HydroState,
    dt: f64,
    steps: usize,
    redos: usize,
    /// Redo count inherited from the checkpoint (excluded from this
    /// attempt's resilience delta).
    redos0: usize,
    /// Worker clock at attempt start.
    offset: f64,
    steps_since_ckpt: usize,
}

struct Running {
    job: usize,
    attempt: Option<Attempt>,
}

struct Worker {
    id: usize,
    spec: WorkerSpec,
    clock: f64,
    alive: bool,
    host_trace: PowerTrace,
    gpu_trace: Option<PowerTrace>,
    current: Option<Running>,
}

struct Job {
    id: JobId,
    spec: JobSpec,
    record: JobRecord,
    store: CheckpointStore,
    policy: RetryPolicy,
    /// Attempts that died to faults so far.
    failures: u32,
    /// Monotone per-job quantum counter feeding the chaos stream.
    quanta: u64,
}

impl Job {
    fn terminal(&self) -> bool {
        self.record.outcome.is_some()
    }
}

/// The fault-tolerant multi-tenant job supervisor.
pub struct Supervisor {
    cfg: ServeConfig,
    workers: Vec<Worker>,
    jobs: Vec<Job>,
    /// Indices of admitted jobs not currently running and not terminal.
    pending: Vec<usize>,
    detector: FailureDetector,
    budgets: BTreeMap<String, f64>,
    telemetry: TelemetrySink,
    resilience: ResilienceReport,
    idle_energy_j: f64,
    rejected: u64,
    workers_lost: u64,
}

impl Supervisor {
    /// Builds a supervisor over the given worker pool.
    pub fn new(cfg: ServeConfig, workers: Vec<WorkerSpec>) -> Self {
        assert!(!workers.is_empty(), "a supervisor needs at least one worker");
        assert!(cfg.quantum_steps >= 1, "quantum must be at least one step");
        assert!(
            cfg.kill_rate + cfg.redo_rate + cfg.sdc_rate <= 1.0,
            "chaos rates must sum to at most 1"
        );
        let n = workers.len();
        let workers = workers
            .into_iter()
            .enumerate()
            .map(|(id, spec)| {
                let host_idle = spec.host.power.idle_pkg_w + spec.host.power.idle_dram_w;
                let gpu_trace = spec.gpu.as_ref().map(|g| PowerTrace::new(g.idle_w));
                Worker {
                    id,
                    spec,
                    clock: 0.0,
                    alive: true,
                    host_trace: PowerTrace::new(host_idle),
                    gpu_trace,
                    current: None,
                }
            })
            .collect();
        let detector = FailureDetector::new(n, cfg.worker_death_threshold);
        Self {
            cfg,
            workers,
            jobs: Vec::new(),
            pending: Vec::new(),
            detector,
            budgets: BTreeMap::new(),
            telemetry: Telemetry::sink(),
            resilience: ResilienceReport::default(),
            idle_energy_j: 0.0,
            rejected: 0,
            workers_lost: 0,
        }
    }

    /// The supervisor's telemetry recorder (SERVE-track instants, job
    /// counters, queue-depth gauge).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Caps `tenant`'s total admitted energy estimates at `joules`;
    /// submissions past the cap bounce with `OverBudget`.
    pub fn set_tenant_budget(&mut self, tenant: impl Into<String>, joules: f64) {
        self.budgets.insert(tenant.into(), joules);
    }

    /// Admission control: bounded queue, per-tenant energy budgets.
    /// Rejected submissions consume nothing.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, AdmissionError> {
        self.telemetry.counter_add(counters::JOBS_SUBMITTED, 1);
        if self.pending.len() >= self.cfg.queue_capacity {
            self.rejected += 1;
            self.telemetry.counter_add(counters::JOBS_REJECTED, 1);
            return Err(AdmissionError::QueueFull { capacity: self.cfg.queue_capacity });
        }
        if let Some(&budget_j) = self.budgets.get(&spec.tenant) {
            let committed_j: f64 = self
                .jobs
                .iter()
                .filter(|j| j.spec.tenant == spec.tenant)
                .map(|j| j.spec.energy_est_j)
                .sum();
            if committed_j + spec.energy_est_j > budget_j {
                self.rejected += 1;
                self.telemetry.counter_add(counters::JOBS_REJECTED, 1);
                return Err(AdmissionError::OverBudget {
                    tenant: spec.tenant.clone(),
                    budget_j,
                    committed_j,
                    requested_j: spec.energy_est_j,
                });
            }
        }
        let id = JobId(self.jobs.len() as u64);
        let record = JobRecord::new(id, &spec);
        let mut policy = self.cfg.retry;
        if policy.jitter > 0.0 {
            let mix = self.cfg.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id.0 + 1);
            policy = policy.with_jitter(policy.jitter, mix);
        }
        self.telemetry.instant(Track::Serve, phases::JOB_ADMITTED, spec.arrival_s);
        self.jobs.push(Job {
            id,
            spec,
            record,
            store: CheckpointStore::in_memory(),
            policy,
            failures: 0,
            quanta: 0,
        });
        self.pending.push(self.jobs.len() - 1);
        self.telemetry.gauge_set(gauges::SERVE_QUEUE_DEPTH, self.pending.len() as f64);
        Ok(id)
    }

    /// Routes `spec` through the energy-aware router and submits it with
    /// the resulting placement pinned: the job will only run on workers
    /// advertising the routed catalog device, under the routed mode.
    /// Admission control is unchanged; a rejected submission consumes
    /// nothing (the routing decision is returned either way, inside the
    /// error-free arm or discarded by the caller on rejection).
    pub fn submit_routed(
        &mut self,
        router: &mut crate::routing::Router,
        mut spec: JobSpec,
    ) -> Result<(JobId, crate::routing::RoutingDecision), AdmissionError> {
        let decision = router.route(&spec).map_err(|e| AdmissionError::Unroutable {
            scenario: spec.scenario.name(),
            error: e.to_string(),
        })?;
        spec.placement = Some(decision.placement.clone());
        self.telemetry.counter_add(counters::JOBS_ROUTED, 1);
        if decision.slo_forced {
            self.telemetry.counter_add(counters::ROUTE_SLO_FORCED, 1);
        }
        self.telemetry.instant(Track::Serve, phases::JOB_ROUTED, spec.arrival_s);
        let id = self.submit(spec)?;
        Ok((id, decision))
    }

    /// Drives every admitted job to a terminal state and returns the
    /// ledger. Deterministic for a fixed config + submission sequence.
    pub fn run_to_completion(&mut self) -> ServeReport {
        loop {
            self.process_deaths();
            self.cancel_unplaceable();
            if self.jobs.iter().all(Job::terminal) {
                break;
            }
            if !self.workers.iter().any(|w| w.alive) {
                self.cancel_survivorless();
                break;
            }
            if self.try_dispatch() {
                continue;
            }
            // No dispatch possible: run the busy worker furthest behind.
            let busy = self
                .workers
                .iter()
                .filter(|w| w.alive && w.current.is_some())
                .min_by(|a, b| a.clock.total_cmp(&b.clock).then(a.id.cmp(&b.id)))
                .map(|w| w.id);
            if let Some(wid) = busy {
                self.run_quantum(wid);
                continue;
            }
            // Everyone idle: advance a *compatible* worker to the next
            // arrival, billing the wait to the unowned idle bucket. A
            // placed job only ever pulls a worker of its pinned device
            // forward (the unplaceable sweep above guarantees one is
            // alive); without placements this reduces to the legacy
            // earliest-arrival / earliest-worker rule bit for bit.
            let mut pick: Option<(f64, usize)> = None;
            for &j in &self.pending {
                let spec = &self.jobs[j].spec;
                let wid = self
                    .workers
                    .iter()
                    .filter(|w| w.alive && w.current.is_none())
                    .filter(|w| {
                        spec.placement.as_ref().is_none_or(|p| p.device_id == w.spec.device_id)
                    })
                    .min_by(|a, b| a.clock.total_cmp(&b.clock).then(a.id.cmp(&b.id)))
                    .map(|w| w.id);
                if let Some(wid) = wid {
                    let better = pick.is_none_or(|(t, w)| {
                        spec.arrival_s.total_cmp(&t).then(wid.cmp(&w)).is_lt()
                    });
                    if better {
                        pick = Some((spec.arrival_s, wid));
                    }
                }
            }
            let Some((t, wid)) = pick else {
                debug_assert!(false, "non-terminal jobs but nothing runnable");
                break;
            };
            let w = &mut self.workers[wid];
            if t > w.clock {
                self.idle_energy_j += (t - w.clock) * w.spec.idle_watts();
                w.clock = t;
            }
        }
        self.finalize()
    }

    // ------------------------------------------------------------------
    // Scheduling internals
    // ------------------------------------------------------------------

    /// Declares workers whose scripted death time has passed, billing
    /// their in-flight work and re-queueing their jobs (progress since
    /// the last checkpoint is lost; the checkpoint store survives).
    fn process_deaths(&mut self) {
        for wid in 0..self.workers.len() {
            let w = &self.workers[wid];
            if !w.alive || w.spec.die_at_s.is_none_or(|d| w.clock < d) {
                continue;
            }
            // The worker went silent: consecutive missed heartbeats
            // escalate through the shared failure detector.
            while !self.detector.record_miss(wid) {}
            self.workers[wid].alive = false;
            self.workers_lost += 1;
            self.telemetry.counter_add(counters::WORKER_DEATHS, 1);
            self.telemetry.instant(Track::Serve, phases::WORKER_DEAD, self.workers[wid].clock);
            if let Some(running) = self.workers[wid].current.take() {
                if running.attempt.is_some() {
                    self.harvest(wid, running.job, running.attempt);
                }
                self.pending.push(running.job);
                self.telemetry.gauge_set(gauges::SERVE_QUEUE_DEPTH, self.pending.len() as f64);
            }
        }
    }

    /// Cancels pending *placed* jobs whose pinned device has no alive
    /// worker left — no future dispatch could ever serve them, so they
    /// terminate as `WorkerLost` (zero additional energy) instead of
    /// wedging the event loop.
    fn cancel_unplaceable(&mut self) {
        let orphans: Vec<usize> = self
            .pending
            .iter()
            .copied()
            .filter(|&j| {
                self.jobs[j].spec.placement.as_ref().is_some_and(|p| {
                    !self.workers.iter().any(|w| w.alive && w.spec.device_id == p.device_id)
                })
            })
            .collect();
        for j in orphans {
            self.pending.retain(|&x| x != j);
            self.telemetry.gauge_set(gauges::SERVE_QUEUE_DEPTH, self.pending.len() as f64);
            let t = self.wall_now();
            self.finish(j, JobOutcome::Cancelled { reason: CancelReason::WorkerLost }, t);
        }
    }

    /// Cancels every non-terminal job once no worker survives.
    fn cancel_survivorless(&mut self) {
        for idx in 0..self.jobs.len() {
            if !self.jobs[idx].terminal() {
                let t = self.wall_now();
                self.finish(idx, JobOutcome::Cancelled { reason: CancelReason::WorkerLost }, t);
            }
        }
        self.pending.clear();
        self.telemetry.gauge_set(gauges::SERVE_QUEUE_DEPTH, 0.0);
    }

    /// The pending job an idle worker at `clock` should take: arrived,
    /// compatible with the worker's device (a placed job only matches
    /// workers advertising its pinned catalog id), highest priority
    /// first, then FIFO by arrival, then job id.
    fn pick_pending(&self, clock: f64, min_priority: Option<u8>, device: &str) -> Option<usize> {
        self.pending
            .iter()
            .copied()
            .filter(|&j| self.jobs[j].spec.arrival_s <= clock)
            .filter(|&j| {
                self.jobs[j].spec.placement.as_ref().is_none_or(|p| p.device_id == device)
            })
            .filter(|&j| min_priority.is_none_or(|p| self.jobs[j].spec.priority > p))
            .min_by(|&a, &b| {
                let (ja, jb) = (&self.jobs[a], &self.jobs[b]);
                jb.spec
                    .priority
                    .cmp(&ja.spec.priority)
                    .then(ja.spec.arrival_s.total_cmp(&jb.spec.arrival_s))
                    .then(ja.id.cmp(&jb.id))
            })
    }

    /// Tries to start one pending job on an idle worker. Pending jobs
    /// whose deadline already lapsed are cancelled here (zero energy —
    /// they never ran). Returns whether any state changed (a dispatch
    /// *or* a dead-on-arrival cancellation — the caller must re-evaluate
    /// either way).
    fn try_dispatch(&mut self) -> bool {
        let mut changed = false;
        let mut idle: Vec<usize> = self
            .workers
            .iter()
            .filter(|w| w.alive && w.current.is_none())
            .map(|w| w.id)
            .collect();
        idle.sort_by(|&a, &b| {
            self.workers[a]
                .clock
                .total_cmp(&self.workers[b].clock)
                .then(a.cmp(&b))
        });
        for wid in idle {
            loop {
                let clock = self.workers[wid].clock;
                let Some(job_idx) =
                    self.pick_pending(clock, None, &self.workers[wid].spec.device_id)
                else {
                    break;
                };
                self.pending.retain(|&j| j != job_idx);
                self.telemetry.gauge_set(gauges::SERVE_QUEUE_DEPTH, self.pending.len() as f64);
                let spec = &self.jobs[job_idx].spec;
                if spec.deadline_s.is_some_and(|d| clock - spec.arrival_s > d) {
                    // Dead on arrival at this worker: cancel unstarted.
                    self.telemetry.counter_add(counters::DEADLINE_MISSES, 1);
                    self.finish(
                        job_idx,
                        JobOutcome::Cancelled { reason: CancelReason::DeadlineExceeded },
                        clock,
                    );
                    changed = true;
                    continue;
                }
                if self.jobs[job_idx].record.started_s.is_none() {
                    self.jobs[job_idx].record.started_s = Some(clock);
                    self.telemetry.instant(Track::Serve, phases::JOB_STARTED, clock);
                }
                self.workers[wid].current = Some(Running { job: job_idx, attempt: None });
                return true;
            }
        }
        changed
    }

    /// Runs one scheduling quantum on busy worker `wid`: preemption
    /// check, attempt (re)build with chaos injection, up to
    /// `quantum_steps` accepted steps with deadline enforcement.
    fn run_quantum(&mut self, wid: usize) {
        let running = self.workers[wid].current.take().expect("worker is busy");
        let job_idx = running.job;
        let clock = self.workers[wid].clock;

        // Deadline may have lapsed between quanta (e.g. during backoff).
        let spec = &self.jobs[job_idx].spec;
        if spec.deadline_s.is_some_and(|d| clock - spec.arrival_s > d) {
            self.harvest(wid, job_idx, running.attempt);
            self.telemetry.counter_add(counters::DEADLINE_MISSES, 1);
            let t = self.workers[wid].clock;
            self.finish(
                job_idx,
                JobOutcome::Cancelled { reason: CancelReason::DeadlineExceeded },
                t,
            );
            return;
        }

        // Checkpoint-backed preemption: a strictly higher-priority
        // arrival evicts this job at the quantum boundary.
        let cur_priority = self.jobs[job_idx].spec.priority;
        if self
            .pick_pending(clock, Some(cur_priority), &self.workers[wid].spec.device_id)
            .is_some()
        {
            let mut attempt = running.attempt;
            if let Some(a) = attempt.as_mut() {
                if let Err(e) =
                    a.hydro
                        .write_checkpoint(&a.state, a.dt, a.steps, a.redos, &mut self.jobs[job_idx].store)
                {
                    // An unwritable checkpoint is an attempt fault.
                    self.harvest(wid, job_idx, attempt);
                    self.fault_attempt(wid, job_idx, e);
                    self.requeue_if_waiting(wid);
                    return;
                }
            }
            self.harvest(wid, job_idx, attempt);
            self.jobs[job_idx].record.preemptions += 1;
            self.telemetry.counter_add(counters::JOB_PREEMPTIONS, 1);
            self.telemetry.instant(Track::Serve, phases::JOB_PREEMPTED, self.workers[wid].clock);
            self.pending.push(job_idx);
            self.telemetry.gauge_set(gauges::SERVE_QUEUE_DEPTH, self.pending.len() as f64);
            return;
        }

        // (Re)build the attempt: fresh solver, resume from the job's
        // checkpoint store when it is ahead of a fresh initial state.
        let mut attempt = match running.attempt {
            Some(a) => a,
            None => match self.build_attempt(wid, job_idx) {
                Ok(a) => a,
                Err(e) => {
                    self.fault_attempt(wid, job_idx, e);
                    self.requeue_if_waiting(wid);
                    return;
                }
            },
        };

        // Chaos: one draw per (job, quantum) from the seeded stream.
        let job = &mut self.jobs[job_idx];
        if !job.spec.fault_immune {
            let counter = (job.id.0 << 32) | job.quanta;
            job.quanta += 1;
            let u = fault_draw(self.cfg.seed, SERVE_CHAOS_STREAM, counter);
            if u < self.cfg.kill_rate {
                // Lethal burst: one more consecutive recoverable fault
                // than the rollback budget absorbs.
                attempt.hydro.inject_step_faults(MAX_STEP_REDOS + 1);
            } else if u < self.cfg.kill_rate + self.cfg.redo_rate {
                // Survivable burst: absorbed by rollback with dt halving.
                attempt.hydro.inject_step_faults(2);
            } else if u < self.cfg.kill_rate + self.cfg.redo_rate + self.cfg.sdc_rate {
                // Silent-corruption burst: a replayable bit flip lands in
                // the attempt's next step (state array, transfer payload,
                // or device buffer — GEMM-panel flips are exercised by the
                // `sdc_campaign` experiment, where `AbftMode` is pinned).
                // A transient flip is caught by the auditor and healed by
                // the same-dt redo inside the quantum; a persistent one
                // exhausts the redo budget and surfaces a typed
                // `CorruptionDetected`, which the retry ladder absorbs
                // with a fresh (clean) attempt.
                let sub = fault_draw(self.cfg.seed, SERVE_CHAOS_STREAM ^ 0x5DC, counter);
                let site = match (sub * 3.0) as u32 {
                    0 => SdcSite::DeviceBuffer,
                    1 => SdcSite::TransferPayload,
                    _ => SdcSite::HostState,
                };
                let persistent =
                    fault_draw(self.cfg.seed, SERVE_CHAOS_STREAM ^ 0xABF7, counter) < 0.25;
                let at_step = attempt.hydro.sdc_attempts() + 1;
                attempt
                    .hydro
                    .arm_sdc_fault(derive_fault(self.cfg.seed, site, at_step, counter, persistent));
            }
        }

        let (t_final, max_steps, arrival, deadline, ckpt_every) = {
            let s = &self.jobs[job_idx].spec;
            (s.t_final, s.max_steps, s.arrival_s, s.deadline_s, s.checkpoint_every)
        };
        for _ in 0..self.cfg.quantum_steps {
            if attempt.state.t >= t_final - 1e-14 || attempt.steps >= max_steps {
                let steps = attempt.steps;
                let t = attempt.state.t;
                let final_state = attempt.state.clone();
                self.harvest(wid, job_idx, Some(attempt));
                self.jobs[job_idx].record.final_state = Some(final_state);
                let now = self.workers[wid].clock;
                self.finish(job_idx, JobOutcome::Completed { steps, t }, now);
                return;
            }
            let dt = attempt.dt.min(t_final - attempt.state.t);
            match attempt.hydro.try_advance(&mut attempt.state, dt) {
                Ok(adv) => {
                    attempt.redos += adv.redos;
                    attempt.steps += 1;
                    attempt.steps_since_ckpt += 1;
                    attempt.dt = adv.dt_next;
                    if ckpt_every > 0 && attempt.steps_since_ckpt >= ckpt_every {
                        if let Err(e) = attempt.hydro.write_checkpoint(
                            &attempt.state,
                            attempt.dt,
                            attempt.steps,
                            attempt.redos,
                            &mut self.jobs[job_idx].store,
                        ) {
                            self.harvest(wid, job_idx, Some(attempt));
                            self.fault_attempt(wid, job_idx, e);
                            self.requeue_if_waiting(wid);
                            return;
                        }
                        attempt.steps_since_ckpt = 0;
                    }
                    // Deadline enforcement at step granularity: the
                    // consumed energy stays billed.
                    let gpu_now =
                        attempt.hydro.executor().gpu.as_ref().map_or(0.0, |g| g.now());
                    let service = attempt.offset + attempt.hydro.wall_time().max(gpu_now);
                    if deadline.is_some_and(|d| service - arrival > d) {
                        self.harvest(wid, job_idx, Some(attempt));
                        self.telemetry.counter_add(counters::DEADLINE_MISSES, 1);
                        let now = self.workers[wid].clock;
                        self.finish(
                            job_idx,
                            JobOutcome::Cancelled { reason: CancelReason::DeadlineExceeded },
                            now,
                        );
                        return;
                    }
                }
                Err(e) => {
                    self.harvest(wid, job_idx, Some(attempt));
                    self.fault_attempt(wid, job_idx, e);
                    self.requeue_if_waiting(wid);
                    return;
                }
            }
        }

        // Quantum exhausted with the attempt alive: update the worker
        // clock, report a live heartbeat, and park the attempt.
        let gpu_now = attempt.hydro.executor().gpu.as_ref().map_or(0.0, |g| g.now());
        self.workers[wid].clock = attempt.offset + attempt.hydro.wall_time().max(gpu_now);
        self.detector.record_evidence(wid);
        self.workers[wid].current = Some(Running { job: job_idx, attempt: Some(attempt) });
    }

    /// Builds a fresh attempt for `job_idx` on worker `wid`, resuming
    /// from the job's newest valid checkpoint when one exists.
    fn build_attempt(&mut self, wid: usize, job_idx: usize) -> Result<Attempt, HydroError> {
        let w = &self.workers[wid];
        let offset = w.clock;
        // A routed job carries the mode its winning pilot measured; an
        // unplaced job keeps the worker's legacy default (the digest-
        // stable path the serve-chaos CI lanes diff).
        let placed_mode = self.jobs[job_idx].spec.placement.as_ref().map(|p| p.mode.clone());
        let mut exec = match &w.spec.gpu {
            Some(gspec) => {
                let gpu = Arc::new(GpuDevice::new(gspec.clone()));
                if let Some(plan) = &w.spec.gpu_fault_plan {
                    gpu.set_fault_plan(plan.clone());
                }
                // A placed CPU mode on a GPU node still carries the
                // device: it idles for the attempt's duration and the
                // idle joules are billed like any other worker idle time.
                let mode = placed_mode
                    .unwrap_or(ExecMode::Gpu { base: false, gpu_pcg: false, mpi_queues: 1 });
                Executor::new(mode, w.spec.host.clone(), Some(gpu))
            }
            None => {
                Executor::new(placed_mode.unwrap_or(ExecMode::CpuSerial), w.spec.host.clone(), None)
            }
        };
        exec.set_device_id(w.spec.device_id.clone());
        let job = &mut self.jobs[job_idx];
        let spec = &job.spec;
        let mut hydro = spec.scenario.build(spec.zones, spec.order, exec)?;
        if self.cfg.sdc_rate > 0.0 {
            // SDC chaos without an auditor would be silent wrong answers
            // by construction; install the detector on every attempt.
            hydro.set_audit(AuditConfig::default());
        }
        let mut state = hydro.initial_state();
        job.record.attempts += 1;
        let (dt, steps, redos) = match hydro.try_resume(&mut state, &job.store) {
            Some(info) => {
                job.record.restores += 1;
                self.telemetry.instant(Track::Serve, phases::JOB_RESUMED, offset);
                (info.dt, info.steps as usize, info.retries as usize)
            }
            None => (hydro.try_suggest_dt(&state)?, 0, 0),
        };
        Ok(Attempt {
            hydro,
            state,
            dt,
            steps,
            redos,
            redos0: redos,
            offset,
            steps_since_ckpt: 0,
        })
    }

    /// Bills a finished attempt: tenant energy from the attempt's own
    /// device meters (plus straggler idle up to the attempt's wall), the
    /// device traces re-emitted into the worker timeline, resilience
    /// deltas merged, and the worker clock advanced.
    fn harvest(&mut self, wid: usize, job_idx: usize, attempt: Option<Attempt>) {
        let Some(attempt) = attempt else { return };
        let w = &mut self.workers[wid];
        let exec = attempt.hydro.executor();
        let host_now = exec.host.now();
        let gpu_now = exec.gpu.as_ref().map_or(0.0, |g| g.now());
        let wall = host_now.max(gpu_now);
        let host_idle = w.host_trace.idle_watts();
        let mut energy = exec.host.energy_joules() + (wall - host_now) * host_idle;
        let host_trace = exec.host.power_trace();
        for seg in host_trace.segments() {
            w.host_trace.push(seg.start + attempt.offset, seg.duration, seg.watts);
        }
        if let Some(gpu) = exec.gpu.as_ref() {
            energy += gpu.energy_joules() + (wall - gpu_now) * gpu.spec().idle_w;
            let trace = gpu.power_trace();
            let wt = w.gpu_trace.as_mut().expect("gpu worker has a gpu trace");
            for seg in trace.segments() {
                wt.push(seg.start + attempt.offset, seg.duration, seg.watts);
            }
        }
        w.clock = attempt.offset + wall;
        let record = &mut self.jobs[job_idx].record;
        record.energy_j += energy;
        record.wall_s += wall;
        record.steps = attempt.steps;
        record.redos = attempt.redos;
        record.degraded |= exec.is_degraded();
        let rep = exec.resilience_report(attempt.redos - attempt.redos0);
        self.resilience.merge(&rep);
    }

    /// Handles a dead attempt: retry with jittered exponential backoff
    /// (the worker waits in place at idle watts, billed to the tenant),
    /// or a terminal `Failed` once the retry budget is spent.
    fn fault_attempt(&mut self, wid: usize, job_idx: usize, err: HydroError) {
        self.jobs[job_idx].failures += 1;
        let failures = self.jobs[job_idx].failures;
        let policy = self.jobs[job_idx].policy;
        if policy.gives_up_after(failures - 1) {
            let attempts = self.jobs[job_idx].record.attempts;
            let now = self.workers[wid].clock;
            self.workers[wid].current = None;
            self.finish(
                job_idx,
                JobOutcome::Failed { attempts, error: err.to_string() },
                now,
            );
            return;
        }
        let wait = policy.backoff_s(failures - 1);
        let w = &mut self.workers[wid];
        let joules = wait * w.spec.idle_watts();
        self.telemetry.instant(Track::Serve, phases::RETRY_BACKOFF, w.clock);
        w.clock += wait;
        let record = &mut self.jobs[job_idx].record;
        record.backoff_s += wait;
        record.backoff_energy_j += joules;
        record.energy_j += joules;
        record.wall_s += wait;
        self.telemetry.counter_add(counters::JOB_RETRIES, 1);
        // The worker keeps the job; the next quantum rebuilds the
        // attempt from the checkpoint store.
        self.workers[wid].current = Some(Running { job: job_idx, attempt: None });
    }

    /// After `fault_attempt`, drops the worker's claim when the job
    /// actually reached a terminal state (no retry was granted).
    fn requeue_if_waiting(&mut self, wid: usize) {
        if let Some(running) = &self.workers[wid].current {
            if self.jobs[running.job].terminal() {
                self.workers[wid].current = None;
            }
        }
    }

    /// Seals a job's terminal state and emits its telemetry.
    fn finish(&mut self, job_idx: usize, outcome: JobOutcome, now: f64) {
        let (phase, counter) = match &outcome {
            JobOutcome::Completed { .. } => (phases::JOB_COMPLETED, counters::JOBS_COMPLETED),
            JobOutcome::Cancelled { .. } => (phases::JOB_CANCELLED, counters::JOBS_CANCELLED),
            JobOutcome::Failed { .. } => (phases::JOB_FAILED, counters::JOBS_FAILED),
        };
        let record = &mut self.jobs[job_idx].record;
        debug_assert!(record.outcome.is_none(), "job finished twice");
        record.outcome = Some(outcome);
        record.finished_s = Some(now);
        self.telemetry.instant(Track::Serve, phase, now);
        self.telemetry.counter_add(counter, 1);
    }

    fn wall_now(&self) -> f64 {
        self.workers.iter().map(|w| w.clock).fold(0.0, f64::max)
    }

    /// Builds the final ledger: tenant totals, the independent trace
    /// integration, and the aggregated resilience report.
    fn finalize(&mut self) -> ServeReport {
        let mut tenants: BTreeMap<String, f64> = BTreeMap::new();
        for job in &self.jobs {
            *tenants.entry(job.record.tenant.clone()).or_insert(0.0) += job.record.energy_j;
        }
        let mut resilience = self.resilience.clone();
        for (tenant, j) in &tenants {
            resilience.attribute_tenant_energy(tenant, *j);
        }
        let mut devices: BTreeMap<String, f64> = BTreeMap::new();
        for w in &self.workers {
            let joules = w.host_trace.energy(0.0, w.clock)
                + w.gpu_trace.as_ref().map_or(0.0, |t| t.energy(0.0, w.clock));
            *devices.entry(w.spec.device_id.clone()).or_insert(0.0) += joules;
        }
        let trace_energy_j = devices.values().sum();
        ServeReport {
            jobs: self.jobs.iter().map(|j| j.record.clone()).collect(),
            tenant_energy_j: tenants.into_iter().collect(),
            device_energy_j: devices.into_iter().collect(),
            idle_energy_j: self.idle_energy_j,
            trace_energy_j,
            wall_s: self.wall_now(),
            workers_lost: self.workers_lost,
            rejected: self.rejected,
            resilience,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The deprecated `k20_node()` preset must stay bitwise-identical to
    /// the catalog entry it now delegates to.
    #[test]
    #[allow(deprecated)]
    fn k20_node_delegates_to_the_catalog_entry() {
        let old = WorkerSpec::k20_node();
        let new = WorkerSpec::from_device(&DeviceCatalog::get("k20"));
        assert_eq!(old.device_id, new.device_id);
        assert_eq!(old.host, new.host);
        assert_eq!(old.gpu, new.gpu);
        assert!(old.gpu_fault_plan.is_none() && new.gpu_fault_plan.is_none());
        assert!(old.die_at_s.is_none() && new.die_at_s.is_none());
    }

    /// `cpu()` advertises the catalog's CPU-only entry.
    #[test]
    fn cpu_preset_is_the_catalog_cpu_entry() {
        let w = WorkerSpec::cpu();
        assert_eq!(w.device_id, "cpu-e5-2670");
        assert!(w.gpu.is_none());
        assert_eq!(w.host, DeviceCatalog::host("cpu-e5-2670"));
    }
}
