//! Greenup-driven energy-aware routing: which fleet device should run a
//! job, given its latency SLO?
//!
//! The [`Router`] wraps a [`DeviceCatalog`] and answers with pilots: for
//! every device (and every candidate execution mode on it — see
//! [`blast_core::fleet::candidate_modes`]) it advances a few real steps
//! of the job's scenario on a throwaway solver and reads modeled wall
//! clock and joules off the same simulated meters that bill production
//! attempts. Whole-run predictions extrapolate the pilot windows; the
//! router then
//!
//! 1. keeps the candidates whose predicted wall time meets the job's
//!    deadline (all of them when the job has no deadline),
//! 2. places the job on the **cheapest-energy** feasible candidate
//!    (catalog order breaks ties),
//! 3. falls back to the *fastest* candidate when nothing meets the SLO
//!    (flagged `slo_forced` — the SLO, not energy, picked the device),
//! 4. reports the pick's [`Greenup`] against the cheapest CPU-only
//!    candidate, the paper's energy-efficiency figure of merit.
//!
//! Pilots are cached per `(scenario, zones, order)` workload shape, so a
//! stream of similar submissions pays the survey once. Everything runs on
//! spec-derived thread counts and modeled meters, so decisions are
//! bit-deterministic across `BLAST_THREADS` and reruns.

use std::collections::BTreeMap;

use blast_core::fleet::{self, DevicePilot, Prediction, PILOT_STEPS};
use blast_core::{HydroConfig, HydroError, Sedov, TaylorGreen, TriplePoint};
use gpu_sim::{DeviceCatalog, DeviceSpec};
use powermon::{EnergyReport, Greenup};

use crate::job::{JobSpec, Placement, Scenario};

/// Cache key: the workload shape a pilot survey is valid for.
type SurveyKey = (&'static str, [usize; 2], usize);

/// An energy-aware placement engine over a device catalog.
///
/// Stateful only in its pilot cache; routing itself is a pure function of
/// the catalog and the job spec. See the module docs for the policy.
#[derive(Clone, Debug)]
pub struct Router {
    catalog: DeviceCatalog,
    pilot_steps: usize,
    cache: BTreeMap<SurveyKey, Vec<DevicePilot>>,
}

/// Why a job landed where it did: the placement, the winning prediction,
/// every surveyed candidate, and the greenup of the pick.
#[derive(Clone, Debug)]
pub struct RoutingDecision {
    /// The pin to attach to the [`JobSpec`] (device id + execution mode).
    pub placement: Placement,
    /// The winning candidate's whole-run prediction.
    pub predicted: Prediction,
    /// Every surveyed candidate's prediction, catalog order (devices that
    /// cannot fit the problem are absent).
    pub candidates: Vec<Prediction>,
    /// True when no candidate met the deadline and the router fell back
    /// to the fastest one, or when the SLO excluded the cheapest-energy
    /// candidate — either way the SLO, not energy, picked the device.
    pub slo_forced: bool,
    /// Greenup of the pick versus the cheapest CPU-only candidate
    /// (`None` when the catalog has no CPU-only device that fits).
    pub greenup: Option<Greenup>,
}

impl RoutingDecision {
    /// Predicted joules saved versus the cheapest CPU-only candidate,
    /// as a fraction of the CPU-only energy (negative = the pick costs
    /// more). `None` without a CPU-only baseline.
    pub fn energy_saving_fraction(&self) -> Option<f64> {
        self.greenup.map(|g| g.energy_saving_fraction())
    }
}

impl Router {
    /// A router over `catalog`, piloting [`PILOT_STEPS`] marginal steps
    /// per candidate.
    pub fn new(catalog: DeviceCatalog) -> Self {
        Self { catalog, pilot_steps: PILOT_STEPS, cache: BTreeMap::new() }
    }

    /// The catalog this router places onto.
    pub fn catalog(&self) -> &DeviceCatalog {
        &self.catalog
    }

    /// Routes `spec`: surveys the fleet for its workload shape (cached),
    /// extrapolates each candidate to the job's `t_final` / `max_steps`,
    /// and applies the SLO-then-energy policy. Fails only when *no*
    /// device in the catalog can run the problem at all.
    pub fn route(&mut self, spec: &JobSpec) -> Result<RoutingDecision, HydroError> {
        let pilots = self.survey(spec.scenario, spec.zones, spec.order)?;
        let candidates: Vec<Prediction> =
            pilots.iter().map(|p| p.predict(spec.t_final, spec.max_steps)).collect();

        // Index of the strictly-cheapest candidate (first wins ties →
        // catalog order), optionally filtered by a predicate.
        let cheapest = |keep: &dyn Fn(&Prediction) -> bool| -> Option<usize> {
            let mut best: Option<usize> = None;
            for (i, c) in candidates.iter().enumerate() {
                if !keep(c) {
                    continue;
                }
                if best.is_none_or(|b| c.energy_j < candidates[b].energy_j) {
                    best = Some(i);
                }
            }
            best
        };

        let unconstrained = cheapest(&|_| true).expect("survey is never empty");
        let (chosen, slo_forced) = match spec.deadline_s {
            None => (unconstrained, false),
            Some(deadline) => match cheapest(&|c| c.wall_s <= deadline) {
                Some(i) => (i, i != unconstrained),
                None => {
                    // Nothing meets the SLO: least-bad = fastest.
                    let mut fastest = 0;
                    for (i, c) in candidates.iter().enumerate() {
                        if c.wall_s < candidates[fastest].wall_s {
                            fastest = i;
                        }
                    }
                    (fastest, true)
                }
            },
        };

        let pick = &candidates[chosen];
        let greenup = self.cpu_baseline(&candidates).map(|cpu| {
            Greenup::compare(
                EnergyReport::new(cpu.wall_s, cpu.energy_j / cpu.wall_s),
                EnergyReport::new(pick.wall_s, pick.energy_j / pick.wall_s),
            )
        });

        Ok(RoutingDecision {
            placement: Placement {
                device_id: pick.device_id.clone(),
                mode: pick.mode.clone(),
            },
            predicted: pick.clone(),
            candidates: candidates.clone(),
            slo_forced,
            greenup,
        })
    }

    /// The cheapest-energy candidate on a CPU-only catalog device — the
    /// greenup baseline ("CPU only", paper §5).
    fn cpu_baseline<'a>(&self, candidates: &'a [Prediction]) -> Option<&'a Prediction> {
        let mut best: Option<&Prediction> = None;
        for c in candidates {
            let cpu_only =
                self.catalog.lookup(&c.device_id).is_some_and(|d: &DeviceSpec| !d.has_gpu());
            if cpu_only && best.is_none_or(|b| c.energy_j < b.energy_j) {
                best = Some(c);
            }
        }
        best
    }

    /// Pilots every `(device, candidate mode)` pair of the catalog for
    /// one workload shape, memoized. Devices that cannot run the problem
    /// are skipped; errors surface only when nothing survives.
    fn survey(
        &mut self,
        scenario: Scenario,
        zones: [usize; 2],
        order: usize,
    ) -> Result<&[DevicePilot], HydroError> {
        let key: SurveyKey = (scenario.name(), zones, order);
        if !self.cache.contains_key(&key) {
            let config = HydroConfig { order, ..HydroConfig::default() };
            let mut pilots = Vec::new();
            let mut last_err = None;
            for dev in self.catalog.devices() {
                for mode in fleet::candidate_modes(dev) {
                    match pilot_scenario(scenario, zones, &config, dev, mode, self.pilot_steps) {
                        Ok(p) => pilots.push(p),
                        Err(e) => last_err = Some(e),
                    }
                }
            }
            if pilots.is_empty() {
                return Err(
                    last_err.unwrap_or(HydroError::OutOfMemory { required: 0, available: 0 })
                );
            }
            self.cache.insert(key, pilots);
        }
        Ok(&self.cache[&key])
    }
}

/// Dispatches a pilot to the concrete problem type behind a [`Scenario`].
fn pilot_scenario(
    scenario: Scenario,
    zones: [usize; 2],
    config: &HydroConfig,
    dev: &DeviceSpec,
    mode: blast_core::ExecMode,
    pilot_steps: usize,
) -> Result<DevicePilot, HydroError> {
    match scenario {
        Scenario::Sedov => {
            fleet::pilot_device(&Sedov::default(), zones, config, dev, mode, pilot_steps)
        }
        Scenario::TriplePoint => {
            fleet::pilot_device(&TriplePoint::default(), zones, config, dev, mode, pilot_steps)
        }
        Scenario::TaylorGreen => {
            fleet::pilot_device(&TaylorGreen::default(), zones, config, dev, mode, pilot_steps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_core::ExecMode;

    fn fleet3() -> DeviceCatalog {
        DeviceCatalog::standard_subset(&["cpu-e5-2670", "k20", "ampere"])
    }

    #[test]
    fn route_surveys_every_candidate_and_pins_a_catalog_device() {
        let mut router = Router::new(fleet3());
        let spec = JobSpec { zones: [6, 6], t_final: 0.02, ..JobSpec::default() };
        let d = router.route(&spec).expect("fleet can run sedov");
        // 1 CPU candidate + 2 modes on each of the 2 GPUs.
        assert_eq!(d.candidates.len(), 5);
        assert!(router.catalog().lookup(&d.placement.device_id).is_some());
        assert!(!d.slo_forced);
        // The pick is the cheapest-energy candidate overall.
        let min = d.candidates.iter().map(|c| c.energy_j).fold(f64::INFINITY, f64::min);
        assert_eq!(d.predicted.energy_j, min);
        // Greenup vs the CPU-only baseline exists and is self-consistent.
        let g = d.greenup.expect("e5-2670 is a CPU-only baseline");
        assert!((g.greenup - g.powerup * g.speedup).abs() < 1e-12);
    }

    #[test]
    fn routing_decisions_are_deterministic_across_thread_counts() {
        let spec = JobSpec { zones: [6, 6], t_final: 0.02, ..JobSpec::default() };
        let route = || {
            let mut router = Router::new(fleet3());
            router.route(&spec).expect("routable")
        };
        rayon::set_active_threads(1);
        let a = route();
        rayon::set_active_threads(8);
        let b = route();
        rayon::set_active_threads(0);
        assert_eq!(a.placement.device_id, b.placement.device_id);
        assert_eq!(a.placement.mode, b.placement.mode);
        assert_eq!(a.predicted.energy_j.to_bits(), b.predicted.energy_j.to_bits());
        assert_eq!(a.predicted.wall_s.to_bits(), b.predicted.wall_s.to_bits());
    }

    #[test]
    fn an_impossible_slo_forces_the_fastest_candidate() {
        let mut router = Router::new(fleet3());
        let relaxed = JobSpec { zones: [6, 6], t_final: 0.02, ..JobSpec::default() };
        let free = router.route(&relaxed).expect("routable");
        let tight = JobSpec { deadline_s: Some(1e-12), ..relaxed };
        let forced = router.route(&tight).expect("still routable");
        assert!(forced.slo_forced);
        let fastest =
            free.candidates.iter().map(|c| c.wall_s).fold(f64::INFINITY, f64::min);
        assert_eq!(forced.predicted.wall_s, fastest);
    }

    #[test]
    fn a_generous_slo_keeps_the_cheapest_candidate() {
        let mut router = Router::new(fleet3());
        let spec = JobSpec {
            zones: [6, 6],
            t_final: 0.02,
            deadline_s: Some(1e12),
            ..JobSpec::default()
        };
        let d = router.route(&spec).expect("routable");
        assert!(!d.slo_forced);
    }

    #[test]
    fn the_survey_cache_reuses_pilots_per_workload_shape() {
        let mut router = Router::new(fleet3());
        let a = JobSpec { zones: [6, 6], t_final: 0.02, ..JobSpec::default() };
        let b = JobSpec { zones: [6, 6], t_final: 0.04, max_steps: 9, ..a.clone() };
        let da = router.route(&a).expect("routable");
        let db = router.route(&b).expect("routable");
        assert_eq!(router.cache.len(), 1);
        // Same pilots, different extrapolation horizons.
        assert!(db.candidates.iter().all(|c| c.steps <= 9));
        assert_eq!(da.candidates.len(), db.candidates.len());
    }

    #[test]
    fn cpu_only_fleets_route_without_a_gpu_mode() {
        let mut router =
            Router::new(DeviceCatalog::standard_subset(&["cpu-e5-2670", "xeon-phi"]));
        let spec = JobSpec { zones: [4, 4], t_final: 0.02, ..JobSpec::default() };
        let d = router.route(&spec).expect("cpu fleet routes");
        assert!(matches!(
            d.placement.mode,
            ExecMode::CpuParallel { .. } | ExecMode::CpuSerial
        ));
        assert!(d.greenup.is_some());
    }
}
