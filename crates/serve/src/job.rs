//! Job-facing types: what a tenant submits ([`JobSpec`]), the handle it
//! gets back ([`JobId`]), and the per-job ledger row the supervisor
//! maintains ([`JobRecord`]).

use blast_core::state::HydroState;
use blast_core::{ExecMode, Executor, Hydro, HydroError, Sedov, TaylorGreen, TriplePoint};

/// Opaque handle of an admitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// The scenarios a tenant can submit (the repo's three 2D problems).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// Sedov point blast.
    Sedov,
    /// Three-material triple-point shock interaction.
    TriplePoint,
    /// Taylor-Green vortex (smooth flow).
    TaylorGreen,
}

impl Scenario {
    /// Scenario name for ledgers and logs.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Sedov => "sedov",
            Scenario::TriplePoint => "triple_point",
            Scenario::TaylorGreen => "taylor_green",
        }
    }

    /// Builds a solver for this scenario on the given executor.
    pub fn build(
        self,
        zones: [usize; 2],
        order: usize,
        exec: Executor,
    ) -> Result<Hydro<2>, HydroError> {
        match self {
            Scenario::Sedov => {
                Hydro::<2>::builder(&Sedov::default(), zones).order(order).executor(exec).build()
            }
            Scenario::TriplePoint => Hydro::<2>::builder(&TriplePoint::default(), zones)
                .order(order)
                .executor(exec)
                .build(),
            Scenario::TaylorGreen => Hydro::<2>::builder(&TaylorGreen::default(), zones)
                .order(order)
                .executor(exec)
                .build(),
        }
    }
}

/// A routing pin: which fleet device a job must run on, and the
/// execution mode the router's winning pilot measured there. Produced by
/// `Router::route` (or built by hand); the scheduler dispatches a placed
/// job only to workers advertising the same catalog device id, and the
/// attempt builder realizes exactly this mode instead of the worker's
/// legacy default.
#[derive(Clone, Debug)]
pub struct Placement {
    /// Catalog device id (`gpu_sim::DeviceCatalog`) the job is pinned to.
    pub device_id: String,
    /// Execution mode the attempt must run under.
    pub mode: ExecMode,
}

/// A scenario submission: what to run, who pays, and the robustness
/// envelope (deadline, priority, checkpoint cadence, admission estimate).
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Billing tenant.
    pub tenant: String,
    /// Which problem to run.
    pub scenario: Scenario,
    /// Mesh zones per axis.
    pub zones: [usize; 2],
    /// Kinematic order.
    pub order: usize,
    /// Simulation time to integrate to.
    pub t_final: f64,
    /// Accepted-step budget.
    pub max_steps: usize,
    /// Scheduling priority (higher preempts lower).
    pub priority: u8,
    /// Service-time arrival of the submission, seconds on the shared
    /// simulated clock.
    pub arrival_s: f64,
    /// Service-time deadline measured from `arrival_s`; a job that is
    /// still running past it is cancelled at step granularity (the
    /// consumed energy stays billed). `None` = no deadline.
    pub deadline_s: Option<f64>,
    /// Checkpoint every `n` accepted steps (0 = only the checkpoints
    /// preemption itself writes).
    pub checkpoint_every: usize,
    /// Admission-time energy estimate charged against the tenant's budget.
    pub energy_est_j: f64,
    /// Exempt from injected chaos (used by bit-identity probe jobs).
    pub fault_immune: bool,
    /// Routing pin: restricts the job to workers of one fleet device and
    /// fixes the attempt's execution mode. `None` (the default) keeps the
    /// legacy any-worker scheduling and per-worker default modes —
    /// unplaced workloads are byte-identical to pre-routing builds.
    pub placement: Option<Placement>,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            tenant: "default".to_string(),
            scenario: Scenario::Sedov,
            zones: [4, 4],
            order: 2,
            t_final: 0.05,
            max_steps: 400,
            priority: 0,
            arrival_s: 0.0,
            deadline_s: None,
            checkpoint_every: 4,
            energy_est_j: 0.0,
            fault_immune: false,
            placement: None,
        }
    }
}

impl JobSpec {
    /// A spec for `tenant` with all other fields at their defaults.
    pub fn for_tenant(tenant: impl Into<String>) -> Self {
        Self { tenant: tenant.into(), ..Self::default() }
    }
}

/// Why a job was cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// The service-time deadline passed (at step granularity, or before
    /// the job ever started).
    DeadlineExceeded,
    /// Every worker died before the job could finish.
    WorkerLost,
}

/// Terminal state of an admitted job. Every admitted job reaches exactly
/// one of these — the storm gate checks there are no limbo jobs.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome {
    /// Reached `t_final` (or its step budget).
    Completed {
        /// Accepted steps taken.
        steps: usize,
        /// Final simulation time.
        t: f64,
    },
    /// Cancelled by the supervisor.
    Cancelled {
        /// Why.
        reason: CancelReason,
    },
    /// Died to faults and exhausted the retry budget.
    Failed {
        /// Total attempts made (1 + retries).
        attempts: u32,
        /// The final typed error, rendered.
        error: String,
    },
}

impl JobOutcome {
    /// Dense tag for digests.
    pub fn tag(&self) -> u8 {
        match self {
            JobOutcome::Completed { .. } => 0,
            JobOutcome::Cancelled { reason: CancelReason::DeadlineExceeded } => 1,
            JobOutcome::Cancelled { reason: CancelReason::WorkerLost } => 2,
            JobOutcome::Failed { .. } => 3,
        }
    }
}

/// One job's ledger row: identity, terminal state, and the billed costs.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Handle.
    pub id: JobId,
    /// Billing tenant.
    pub tenant: String,
    /// Scenario name.
    pub scenario: &'static str,
    /// Terminal state (`None` only while the job is still live).
    pub outcome: Option<JobOutcome>,
    /// Joules billed to the tenant for this job (compute attempts +
    /// retry-backoff idle waits).
    pub energy_j: f64,
    /// Simulated seconds of worker time the job consumed (attempt wall +
    /// backoff waits).
    pub wall_s: f64,
    /// Accepted steps at the end.
    pub steps: usize,
    /// Rollback/CFL redos absorbed inside accepted steps.
    pub redos: usize,
    /// Attempts made (1 + whole-job retries).
    pub attempts: u32,
    /// Checkpoint-backed evictions suffered.
    pub preemptions: u64,
    /// Checkpoint restores performed (resume after preemption, retry, or
    /// worker death).
    pub restores: u64,
    /// Seconds spent in retry backoff (subset of `wall_s`).
    pub backoff_s: f64,
    /// Joules of those backoff waits (subset of `energy_j`).
    pub backoff_energy_j: f64,
    /// Whether any attempt degraded to CPU-only execution.
    pub degraded: bool,
    /// Service time the job first started executing.
    pub started_s: Option<f64>,
    /// Service time the job reached its terminal state.
    pub finished_s: Option<f64>,
    /// Final hydro state of a completed job (bit-identity probes diff
    /// this against an uninterrupted run).
    pub final_state: Option<HydroState>,
}

impl JobRecord {
    pub(crate) fn new(id: JobId, spec: &JobSpec) -> Self {
        Self {
            id,
            tenant: spec.tenant.clone(),
            scenario: spec.scenario.name(),
            outcome: None,
            energy_j: 0.0,
            wall_s: 0.0,
            steps: 0,
            redos: 0,
            attempts: 0,
            preemptions: 0,
            restores: 0,
            backoff_s: 0.0,
            backoff_energy_j: 0.0,
            degraded: false,
            started_s: None,
            finished_s: None,
            final_state: None,
        }
    }

    /// FNV-1a digest over the physics-bearing bits of this row (outcome
    /// tag, counters, final state, energy) — the unit the serve-chaos CI
    /// lane diffs across `BLAST_THREADS`.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&self.id.0.to_le_bytes());
        eat(self.tenant.as_bytes());
        eat(&[self.outcome.as_ref().map(|o| o.tag()).unwrap_or(u8::MAX)]);
        eat(&(self.steps as u64).to_le_bytes());
        eat(&(self.redos as u64).to_le_bytes());
        eat(&self.attempts.to_le_bytes());
        eat(&self.preemptions.to_le_bytes());
        eat(&self.energy_j.to_bits().to_le_bytes());
        eat(&self.wall_s.to_bits().to_le_bytes());
        if let Some(s) = &self.final_state {
            for v in s.v.iter().chain(&s.e).chain(&s.x).chain(std::iter::once(&s.t)) {
                eat(&v.to_bits().to_le_bytes());
            }
        }
        h
    }
}
