//! # blast-serve
//!
//! A fault-tolerant, multi-tenant **job supervisor** over the simulated
//! BLAST stack: many scenario jobs multiplexed onto a shared pool of
//! CPU/GPU workers, with every robustness mechanism the lower layers
//! grew — checkpoint/restart, retry policies, fault injection, failure
//! detection, power tracing — composed into one service-shaped control
//! loop, entirely on the simulated-time axis.
//!
//! The pieces:
//!
//! - **Admission control** ([`Supervisor::submit`]): a bounded queue and
//!   per-tenant energy budgets; rejections are typed
//!   ([`AdmissionError::QueueFull`], [`AdmissionError::OverBudget`]) and
//!   consume nothing.
//! - **Deadlines**: enforced at step granularity; a cancelled job's
//!   partial energy stays billed to its tenant.
//! - **Retry/backoff**: jobs that die to injected faults retry under the
//!   capped, jittered, deterministic [`blast_core::RetryPolicy`]; the
//!   waiting worker idles in place and the wait is billed at idle watts.
//! - **Checkpoint-backed preemption**: a higher-priority arrival evicts
//!   a running job at a quantum boundary through a coordinated
//!   checkpoint; the resumed job's trajectory is bit-identical to an
//!   uninterrupted run (`tests/serve_supervision.rs` gates on it).
//! - **Worker death**: scripted silent deaths escalate through the same
//!   consecutive-miss [`cluster_sim::FailureDetector`] the rank runtime
//!   uses; in-flight jobs lose only the progress since their last
//!   checkpoint.
//! - **Degradation**: a standing device fault plan on a worker forces
//!   its attempts down to the CPU path (flagged per job); with no
//!   workers left, remaining jobs terminate as cancelled, never hang.
//! - **Energy accounting**: every joule is billed exactly once — to a
//!   tenant or to the idle bucket — and reconciled against the
//!   independently integrated per-worker power traces to 1e-9
//!   ([`ServeReport::reconciliation_error`]).
//! - **Energy-aware routing** ([`Supervisor::submit_routed`]): the
//!   greenup-driven [`Router`] pilots the job's scenario on every fleet
//!   device (`gpu_sim::DeviceCatalog`), predicts per-device wall time
//!   and energy off the billing meters themselves, and pins the job to
//!   the cheapest-energy device that meets its latency SLO (fastest
//!   device when none does). Unrouted submissions are byte-identical to
//!   pre-routing builds.
//!
//! Everything is deterministic: scheduling is a single-threaded
//! discrete-event loop with total tie ordering, and chaos comes from
//! counter-based seeded streams, so [`ServeReport::ledger_digest`] is
//! reproducible bit-for-bit from the seed — across reruns and across
//! `BLAST_THREADS` settings (the serve-chaos CI lane diffs it).

pub mod admission;
pub mod job;
pub mod ledger;
pub mod routing;
pub mod supervisor;

pub use admission::AdmissionError;
pub use job::{CancelReason, JobId, JobOutcome, JobRecord, JobSpec, Placement, Scenario};
pub use ledger::ServeReport;
pub use routing::{Router, RoutingDecision};
pub use supervisor::{ServeConfig, Supervisor, WorkerSpec, SERVE_CHAOS_STREAM};
