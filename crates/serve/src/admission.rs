//! Admission control: the typed reasons a submission bounces instead of
//! entering the queue.

/// Why [`Supervisor::submit`](crate::Supervisor::submit) refused a job.
///
/// Rejections are cheap and fully billed to nobody: a bounced job never
/// consumes worker time or energy.
#[derive(Clone, Debug, PartialEq)]
pub enum AdmissionError {
    /// The bounded pending queue is at capacity.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// Admitting the job would push the tenant past its energy budget.
    OverBudget {
        /// The tenant whose budget would be exceeded.
        tenant: String,
        /// The tenant's configured budget in joules.
        budget_j: f64,
        /// Estimates already committed against that budget.
        committed_j: f64,
        /// This submission's estimate.
        requested_j: f64,
    },
    /// The energy-aware router found no fleet device that can run the
    /// job's problem at all (only raised by
    /// [`Supervisor::submit_routed`](crate::Supervisor::submit_routed)).
    Unroutable {
        /// The scenario that could not be placed.
        scenario: &'static str,
        /// The solver error the last pilot died with, rendered.
        error: String,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            AdmissionError::OverBudget { tenant, budget_j, committed_j, requested_j } => write!(
                f,
                "tenant `{tenant}` over energy budget: {committed_j:.3e} J committed \
                 + {requested_j:.3e} J requested > {budget_j:.3e} J budget"
            ),
            AdmissionError::Unroutable { scenario, error } => {
                write!(f, "no fleet device can run scenario `{scenario}`: {error}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let q = AdmissionError::QueueFull { capacity: 4 };
        assert!(q.to_string().contains("capacity 4"));
        let b = AdmissionError::OverBudget {
            tenant: "acme".into(),
            budget_j: 10.0,
            committed_j: 9.0,
            requested_j: 2.0,
        };
        let s = b.to_string();
        assert!(s.contains("acme") && s.contains("budget"));
    }
}
