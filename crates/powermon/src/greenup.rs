//! Greenup / powerup / speedup accounting (§5.3, Table 7).
//!
//! ```text
//! Greenup = CPU_energy / (CPU+GPU)_energy
//!         = (CPU_power / (CPU+GPU)_power) * (CPU_time / (CPU+GPU)_time)
//!         = Powerup * Speedup
//! ```
//!
//! Powerup may be below 1 (the hybrid system draws *more* instantaneous
//! power than the CPU alone) while greenup stays above 1 because the run
//! finishes enough faster — exactly Table 7's finding (Q4-Q3: powerup 0.57,
//! speedup 2.5, greenup 1.42).

/// Energy summary of one run configuration.
#[derive(Clone, Copy, Debug)]
pub struct EnergyReport {
    /// Wall-clock (simulated) time to solution, seconds.
    pub time_s: f64,
    /// Mean total power over the run, watts.
    pub power_w: f64,
}

impl EnergyReport {
    /// Creates a report, validating positivity.
    pub fn new(time_s: f64, power_w: f64) -> Self {
        assert!(time_s > 0.0, "time must be positive");
        assert!(power_w > 0.0, "power must be positive");
        Self { time_s, power_w }
    }

    /// Total energy, joules.
    pub fn energy_j(&self) -> f64 {
        self.time_s * self.power_w
    }
}

/// The Table 7 triple comparing a baseline (CPU-only) to a hybrid run.
#[derive(Clone, Copy, Debug)]
pub struct Greenup {
    /// `CPU_power / (CPU+GPU)_power` — "power efficiency" in Table 7.
    pub powerup: f64,
    /// `CPU_time / (CPU+GPU)_time`.
    pub speedup: f64,
    /// `powerup * speedup` — the energy-efficiency ratio.
    pub greenup: f64,
}

impl Greenup {
    /// Computes the triple from a CPU-only baseline and a hybrid run.
    pub fn compare(cpu_only: EnergyReport, hybrid: EnergyReport) -> Self {
        let powerup = cpu_only.power_w / hybrid.power_w;
        let speedup = cpu_only.time_s / hybrid.time_s;
        Self { powerup, speedup, greenup: powerup * speedup }
    }

    /// Energy saved by the hybrid run as a fraction of the baseline energy
    /// (the paper: "It saved 27% and 42% of energy, respectively").
    pub fn energy_saving_fraction(&self) -> f64 {
        1.0 - 1.0 / self.greenup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_comparison() {
        let r = EnergyReport::new(10.0, 100.0);
        let g = Greenup::compare(r, r);
        assert_eq!(g.powerup, 1.0);
        assert_eq!(g.speedup, 1.0);
        assert_eq!(g.greenup, 1.0);
        assert_eq!(g.energy_saving_fraction(), 0.0);
    }

    #[test]
    fn table7_q2q1_shape() {
        // Table 7 row: powerup 0.67, speedup 1.9 -> greenup 1.27.
        let cpu = EnergyReport::new(1.9, 0.67);
        let hybrid = EnergyReport::new(1.0, 1.0);
        let g = Greenup::compare(cpu, hybrid);
        assert!((g.greenup - 0.67 * 1.9).abs() < 1e-12);
        assert!((g.greenup - 1.273).abs() < 1e-3);
        // "saved 27% of energy" -> 1 - 1/1.273 ~ 0.214? The paper rounds
        // from the energy ratio; check the self-consistent figure instead:
        assert!((g.energy_saving_fraction() - (1.0 - 1.0 / 1.273)).abs() < 1e-3);
    }

    #[test]
    fn table7_q4q3_shape() {
        let g = Greenup {
            powerup: 0.57,
            speedup: 2.5,
            greenup: 0.57 * 2.5,
        };
        assert!((g.greenup - 1.425).abs() < 1e-12);
        // ~30% energy saving at greenup 1.425.
        assert!(g.energy_saving_fraction() > 0.29 && g.energy_saving_fraction() < 0.31);
    }

    #[test]
    fn greenup_above_one_despite_powerup_below_one() {
        // Hybrid draws more power but is fast enough: still green.
        let cpu = EnergyReport::new(10.0, 110.0);
        let hybrid = EnergyReport::new(4.0, 180.0);
        let g = Greenup::compare(cpu, hybrid);
        assert!(g.powerup < 1.0);
        assert!(g.speedup > 1.0);
        assert!(g.greenup > 1.0);
        // Energy check directly.
        assert!(hybrid.energy_j() < cpu.energy_j());
    }

    #[test]
    fn energy_report_energy() {
        let r = EnergyReport::new(3.0, 50.0);
        assert_eq!(r.energy_j(), 150.0);
    }

    #[test]
    #[should_panic(expected = "time must be positive")]
    fn invalid_report_rejected() {
        EnergyReport::new(0.0, 10.0);
    }
}
