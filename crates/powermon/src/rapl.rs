//! RAPL-style CPU power model (Sandy Bridge package / PP0 / DRAM domains).
//!
//! The paper's Fig. 14 measures a dual-socket E5-2670: a fully loaded
//! package draws ~95 W with its DRAM at ~15 W, an idle package slightly
//! under 20 W with DRAM near zero, versus a TDP of 115 W (the observed 82%
//! of TDP "confirms the AMD reports of the normal range of Average CPU
//! Power"). Fig. 16 shows that with the corner force offloaded to the GPU
//! the busy package drops to ~75 W (PP0 ~60 W).
//!
//! The model is state-based: each package is in one of the
//! [`CpuPowerState`]s and reports the corresponding domain levels, with the
//! load-dependent interpolation driven by a utilization in `[0, 1]`.

use crate::trace::PowerTrace;

/// Activity state of one CPU package.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuPowerState {
    /// No work scheduled on this package.
    Idle,
    /// Fully loaded with compute-bound work (all cores busy).
    Busy,
    /// Cores busy but the FLOP-heavy phase is offloaded to the GPU: the CPU
    /// mostly orchestrates, integrates, and waits on transfers (Fig. 16).
    GpuOffload,
}

/// One RAPL sample: the three measurable domains, in watts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RaplReading {
    /// Total package domain.
    pub pkg_watts: f64,
    /// Power plane 0 — the cores.
    pub pp0_watts: f64,
    /// Directly attached DRAM.
    pub dram_watts: f64,
}

/// Per-package power model with the paper's measured levels as defaults.
/// `PartialEq` is field-for-field bitwise equality, which is what the
/// catalog delegation-parity tests assert.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuPowerModel {
    /// Thermal design power (E5-2670: 115 W).
    pub tdp_w: f64,
    /// Fully-loaded package power (paper: 95 W, i.e. ~82% of TDP).
    pub busy_pkg_w: f64,
    /// Idle package power (paper: "slightly lower than 20 W").
    pub idle_pkg_w: f64,
    /// Busy package power when the hot loop runs on the GPU (paper: ~75 W).
    pub offload_pkg_w: f64,
    /// PP0 (cores) share of dynamic package power.
    pub pp0_fraction: f64,
    /// DRAM power when fully loaded (paper: 15 W).
    pub busy_dram_w: f64,
    /// DRAM power when idle (paper: "almost at 0").
    pub idle_dram_w: f64,
}

impl Default for CpuPowerModel {
    fn default() -> Self {
        Self::e5_2670()
    }
}

impl CpuPowerModel {
    /// Intel Xeon E5-2670 (Sandy Bridge) — the paper's single-node CPU.
    pub fn e5_2670() -> Self {
        Self {
            tdp_w: 115.0,
            busy_pkg_w: 95.0,
            idle_pkg_w: 19.0,
            offload_pkg_w: 75.0,
            pp0_fraction: 0.80,
            busy_dram_w: 15.0,
            idle_dram_w: 0.5,
        }
    }

    /// Intel Xeon X5660 (Westmere, 6 cores) — the Fermi-cluster CPU.
    pub fn x5660() -> Self {
        Self {
            tdp_w: 95.0,
            busy_pkg_w: 80.0,
            idle_pkg_w: 17.0,
            offload_pkg_w: 62.0,
            pp0_fraction: 0.78,
            busy_dram_w: 12.0,
            idle_dram_w: 0.5,
        }
    }

    /// AMD Opteron 6274 (Interlagos, 16 cores) — ORNL Titan's CPU.
    pub fn opteron_6274() -> Self {
        Self {
            tdp_w: 115.0,
            busy_pkg_w: 96.0,
            idle_pkg_w: 22.0,
            offload_pkg_w: 78.0,
            pp0_fraction: 0.80,
            busy_dram_w: 18.0,
            idle_dram_w: 0.8,
        }
    }

    /// Ice-Lake-class Xeon (Platinum 8380-like) — the modern host paired
    /// with the FP64-tensor-core GPU in the device catalog. Higher idle
    /// floor than Sandy Bridge (bigger uncore), same ~82% ACP/TDP ratio.
    pub fn xeon_8380() -> Self {
        Self {
            tdp_w: 270.0,
            busy_pkg_w: 220.0,
            idle_pkg_w: 42.0,
            offload_pkg_w: 165.0,
            pp0_fraction: 0.80,
            busy_dram_w: 32.0,
            idle_dram_w: 2.0,
        }
    }

    /// Xeon-Phi-class wide-SIMD coprocessor (Knights-Corner-like, the
    /// arXiv:1709.09713 energy-comparison part). In-order cores never
    /// fully gate, so the idle floor is high relative to the Xeons.
    pub fn xeon_phi_7120() -> Self {
        Self {
            tdp_w: 300.0,
            busy_pkg_w: 245.0,
            idle_pkg_w: 88.0,
            offload_pkg_w: 160.0,
            pp0_fraction: 0.85,
            busy_dram_w: 38.0,
            idle_dram_w: 4.0,
        }
    }

    /// Every named preset with its label — the catalog-wide sanity tests
    /// iterate this instead of hand-listing constructors, so a new preset
    /// cannot dodge the ACP/TDP band by being forgotten here.
    pub fn presets() -> Vec<(&'static str, Self)> {
        vec![
            ("e5_2670", Self::e5_2670()),
            ("x5660", Self::x5660()),
            ("opteron_6274", Self::opteron_6274()),
            ("xeon_8380", Self::xeon_8380()),
            ("xeon_phi_7120", Self::xeon_phi_7120()),
        ]
    }

    /// Package power for a state at full utilization.
    fn pkg_level(&self, state: CpuPowerState) -> f64 {
        match state {
            CpuPowerState::Idle => self.idle_pkg_w,
            CpuPowerState::Busy => self.busy_pkg_w,
            CpuPowerState::GpuOffload => self.offload_pkg_w,
        }
    }

    /// RAPL reading for a package in `state` at fractional `utilization`
    /// (`1.0` = all cores saturated; intermediate values interpolate toward
    /// idle, which is how partially-loaded MPI configurations show up).
    pub fn read(&self, state: CpuPowerState, utilization: f64) -> RaplReading {
        let u = utilization.clamp(0.0, 1.0);
        let pkg = match state {
            CpuPowerState::Idle => self.idle_pkg_w,
            s => self.idle_pkg_w + u * (self.pkg_level(s) - self.idle_pkg_w),
        };
        let dyn_pkg = pkg - self.idle_pkg_w;
        let pp0 = self.pp0_fraction * self.idle_pkg_w + self.pp0_fraction * dyn_pkg
            + (1.0 - self.pp0_fraction) * 0.0;
        let dram = match state {
            CpuPowerState::Idle => self.idle_dram_w,
            CpuPowerState::Busy => self.idle_dram_w + u * (self.busy_dram_w - self.idle_dram_w),
            // Offloaded runs touch DRAM less: the paper attributes most of
            // the 20 W drop between Figs. 14 and 16 to the DRAM domain.
            CpuPowerState::GpuOffload => {
                self.idle_dram_w + 0.5 * u * (self.busy_dram_w - self.idle_dram_w)
            }
        };
        RaplReading { pkg_watts: pkg, pp0_watts: pp0, dram_watts: dram }
    }

    /// Builds a package power trace over a sequence of `(state, utilization,
    /// duration)` phases, starting at t = 0.
    pub fn trace(&self, phases: &[(CpuPowerState, f64, f64)]) -> PowerTrace {
        let mut trace = PowerTrace::new(self.idle_pkg_w + self.idle_dram_w);
        let mut t = 0.0;
        for &(state, util, dur) in phases {
            let r = self.read(state, util);
            trace.push(t, dur, r.pkg_watts + r.dram_watts);
            t += dur;
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_package_matches_paper_fig14() {
        let m = CpuPowerModel::e5_2670();
        let r = m.read(CpuPowerState::Busy, 1.0);
        assert!((r.pkg_watts - 95.0).abs() < 1e-12);
        assert!((r.dram_watts - 15.0).abs() < 1e-12);
        // "Our observation 95 W (82%) ...": busy/TDP ~ 0.82.
        assert!((r.pkg_watts / m.tdp_w - 0.826).abs() < 0.01);
    }

    #[test]
    fn idle_package_under_20w() {
        let m = CpuPowerModel::e5_2670();
        let r = m.read(CpuPowerState::Idle, 0.0);
        assert!(r.pkg_watts < 20.0);
        assert!(r.dram_watts < 1.0);
    }

    #[test]
    fn offload_drops_about_20w_vs_busy() {
        // Fig. 16 vs Fig. 14: "CPU power is reduced by 20 W".
        let m = CpuPowerModel::e5_2670();
        let busy = m.read(CpuPowerState::Busy, 1.0);
        let off = m.read(CpuPowerState::GpuOffload, 1.0);
        let drop = busy.pkg_watts - off.pkg_watts;
        assert!((drop - 20.0).abs() < 1e-12);
        // PP0 around 60 W when offloaded (paper: "PP0 at 60 W").
        assert!((off.pp0_watts - 60.0).abs() < 3.0, "pp0 {}", off.pp0_watts);
    }

    #[test]
    fn utilization_interpolates_monotonically() {
        let m = CpuPowerModel::e5_2670();
        let mut last = 0.0;
        for i in 0..=10 {
            let u = i as f64 / 10.0;
            let r = m.read(CpuPowerState::Busy, u);
            assert!(r.pkg_watts >= last);
            last = r.pkg_watts;
        }
    }

    #[test]
    fn utilization_clamped() {
        let m = CpuPowerModel::e5_2670();
        let r = m.read(CpuPowerState::Busy, 2.5);
        assert_eq!(r.pkg_watts, 95.0);
        let r0 = m.read(CpuPowerState::Busy, -1.0);
        assert_eq!(r0.pkg_watts, m.idle_pkg_w);
    }

    #[test]
    fn trace_energy_matches_hand_computation() {
        let m = CpuPowerModel::e5_2670();
        let tr = m.trace(&[
            (CpuPowerState::Busy, 1.0, 2.0),
            (CpuPowerState::Idle, 0.0, 1.0),
        ]);
        let busy = m.read(CpuPowerState::Busy, 1.0);
        let idle = m.read(CpuPowerState::Idle, 0.0);
        let expect =
            2.0 * (busy.pkg_watts + busy.dram_watts) + 1.0 * (idle.pkg_watts + idle.dram_watts);
        assert!((tr.energy(0.0, 3.0) - expect).abs() < 1e-9);
    }

    #[test]
    fn all_presets_sane() {
        let presets = CpuPowerModel::presets();
        assert!(presets.len() >= 5, "preset registry lost entries");
        for (name, m) in presets {
            assert!(m.busy_pkg_w < m.tdp_w, "{name}: ACP below TDP");
            assert!(m.idle_pkg_w < m.offload_pkg_w, "{name}: idle < offload");
            assert!(m.offload_pkg_w < m.busy_pkg_w, "{name}: offload < busy");
            // ACP in AMD's reported "normal range" of 65-90% of TDP.
            let frac = m.busy_pkg_w / m.tdp_w;
            assert!(frac > 0.65 && frac < 0.9, "{name}: {frac}");
            assert!(m.idle_dram_w < m.busy_dram_w, "{name}: DRAM idle < busy");
            assert!(m.pp0_fraction > 0.0 && m.pp0_fraction <= 1.0, "{name}");
        }
    }
}
