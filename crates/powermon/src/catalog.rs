//! Hardware catalog for Fig. 1: double-precision GFLOPS per watt of NVIDIA
//! GPUs versus Intel CPUs, using theoretical peak FLOPS and TDP — exactly
//! the paper's methodology ("we use the theoretical peak performance as the
//! FLOPS and TDP as watts").
//!
//! Entries cover the 2008-2013 generations surrounding the paper.

/// Processor vendor class for the Fig. 1 series split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vendor {
    /// NVIDIA GPUs.
    NvidiaGpu,
    /// Intel server CPUs.
    IntelCpu,
}

/// One catalog entry.
#[derive(Clone, Debug)]
pub struct Part {
    /// Marketing name.
    pub name: &'static str,
    /// Vendor class.
    pub vendor: Vendor,
    /// Release year.
    pub year: u32,
    /// Theoretical peak double-precision GFLOP/s.
    pub peak_gflops_dp: f64,
    /// Thermal design power, watts.
    pub tdp_w: f64,
}

impl Part {
    /// GFLOPS per watt in double precision — Fig. 1's y-axis.
    pub fn gflops_per_watt(&self) -> f64 {
        self.peak_gflops_dp / self.tdp_w
    }
}

/// The catalog behind Fig. 1.
pub fn catalog() -> Vec<Part> {
    use Vendor::*;
    vec![
        // NVIDIA Tesla line (DP peak, board TDP).
        Part { name: "Tesla C1060", vendor: NvidiaGpu, year: 2008, peak_gflops_dp: 78.0, tdp_w: 188.0 },
        Part { name: "Tesla C2050", vendor: NvidiaGpu, year: 2010, peak_gflops_dp: 515.0, tdp_w: 238.0 },
        Part { name: "Tesla M2090", vendor: NvidiaGpu, year: 2011, peak_gflops_dp: 665.0, tdp_w: 225.0 },
        Part { name: "Tesla K10", vendor: NvidiaGpu, year: 2012, peak_gflops_dp: 190.0, tdp_w: 225.0 },
        Part { name: "Tesla K20", vendor: NvidiaGpu, year: 2012, peak_gflops_dp: 1170.0, tdp_w: 225.0 },
        Part { name: "Tesla K20X", vendor: NvidiaGpu, year: 2013, peak_gflops_dp: 1310.0, tdp_w: 235.0 },
        // Intel Xeon line.
        Part { name: "Xeon X5482 (Harpertown)", vendor: IntelCpu, year: 2008, peak_gflops_dp: 51.2, tdp_w: 150.0 },
        Part { name: "Xeon X5570 (Nehalem)", vendor: IntelCpu, year: 2009, peak_gflops_dp: 46.9, tdp_w: 95.0 },
        Part { name: "Xeon X5660 (Westmere)", vendor: IntelCpu, year: 2010, peak_gflops_dp: 67.2, tdp_w: 95.0 },
        Part { name: "Xeon E5-2670 (Sandy Bridge)", vendor: IntelCpu, year: 2012, peak_gflops_dp: 166.4, tdp_w: 115.0 },
        Part { name: "Xeon E5-2697v2 (Ivy Bridge)", vendor: IntelCpu, year: 2013, peak_gflops_dp: 216.0, tdp_w: 130.0 },
    ]
}

/// The Fig. 1 series: `(year, gflops/W)` points per vendor, year-sorted.
pub fn fig1_series(vendor: Vendor) -> Vec<(u32, f64)> {
    let mut pts: Vec<(u32, f64)> = catalog()
        .iter()
        .filter(|p| p.vendor == vendor)
        .map(|p| (p.year, p.gflops_per_watt()))
        .collect();
    pts.sort_by_key(|&(y, _)| y);
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20_beats_3_gflops_per_watt() {
        // Green500 context in §1: "the most efficient systems powered by K20
        // surpassed 3 GFLOPS per watt" — the bare part exceeds that too.
        let cat = catalog();
        let k20 = cat.iter().find(|p| p.name == "Tesla K20").unwrap();
        assert!(k20.gflops_per_watt() > 3.0);
    }

    #[test]
    fn gpus_dominate_cpus_per_generation_after_fermi() {
        // Fig. 1's message: from Fermi on, GPU DP GFLOPS/W exceeds
        // contemporary CPUs by a wide margin.
        let gpus = fig1_series(Vendor::NvidiaGpu);
        let cpus = fig1_series(Vendor::IntelCpu);
        let best_cpu = cpus.iter().map(|&(_, v)| v).fold(0.0, f64::max);
        // 2012 has two GPU entries (K10, K20); take the flagship DP part.
        let k20 = gpus
            .iter()
            .filter(|&&(y, _)| y == 2012)
            .map(|&(_, v)| v)
            .fold(0.0, f64::max);
        assert!(k20 > 2.0 * best_cpu, "K20 {k20} vs best CPU {best_cpu}");
    }

    #[test]
    fn series_are_year_sorted_and_nonempty() {
        for v in [Vendor::NvidiaGpu, Vendor::IntelCpu] {
            let s = fig1_series(v);
            assert!(s.len() >= 4);
            for w in s.windows(2) {
                assert!(w[0].0 <= w[1].0);
            }
        }
    }

    #[test]
    fn cpu_trend_is_upward_overall() {
        let s = fig1_series(Vendor::IntelCpu);
        assert!(s.last().unwrap().1 > s.first().unwrap().1);
    }

    #[test]
    fn k10_is_the_dp_outlier() {
        // K10 is a single-precision part; its DP GFLOPS/W sits far below
        // K20 — worth keeping in the catalog since the paper ran on K10
        // clusters with CUDA+OpenMP.
        let cat = catalog();
        let k10 = cat.iter().find(|p| p.name == "Tesla K10").unwrap();
        let k20 = cat.iter().find(|p| p.name == "Tesla K20").unwrap();
        assert!(k20.gflops_per_watt() > 5.0 * k10.gflops_per_watt());
    }
}
