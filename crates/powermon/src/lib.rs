//! # powermon
//!
//! Power and energy instrumentation for the BLAST reproduction.
//!
//! The paper measures CPU power with Intel RAPL (package / PP0 / DRAM
//! domains, §5.1) and GPU board power with NVML (§5.2), then derives the
//! *greenup* — energy efficiency relative to the CPU-only run — as
//! `greenup = powerup x speedup` (§5.3).
//!
//! Real RAPL/NVML need the corresponding silicon; this crate provides the
//! same interfaces backed by *models*:
//!
//! - [`trace::PowerTrace`]: a (time, watts) step function that any simulated
//!   device appends to; energy is its exact integral. NVML-style sampling
//!   ([`trace::PowerTrace::sample`]) reads instantaneous power with the
//!   millisecond-granularity semantics the paper relies on ("our CUDA
//!   kernels time is around several to tens milliseconds ... so the
//!   computation will not be missed by NVML").
//! - [`rapl`]: a Sandy Bridge package/PP0/DRAM power model with the levels
//!   the paper reports in Figs. 14 and 16.
//! - [`greenup`]: speedup/powerup/greenup accounting reproducing Table 7.
//! - [`catalog`]: the GFLOPS-per-watt hardware catalog behind Fig. 1.

pub mod catalog;
pub mod greenup;
pub mod rapl;
pub mod resilience;
pub mod trace;

pub use greenup::{EnergyReport, Greenup};
pub use rapl::{CpuPowerModel, CpuPowerState, RaplReading};
pub use resilience::ResilienceReport;
pub use trace::{EnergyCounter, PowerTrace};
