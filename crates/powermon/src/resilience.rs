//! Resilience accounting: what the fault-injection run cost.
//!
//! Recovery is not free — every retried device operation burns backoff
//! time at idle power (the device sits in the gap while the retry policy
//! waits), and a degraded run pays CPU-path energy for work the GPU was
//! supposed to do. This module aggregates those costs next to the fault
//! counters so an experiment can report "N faults, M recovered, X joules
//! of recovery overhead" in one place.

/// Aggregated fault/recovery counters of one run, with the energy cost of
/// the recovery machinery.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResilienceReport {
    /// Fault events injected into device operations.
    pub faults_injected: u64,
    /// Retries the retry policy issued.
    pub retries: u64,
    /// Operations that ultimately succeeded after at least one retry.
    pub recovered: u64,
    /// Operations that exhausted the retry budget (each of these either
    /// aborted the run or triggered CPU degradation).
    pub exhausted: u64,
    /// Steps the solver rolled back and redid (CFL overshoot or a
    /// recoverable numerical failure).
    pub steps_redone: usize,
    /// Total simulated seconds spent in retry backoff.
    pub backoff_s: f64,
    /// Energy burned during backoff, J (the device idles through the
    /// gaps, so this is `backoff_s x idle watts`).
    pub backoff_energy_j: f64,
    /// Coordinated checkpoints written.
    pub checkpoints_written: u64,
    /// Total checkpoint image bytes serialized (drives DRAM-write billing).
    pub checkpoint_bytes: u64,
    /// Restores performed (process restart or rank-death recovery).
    pub restores: u64,
    /// Peer ranks this rank saw declared permanently dead.
    pub rank_deaths: u64,
    /// Device faults injected *during rollback redo attempts* — previously
    /// a blind spot of the retry totals (PR 2's recovery-ladder fix).
    pub redo_faults: u64,
    /// Simulated seconds spent on checkpoint writes, restores, and
    /// recovery quiesce barriers.
    pub resilience_s: f64,
    /// Energy of those checkpoint/restore/quiesce phases, J (host DRAM
    /// traffic plus device idle watts during the quiesce).
    pub resilience_energy_j: f64,
    /// Physics-invariant audits executed after accepted steps (the
    /// silent-data-corruption detector's cadence actually realized).
    pub audits_run: u64,
    /// Silent corruption events detected (audit trips + ABFT checksum
    /// violations), each answered by a rollback redo or a typed error.
    pub corruptions_detected: u64,
    /// Silent bit flips the active `SdcPlan` actually landed.
    pub sdc_flips_injected: u64,
    /// Simulated seconds spent running audits (invariant checks plus the
    /// ABFT checksum arithmetic).
    pub audit_s: f64,
    /// Energy of the audit work, J — the "what does detection cost"
    /// number the sdc_campaign gate bounds at 10% of the run.
    pub audit_energy_j: f64,
    /// Whether a persistent fault forced execution onto the CPU.
    pub degraded_to_cpu: bool,
    /// Why, when it did.
    pub degraded_reason: Option<String>,
    /// Per-tenant energy attribution, `(tenant, joules)` sorted by tenant
    /// name. Empty for single-run reports; the job supervisor
    /// (`blast-serve`) rolls each tenant's compute + backoff energy in
    /// here so one report carries both the fault ledger and who paid for
    /// it.
    pub tenant_energy_j: Vec<(String, f64)>,
}

impl ResilienceReport {
    /// Fraction of injected faults that the retry policy absorbed without
    /// escalating (1.0 when nothing was injected).
    pub fn recovery_rate(&self) -> f64 {
        if self.faults_injected == 0 {
            return 1.0;
        }
        // Each exhausted op consumed (retries + 1) injections; everything
        // else was absorbed.
        let escalated = self.exhausted;
        let total_ops = self.recovered + escalated;
        if total_ops == 0 {
            return 1.0;
        }
        self.recovered as f64 / total_ops as f64
    }

    /// Joules spent on resilience machinery in total: retry backoff plus
    /// checkpoint writes, restores, recovery quiesce, and SDC audits.
    pub fn total_resilience_energy_j(&self) -> f64 {
        self.backoff_energy_j + self.resilience_energy_j + self.audit_energy_j
    }

    /// Resilience overhead as a percentage of `total_energy_j` (the run's
    /// whole energy bill) — the number `bench` reports alongside greenup.
    pub fn overhead_pct(&self, total_energy_j: f64) -> f64 {
        if total_energy_j <= 0.0 {
            return 0.0;
        }
        100.0 * self.total_resilience_energy_j() / total_energy_j
    }

    /// Folds another report into this one: counters and times add, the
    /// degraded flag ORs (keeping the first reason), and per-tenant energy
    /// merges by tenant name. The job supervisor aggregates one report per
    /// job attempt into a service-wide report this way.
    pub fn merge(&mut self, other: &ResilienceReport) {
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.recovered += other.recovered;
        self.exhausted += other.exhausted;
        self.steps_redone += other.steps_redone;
        self.backoff_s += other.backoff_s;
        self.backoff_energy_j += other.backoff_energy_j;
        self.checkpoints_written += other.checkpoints_written;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.restores += other.restores;
        self.rank_deaths += other.rank_deaths;
        self.redo_faults += other.redo_faults;
        self.resilience_s += other.resilience_s;
        self.resilience_energy_j += other.resilience_energy_j;
        self.audits_run += other.audits_run;
        self.corruptions_detected += other.corruptions_detected;
        self.sdc_flips_injected += other.sdc_flips_injected;
        self.audit_s += other.audit_s;
        self.audit_energy_j += other.audit_energy_j;
        if other.degraded_to_cpu && !self.degraded_to_cpu {
            self.degraded_to_cpu = true;
            self.degraded_reason = other.degraded_reason.clone();
        }
        for (tenant, j) in &other.tenant_energy_j {
            self.attribute_tenant_energy(tenant, *j);
        }
    }

    /// Adds `joules` to `tenant`'s attribution line (inserted sorted).
    pub fn attribute_tenant_energy(&mut self, tenant: &str, joules: f64) {
        match self.tenant_energy_j.binary_search_by(|(t, _)| t.as_str().cmp(tenant)) {
            Ok(i) => self.tenant_energy_j[i].1 += joules,
            Err(i) => self.tenant_energy_j.insert(i, (tenant.to_string(), joules)),
        }
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("Faults injected      : {}\n", self.faults_injected));
        s.push_str(&format!("Retries issued       : {}\n", self.retries));
        s.push_str(&format!("Ops recovered        : {}\n", self.recovered));
        s.push_str(&format!("Retry budget spent   : {}\n", self.exhausted));
        s.push_str(&format!("Steps redone         : {}\n", self.steps_redone));
        s.push_str(&format!("Redo-path faults     : {}\n", self.redo_faults));
        s.push_str(&format!(
            "Checkpoints written  : {} ({} B)\n",
            self.checkpoints_written, self.checkpoint_bytes
        ));
        s.push_str(&format!("Restores             : {}\n", self.restores));
        s.push_str(&format!("Rank deaths observed : {}\n", self.rank_deaths));
        s.push_str(&format!(
            "Backoff time / energy: {:.3e} s / {:.3e} J\n",
            self.backoff_s, self.backoff_energy_j
        ));
        s.push_str(&format!(
            "Ckpt+restore energy  : {:.3e} s / {:.3e} J\n",
            self.resilience_s, self.resilience_energy_j
        ));
        s.push_str(&format!("SDC flips landed     : {}\n", self.sdc_flips_injected));
        s.push_str(&format!("SDC audits run       : {}\n", self.audits_run));
        s.push_str(&format!("Corruption detected  : {}\n", self.corruptions_detected));
        s.push_str(&format!(
            "Audit time / energy  : {:.3e} s / {:.3e} J\n",
            self.audit_s, self.audit_energy_j
        ));
        match (&self.degraded_to_cpu, &self.degraded_reason) {
            (true, Some(r)) => s.push_str(&format!("Degraded to CPU      : yes ({r})\n")),
            (true, None) => s.push_str("Degraded to CPU      : yes\n"),
            _ => s.push_str("Degraded to CPU      : no\n"),
        }
        for (tenant, j) in &self.tenant_energy_j {
            s.push_str(&format!("Tenant energy        : {tenant} = {j:.6e} J\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_rate_handles_edges() {
        assert_eq!(ResilienceReport::default().recovery_rate(), 1.0);
        let r = ResilienceReport {
            faults_injected: 5,
            retries: 4,
            recovered: 3,
            exhausted: 1,
            ..Default::default()
        };
        assert!((r.recovery_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters_and_attributes_tenants() {
        let mut a = ResilienceReport {
            faults_injected: 2,
            retries: 1,
            restores: 1,
            backoff_s: 0.5,
            ..Default::default()
        };
        a.attribute_tenant_energy("acme", 3.0);
        let mut b = ResilienceReport {
            faults_injected: 3,
            checkpoints_written: 4,
            degraded_to_cpu: true,
            degraded_reason: Some("ECC".into()),
            ..Default::default()
        };
        b.attribute_tenant_energy("acme", 1.0);
        b.attribute_tenant_energy("zeta", 2.0);
        a.merge(&b);
        assert_eq!(a.faults_injected, 5);
        assert_eq!(a.retries, 1);
        assert_eq!(a.checkpoints_written, 4);
        assert_eq!(a.restores, 1);
        assert!(a.degraded_to_cpu);
        assert_eq!(a.degraded_reason.as_deref(), Some("ECC"));
        assert_eq!(
            a.tenant_energy_j,
            vec![("acme".to_string(), 4.0), ("zeta".to_string(), 2.0)],
            "merged sorted by tenant"
        );
        assert!(a.summary().contains("Tenant energy        : acme"));
    }

    #[test]
    fn overhead_pct_is_a_share_of_the_total() {
        let r = ResilienceReport {
            backoff_energy_j: 2.0,
            resilience_energy_j: 3.0,
            ..Default::default()
        };
        assert_eq!(r.total_resilience_energy_j(), 5.0);
        assert!((r.overhead_pct(100.0) - 5.0).abs() < 1e-12);
        assert_eq!(r.overhead_pct(0.0), 0.0, "degenerate total");
    }

    #[test]
    fn summary_includes_checkpoint_counters() {
        let r = ResilienceReport {
            checkpoints_written: 4,
            checkpoint_bytes: 4096,
            restores: 2,
            rank_deaths: 1,
            redo_faults: 3,
            ..Default::default()
        };
        let s = r.summary();
        assert!(s.contains("Checkpoints written  : 4 (4096 B)"));
        assert!(s.contains("Restores             : 2"));
        assert!(s.contains("Rank deaths observed : 1"));
        assert!(s.contains("Redo-path faults     : 3"));
    }

    #[test]
    fn summary_mentions_degradation() {
        let r = ResilienceReport {
            degraded_to_cpu: true,
            degraded_reason: Some("kernel launch failed".into()),
            ..Default::default()
        };
        assert!(r.summary().contains("yes (kernel launch failed)"));
        let clean = ResilienceReport::default();
        assert!(clean.summary().contains("Degraded to CPU      : no"));
    }
}
