//! Resilience accounting: what the fault-injection run cost.
//!
//! Recovery is not free — every retried device operation burns backoff
//! time at idle power (the device sits in the gap while the retry policy
//! waits), and a degraded run pays CPU-path energy for work the GPU was
//! supposed to do. This module aggregates those costs next to the fault
//! counters so an experiment can report "N faults, M recovered, X joules
//! of recovery overhead" in one place.

/// Aggregated fault/recovery counters of one run, with the energy cost of
/// the recovery machinery.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResilienceReport {
    /// Fault events injected into device operations.
    pub faults_injected: u64,
    /// Retries the retry policy issued.
    pub retries: u64,
    /// Operations that ultimately succeeded after at least one retry.
    pub recovered: u64,
    /// Operations that exhausted the retry budget (each of these either
    /// aborted the run or triggered CPU degradation).
    pub exhausted: u64,
    /// Steps the solver rolled back and redid (CFL overshoot or a
    /// recoverable numerical failure).
    pub steps_redone: usize,
    /// Total simulated seconds spent in retry backoff.
    pub backoff_s: f64,
    /// Energy burned during backoff, J (the device idles through the
    /// gaps, so this is `backoff_s x idle watts`).
    pub backoff_energy_j: f64,
    /// Whether a persistent fault forced execution onto the CPU.
    pub degraded_to_cpu: bool,
    /// Why, when it did.
    pub degraded_reason: Option<String>,
}

impl ResilienceReport {
    /// Fraction of injected faults that the retry policy absorbed without
    /// escalating (1.0 when nothing was injected).
    pub fn recovery_rate(&self) -> f64 {
        if self.faults_injected == 0 {
            return 1.0;
        }
        // Each exhausted op consumed (retries + 1) injections; everything
        // else was absorbed.
        let escalated = self.exhausted;
        let total_ops = self.recovered + escalated;
        if total_ops == 0 {
            return 1.0;
        }
        self.recovered as f64 / total_ops as f64
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("Faults injected      : {}\n", self.faults_injected));
        s.push_str(&format!("Retries issued       : {}\n", self.retries));
        s.push_str(&format!("Ops recovered        : {}\n", self.recovered));
        s.push_str(&format!("Retry budget spent   : {}\n", self.exhausted));
        s.push_str(&format!("Steps redone         : {}\n", self.steps_redone));
        s.push_str(&format!(
            "Backoff time / energy: {:.3e} s / {:.3e} J\n",
            self.backoff_s, self.backoff_energy_j
        ));
        match (&self.degraded_to_cpu, &self.degraded_reason) {
            (true, Some(r)) => s.push_str(&format!("Degraded to CPU      : yes ({r})\n")),
            (true, None) => s.push_str("Degraded to CPU      : yes\n"),
            _ => s.push_str("Degraded to CPU      : no\n"),
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_rate_handles_edges() {
        assert_eq!(ResilienceReport::default().recovery_rate(), 1.0);
        let r = ResilienceReport {
            faults_injected: 5,
            retries: 4,
            recovered: 3,
            exhausted: 1,
            ..Default::default()
        };
        assert!((r.recovery_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_degradation() {
        let r = ResilienceReport {
            degraded_to_cpu: true,
            degraded_reason: Some("kernel launch failed".into()),
            ..Default::default()
        };
        assert!(r.summary().contains("yes (kernel launch failed)"));
        let clean = ResilienceReport::default();
        assert!(clean.summary().contains("Degraded to CPU      : no"));
    }
}
