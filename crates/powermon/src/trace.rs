//! Power traces and energy counters.
//!
//! A [`PowerTrace`] is a right-continuous step function of instantaneous
//! power over *simulated* time. Devices append one segment per activity
//! (kernel launch, memory transfer, idle gap); the energy of an interval is
//! the exact integral — the model-world analog of RAPL's energy MSRs and
//! NVML's sampled board power.

/// One constant-power segment of a trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Segment start time, seconds.
    pub start: f64,
    /// Segment duration, seconds (>= 0).
    pub duration: f64,
    /// Power during the segment, watts.
    pub watts: f64,
}

/// A step-function power trace over simulated time.
///
/// Segments are appended in nondecreasing time order; gaps between segments
/// are billed at `idle_watts`.
#[derive(Clone, Debug)]
pub struct PowerTrace {
    idle_watts: f64,
    segments: Vec<Segment>,
}

impl PowerTrace {
    /// New trace with the given idle (baseline) power.
    pub fn new(idle_watts: f64) -> Self {
        Self { idle_watts, segments: Vec::new() }
    }

    /// Baseline power between recorded segments.
    pub fn idle_watts(&self) -> f64 {
        self.idle_watts
    }

    /// Appends a segment. Panics if it starts before the end of the last
    /// segment (traces are strictly sequential, like a device timeline).
    pub fn push(&mut self, start: f64, duration: f64, watts: f64) {
        assert!(duration >= 0.0, "negative segment duration");
        if let Some(last) = self.segments.last() {
            assert!(
                start >= last.start + last.duration - 1e-12,
                "segment overlaps previous ({start} < {})",
                last.start + last.duration
            );
        }
        self.segments.push(Segment { start, duration, watts });
    }

    /// All recorded segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Pre-grows the segment storage so the next `additional` pushes do
    /// not reallocate (lets callers keep a measurement window heap-quiet).
    pub fn reserve(&mut self, additional: usize) {
        self.segments.reserve(additional);
    }

    /// End time of the last segment (0 for an empty trace).
    pub fn end_time(&self) -> f64 {
        self.segments.last().map_or(0.0, |s| s.start + s.duration)
    }

    /// Instantaneous power at time `t` (NVML-style sample).
    pub fn sample(&self, t: f64) -> f64 {
        for s in &self.segments {
            if t >= s.start && t < s.start + s.duration {
                return s.watts;
            }
        }
        self.idle_watts
    }

    /// Exact energy over `[t0, t1]` in joules, gaps billed at idle power.
    pub fn energy(&self, t0: f64, t1: f64) -> f64 {
        assert!(t1 >= t0, "inverted energy interval");
        let mut active = 0.0;
        let mut covered = 0.0;
        for s in &self.segments {
            let lo = s.start.max(t0);
            let hi = (s.start + s.duration).min(t1);
            if hi > lo {
                active += s.watts * (hi - lo);
                covered += hi - lo;
            }
        }
        active + self.idle_watts * ((t1 - t0) - covered)
    }

    /// Mean power over `[t0, t1]` in watts.
    pub fn mean_power(&self, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return self.idle_watts;
        }
        self.energy(t0, t1) / (t1 - t0)
    }

    /// Mean power over the *active* segments only (what "the stable value of
    /// the y-axis" in Fig. 15 refers to: power while kernels are running).
    pub fn mean_active_power(&self) -> f64 {
        let mut e = 0.0;
        let mut t = 0.0;
        for s in &self.segments {
            e += s.watts * s.duration;
            t += s.duration;
        }
        if t > 0.0 {
            e / t
        } else {
            self.idle_watts
        }
    }

    /// Samples the trace at a fixed period (NVML / nvidia-smi polling).
    pub fn sample_series(&self, period: f64, until: f64) -> Vec<(f64, f64)> {
        assert!(period > 0.0, "sampling period must be positive");
        let mut out = Vec::new();
        let mut t = 0.0;
        while t <= until {
            out.push((t, self.sample(t)));
            t += period;
        }
        out
    }
}

/// Running energy counter for a device — the model analog of the RAPL MSR
/// that accumulates microjoules.
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyCounter {
    joules: f64,
}

impl EnergyCounter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `watts * seconds`.
    pub fn add(&mut self, watts: f64, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.joules += watts * seconds;
    }

    /// Total accumulated energy, joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> PowerTrace {
        let mut t = PowerTrace::new(20.0);
        t.push(0.0, 1.0, 100.0);
        t.push(1.0, 0.5, 50.0);
        // gap [1.5, 2.0) at idle
        t.push(2.0, 1.0, 80.0);
        t
    }

    #[test]
    fn sample_inside_and_outside_segments() {
        let t = trace();
        assert_eq!(t.sample(0.5), 100.0);
        assert_eq!(t.sample(1.25), 50.0);
        assert_eq!(t.sample(1.75), 20.0); // gap -> idle
        assert_eq!(t.sample(10.0), 20.0); // after end -> idle
    }

    #[test]
    fn energy_is_exact_integral() {
        let t = trace();
        // [0, 3]: 100*1 + 50*0.5 + 20*0.5 + 80*1 = 215
        assert!((t.energy(0.0, 3.0) - 215.0).abs() < 1e-12);
    }

    #[test]
    fn energy_partial_overlap() {
        let t = trace();
        // [0.5, 1.25]: 100*0.5 + 50*0.25 = 62.5
        assert!((t.energy(0.5, 1.25) - 62.5).abs() < 1e-12);
    }

    #[test]
    fn mean_power_over_window() {
        let t = trace();
        let p = t.mean_power(0.0, 3.0);
        assert!((p - 215.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_active_power_ignores_gaps() {
        let t = trace();
        // (100*1 + 50*0.5 + 80*1) / 2.5 = 205/2.5 = 82
        assert!((t.mean_active_power() - 82.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_defaults_to_idle() {
        let t = PowerTrace::new(25.0);
        assert_eq!(t.sample(1.0), 25.0);
        assert_eq!(t.mean_active_power(), 25.0);
        assert!((t.energy(0.0, 2.0) - 50.0).abs() < 1e-12);
        assert_eq!(t.end_time(), 0.0);
    }

    #[test]
    fn sample_series_has_fixed_period() {
        let t = trace();
        let s = t.sample_series(0.5, 2.0);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], (0.0, 100.0));
        assert_eq!(s[3], (1.5, 20.0));
    }

    #[test]
    #[should_panic(expected = "overlaps previous")]
    fn overlapping_segments_rejected() {
        let mut t = PowerTrace::new(0.0);
        t.push(0.0, 1.0, 10.0);
        t.push(0.5, 1.0, 10.0);
    }

    #[test]
    fn energy_counter_accumulates() {
        let mut c = EnergyCounter::new();
        c.add(100.0, 2.0);
        c.add(50.0, 1.0);
        assert!((c.joules() - 250.0).abs() < 1e-12);
    }
}
