//! Property-based tests on the device models.

use gpu_sim::{occupancy, GpuDevice, GpuSpec, LaunchConfig, Traffic};
use proptest::prelude::*;
use gpu_sim::DeviceCatalog;

fn specs() -> Vec<GpuSpec> {
    vec![DeviceCatalog::gpu("k20"), GpuSpec::c2050(), GpuSpec::k10()]
}

proptest! {
    #[test]
    fn occupancy_fraction_is_bounded(
        threads in 1u32..2048,
        smem in 0u32..48 * 1024,
        regs in 0u32..255,
        grid in 1u32..100_000,
    ) {
        for spec in specs() {
            let occ = occupancy(&spec, &LaunchConfig::new(grid, threads, smem, regs));
            prop_assert!((0.0..=1.0).contains(&occ.fraction));
            prop_assert!((0.0..=1.0).contains(&occ.device_fill));
        }
    }

    #[test]
    fn more_registers_never_raises_occupancy(
        threads in 32u32..1024,
        r1 in 8u32..120,
        extra in 1u32..100,
    ) {
        let spec = DeviceCatalog::gpu("k20");
        let o1 = occupancy(&spec, &LaunchConfig::new(1000, threads, 0, r1));
        let o2 = occupancy(&spec, &LaunchConfig::new(1000, threads, 0, (r1 + extra).min(255)));
        prop_assert!(o2.fraction <= o1.fraction + 1e-12);
    }

    #[test]
    fn more_shared_memory_never_raises_occupancy(
        threads in 32u32..512,
        s1 in 0u32..24 * 1024,
        extra in 1u32..16 * 1024,
    ) {
        let spec = DeviceCatalog::gpu("k20");
        let o1 = occupancy(&spec, &LaunchConfig::new(1000, threads, s1, 32));
        let o2 = occupancy(&spec, &LaunchConfig::new(1000, threads, s1 + extra, 32));
        prop_assert!(o2.fraction <= o1.fraction + 1e-12);
    }

    #[test]
    fn kernel_power_stays_in_physical_envelope(
        flops in 0.0..1e12f64,
        dram in 0.0..1e10f64,
        l2 in 0.0..1e10f64,
        shared in 0.0..1e10f64,
        local in 0.0..1e10f64,
    ) {
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let cfg = LaunchConfig::new(10_000, 256, 0, 32);
        let t = Traffic { flops, dram_bytes: dram, l2_bytes: l2, shared_bytes: shared, local_bytes: local };
        let stats = dev.model_kernel(&cfg, &t);
        prop_assert!(stats.power_w >= dev.spec().active_floor_w - 1e-9);
        prop_assert!(stats.power_w <= dev.spec().tdp_w + 1e-9);
        prop_assert!(stats.time_s > 0.0);
        // Achieved bandwidths never exceed the machine limits.
        prop_assert!(stats.dram_bw_gbs <= dev.spec().dram_bw_gbs + 1e-9);
        prop_assert!(stats.gflops <= dev.spec().peak_gflops_dp + 1e-9);
    }

    #[test]
    fn more_traffic_never_runs_faster(
        flops in 1e6..1e11f64,
        dram in 1e4..1e9f64,
        scale in 1.01..4.0f64,
    ) {
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let cfg = LaunchConfig::new(10_000, 256, 0, 32);
        let t1 = Traffic { flops, dram_bytes: dram, ..Default::default() };
        let t2 = t1.scale(scale);
        let s1 = dev.model_kernel(&cfg, &t1);
        let s2 = dev.model_kernel(&cfg, &t2);
        prop_assert!(s2.time_s >= s1.time_s);
    }

    #[test]
    fn energy_decomposition_is_additive(
        flops in 1e6..1e10f64,
        dram in 1e4..1e8f64,
    ) {
        // Power x time of a combined kernel >= each component alone would
        // imply (time is a max, energy is a sum): E_combined >= E_parts max.
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let cfg = LaunchConfig::new(10_000, 256, 0, 32);
        let combined = Traffic { flops, dram_bytes: dram, ..Default::default() };
        let only_flops = Traffic { flops, ..Default::default() };
        let sc = dev.model_kernel(&cfg, &combined);
        let sf = dev.model_kernel(&cfg, &only_flops);
        let e_c = sc.power_w * sc.time_s;
        let e_f = sf.power_w * sf.time_s;
        prop_assert!(e_c >= e_f - 1e-12, "adding traffic reduced energy: {e_c} < {e_f}");
    }

    #[test]
    fn clock_advances_by_exactly_the_kernel_time(
        flops in 1e6..1e10f64,
        launches in 1usize..10,
    ) {
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let cfg = LaunchConfig::new(1000, 256, 0, 32);
        let t = Traffic::compute(flops);
        let mut expect = 0.0;
        for _ in 0..launches {
            let (_, stats) = dev.launch("k", &cfg, &t, || ()).expect("no faults injected");
            expect += stats.time_s;
        }
        prop_assert!((dev.now() - expect).abs() < 1e-12 * expect.max(1.0));
        prop_assert_eq!(dev.events().len(), launches);
    }
}
