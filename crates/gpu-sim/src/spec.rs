//! GPU device specifications: the three parts the paper ran on.

/// Static description of a simulated GPU.
///
/// Performance numbers are the published datasheet values for the paper's
/// parts; the energy coefficients are calibrated so the §5.2 scenarios
/// reproduce (idle 20 W, ~50 W floor with any kernel running, TDP 225 W for
/// K20, DRAM-dominated dynamic power with an on-chip/DRAM per-byte cost
/// ratio following Hong & Kim).
///
/// `PartialEq` is exact field-for-field equality — the delegation-parity
/// tests pin the deprecated constructors bitwise to the catalog entries.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Streaming multiprocessors (SM / SMX).
    pub sm_count: u32,
    /// Max resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Max resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Max registers addressable per thread (63 on Fermi, 255 on Kepler).
    pub max_regs_per_thread: u32,
    /// Shared memory per SM, bytes.
    pub shared_mem_per_sm: u32,
    /// Max shared memory per block, bytes.
    pub max_shared_per_block: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Peak double-precision throughput, GFLOP/s.
    pub peak_gflops_dp: f64,
    /// Device (DRAM) bandwidth, GB/s.
    pub dram_bw_gbs: f64,
    /// L2 bandwidth, GB/s.
    pub l2_bw_gbs: f64,
    /// Aggregate shared-memory/L1 bandwidth, GB/s.
    pub shared_bw_gbs: f64,
    /// Device memory capacity, bytes.
    pub dram_capacity: usize,
    /// PCIe bandwidth, GB/s (effective, one direction).
    pub pcie_bw_gbs: f64,
    /// PCIe transfer latency, microseconds.
    pub pcie_latency_us: f64,
    /// Kernel launch overhead, microseconds.
    pub launch_overhead_us: f64,
    /// Hardware work queues usable by concurrent host processes
    /// (Hyper-Q: 32 on K20, 1 on Fermi/K10).
    pub hyperq_queues: u32,
    /// Board TDP, watts.
    pub tdp_w: f64,
    /// Long-idle board power, watts (paper: 20 W).
    pub idle_w: f64,
    /// Power floor while any kernel is resident (paper: startup ~50 W).
    pub active_floor_w: f64,
    /// SM-utilization power floor, watts at full device fill with the
    /// execution units busy every cycle. Issue/clock/scheduler power that
    /// per-event energy coefficients miss: a kernel streaming from
    /// on-chip memories keeps every SM switching even though its
    /// per-byte energy is tiny, which is why the paper measures Q4-Q3
    /// corner force (on-chip dominated) *above* the DRAM-heavy Q2-Q1 at
    /// 8 MPI (Fig. 15). Scaled by device fill and the fraction of
    /// execution time the SMs spend on compute/shared-memory work.
    pub sm_util_w: f64,
    /// Energy per double-precision flop, picojoules.
    pub e_flop_pj: f64,
    /// Energy per DRAM byte, picojoules.
    pub e_dram_pj: f64,
    /// Energy per L2 byte, picojoules.
    pub e_l2_pj: f64,
    /// Energy per shared-memory byte, picojoules.
    pub e_shared_pj: f64,
    /// Extra power per additional active Hyper-Q queue, watts
    /// (the 8-MPI-vs-1-MPI overhead observed in Fig. 15).
    pub hyperq_w_per_queue: f64,
    /// Energy multiplier for local-memory (register-spill) bytes relative
    /// to coalesced DRAM traffic: scattered per-thread spills have poor
    /// DRAM row-buffer locality, so each byte costs more to move.
    pub local_energy_factor: f64,
    /// Occupancy at which compute throughput saturates.
    pub occ_sat_compute: f64,
    /// Occupancy at which memory latency is fully hidden.
    pub occ_sat_memory: f64,
}

impl GpuSpec {
    /// NVIDIA Tesla K20 — the paper's main single-node and power-study
    /// GPU, now a catalog entry.
    #[deprecated(since = "0.1.0", note = "use gpu_sim::DeviceCatalog::gpu(\"k20\")")]
    pub fn k20() -> Self {
        crate::catalog::DeviceCatalog::gpu("k20")
    }

    /// NVIDIA Tesla C2050 (Fermi, compute capability 2.0) — the kernel-8
    /// comparison platform (Table 4) and the auto-balance testbed (Table 5).
    pub fn c2050() -> Self {
        Self {
            name: "Tesla C2050",
            sm_count: 14,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            registers_per_sm: 32768,
            max_regs_per_thread: 63,
            shared_mem_per_sm: 48 * 1024,
            max_shared_per_block: 48 * 1024,
            warp_size: 32,
            peak_gflops_dp: 515.0,
            dram_bw_gbs: 144.0,
            l2_bw_gbs: 350.0,
            shared_bw_gbs: 1030.0,
            dram_capacity: 3 * 1024 * 1024 * 1024,
            pcie_bw_gbs: 5.0,
            pcie_latency_us: 12.0,
            launch_overhead_us: 7.0,
            hyperq_queues: 1,
            tdp_w: 238.0,
            idle_w: 22.0,
            active_floor_w: 55.0,
            sm_util_w: 33.0,
            e_flop_pj: 160.0,
            e_dram_pj: 420.0,
            e_l2_pj: 38.0,
            e_shared_pj: 9.0,
            hyperq_w_per_queue: 0.0,
            local_energy_factor: 1.6,
            occ_sat_compute: 0.55,
            occ_sat_memory: 0.35,
        }
    }

    /// NVIDIA Tesla K20m — ORNL Titan / SNL Shannon node GPU; identical to
    /// K20 for our purposes except the passive-cooled TDP.
    #[deprecated(since = "0.1.0", note = "use gpu_sim::DeviceCatalog::gpu(\"k20m\")")]
    pub fn k20m() -> Self {
        crate::catalog::DeviceCatalog::gpu("k20m")
    }

    /// NVIDIA Tesla K10 — strong single-precision part with weak DP; used
    /// with CUDA+OpenMP because it lacks Hyper-Q for multi-process sharing.
    pub fn k10() -> Self {
        Self {
            name: "Tesla K10",
            sm_count: 8,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            registers_per_sm: 65536,
            max_regs_per_thread: 255,
            shared_mem_per_sm: 48 * 1024,
            max_shared_per_block: 48 * 1024,
            warp_size: 32,
            peak_gflops_dp: 190.0,
            dram_bw_gbs: 160.0,
            l2_bw_gbs: 400.0,
            shared_bw_gbs: 1100.0,
            dram_capacity: 4 * 1024 * 1024 * 1024,
            pcie_bw_gbs: 6.0,
            pcie_latency_us: 10.0,
            launch_overhead_us: 5.0,
            hyperq_queues: 1,
            tdp_w: 225.0,
            idle_w: 25.0,
            active_floor_w: 52.0,
            sm_util_w: 28.0,
            e_flop_pj: 120.0,
            e_dram_pj: 380.0,
            e_l2_pj: 32.0,
            e_shared_pj: 8.0,
            hyperq_w_per_queue: 0.0,
            local_energy_factor: 1.6,
            occ_sat_compute: 0.50,
            occ_sat_memory: 0.30,
        }
    }

    /// Theoretical peak of a bandwidth-bound batched DGEMM with the given
    /// flops-per-byte intensity (the paper's §3.2 analysis: on K20,
    /// `DIM x DIM` batched DGEMM peaks at 35 GFLOP/s for DIM = 2 and
    /// 52 GFLOP/s for DIM = 3).
    pub fn bandwidth_bound_gflops(&self, flops_per_byte: f64) -> f64 {
        self.dram_bw_gbs * flops_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DeviceCatalog;

    #[test]
    fn k20_datasheet_values() {
        let k = DeviceCatalog::gpu("k20");
        assert_eq!(k.dram_bw_gbs, 208.0); // paper: "bandwidth of K20 is 208GB/s"
        assert_eq!(k.tdp_w, 225.0); // paper: "The TDP of K20 is 225W"
        assert_eq!(k.idle_w, 20.0); // paper: "idle power is 20W"
        assert!(k.active_floor_w >= 45.0 && k.active_floor_w <= 55.0); // "startup ~50W"
        assert_eq!(k.hyperq_queues, 32); // "up to 32 work queues"
    }

    #[test]
    fn kepler_doubles_fermi_registers() {
        // Paper Fig. 4 discussion: Kepler "doubles the number of physical
        // registers per SMX".
        let k20 = DeviceCatalog::gpu("k20");
        assert_eq!(k20.registers_per_sm, 2 * GpuSpec::c2050().registers_per_sm);
        assert!(k20.max_regs_per_thread > GpuSpec::c2050().max_regs_per_thread);
    }

    #[test]
    fn paper_batched_dgemm_peaks() {
        // §3.2: "each element will perform 4/3, 2 operations, the
        // theoretical peak ... is 35, 52 Gflop/s for DIM = 2, 3".
        let k = DeviceCatalog::gpu("k20");
        // DIM x DIM batched DGEMM: 2*DIM^3 flops over 3*DIM^2 elements of
        // 8 bytes -> flops/byte = 2*DIM/(3*8).
        let fpb2 = 2.0 * 2.0 / (3.0 * 8.0);
        let fpb3 = 2.0 * 3.0 / (3.0 * 8.0);
        assert!((k.bandwidth_bound_gflops(fpb2) - 34.7).abs() < 0.5);
        assert!((k.bandwidth_bound_gflops(fpb3) - 52.0).abs() < 0.5);
    }

    #[test]
    fn dram_energy_dominates_onchip() {
        // Hong & Kim: DRAM per-access cost ~52x shared memory.
        for s in [DeviceCatalog::gpu("k20"), GpuSpec::c2050(), GpuSpec::k10()] {
            let ratio = s.e_dram_pj / s.e_shared_pj;
            assert!(ratio > 40.0 && ratio < 60.0, "{}: {ratio}", s.name);
        }
    }

    #[test]
    fn only_kepler_k20_has_hyperq() {
        assert!(DeviceCatalog::gpu("k20").hyperq_queues > 1);
        assert_eq!(GpuSpec::c2050().hyperq_queues, 1);
        assert_eq!(GpuSpec::k10().hyperq_queues, 1);
    }

    #[test]
    fn table4_theoretical_dgemv_peak_on_c2050() {
        // Table 4: theoretical batched-DGEMV peak on C2050 is 35.5 Gflop/s.
        // DGEMV m x n: 2mn flops over (mn + m + n) doubles; for 81x8 the
        // matrix read dominates: flops/byte ~ 2*81*8/((81*8+81+8)*8).
        let c = GpuSpec::c2050();
        let fpb = (2.0 * 81.0 * 8.0) / ((81.0 * 8.0 + 81.0 + 8.0) * 8.0);
        let peak = c.bandwidth_bound_gflops(fpb);
        assert!((peak - 35.5).abs() < 4.0, "peak {peak}");
    }
}
