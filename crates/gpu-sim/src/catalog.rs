//! Device catalog — the heterogeneous-fleet generalization of the
//! single-K20 device model.
//!
//! The paper's Fig. 1 plots GFLOPS/W across CPU and GPU generations and
//! Table 5 auto-balances one node; both arguments assume you know which
//! silicon wins for a phase. That ordering flips across generations (the
//! FP64-tensor-core study, arXiv:2603.09038, and the CPU/GPU/Xeon-Phi
//! finite-difference comparison, arXiv:1709.09713), so the device model
//! is a *catalog*: named [`DeviceSpec`] entries, each a host [`CpuSpec`]
//! plus an optional [`GpuSpec`], carrying the full cost-and-power model.
//! The serve-layer router and `HydroBuilder::fleet` treat the catalog as
//! a live routing input instead of a chart.
//!
//! Standard entries:
//!
//! | id            | host                 | GPU                      |
//! |---------------|----------------------|--------------------------|
//! | `fermi`       | Xeon X5660           | Tesla C2050              |
//! | `k20`         | Xeon E5-2670         | Tesla K20                |
//! | `k20m`        | Xeon E5-2670         | Tesla K20m               |
//! | `ampere`      | Xeon Platinum 8380   | FP64-tensor-core Ampere  |
//! | `cpu-e5-2670` | Xeon E5-2670         | —                        |
//! | `xeon-phi`    | Xeon Phi 7120        | —                        |
//!
//! The old ad-hoc constructors (`GpuSpec::k20()`, `GpuSpec::k20m()`,
//! `WorkerSpec::k20_node()`) are `#[deprecated]` wrappers that delegate
//! here; delegation-parity tests pin them bitwise-identical to the
//! catalog entries.

use crate::cpu::CpuSpec;
use crate::spec::GpuSpec;

/// A named device configuration: the host package plus an optional
/// attached GPU. This is the unit the router places jobs on and the unit
/// autotune keys its caches by (`DeviceSpec::id`).
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Catalog id — stable, lowercase, used as the autotune cache key
    /// and the routing/billing label.
    pub id: String,
    /// Host CPU package (always present: even GPU nodes integrate and
    /// orchestrate on the host).
    pub host: CpuSpec,
    /// Attached GPU, if the device has one.
    pub gpu: Option<GpuSpec>,
}

impl DeviceSpec {
    /// Starts a builder for a custom entry (e.g. a hypothetical part for
    /// a what-if routing study). Defaults to an E5-2670 host and no GPU.
    pub fn builder(id: impl Into<String>) -> DeviceSpecBuilder {
        DeviceSpecBuilder { id: id.into(), host: CpuSpec::e5_2670(), gpu: None }
    }

    /// Whether the device has an attached GPU.
    pub fn has_gpu(&self) -> bool {
        self.gpu.is_some()
    }

    /// Combined idle power of the node, watts (host package + DRAM,
    /// plus the GPU's long-idle power when present) — what a worker
    /// burns while it waits for work.
    pub fn idle_watts(&self) -> f64 {
        let host = self.host.power.idle_pkg_w + self.host.power.idle_dram_w;
        host + self.gpu.as_ref().map_or(0.0, |g| g.idle_w)
    }

    /// Peak double-precision GFLOP/s of the device's fastest silicon.
    pub fn peak_gflops_dp(&self) -> f64 {
        self.gpu
            .as_ref()
            .map_or(self.host.peak_gflops_dp, |g| g.peak_gflops_dp.max(self.host.peak_gflops_dp))
    }

    /// The Fig. 1 metric: peak DP GFLOP/s per TDP watt of the silicon
    /// that delivers the peak. A routing *prior*, not a decision — the
    /// router ranks devices by modeled job energy, which also prices
    /// transfers, launch overheads, and idle floors this ratio ignores.
    pub fn peak_gflops_per_watt(&self) -> f64 {
        match &self.gpu {
            Some(g) if g.peak_gflops_dp >= self.host.peak_gflops_dp => {
                g.peak_gflops_dp / g.tdp_w
            }
            _ => self.host.peak_gflops_dp / self.host.power.tdp_w,
        }
    }
}

/// Builder for custom [`DeviceSpec`] entries.
#[derive(Clone, Debug)]
pub struct DeviceSpecBuilder {
    id: String,
    host: CpuSpec,
    gpu: Option<GpuSpec>,
}

impl DeviceSpecBuilder {
    /// Sets the host package.
    pub fn host(mut self, host: CpuSpec) -> Self {
        self.host = host;
        self
    }

    /// Attaches a GPU.
    pub fn gpu(mut self, gpu: GpuSpec) -> Self {
        self.gpu = Some(gpu);
        self
    }

    /// Finishes the entry.
    pub fn build(self) -> DeviceSpec {
        assert!(!self.id.is_empty(), "device id must be non-empty");
        DeviceSpec { id: self.id, host: self.host, gpu: self.gpu }
    }
}

/// The registry of named devices. [`DeviceCatalog::standard`] holds the
/// six standard generations; [`DeviceCatalog::insert`] adds or replaces
/// entries for custom fleets.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeviceCatalog {
    entries: Vec<DeviceSpec>,
}

impl DeviceCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard catalog: Fermi-class, the paper's Kepler parts, a
    /// modern FP64-tensor-core device, and the two CPU-only presets.
    pub fn standard() -> Self {
        let mut c = Self::new();
        c.insert(
            DeviceSpec::builder("fermi").host(CpuSpec::x5660()).gpu(GpuSpec::c2050()).build(),
        );
        c.insert(DeviceSpec::builder("k20").host(CpuSpec::e5_2670()).gpu(k20_gpu()).build());
        c.insert(DeviceSpec::builder("k20m").host(CpuSpec::e5_2670()).gpu(k20m_gpu()).build());
        c.insert(
            DeviceSpec::builder("ampere").host(CpuSpec::xeon_8380()).gpu(ampere_gpu()).build(),
        );
        c.insert(DeviceSpec::builder("cpu-e5-2670").host(CpuSpec::e5_2670()).build());
        c.insert(DeviceSpec::builder("xeon-phi").host(CpuSpec::xeon_phi_7120()).build());
        c
    }

    /// Adds an entry, replacing any existing entry with the same id.
    pub fn insert(&mut self, spec: DeviceSpec) {
        if let Some(slot) = self.entries.iter_mut().find(|e| e.id == spec.id) {
            *slot = spec;
        } else {
            self.entries.push(spec);
        }
    }

    /// Entry by id, if present.
    pub fn lookup(&self, id: &str) -> Option<&DeviceSpec> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// All entries, in insertion order.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.entries
    }

    /// All entry ids, in insertion order.
    pub fn ids(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.id.as_str()).collect()
    }

    /// The subset of the standard catalog named by `ids` (order kept) —
    /// how experiments spell out a concrete fleet. Panics on unknown ids.
    pub fn standard_subset(ids: &[&str]) -> Self {
        let mut c = Self::new();
        for id in ids {
            c.insert(Self::get(id));
        }
        c
    }

    /// Standard entry by id. Panics with the list of known ids on an
    /// unknown id — the catalog analog of a bad preset-constructor name
    /// failing at compile time.
    pub fn get(id: &str) -> DeviceSpec {
        let std = Self::standard();
        std.lookup(id).cloned().unwrap_or_else(|| {
            panic!("unknown device id {id:?}; catalog has {:?}", std.ids())
        })
    }

    /// GPU spec of a standard entry. Panics if the entry has no GPU (or
    /// the id is unknown) — the drop-in replacement for the deprecated
    /// `GpuSpec::k20()`-style constructors.
    pub fn gpu(id: &str) -> GpuSpec {
        Self::get(id).gpu.unwrap_or_else(|| panic!("device {id:?} has no GPU"))
    }

    /// Host spec of a standard entry.
    pub fn host(id: &str) -> CpuSpec {
        Self::get(id).host
    }
}

/// NVIDIA Tesla K20 (GK110, compute capability 3.5) — the paper's main
/// single-node and power-study GPU. The datasheet values formerly lived
/// in `GpuSpec::k20()`, now a deprecated wrapper around this entry.
fn k20_gpu() -> GpuSpec {
    GpuSpec {
        name: "Tesla K20",
        sm_count: 13,
        max_threads_per_sm: 2048,
        max_blocks_per_sm: 16,
        registers_per_sm: 65536,
        max_regs_per_thread: 255,
        shared_mem_per_sm: 48 * 1024,
        max_shared_per_block: 48 * 1024,
        warp_size: 32,
        peak_gflops_dp: 1170.0,
        dram_bw_gbs: 208.0,
        l2_bw_gbs: 512.0,
        shared_bw_gbs: 1300.0,
        dram_capacity: 5 * 1024 * 1024 * 1024,
        pcie_bw_gbs: 6.0,
        pcie_latency_us: 10.0,
        launch_overhead_us: 5.0,
        hyperq_queues: 32,
        tdp_w: 225.0,
        idle_w: 20.0,
        active_floor_w: 50.0,
        sm_util_w: 30.0,
        // ~100 pJ per DP flop on 28 nm Kepler: full-rate DP compute
        // alone draws ~117 W, which is why DGEMM is the power virus.
        e_flop_pj: 100.0,
        e_dram_pj: 350.0,
        e_l2_pj: 30.0,
        e_shared_pj: 7.0,
        hyperq_w_per_queue: 2.5,
        local_energy_factor: 1.6,
        occ_sat_compute: 0.50,
        occ_sat_memory: 0.30,
    }
}

/// NVIDIA Tesla K20m — ORNL Titan / SNL Shannon node GPU; identical to
/// K20 for our purposes except the passive-cooled TDP.
fn k20m_gpu() -> GpuSpec {
    GpuSpec { name: "Tesla K20m", tdp_w: 225.0, ..k20_gpu() }
}

/// A modern FP64-tensor-core device (A100-class, 7 nm): ~17x the K20's
/// DP peak at ~1/7 the per-flop energy, HBM at ~7.5x the bandwidth —
/// the generation where arXiv:2603.09038 shows the greenup ordering
/// flip. The catch the router prices in: a much higher active floor
/// (80 W resident + up to 70 W of SM issue power), so short
/// launch-bound jobs are cheaper on older, lower-floor silicon.
fn ampere_gpu() -> GpuSpec {
    GpuSpec {
        name: "Ampere FP64-TC",
        sm_count: 108,
        max_threads_per_sm: 2048,
        max_blocks_per_sm: 32,
        registers_per_sm: 65536,
        max_regs_per_thread: 255,
        shared_mem_per_sm: 164 * 1024,
        max_shared_per_block: 96 * 1024,
        warp_size: 32,
        // FP64 tensor-core peak; the CUDA-core DP peak is half this.
        peak_gflops_dp: 19500.0,
        dram_bw_gbs: 1555.0,
        l2_bw_gbs: 4500.0,
        shared_bw_gbs: 17000.0,
        dram_capacity: 40 * 1024 * 1024 * 1024,
        pcie_bw_gbs: 25.0,
        pcie_latency_us: 5.0,
        launch_overhead_us: 4.0,
        hyperq_queues: 32,
        tdp_w: 400.0,
        idle_w: 45.0,
        active_floor_w: 90.0,
        sm_util_w: 70.0,
        // 7 nm: ~15 pJ/DP-flop (tensor-core datapath), HBM2e at ~100
        // pJ/B; the Hong & Kim on-chip/DRAM ratio band is preserved.
        e_flop_pj: 15.0,
        e_dram_pj: 100.0,
        e_l2_pj: 9.0,
        e_shared_pj: 2.2,
        hyperq_w_per_queue: 1.5,
        local_energy_factor: 1.5,
        occ_sat_compute: 0.40,
        occ_sat_memory: 0.25,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(deprecated)]
    fn deprecated_gpu_constructors_delegate_bitwise() {
        // The PR-5 pattern: the old constructors must return exactly the
        // catalog entry, field for field.
        assert_eq!(GpuSpec::k20(), DeviceCatalog::gpu("k20"));
        assert_eq!(GpuSpec::k20m(), DeviceCatalog::gpu("k20m"));
    }

    #[test]
    fn standard_catalog_shape() {
        let c = DeviceCatalog::standard();
        assert_eq!(c.ids(), ["fermi", "k20", "k20m", "ampere", "cpu-e5-2670", "xeon-phi"]);
        assert!(c.lookup("fermi").unwrap().has_gpu());
        assert!(!c.lookup("cpu-e5-2670").unwrap().has_gpu());
        assert!(!c.lookup("xeon-phi").unwrap().has_gpu());
        assert!(c.lookup("nonesuch").is_none());
    }

    #[test]
    fn catalog_entries_are_sane() {
        for dev in DeviceCatalog::standard().devices() {
            assert!(dev.idle_watts() > 0.0, "{}", dev.id);
            assert!(dev.peak_gflops_dp() > 0.0, "{}", dev.id);
            assert!(dev.peak_gflops_per_watt() > 0.0, "{}", dev.id);
            if let Some(g) = &dev.gpu {
                // Hong & Kim DRAM-vs-shared per-byte cost band, catalog-wide.
                let ratio = g.e_dram_pj / g.e_shared_pj;
                assert!(ratio > 40.0 && ratio < 60.0, "{}: {ratio}", dev.id);
                assert!(g.idle_w < g.active_floor_w, "{}", dev.id);
                assert!(g.active_floor_w < g.tdp_w, "{}", dev.id);
                // Full-rate DP compute power must fit under the board TDP.
                let compute_w =
                    g.active_floor_w + g.sm_util_w + g.peak_gflops_dp * g.e_flop_pj * 1e-3;
                assert!(compute_w <= 1.2 * g.tdp_w, "{}: {compute_w} W", dev.id);
            }
        }
    }

    #[test]
    fn generations_order_as_the_papers_say() {
        // Fig. 1's axis: peak GFLOPS/W strictly improves Fermi -> Kepler
        // -> FP64-tensor-core.
        let f = DeviceCatalog::gpu("fermi");
        let k = DeviceCatalog::gpu("k20");
        let a = DeviceCatalog::gpu("ampere");
        assert!(f.peak_gflops_dp / f.tdp_w < k.peak_gflops_dp / k.tdp_w);
        assert!(k.peak_gflops_dp / k.tdp_w < a.peak_gflops_dp / a.tdp_w);
        // ...while per-flop energy falls and the idle/active floors rise:
        // the inversion that makes routing non-trivial.
        assert!(a.e_flop_pj < k.e_flop_pj && k.e_flop_pj < f.e_flop_pj);
        assert!(a.active_floor_w > k.active_floor_w);
    }

    #[test]
    fn builder_makes_custom_entries() {
        let dev = DeviceSpec::builder("lab-rig")
            .host(CpuSpec::xeon_8380())
            .gpu(DeviceCatalog::gpu("k20"))
            .build();
        assert_eq!(dev.id, "lab-rig");
        assert_eq!(dev.host, CpuSpec::xeon_8380());
        assert!(dev.has_gpu());
        let mut c = DeviceCatalog::standard();
        c.insert(dev.clone());
        assert_eq!(c.lookup("lab-rig"), Some(&dev));
        // Replacement by id, not duplication.
        let n = c.devices().len();
        c.insert(dev);
        assert_eq!(c.devices().len(), n);
    }

    #[test]
    #[should_panic(expected = "unknown device id")]
    fn unknown_id_panics_with_catalog_listing() {
        DeviceCatalog::get("gtx-480");
    }

    #[test]
    #[should_panic(expected = "has no GPU")]
    fn cpu_only_entry_has_no_gpu_spec() {
        DeviceCatalog::gpu("xeon-phi");
    }
}
