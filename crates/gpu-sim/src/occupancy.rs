//! CUDA-style occupancy calculation.
//!
//! Occupancy — resident warps per SM relative to the maximum — is the knob
//! the paper's autotuning turns: "The number of matrix performed per thread
//! block can be tuned to find an optimal occupancy. ... We find 32 delivered
//! the best performance with an occupancy 98.3%." A block's residency is
//! limited by whichever of threads, registers, or shared memory it exhausts
//! first.

use crate::spec::GpuSpec;

/// A kernel launch configuration (the CUDA `<<<grid, block, smem>>>` triple
/// plus the per-thread register count the compiler would report).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
    /// Dynamic + static shared memory per block, bytes.
    pub shared_bytes: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
}

impl LaunchConfig {
    /// Convenience constructor.
    pub fn new(grid_blocks: u32, block_threads: u32, shared_bytes: u32, regs_per_thread: u32) -> Self {
        Self { grid_blocks, block_threads, shared_bytes, regs_per_thread }
    }

    /// Total threads across the grid.
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks as u64 * self.block_threads as u64
    }
}

/// Occupancy analysis result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// Occupancy fraction: resident threads / max threads per SM.
    pub fraction: f64,
    /// Which resource limits residency.
    pub limiter: Limiter,
    /// Fraction of the whole device the grid can keep busy
    /// (1.0 when there are at least `sm_count * blocks_per_sm` blocks —
    /// the "tail effect" derating for small grids).
    pub device_fill: f64,
}

/// The residency-limiting resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Limiter {
    /// Max threads (or max blocks) per SM.
    Threads,
    /// Register file exhausted.
    Registers,
    /// Shared memory exhausted.
    SharedMemory,
    /// Launch config invalid (zero residency).
    Invalid,
}

/// Computes occupancy for a launch on a device.
pub fn occupancy(spec: &GpuSpec, cfg: &LaunchConfig) -> Occupancy {
    if cfg.block_threads == 0
        || cfg.grid_blocks == 0
        || cfg.block_threads > spec.max_threads_per_sm
        || cfg.shared_bytes > spec.max_shared_per_block
        || cfg.regs_per_thread > spec.max_regs_per_thread
    {
        return Occupancy {
            blocks_per_sm: 0,
            warps_per_sm: 0,
            fraction: 0.0,
            limiter: Limiter::Invalid,
            device_fill: 0.0,
        };
    }

    // Warp-granular thread allocation.
    let warps_per_block = cfg.block_threads.div_ceil(spec.warp_size);
    let alloc_threads = warps_per_block * spec.warp_size;

    let by_threads = (spec.max_threads_per_sm / alloc_threads).min(spec.max_blocks_per_sm);
    // Register allocation is per-warp in practice; per-thread is close
    // enough for the model (and matches the occupancy spreadsheet).
    let by_regs = spec
        .registers_per_sm
        .checked_div(cfg.regs_per_thread * alloc_threads)
        .unwrap_or(u32::MAX);
    let by_smem = spec.shared_mem_per_sm.checked_div(cfg.shared_bytes).unwrap_or(u32::MAX);

    let blocks_per_sm = by_threads.min(by_regs).min(by_smem);
    if blocks_per_sm == 0 {
        // Registers or shared memory do not fit even one block.
        let limiter = if by_regs == 0 { Limiter::Registers } else { Limiter::SharedMemory };
        return Occupancy {
            blocks_per_sm: 0,
            warps_per_sm: 0,
            fraction: 0.0,
            limiter,
            device_fill: 0.0,
        };
    }
    let limiter = if blocks_per_sm == by_threads {
        Limiter::Threads
    } else if blocks_per_sm == by_regs {
        Limiter::Registers
    } else {
        Limiter::SharedMemory
    };

    let warps_per_sm = blocks_per_sm * warps_per_block;
    let fraction =
        (warps_per_sm * spec.warp_size) as f64 / spec.max_threads_per_sm as f64;
    let resident_capacity = (spec.sm_count * blocks_per_sm) as f64;
    let device_fill = (cfg.grid_blocks as f64 / resident_capacity).min(1.0);

    Occupancy { blocks_per_sm, warps_per_sm, fraction, limiter, device_fill }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DeviceCatalog;

    #[test]
    fn full_occupancy_on_k20() {
        // 256 threads, no smem, 32 regs: 8 blocks fill 2048 threads/SM.
        let spec = DeviceCatalog::gpu("k20");
        let occ = occupancy(&spec, &LaunchConfig::new(1000, 256, 0, 32));
        assert_eq!(occ.blocks_per_sm, 8);
        assert!((occ.fraction - 1.0).abs() < 1e-12);
        assert_eq!(occ.limiter, Limiter::Threads);
        assert_eq!(occ.device_fill, 1.0);
    }

    #[test]
    fn register_limited_on_fermi() {
        // The paper's Fig. 4 scenario: register-hungry kernels on Fermi
        // (32k registers/SM) are register-limited long before Kepler.
        let fermi = GpuSpec::c2050();
        let kepler = DeviceCatalog::gpu("k20");
        let cfg = LaunchConfig::new(1000, 256, 0, 63);
        let of = occupancy(&fermi, &cfg);
        let ok = occupancy(&kepler, &cfg);
        assert_eq!(of.limiter, Limiter::Registers);
        assert!(ok.fraction > of.fraction);
    }

    #[test]
    fn shared_memory_limited() {
        let spec = DeviceCatalog::gpu("k20");
        // 24 KB smem per block: only 2 blocks per SM fit in 48 KB.
        let occ = occupancy(&spec, &LaunchConfig::new(100, 128, 24 * 1024, 20));
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn oversized_block_is_invalid() {
        let spec = DeviceCatalog::gpu("k20");
        let occ = occupancy(&spec, &LaunchConfig::new(10, 4096, 0, 16));
        assert_eq!(occ.limiter, Limiter::Invalid);
        assert_eq!(occ.fraction, 0.0);
    }

    #[test]
    fn too_many_regs_per_thread_invalid_on_fermi() {
        let spec = GpuSpec::c2050();
        let occ = occupancy(&spec, &LaunchConfig::new(10, 128, 0, 100));
        assert_eq!(occ.limiter, Limiter::Invalid);
    }

    #[test]
    fn small_grid_underfills_device() {
        let spec = DeviceCatalog::gpu("k20");
        // 13 SMs x 8 resident blocks = 104 concurrent blocks; a 26-block
        // grid fills a quarter of the device.
        let occ = occupancy(&spec, &LaunchConfig::new(26, 256, 0, 32));
        assert!((occ.device_fill - 0.25).abs() < 1e-12);
    }

    #[test]
    fn warp_granularity_rounds_up() {
        let spec = DeviceCatalog::gpu("k20");
        // 33 threads allocate 2 warps (64 thread slots).
        let occ = occupancy(&spec, &LaunchConfig::new(1000, 33, 0, 16));
        // 2048 / 64 = 32 blocks, but capped by max_blocks_per_sm = 16.
        assert_eq!(occ.blocks_per_sm, 16);
        assert_eq!(occ.warps_per_sm, 32);
    }

    #[test]
    fn tuned_kernel56_high_occupancy() {
        // §3.2: kernels 5/6 tuned to 32 matrices per block hit 98.3%
        // occupancy. With 32 3x3 matrices one block uses ~9*32 threads
        // rounded to warps; pick 288 threads, 28 regs, 32*9*8*2 B smem.
        let spec = DeviceCatalog::gpu("k20");
        let cfg = LaunchConfig::new(4096, 288, 32 * 9 * 8 * 2, 28);
        let occ = occupancy(&spec, &cfg);
        assert!(occ.fraction > 0.85, "fraction {}", occ.fraction);
    }
}
