//! # gpu-sim
//!
//! A simulated CUDA-like GPU for reproducing the paper's performance and
//! power results without NVIDIA hardware.
//!
//! ## What is real and what is modeled
//!
//! **Real:** every kernel launched on a [`GpuDevice`] *functionally
//! executes* — the launch body runs the actual numerics, with thread blocks
//! dispatched in parallel on the host thread pool (rayon), so all numerical
//! results (and the Table 6 validation) are genuine.
//!
//! **Modeled:** the *reported time and power* of each launch come from an
//! analytic device model fed by the kernel's declared [`Traffic`] (flops and
//! per-level memory bytes, which the kernels in `blast-kernels` compute
//! exactly from the operand shapes):
//!
//! - an **occupancy calculator** (registers / shared memory / thread limits
//!   per SM, like the CUDA occupancy API),
//! - a **roofline timing model**: kernel time is the max of the compute time
//!   and the per-memory-level transfer times, each derated by occupancy,
//! - an **energy-based power model**: every flop and every byte moved at
//!   each level costs a per-event energy, with DRAM ≫ shared-memory cost per
//!   byte (the Hong & Kim ratio the paper cites to explain why the optimized
//!   kernels draw less power), plus an active-power floor and a Hyper-Q
//!   sharing overhead.
//!
//! This reproduces the paper's mechanisms: register spills turn into local-
//! memory (DRAM) traffic and slow kernels down (Fig. 4); shared-memory
//! tiling cuts DRAM traffic and with it both time and power (Figs. 7, 8,
//! 15); occupancy tuning moves kernels along the roofline (Fig. 5).

pub mod catalog;
pub mod cpu;
pub mod device;
pub mod fault;
pub mod occupancy;
pub mod spec;
pub mod traffic;

pub use catalog::{DeviceCatalog, DeviceSpec, DeviceSpecBuilder};
pub use cpu::{CpuDevice, CpuSpec};
pub use device::{GpuDevice, KernelEvent, KernelStats};
pub use fault::{
    apply_flip, derive_fault, fault_draw, fault_seed_from_env, FaultKind, FaultPlan, FaultStats,
    GpuError, RetryPolicy, SdcFault, SdcHit, SdcPlan, SdcSite, TransferDir, FAULT_SEED_ENV,
    NUM_SDC_SITES,
};
pub use occupancy::{occupancy, LaunchConfig, Occupancy};
pub use spec::GpuSpec;
pub use traffic::Traffic;
