//! CPU cost model — the host side of the hybrid system.
//!
//! The paper's baselines run on Xeon X5660 (Westmere, Fermi clusters),
//! Xeon E5-2670 (Sandy Bridge, single-node tests), and AMD Opteron
//! (Titan). For apples-to-apples comparisons against the simulated GPU, CPU
//! phases are costed with the same roofline approach: time is the max of
//! compute time (scaled by the threads in use) and memory time (shared
//! bandwidth), with an imperfect-parallel-scaling factor for the OpenMP
//! analog.

use blast_telemetry::{TelemetrySink, Track};
use parking_lot::Mutex;
use powermon::{CpuPowerModel, CpuPowerState, PowerTrace};

use crate::traffic::Traffic;

/// Static description of a CPU socket (package).
///
/// `PartialEq` compares every field exactly (floats bitwise via `==`),
/// which is what the catalog delegation-parity tests rely on.
#[derive(Clone, Debug, PartialEq)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Physical cores in the package.
    pub cores: u32,
    /// Peak double-precision GFLOP/s of the whole package.
    pub peak_gflops_dp: f64,
    /// Memory bandwidth of the package, GB/s.
    pub dram_bw_gbs: f64,
    /// Parallel efficiency at full thread count (memory contention, NUMA).
    pub parallel_efficiency: f64,
    /// Single-thread GFLOP/s the autotuned host micro-kernels actually
    /// sustain on the corner-force GEMM shape (`None` until
    /// [`CpuSpec::calibrate_host_gflops`] has been fed a measurement,
    /// e.g. from `autotune::host_tiles`).
    pub measured_host_gflops: Option<f64>,
    /// RAPL-style power model.
    pub power: CpuPowerModel,
}

impl CpuSpec {
    /// Intel Xeon E5-2670: 8 cores, 2.6 GHz, AVX (8 DP flops/cycle/core).
    pub fn e5_2670() -> Self {
        Self {
            name: "Xeon E5-2670",
            cores: 8,
            peak_gflops_dp: 166.4,
            dram_bw_gbs: 51.2,
            parallel_efficiency: 0.85,
            measured_host_gflops: None,
            power: CpuPowerModel::e5_2670(),
        }
    }

    /// Intel Xeon X5660: 6 cores, 2.8 GHz, SSE (4 DP flops/cycle/core).
    pub fn x5660() -> Self {
        Self {
            name: "Xeon X5660",
            cores: 6,
            peak_gflops_dp: 67.2,
            dram_bw_gbs: 32.0,
            parallel_efficiency: 0.82,
            measured_host_gflops: None,
            power: CpuPowerModel::x5660(),
        }
    }

    /// AMD Opteron 6274 (Titan): 16 integer cores / 8 FP modules, 2.2 GHz.
    pub fn opteron_6274() -> Self {
        Self {
            name: "Opteron 6274",
            cores: 16,
            peak_gflops_dp: 140.8,
            dram_bw_gbs: 51.2,
            parallel_efficiency: 0.78,
            measured_host_gflops: None,
            power: CpuPowerModel::opteron_6274(),
        }
    }

    /// Ice-Lake-class Xeon (Platinum 8380-like): 40 cores, 2.3 GHz,
    /// AVX-512 (16 DP flops/cycle/core) — the modern host the device
    /// catalog pairs with the FP64-tensor-core GPU.
    pub fn xeon_8380() -> Self {
        Self {
            name: "Xeon Platinum 8380",
            cores: 40,
            peak_gflops_dp: 1472.0,
            dram_bw_gbs: 204.8,
            parallel_efficiency: 0.80,
            measured_host_gflops: None,
            power: CpuPowerModel::xeon_8380(),
        }
    }

    /// Xeon-Phi-class wide-SIMD coprocessor (Knights-Corner-like): 61
    /// in-order cores with 512-bit vectors and GDDR5 — the third leg of
    /// the arXiv:1709.09713 CPU/GPU/Phi energy comparison. Low parallel
    /// efficiency reflects the irregular-code penalty those cores pay.
    pub fn xeon_phi_7120() -> Self {
        Self {
            name: "Xeon Phi 7120",
            cores: 61,
            peak_gflops_dp: 1208.0,
            dram_bw_gbs: 352.0,
            parallel_efficiency: 0.70,
            measured_host_gflops: None,
            power: CpuPowerModel::xeon_phi_7120(),
        }
    }

    /// Every named preset — catalog-wide sanity tests iterate this, so
    /// new presets are covered without editing the tests.
    pub fn presets() -> Vec<CpuSpec> {
        vec![
            Self::e5_2670(),
            Self::x5660(),
            Self::opteron_6274(),
            Self::xeon_8380(),
            Self::xeon_phi_7120(),
        ]
    }

    /// Thread count the host pool will *actually* use (the measured
    /// OpenMP analog: `BLAST_THREADS` / runtime override / detected
    /// parallelism), clamped to this package's core count so the
    /// roofline and RAPL utilization interpolation stay in range.
    pub fn measured_threads(&self) -> u32 {
        (rayon::current_num_threads() as u32).clamp(1, self.cores)
    }

    /// Replaces `parallel_efficiency` with the value inverted from a
    /// measured speedup curve and returns it.
    ///
    /// `samples` holds `(threads, speedup_vs_1_thread)` pairs from a
    /// wall-clock sweep (e.g. the `host_speedup` experiment). The
    /// compute-bound roofline predicts `S(T) = T * (1 + (pe - 1)(T - 1)
    /// / (C - 1))`, so each sample with `T > 1` inverts to
    /// `pe = 1 + (S/T - 1)(C - 1)/(T - 1)`; the calibration averages
    /// those estimates, clamped to `[0.05, 1.0]`. Single-thread samples
    /// carry no efficiency information and are skipped; with no usable
    /// sample the spec is left untouched.
    pub fn calibrate_parallel_efficiency(&mut self, samples: &[(u32, f64)]) -> f64 {
        let c = self.cores as f64;
        let mut acc = 0.0;
        let mut n = 0usize;
        for &(t, s) in samples {
            if t <= 1 || s <= 0.0 {
                continue;
            }
            let t = (t as f64).min(c);
            let pe = 1.0 + (s / t - 1.0) * (c - 1.0) / (t - 1.0);
            acc += pe.clamp(0.05, 1.0);
            n += 1;
        }
        if n > 0 {
            self.parallel_efficiency = acc / n as f64;
        }
        self.parallel_efficiency
    }

    /// Records the single-thread GFLOP/s measured on the tiled host
    /// micro-kernels (e.g. `autotune::host_tiles`' winner) and returns
    /// the implied corner-force flop efficiency. Non-finite or
    /// non-positive measurements are ignored.
    pub fn calibrate_host_gflops(&mut self, gflops: f64) -> Option<f64> {
        if gflops.is_finite() && gflops > 0.0 {
            self.measured_host_gflops = Some(gflops);
        }
        self.host_flop_efficiency()
    }

    /// Fraction of one core's DP peak the measured host micro-kernels
    /// sustain — the *measured* replacement for the modeled
    /// order-dependent corner-force efficiency once
    /// [`CpuSpec::calibrate_host_gflops`] has run. Clamped to `(0, 1]`;
    /// `None` until a measurement is recorded.
    pub fn host_flop_efficiency(&self) -> Option<f64> {
        let per_core_peak = self.peak_gflops_dp / self.cores as f64;
        self.measured_host_gflops.map(|g| (g / per_core_peak).clamp(1e-3, 1.0))
    }

    /// Roofline time for a phase run on `threads` cores. CPU code achieves a
    /// fraction of peak well below 1 even when compute-bound; BLAST's corner
    /// force sustains ~15% of peak on Xeon (unvectorized irregular inner
    /// loops), which `flop_efficiency` captures.
    pub fn phase_time(&self, traffic: &Traffic, threads: u32, flop_efficiency: f64) -> f64 {
        assert!(threads >= 1 && threads <= self.cores, "thread count out of range");
        let frac = threads as f64 / self.cores as f64;
        let par_eff = if threads == 1 {
            1.0
        } else {
            // Linear interpolation between perfect single-thread and
            // `parallel_efficiency` at full package.
            1.0 + (self.parallel_efficiency - 1.0) * (threads - 1) as f64
                / (self.cores - 1) as f64
        };
        let gflops = self.peak_gflops_dp * frac * par_eff * flop_efficiency;
        let t_flop = traffic.flops / (gflops * 1e9);
        // Memory bandwidth is shared by the package; a single thread can
        // drive roughly 40% of it.
        let bw = self.dram_bw_gbs * (0.4 + 0.6 * frac);
        let t_mem = traffic.total_dram_bytes() / (bw * 1e9);
        t_flop.max(t_mem)
    }
}

/// One recorded CPU phase.
#[derive(Clone, Debug)]
pub struct CpuEvent {
    /// Phase name (a static label: phase names are compile-time known, and
    /// a `String` here would put one heap allocation in every hot-path
    /// phase).
    pub name: &'static str,
    /// Simulated start time.
    pub start_s: f64,
    /// Duration, seconds.
    pub time_s: f64,
    /// Package power during the phase, watts.
    pub power_w: f64,
}

#[derive(Debug)]
struct CpuState {
    clock_s: f64,
    trace: PowerTrace,
    events: Vec<CpuEvent>,
    sink: Option<TelemetrySink>,
}

/// A simulated CPU package with a timeline and power trace.
#[derive(Debug)]
pub struct CpuDevice {
    spec: CpuSpec,
    state: Mutex<CpuState>,
}

impl CpuDevice {
    /// Creates a device from a spec.
    pub fn new(spec: CpuSpec) -> Self {
        let idle = spec.power.idle_pkg_w + spec.power.idle_dram_w;
        Self {
            spec,
            state: Mutex::new(CpuState {
                clock_s: 0.0,
                trace: PowerTrace::new(idle),
                events: Vec::new(),
                sink: None,
            }),
        }
    }

    /// Device specification.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Attaches a telemetry sink: every subsequent phase is mirrored as a
    /// [`Track::Host`] span at the exact `(start, duration)` the power
    /// trace bills, so spans and power segments share one time axis.
    pub fn attach_telemetry(&self, sink: TelemetrySink) {
        self.state.lock().sink = Some(sink);
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<TelemetrySink> {
        self.state.lock().sink.clone()
    }

    /// Runs a phase: `body` executes for real; the modeled time/power are
    /// recorded and the simulated clock advances. Returns the body's result
    /// and the modeled time.
    pub fn run_phase<R>(
        &self,
        name: &'static str,
        traffic: &Traffic,
        threads: u32,
        flop_efficiency: f64,
        state: CpuPowerState,
        body: impl FnOnce() -> R,
    ) -> (R, f64) {
        let result = body();
        let time_s = self.spec.phase_time(traffic, threads, flop_efficiency);
        let util = threads as f64 / self.spec.cores as f64;
        let reading = self.spec.power.read(state, util);
        let power_w = reading.pkg_watts + reading.dram_watts;
        let mut st = self.state.lock();
        let start = st.clock_s;
        st.trace.push(start, time_s, power_w);
        st.events.push(CpuEvent { name, start_s: start, time_s, power_w });
        st.clock_s += time_s;
        if let Some(sink) = &st.sink {
            sink.span(Track::Host, name, start, time_s);
        }
        (result, time_s)
    }

    /// Pre-grows the event log and power trace so the next `phases` phase
    /// recordings do not reallocate. Steady-state timesteps are otherwise
    /// allocation-free; this keeps the telemetry side quiet too (used by
    /// the zero-allocation harness before its measurement window).
    pub fn reserve_telemetry(&self, phases: usize) {
        let mut st = self.state.lock();
        st.events.reserve(phases);
        st.trace.reserve(phases);
        if let Some(sink) = &st.sink {
            sink.reserve_spans(phases);
        }
    }

    /// Advances the clock through an idle / waiting gap.
    pub fn idle(&self, seconds: f64) {
        assert!(seconds >= 0.0);
        self.state.lock().clock_s += seconds;
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.state.lock().clock_s
    }

    /// Snapshot of the power trace.
    pub fn power_trace(&self) -> PowerTrace {
        self.state.lock().trace.clone()
    }

    /// Snapshot of recorded events.
    pub fn events(&self) -> Vec<CpuEvent> {
        self.state.lock().events.clone()
    }

    /// Total energy since t = 0, joules.
    pub fn energy_joules(&self) -> f64 {
        let st = self.state.lock();
        st.trace.energy(0.0, st.clock_s)
    }

    /// Clears the timeline.
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.clock_s = 0.0;
        st.trace = PowerTrace::new(self.spec.power.idle_pkg_w + self.spec.power.idle_dram_w);
        st.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_threads_is_faster_but_sublinear() {
        let s = CpuSpec::e5_2670();
        let t = Traffic::compute(1e10);
        let t1 = s.phase_time(&t, 1, 0.5);
        let t8 = s.phase_time(&t, 8, 0.5);
        assert!(t8 < t1);
        let speedup = t1 / t8;
        assert!(speedup > 5.0 && speedup < 8.0, "speedup {speedup}");
    }

    #[test]
    fn memory_bound_phase_limited_by_bandwidth() {
        let s = CpuSpec::e5_2670();
        let t = Traffic { flops: 1e6, dram_bytes: 5.12e9, ..Default::default() };
        let time = s.phase_time(&t, 8, 0.5);
        // 5.12 GB at 51.2 GB/s = 0.1 s.
        assert!((time - 0.1).abs() < 1e-6, "{time}");
    }

    #[test]
    fn phase_recording_advances_clock() {
        let dev = CpuDevice::new(CpuSpec::e5_2670());
        let (v, t) =
            dev.run_phase("corner_force", &Traffic::compute(1e9), 8, 0.2, CpuPowerState::Busy, || 7);
        assert_eq!(v, 7);
        assert!(t > 0.0);
        assert!((dev.now() - t).abs() < 1e-15);
        assert_eq!(dev.events().len(), 1);
    }

    #[test]
    fn busy_power_matches_rapl_model() {
        let dev = CpuDevice::new(CpuSpec::e5_2670());
        dev.run_phase("cf", &Traffic::compute(1e9), 8, 0.2, CpuPowerState::Busy, || ());
        let p = dev.events()[0].power_w;
        // Fully busy E5-2670: 95 W pkg + 15 W DRAM.
        assert!((p - 110.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn offload_power_lower_than_busy() {
        let dev = CpuDevice::new(CpuSpec::e5_2670());
        dev.run_phase("cf", &Traffic::compute(1e9), 8, 0.2, CpuPowerState::Busy, || ());
        dev.run_phase("cf_gpu", &Traffic::compute(1e9), 8, 0.2, CpuPowerState::GpuOffload, || ());
        let ev = dev.events();
        assert!(ev[1].power_w < ev[0].power_w);
    }

    #[test]
    fn energy_accumulates_across_phases() {
        let dev = CpuDevice::new(CpuSpec::x5660());
        dev.run_phase("a", &Traffic::compute(1e9), 6, 0.3, CpuPowerState::Busy, || ());
        dev.idle(0.5);
        dev.run_phase("b", &Traffic::compute(1e9), 6, 0.3, CpuPowerState::Busy, || ());
        let e = dev.energy_joules();
        assert!(e > 0.0);
        // Idle gap billed at idle power.
        let ev = dev.events();
        let active: f64 = ev.iter().map(|e| e.power_w * e.time_s).sum();
        let idle_e = 0.5 * (dev.spec().power.idle_pkg_w + dev.spec().power.idle_dram_w);
        assert!((e - active - idle_e).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "thread count out of range")]
    fn too_many_threads_panics() {
        CpuSpec::x5660().phase_time(&Traffic::compute(1.0), 12, 0.5);
    }

    #[test]
    fn calibration_round_trips_model_speedups() {
        // Speedups generated by the model itself must invert back to
        // the parallel_efficiency that produced them.
        let reference = CpuSpec::e5_2670();
        let t = Traffic::compute(1e10);
        let t1 = reference.phase_time(&t, 1, 0.5);
        let samples: Vec<(u32, f64)> =
            [2u32, 4, 8].iter().map(|&n| (n, t1 / reference.phase_time(&t, n, 0.5))).collect();
        let mut calibrated = CpuSpec { parallel_efficiency: 0.5, ..CpuSpec::e5_2670() };
        let pe = calibrated.calibrate_parallel_efficiency(&samples);
        assert!((pe - reference.parallel_efficiency).abs() < 1e-12, "pe {pe}");
    }

    #[test]
    fn calibration_ignores_unusable_samples() {
        let mut s = CpuSpec::e5_2670();
        let before = s.parallel_efficiency;
        let after = s.calibrate_parallel_efficiency(&[(1, 1.0), (4, -2.0)]);
        assert_eq!(before, after);
    }

    #[test]
    fn measured_threads_stays_in_core_range() {
        let s = CpuSpec::e5_2670();
        let t = s.measured_threads();
        assert!(t >= 1 && t <= s.cores);
        // Must be a valid phase_time argument whatever the host box has.
        s.phase_time(&Traffic::compute(1.0), t, 0.5);
    }

    #[test]
    fn attached_sink_mirrors_phases_on_the_power_time_axis() {
        let dev = CpuDevice::new(CpuSpec::e5_2670());
        let sink = blast_telemetry::Telemetry::sink();
        dev.attach_telemetry(sink.clone());
        dev.run_phase("corner_force", &Traffic::compute(1e9), 8, 0.2, CpuPowerState::Busy, || ());
        dev.idle(0.25);
        dev.run_phase("cg_solver", &Traffic::compute(1e9), 8, 0.2, CpuPowerState::Busy, || ());
        let spans = sink.spans();
        let events = dev.events();
        assert_eq!(spans.len(), events.len());
        for (s, e) in spans.iter().zip(&events) {
            assert_eq!(s.name, e.name);
            assert_eq!(s.start_s, e.start_s);
            assert_eq!(s.dur_s, e.time_s);
        }
        // Every span sits inside the power-trace extent.
        let end = dev.power_trace().end_time();
        assert!(spans.iter().all(|s| s.start_s >= 0.0 && s.end_s() <= end + 1e-15));
    }

    #[test]
    fn presets_have_sane_ratios() {
        // Sandy Bridge has ~2.5x the DP peak of Westmere (paper context for
        // the single-node speedups).
        let snb = CpuSpec::e5_2670();
        let wsm = CpuSpec::x5660();
        assert!(snb.peak_gflops_dp / wsm.peak_gflops_dp > 2.0);
        // Catalog-wide: every preset must be a usable roofline input.
        let presets = CpuSpec::presets();
        assert!(presets.len() >= 5, "preset registry lost entries");
        for s in presets {
            assert!(s.cores >= 1, "{}", s.name);
            assert!(s.peak_gflops_dp > 0.0 && s.dram_bw_gbs > 0.0, "{}", s.name);
            assert!(
                s.parallel_efficiency > 0.0 && s.parallel_efficiency <= 1.0,
                "{}",
                s.name
            );
            assert!(s.measured_host_gflops.is_none(), "{}: presets ship uncalibrated", s.name);
            // Full-package phase_time must be finite and ordered vs 1 thread.
            let t = Traffic::compute(1e9);
            let t1 = s.phase_time(&t, 1, 0.5);
            let tn = s.phase_time(&t, s.cores, 0.5);
            assert!(t1.is_finite() && tn.is_finite() && tn <= t1, "{}", s.name);
        }
        // Every standard-catalog host must be drawn from this registry,
        // so the catalog can never carry a CPU the sweep above missed.
        let names: Vec<&str> = CpuSpec::presets().iter().map(|s| s.name).collect();
        for dev in crate::DeviceCatalog::standard().devices() {
            assert!(
                names.contains(&dev.host.name),
                "catalog device {} uses non-preset host {}",
                dev.id,
                dev.host.name
            );
        }
    }
}
