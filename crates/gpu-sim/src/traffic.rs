//! Kernel traffic profiles: the inputs to the timing and power models.
//!
//! Each simulated kernel declares exactly how much work it does and how many
//! bytes it moves at each level of the memory hierarchy. The `blast-kernels`
//! crate computes these from the operand shapes (zones, quadrature points,
//! basis sizes), so optimization variants differ *only* in where their bytes
//! go — e.g. the register-array variant of kernel 2 moves its workspace
//! traffic to registers (free), while the local-memory variant pays DRAM for
//! every spill (Fig. 4).

/// Work and memory traffic of one kernel launch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Traffic {
    /// Double-precision floating-point operations.
    pub flops: f64,
    /// Bytes moved to/from device memory (DRAM), including uncoalesced
    /// replay overhead.
    pub dram_bytes: f64,
    /// Bytes that hit in L2 (beyond what went to DRAM).
    pub l2_bytes: f64,
    /// Bytes moved through shared memory / L1.
    pub shared_bytes: f64,
    /// Local-memory bytes (register spills) — physically DRAM traffic, kept
    /// separate so Fig. 4 can report it.
    pub local_bytes: f64,
}

impl Traffic {
    /// Pure-compute traffic.
    pub fn compute(flops: f64) -> Self {
        Self { flops, ..Self::default() }
    }

    /// Total bytes that reach the DRAM interface (device + spills).
    pub fn total_dram_bytes(&self) -> f64 {
        self.dram_bytes + self.local_bytes
    }

    /// Arithmetic intensity against DRAM traffic, flops/byte.
    pub fn intensity(&self) -> f64 {
        let b = self.total_dram_bytes();
        if b > 0.0 {
            self.flops / b
        } else {
            f64::INFINITY
        }
    }

    /// Component-wise sum (for aggregating a kernel sequence).
    pub fn add(&self, other: &Traffic) -> Traffic {
        Traffic {
            flops: self.flops + other.flops,
            dram_bytes: self.dram_bytes + other.dram_bytes,
            l2_bytes: self.l2_bytes + other.l2_bytes,
            shared_bytes: self.shared_bytes + other.shared_bytes,
            local_bytes: self.local_bytes + other.local_bytes,
        }
    }

    /// Scales all components (for batching multiples of a unit workload).
    pub fn scale(&self, s: f64) -> Traffic {
        Traffic {
            flops: self.flops * s,
            dram_bytes: self.dram_bytes * s,
            l2_bytes: self.l2_bytes * s,
            shared_bytes: self.shared_bytes * s,
            local_bytes: self.local_bytes * s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_counts_spills() {
        let t = Traffic { flops: 100.0, dram_bytes: 10.0, local_bytes: 10.0, ..Default::default() };
        assert_eq!(t.intensity(), 5.0);
        assert_eq!(t.total_dram_bytes(), 20.0);
    }

    #[test]
    fn compute_only_has_infinite_intensity() {
        assert_eq!(Traffic::compute(1e9).intensity(), f64::INFINITY);
    }

    #[test]
    fn add_and_scale() {
        let a = Traffic { flops: 1.0, dram_bytes: 2.0, l2_bytes: 3.0, shared_bytes: 4.0, local_bytes: 5.0 };
        let b = a.scale(2.0);
        assert_eq!(b.flops, 2.0);
        assert_eq!(b.local_bytes, 10.0);
        let c = a.add(&b);
        assert_eq!(c.dram_bytes, 6.0);
        assert_eq!(c.shared_bytes, 12.0);
    }
}
