//! The simulated GPU device: launch accounting, timing, power, transfers.

use blast_telemetry::{names, TelemetrySink, Track};
use parking_lot::Mutex;
use powermon::PowerTrace;

use crate::fault::{FaultKind, FaultPlan, FaultStats, GpuError, RetryPolicy, TransferDir};
use crate::occupancy::{occupancy, LaunchConfig, Occupancy};
use crate::spec::GpuSpec;
use crate::traffic::Traffic;

/// Modeled outcome of one kernel launch.
#[derive(Clone, Copy, Debug)]
pub struct KernelStats {
    /// Simulated execution time, seconds (includes launch overhead).
    pub time_s: f64,
    /// Mean board power during the kernel, watts.
    pub power_w: f64,
    /// Occupancy analysis of the launch.
    pub occupancy: Occupancy,
    /// Achieved double-precision rate, GFLOP/s.
    pub gflops: f64,
    /// Achieved DRAM bandwidth (including spills), GB/s.
    pub dram_bw_gbs: f64,
    /// Achieved L2 bandwidth, GB/s.
    pub l2_bw_gbs: f64,
    /// Achieved shared/L1 bandwidth, GB/s.
    pub shared_bw_gbs: f64,
}

/// A recorded device event (kernel or transfer).
#[derive(Clone, Debug)]
pub struct KernelEvent {
    /// Kernel (or transfer) name (static: kernel names are compile-time
    /// known, and a `String` here would allocate on every launch).
    pub name: &'static str,
    /// Simulated start time.
    pub start_s: f64,
    /// Stats of the launch.
    pub stats: KernelStats,
    /// Declared traffic.
    pub traffic: Traffic,
    /// Launch configuration (zeroed for transfers).
    pub config: LaunchConfig,
}

#[derive(Debug)]
struct DeviceState {
    clock_s: f64,
    trace: PowerTrace,
    events: Vec<KernelEvent>,
    active_queues: u32,
    allocated: usize,
    faults: FaultPlan,
    retry: RetryPolicy,
    /// Per-site operation counters driving the deterministic fault draws.
    fault_ops: [u64; crate::fault::NUM_FAULT_KINDS],
    fault_stats: FaultStats,
    sink: Option<TelemetrySink>,
}

/// A simulated CUDA device.
///
/// Kernels launched through [`GpuDevice::launch`] really execute (the body
/// runs, typically fanning out over rayon); the device records the *modeled*
/// time/power and advances its simulated clock. See the crate docs for the
/// model description.
#[derive(Debug)]
pub struct GpuDevice {
    spec: GpuSpec,
    state: Mutex<DeviceState>,
}

impl GpuDevice {
    /// Creates a device from a spec.
    pub fn new(spec: GpuSpec) -> Self {
        let idle = spec.idle_w;
        Self {
            spec,
            state: Mutex::new(DeviceState {
                clock_s: 0.0,
                trace: PowerTrace::new(idle),
                events: Vec::new(),
                active_queues: 1,
                allocated: 0,
                faults: FaultPlan::none(),
                retry: RetryPolicy::default(),
                fault_ops: [0; crate::fault::NUM_FAULT_KINDS],
                fault_stats: FaultStats::default(),
                sink: None,
            }),
        }
    }

    /// Device specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Attaches a telemetry sink: every subsequent launch/transfer is
    /// mirrored as a [`Track::Gpu`] span at the exact `(start, duration)`
    /// the power trace bills, along with launch/traffic counters and
    /// occupancy gauges.
    pub fn attach_telemetry(&self, sink: TelemetrySink) {
        self.state.lock().sink = Some(sink);
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<TelemetrySink> {
        self.state.lock().sink.clone()
    }

    /// Sets the number of host processes sharing the device through Hyper-Q
    /// work queues. Clamped to the hardware queue count (1 on Fermi: extra
    /// processes would serialize, which callers model by submitting
    /// sequentially).
    pub fn set_active_queues(&self, n: u32) {
        let q = n.clamp(1, self.spec.hyperq_queues);
        self.state.lock().active_queues = q;
    }

    /// Current active queue count.
    pub fn active_queues(&self) -> u32 {
        self.state.lock().active_queues
    }

    /// Installs a fault-injection plan (and resets the per-site operation
    /// counters, so scheduled faults count from this moment).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        let mut st = self.state.lock();
        st.faults = plan;
        st.fault_ops = [0; crate::fault::NUM_FAULT_KINDS];
    }

    /// Sets the retry policy applied to transient faults.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.state.lock().retry = policy;
    }

    /// Cumulative fault/recovery counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.state.lock().fault_stats
    }

    /// Runs the fault/retry protocol for one operation checked against
    /// `kinds`. Returns `Ok` when the operation may proceed; on a fault,
    /// retries up to the policy bound with exponential backoff charged to
    /// the simulated clock (the trace bills those gaps at idle power).
    fn fault_gate(
        &self,
        kinds: &[FaultKind],
        err: impl Fn(FaultKind, u32) -> GpuError,
    ) -> Result<(), GpuError> {
        let mut st = self.state.lock();
        if !st.faults.is_active() {
            return Ok(());
        }
        let ops: Vec<u64> = kinds
            .iter()
            .map(|k| {
                let i = st.fault_ops[k.index()];
                st.fault_ops[k.index()] += 1;
                i
            })
            .collect();
        let mut attempt: u32 = 0;
        loop {
            let hit = kinds
                .iter()
                .zip(&ops)
                .find(|(k, &op)| st.faults.injects(**k, op, attempt))
                .map(|(k, _)| *k);
            match hit {
                None => {
                    if attempt > 0 {
                        st.fault_stats.recovered += 1;
                    }
                    return Ok(());
                }
                Some(kind) => {
                    st.fault_stats.injected += 1;
                    if attempt >= st.retry.max_retries {
                        st.fault_stats.failed += 1;
                        return Err(err(kind, attempt + 1));
                    }
                    let backoff = st.retry.backoff_s(attempt);
                    st.clock_s += backoff;
                    st.fault_stats.backoff_s += backoff;
                    st.fault_stats.retries += 1;
                    attempt += 1;
                }
            }
        }
    }

    /// Allocates device memory; fails when capacity is exceeded (the paper
    /// hit exactly this: 16^3 was "the maximum size we were able to allocate
    /// with Q4-Q3 elements because of memory limitation for K20") or when
    /// the fault plan injects an allocator OOM. OOM is never retried — the
    /// memory is simply not there.
    pub fn alloc(&self, bytes: usize) -> Result<(), GpuError> {
        let mut st = self.state.lock();
        let oom = |st: &DeviceState| GpuError::Oom {
            device: self.spec.name.to_string(),
            requested: bytes,
            in_use: st.allocated,
            capacity: self.spec.dram_capacity,
        };
        if st.faults.is_active() {
            let op = st.fault_ops[FaultKind::AllocOom.index()];
            st.fault_ops[FaultKind::AllocOom.index()] += 1;
            if st.faults.injects(FaultKind::AllocOom, op, 0) {
                st.fault_stats.injected += 1;
                st.fault_stats.failed += 1;
                return Err(oom(&st));
            }
        }
        if st.allocated + bytes > self.spec.dram_capacity {
            return Err(oom(&st));
        }
        st.allocated += bytes;
        Ok(())
    }

    /// Releases device memory.
    pub fn free(&self, bytes: usize) {
        let mut st = self.state.lock();
        st.allocated = st.allocated.saturating_sub(bytes);
    }

    /// Currently allocated device memory, bytes.
    pub fn allocated_bytes(&self) -> usize {
        self.state.lock().allocated
    }

    /// Pure timing/power model of a launch (no execution, no recording).
    ///
    /// Panics if the configuration cannot run at all (zero occupancy) —
    /// invalid configurations must be pruned beforehand via
    /// [`crate::occupancy::occupancy`], which is what the autotuner does.
    pub fn model_kernel(&self, cfg: &LaunchConfig, traffic: &Traffic) -> KernelStats {
        let queues = self.state.lock().active_queues;
        self.model_kernel_with_queues(cfg, traffic, queues)
    }

    fn model_kernel_with_queues(
        &self,
        cfg: &LaunchConfig,
        traffic: &Traffic,
        queues: u32,
    ) -> KernelStats {
        let s = &self.spec;
        let occ = occupancy(s, cfg);
        assert!(
            occ.fraction > 0.0,
            "invalid launch config on {}: {:?}",
            s.name,
            cfg
        );
        // Hyper-Q: concurrent work from other queues fills idle SMs, so the
        // effective device fill of a small grid improves with queue count.
        let fill = (occ.device_fill * queues as f64).min(1.0);
        let eff_c = (occ.fraction / s.occ_sat_compute).min(1.0) * fill;
        let eff_m = (occ.fraction / s.occ_sat_memory).min(1.0) * fill;

        let t_flop = traffic.flops / (s.peak_gflops_dp * 1e9 * eff_c);
        let t_dram = traffic.total_dram_bytes() / (s.dram_bw_gbs * 1e9 * eff_m);
        let t_l2 = traffic.l2_bytes / (s.l2_bw_gbs * 1e9 * eff_m);
        let t_sh = traffic.shared_bytes / (s.shared_bw_gbs * 1e9 * eff_m);
        let t_exec = t_flop.max(t_dram).max(t_l2).max(t_sh);
        let time_s = s.launch_overhead_us * 1e-6 + t_exec;

        // Energy-based power: every flop/byte costs its per-event energy;
        // spilled (local) bytes pay the row-locality surcharge.
        let dyn_j = (s.e_flop_pj * traffic.flops
            + s.e_dram_pj * traffic.dram_bytes
            + s.e_dram_pj * s.local_energy_factor * traffic.local_bytes
            + s.e_l2_pj * traffic.l2_bytes
            + s.e_shared_pj * traffic.shared_bytes)
            * 1e-12;
        // SM-utilization floor: issue/scheduler/clock power the per-event
        // coefficients miss. On-chip-streaming kernels keep the SMs busy
        // every cycle (sm_busy ~ 1) while paying almost nothing per byte,
        // so without this term their power is badly underestimated — the
        // Fig. 15 Q4-vs-Q2 divergence. DRAM-bound kernels stall the SMs
        // waiting on memory (sm_busy << 1) and gain little.
        let sm_busy = (t_flop.max(t_sh) / t_exec).min(1.0);
        let power_w = (s.active_floor_w
            + s.sm_util_w * fill * sm_busy
            + dyn_j / time_s
            + s.hyperq_w_per_queue * (queues.saturating_sub(1)) as f64)
            .min(s.tdp_w);

        KernelStats {
            time_s,
            power_w,
            occupancy: occ,
            gflops: traffic.flops / time_s / 1e9,
            dram_bw_gbs: traffic.total_dram_bytes() / time_s / 1e9,
            l2_bw_gbs: traffic.l2_bytes / time_s / 1e9,
            shared_bw_gbs: traffic.shared_bytes / time_s / 1e9,
        }
    }

    /// Launches a kernel: runs `body` (the real computation), records the
    /// modeled event, advances the simulated clock, and returns the body's
    /// result alongside the stats.
    ///
    /// Fault injection happens *before* the body runs — a failed launch
    /// never executed, so transient faults retried here and persistent
    /// faults recovered by a CPU fallback both leave the numerics
    /// bit-identical to a fault-free run. Errors surface only once the
    /// retry policy is exhausted.
    pub fn launch<R>(
        &self,
        name: &'static str,
        cfg: &LaunchConfig,
        traffic: &Traffic,
        body: impl FnOnce() -> R,
    ) -> Result<(R, KernelStats), GpuError> {
        self.fault_gate(&[FaultKind::LaunchFail, FaultKind::EccError], |kind, attempts| {
            match kind {
                FaultKind::EccError => GpuError::Ecc { kernel: name.to_string(), attempts },
                _ => GpuError::LaunchFailed { kernel: name.to_string(), attempts },
            }
        })?;
        let result = body();
        let stats = self.model_kernel(cfg, traffic);
        let mut st = self.state.lock();
        let start = st.clock_s;
        st.trace.push(start, stats.time_s, stats.power_w);
        st.events.push(KernelEvent { name, start_s: start, stats, traffic: *traffic, config: *cfg });
        st.clock_s += stats.time_s;
        if let Some(sink) = &st.sink {
            sink.span(Track::Gpu, name, start, stats.time_s);
            sink.counter_add(names::counters::GPU_LAUNCHES, 1);
            sink.counter_add(names::counters::GPU_DRAM_BYTES, traffic.total_dram_bytes() as u64);
            sink.gauge_set(names::gauges::GPU_OCCUPANCY, stats.occupancy.fraction);
            sink.gauge_set(
                names::gauges::GPU_DRAM_UTIL,
                (stats.dram_bw_gbs / self.spec.dram_bw_gbs).min(1.0),
            );
        }
        Ok((result, stats))
    }

    fn transfer(&self, dir: TransferDir, bytes: usize) -> Result<f64, GpuError> {
        let kind = match dir {
            TransferDir::H2d => FaultKind::H2dFail,
            TransferDir::D2h => FaultKind::D2hFail,
        };
        self.fault_gate(&[kind], |_, attempts| GpuError::Transfer {
            direction: dir,
            bytes,
            attempts,
        })?;
        let name = match dir {
            TransferDir::H2d => names::phases::MEMCPY_H2D,
            TransferDir::D2h => names::phases::MEMCPY_D2H,
        };
        let s = &self.spec;
        let time_s = s.pcie_latency_us * 1e-6 + bytes as f64 / (s.pcie_bw_gbs * 1e9);
        // Transfers keep the board awake but exercise little silicon.
        let power_w = s.active_floor_w * 0.85;
        let mut st = self.state.lock();
        let start = st.clock_s;
        st.trace.push(start, time_s, power_w);
        st.events.push(KernelEvent {
            name,
            start_s: start,
            stats: KernelStats {
                time_s,
                power_w,
                occupancy: Occupancy {
                    blocks_per_sm: 0,
                    warps_per_sm: 0,
                    fraction: 0.0,
                    limiter: crate::occupancy::Limiter::Invalid,
                    device_fill: 0.0,
                },
                gflops: 0.0,
                dram_bw_gbs: 0.0,
                l2_bw_gbs: 0.0,
                shared_bw_gbs: 0.0,
            },
            traffic: Traffic::default(),
            config: LaunchConfig::new(0, 0, 0, 0),
        });
        st.clock_s += time_s;
        if let Some(sink) = &st.sink {
            sink.span(Track::Gpu, name, start, time_s);
            let ctr = match dir {
                TransferDir::H2d => names::counters::H2D_BYTES,
                TransferDir::D2h => names::counters::D2H_BYTES,
            };
            sink.counter_add(ctr, bytes as u64);
        }
        Ok(time_s)
    }

    /// Host-to-device copy over PCIe; returns the transfer time. "This leads
    /// to significant reduction in the amount of data transferred between
    /// the CPU and GPU via the relatively slow PCI-E bus" (§3.1.2) — the
    /// hydro GPU path ships only `(v, e, x)` down and the RHS vectors up,
    /// never the full matrix `F`. Fails only when the fault plan injects a
    /// persistent PCIe error (transient ones are retried internally).
    pub fn h2d(&self, bytes: usize) -> Result<f64, GpuError> {
        self.transfer(TransferDir::H2d, bytes)
    }

    /// Device-to-host copy over PCIe; returns the transfer time.
    pub fn d2h(&self, bytes: usize) -> Result<f64, GpuError> {
        self.transfer(TransferDir::D2h, bytes)
    }

    /// Advances the simulated clock through an idle gap (host-side work).
    pub fn idle(&self, seconds: f64) {
        assert!(seconds >= 0.0);
        self.state.lock().clock_s += seconds;
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.state.lock().clock_s
    }

    /// Snapshot of the power trace.
    pub fn power_trace(&self) -> PowerTrace {
        self.state.lock().trace.clone()
    }

    /// Snapshot of all recorded events.
    pub fn events(&self) -> Vec<KernelEvent> {
        self.state.lock().events.clone()
    }

    /// Total energy since t = 0, joules (gaps billed at idle power).
    pub fn energy_joules(&self) -> f64 {
        let st = self.state.lock();
        st.trace.energy(0.0, st.clock_s)
    }

    /// Aggregates events by kernel name: `(name, total_time_s, calls)`,
    /// sorted by descending total time — the Fig. 6 breakdown.
    pub fn kernel_summary(&self) -> Vec<(&'static str, f64, usize)> {
        let st = self.state.lock();
        let mut agg: Vec<(&'static str, f64, usize)> = Vec::new();
        for e in &st.events {
            if let Some(slot) = agg.iter_mut().find(|(n, _, _)| *n == e.name) {
                slot.1 += e.stats.time_s;
                slot.2 += 1;
            } else {
                agg.push((e.name, e.stats.time_s, 1));
            }
        }
        agg.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite times"));
        agg
    }

    /// Clears the trace, events, and clock (keeps allocations and queues).
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.clock_s = 0.0;
        st.trace = PowerTrace::new(self.spec.idle_w);
        st.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DeviceCatalog;

    fn k20() -> GpuDevice {
        GpuDevice::new(DeviceCatalog::gpu("k20"))
    }

    fn full_cfg(blocks: u32) -> LaunchConfig {
        LaunchConfig::new(blocks, 256, 0, 32)
    }

    #[test]
    fn compute_bound_kernel_near_peak() {
        let dev = k20();
        // 1 Gflop of pure compute at full occupancy: ~1/1170 s.
        let t = Traffic::compute(1e9);
        let stats = dev.model_kernel(&full_cfg(10_000), &t);
        assert!(stats.gflops > 0.9 * 1170.0, "{}", stats.gflops);
    }

    #[test]
    fn bandwidth_bound_kernel_near_peak_bw() {
        let dev = k20();
        let t = Traffic { dram_bytes: 1e9, flops: 1e6, ..Default::default() };
        let stats = dev.model_kernel(&full_cfg(10_000), &t);
        assert!(stats.dram_bw_gbs > 0.9 * 208.0, "{}", stats.dram_bw_gbs);
        assert!(stats.dram_bw_gbs <= 208.0 + 1e-9);
    }

    #[test]
    fn local_memory_spills_slow_kernels_down() {
        // Fig. 4 mechanism: the same kernel with its workspace spilled to
        // local memory pays DRAM for every access.
        let dev = k20();
        let regs = Traffic { flops: 1e8, dram_bytes: 1e7, ..Default::default() };
        let spilled = Traffic { local_bytes: 4e8, ..regs };
        let t_regs = dev.model_kernel(&full_cfg(10_000), &regs).time_s;
        let t_spill = dev.model_kernel(&full_cfg(10_000), &spilled).time_s;
        assert!(t_spill > 2.0 * t_regs, "{t_spill} vs {t_regs}");
    }

    #[test]
    fn low_occupancy_hurts_throughput() {
        let dev = k20();
        let t = Traffic::compute(1e9);
        // 8 KB smem per block at 64 threads: occupancy-limited.
        let starved = LaunchConfig::new(10_000, 64, 16 * 1024, 32);
        let full = full_cfg(10_000);
        let s1 = dev.model_kernel(&starved, &t);
        let s2 = dev.model_kernel(&full, &t);
        assert!(s1.occupancy.fraction < s2.occupancy.fraction);
        assert!(s1.time_s > s2.time_s);
    }

    #[test]
    fn launch_executes_body_and_advances_clock() {
        let dev = k20();
        let t = Traffic::compute(1e9);
        let (value, stats) = dev.launch("k_test", &full_cfg(1000), &t, || 41 + 1).unwrap();
        assert_eq!(value, 42);
        assert!(stats.time_s > 0.0);
        assert!((dev.now() - stats.time_s).abs() < 1e-15);
        assert_eq!(dev.events().len(), 1);
        assert_eq!(dev.events()[0].name, "k_test");
    }

    #[test]
    fn power_between_floor_and_tdp() {
        let dev = k20();
        let stats = dev.model_kernel(
            &full_cfg(10_000),
            &Traffic { flops: 1e9, dram_bytes: 5e8, shared_bytes: 1e9, ..Default::default() },
        );
        assert!(stats.power_w >= dev.spec().active_floor_w);
        assert!(stats.power_w <= dev.spec().tdp_w);
    }

    #[test]
    fn dram_heavy_kernel_draws_more_power_than_shared_heavy() {
        // The §5.2 mechanism: for kernels of the same *duration* and flops,
        // bytes served from DRAM cost ~50x more energy than from shared
        // memory, so the DRAM-bound kernel draws more board power. The
        // shared traffic here is sized so both kernels bind at the same
        // execution time (DRAM at 208 GB/s vs shared at 1300 GB/s).
        let dev = k20();
        let cfg = full_cfg(10_000);
        let dram = Traffic { flops: 1e8, dram_bytes: 2e8, ..Default::default() };
        let shared =
            Traffic { flops: 1e8, dram_bytes: 2e7, shared_bytes: 1.25e9, ..Default::default() };
        let p_dram = dev.model_kernel(&cfg, &dram);
        let p_shared = dev.model_kernel(&cfg, &shared);
        assert!(
            (p_dram.time_s - p_shared.time_s).abs() < 0.1 * p_dram.time_s,
            "durations should match: {} vs {}",
            p_dram.time_s,
            p_shared.time_s
        );
        assert!(
            p_dram.power_w > p_shared.power_w,
            "{} vs {}",
            p_dram.power_w,
            p_shared.power_w
        );
        // And the shared-heavy kernel moves 6x the bytes for less energy.
        let e_dram = p_dram.power_w * p_dram.time_s;
        let e_shared = p_shared.power_w * p_shared.time_s;
        assert!(e_shared < e_dram);
    }

    #[test]
    fn hyperq_sharing_adds_power_and_fills_device() {
        let dev = k20();
        let small_grid = LaunchConfig::new(13, 256, 0, 32); // 1 block per SM
        let t = Traffic::compute(1e8);
        let solo = dev.model_kernel(&small_grid, &t);
        dev.set_active_queues(8);
        let shared = dev.model_kernel(&small_grid, &t);
        // More queues -> better fill -> faster per-queue kernels...
        assert!(shared.time_s < solo.time_s);
        // ...but extra power (Fig. 15: 8 MPI draws more than 1 MPI).
        assert!(shared.power_w > solo.power_w);
    }

    #[test]
    fn fermi_has_no_hyperq() {
        let dev = GpuDevice::new(GpuSpec::c2050());
        dev.set_active_queues(8);
        assert_eq!(dev.active_queues(), 1);
    }

    #[test]
    fn transfers_take_pcie_time() {
        let dev = k20();
        let t = dev.h2d(600_000_000).unwrap(); // 0.6 GB
        // 0.6 GB at 6 GB/s = 0.1 s (+latency).
        assert!((t - 0.1).abs() < 1e-3, "{t}");
        assert!(dev.now() >= t);
        let back = dev.d2h(600_000_000).unwrap();
        assert!((back - 0.1).abs() < 1e-3);
        assert_eq!(dev.events().len(), 2);
    }

    #[test]
    fn oom_at_capacity() {
        let dev = k20();
        assert!(dev.alloc(4 * 1024 * 1024 * 1024).is_ok());
        let err = dev.alloc(2 * 1024 * 1024 * 1024).unwrap_err();
        assert!(err.to_string().contains("out of device memory"));
        assert!(!err.is_retryable());
        dev.free(4 * 1024 * 1024 * 1024);
        assert!(dev.alloc(1024).is_ok());
    }

    #[test]
    fn kernel_summary_aggregates_and_sorts() {
        let dev = k20();
        let cfg = full_cfg(1000);
        let big = Traffic::compute(1e9);
        let small = Traffic::compute(1e7);
        dev.launch("small", &cfg, &small, || ()).unwrap();
        dev.launch("big", &cfg, &big, || ()).unwrap();
        dev.launch("small", &cfg, &small, || ()).unwrap();
        let summary = dev.kernel_summary();
        assert_eq!(summary[0].0, "big");
        assert_eq!(summary[1].2, 2); // "small" called twice
    }

    #[test]
    fn energy_integrates_trace() {
        let dev = k20();
        let cfg = full_cfg(1000);
        let (_, stats) = dev.launch("k", &cfg, &Traffic::compute(1e9), || ()).unwrap();
        let e = dev.energy_joules();
        assert!((e - stats.power_w * stats.time_s).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_history_keeps_alloc() {
        let dev = k20();
        dev.alloc(1024).unwrap();
        dev.launch("k", &full_cfg(100), &Traffic::compute(1e6), || ()).unwrap();
        dev.reset();
        assert_eq!(dev.now(), 0.0);
        assert!(dev.events().is_empty());
        assert_eq!(dev.allocated_bytes(), 1024);
    }

    #[test]
    #[should_panic(expected = "invalid launch config")]
    fn invalid_config_panics_in_model() {
        let dev = k20();
        dev.model_kernel(&LaunchConfig::new(10, 4096, 0, 32), &Traffic::compute(1.0));
    }

    #[test]
    fn transient_launch_fault_is_retried_and_charged_as_backoff() {
        let dev = k20();
        dev.set_fault_plan(FaultPlan::seeded(1).with_transient(FaultKind::LaunchFail, 0));
        let policy = RetryPolicy::default();
        let (v, stats) = dev.launch("k", &full_cfg(1000), &Traffic::compute(1e9), || 7).unwrap();
        assert_eq!(v, 7, "the body ran exactly once, after recovery");
        let fs = dev.fault_stats();
        assert_eq!(fs.injected, 1);
        assert_eq!(fs.retries, 1);
        assert_eq!(fs.recovered, 1);
        assert_eq!(fs.failed, 0);
        assert!((fs.backoff_s - policy.backoff_s(0)).abs() < 1e-15);
        // The clock carries kernel time plus the backoff, and the trace
        // bills the backoff gap at idle power.
        assert!((dev.now() - (stats.time_s + fs.backoff_s)).abs() < 1e-15);
        let idle_energy = dev.spec().idle_w * fs.backoff_s;
        let total = dev.energy_joules();
        assert!((total - (stats.power_w * stats.time_s + idle_energy)).abs() < 1e-9);
    }

    #[test]
    fn persistent_launch_fault_exhausts_retries_and_errors() {
        let dev = k20();
        dev.set_fault_plan(FaultPlan::seeded(1).with_persistent(FaultKind::LaunchFail, 0));
        let mut ran = false;
        let err = dev
            .launch("k_dead", &full_cfg(1000), &Traffic::compute(1e9), || ran = true)
            .unwrap_err();
        assert!(!ran, "a failed launch must never execute its body");
        assert_eq!(err, GpuError::LaunchFailed { kernel: "k_dead".into(), attempts: 4 });
        let fs = dev.fault_stats();
        assert_eq!(fs.injected, 4); // initial attempt + 3 retries
        assert_eq!(fs.retries, 3);
        assert_eq!(fs.failed, 1);
        assert_eq!(fs.recovered, 0);
    }

    #[test]
    fn ecc_fault_reports_its_own_error_type() {
        let dev = k20();
        dev.set_fault_plan(FaultPlan::seeded(1).with_persistent(FaultKind::EccError, 0));
        dev.set_retry_policy(RetryPolicy::no_retries());
        let err = dev.launch("k", &full_cfg(1000), &Traffic::compute(1e9), || ()).unwrap_err();
        assert!(matches!(err, GpuError::Ecc { attempts: 1, .. }), "{err:?}");
    }

    #[test]
    fn transfer_faults_attribute_direction() {
        let dev = k20();
        dev.set_fault_plan(
            FaultPlan::seeded(1)
                .with_persistent(FaultKind::H2dFail, 0)
                .with_persistent(FaultKind::D2hFail, 0),
        );
        dev.set_retry_policy(RetryPolicy::no_retries());
        let up = dev.h2d(1024).unwrap_err();
        let down = dev.d2h(2048).unwrap_err();
        assert_eq!(
            up,
            GpuError::Transfer { direction: TransferDir::H2d, bytes: 1024, attempts: 1 }
        );
        assert_eq!(
            down,
            GpuError::Transfer { direction: TransferDir::D2h, bytes: 2048, attempts: 1 }
        );
    }

    #[test]
    fn injected_alloc_oom_reports_capacity_error() {
        let dev = k20();
        dev.set_fault_plan(FaultPlan::seeded(1).with_transient(FaultKind::AllocOom, 0));
        let err = dev.alloc(1024).unwrap_err();
        assert!(err.to_string().contains("out of device memory"));
        assert_eq!(dev.allocated_bytes(), 0);
        // The schedule was transient: the next allocation succeeds.
        assert!(dev.alloc(1024).is_ok());
    }

    #[test]
    fn rate_faults_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let dev = k20();
            dev.set_fault_plan(FaultPlan::seeded(seed).with_rate(FaultKind::LaunchFail, 0.4));
            dev.set_retry_policy(RetryPolicy::no_retries());
            let mut outcomes = Vec::new();
            for _ in 0..64 {
                outcomes.push(
                    dev.launch("k", &full_cfg(1000), &Traffic::compute(1e6), || ()).is_ok(),
                );
            }
            outcomes
        };
        assert_eq!(run(5), run(5), "same seed, same fault pattern");
        assert_ne!(run(5), run(6), "different seeds diverge (w.h.p.)");
        let ok = run(5).iter().filter(|&&o| o).count();
        assert!(ok > 20 && ok < 60, "rate 0.4 without retries: {ok}/64 succeeded");
    }

    #[test]
    fn attached_sink_mirrors_launches_and_transfers() {
        let dev = k20();
        let sink = blast_telemetry::Telemetry::sink();
        dev.attach_telemetry(sink.clone());
        let t = Traffic { flops: 1e9, dram_bytes: 1e8, ..Default::default() };
        dev.launch("k_test", &full_cfg(1000), &t, || ()).unwrap();
        dev.h2d(1024).unwrap();
        dev.d2h(2048).unwrap();
        let spans = sink.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "k_test");
        assert_eq!(spans[1].name, names::phases::MEMCPY_H2D);
        assert_eq!(sink.counter(names::counters::GPU_LAUNCHES), 1);
        assert_eq!(sink.counter(names::counters::GPU_DRAM_BYTES), 1e8 as u64);
        assert_eq!(sink.counter(names::counters::H2D_BYTES), 1024);
        assert_eq!(sink.counter(names::counters::D2H_BYTES), 2048);
        assert!(sink.gauge(names::gauges::GPU_OCCUPANCY).unwrap() > 0.0);
        // Spans reproduce the event timeline exactly and sit inside the
        // power-trace extent.
        let events = dev.events();
        let end = dev.power_trace().end_time();
        for (s, e) in spans.iter().zip(&events) {
            assert_eq!(s.start_s, e.start_s);
            assert_eq!(s.dur_s, e.stats.time_s);
            assert!(s.end_s() <= end + 1e-15);
        }
    }

    #[test]
    fn inactive_plan_costs_nothing() {
        let dev = k20();
        let (_, stats) = dev.launch("k", &full_cfg(1000), &Traffic::compute(1e9), || ()).unwrap();
        assert_eq!(dev.fault_stats(), FaultStats::default());
        assert!((dev.now() - stats.time_s).abs() < 1e-15, "no hidden backoff");
    }
}
