//! Deterministic fault injection for the simulated device.
//!
//! Real CPU-GPU production runs fail in a handful of well-known ways:
//! device allocations exhaust DRAM (the paper hit this at 16^3 Q4-Q3
//! zones), kernel launches sporadically fail, DRAM develops uncorrectable
//! ECC errors, and PCIe transfers time out. A [`FaultPlan`] injects these
//! at configured per-site rates and/or at scheduled operation indices, all
//! drawn from a seeded counter-based generator so a run is exactly
//! reproducible from its seed.
//!
//! Faults are injected *before* the kernel body executes: a failed launch
//! never ran, so retried or CPU-degraded execution stays bit-identical to
//! a fault-free run. The [`RetryPolicy`] governs bounded retries with
//! exponential backoff; backoff is charged to the device clock as idle
//! time, which the power trace bills at idle watts — recovery has a
//! visible, quantified energy cost.

/// Direction of a PCIe transfer, for error attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferDir {
    /// Host to device.
    H2d,
    /// Device to host.
    D2h,
}

impl std::fmt::Display for TransferDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferDir::H2d => write!(f, "h2d"),
            TransferDir::D2h => write!(f, "d2h"),
        }
    }
}

/// A typed device error, attributed to the failing operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GpuError {
    /// Device memory exhausted (real capacity or injected allocator fault).
    Oom {
        /// Device name.
        device: String,
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes already allocated.
        in_use: usize,
        /// Device DRAM capacity.
        capacity: usize,
    },
    /// A kernel launch failed and retries were exhausted.
    LaunchFailed {
        /// Kernel name.
        kernel: String,
        /// Total attempts made (1 + retries).
        attempts: u32,
    },
    /// An uncorrectable ECC/DRAM error was detected at launch.
    Ecc {
        /// Kernel name.
        kernel: String,
        /// Total attempts made (1 + retries).
        attempts: u32,
    },
    /// A PCIe transfer failed and retries were exhausted.
    Transfer {
        /// Transfer direction.
        direction: TransferDir,
        /// Transfer size in bytes.
        bytes: usize,
        /// Total attempts made (1 + retries).
        attempts: u32,
    },
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::Oom { device, requested, in_use, capacity } => write!(
                f,
                "out of device memory on {device}: requested {requested} B with {in_use} of {capacity} B in use"
            ),
            GpuError::LaunchFailed { kernel, attempts } => {
                write!(f, "kernel launch failed: {kernel} ({attempts} attempts)")
            }
            GpuError::Ecc { kernel, attempts } => {
                write!(f, "uncorrectable ECC error in {kernel} ({attempts} attempts)")
            }
            GpuError::Transfer { direction, bytes, attempts } => {
                write!(f, "PCIe {direction} transfer of {bytes} B failed ({attempts} attempts)")
            }
        }
    }
}

impl std::error::Error for GpuError {}

impl From<GpuError> for String {
    fn from(e: GpuError) -> Self {
        e.to_string()
    }
}

impl GpuError {
    /// Whether retrying the same operation can possibly succeed. OOM is
    /// deterministic (the memory is simply not there); the transient
    /// classes may clear on retry.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, GpuError::Oom { .. })
    }
}

/// The injectable fault classes, one per device operation site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// `alloc` reports device OOM.
    AllocOom,
    /// `launch` fails before the kernel runs.
    LaunchFail,
    /// `launch` detects an uncorrectable ECC/DRAM error.
    EccError,
    /// `h2d` transfer fails.
    H2dFail,
    /// `d2h` transfer fails.
    D2hFail,
}

/// Number of [`FaultKind`] variants (rate/counter array size).
pub const NUM_FAULT_KINDS: usize = 5;

/// Environment variable overriding fault seeds across the whole stack.
///
/// Read in exactly one place ([`fault_seed_from_env`]); every constructor
/// that honors the override goes through it, so `BLAST_FAULT_SEED=42` on a
/// test or example reproduces one specific chaos draw everywhere.
pub const FAULT_SEED_ENV: &str = "BLAST_FAULT_SEED";

/// Parses [`FAULT_SEED_ENV`] if set to a valid `u64`; `None` otherwise.
pub fn fault_seed_from_env() -> Option<u64> {
    std::env::var(FAULT_SEED_ENV).ok().and_then(|v| v.trim().parse::<u64>().ok())
}

impl FaultKind {
    /// Dense index for per-kind arrays.
    pub fn index(self) -> usize {
        match self {
            FaultKind::AllocOom => 0,
            FaultKind::LaunchFail => 1,
            FaultKind::EccError => 2,
            FaultKind::H2dFail => 3,
            FaultKind::D2hFail => 4,
        }
    }
}

/// A fault scheduled at a specific operation index of its site.
///
/// `persistent: false` fails only the first attempt of that operation (a
/// transient glitch a retry clears); `persistent: true` fails every attempt
/// of that operation and every later one — the device is gone for good,
/// which is what drives the solver's CPU fallback.
#[derive(Clone, Copy, Debug)]
pub struct ScheduledFault {
    /// Which site fails.
    pub kind: FaultKind,
    /// 0-based operation index at the site where the fault first fires.
    pub at_op: u64,
    /// Whether the fault persists for all subsequent attempts and ops.
    pub persistent: bool,
}

/// Seeded fault-injection plan: per-site random rates plus scheduled
/// deterministic faults.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for the rate draws; the same seed reproduces the same faults.
    pub seed: u64,
    rates: [f64; NUM_FAULT_KINDS],
    scheduled: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// A plan injecting nothing (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty seeded plan; add rates/schedules with the builders.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Like [`FaultPlan::seeded`], but [`FAULT_SEED_ENV`] overrides
    /// `default_seed` when set.
    pub fn seeded_from_env(default_seed: u64) -> Self {
        Self::seeded(fault_seed_from_env().unwrap_or(default_seed))
    }

    /// Sets the per-operation fault probability of one site.
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate out of [0,1]");
        self.rates[kind.index()] = rate;
        self
    }

    /// Schedules a transient fault: the `at_op`-th operation of `kind`
    /// fails once, then its retry succeeds.
    pub fn with_transient(mut self, kind: FaultKind, at_op: u64) -> Self {
        self.scheduled.push(ScheduledFault { kind, at_op, persistent: false });
        self
    }

    /// Schedules a persistent fault: from the `at_op`-th operation of
    /// `kind` onward, every attempt fails (the device is lost).
    pub fn with_persistent(mut self, kind: FaultKind, at_op: u64) -> Self {
        self.scheduled.push(ScheduledFault { kind, at_op, persistent: true });
        self
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.rates.iter().any(|&r| r > 0.0) || !self.scheduled.is_empty()
    }

    /// Decides whether attempt `attempt` of operation `op` at site `kind`
    /// faults. Pure function of `(plan, kind, op, attempt)` — thread
    /// interleaving cannot change the outcome.
    pub fn injects(&self, kind: FaultKind, op: u64, attempt: u32) -> bool {
        for s in &self.scheduled {
            if s.kind != kind {
                continue;
            }
            if s.persistent && op >= s.at_op {
                return true;
            }
            if !s.persistent && op == s.at_op && attempt == 0 {
                return true;
            }
        }
        let rate = self.rates[kind.index()];
        if rate <= 0.0 {
            return false;
        }
        // Independent draw per (site, op, attempt): a retried attempt
        // re-rolls, so transient rate faults clear with probability 1-rate.
        fault_draw(self.seed, kind.index() as u64, op * 64 + attempt as u64) < rate
    }
}

/// Counter-based splitmix64 draw in `[0, 1)`.
///
/// Shared by the fault-plan rate draws and the retry policy's
/// deterministic backoff jitter: a pure function of
/// `(seed, stream, counter)`, so neither thread interleaving nor call
/// order can change an outcome.
pub fn fault_draw(seed: u64, stream: u64, counter: u64) -> f64 {
    let mut z = seed
        ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ counter.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draw stream reserved for retry-backoff jitter (disjoint from the
/// [`FaultKind::index`] streams 0..=4 used by rate draws).
const JITTER_STREAM: u64 = 0x0BAC_C0FF;

/// Bounded-retry policy with capped, jittered exponential backoff.
///
/// Backoff is *simulated* time: each failed attempt advances the device
/// clock, and the power trace bills the gap at idle watts, so recovery has
/// a measurable energy cost (see `ResilienceReport` in `powermon`).
///
/// The same type governs two retry ladders: device-operation retries
/// inside `GpuDevice` (its original home) and whole-job retries in
/// `blast-serve` (via the canonical re-export in `blast_core::retry`).
/// The default is the plain uncapped, jitter-free exponential the device
/// always used; job-level users opt into a cap ([`Self::with_cap`]) and
/// deterministic seed-driven jitter ([`Self::with_jitter`]) to avoid
/// retry storms synchronizing across tenants.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (total attempts = 1 + this).
    pub max_retries: u32,
    /// Backoff charged after the first failed attempt, seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff after each further failure.
    pub multiplier: f64,
    /// Hard ceiling on a single backoff wait, seconds (applied *after*
    /// jitter, so the cap is absolute). Infinite by default.
    pub max_backoff_s: f64,
    /// Jitter fraction in `[0, 1]`: each wait is scaled by a deterministic
    /// factor in `[1 - jitter, 1 + jitter)` drawn from
    /// [`fault_draw`]`(jitter_seed, _, attempt)`. Zero (the default)
    /// reproduces the exact historical backoff bit-for-bit.
    pub jitter: f64,
    /// Seed of the jitter draws; give each job its own seed so their
    /// retry schedules decorrelate.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // ~CUDA driver-level retry scale: microseconds-to-milliseconds.
        Self {
            max_retries: 3,
            base_backoff_s: 100e-6,
            multiplier: 4.0,
            max_backoff_s: f64::INFINITY,
            jitter: 0.0,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// No retries: the first fault is final.
    pub fn no_retries() -> Self {
        Self { max_retries: 0, ..Self::default() }
    }

    /// Caps every individual backoff wait at `seconds`.
    #[must_use]
    pub fn with_cap(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "backoff cap must be positive");
        self.max_backoff_s = seconds;
        self
    }

    /// Enables deterministic jitter: waits scale by `[1 - frac, 1 + frac)`
    /// drawn from `seed` (pure function of `(seed, attempt)`).
    #[must_use]
    pub fn with_jitter(mut self, frac: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "jitter fraction out of [0,1]");
        self.jitter = frac;
        self.jitter_seed = seed;
        self
    }

    /// Backoff charged after failed attempt number `attempt` (0-based):
    /// exponential, then jittered, then capped.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        let mut wait = self.base_backoff_s * self.multiplier.powi(attempt as i32);
        if self.jitter > 0.0 {
            let u = fault_draw(self.jitter_seed, JITTER_STREAM, attempt as u64);
            wait *= 1.0 + self.jitter * (2.0 * u - 1.0);
        }
        wait.min(self.max_backoff_s)
    }

    /// Whether the policy gives up after `retries_done` retries have
    /// already been spent (i.e. no further attempt is allowed).
    pub fn gives_up_after(&self, retries_done: u32) -> bool {
        retries_done >= self.max_retries
    }
}

/// Draw stream reserved for deriving SDC flip parameters (bit position and
/// victim lane) — disjoint from the [`FaultKind::index`] streams 0..=4 and
/// from [`JITTER_STREAM`].
const SDC_STREAM: u64 = 0x5DC_B17F;

/// Where a planned silent bit flip lands.
///
/// The sites mirror the data-motion stations of one hydro step: resident
/// device buffers (the freshly computed accelerations), D2H transfer
/// payloads (the energy-rate vector shipped back to the host), the host
/// state arrays `(v, e, x)` after the step commit, and the operand/result
/// panels of the tiled GEMM hot path (armed through `blast_la::abft`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SdcSite {
    /// A device-resident buffer (the momentum solve's acceleration vector).
    DeviceBuffer,
    /// A D2H transfer payload (the energy-rate vector).
    TransferPayload,
    /// A committed host state array (`v`, `e` or `x`, selected by the lane).
    HostState,
    /// A GEMM output panel inside the tiled `blast-la` hot path.
    GemmPanel,
}

/// Number of [`SdcSite`] variants.
pub const NUM_SDC_SITES: usize = 4;

impl SdcSite {
    /// Dense index for per-site derivation streams.
    pub fn index(self) -> usize {
        match self {
            SdcSite::DeviceBuffer => 0,
            SdcSite::TransferPayload => 1,
            SdcSite::HostState => 2,
            SdcSite::GemmPanel => 3,
        }
    }

    /// All sites, in index order (campaign sweeps iterate this).
    pub const ALL: [SdcSite; NUM_SDC_SITES] =
        [SdcSite::DeviceBuffer, SdcSite::TransferPayload, SdcSite::HostState, SdcSite::GemmPanel];
}

impl std::fmt::Display for SdcSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SdcSite::DeviceBuffer => write!(f, "device-buffer"),
            SdcSite::TransferPayload => write!(f, "transfer-payload"),
            SdcSite::HostState => write!(f, "host-state"),
            SdcSite::GemmPanel => write!(f, "gemm-panel"),
        }
    }
}

/// One planned silent bit flip.
///
/// `bit` is the IEEE-754 bit to XOR (high mantissa / exponent range — see
/// [`SdcPlan::flip_bit_range`]); `lane` deterministically selects the
/// victim element among the significant entries of the target buffer.
/// A transient flip fires exactly once, at step-attempt ordinal `at_step`;
/// a persistent flip re-fires on every attempt from `at_step` onward (a
/// stuck bit that no in-place redo can clear — the lethal-burst case).
#[derive(Clone, Copy, Debug)]
pub struct SdcFault {
    /// Which data-motion station the flip corrupts.
    pub site: SdcSite,
    /// 0-based step-attempt ordinal at which the flip (first) fires.
    pub at_step: u64,
    /// IEEE-754 bit index to XOR (0 = mantissa LSB, 62 = exponent MSB).
    pub bit: u32,
    /// Selects the victim element among significant entries of the buffer.
    pub lane: u64,
    /// Whether the flip re-fires on every later attempt (stuck bit).
    pub persistent: bool,
}

/// Outcome of applying one flip to a concrete buffer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SdcHit {
    /// Index of the flipped element.
    pub index: usize,
    /// Value before the flip.
    pub before: f64,
    /// Value after the flip.
    pub after: f64,
}

/// Seeded plan of silent-data-corruption bit flips.
///
/// Like [`FaultPlan`], the plan is a pure function of its seed: the bit
/// position and victim lane of each flip are derived from
/// `(seed, site, fault ordinal)` through [`fault_draw`], so a campaign run
/// is exactly replayable from `BLAST_FAULT_SEED`. Fired transient flips
/// are tracked with interior mutability so a rolled-back step redo
/// re-executes clean — exactly how a one-shot particle strike behaves.
#[derive(Clone, Debug, Default)]
pub struct SdcPlan {
    /// Seed of the flip-parameter draws.
    pub seed: u64,
    faults: Vec<SdcFault>,
    fired: std::cell::RefCell<Vec<bool>>,
}

impl SdcPlan {
    /// Bits eligible for injected flips: high mantissa (44..=51, relative
    /// perturbation `2^-8..2^-1`) and exponent (52..=62). Flips below this
    /// range perturb the value by less than ~4e-3 relative and model the
    /// benign strikes the auditor is *allowed* to miss; the campaign gate
    /// is about the detectable ones.
    pub const FLIP_BIT_LO: u32 = 44;
    /// Upper end (inclusive) of the injected flip bit range.
    pub const FLIP_BIT_HI: u32 = 62;

    /// A plan injecting nothing (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty seeded plan; add flips with the builders.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Like [`SdcPlan::seeded`], but [`FAULT_SEED_ENV`] overrides
    /// `default_seed` when set.
    pub fn seeded_from_env(default_seed: u64) -> Self {
        Self::seeded(fault_seed_from_env().unwrap_or(default_seed))
    }

    /// Schedules one transient flip at `site` on step-attempt `at_step`,
    /// with bit and lane derived from the plan seed.
    #[must_use]
    pub fn with_flip(self, site: SdcSite, at_step: u64) -> Self {
        self.push_derived(site, at_step, false)
    }

    /// Schedules a persistent (stuck-bit) flip: it re-fires on every
    /// attempt from `at_step` onward, so no in-place redo can clear it.
    #[must_use]
    pub fn with_persistent_flip(self, site: SdcSite, at_step: u64) -> Self {
        self.push_derived(site, at_step, true)
    }

    /// Schedules a fully explicit flip (tests pin exact bits).
    #[must_use]
    pub fn with_flip_at(mut self, fault: SdcFault) -> Self {
        self.arm(fault);
        self
    }

    /// Adds a flip to an already-installed plan — the serve chaos stream
    /// arms mid-run flips through `Hydro::arm_sdc_fault` this way.
    pub fn arm(&mut self, fault: SdcFault) {
        assert!(fault.bit <= 62, "bit 63 (the sign of a sum) is not a silent flip model");
        self.faults.push(fault);
        self.fired.borrow_mut().push(false);
    }

    fn push_derived(self, site: SdcSite, at_step: u64, persistent: bool) -> Self {
        let ordinal = self.faults.len() as u64;
        let fault = derive_fault(self.seed, site, at_step, ordinal, persistent);
        self.with_flip_at(fault)
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Planned flips (fired or not), for campaign reporting.
    pub fn faults(&self) -> &[SdcFault] {
        &self.faults
    }

    /// Returns the flip to apply at `site` on step-attempt `step`, if any.
    ///
    /// Transient flips are consumed (a later attempt of the same step — a
    /// rollback redo — re-executes clean); persistent flips re-fire on
    /// every attempt from their `at_step` onward.
    pub fn take(&self, site: SdcSite, step: u64) -> Option<SdcFault> {
        let mut fired = self.fired.borrow_mut();
        for (i, f) in self.faults.iter().enumerate() {
            if f.site != site {
                continue;
            }
            if f.persistent && step >= f.at_step {
                return Some(*f);
            }
            if !f.persistent && step == f.at_step && !fired[i] {
                fired[i] = true;
                return Some(*f);
            }
        }
        None
    }
}

/// Derives a concrete [`SdcFault`] from `(seed, site, ordinal)` — the pure
/// function behind [`SdcPlan::with_flip`], exposed so `blast-core` can arm
/// chaos-stream flips with the same replayable derivation.
pub fn derive_fault(
    seed: u64,
    site: SdcSite,
    at_step: u64,
    ordinal: u64,
    persistent: bool,
) -> SdcFault {
    let stream = SDC_STREAM + site.index() as u64;
    let span = (SdcPlan::FLIP_BIT_HI - SdcPlan::FLIP_BIT_LO + 1) as f64;
    let bit = SdcPlan::FLIP_BIT_LO + (fault_draw(seed, stream, 2 * ordinal) * span) as u32;
    let lane = (fault_draw(seed, stream, 2 * ordinal + 1) * (1u64 << 53) as f64) as u64;
    SdcFault { site, at_step, bit: bit.min(SdcPlan::FLIP_BIT_HI), lane, persistent }
}

/// XORs `fault.bit` into one significant element of `buf` and returns what
/// changed, or `None` if the buffer has no significant entry to corrupt
/// (all zeros — a flip on a zero background is outside the model).
///
/// The victim is chosen among entries with `|x| >= 0.1 * max|x|` (the
/// `lane`-th such entry, wrapping), so every injected flip perturbs data
/// that actually participates in the physics instead of vanishing into a
/// denormal nobody reads — the adversarial case a detector must catch.
pub fn apply_flip(buf: &mut [f64], fault: &SdcFault) -> Option<SdcHit> {
    let max_abs = buf.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
    if max_abs <= 0.0 || !max_abs.is_finite() {
        return None;
    }
    let threshold = 0.1 * max_abs;
    let eligible = buf.iter().filter(|x| x.abs() >= threshold).count();
    debug_assert!(eligible > 0);
    let pick = (fault.lane % eligible as u64) as usize;
    let index = buf
        .iter()
        .enumerate()
        .filter(|(_, x)| x.abs() >= threshold)
        .nth(pick)
        .map(|(i, _)| i)?;
    let before = buf[index];
    let after = f64::from_bits(before.to_bits() ^ (1u64 << fault.bit));
    buf[index] = after;
    Some(SdcHit { index, before, after })
}

/// Cumulative fault/recovery counters for one device.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultStats {
    /// Individual fault events injected (every failed attempt counts).
    pub injected: u64,
    /// Retry attempts performed.
    pub retries: u64,
    /// Operations that succeeded after at least one fault.
    pub recovered: u64,
    /// Operations that returned an error to the caller.
    pub failed: u64,
    /// Simulated seconds spent in retry backoff (billed at idle power).
    pub backoff_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_seed_overrides_the_default() {
        // Sole test touching FAULT_SEED_ENV, so no cross-test races.
        std::env::remove_var(FAULT_SEED_ENV);
        assert_eq!(fault_seed_from_env(), None);
        assert_eq!(FaultPlan::seeded_from_env(7).seed, 7);
        std::env::set_var(FAULT_SEED_ENV, " 42 ");
        assert_eq!(fault_seed_from_env(), Some(42));
        assert_eq!(FaultPlan::seeded_from_env(7).seed, 42);
        std::env::set_var(FAULT_SEED_ENV, "not-a-seed");
        assert_eq!(FaultPlan::seeded_from_env(7).seed, 7, "garbage falls back");
        std::env::remove_var(FAULT_SEED_ENV);
    }

    #[test]
    fn inactive_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for op in 0..100 {
            assert!(!plan.injects(FaultKind::LaunchFail, op, 0));
        }
    }

    #[test]
    fn rate_one_always_injects_rate_zero_never() {
        let plan = FaultPlan::seeded(1).with_rate(FaultKind::EccError, 1.0);
        for op in 0..50 {
            assert!(plan.injects(FaultKind::EccError, op, 0));
            assert!(!plan.injects(FaultKind::LaunchFail, op, 0));
        }
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(7).with_rate(FaultKind::H2dFail, 0.3);
        let b = FaultPlan::seeded(7).with_rate(FaultKind::H2dFail, 0.3);
        let c = FaultPlan::seeded(8).with_rate(FaultKind::H2dFail, 0.3);
        let pattern = |p: &FaultPlan| -> Vec<bool> {
            (0..256).map(|op| p.injects(FaultKind::H2dFail, op, 0)).collect()
        };
        assert_eq!(pattern(&a), pattern(&b));
        assert_ne!(pattern(&a), pattern(&c));
        let hits = pattern(&a).iter().filter(|&&h| h).count();
        assert!(hits > 40 && hits < 120, "rate 0.3 of 256: got {hits}");
    }

    #[test]
    fn transient_schedule_fails_first_attempt_only() {
        let plan = FaultPlan::seeded(0).with_transient(FaultKind::LaunchFail, 3);
        assert!(!plan.injects(FaultKind::LaunchFail, 2, 0));
        assert!(plan.injects(FaultKind::LaunchFail, 3, 0));
        assert!(!plan.injects(FaultKind::LaunchFail, 3, 1), "retry clears it");
        assert!(!plan.injects(FaultKind::LaunchFail, 4, 0));
    }

    #[test]
    fn persistent_schedule_fails_all_later_attempts() {
        let plan = FaultPlan::seeded(0).with_persistent(FaultKind::LaunchFail, 5);
        assert!(!plan.injects(FaultKind::LaunchFail, 4, 3));
        for op in 5..10 {
            for attempt in 0..4 {
                assert!(plan.injects(FaultKind::LaunchFail, op, attempt));
            }
        }
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff_s: 1e-4,
            multiplier: 4.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_s(0), 1e-4);
        assert_eq!(p.backoff_s(1), 4e-4);
        assert_eq!(p.backoff_s(2), 16e-4);
    }

    #[test]
    fn backoff_cap_is_a_hard_ceiling() {
        let p = RetryPolicy::default().with_cap(5e-4);
        assert_eq!(p.backoff_s(0), 1e-4, "below the cap: untouched");
        assert_eq!(p.backoff_s(1), 4e-4);
        assert_eq!(p.backoff_s(2), 5e-4, "16e-4 clamps to the cap");
        assert_eq!(p.backoff_s(9), 5e-4, "deep attempts stay capped");
        // The cap is absolute: even maximal upward jitter cannot pierce it.
        let pj = p.with_jitter(1.0, 123);
        for attempt in 0..16 {
            assert!(pj.backoff_s(attempt) <= 5e-4 + 1e-18);
        }
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_seed_sensitive() {
        let base = RetryPolicy::default();
        let a = base.with_jitter(0.5, 7);
        let b = base.with_jitter(0.5, 7);
        let c = base.with_jitter(0.5, 8);
        let schedule = |p: &RetryPolicy| -> Vec<f64> {
            (0..8).map(|k| p.backoff_s(k)).collect()
        };
        assert_eq!(schedule(&a), schedule(&b), "same seed, same schedule");
        assert_ne!(schedule(&a), schedule(&c), "seed must matter");
        for attempt in 0..8 {
            let raw = base.backoff_s(attempt);
            let j = a.backoff_s(attempt);
            assert!(j >= raw * 0.5 - 1e-18 && j < raw * 1.5, "attempt {attempt}: {j} vs {raw}");
        }
        // jitter = 0 reproduces the historical schedule bit-for-bit.
        assert_eq!(schedule(&base), schedule(&base.with_jitter(0.0, 999)));
    }

    #[test]
    fn give_up_boundary_matches_max_retries() {
        let p = RetryPolicy { max_retries: 2, ..RetryPolicy::default() };
        assert!(!p.gives_up_after(0));
        assert!(!p.gives_up_after(1));
        assert!(p.gives_up_after(2));
        assert!(RetryPolicy::no_retries().gives_up_after(0));
    }

    #[test]
    fn oom_is_not_retryable_but_transients_are() {
        let oom = GpuError::Oom { device: "K20".into(), requested: 1, in_use: 0, capacity: 0 };
        assert!(!oom.is_retryable());
        assert!(GpuError::LaunchFailed { kernel: "k".into(), attempts: 1 }.is_retryable());
        assert!(GpuError::Ecc { kernel: "k".into(), attempts: 1 }.is_retryable());
        let t = GpuError::Transfer { direction: TransferDir::H2d, bytes: 8, attempts: 1 };
        assert!(t.is_retryable());
    }

    #[test]
    fn sdc_plan_is_deterministic_and_seed_sensitive() {
        let a = SdcPlan::seeded(7).with_flip(SdcSite::HostState, 3);
        let b = SdcPlan::seeded(7).with_flip(SdcSite::HostState, 3);
        let c = SdcPlan::seeded(8).with_flip(SdcSite::HostState, 3);
        let fa = a.faults()[0];
        let fb = b.faults()[0];
        let fc = c.faults()[0];
        assert_eq!((fa.bit, fa.lane), (fb.bit, fb.lane), "same seed, same flip");
        assert_ne!((fa.bit, fa.lane), (fc.bit, fc.lane), "seed must matter");
        assert!((SdcPlan::FLIP_BIT_LO..=SdcPlan::FLIP_BIT_HI).contains(&fa.bit));
    }

    #[test]
    fn transient_flip_fires_once_then_redo_is_clean() {
        let plan = SdcPlan::seeded(1).with_flip(SdcSite::DeviceBuffer, 5);
        assert!(plan.take(SdcSite::DeviceBuffer, 4).is_none());
        assert!(plan.take(SdcSite::TransferPayload, 5).is_none(), "wrong site");
        assert!(plan.take(SdcSite::DeviceBuffer, 5).is_some());
        assert!(plan.take(SdcSite::DeviceBuffer, 5).is_none(), "consumed");
        assert!(plan.take(SdcSite::DeviceBuffer, 6).is_none());
    }

    #[test]
    fn persistent_flip_refires_every_attempt() {
        let plan = SdcPlan::seeded(1).with_persistent_flip(SdcSite::HostState, 5);
        assert!(plan.take(SdcSite::HostState, 4).is_none());
        for step in 5..9 {
            assert!(plan.take(SdcSite::HostState, step).is_some(), "step {step}");
        }
    }

    #[test]
    fn apply_flip_targets_a_significant_entry() {
        let fault = SdcFault {
            site: SdcSite::HostState,
            at_step: 0,
            bit: 52,
            lane: 1,
            persistent: false,
        };
        // Entries below 10% of the max are ineligible victims.
        let mut buf = vec![1e-6, 2.0, 1e-9, -1.5, 0.05];
        let hit = apply_flip(&mut buf, &fault).expect("significant entries exist");
        assert!(hit.index == 1 || hit.index == 3, "victim must be significant");
        let ratio = hit.after / hit.before;
        assert!(ratio == 2.0 || ratio == 0.5, "exponent-LSB flip scales by 2 or 1/2");
        assert_eq!(buf[hit.index], hit.after);

        let mut zeros = vec![0.0; 8];
        assert!(apply_flip(&mut zeros, &fault).is_none(), "zero background: no-op");
    }

    #[test]
    fn oom_display_keeps_the_canonical_phrase() {
        let oom = GpuError::Oom { device: "K20".into(), requested: 10, in_use: 5, capacity: 8 };
        let s: String = oom.into();
        assert!(s.contains("out of device memory on K20"));
        assert!(s.contains("requested 10 B with 5 of 8 B in use"));
    }
}
