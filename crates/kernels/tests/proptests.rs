//! Property-based tests on the kernel suite's invariants.

use blast_kernels::k1::AdjugateDetKernel;
use blast_kernels::k56::{BatchedDimGemm, Transpose};
use blast_kernels::k7::FzKernel;
use blast_kernels::k8_10::{EnergyRhsKernel, MomentumRhsKernel};
use blast_kernels::ProblemShape;
use blast_la::{BatchedMats, DMatrix, SmallMat};
use proptest::prelude::*;

fn well_conditioned_jacobians(count: usize, seed: Vec<f64>) -> BatchedMats {
    BatchedMats::from_fn(3, 3, count, |z, i, j| {
        let s = seed[(z + i * 2 + j) % seed.len()];
        if i == j {
            1.0 + 0.2 * s
        } else {
            0.1 * s
        }
    })
}

proptest! {
    #[test]
    fn k1_adjugate_identity_and_positive_hmin(
        seed in proptest::collection::vec(-1.0..1.0f64, 8),
    ) {
        let shape = ProblemShape::new(3, 1, 2);
        let n = shape.total_points();
        let jac = well_conditioned_jacobians(n, seed);
        let mut adj = BatchedMats::zeros(3, 3, n);
        let mut det = vec![0.0; n];
        let mut hmin = vec![0.0; n];
        AdjugateDetKernel::compute(&shape, &jac, &mut adj, &mut det, &mut hmin);
        for p in 0..n {
            let j = SmallMat::<3>::from_col_slice(jac.mat(p));
            let a = SmallMat::<3>::from_col_slice(adj.mat(p));
            let prod = j * a;
            for r in 0..3 {
                for c in 0..3 {
                    let expect = if r == c { det[p] } else { 0.0 };
                    prop_assert!((prod[(r, c)] - expect).abs() < 1e-10);
                }
            }
            prop_assert!(hmin[p] > 0.0);
            prop_assert!(det[p] > 0.0, "diag-dominant J must be orientation-preserving");
        }
    }

    #[test]
    fn k56_agrees_with_reference_for_all_batch_factors(
        mats_per_block in 1u32..64,
        seed in proptest::collection::vec(-2.0..2.0f64, 6),
    ) {
        let count = 40;
        let a = BatchedMats::from_fn(2, 2, count, |z, i, j| seed[(z + i + j) % 6] * 0.7);
        let b = BatchedMats::from_fn(2, 2, count, |z, i, j| seed[(z * 2 + i + j) % 6] * 0.3);
        let k = BatchedDimGemm { transpose: Transpose::NN, mats_per_block };
        let mut c = BatchedMats::zeros(2, 2, count);
        k.compute(&a, &b, None, &mut c);
        let mut expect = BatchedMats::zeros(2, 2, count);
        blast_la::batched_gemm_nn(1.0, &a, &b, 0.0, &mut expect);
        for (x, y) in c.as_slice().iter().zip(expect.as_slice()) {
            prop_assert!((x - y).abs() < 1e-13);
        }
    }

    #[test]
    fn momentum_energy_duality_random_forces(
        fz_seed in proptest::collection::vec(-1.0..1.0f64, 16),
        v_seed in proptest::collection::vec(-1.0..1.0f64, 8),
    ) {
        // The discrete conservation identity behind Table 6:
        // v^T scatter(-F 1) + 1^T (F^T v) = 0 for ANY F and v.
        let shape = ProblemShape::new(2, 1, 2);
        let zone_dofs = vec![0usize, 1, 3, 4, 1, 2, 4, 5];
        let ndofs = 6;
        let fz = BatchedMats::from_fn(shape.nvdof(), shape.nthermo, 2, |z, i, j| {
            fz_seed[(z * 7 + i * 3 + j) % 16]
        });
        let v: Vec<f64> = (0..2 * ndofs).map(|i| v_seed[i % 8]).collect();

        let mut rhs_v = vec![0.0; 2 * ndofs];
        MomentumRhsKernel::compute(&shape, &fz, &zone_dofs, ndofs, &mut rhs_v);
        let mut rhs_e = vec![0.0; 2 * shape.nthermo];
        EnergyRhsKernel::compute(&shape, &fz, &v, &zone_dofs, ndofs, &mut rhs_e);

        let vt: f64 = v.iter().zip(&rhs_v).map(|(a, b)| a * b).sum();
        let ones: f64 = rhs_e.iter().sum();
        prop_assert!((vt + ones).abs() < 1e-11 * vt.abs().max(1.0));
    }

    #[test]
    fn k7_linearity_in_az(
        alpha in -3.0..3.0f64,
        seed in proptest::collection::vec(-1.0..1.0f64, 5),
    ) {
        // F_z(alpha A_z) = alpha F_z(A_z).
        let shape = ProblemShape::new(2, 1, 2);
        let az = BatchedMats::from_fn(shape.nvdof(), shape.npts, 2, |z, i, j| {
            seed[(z + i * 2 + j) % 5]
        });
        let az_scaled = BatchedMats::from_fn(shape.nvdof(), shape.npts, 2, |z, i, j| {
            alpha * az.get(z, i, j)
        });
        let b = DMatrix::from_fn(shape.nthermo, shape.npts, |i, j| {
            seed[(i * 3 + j) % 5] * 0.5
        });
        let mut f1 = BatchedMats::zeros(shape.nvdof(), shape.nthermo, 2);
        let mut f2 = BatchedMats::zeros(shape.nvdof(), shape.nthermo, 2);
        FzKernel::compute(&shape, &az, &b, &mut f1);
        FzKernel::compute(&shape, &az_scaled, &b, &mut f2);
        for (x, y) in f1.as_slice().iter().zip(f2.as_slice()) {
            prop_assert!((alpha * x - y).abs() < 1e-11 * y.abs().max(1.0));
        }
    }

    #[test]
    fn traffic_models_scale_monotonically(zones in 1usize..2000) {
        // Kernel traffic must grow monotonically with the zone count (no
        // weird non-monotone model artifacts the autotuner could exploit).
        let small = ProblemShape::new(3, 2, zones);
        let big = ProblemShape::new(3, 2, zones * 2);
        let k = FzKernel::tuned();
        prop_assert!(k.traffic(&big).flops > k.traffic(&small).flops);
        prop_assert!(k.traffic(&big).dram_bytes > k.traffic(&small).dram_bytes);
        let k8 = MomentumRhsKernel;
        prop_assert!(k8.traffic(&big).flops > k8.traffic(&small).flops);
    }
}
