//! Vendor-library baselines: `cublasDgemmBatched` and streamed
//! `cublasDgemv`, with the performance pathologies the paper measured.
//!
//! - `cublasDgemmBatched` on `DIM x DIM` matrices "has exactly the same
//!   purpose [as kernels 5/6] but only achieves 1.3 Gflop/s": the library
//!   kernel dereferences a pointer array per matrix and issues one thread
//!   block per tiny matrix, so nearly every 8-byte element rides its own
//!   128-byte memory transaction.
//! - CUBLAS has no batched DGEMV; the User-Guide workaround — one
//!   `cublasDgemv` per zone in its own stream — pays a full kernel-launch
//!   latency per 81x8 matrix and lands at 0.2 GFLOP/s against the custom
//!   kernel 8's 18 GFLOP/s (Table 4).

use blast_la::{BatchedMats, DMatrix};
use gpu_sim::{GpuDevice, GpuError, KernelStats, LaunchConfig, Traffic};

use crate::k56::Transpose;
use crate::shapes::ProblemShape;

/// Effective DRAM replay factor of the library's pointer-chased,
/// one-matrix-per-block access pattern on `DIM x DIM` operands: scattered
/// 8-byte loads each occupy a 128-byte transaction, doubled by the
/// pointer-array indirection.
pub const CUBLAS_BATCHED_REPLAY: f64 = 32.0;

/// `cublasDgemmBatched`-style baseline for `DIM x DIM` batches.
#[derive(Clone, Copy, Debug, Default)]
pub struct CublasDgemmBatched;

impl CublasDgemmBatched {
    /// Event name on the device timeline.
    pub const NAME: &'static str = "cublasDgemmBatched";

    /// Library launch shape: one block per matrix, `DIM^2` working threads
    /// padded to a warp.
    pub fn config(&self, dim: usize, count: usize) -> LaunchConfig {
        LaunchConfig::new(count as u32, (dim * dim).max(32) as u32, 0, 40)
    }

    /// Declared traffic with the replay pathology.
    pub fn traffic(&self, dim: usize, count: usize) -> Traffic {
        let d = dim as f64;
        let n = count as f64;
        Traffic {
            flops: n * 2.0 * d * d * d,
            dram_bytes: n * 3.0 * d * d * 8.0 * CUBLAS_BATCHED_REPLAY
                + n * 3.0 * 8.0, // the pointer array itself
            ..Default::default()
        }
    }

    /// Runs the batched product (same math as kernels 5/6).
    pub fn run(
        &self,
        dev: &GpuDevice,
        transpose: Transpose,
        a: &BatchedMats,
        b: &BatchedMats,
        c: &mut BatchedMats,
    ) -> Result<KernelStats, GpuError> {
        let (d, _) = a.shape();
        let cfg = self.config(d, a.count());
        let traffic = self.traffic(d, a.count());
        let (_, stats) = dev.launch(Self::NAME, &cfg, &traffic, || {
            let k = crate::k56::BatchedDimGemm { transpose, mats_per_block: 1 };
            k.compute(a, b, None, c);
        })?;
        Ok(stats)
    }
}

/// Streamed-`cublasDgemv` baseline: one library call per zone.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamedDgemv;

impl StreamedDgemv {
    /// Event name on the device timeline.
    pub const NAME: &'static str = "cublasDgemv(streamed)";

    /// Per-call launch configuration (the library picks a generic shape).
    pub fn config_single(&self, shape: &ProblemShape) -> LaunchConfig {
        LaunchConfig::new(1, (shape.nvdof() as u32).clamp(64, 256), 0, 20)
    }

    /// Per-call traffic: one `nvdof x nthermo` matrix plus vectors.
    pub fn traffic_single(&self, shape: &ProblemShape) -> Traffic {
        let m = shape.nvdof() as f64;
        let n = shape.nthermo as f64;
        Traffic {
            flops: 2.0 * m * n,
            dram_bytes: (m * n + m + n) * 8.0,
            ..Default::default()
        }
    }

    /// Computes the whole batched row-sum (`y_z = F_z · 1`) through
    /// zone-by-zone library calls; returns the total device time.
    pub fn run_rowsums(
        &self,
        dev: &GpuDevice,
        shape: &ProblemShape,
        fz: &BatchedMats,
        y: &mut [f64],
    ) -> Result<f64, GpuError> {
        let nvdof = shape.nvdof();
        let nth = shape.nthermo;
        assert_eq!(fz.count(), shape.zones);
        assert_eq!(y.len(), shape.zones * nvdof);
        let cfg = self.config_single(shape);
        let traffic = self.traffic_single(shape);
        let t0 = dev.now();
        for z in 0..shape.zones {
            let yz_range = z * nvdof..(z + 1) * nvdof;
            dev.launch(Self::NAME, &cfg, &traffic, || {
                let m = fz.mat(z);
                let yz = &mut y[yz_range.clone()];
                yz.iter_mut().for_each(|v| *v = 0.0);
                for j in 0..nth {
                    let col = &m[j * nvdof..(j + 1) * nvdof];
                    for (o, &v) in yz.iter_mut().zip(col) {
                        *o += v;
                    }
                }
            })?;
        }
        Ok(dev.now() - t0)
    }

    /// Modeled total time without executing (for the Table 4 harness at
    /// full batch counts).
    pub fn modeled_time(&self, dev: &GpuDevice, shape: &ProblemShape) -> f64 {
        let stats = dev.model_kernel(&self.config_single(shape), &self.traffic_single(shape));
        stats.time_s * shape.zones as f64
    }
}

/// `cublasDgemmBatched`-style baseline for the *large* per-zone product of
/// kernel 7 (`F_z = A_z B^T`) — the "alternative implementation ... is to
/// call cublasDgemmbatched" curve in Fig. 7. Better than one-block-per-tiny-
/// matrix (operands are big enough to coalesce) but blind to the fact that
/// `B` is shared by all zones, so it re-streams `B` per zone and skips the
/// constant-memory trick.
#[derive(Clone, Copy, Debug, Default)]
pub struct CublasDgemmBatchedLarge;

impl CublasDgemmBatchedLarge {
    /// Event name on the device timeline.
    pub const NAME: &'static str = "cublasDgemmBatched(large)";

    /// Launch configuration.
    pub fn config(&self, shape: &ProblemShape) -> LaunchConfig {
        LaunchConfig::new(shape.zones as u32, 256, 16 * 1024, 48)
    }

    /// Declared traffic: generic square tiling re-touches `A_z` once per
    /// output tile row, and `B` streams from DRAM per zone (the library
    /// cannot know it is shared across the batch).
    pub fn traffic(&self, shape: &ProblemShape) -> Traffic {
        let z = shape.zones as f64;
        let nvdof = shape.nvdof() as f64;
        let npts = shape.npts as f64;
        let nth = shape.nthermo as f64;
        Traffic {
            flops: z * 2.0 * nvdof * npts * nth,
            dram_bytes: z * (1.5 * nvdof * npts + nth * npts + nvdof * nth) * 8.0,
            l2_bytes: z * nth * npts * 8.0,
            shared_bytes: z * nvdof * npts * 8.0,
            ..Default::default()
        }
    }

    /// Runs the product (same math as kernel 7).
    pub fn run(
        &self,
        dev: &GpuDevice,
        shape: &ProblemShape,
        az: &BatchedMats,
        b: &DMatrix,
        fz: &mut BatchedMats,
    ) -> Result<KernelStats, GpuError> {
        let cfg = self.config(shape);
        let traffic = self.traffic(shape);
        let (_, stats) = dev.launch(Self::NAME, &cfg, &traffic, || {
            crate::k7::FzKernel::compute(shape, az, b, fz);
        })?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceCatalog;
    use crate::k56::BatchedDimGemm;
    use crate::k8_10::MomentumRhsKernel;
    use gpu_sim::GpuSpec;

    #[test]
    fn batched_dgemm_lands_near_paper_1_3_gflops() {
        // §3.2: "cublasDgemmbatched has exactly the same purpose but only
        // achieves 1.3 Gflop/s" (K20, DIM x DIM batches).
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let lib = CublasDgemmBatched;
        let count = 4096 * 64;
        let stats = dev.model_kernel(&lib.config(3, count), &lib.traffic(3, count));
        assert!(
            stats.gflops > 0.4 && stats.gflops < 4.0,
            "cublas batched at {} GFLOP/s",
            stats.gflops
        );
    }

    #[test]
    fn custom_kernel56_beats_cublas_by_an_order_of_magnitude() {
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let count = 4096 * 64;
        let custom = BatchedDimGemm::nn_tuned();
        let t_custom = dev
            .model_kernel(&custom.config(3, count), &custom.traffic(3, count))
            .time_s;
        let lib = CublasDgemmBatched;
        let t_lib = dev.model_kernel(&lib.config(3, count), &lib.traffic(3, count)).time_s;
        assert!(t_lib / t_custom > 10.0, "speedup only {}", t_lib / t_custom);
    }

    #[test]
    fn cublas_math_matches_custom() {
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let a = BatchedMats::from_fn(3, 3, 16, |z, i, j| ((z + i + 2 * j) as f64 * 0.3).sin());
        let b = BatchedMats::from_fn(3, 3, 16, |z, i, j| ((z * 2 + i + j) as f64 * 0.7).cos());
        let mut c_lib = BatchedMats::zeros(3, 3, 16);
        let mut c_custom = BatchedMats::zeros(3, 3, 16);
        CublasDgemmBatched.run(&dev, Transpose::NN, &a, &b, &mut c_lib).expect("no faults injected");
        BatchedDimGemm::nn_tuned().compute(&a, &b, None, &mut c_custom);
        assert_eq!(c_lib, c_custom);
    }

    #[test]
    fn table4_streamed_dgemv_vs_kernel8() {
        // Table 4 on C2050: 4096 batches of 81x8. Streamed cublasDgemv:
        // ~0.2 GFLOP/s; custom kernel 8: ~18 GFLOP/s (90x).
        let shape = ProblemShape::new(3, 2, 4096);
        let dev = GpuDevice::new(GpuSpec::c2050());

        let streamed = StreamedDgemv;
        let t_lib = streamed.modeled_time(&dev, &shape);
        let flops = 2.0 * 81.0 * 8.0 * 4096.0;
        let gflops_lib = flops / t_lib / 1e9;
        assert!(gflops_lib > 0.05 && gflops_lib < 0.6, "streamed at {gflops_lib} GFLOP/s");

        let k8 = MomentumRhsKernel;
        let stats = dev.model_kernel(&k8.config(&shape), &k8.traffic(&shape));
        assert!(stats.gflops > 10.0, "kernel 8 at {}", stats.gflops);

        let speedup = t_lib / stats.time_s;
        assert!(speedup > 30.0, "custom vs streamed speedup {speedup}");
    }

    #[test]
    fn streamed_dgemv_really_runs_per_zone() {
        let shape = ProblemShape::new(2, 1, 5);
        let dev = GpuDevice::new(GpuSpec::c2050());
        let fz = BatchedMats::from_fn(shape.nvdof(), shape.nthermo, 5, |z, i, j| {
            (z + i + j) as f64
        });
        let mut y = vec![0.0; 5 * shape.nvdof()];
        let t = StreamedDgemv.run_rowsums(&dev, &shape, &fz, &mut y).expect("no faults injected");
        assert!(t > 0.0);
        assert_eq!(dev.events().len(), 5);
        // Row sums correct.
        for z in 0..5 {
            for i in 0..shape.nvdof() {
                let expect: f64 = (0..shape.nthermo).map(|j| fz.get(z, i, j)).sum();
                assert_eq!(y[z * shape.nvdof() + i], expect);
            }
        }
    }

    #[test]
    fn kernel7_beats_large_cublas_batched() {
        // Fig. 7: the tuned kernel 7 outperforms cublasDgemmBatched on the
        // per-zone F_z product.
        let shape = ProblemShape::new(3, 2, 4096);
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let lib = CublasDgemmBatchedLarge;
        let t_lib = dev.model_kernel(&lib.config(&shape), &lib.traffic(&shape)).time_s;
        let k7 = crate::k7::FzKernel::tuned();
        let t_k7 = dev.model_kernel(&k7.config(&shape), &k7.traffic(&shape)).time_s;
        assert!(t_k7 < t_lib, "k7 {t_k7} !< cublas {t_lib}");
    }
}
